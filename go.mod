module regcoal

go 1.24
