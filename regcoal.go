// Package regcoal is a library reproduction of Bouchez, Darte and Rastello,
// "On the Complexity of Register Coalescing" (LIP RR-2006-15 / CGO 2007).
//
// It provides, as runnable code with machine-checked properties:
//
//   - interference graphs with move affinities, partitions/coalescings and
//     quotients (the paper's §2 formalism);
//   - greedy-k-colorability, coloring number, chordal graph machinery
//     (MCS, PEO, clique trees) — the graph classes of the complexity map;
//   - the four coalescing optimizations: aggressive, conservative (Briggs,
//     George, extended George, brute-force), incremental conservative —
//     including the polynomial Theorem 5 algorithm for chordal graphs —
//     and optimistic (aggressive + de-coalescing);
//   - the four NP-completeness reductions as verified instance
//     transformers (internal/reduction);
//   - a strict-SSA mini compiler pipeline demonstrating Theorem 1 and
//     producing realistic coalescing instances (internal/ir, internal/ssa,
//     internal/regalloc);
//   - an experiment harness regenerating a table per theorem/figure
//     (internal/expt, cmd/experiments, EXPERIMENTS.md).
//
// This package is the facade: it re-exports the types and entry points a
// downstream user needs. Specialized functionality stays importable under
// the internal packages for the binaries and examples in this module.
package regcoal

import (
	"io"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/regalloc"
)

// Core graph types, re-exported from internal/graph.
type (
	// Graph is an interference graph with affinities; see NewGraph.
	Graph = graph.Graph
	// V identifies a vertex.
	V = graph.V
	// Affinity is a weighted move edge.
	Affinity = graph.Affinity
	// Coloring assigns a color per vertex.
	Coloring = graph.Coloring
	// Partition is a coalescing (vertex partition).
	Partition = graph.Partition
	// File bundles a graph with its register count for (de)serialization.
	File = graph.File
)

// NoColor marks an uncolored vertex.
const NoColor = graph.NoColor

// NewGraph returns an interference graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewNamedGraph returns a graph with one vertex per name.
func NewNamedGraph(names ...string) *Graph { return graph.NewNamed(names...) }

// ReadGraph parses the textual instance format (see internal/graph).
func ReadGraph(r io.Reader) (*File, error) { return graph.ReadFrom(r) }

// Strategy names a coalescing strategy for Run.
type Strategy string

// The available strategies.
const (
	// StrategyAggressive merges every move the interferences allow (§3).
	StrategyAggressive Strategy = "aggressive"
	// StrategyBriggs is conservative coalescing with Briggs' rule (§4).
	StrategyBriggs Strategy = "briggs"
	// StrategyGeorge is conservative coalescing with George's rule (§4).
	StrategyGeorge Strategy = "george"
	// StrategyBriggsGeorge combines both local rules (§4).
	StrategyBriggsGeorge Strategy = "briggs+george"
	// StrategyExtendedGeorge uses the §4 extension of George's rule.
	StrategyExtendedGeorge Strategy = "ext-george"
	// StrategyBrute uses the brute-force merge-and-check test (§4).
	StrategyBrute Strategy = "brute"
	// StrategyBruteSets extends StrategyBrute with simultaneous set
	// coalescing of up to two moves — the §4 remark about affinities
	// "obtained by transitivity" that escapes the Figure 3 trap.
	StrategyBruteSets Strategy = "brute-sets"
	// StrategyOptimistic is aggressive coalescing followed by
	// de-coalescing and re-coalescing (§5, Park–Moon).
	StrategyOptimistic Strategy = "optimistic"
)

// Strategies lists every strategy in presentation order.
func Strategies() []Strategy {
	return []Strategy{
		StrategyAggressive, StrategyBriggs, StrategyGeorge, StrategyBriggsGeorge,
		StrategyExtendedGeorge, StrategyBrute, StrategyBruteSets, StrategyOptimistic,
	}
}

// Result is the outcome of a coalescing strategy run.
type Result = coalesce.Result

// Run executes a strategy on g with k registers.
func Run(g *Graph, k int, s Strategy) (*Result, bool) {
	switch s {
	case StrategyAggressive:
		return coalesce.Aggressive(g, k), true
	case StrategyBriggs:
		return coalesce.Conservative(g, k, coalesce.TestBriggs), true
	case StrategyGeorge:
		return coalesce.Conservative(g, k, coalesce.TestGeorge), true
	case StrategyBriggsGeorge:
		return coalesce.Conservative(g, k, coalesce.TestBriggsGeorge), true
	case StrategyExtendedGeorge:
		return coalesce.Conservative(g, k, coalesce.TestExtendedGeorge), true
	case StrategyBrute:
		return coalesce.Conservative(g, k, coalesce.TestBrute), true
	case StrategyBruteSets:
		return coalesce.ConservativeSets(g, k, 2), true
	case StrategyOptimistic:
		return coalesce.Optimistic(g, k), true
	}
	return nil, false
}

// IsGreedyKColorable reports whether g survives Chaitin's simplification
// scheme with k colors (§2.2).
func IsGreedyKColorable(g *Graph, k int) bool { return greedy.IsGreedyKColorable(g, k) }

// ColoringNumber computes col(G), the smallest k for which g is
// greedy-k-colorable.
func ColoringNumber(g *Graph) int { return greedy.ColoringNumber(g) }

// GreedyColor produces a proper k-coloring via simplify+select, or
// ok=false when g is not greedy-k-colorable.
func GreedyColor(g *Graph, k int) (Coloring, bool) { return greedy.Color(g, k) }

// ChordalDecision is the constructive Theorem 5 answer.
type ChordalDecision = coalesce.ChordalDecision

// CanCoalesceChordal answers incremental conservative coalescing on a
// chordal graph in polynomial time (Theorem 5): can x and y share a color
// in some proper k-coloring? Returns ErrNotChordal for non-chordal inputs.
func CanCoalesceChordal(g *Graph, x, y V, k int) (*ChordalDecision, error) {
	return coalesce.ChordalIncremental(g, x, y, k)
}

// ErrNotChordal is returned by CanCoalesceChordal on non-chordal graphs.
var ErrNotChordal = coalesce.ErrNotChordal

// AllocMode selects the coalescing mode of Allocate.
type AllocMode = regalloc.Mode

// Allocation modes.
const (
	AllocNone         = regalloc.ModeNone
	AllocConservative = regalloc.ModeConservative
	AllocBrute        = regalloc.ModeBrute
	AllocOptimistic   = regalloc.ModeOptimistic
	AllocAggressive   = regalloc.ModeAggressive
)

// AllocResult is a graph-level allocation outcome.
type AllocResult = regalloc.Result

// Allocate coalesces and colors g with k registers, reporting spills.
func Allocate(g *Graph, k int, mode AllocMode) (*AllocResult, error) {
	return regalloc.Allocate(g, k, mode)
}
