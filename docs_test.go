package regcoal

// Documentation health checks, run by the CI docs job:
//
//   - TestDocsMarkdownLinks: every relative link in README.md and
//     docs/*.md points at a file that exists;
//   - TestDocsPackageComments: every package under internal/ (and the
//     root package) carries a package comment;
//   - TestDocsCoreExamples: every core algorithm package carries at
//     least one runnable godoc Example.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var markdownLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsMarkdownLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("docs/ missing: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", file, m[1], err)
			}
		}
	}
}

func TestDocsPackageComments(t *testing.T) {
	var dirs []string
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dirs = append(dirs, ".")
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (in %s) has no package comment", name, dir)
			}
		}
	}
}

// coreExamplePackages are the exported core packages that must each ship
// at least one runnable godoc Example (checked below; run them with
// `go test -run Example ./internal/...`).
var coreExamplePackages = []string{
	"internal/graph",
	"internal/greedy",
	"internal/coalesce",
	"internal/spill",
	"internal/regalloc",
}

func TestDocsCoreExamples(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range coreExamplePackages {
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		found := false
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fn, ok := d.(*ast.FuncDecl)
					if !ok || fn.Recv != nil {
						continue
					}
					if strings.HasPrefix(fn.Name.Name, "Example") {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("%s: no godoc Example function; core packages must keep at least one runnable example", dir)
		}
	}
}
