package regcoal

import (
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	// The README quickstart, as a test.
	g := NewNamedGraph("a", "b", "c", "d")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddAffinity(0, 2, 10)
	g.AddAffinity(2, 3, 1)

	res, ok := Run(g, 2, StrategyBriggsGeorge)
	if !ok {
		t.Fatal("strategy not found")
	}
	if res.CoalescedWeight == 0 {
		t.Fatal("quickstart instance should coalesce something")
	}
	if !res.Colorable {
		t.Fatal("conservative result must stay colorable")
	}
}

func TestFacadeAllStrategiesRun(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddAffinity(1, 2, 3)
	g.AddAffinity(3, 4, 2)
	for _, s := range Strategies() {
		res, ok := Run(g, 3, s)
		if !ok || res == nil {
			t.Fatalf("strategy %s failed to run", s)
		}
	}
	if _, ok := Run(g, 3, Strategy("bogus")); ok {
		t.Fatal("unknown strategy accepted")
	}
}

func TestFacadeColoringHelpers(t *testing.T) {
	g := NewGraph(4)
	g.AddClique(0, 1, 2)
	if ColoringNumber(g) != 3 {
		t.Fatalf("col=%d", ColoringNumber(g))
	}
	if !IsGreedyKColorable(g, 3) || IsGreedyKColorable(g, 2) {
		t.Fatal("greedy colorability wrong")
	}
	col, ok := GreedyColor(g, 3)
	if !ok || !col.Proper(g) {
		t.Fatal("greedy coloring failed")
	}
}

func TestFacadeChordal(t *testing.T) {
	// Path x-a-y: identifiable with 2 colors.
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	dec, err := CanCoalesceChordal(g, 0, 2, 2)
	if err != nil || !dec.OK {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
	// C4 is rejected with ErrNotChordal.
	c4 := NewGraph(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if _, err := CanCoalesceChordal(c4, 0, 2, 3); err != ErrNotChordal {
		t.Fatalf("want ErrNotChordal, got %v", err)
	}
}

func TestFacadeReadGraph(t *testing.T) {
	f, err := ReadGraph(strings.NewReader("k 3\nnode a\nnode b\nmove a b 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.K != 3 || f.G.N() != 2 || f.G.NumAffinities() != 1 {
		t.Fatalf("parsed wrong: k=%d n=%d", f.K, f.G.N())
	}
}

func TestFacadeAllocate(t *testing.T) {
	g := NewGraph(5)
	g.AddClique(0, 1, 2)
	g.AddAffinity(3, 4, 2)
	res, err := Allocate(g, 3, AllocConservative)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v", res.Spilled)
	}
	if res.CoalescedWeight != 2 {
		t.Fatalf("coalesced weight %d", res.CoalescedWeight)
	}
	for _, mode := range []AllocMode{AllocNone, AllocBrute, AllocOptimistic, AllocAggressive} {
		if _, err := Allocate(g, 3, mode); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}
