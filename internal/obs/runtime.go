package obs

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntimePrometheus renders Go runtime gauges — goroutine count,
// GC totals, heap occupancy — as Prometheus text. It calls
// runtime.ReadMemStats, which briefly stops the world, so it runs only
// on /metrics scrape, never on the request path.
func WriteRuntimePrometheus(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("regcoal_goroutines", "Current goroutine count.", uint64(runtime.NumGoroutine()))
	gauge("regcoal_heap_alloc_bytes", "Bytes of allocated heap objects.", ms.HeapAlloc)
	gauge("regcoal_heap_objects", "Number of allocated heap objects.", ms.HeapObjects)
	gauge("regcoal_next_gc_bytes", "Heap size target of the next GC cycle.", ms.NextGC)
	counter("regcoal_gc_runs_total", "Completed GC cycles.", uint64(ms.NumGC))
	fmt.Fprintf(w, "# HELP regcoal_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n# TYPE regcoal_gc_pause_seconds_total counter\nregcoal_gc_pause_seconds_total %s\n",
		formatSeconds(int64(ms.PauseTotalNs)))
	counter("regcoal_alloc_bytes_total", "Cumulative bytes allocated.", ms.TotalAlloc)
}
