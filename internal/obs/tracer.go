package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer owns the trace lifecycle: a sync.Pool of Trace buffers, a
// fixed table of in-flight requests, and two preallocated rings of
// finished traces — the most recent N and the slowest N. Start and
// Finish are allocation-free in steady state (pool reuse, fixed-slot
// registration, copy-by-value into preallocated ring storage); only the
// browse/JSON side allocates, and that runs on explicit /debug/requests
// hits.
type Tracer struct {
	pool sync.Pool

	idSeed uint64
	idCtr  atomic.Uint64

	mu     sync.Mutex
	active [maxActive]activeEntry
	recent []Trace // ring storage, preallocated
	next   int     // next recent slot
	filled int     // recent entries populated
	slow   []Trace // slowest-N storage, preallocated
	nslow  int

	slowFloor int64 // only traces at least this slow enter the slow ring
}

// maxActive bounds the in-flight request table. Requests beyond it are
// still traced; they just don't appear in the active view.
const maxActive = 256

type activeEntry struct {
	used     bool
	id       TraceID
	endpoint Endpoint
	start    time.Time
}

// NewTracer builds a tracer keeping the recentN most recent and slowN
// slowest finished traces; traces faster than slowFloor never enter the
// slow ring (keeps the ring from filling with cache hits).
func NewTracer(recentN, slowN int, slowFloor time.Duration) *Tracer {
	if recentN < 1 {
		recentN = 1
	}
	if slowN < 1 {
		slowN = 1
	}
	t := &Tracer{
		recent:    make([]Trace, recentN),
		slow:      make([]Trace, slowN),
		slowFloor: int64(slowFloor),
	}
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		t.idSeed = binary.LittleEndian.Uint64(seed[:])
	} else {
		t.idSeed = uint64(time.Now().UnixNano())
	}
	t.pool.New = func() any {
		tr := new(Trace)
		tr.activeSlot = -1
		return tr
	}
	return t
}

// NewID mints a fresh trace ID: two rounds of splitmix64 over an atomic
// counter mixed with the per-process seed. Unique per process, cheap,
// and allocation-free.
func (t *Tracer) NewID() TraceID {
	n := t.idCtr.Add(1)
	var id TraceID
	binary.BigEndian.PutUint64(id[0:8], splitmix64(t.idSeed+n))
	binary.BigEndian.PutUint64(id[8:16], splitmix64(t.idSeed^(n*0x9e3779b97f4a7c15)))
	return id
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Start acquires a pooled trace for one request. id is the propagated
// upstream ID; pass a zero TraceID to mint a fresh one. The returned
// trace must be released with Finish.
func (t *Tracer) Start(e Endpoint, id TraceID) *Trace {
	tr := t.pool.Get().(*Trace)
	tr.reset()
	if id.IsZero() {
		id = t.NewID()
	}
	tr.ID = id
	tr.Endpoint = e
	tr.Start = time.Now()
	t.mu.Lock()
	for i := range t.active {
		if !t.active[i].used {
			t.active[i] = activeEntry{used: true, id: id, endpoint: e, start: tr.Start}
			tr.activeSlot = i
			break
		}
	}
	t.mu.Unlock()
	return tr
}

// Finish closes the trace, records it into the recent (and, if slow
// enough, slow) rings by value, and returns the buffer to the pool. The
// caller must not touch tr afterwards.
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.EndPhase()
	tr.DurNS = tr.Since()
	t.mu.Lock()
	if tr.activeSlot >= 0 && tr.activeSlot < maxActive {
		t.active[tr.activeSlot].used = false
		tr.activeSlot = -1
	}
	t.recent[t.next] = *tr
	t.next = (t.next + 1) % len(t.recent)
	if t.filled < len(t.recent) {
		t.filled++
	}
	if tr.DurNS >= t.slowFloor {
		if t.nslow < len(t.slow) {
			t.slow[t.nslow] = *tr
			t.nslow++
		} else {
			// replace the fastest resident if the new trace is slower
			min := 0
			for i := 1; i < t.nslow; i++ {
				if t.slow[i].DurNS < t.slow[min].DurNS {
					min = i
				}
			}
			if tr.DurNS > t.slow[min].DurNS {
				t.slow[min] = *tr
			}
		}
	}
	t.mu.Unlock()
	t.pool.Put(tr)
}

// ActiveView is one in-flight request in the /debug/requests active
// list.
type ActiveView struct {
	ID        string    `json:"id"`
	Endpoint  string    `json:"endpoint"`
	Start     time.Time `json:"start"`
	ElapsedNS int64     `json:"elapsed_ns"`
}

// Active snapshots the in-flight request table.
func (t *Tracer) Active() []ActiveView {
	now := time.Now()
	out := make([]ActiveView, 0, 16)
	t.mu.Lock()
	for i := range t.active {
		if !t.active[i].used {
			continue
		}
		e := &t.active[i]
		out = append(out, ActiveView{
			ID:        e.id.String(),
			Endpoint:  e.endpoint.String(),
			Start:     e.start,
			ElapsedNS: int64(now.Sub(e.start)),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedNS > out[j].ElapsedNS })
	return out
}

// Recent returns views of up to n most recently finished traces, newest
// first (n <= 0 means all retained).
func (t *Tracer) Recent(n int) []TraceView {
	t.mu.Lock()
	views := make([]TraceView, 0, t.filled)
	for i := 0; i < t.filled; i++ {
		idx := (t.next - 1 - i + 2*len(t.recent)) % len(t.recent)
		views = append(views, t.recent[idx].View())
	}
	t.mu.Unlock()
	if n > 0 && len(views) > n {
		views = views[:n]
	}
	return views
}

// Slow returns views of up to n retained slowest traces, slowest first.
func (t *Tracer) Slow(n int) []TraceView {
	t.mu.Lock()
	traces := make([]Trace, t.nslow)
	copy(traces, t.slow[:t.nslow])
	t.mu.Unlock()
	sort.Slice(traces, func(i, j int) bool { return traces[i].DurNS > traces[j].DurNS })
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	views := make([]TraceView, len(traces))
	for i := range traces {
		views[i] = traces[i].View()
	}
	return views
}

// ServeDebug is the /debug/requests handler. Query parameters:
// view=recent|slow|active (default recent), format=json|text (default
// json), n=limit (default 32).
func (t *Tracer) ServeDebug(w http.ResponseWriter, r *http.Request) {
	view := r.URL.Query().Get("view")
	if view == "" {
		view = "recent"
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	n := 32
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}

	var payload any
	var traces []TraceView
	switch view {
	case "active":
		payload = t.Active()
	case "slow":
		traces = t.Slow(n)
		payload = traces
	case "recent":
		traces = t.Recent(n)
		payload = traces
	default:
		http.Error(w, `unknown view (want active, recent, or slow)`, http.StatusBadRequest)
		return
	}

	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if view == "active" {
			for _, a := range payload.([]ActiveView) {
				dur := time.Duration(a.ElapsedNS).Round(time.Microsecond)
				w.Write([]byte("trace " + a.ID + " endpoint=" + a.Endpoint + " elapsed=" + dur.String() + " (in flight)\n"))
			}
			return
		}
		for _, v := range traces {
			writeViewText(w, v)
		}
		return
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"view": view, "requests": payload})
}
