package obs

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// A Trace is one request's timeline: which phases it passed through,
// when, and — for solve requests — the full portfolio-race timeline
// (every member's start, finish or cut-off, and the winner). Traces are
// pooled and all capture happens into fixed-size arrays, so recording a
// span never allocates. A Trace is owned by exactly one request at a
// time; the handler goroutine and the pool worker it hands off to access
// it sequentially, never concurrently.

// TraceID is a 128-bit request identifier, rendered as 32 hex digits in
// the X-Regcoal-Trace-Id header. The router mints one per incoming
// request and forwards it; workers and the standalone service mint one
// only when the header is absent, so an ID names one request end to end
// across the tier.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var buf [32]byte
	hex.Encode(buf[:], id[:])
	return string(buf[:])
}

// appendHex writes the ID's hex form into dst (which must hold 32
// bytes) without allocating.
func (id TraceID) appendHex(dst []byte) { hex.Encode(dst, id[:]) }

// ParseTraceID decodes a header value. Only exact 32-digit hex strings
// are accepted; anything else reports false and the caller mints a
// fresh ID (a malformed inbound header must not collapse distinct
// requests onto one trace identity).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// maxPhaseSpans bounds the phase spans one trace holds: the solve path
// visits at most NumPhases phases, with headroom for repeats (a batch
// element re-entering decode).
const maxPhaseSpans = 8

// maxMemberSpans bounds the race-timeline entries. The largest portfolio
// (coalesce: 8 registry strategies + chordal-inc + vegdahl + exact) fits
// with room; an overflowing member set drops the excess rather than
// allocating.
const maxMemberSpans = 12

// PhaseSpan is one phase's [start, end) interval, nanosecond offsets
// from the trace start.
type PhaseSpan struct {
	Phase   Phase
	StartNS int64
	EndNS   int64
}

// MemberState classifies how a portfolio member's run ended.
type MemberState uint8

const (
	// MemberFinished: delivered an answer before the race returned.
	MemberFinished MemberState = iota
	// MemberWon: finished and its answer was selected.
	MemberWon
	// MemberCutoff: still running when the deadline fired; EndNS is the
	// moment the race stopped waiting, not the member's own finish.
	MemberCutoff
	// MemberDeclined: returned ErrInapplicable (outside its envelope).
	MemberDeclined
	// MemberError: failed with a real error.
	MemberError
)

var memberStateNames = [...]string{"finished", "won", "cutoff", "declined", "error"}

func (s MemberState) String() string {
	if int(s) < len(memberStateNames) {
		return memberStateNames[s]
	}
	return "unknown"
}

// MemberSpan is one portfolio member's run in the race timeline.
type MemberSpan struct {
	Name    string
	StartNS int64
	EndNS   int64
	State   MemberState
}

// Trace is the pooled per-request record. Exported fields are read by
// renderers after the request finishes; during the request they are
// written through the methods below.
type Trace struct {
	ID          TraceID
	Endpoint    Endpoint
	Family      string
	Start       time.Time
	DurNS       int64
	Cache       string // disposition: hit, miss, collapse, "" (non-solve)
	Winner      string
	DeadlineHit bool
	Status      int

	Phases  [maxPhaseSpans]PhaseSpan
	NPhases int

	Members  [maxMemberSpans]MemberSpan
	NMembers int

	// open phase bookkeeping (BeginPhase/EndPhase)
	openPhase   Phase
	openStartNS int64
	phaseOpen   bool

	// activeSlot is the index in the tracer's fixed active-request table,
	// -1 when the trace was not registered (table full or standalone use).
	activeSlot int
}

// reset clears the trace for reuse, keeping nothing from the previous
// request.
func (t *Trace) reset() {
	*t = Trace{activeSlot: -1}
}

// Since reports the nanosecond offset from the trace start.
func (t *Trace) Since() int64 { return int64(time.Since(t.Start)) }

// BeginPhase opens a phase span at now. An already-open phase is closed
// first, so mis-paired calls degrade to adjacent spans instead of
// corrupting the record.
func (t *Trace) BeginPhase(p Phase) {
	if t == nil {
		return
	}
	if t.phaseOpen {
		t.EndPhase()
	}
	t.openPhase = p
	t.openStartNS = t.Since()
	t.phaseOpen = true
}

// EndPhase closes the open phase span and returns its duration (0 when
// no phase is open).
func (t *Trace) EndPhase() time.Duration {
	if t == nil || !t.phaseOpen {
		return 0
	}
	t.phaseOpen = false
	end := t.Since()
	if t.NPhases < maxPhaseSpans {
		t.Phases[t.NPhases] = PhaseSpan{Phase: t.openPhase, StartNS: t.openStartNS, EndNS: end}
		t.NPhases++
	}
	return time.Duration(end - t.openStartNS)
}

// AddMember appends one race-timeline entry; entries beyond the fixed
// capacity are dropped.
func (t *Trace) AddMember(name string, startNS, endNS int64, state MemberState) {
	if t == nil || t.NMembers >= maxMemberSpans {
		return
	}
	t.Members[t.NMembers] = MemberSpan{Name: name, StartNS: startNS, EndNS: endNS, State: state}
	t.NMembers++
}

// TraceView is the JSON rendering of a trace (the ?trace=1 response
// field and the /debug/requests entries).
type TraceView struct {
	ID          string       `json:"id"`
	Endpoint    string       `json:"endpoint"`
	Family      string       `json:"family,omitempty"`
	Start       time.Time    `json:"start"`
	DurationNS  int64        `json:"duration_ns"`
	Cache       string       `json:"cache,omitempty"`
	Winner      string       `json:"winner,omitempty"`
	DeadlineHit bool         `json:"deadline_hit,omitempty"`
	Status      int          `json:"status,omitempty"`
	Phases      []PhaseView  `json:"phases,omitempty"`
	Race        []MemberView `json:"race,omitempty"`
}

// PhaseView is one phase span in JSON form.
type PhaseView struct {
	Phase   string `json:"phase"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// MemberView is one race-timeline entry in JSON form.
type MemberView struct {
	Strategy string `json:"strategy"`
	StartNS  int64  `json:"start_ns"`
	EndNS    int64  `json:"end_ns"`
	State    string `json:"state"`
}

// View builds the JSON rendering. Allocates; called off the hot path.
func (t *Trace) View() TraceView {
	v := TraceView{
		ID:          t.ID.String(),
		Endpoint:    t.Endpoint.String(),
		Family:      t.Family,
		Start:       t.Start,
		DurationNS:  t.DurNS,
		Cache:       t.Cache,
		Winner:      t.Winner,
		DeadlineHit: t.DeadlineHit,
		Status:      t.Status,
	}
	for i := 0; i < t.NPhases; i++ {
		sp := t.Phases[i]
		v.Phases = append(v.Phases, PhaseView{Phase: sp.Phase.String(), StartNS: sp.StartNS, EndNS: sp.EndNS})
	}
	for i := 0; i < t.NMembers; i++ {
		m := t.Members[i]
		v.Race = append(v.Race, MemberView{Strategy: m.Name, StartNS: m.StartNS, EndNS: m.EndNS, State: m.State.String()})
	}
	return v
}

// WriteText renders the trace as a human-readable timeline, the text
// view of /debug/requests and loadgen's -slow dump.
func (t *Trace) WriteText(w io.Writer) { writeViewText(w, t.View()) }

// writeViewText renders an already-snapshotted TraceView as text.
func writeViewText(w io.Writer, v TraceView) {
	fmt.Fprintf(w, "trace %s endpoint=%s", v.ID, v.Endpoint)
	if v.Family != "" {
		fmt.Fprintf(w, " family=%s", v.Family)
	}
	fmt.Fprintf(w, " dur=%v", time.Duration(v.DurationNS).Round(time.Microsecond))
	if v.Cache != "" {
		fmt.Fprintf(w, " cache=%s", v.Cache)
	}
	if v.DeadlineHit {
		fmt.Fprint(w, " deadline_hit")
	}
	if v.Winner != "" {
		fmt.Fprintf(w, " winner=%s", v.Winner)
	}
	fmt.Fprintln(w)
	if len(v.Phases) > 0 {
		fmt.Fprint(w, "  phases:")
		for i, p := range v.Phases {
			if i > 0 {
				fmt.Fprint(w, " |")
			}
			fmt.Fprintf(w, " %s %v", p.Phase, time.Duration(p.EndNS-p.StartNS).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	if len(v.Race) > 0 {
		fmt.Fprintln(w, "  race:")
		for _, m := range v.Race {
			fmt.Fprintf(w, "    %-20s %10v - %10v  %s\n", m.Strategy,
				time.Duration(m.StartNS).Round(time.Microsecond),
				time.Duration(m.EndNS).Round(time.Microsecond), m.State)
		}
	}
}

// SpliceTraceJSON appends the trace as a "trace" field to a rendered
// JSON object body: {...} becomes {...,"trace":{...}}. The body bytes
// before the splice point are untouched, so a response without ?trace=1
// stays byte-identical to one rendered without tracing at all. Bodies
// that are not JSON objects are returned unchanged.
func SpliceTraceJSON(body []byte, t *Trace) []byte {
	if t == nil {
		return body
	}
	trimmed := bytes.TrimRight(body, " \t\r\n")
	if len(trimmed) < 2 || trimmed[0] != '{' || trimmed[len(trimmed)-1] != '}' {
		return body
	}
	traceJSON, err := json.Marshal(t.View())
	if err != nil {
		return body
	}
	out := make([]byte, 0, len(trimmed)+len(traceJSON)+10)
	out = append(out, trimmed[:len(trimmed)-1]...)
	out = append(out, `,"trace":`...)
	out = append(out, traceJSON...)
	out = append(out, '}')
	return out
}
