package obs

import (
	"testing"
	"time"
)

// TestZeroAllocInstrumentation is the CI alloc gate for the tentpole
// contract: recording a latency sample and capturing a full trace —
// acquire, phase spans, race timeline, finish-to-ring — allocates
// nothing in steady state. The name matches the bench-smoke job's
// ZeroAlloc test filter, so a regression here fails CI under the race
// detector too.
func TestZeroAllocInstrumentation(t *testing.T) {
	var set Set
	tracer := NewTracer(32, 8, 0)

	// Warm the pool so steady state is measured, not first-touch.
	for i := 0; i < 4; i++ {
		tracer.Finish(tracer.Start(EndpointCoalesce, TraceID{}))
	}

	t.Run("HistogramObserve", func(t *testing.T) {
		allocs := testing.AllocsPerRun(1000, func() {
			set.ObserveRequest(EndpointCoalesce, 3*time.Millisecond)
			set.ObservePhase(EndpointCoalesce, PhaseRace, time.Millisecond)
		})
		if allocs != 0 {
			t.Errorf("histogram record allocates %.1f/op, want 0", allocs)
		}
	})

	t.Run("SpanCapture", func(t *testing.T) {
		allocs := testing.AllocsPerRun(1000, func() {
			tr := tracer.Start(EndpointCoalesce, TraceID{})
			tr.BeginPhase(PhaseDecode)
			set.ObservePhase(EndpointCoalesce, PhaseDecode, tr.EndPhase())
			tr.BeginPhase(PhaseCanon)
			set.ObservePhase(EndpointCoalesce, PhaseCanon, tr.EndPhase())
			tr.BeginPhase(PhaseRace)
			tr.AddMember("aggressive", 0, 100, MemberWon)
			tr.AddMember("conservative", 0, 900, MemberCutoff)
			tr.Winner = "aggressive"
			tr.DeadlineHit = true
			set.ObservePhase(EndpointCoalesce, PhaseRace, tr.EndPhase())
			tr.BeginPhase(PhaseEncode)
			set.ObservePhase(EndpointCoalesce, PhaseEncode, tr.EndPhase())
			set.ObserveRequest(EndpointCoalesce, time.Duration(tr.Since()))
			tracer.Finish(tr)
		})
		if allocs != 0 {
			t.Errorf("span capture allocates %.1f/op, want 0", allocs)
		}
	})

	t.Run("TraceIDMint", func(t *testing.T) {
		allocs := testing.AllocsPerRun(1000, func() {
			_ = tracer.NewID()
		})
		if allocs != 0 {
			t.Errorf("NewID allocates %.1f/op, want 0", allocs)
		}
	})
}
