// Package obs is the service's allocation-free observability layer:
// log-bucketed atomic latency histograms (histogram.go), per-request
// traces with phase spans and portfolio-race timelines captured into
// pooled fixed-size buffers (trace.go, tracer.go), and a strict
// Prometheus text-format checker (promlint.go) that keeps every tier's
// /metrics output honest.
//
// The layer is built for the hot path it instruments: recording a
// latency sample or a span is a handful of atomic operations into
// preallocated memory — no locks, no allocations — so the PR 5
// AllocsPerRun==0 gates hold with instrumentation enabled. Anything
// that allocates (JSON rendering, ring snapshots, the debug endpoint)
// happens off the request path, on scrape or on explicit request.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count. Bucket i counts samples whose
// duration in nanoseconds d satisfies 2^(i-1) < d <= 2^i (bucket 0
// holds d <= 1ns); the last bucket additionally absorbs everything
// larger, acting as the +Inf overflow. 2^38 ns is about 4.6 minutes —
// far beyond the service's 30s deadline clamp — so real samples never
// saturate.
const histBuckets = 39

// Histogram is a fixed-size log2-bucketed latency histogram. Observe is
// lock-free and allocation-free; the zero value is ready to use. All
// exported read methods are safe to call concurrently with writers (they
// read each counter atomically; a scrape racing a record may be off by
// the in-flight sample, which Prometheus semantics permit).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
}

// bucketIndex maps a nanosecond duration onto its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns - 1)) // smallest i with ns <= 2^i
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpperNS is the inclusive upper bound of bucket i in nanoseconds.
func bucketUpperNS(i int) int64 { return int64(1) << uint(i) }

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total of all recorded samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// samples: it walks the cumulative bucket counts and returns the upper
// bound of the bucket holding the q-th sample. With log2 buckets the
// estimate is within 2x of the true value, which is what a latency
// dashboard needs; exact percentiles come from traces. Returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			return time.Duration(bucketUpperNS(i))
		}
	}
	return time.Duration(bucketUpperNS(histBuckets - 1))
}

// QuantileSummary is a histogram's compact quantile snapshot, the JSON
// shape of the /stats latency section.
type QuantileSummary struct {
	Count uint64 `json:"count"`
	// MeanNS is the exact arithmetic mean; the quantiles are log2-bucket
	// upper bounds (within 2x).
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
}

// Summary snapshots count, mean, and the dashboard quantiles.
func (h *Histogram) Summary() QuantileSummary {
	count := h.count.Load()
	s := QuantileSummary{Count: count}
	if count == 0 {
		return s
	}
	s.MeanNS = h.sumNS.Load() / int64(count)
	s.P50NS = int64(h.Quantile(0.50))
	s.P90NS = int64(h.Quantile(0.90))
	s.P99NS = int64(h.Quantile(0.99))
	return s
}

// WritePrometheus renders the histogram as one Prometheus histogram
// family. name must be a valid metric name (conventionally ending in
// _seconds); labels is either empty or a comma-joined list of
// label="value" pairs appended inside every sample's brace set. The
// caller writes the HELP/TYPE header once per family via
// WritePrometheusHeader, so several histograms (e.g. one per endpoint)
// can share a family distinguished by labels.
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	var cum uint64
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i := 0; i < histBuckets-1; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, formatSeconds(bucketUpperNS(i)), cum)
	}
	cum += h.buckets[histBuckets-1].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(h.sumNS.Load()))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatSeconds(h.sumNS.Load()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
}

// WritePrometheusHeader writes a histogram family's HELP/TYPE pair.
func WritePrometheusHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// formatSeconds renders a nanosecond count as a seconds literal with no
// trailing zeros, so bucket bounds are stable strings (Prometheus
// compares le values textually when deduplicating).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
