package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {(1 << 20) + 1, 21}, {1 << 40, histBuckets - 1}, {1<<62 + 7, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
		if c.ns > 0 && c.ns <= bucketUpperNS(histBuckets-1) {
			idx := bucketIndex(c.ns)
			if c.ns > bucketUpperNS(idx) {
				t.Errorf("ns %d above its bucket %d upper bound %d", c.ns, idx, bucketUpperNS(idx))
			}
			if idx > 0 && c.ns <= bucketUpperNS(idx-1) {
				t.Errorf("ns %d fits bucket %d, placed in %d", c.ns, idx-1, idx)
			}
		}
	}
}

func TestHistogramQuantileWithinFactorTwo(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond) // 1e6 ns -> bucket upper bound 2^20 = 1048576
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		got := int64(h.Quantile(q))
		if got < 1e6 || got > 2e6 {
			t.Errorf("Quantile(%g) = %d ns, want within [1e6, 2e6]", q, got)
		}
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", h.Count())
	}
	if h.Sum() != 1000*time.Millisecond {
		t.Errorf("Sum = %v, want 1s", h.Sum())
	}
	s := h.Summary()
	if s.MeanNS != 1e6 || s.P50NS != s.P99NS {
		t.Errorf("unexpected summary %+v", s)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	var h Histogram
	// 90 fast samples, 10 slow: p50 must land near fast, p99 near slow.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 > 32*time.Microsecond {
		t.Errorf("p50 = %v, want <= 32µs", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Errorf("p99 = %v, want >= 100ms", p99)
	}
}

func TestHistogramPrometheusLints(t *testing.T) {
	var set Set
	set.ObserveRequest(EndpointCoalesce, 3*time.Millisecond)
	set.ObservePhase(EndpointCoalesce, PhaseDecode, 100*time.Microsecond)
	set.ObservePhase(EndpointCoalesce, PhaseRace, 2*time.Millisecond)
	set.ObserveRequest(EndpointSpill, 40*time.Microsecond)
	var buf bytes.Buffer
	set.WritePrometheus(&buf)
	WriteRuntimePrometheus(&buf)
	if problems := LintPrometheus(buf.String()); len(problems) != 0 {
		t.Fatalf("lint problems:\n%s", strings.Join(problems, "\n"))
	}
	out := buf.String()
	for _, want := range []string{
		`regcoal_request_duration_seconds_bucket{endpoint="coalesce",le="+Inf"} 1`,
		`regcoal_phase_duration_seconds_bucket{endpoint="coalesce",phase="race",le="+Inf"} 1`,
		"regcoal_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, `endpoint="allocate"`) {
		t.Error("zero-sample endpoint should be skipped")
	}
}

func TestIdleSetPrometheusLints(t *testing.T) {
	// A server that has taken no traffic must still scrape clean: a
	// HELP/TYPE header with zero samples is a strict-lint violation, so
	// an all-empty family is omitted entirely.
	var set Set
	var buf bytes.Buffer
	set.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("idle set emitted %q, want empty", buf.String())
	}
	WriteRuntimePrometheus(&buf)
	if problems := LintPrometheus(buf.String()); len(problems) != 0 {
		t.Fatalf("lint problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLintPrometheusCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"no HELP":          "# TYPE foo counter\nfoo 1\n",
		"no TYPE":          "# HELP foo text\nfoo 1\n",
		"bad name":         "# HELP 9foo t\n# TYPE 9foo counter\n9foo 1\n",
		"duplicate series": "# HELP foo t\n# TYPE foo counter\nfoo 1\nfoo 1\n",
		"non-monotone buckets": "# HELP h t\n# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="0.2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\n" +
			"h_sum 1\nh_count 5\n",
		"le out of order": "# HELP h t\n# TYPE h histogram\n" +
			`h_bucket{le="0.2"} 1` + "\n" + `h_bucket{le="0.1"} 1` + "\n" + `h_bucket{le="+Inf"} 1` + "\n" +
			"h_sum 1\nh_count 1\n",
		"missing +Inf": "# HELP h t\n# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 1` + "\nh_sum 1\nh_count 1\n",
		"count mismatch": "# HELP h t\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 5\n",
	}
	for name, payload := range cases {
		if problems := LintPrometheus(payload); len(problems) == 0 {
			t.Errorf("%s: lint passed, want failure", name)
		}
	}
	clean := "# HELP ok t\n# TYPE ok gauge\nok 42\n"
	if problems := LintPrometheus(clean); len(problems) != 0 {
		t.Errorf("clean payload flagged: %v", problems)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	tr := NewTracer(4, 4, 0)
	id := tr.NewID()
	if id.IsZero() {
		t.Fatal("minted zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() length %d, want 32", len(s))
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("round trip failed: %s -> %v ok=%v", s, back, ok)
	}
	if _, ok := ParseTraceID("xyz"); ok {
		t.Error("parsed malformed ID")
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Error("parsed zero ID as valid")
	}
	if id2 := tr.NewID(); id2 == id {
		t.Error("consecutive IDs collide")
	}
}

func TestTracePhasesAndHeader(t *testing.T) {
	tr := NewTracer(4, 4, 0)
	trace := tr.Start(EndpointCoalesce, TraceID{})
	trace.BeginPhase(PhaseDecode)
	trace.EndPhase()
	trace.BeginPhase(PhaseRace) // left open: Finish must close it
	tr.Finish(trace)

	views := tr.Recent(0)
	if len(views) != 1 {
		t.Fatalf("recent = %d entries, want 1", len(views))
	}
	v := views[0]
	if len(v.Phases) != 2 || v.Phases[0].Phase != "decode" || v.Phases[1].Phase != "race" {
		t.Fatalf("unexpected phases %+v", v.Phases)
	}

	// header round trip from a fresh trace (rings store copies)
	trace2 := tr.Start(EndpointSpill, TraceID{})
	trace2.BeginPhase(PhaseCanon)
	time.Sleep(time.Millisecond)
	trace2.EndPhase()
	hdr := BuildPhasesHeader(trace2)
	if hdr == "" || !strings.HasPrefix(hdr, "canon=") {
		t.Fatalf("header = %q", hdr)
	}
	parsed := ParsePhases(hdr)
	if parsed["canon"] < int64(time.Millisecond)/2 {
		t.Fatalf("parsed canon = %d ns, want >= 0.5ms", parsed["canon"])
	}
	tr.Finish(trace2)

	if ParsePhases("") != nil {
		t.Error("empty header should parse to nil")
	}
	if got := ParsePhases("bogus=12;decode=5;decode=x"); len(got) != 1 || got["decode"] != 5 {
		t.Errorf("ParsePhases skip behavior wrong: %v", got)
	}
}

func TestTraceMemberTimeline(t *testing.T) {
	tr := NewTracer(4, 4, 0)
	trace := tr.Start(EndpointCoalesce, TraceID{})
	trace.AddMember("aggressive", 10, 500, MemberWon)
	trace.AddMember("exact", 10, 900, MemberCutoff)
	trace.Winner = "aggressive"
	trace.DeadlineHit = true
	tr.Finish(trace)

	v := tr.Recent(1)[0]
	if len(v.Race) != 2 || v.Race[0].State != "won" || v.Race[1].State != "cutoff" {
		t.Fatalf("unexpected race timeline %+v", v.Race)
	}
	if !v.DeadlineHit || v.Winner != "aggressive" {
		t.Fatalf("deadline/winner not preserved: %+v", v)
	}

	var text bytes.Buffer
	writeViewText(&text, v)
	for _, want := range []string{"deadline_hit", "winner=aggressive", "exact", "cutoff"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text view missing %q:\n%s", want, text.String())
		}
	}
}

func TestTracerSlowRing(t *testing.T) {
	tr := NewTracer(8, 2, 0)
	durs := []time.Duration{5 * time.Millisecond, time.Millisecond, 20 * time.Millisecond, 10 * time.Millisecond}
	for _, d := range durs {
		trace := tr.Start(EndpointCoalesce, TraceID{})
		trace.Start = time.Now().Add(-d) // backdate so DurNS ≈ d
		tr.Finish(trace)
	}
	slow := tr.Slow(0)
	if len(slow) != 2 {
		t.Fatalf("slow ring holds %d, want 2", len(slow))
	}
	if slow[0].DurationNS < slow[1].DurationNS {
		t.Error("slow views not sorted slowest-first")
	}
	if slow[1].DurationNS < int64(9*time.Millisecond) {
		t.Errorf("slow ring kept a fast trace: %v", time.Duration(slow[1].DurationNS))
	}
}

func TestTracerRecentRingWraps(t *testing.T) {
	tr := NewTracer(3, 1, time.Hour)
	for i := 0; i < 5; i++ {
		trace := tr.Start(EndpointBatch, TraceID{})
		tr.Finish(trace)
	}
	if got := len(tr.Recent(0)); got != 3 {
		t.Fatalf("recent = %d entries, want 3 after wrap", got)
	}
	if got := len(tr.Recent(2)); got != 2 {
		t.Fatalf("Recent(2) = %d entries", got)
	}
}

func TestTracerActiveView(t *testing.T) {
	tr := NewTracer(4, 4, 0)
	trace := tr.Start(EndpointAllocate, TraceID{})
	act := tr.Active()
	if len(act) != 1 || act[0].Endpoint != "allocate" || act[0].ID != trace.ID.String() {
		t.Fatalf("active = %+v", act)
	}
	tr.Finish(trace)
	if len(tr.Active()) != 0 {
		t.Error("finished trace still active")
	}
}

func TestServeDebugViews(t *testing.T) {
	tr := NewTracer(4, 4, 0)
	trace := tr.Start(EndpointCoalesce, TraceID{})
	trace.BeginPhase(PhaseDecode)
	trace.EndPhase()
	tr.Finish(trace)

	for _, view := range []string{"recent", "slow", "active"} {
		rec := httptest.NewRecorder()
		tr.ServeDebug(rec, httptest.NewRequest("GET", "/debug/requests?view="+view, nil))
		if rec.Code != 200 {
			t.Fatalf("view=%s status %d", view, rec.Code)
		}
		var payload struct {
			View     string            `json:"view"`
			Requests []json.RawMessage `json:"requests"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			t.Fatalf("view=%s bad JSON: %v", view, err)
		}
		if payload.View != view {
			t.Errorf("view echoed as %q", payload.View)
		}
	}

	rec := httptest.NewRecorder()
	tr.ServeDebug(rec, httptest.NewRequest("GET", "/debug/requests?view=recent&format=text", nil))
	if !strings.Contains(rec.Body.String(), "endpoint=coalesce") {
		t.Errorf("text view missing trace line:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	tr.ServeDebug(rec, httptest.NewRequest("GET", "/debug/requests?view=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bogus view status %d, want 400", rec.Code)
	}
}

func TestSpliceTraceJSON(t *testing.T) {
	tr := NewTracer(4, 4, 0)
	trace := tr.Start(EndpointCoalesce, TraceID{})
	trace.BeginPhase(PhaseDecode)
	trace.EndPhase()
	trace.DurNS = trace.Since()

	body := []byte(`{"k":4,"moves_kept":3}`)
	out := SpliceTraceJSON(body, trace)
	if !bytes.HasPrefix(out, []byte(`{"k":4,"moves_kept":3,"trace":{`)) {
		t.Fatalf("splice prefix wrong: %s", out)
	}
	var decoded struct {
		K     int `json:"k"`
		Trace struct {
			ID     string      `json:"id"`
			Phases []PhaseView `json:"phases"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("spliced body not valid JSON: %v\n%s", err, out)
	}
	if decoded.K != 4 || decoded.Trace.ID != trace.ID.String() || len(decoded.Trace.Phases) != 1 {
		t.Fatalf("decoded splice wrong: %+v", decoded)
	}

	if got := SpliceTraceJSON([]byte(`[1,2]`), trace); !bytes.Equal(got, []byte(`[1,2]`)) {
		t.Error("non-object body should pass through unchanged")
	}
	if got := SpliceTraceJSON(body, nil); !bytes.Equal(got, body) {
		t.Error("nil trace should pass through unchanged")
	}
	tr.Finish(trace)
}

func TestNilTraceMethodsSafe(t *testing.T) {
	var tr *Trace
	tr.BeginPhase(PhaseDecode)
	if d := tr.EndPhase(); d != 0 {
		t.Error("nil EndPhase nonzero")
	}
	tr.AddMember("x", 0, 1, MemberFinished)
	if h := BuildPhasesHeader(nil); h != "" {
		t.Errorf("BuildPhasesHeader(nil) = %q", h)
	}
}
