package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus is a strict checker for the Prometheus text exposition
// format, run by tests against every tier's /metrics output. It enforces
// more than the format requires — every sample family must carry a
// HELP/TYPE pair, histogram buckets must be cumulative with strictly
// increasing finite le bounds and end in +Inf equal to _count — so a
// metric that renders but would confuse a scraper fails loudly in CI
// instead of quietly on a dashboard.
//
// Returned problems are human-readable "line N: ..." strings; an empty
// slice means the payload passed.
func LintPrometheus(payload string) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	helpFor := map[string]bool{}
	typeFor := map[string]string{}
	sampled := map[string]int{} // family -> first sample line
	seenSeries := map[string]int{}

	type histSeries struct {
		line    int
		buckets []bucketSample // in emission order
		sum     bool
		count   bool
		countV  float64
	}
	hists := map[string]*histSeries{} // family + "|" + non-le labels

	sc := bufio.NewScanner(strings.NewReader(payload))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				addf(lineNo, "malformed comment %q (want '# HELP name text' or '# TYPE name type')", line)
				continue
			}
			switch kind {
			case "HELP":
				if helpFor[name] {
					addf(lineNo, "duplicate HELP for %s", name)
				}
				if rest == "" {
					addf(lineNo, "empty HELP text for %s", name)
				}
				helpFor[name] = true
			case "TYPE":
				if _, dup := typeFor[name]; dup {
					addf(lineNo, "duplicate TYPE for %s", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf(lineNo, "invalid TYPE %q for %s", rest, name)
				}
				if sampled[name] != 0 {
					addf(lineNo, "TYPE for %s appears after its first sample (line %d)", name, sampled[name])
				}
				typeFor[name] = rest
			}
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			addf(lineNo, "malformed sample %q", line)
			continue
		}
		if !validMetricName(name) {
			addf(lineNo, "invalid metric name %q", name)
		}
		family := familyOf(name, typeFor)
		if sampled[family] == 0 {
			sampled[family] = lineNo
		}
		series := name + "{" + labels + "}"
		if prev := seenSeries[series]; prev != 0 {
			addf(lineNo, "duplicate series %s (first at line %d)", series, prev)
		}
		seenSeries[series] = lineNo

		if typeFor[family] == "histogram" {
			key := family + "|" + labelsWithoutLE(labels)
			h := hists[key]
			if h == nil {
				h = &histSeries{line: lineNo}
				hists[key] = h
			}
			switch {
			case name == family+"_bucket":
				le, leOK := leOf(labels)
				if !leOK {
					addf(lineNo, "histogram bucket %s missing le label", series)
					continue
				}
				h.buckets = append(h.buckets, bucketSample{line: lineNo, le: le, count: value})
			case name == family+"_sum":
				h.sum = true
			case name == family+"_count":
				h.count = true
				h.countV = value
			}
		}
	}

	for name := range sampled {
		if !helpFor[name] {
			problems = append(problems, fmt.Sprintf("family %s: sampled without HELP", name))
		}
		if _, ok := typeFor[name]; !ok {
			problems = append(problems, fmt.Sprintf("family %s: sampled without TYPE", name))
		}
	}
	for name := range typeFor {
		if sampled[name] == 0 {
			problems = append(problems, fmt.Sprintf("family %s: HELP/TYPE with no samples", name))
		}
	}

	histKeys := make([]string, 0, len(hists))
	for k := range hists {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	for _, key := range histKeys {
		h := hists[key]
		id := strings.Replace(key, "|", "{", 1) + "}"
		if len(h.buckets) == 0 {
			problems = append(problems, fmt.Sprintf("histogram %s: no buckets", id))
			continue
		}
		last := h.buckets[len(h.buckets)-1]
		if !isInf(last.le) {
			problems = append(problems, fmt.Sprintf("histogram %s: last bucket le=%q, want +Inf", id, last.le))
		}
		prevBound := -1.0
		prevCount := -1.0
		for i, b := range h.buckets {
			if isInf(b.le) {
				if i != len(h.buckets)-1 {
					problems = append(problems, fmt.Sprintf("line %d: histogram %s: +Inf bucket not last", b.line, id))
				}
			} else {
				bound, err := strconv.ParseFloat(b.le, 64)
				if err != nil {
					problems = append(problems, fmt.Sprintf("line %d: histogram %s: unparsable le %q", b.line, id, b.le))
					continue
				}
				if bound <= prevBound {
					problems = append(problems, fmt.Sprintf("line %d: histogram %s: le %q not strictly increasing", b.line, id, b.le))
				}
				prevBound = bound
			}
			if b.count < prevCount {
				problems = append(problems, fmt.Sprintf("line %d: histogram %s: bucket counts not monotone (%g after %g)", b.line, id, b.count, prevCount))
			}
			prevCount = b.count
		}
		if !h.sum {
			problems = append(problems, fmt.Sprintf("histogram %s: missing _sum", id))
		}
		if !h.count {
			problems = append(problems, fmt.Sprintf("histogram %s: missing _count", id))
		} else if isInf(last.le) && h.countV != last.count {
			problems = append(problems, fmt.Sprintf("histogram %s: _count %g != +Inf bucket %g", id, h.countV, last.count))
		}
	}

	sort.Strings(problems)
	return problems
}

type bucketSample struct {
	line  int
	le    string
	count float64
}

func isInf(le string) bool { return le == "+Inf" || le == "Inf" }

// familyOf maps a sample name to its metric family: histogram samples
// named family_bucket/_sum/_count belong to the family that declared
// TYPE histogram.
func familyOf(name string, typeFor map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typeFor[base] == "histogram" {
			return base
		}
	}
	return name
}

func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", false
	}
	name = fields[2]
	if !validMetricName(name) {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, true
}

// parseSample splits "name{labels} value" or "name value".
func parseSample(line string) (name, labels string, value float64, ok bool) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", "", 0, false
	} else if rest[i] == '{' {
		name = rest[:i]
		j := strings.Index(rest[i:], "}")
		if j < 0 {
			return "", "", 0, false
		}
		labels = rest[i+1 : i+j]
		rest = strings.TrimSpace(rest[i+j+1:])
	} else {
		name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	if name == "" || rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, false
	}
	if labels != "" && !validLabels(labels) {
		return "", "", 0, false
	}
	return name, labels, v, true
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabels checks label="value" pairs joined by commas, values
// double-quoted.
func validLabels(labels string) bool {
	rest := labels
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return false
		}
		name := rest[:eq]
		if !validMetricName(name) || strings.Contains(name, ":") {
			return false
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return false
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return false
		}
		rest = rest[end+1:]
		if rest == "" {
			return true
		}
		if rest[0] != ',' {
			return false
		}
		rest = rest[1:]
	}
	return true
}

// labelsWithoutLE strips the le pair so buckets of one series group
// together.
func labelsWithoutLE(labels string) string {
	if labels == "" {
		return ""
	}
	parts := strings.Split(labels, ",")
	out := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) {
			continue
		}
		out = append(out, p)
	}
	return strings.Join(out, ",")
}

// leOf extracts the le label value.
func leOf(labels string) (string, bool) {
	for _, p := range strings.Split(labels, ",") {
		if v, ok := strings.CutPrefix(p, `le="`); ok && strings.HasSuffix(v, `"`) {
			return strings.TrimSuffix(v, `"`), true
		}
	}
	return "", false
}
