package obs

import (
	"io"
	"strings"
	"time"
)

// Endpoint identifies which request family a sample belongs to.
type Endpoint int

const (
	EndpointCoalesce Endpoint = iota
	EndpointAllocate
	EndpointSpill
	EndpointBatch
	// EndpointDelta is the session layer's POST /v1/coalesce/delta
	// (create, apply-delta, and close all record here).
	EndpointDelta
	NumEndpoints
)

var endpointNames = [NumEndpoints]string{"coalesce", "allocate", "spill", "batch", "delta"}

func (e Endpoint) String() string {
	if e < 0 || e >= NumEndpoints {
		return "unknown"
	}
	return endpointNames[e]
}

// Phase identifies one stage of the request path. The solve endpoints
// pass through them in order; PhasePeer exists only on cluster workers
// (the tiered-cache lookup against the owning shard).
type Phase int

const (
	// PhaseDecode is JSON decode plus graph build and validation.
	PhaseDecode Phase = iota
	// PhaseCanon is Weisfeiler-Leman canonicalization and cache-key
	// construction.
	PhaseCanon
	// PhasePeer is the cluster worker's peer cache fill (L2 lookup).
	PhasePeer
	// PhaseCache is the local result-cache lookup.
	PhaseCache
	// PhaseRace is the portfolio race, queue wait included.
	PhaseRace
	// PhaseEncode is response rendering and JSON encode.
	PhaseEncode
	NumPhases
)

var phaseNames = [NumPhases]string{"decode", "canon", "peer", "cache", "race", "encode"}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// ParsePhase resolves a phase name back to its enum (loadgen decodes the
// X-Regcoal-Phases header with it). Returns NumPhases for unknown names.
func ParsePhase(name string) Phase {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i)
		}
	}
	return NumPhases
}

// Set is a server's full latency-histogram family: one end-to-end
// histogram per endpoint plus one per (endpoint, phase). Everything is
// preallocated; recording is atomic adds only.
type Set struct {
	request [NumEndpoints]Histogram
	phase   [NumEndpoints][NumPhases]Histogram
}

// NewSet builds an empty Set.
func NewSet() *Set { return &Set{} }

// ObserveRequest records one end-to-end request latency.
func (s *Set) ObserveRequest(e Endpoint, d time.Duration) {
	if e >= 0 && e < NumEndpoints {
		s.request[e].Observe(d)
	}
}

// ObservePhase records one phase latency.
func (s *Set) ObservePhase(e Endpoint, p Phase, d time.Duration) {
	if e >= 0 && e < NumEndpoints && p >= 0 && p < NumPhases {
		s.phase[e][p].Observe(d)
	}
}

// Request exposes an endpoint's end-to-end histogram.
func (s *Set) Request(e Endpoint) *Histogram { return &s.request[e] }

// PhaseHistogram exposes one (endpoint, phase) histogram.
func (s *Set) PhaseHistogram(e Endpoint, p Phase) *Histogram { return &s.phase[e][p] }

// WritePrometheus renders the set as two histogram families:
// regcoal_request_duration_seconds{endpoint=...} and
// regcoal_phase_duration_seconds{endpoint=...,phase=...}. Series with
// zero samples are skipped (an endpoint never hit emits nothing), and a
// family whose every series is empty is omitted entirely — HELP/TYPE
// included — so an idle server's scrape stays strict-lint clean (the
// linter rejects a header with no samples) and scrape size stays
// proportional to live traffic shape.
func (s *Set) WritePrometheus(w io.Writer) {
	headed := false
	for e := Endpoint(0); e < NumEndpoints; e++ {
		if s.request[e].Count() == 0 {
			continue
		}
		if !headed {
			WritePrometheusHeader(w, "regcoal_request_duration_seconds", "End-to-end request latency per endpoint.")
			headed = true
		}
		s.request[e].WritePrometheus(w, "regcoal_request_duration_seconds", `endpoint="`+e.String()+`"`)
	}
	headed = false
	for e := Endpoint(0); e < NumEndpoints; e++ {
		for p := Phase(0); p < NumPhases; p++ {
			if s.phase[e][p].Count() == 0 {
				continue
			}
			if !headed {
				WritePrometheusHeader(w, "regcoal_phase_duration_seconds", "Per-phase request latency (decode, canon, peer, cache, race, encode).")
				headed = true
			}
			labels := `endpoint="` + e.String() + `",phase="` + p.String() + `"`
			s.phase[e][p].WritePrometheus(w, "regcoal_phase_duration_seconds", labels)
		}
	}
}

// EndpointSummary is one endpoint's /stats latency section.
type EndpointSummary struct {
	Total  QuantileSummary            `json:"total"`
	Phases map[string]QuantileSummary `json:"phases,omitempty"`
}

// Snapshot summarizes every endpoint with recorded samples, keyed by
// endpoint name — the /stats "latency" section.
func (s *Set) Snapshot() map[string]EndpointSummary {
	out := make(map[string]EndpointSummary)
	for e := Endpoint(0); e < NumEndpoints; e++ {
		if s.request[e].Count() == 0 {
			continue
		}
		es := EndpointSummary{Total: s.request[e].Summary()}
		for p := Phase(0); p < NumPhases; p++ {
			if s.phase[e][p].Count() == 0 {
				continue
			}
			if es.Phases == nil {
				es.Phases = make(map[string]QuantileSummary, int(NumPhases))
			}
			es.Phases[p.String()] = s.phase[e][p].Summary()
		}
		out[e.String()] = es
	}
	return out
}

// PhasesHeader renders a trace's phase durations as the compact
// X-Regcoal-Phases header value: "decode=1234;canon=56;..." with
// nanosecond integer values, phases in path order, zero-duration
// unvisited phases omitted. Loadgen parses it back with ParsePhases.
func BuildPhasesHeader(tr *Trace) string {
	if tr == nil || tr.NPhases == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < tr.NPhases; i++ {
		sp := &tr.Phases[i]
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(sp.Phase.String())
		b.WriteByte('=')
		writeInt(&b, sp.EndNS-sp.StartNS)
	}
	return b.String()
}

// ParsePhases decodes a PhasesHeader value into nanosecond durations per
// phase name. Malformed segments are skipped.
func ParsePhases(header string) map[string]int64 {
	if header == "" {
		return nil
	}
	out := make(map[string]int64, int(NumPhases))
	for _, seg := range strings.Split(header, ";") {
		name, val, ok := strings.Cut(seg, "=")
		if !ok {
			continue
		}
		var ns int64
		for _, c := range val {
			if c < '0' || c > '9' {
				ns = -1
				break
			}
			ns = ns*10 + int64(c-'0')
		}
		if ns < 0 || ParsePhase(name) == NumPhases {
			continue
		}
		out[name] = ns
	}
	return out
}

// writeInt appends a non-negative int64 without fmt (header building is
// per-response; keeping it cheap keeps the handler overhead flat).
func writeInt(b *strings.Builder, v int64) {
	if v < 0 {
		v = 0
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(buf[i:])
}
