package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLit(t *testing.T) {
	l := Lit(3)
	if l.Var() != 2 || !l.Positive() {
		t.Fatalf("Lit(3): var=%d pos=%v", l.Var(), l.Positive())
	}
	n := l.Neg()
	if n.Var() != 2 || n.Positive() {
		t.Fatalf("Neg: var=%d pos=%v", n.Var(), n.Positive())
	}
}

func TestSolveTrivial(t *testing.T) {
	// (x1) & (!x1) unsatisfiable.
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if _, ok := f.Solve(); ok {
		t.Fatal("x & !x should be UNSAT")
	}
	// (x1 | x2) & (!x1 | x2): satisfiable with x2 true.
	f2 := &Formula{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}}}
	assign, ok := f2.Solve()
	if !ok {
		t.Fatal("should be SAT")
	}
	if !f2.Eval(assign) {
		t.Fatalf("returned assignment %v does not satisfy", assign)
	}
	// Empty formula is satisfiable.
	if _, ok := (&Formula{NumVars: 0}).Solve(); !ok {
		t.Fatal("empty formula is SAT")
	}
	// Empty clause is unsatisfiable.
	if _, ok := (&Formula{NumVars: 1, Clauses: []Clause{{}}}).Solve(); ok {
		t.Fatal("empty clause is UNSAT")
	}
}

func TestSolveAssuming(t *testing.T) {
	// (x1 | x2): SAT with x1=false (forces x2), UNSAT with both false.
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, 2}}}
	assign, ok := f.SolveAssuming(map[int]bool{0: false})
	if !ok || assign[0] != false || assign[1] != true {
		t.Fatalf("assuming x1=false: %v, %v", assign, ok)
	}
	if _, ok := f.SolveAssuming(map[int]bool{0: false, 1: false}); ok {
		t.Fatal("both false should be UNSAT")
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	// 3 pigeons, 2 holes: var p_{i,h} = pigeon i in hole h.
	// Variables 1..6: pigeon i hole h -> 2*i + h + 1.
	v := func(i, h int) Lit { return Lit(2*i + h + 1) }
	f := &Formula{NumVars: 6}
	for i := 0; i < 3; i++ {
		f.Clauses = append(f.Clauses, Clause{v(i, 0), v(i, 1)})
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				f.Clauses = append(f.Clauses, Clause{v(i, h).Neg(), v(j, h).Neg()})
			}
		}
	}
	if _, ok := f.Solve(); ok {
		t.Fatal("pigeonhole 3-into-2 should be UNSAT")
	}
}

// Brute-force satisfiability for cross-checking DPLL.
func bruteSat(f *Formula, assume map[int]bool) bool {
	n := f.NumVars
	if n > 20 {
		panic("bruteSat too large")
	}
	for mask := 0; mask < 1<<n; mask++ {
		assign := make([]bool, n)
		for v := 0; v < n; v++ {
			assign[v] = mask&(1<<v) != 0
		}
		good := true
		for v, b := range assume {
			if assign[v] != b {
				good = false
				break
			}
		}
		if good && f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestQuickDPLLMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nvRaw, ncRaw uint8) bool {
		nv := int(nvRaw%6) + 3
		nc := int(ncRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		form := Random3SAT(rng, nv, nc)
		if form.Validate() != nil {
			return false
		}
		assign, ok := form.Solve()
		want := bruteSat(form, nil)
		if ok != want {
			return false
		}
		if ok && !form.Eval(assign) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveAssumingMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nvRaw, ncRaw uint8, fixTrue bool) bool {
		nv := int(nvRaw%5) + 3
		nc := int(ncRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		form := Random3SAT(rng, nv, nc)
		assume := map[int]bool{0: fixTrue}
		assign, ok := form.SolveAssuming(assume)
		want := bruteSat(form, assume)
		if ok != want {
			return false
		}
		if ok && (assign[0] != fixTrue || !form.Eval(assign)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTo4SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		f3 := Random3SAT(rng, 5, 12)
		f4, x0 := To4SAT(f3)
		if x0 != 5 || f4.NumVars != 6 {
			t.Fatalf("x0=%d vars=%d", x0, f4.NumVars)
		}
		for i, c := range f4.Clauses {
			if len(c) != 4 {
				t.Fatalf("clause %d has %d literals", i, len(c))
			}
			if c[3] != Lit(x0+1) {
				t.Fatalf("clause %d last literal %d, want +x0", i, c[3])
			}
		}
		// C' always satisfiable.
		if _, ok := f4.Solve(); !ok {
			t.Fatal("4SAT padding must be satisfiable with x0=true")
		}
		// C satisfiable iff C' satisfiable with x0 false.
		_, sat3 := f3.Solve()
		_, sat4f := f4.SolveAssuming(map[int]bool{x0: false})
		if sat3 != sat4f {
			t.Fatalf("equivalence broken: 3SAT=%v, 4SAT|x0=false=%v", sat3, sat4f)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := &Formula{NumVars: 2, Clauses: []Clause{{0}}}
	if bad.Validate() == nil {
		t.Fatal("zero literal must fail validation")
	}
	oob := &Formula{NumVars: 2, Clauses: []Clause{{3}}}
	if oob.Validate() == nil {
		t.Fatal("out-of-range literal must fail validation")
	}
}

func TestStringRendering(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	s := f.String()
	if s == "" {
		t.Fatal("empty render")
	}
}
