// Package sat implements CNF formulas and a DPLL solver. It is the source
// problem of the paper's Theorem 4, which reduces 3SAT (through 4SAT) to
// incremental conservative coalescing on 3-colorable graphs.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Lit is a literal in DIMACS convention: +v means variable v (1-based)
// positive, -v means its negation. Zero is invalid.
type Lit int

// Var returns the 0-based variable index of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l) - 1
	}
	return int(l) - 1
}

// Positive reports whether the literal is the positive occurrence.
func (l Lit) Positive() bool { return l > 0 }

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula over NumVars variables (0-based indices,
// literals 1-based per DIMACS).
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate reports the first structural problem: zero literal or variable
// out of range.
func (f *Formula) Validate() error {
	for i, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("sat: clause %d has zero literal", i)
			}
			if l.Var() >= f.NumVars {
				return fmt.Errorf("sat: clause %d references variable %d beyond %d", i, l.Var()+1, f.NumVars)
			}
		}
	}
	return nil
}

// Eval reports whether the assignment (one bool per variable) satisfies the
// formula.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the formula in a compact human form.
func (f *Formula) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cnf vars=%d clauses=%d:", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		b.WriteString(" (")
		for i, l := range c {
			if i > 0 {
				b.WriteString("|")
			}
			if l < 0 {
				fmt.Fprintf(&b, "!x%d", l.Var()+1)
			} else {
				fmt.Fprintf(&b, "x%d", l.Var()+1)
			}
		}
		b.WriteString(")")
	}
	return b.String()
}

// value of a variable during search.
type value int8

const (
	unset value = iota
	vTrue
	vFalse
)

// Solve decides satisfiability with DPLL (unit propagation + first-unset
// branching). It returns a satisfying assignment when one exists.
func (f *Formula) Solve() ([]bool, bool) {
	return f.SolveAssuming(nil)
}

// SolveAssuming decides satisfiability under the given forced values:
// assume maps variable index to required truth value. Theorem 4's question
// "is C satisfiable with x0 false" is SolveAssuming(map[int]bool{x0:false}).
func (f *Formula) SolveAssuming(assume map[int]bool) ([]bool, bool) {
	assign := make([]value, f.NumVars)
	for v, b := range assume {
		want := vFalse
		if b {
			want = vTrue
		}
		if assign[v] != unset && assign[v] != want {
			return nil, false
		}
		assign[v] = want
	}
	if !f.dpll(assign) {
		return nil, false
	}
	out := make([]bool, f.NumVars)
	for v, val := range assign {
		out[v] = val == vTrue // unset variables default to false
	}
	return out, true
}

func (f *Formula) dpll(assign []value) bool {
	// Unit propagation to fixpoint.
	trail := []int{} // variables set by propagation at this level
	undo := func() {
		for _, v := range trail {
			assign[v] = unset
		}
	}
	for {
		progress := false
		for _, c := range f.Clauses {
			unassigned := Lit(0)
			count := 0
			satisfied := false
			for _, l := range c {
				switch assign[l.Var()] {
				case unset:
					unassigned = l
					count++
				case vTrue:
					if l.Positive() {
						satisfied = true
					}
				case vFalse:
					if !l.Positive() {
						satisfied = true
					}
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if count == 0 {
				undo()
				return false // conflict
			}
			if count == 1 {
				v := unassigned.Var()
				if unassigned.Positive() {
					assign[v] = vTrue
				} else {
					assign[v] = vFalse
				}
				trail = append(trail, v)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Find a branching variable.
	branch := -1
	for v, val := range assign {
		if val == unset {
			branch = v
			break
		}
	}
	if branch == -1 {
		// Fully assigned and no conflicting clause: check all satisfied.
		for _, c := range f.Clauses {
			sat := false
			for _, l := range c {
				if (assign[l.Var()] == vTrue) == l.Positive() {
					sat = true
					break
				}
			}
			if !sat {
				undo()
				return false
			}
		}
		return true
	}
	for _, try := range []value{vTrue, vFalse} {
		assign[branch] = try
		if f.dpll(assign) {
			return true
		}
		assign[branch] = unset
	}
	undo()
	return false
}

// Random3SAT returns a uniform random 3-CNF with nVars variables and
// nClauses clauses of three distinct variables each.
func Random3SAT(rng *rand.Rand, nVars, nClauses int) *Formula {
	if nVars < 3 {
		panic("sat: Random3SAT needs at least 3 variables")
	}
	f := &Formula{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		vars := rng.Perm(nVars)[:3]
		c := make(Clause, 3)
		for j, v := range vars {
			l := Lit(v + 1)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// To4SAT implements the padding step of the paper's Theorem 4: given a
// 3-CNF C over x1..xn, add a fresh variable x0 (index NumVars in the result)
// and extend every clause with the positive literal x0. The result C' is
// always satisfiable (set x0 true), and C is satisfiable iff C' is
// satisfiable with x0 false. The returned int is the index of x0.
func To4SAT(f *Formula) (*Formula, int) {
	x0 := f.NumVars
	out := &Formula{NumVars: f.NumVars + 1}
	for _, c := range f.Clauses {
		nc := make(Clause, len(c), len(c)+1)
		copy(nc, c)
		nc = append(nc, Lit(x0+1))
		out.Clauses = append(out.Clauses, nc)
	}
	return out, x0
}
