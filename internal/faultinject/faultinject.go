// Package faultinject is the deterministic fault-injection layer behind
// the cluster's chaos tests. A Plan is a seeded list of rules — drop,
// delay, error, or blackhole per peer per request-count window — and an
// Injector evaluates it reproducibly: the decision for the N-th request
// a component sends to (or receives from) a peer depends only on the
// plan's seed, the peer's name, and N, never on wall-clock time or
// scheduling. The same plan therefore produces the same fault sequence
// on every run, which is what lets the chaos differential tests assert
// byte-identity under failure instead of merely surviving it.
//
// Faults apply on two sides, and every rule belongs to exactly one:
//
//   - client: evaluated by the Transport wrapper before a request leaves
//     (drop and blackhole become transport errors, delay sleeps). This is
//     how a dead or unreachable peer is simulated — the receiving process
//     never sees the request.
//   - server: evaluated by the Middleware before a /v1/* request is
//     handled (error answers an injected 5xx, delay sleeps). This is how
//     a misbehaving-but-alive worker is simulated.
//
// Rules default their side from their mode (drop/blackhole → client,
// error → server, delay → client) so plans stay terse; Side overrides.
// Peers are addressed by stable names — topologies name workers "w0",
// "w1", ... in peer-list order (NameMap) — so one plan file works across
// in-process tests, serve, and loadgen regardless of ports.
package faultinject

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Modes a Rule can inject.
const (
	// ModeDrop fails the request with a transport error (client side).
	ModeDrop = "drop"
	// ModeBlackhole is drop by another name, conventionally used with an
	// open-ended window to take a peer down for the rest of the run.
	ModeBlackhole = "blackhole"
	// ModeDelay sleeps DelayMS before letting the request proceed.
	ModeDelay = "delay"
	// ModeError answers an injected Status (default 500) before the
	// handler runs (server side).
	ModeError = "error"
)

// Sides a Rule can apply on.
const (
	SideClient = "client"
	SideServer = "server"
)

// Rule injects one fault mode for one peer over one request-count
// window. Windows are half-open [From, To) over the per-(peer, side)
// request counter of the evaluating component, counted from 0; To == 0
// means unbounded. Prob in (0, 1) makes the fault probabilistic but
// still deterministic — the coin for request N is a hash of (seed,
// peer, side, N). Prob == 0 means always (the common case reads as
// "blackhole w1 from request 5" without stating a probability).
type Rule struct {
	Peer    string  `json:"peer"` // "w0", ..., or "*" for every peer
	Mode    string  `json:"mode"`
	Side    string  `json:"side,omitempty"` // default derived from Mode
	From    int64   `json:"from,omitempty"`
	To      int64   `json:"to,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
	DelayMS int64   `json:"delay_ms,omitempty"`
	Status  int     `json:"status,omitempty"` // error mode; default 500
	// Paths restricts the rule to requests whose URL path starts with
	// one of these prefixes, and switches the rule onto its own
	// per-(rule, peer, side) request counter — its window counts only
	// matching requests. This is how chaos plans reach internal traffic
	// (handoff streams, session imports) that path-less rules
	// deliberately never touch: {"paths": ["/internal/cache"], "mode":
	// "drop", "from": 2} kills a handoff push mid-stream without
	// perturbing solve traffic or the legacy counters existing plans'
	// windows are calibrated against.
	Paths []string `json:"paths,omitempty"`
}

// side returns the rule's effective side.
func (r *Rule) side() string {
	if r.Side != "" {
		return r.Side
	}
	switch r.Mode {
	case ModeError:
		return SideServer
	default:
		return SideClient
	}
}

// Plan is a seeded fault schedule. The zero plan injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate rejects unknown modes and sides and nonsense windows.
func (p *Plan) Validate() error {
	for i := range p.Rules {
		r := &p.Rules[i]
		switch r.Mode {
		case ModeDrop, ModeBlackhole, ModeDelay, ModeError:
		default:
			return fmt.Errorf("faultinject: rule %d: unknown mode %q", i, r.Mode)
		}
		switch r.Side {
		case "", SideClient, SideServer:
		default:
			return fmt.Errorf("faultinject: rule %d: unknown side %q", i, r.Side)
		}
		if r.Peer == "" {
			return fmt.Errorf("faultinject: rule %d: missing peer", i)
		}
		if r.To != 0 && r.To <= r.From {
			return fmt.Errorf("faultinject: rule %d: empty window [%d, %d)", i, r.From, r.To)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("faultinject: rule %d: prob %v outside [0, 1]", i, r.Prob)
		}
		if r.Mode == ModeDelay && r.DelayMS <= 0 {
			return fmt.Errorf("faultinject: rule %d: delay mode needs delay_ms > 0", i)
		}
		for _, p := range r.Paths {
			if !strings.HasPrefix(p, "/") {
				return fmt.Errorf("faultinject: rule %d: path %q must start with /", i, p)
			}
		}
	}
	return nil
}

// ParsePlan decodes and validates a JSON plan.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultinject: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: reading plan: %w", err)
	}
	return ParsePlan(data)
}

// Action is one injected fault decision.
type Action struct {
	Mode  string
	Delay time.Duration
	// Status is the injected response status for ModeError.
	Status int
}

// Stats counts what an Injector actually injected.
type Stats struct {
	Drops  int64 `json:"drops"`
	Delays int64 `json:"delays"`
	Errors int64 `json:"errors"`
}

// Injector evaluates a Plan for one component. Each component of a
// topology (the router's client, each worker's inbound handler and peer
// client) holds its own Injector, so request counters — and therefore
// windows — are per component and deterministic for serial traffic.
type Injector struct {
	plan *Plan

	mu     sync.Mutex
	counts map[string]int64 // per (side + "|" + peer)

	drops  atomic.Int64
	delays atomic.Int64
	errors atomic.Int64
}

// New builds an Injector over plan (nil plan injects nothing).
func New(plan *Plan) *Injector {
	return &Injector{plan: plan, counts: make(map[string]int64)}
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{Drops: in.drops.Load(), Delays: in.delays.Load(), Errors: in.errors.Load()}
}

// Decide advances peer's request counter for side and returns the first
// matching path-less rule's action, if any. Path-scoped rules are
// evaluated separately (DecidePath) on their own counters, so adding
// one to a plan never shifts the windows of the rules that were there.
func (in *Injector) Decide(peer, side string) (Action, bool) {
	if in.plan == nil || len(in.plan.Rules) == 0 {
		return Action{}, false
	}
	in.mu.Lock()
	key := side + "|" + peer
	n := in.counts[key]
	in.counts[key] = n + 1
	in.mu.Unlock()
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if len(r.Paths) > 0 || r.side() != side {
			continue
		}
		if r.Peer != "*" && r.Peer != peer {
			continue
		}
		if n < r.From || (r.To != 0 && n >= r.To) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && coin(in.plan.Seed, peer, side, n) >= r.Prob {
			continue
		}
		return in.action(r), true
	}
	return Action{}, false
}

// DecidePath evaluates path-scoped rules for one request. Every
// matching rule's private counter advances (windows count matching
// requests only); the first whose window and probability hit supplies
// the action.
func (in *Injector) DecidePath(peer, side, path string) (Action, bool) {
	if in.plan == nil || len(in.plan.Rules) == 0 {
		return Action{}, false
	}
	var hit *Rule
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if len(r.Paths) == 0 || r.side() != side {
			continue
		}
		if r.Peer != "*" && r.Peer != peer {
			continue
		}
		if !matchPath(r.Paths, path) {
			continue
		}
		in.mu.Lock()
		key := fmt.Sprintf("%s|%s|#%d", side, peer, i)
		n := in.counts[key]
		in.counts[key] = n + 1
		in.mu.Unlock()
		if hit != nil {
			continue // counters still advance past the winning rule
		}
		if n < r.From || (r.To != 0 && n >= r.To) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && coin(in.plan.Seed, peer, side, n) >= r.Prob {
			continue
		}
		hit = r
	}
	if hit == nil {
		return Action{}, false
	}
	return in.action(hit), true
}

func matchPath(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func (in *Injector) action(r *Rule) Action {
	act := Action{Mode: r.Mode, Delay: time.Duration(r.DelayMS) * time.Millisecond, Status: r.Status}
	if act.Status == 0 {
		act.Status = http.StatusInternalServerError
	}
	return act
}

// coin is the deterministic probability source: splitmix64 over the
// seed, the peer/side identity, and the request index, normalized to
// [0, 1).
func coin(seed int64, peer, side string, n int64) float64 {
	h := fnv.New64a()
	h.Write([]byte(side))
	h.Write([]byte{0})
	h.Write([]byte(peer))
	z := uint64(seed) ^ h.Sum64() ^ uint64(n)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// InjectedError is the transport error a dropped or blackholed request
// fails with.
type InjectedError struct {
	Peer string
	Mode string
}

func (e *InjectedError) Error() string {
	return "faultinject: " + e.Mode + " to " + e.Peer
}

// NameMap maps the i-th base URL of a peer list to the stable name
// "w<i>", the naming every fault plan addresses. Requests to a URL
// outside the list fall back to their host:port.
func NameMap(urls []string) func(*http.Request) string {
	m := make(map[string]string, len(urls))
	for i, u := range urls {
		m[strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")] = fmt.Sprintf("w%d", i)
	}
	return func(req *http.Request) string {
		if name, ok := m[req.URL.Host]; ok {
			return name
		}
		return req.URL.Host
	}
}

// transport is the client-side hook.
type transport struct {
	in     *Injector
	base   http.RoundTripper
	peerOf func(*http.Request) string
}

// Transport wraps base (nil means http.DefaultTransport) so every
// outgoing request is first judged against the plan's client-side rules
// for the peer peerOf names.
func (in *Injector) Transport(base http.RoundTripper, peerOf func(*http.Request) string) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base, peerOf: peerOf}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	peer := t.peerOf(req)
	act, ok := t.in.Decide(peer, SideClient)
	if !ok {
		act, ok = t.in.DecidePath(peer, SideClient, req.URL.Path)
	}
	if ok {
		switch act.Mode {
		case ModeDrop, ModeBlackhole:
			t.in.drops.Add(1)
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, &InjectedError{Peer: peer, Mode: act.Mode}
		case ModeDelay:
			t.in.delays.Add(1)
			time.Sleep(act.Delay)
		}
	}
	return t.base.RoundTrip(req)
}

// Middleware wraps next so inbound requests are first judged against
// the plan's server-side rules for this component's own name. Path-less
// rules fault only client-facing /v1/* solve traffic — internal
// replication, health, and metrics paths stay clean so injected faults
// perturb where work happens, not whether the cluster can observe
// itself. Path-scoped rules reach whatever their prefixes name,
// including /internal/* — that is how a plan kills a handoff stream or
// session import mid-flight.
func (in *Injector) Middleware(self string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		act, ok := Action{}, false
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			act, ok = in.Decide(self, SideServer)
		}
		if !ok {
			act, ok = in.DecidePath(self, SideServer, r.URL.Path)
		}
		if ok {
			switch act.Mode {
			case ModeError, ModeDrop, ModeBlackhole:
				in.errors.Add(1)
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(act.Status)
				fmt.Fprintf(rw, `{"error":"injected fault (%s)"}`, act.Mode)
				return
			case ModeDelay:
				in.delays.Add(1)
				time.Sleep(act.Delay)
			}
		}
		next.ServeHTTP(rw, r)
	})
}
