package faultinject_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regcoal/internal/faultinject"
)

func TestParsePlanValidates(t *testing.T) {
	good := `{"seed": 7, "rules": [
		{"peer": "w1", "mode": "blackhole", "from": 5},
		{"peer": "w2", "mode": "error", "prob": 0.1},
		{"peer": "*", "mode": "delay", "delay_ms": 20, "to": 10}
	]}`
	p, err := faultinject.ParsePlan([]byte(good))
	if err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	if p.Seed != 7 || len(p.Rules) != 3 {
		t.Fatalf("plan mis-parsed: %+v", p)
	}
	for _, bad := range []string{
		`{"rules":[{"peer":"w0","mode":"explode"}]}`,
		`{"rules":[{"peer":"","mode":"drop"}]}`,
		`{"rules":[{"peer":"w0","mode":"drop","from":5,"to":3}]}`,
		`{"rules":[{"peer":"w0","mode":"drop","prob":1.5}]}`,
		`{"rules":[{"peer":"w0","mode":"delay"}]}`,
		`{"rules":[{"peer":"w0","mode":"drop","side":"middle"}]}`,
	} {
		if _, err := faultinject.ParsePlan([]byte(bad)); err == nil {
			t.Errorf("plan %s accepted, want error", bad)
		}
	}
}

// The injector's decisions are a pure function of (seed, peer, side,
// request index): two injectors over one plan agree decision-for-
// decision, and windows bound exactly which indices can fault.
func TestDecideDeterministicAndWindowed(t *testing.T) {
	plan := &faultinject.Plan{Seed: 42, Rules: []faultinject.Rule{
		{Peer: "w1", Mode: faultinject.ModeBlackhole, From: 3, To: 6},
		{Peer: "w2", Mode: faultinject.ModeError, Prob: 0.5},
	}}
	a, b := faultinject.New(plan), faultinject.New(plan)
	errorsSeen := 0
	for n := 0; n < 200; n++ {
		actA, okA := a.Decide("w1", faultinject.SideClient)
		actB, okB := b.Decide("w1", faultinject.SideClient)
		if okA != okB || actA != actB {
			t.Fatalf("request %d: injectors disagree: %v/%v vs %v/%v", n, actA, okA, actB, okB)
		}
		if want := n >= 3 && n < 6; okA != want {
			t.Fatalf("request %d: blackhole fired=%v, want %v", n, okA, want)
		}
		_, okA = a.Decide("w2", faultinject.SideServer)
		_, okB = b.Decide("w2", faultinject.SideServer)
		if okA != okB {
			t.Fatalf("request %d: probabilistic decisions disagree", n)
		}
		if okA {
			errorsSeen++
		}
	}
	// Prob 0.5 over 200 coins: anything near half; the exact count is
	// seed-determined, the test only guards against all-or-nothing.
	if errorsSeen < 50 || errorsSeen > 150 {
		t.Fatalf("prob 0.5 fired %d/200 times", errorsSeen)
	}
}

// Sides partition the rules: a client-side blackhole never fires in the
// middleware, a server-side error never fires in the transport.
func TestSidesArePartitioned(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Peer: "w0", Mode: faultinject.ModeBlackhole},
		{Peer: "w0", Mode: faultinject.ModeError},
	}}
	in := faultinject.New(plan)
	if act, ok := in.Decide("w0", faultinject.SideClient); !ok || act.Mode != faultinject.ModeBlackhole {
		t.Fatalf("client side: got %v/%v, want blackhole", act, ok)
	}
	if act, ok := in.Decide("w0", faultinject.SideServer); !ok || act.Mode != faultinject.ModeError {
		t.Fatalf("server side: got %v/%v, want error", act, ok)
	}
}

func TestTransportDropsAndNames(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
		io.WriteString(rw, "ok")
	}))
	defer backend.Close()

	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Peer: "w0", Mode: faultinject.ModeDrop, From: 1, To: 2},
	}}
	in := faultinject.New(plan)
	client := &http.Client{Transport: in.Transport(nil, faultinject.NameMap([]string{backend.URL}))}

	if _, err := client.Get(backend.URL); err != nil {
		t.Fatalf("request 0 should pass: %v", err)
	}
	_, err := client.Get(backend.URL)
	var inj *faultinject.InjectedError
	if err == nil || !errors.As(err, &inj) {
		t.Fatalf("request 1 should drop with InjectedError, got %v", err)
	}
	if inj.Peer != "w0" {
		t.Fatalf("dropped peer named %q, want w0", inj.Peer)
	}
	if _, err := client.Get(backend.URL); err != nil {
		t.Fatalf("request 2 should pass: %v", err)
	}
	if st := in.Stats(); st.Drops != 1 {
		t.Fatalf("stats drops = %d, want 1", st.Drops)
	}
}

// The middleware faults /v1/* only: health, metrics, and internal paths
// pass untouched even under an always-error rule.
func TestMiddlewareScopedToSolvePaths(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Peer: "w0", Mode: faultinject.ModeError, Status: 503},
	}}
	in := faultinject.New(plan)
	next := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	h := in.Middleware("w0", next)

	for path, want := range map[string]int{
		"/v1/coalesce":    http.StatusServiceUnavailable,
		"/v1/batch":       http.StatusServiceUnavailable,
		"/readyz":         http.StatusOK,
		"/metrics":        http.StatusOK,
		"/internal/cache": http.StatusOK,
	} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != want {
			t.Errorf("%s: status %d, want %d", path, rec.Code, want)
		}
	}
	if st := in.Stats(); st.Errors != 2 {
		t.Fatalf("stats errors = %d, want 2", st.Errors)
	}
}
