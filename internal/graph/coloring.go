package graph

import "fmt"

// Coloring assigns a color (register) to each vertex: entry v holds the
// color of vertex v, or NoColor when unassigned.
type Coloring []int

// NewColoring returns an all-unassigned coloring for n vertices.
func NewColoring(n int) Coloring {
	c := make(Coloring, n)
	for i := range c {
		c[i] = NoColor
	}
	return c
}

// Complete reports whether every vertex has a color.
func (c Coloring) Complete() bool {
	for _, col := range c {
		if col == NoColor {
			return false
		}
	}
	return true
}

// NumColors reports the number of distinct colors used (NoColor excluded).
func (c Coloring) NumColors() int {
	seen := make(map[int]bool)
	for _, col := range c {
		if col != NoColor {
			seen[col] = true
		}
	}
	return len(seen)
}

// MaxColor reports the largest color used, or NoColor if none.
func (c Coloring) MaxColor() int {
	m := NoColor
	for _, col := range c {
		if col > m {
			m = col
		}
	}
	return m
}

// Proper reports whether c is a proper coloring of g: every vertex colored,
// no interfering pair sharing a color, and all precolored vertices holding
// their pinned color.
func (c Coloring) Proper(g *Graph) bool {
	return c.Check(g) == nil
}

// Check explains why c is not a proper coloring of g, or returns nil.
func (c Coloring) Check(g *Graph) error {
	if len(c) != g.N() {
		return fmt.Errorf("coloring: length %d does not match %d vertices", len(c), g.N())
	}
	for v, col := range c {
		if col == NoColor {
			return fmt.Errorf("coloring: vertex %s uncolored", g.Name(V(v)))
		}
	}
	for _, e := range g.Edges() {
		if c[e[0]] == c[e[1]] {
			return fmt.Errorf("coloring: interfering vertices %s and %s share color %d",
				g.Name(e[0]), g.Name(e[1]), c[e[0]])
		}
	}
	for v := 0; v < g.N(); v++ {
		if pin, ok := g.Precolored(V(v)); ok && c[v] != pin {
			return fmt.Errorf("coloring: precolored vertex %s has color %d, want %d",
				g.Name(V(v)), c[v], pin)
		}
	}
	return nil
}

// CoalescedMoves reports how many affinities of g the coloring satisfies
// (same color at both endpoints) and their total weight. A coloring that
// identifies affinity endpoints is exactly the paper's notion of a
// coalescing realized by register assignment.
func (c Coloring) CoalescedMoves(g *Graph) (count int, weight int64) {
	for _, a := range g.Affinities() {
		if c[a.X] != NoColor && c[a.X] == c[a.Y] {
			count++
			weight += a.Weight
		}
	}
	return count, weight
}

// Lift translates a coloring of the quotient graph back to the original
// graph, given the old-to-new vertex mapping returned by Quotient.
func (c Coloring) Lift(old2new []V) Coloring {
	out := NewColoring(len(old2new))
	for v, nv := range old2new {
		out[v] = c[nv]
	}
	return out
}
