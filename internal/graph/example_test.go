package graph_test

import (
	"fmt"

	"regcoal/internal/graph"
)

// ExampleGraph builds a small interference graph with a move edge and
// shows the core queries: O(1) HasEdge on the bitset matrix, O(1)
// Degree, ordered neighbor iteration, and a word-parallel masked degree.
func ExampleGraph() {
	g := graph.NewNamed("a", "b", "c", "d")
	a, b, c, d := graph.V(0), graph.V(1), graph.V(2), graph.V(3)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddAffinity(a, c, 5) // coalescing a and c would save a move of weight 5

	fmt.Println("n =", g.N(), "e =", g.E())
	fmt.Println("a-b interfere:", g.HasEdge(a, b))
	fmt.Println("a-c interfere:", g.HasEdge(a, c))
	fmt.Println("deg(b) =", g.Degree(b))

	g.ForEachNeighbor(c, func(w graph.V) {
		fmt.Println("neighbor of c:", g.Name(w))
	})

	// Word-parallel: degree of b inside the mask {a, c}.
	mask := graph.NewBits(g.N())
	mask.Set(a)
	mask.Set(c)
	fmt.Println("masked deg(b) =", g.MaskedDegree(b, mask))

	// Output:
	// n = 4 e = 3
	// a-b interfere: true
	// a-c interfere: false
	// deg(b) = 2
	// neighbor of c: b
	// neighbor of c: d
	// masked deg(b) = 2
}
