package graph

import "testing"

func TestColoringProper(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	col := Coloring{0, 1, 0}
	if !col.Proper(g) {
		t.Fatalf("coloring should be proper: %v", col.Check(g))
	}
	bad := Coloring{0, 0, 1}
	if bad.Proper(g) {
		t.Fatal("interfering same-color pair accepted")
	}
	incomplete := Coloring{0, NoColor, 1}
	if incomplete.Proper(g) {
		t.Fatal("incomplete coloring accepted")
	}
	short := Coloring{0, 1}
	if short.Proper(g) {
		t.Fatal("wrong-length coloring accepted")
	}
}

func TestColoringPrecolored(t *testing.T) {
	g := New(2)
	g.SetPrecolored(0, 3)
	col := Coloring{3, 0}
	if !col.Proper(g) {
		t.Fatalf("should respect precolor: %v", col.Check(g))
	}
	col[0] = 1
	if col.Proper(g) {
		t.Fatal("violated precolor accepted")
	}
}

func TestColoringStats(t *testing.T) {
	col := Coloring{0, 2, 2, NoColor}
	if col.NumColors() != 2 {
		t.Fatalf("NumColors=%d, want 2", col.NumColors())
	}
	if col.MaxColor() != 2 {
		t.Fatalf("MaxColor=%d, want 2", col.MaxColor())
	}
	if col.Complete() {
		t.Fatal("incomplete coloring reported complete")
	}
	if NewColoring(3).NumColors() != 0 {
		t.Fatal("fresh coloring should use no colors")
	}
}

func TestCoalescedMoves(t *testing.T) {
	g := New(4)
	g.AddAffinity(0, 1, 5)
	g.AddAffinity(2, 3, 7)
	col := Coloring{1, 1, 0, 2}
	n, w := col.CoalescedMoves(g)
	if n != 1 || w != 5 {
		t.Fatalf("coalesced=%d weight=%d, want 1, 5", n, w)
	}
}
