package graph

import (
	"math/rand"
	"testing"
)

func TestBitsBasics(t *testing.T) {
	b := NewBits(130)
	if !b.Empty() || b.Count() != 0 || b.First() != -1 {
		t.Fatalf("fresh bitset not empty: count=%d first=%d", b.Count(), b.First())
	}
	for _, v := range []V{0, 63, 64, 129} {
		b.Set(v)
		if !b.Get(v) {
			t.Fatalf("Set(%d) not visible", v)
		}
	}
	if b.Count() != 4 || b.First() != 0 {
		t.Fatalf("count=%d first=%d, want 4/0", b.Count(), b.First())
	}
	b.Clear(0)
	if b.Get(0) || b.First() != 63 {
		t.Fatalf("Clear(0) broken: first=%d", b.First())
	}
	var got []V
	b.ForEach(func(v V) { got = append(got, v) })
	want := []V{63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	b.Reset()
	if !b.Empty() {
		t.Fatal("Reset left bits set")
	}
}

func TestBitsFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		b := NewBits(n)
		b.Fill(n)
		if b.Count() != n {
			t.Fatalf("Fill(%d): count %d", n, b.Count())
		}
		if n > 0 && (!b.Get(0) || !b.Get(V(n-1))) {
			t.Fatalf("Fill(%d) missing endpoints", n)
		}
	}
	// Fill with fewer bits than capacity clears the tail.
	b := NewBits(192)
	b.Fill(192)
	b.Fill(10)
	if b.Count() != 10 {
		t.Fatalf("re-Fill(10): count %d", b.Count())
	}
}

func TestBitsAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b, c := NewBits(n), NewBits(n), NewBits(n)
		want2, want3 := 0, 0
		for v := 0; v < n; v++ {
			ia, ib, ic := rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
			if ia {
				a.Set(V(v))
			}
			if ib {
				b.Set(V(v))
			}
			if ic {
				c.Set(V(v))
			}
			if ia && ib {
				want2++
			}
			if ia && ib && ic {
				want3++
			}
		}
		if got := AndCount(a, b); got != want2 {
			t.Fatalf("AndCount: got %d, want %d", got, want2)
		}
		if got := AndCount3(a, b, c); got != want3 {
			t.Fatalf("AndCount3: got %d, want %d", got, want3)
		}
	}
}
