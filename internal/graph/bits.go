package graph

import "math/bits"

// Bits is a dense bitset over vertex ids, the word-parallel currency of
// the hybrid graph representation: solver state that used to live in
// per-run map[V]bool copies (alive sets, witness cores, liveness masks,
// IRC worklists) is held as one machine word per 64 vertices, so
// membership is one AND and set-vs-set operations (intersection size,
// masked degree) run a cache line at a time.
//
// A Bits value is just a []uint64; the zero-length value is an empty
// set over zero vertices. Bits does not carry its vertex count — callers
// size it with NewBits(n) and must not Set/Get past that n.
type Bits []uint64

// wordsFor is the number of 64-bit words covering n bits.
func wordsFor(n int) int { return (n + 63) >> 6 }

// NewBits returns an empty bitset sized for vertex ids 0..n-1.
func NewBits(n int) Bits { return make(Bits, wordsFor(n)) }

// Get reports whether v is in the set.
func (b Bits) Get(v V) bool { return b[v>>6]&(1<<(uint(v)&63)) != 0 }

// Set adds v to the set.
func (b Bits) Set(v V) { b[v>>6] |= 1 << (uint(v) & 63) }

// Clear removes v from the set.
func (b Bits) Clear(v V) { b[v>>6] &^= 1 << (uint(v) & 63) }

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b Bits) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset clears every bit.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets bits 0..n-1 (and clears any words past them).
func (b Bits) Fill(n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	for i := full; i < len(b); i++ {
		b[i] = 0
	}
	if rem := uint(n) & 63; rem != 0 {
		b[full] = (1 << rem) - 1
	}
}

// CopyFrom overwrites b with o. The two must have the same length.
func (b Bits) CopyFrom(o Bits) { copy(b, o) }

// ForEach calls fn for every set bit, in increasing order.
func (b Bits) ForEach(fn func(v V)) {
	for i, w := range b {
		base := V(i << 6)
		for w != 0 {
			fn(base + V(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// First returns the smallest set bit, or -1 when the set is empty. This
// is the word-parallel "pop the smallest id" that the deterministic
// worklist disciplines (IRC, elimination) are built on.
func (b Bits) First() V {
	for i, w := range b {
		if w != 0 {
			return V(i<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// AndCount returns |a ∩ b| without materializing the intersection. The
// shorter operand bounds the scan, so a row of a larger graph can be
// intersected with a mask sized for fewer vertices.
func AndCount(a, b Bits) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// AndCount3 returns |a ∩ b ∩ c|, the three-way variant used by witness
// occupancy counting (neighbors ∩ alive ∩ witness).
func AndCount3(a, b, c Bits) int {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	if len(c) < m {
		m = len(c)
	}
	n := 0
	for i := 0; i < m; i++ {
		n += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return n
}
