package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the graph classes the paper's complexity results are
// parameterized by: arbitrary graphs, chordal graphs (as subtree-of-a-tree
// intersection graphs, Golumbic Thm 4.8 — the representation the paper's
// Theorem 5 relies on), interval graphs, and the permutation gadget of
// Figure 3. All generators take an explicit *rand.Rand so experiments are
// reproducible from a seed.

// RandomER returns an Erdős–Rényi graph G(n, p): each of the n·(n-1)/2
// possible interference edges is present independently with probability p.
func RandomER(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(V(u), V(v))
			}
		}
	}
	return g
}

// RandomTree returns the edges (parent links) of a uniformly random labelled
// tree on n nodes: parent[i] for i >= 1 is a uniform node among 0..i-1.
// (Not Prüfer-uniform, but unbiased enough for test instances.)
func RandomTree(rng *rand.Rand, n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	return parent
}

// RandomChordal returns a random chordal graph on n vertices, built as the
// intersection graph of n random subtrees of a random tree with treeNodes
// nodes. Each subtree is grown from a random root by BFS to a random size in
// [1, maxSub]. Chordality is guaranteed by construction (Golumbic Thm 4.8).
func RandomChordal(rng *rand.Rand, n, treeNodes, maxSub int) *Graph {
	if treeNodes < 1 {
		panic("graph: RandomChordal needs treeNodes >= 1")
	}
	if maxSub < 1 {
		maxSub = 1
	}
	parent := RandomTree(rng, treeNodes)
	adj := make([][]int, treeNodes)
	for i := 1; i < treeNodes; i++ {
		adj[i] = append(adj[i], parent[i])
		adj[parent[i]] = append(adj[parent[i]], i)
	}
	// Grow each subtree.
	subtrees := make([][]bool, n)
	for i := range subtrees {
		in := make([]bool, treeNodes)
		size := 1 + rng.Intn(maxSub)
		root := rng.Intn(treeNodes)
		in[root] = true
		frontier := []int{root}
		for count := 1; count < size && len(frontier) > 0; {
			// Pick a random frontier node and a random unvisited tree
			// neighbor of it.
			fi := rng.Intn(len(frontier))
			node := frontier[fi]
			var cand []int
			for _, w := range adj[node] {
				if !in[w] {
					cand = append(cand, w)
				}
			}
			if len(cand) == 0 {
				frontier[fi] = frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				continue
			}
			next := cand[rng.Intn(len(cand))]
			in[next] = true
			frontier = append(frontier, next)
			count++
		}
		subtrees[i] = in
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for t := 0; t < treeNodes; t++ {
				if subtrees[u][t] && subtrees[v][t] {
					g.AddEdge(V(u), V(v))
					break
				}
			}
		}
	}
	return g
}

// Interval describes a closed integer interval [Lo, Hi].
type Interval struct{ Lo, Hi int }

// Intersects reports whether two intervals overlap.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// IntervalGraph returns the intersection graph of the given intervals —
// vertices interfere iff their intervals overlap. Interval graphs are
// chordal; they model straight-line-code live ranges.
func IntervalGraph(intervals []Interval) *Graph {
	g := New(len(intervals))
	for u := range intervals {
		for v := u + 1; v < len(intervals); v++ {
			if intervals[u].Intersects(intervals[v]) {
				g.AddEdge(V(u), V(v))
			}
		}
	}
	return g
}

// RandomIntervals returns n random intervals over positions [0, span) with
// lengths in [1, maxLen].
func RandomIntervals(rng *rand.Rand, n, span, maxLen int) []Interval {
	if span < 1 {
		panic("graph: RandomIntervals needs span >= 1")
	}
	if maxLen < 1 {
		maxLen = 1
	}
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := rng.Intn(span)
		length := 1 + rng.Intn(maxLen)
		hi := lo + length - 1
		if hi >= span {
			hi = span - 1
		}
		ivs[i] = Interval{Lo: lo, Hi: hi}
	}
	return ivs
}

// RandomInterval returns a random interval graph (see RandomIntervals).
func RandomInterval(rng *rand.Rand, n, span, maxLen int) *Graph {
	return IntervalGraph(RandomIntervals(rng, n, span, maxLen))
}

// Permutation builds the Figure 3 gadget: a parallel copy (permutation) of p
// values. Vertices u_1..u_p are the sources (pairwise interfering: all
// simultaneously live before the copy), v_1..v_p the destinations (pairwise
// interfering after the copy), u_i interferes with v_j for i != j (source j
// is still live when destination i is written), and there is an affinity
// (u_i, v_i) of weight 1 for each move of the permutation.
//
// The returned slices hold the source and destination vertex ids. Merging
// any single pair {u_i, v_i} yields a vertex of degree 2(p-1), which is why
// local conservative rules reject each move when k <= 2(p-1), even though
// coalescing all p moves at once collapses the gadget into a p-clique
// (greedy-p-colorable).
func Permutation(p int) (g *Graph, sources, dests []V) {
	g = New(2 * p)
	sources = make([]V, p)
	dests = make([]V, p)
	for i := 0; i < p; i++ {
		sources[i] = V(i)
		dests[i] = V(p + i)
		g.SetName(sources[i], fmt.Sprintf("u%d", i+1))
		g.SetName(dests[i], fmt.Sprintf("v%d", i+1))
	}
	g.AddClique(sources...)
	g.AddClique(dests...)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				g.AddEdge(sources[i], dests[j])
			}
		}
	}
	for i := 0; i < p; i++ {
		g.AddAffinity(sources[i], dests[i], 1)
	}
	return g, sources, dests
}

// SprinkleAffinities adds count random affinities between non-interfering
// vertex pairs, each with a weight in [1, maxWeight]. It gives up after too
// many failed draws on dense graphs; the number actually added is returned.
func SprinkleAffinities(rng *rand.Rand, g *Graph, count, maxWeight int) int {
	if maxWeight < 1 {
		maxWeight = 1
	}
	n := g.N()
	if n < 2 {
		return 0
	}
	added := 0
	for attempts := 0; added < count && attempts < 50*count+100; attempts++ {
		u := V(rng.Intn(n))
		v := V(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddAffinity(u, v, int64(1+rng.Intn(maxWeight)))
		added++
	}
	return added
}

// RandomKColorable returns a graph guaranteed k-colorable: vertices are
// assigned hidden classes 0..k-1 and only cross-class edges are drawn, each
// with probability p. The hidden coloring is also returned.
func RandomKColorable(rng *rand.Rand, n, k int, p float64) (*Graph, Coloring) {
	if k < 1 {
		panic("graph: RandomKColorable needs k >= 1")
	}
	hidden := make(Coloring, n)
	for i := range hidden {
		hidden[i] = rng.Intn(k)
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if hidden[u] != hidden[v] && rng.Float64() < p {
				g.AddEdge(V(u), V(v))
			}
		}
	}
	return g, hidden
}
