package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.E() != 0 {
		t.Fatalf("got n=%d e=%d, want 4, 0", g.N(), g.E())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate: no-op
	if g.E() != 2 {
		t.Fatalf("E=%d, want 2", g.E())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) should exist symmetrically")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("edge (0,2) should not exist")
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1)=%d, want 2", d)
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Fatalf("Neighbors(1)=%v, want [0 2]", ns)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.E() != 1 {
		t.Fatalf("edge (0,1) should be gone, E=%d", g.E())
	}
	g.RemoveEdge(0, 1) // no-op
	if g.E() != 1 {
		t.Fatalf("E=%d after removing absent edge, want 1", g.E())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(v, v) should panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HasEdge out of range should panic")
		}
	}()
	New(2).HasEdge(0, 5)
}

func TestNames(t *testing.T) {
	g := NewNamed("a", "b")
	if g.Name(0) != "a" || g.Name(1) != "b" {
		t.Fatalf("names wrong: %q %q", g.Name(0), g.Name(1))
	}
	v := g.AddVertex()
	if got := g.Name(v); got != "v2" {
		t.Fatalf("unnamed vertex renders as %q, want v2", got)
	}
	g.SetName(v, "c")
	if got, ok := g.VertexByName("c"); !ok || got != v {
		t.Fatalf("VertexByName(c)=%d,%v", got, ok)
	}
	if _, ok := g.VertexByName("zz"); ok {
		t.Fatal("VertexByName should miss")
	}
}

func TestAffinities(t *testing.T) {
	g := New(4)
	g.AddAffinity(2, 1, 5)
	g.AddAffinity(1, 2, 3)
	g.AddAffinity(0, 3, 1)
	if g.NumAffinities() != 3 {
		t.Fatalf("NumAffinities=%d", g.NumAffinities())
	}
	if w := g.TotalAffinityWeight(); w != 9 {
		t.Fatalf("TotalAffinityWeight=%d, want 9", w)
	}
	// Canonical endpoint order.
	for _, a := range g.Affinities() {
		if a.X > a.Y {
			t.Fatalf("affinity %v not canonical", a)
		}
	}
	g.NormalizeAffinities()
	if g.NumAffinities() != 2 {
		t.Fatalf("after normalize NumAffinities=%d, want 2", g.NumAffinities())
	}
	if w := g.TotalAffinityWeight(); w != 9 {
		t.Fatalf("normalize lost weight: %d", w)
	}
}

func TestNormalizeDropsSelfAffinity(t *testing.T) {
	g := New(2)
	g.AddAffinity(1, 1, 7)
	g.AddAffinity(0, 1, 2)
	g.NormalizeAffinities()
	if g.NumAffinities() != 1 {
		t.Fatalf("self-affinity survived: %v", g.Affinities())
	}
}

func TestPrecolored(t *testing.T) {
	g := New(3)
	if g.HasPrecolored() {
		t.Fatal("fresh graph should have no precoloring")
	}
	g.SetPrecolored(1, 2)
	if c, ok := g.Precolored(1); !ok || c != 2 {
		t.Fatalf("Precolored(1)=%d,%v", c, ok)
	}
	if !g.HasPrecolored() {
		t.Fatal("HasPrecolored should be true")
	}
	g.ClearPrecolored(1)
	if _, ok := g.Precolored(1); ok {
		t.Fatal("ClearPrecolored failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddAffinity(1, 2, 4)
	g.SetPrecolored(0, 1)
	h := g.Clone()
	h.AddEdge(1, 2)
	h.AddAffinity(0, 1, 1)
	h.SetPrecolored(2, 0)
	if g.HasEdge(1, 2) || g.NumAffinities() != 1 {
		t.Fatal("clone mutated original")
	}
	if _, ok := g.Precolored(2); ok {
		t.Fatal("clone precoloring leaked")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewNamed("a", "b", "c", "d")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddAffinity(0, 2, 5)
	g.AddAffinity(1, 3, 2)
	g.SetPrecolored(2, 1)

	sub, old2new := g.InducedSubgraph([]V{0, 1, 2})
	if sub.N() != 3 || sub.E() != 2 {
		t.Fatalf("sub n=%d e=%d, want 3, 2", sub.N(), sub.E())
	}
	if old2new[3] != -1 {
		t.Fatal("dropped vertex should map to -1")
	}
	if sub.NumAffinities() != 1 {
		t.Fatalf("affinity filtering wrong: %v", sub.Affinities())
	}
	if c, ok := sub.Precolored(old2new[2]); !ok || c != 1 {
		t.Fatal("precoloring not carried to subgraph")
	}
	if sub.Name(old2new[2]) != "c" {
		t.Fatal("names not carried to subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueOps(t *testing.T) {
	g := New(5)
	g.AddClique(0, 1, 2, 3)
	if g.E() != 6 {
		t.Fatalf("K4 has %d edges, want 6", g.E())
	}
	if !g.IsClique([]V{0, 1, 2, 3}) {
		t.Fatal("IsClique(K4) = false")
	}
	if g.IsClique([]V{0, 1, 4}) {
		t.Fatal("IsClique with isolated vertex = true")
	}
}

func TestDegreesAndComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components=%v, want 3 of them", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if g.MaxDegree() != 2 || g.MinDegree() != 0 {
		t.Fatalf("degrees: max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
}

func TestCliqueLiftProperty2Structure(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	h, added := g.CliqueLift(2)
	if h.N() != 5 || len(added) != 2 {
		t.Fatalf("lift sizes wrong: n=%d added=%d", h.N(), len(added))
	}
	if !h.IsClique(added) {
		t.Fatal("added vertices must form a clique")
	}
	for _, c := range added {
		for v := 0; v < g.N(); v++ {
			if !h.HasEdge(c, V(v)) {
				t.Fatalf("lift vertex %d not connected to original %d", int(c), v)
			}
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomER(rng, 30, 0.2)
	es := g.Edges()
	if len(es) != g.E() {
		t.Fatalf("Edges() length %d != E() %d", len(es), g.E())
	}
	for i := 1; i < len(es); i++ {
		a, b := es[i-1], es[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("edges not strictly sorted at %d: %v %v", i, a, b)
		}
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonical", e)
		}
	}
}

// Property test: Validate always passes on randomly built graphs, and edge
// count matches a recount.
func TestQuickValidate(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		p := float64(pRaw) / 255
		g := RandomER(rng, n, p)
		SprinkleAffinities(rng, g, n/2, 10)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	g := NewNamed("a", "b")
	g.AddEdge(0, 1)
	g.AddAffinity(0, 1, 3)
	s := g.String()
	if s == "" {
		t.Fatal("String() empty")
	}
	for _, want := range []string{"a -- b", "a => b (w=3)"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
