package graph

import (
	"fmt"
	"sort"
)

// Partition is a disjoint-set (union-find) structure over the vertices of a
// graph. It is the paper's formalization of a coalescing: a coalescing f of
// G is a partition of V such that no class contains two interfering
// vertices, and an affinity (u, v) is coalesced iff u and v are in the same
// class.
type Partition struct {
	parent []V
	rank   []int
	// classes counts the current number of classes; it starts at n and
	// decreases by one per effective Union.
	classes int
}

// NewPartition returns the discrete partition of n vertices (every vertex in
// its own class).
func NewPartition(n int) *Partition {
	p := &Partition{}
	p.Reset(n)
	return p
}

// Reset reinitializes p to the discrete partition of n vertices, reusing
// its storage when capacity allows — the Reset(g)-style lifecycle hook
// for pooled solver state that embeds a partition.
func (p *Partition) Reset(n int) {
	if cap(p.parent) < n {
		p.parent = make([]V, n)
	}
	if cap(p.rank) < n {
		p.rank = make([]int, n)
	}
	p.parent = p.parent[:n]
	p.rank = p.rank[:n]
	for i := range p.parent {
		p.parent[i] = V(i)
		p.rank[i] = 0
	}
	p.classes = n
}

// N reports the number of vertices the partition is defined over.
func (p *Partition) N() int { return len(p.parent) }

// NumClasses reports the current number of classes.
func (p *Partition) NumClasses() int { return p.classes }

// Find returns the canonical representative of v's class.
func (p *Partition) Find(v V) V {
	if v < 0 || int(v) >= len(p.parent) {
		panic(fmt.Sprintf("partition: vertex %d out of range [0,%d)", int(v), len(p.parent)))
	}
	root := v
	for p.parent[root] != root {
		root = p.parent[root]
	}
	for p.parent[v] != root {
		p.parent[v], v = root, p.parent[v]
	}
	return root
}

// Union merges the classes of u and v and returns the representative of the
// merged class. Union of vertices already in the same class is a no-op.
func (p *Partition) Union(u, v V) V {
	ru, rv := p.Find(u), p.Find(v)
	if ru == rv {
		return ru
	}
	if p.rank[ru] < p.rank[rv] {
		ru, rv = rv, ru
	}
	p.parent[rv] = ru
	if p.rank[ru] == p.rank[rv] {
		p.rank[ru]++
	}
	p.classes--
	return ru
}

// Same reports whether u and v are in the same class.
func (p *Partition) Same(u, v V) bool { return p.Find(u) == p.Find(v) }

// Clone returns an independent copy of the partition.
func (p *Partition) Clone() *Partition {
	return &Partition{
		parent:  append([]V(nil), p.parent...),
		rank:    append([]int(nil), p.rank...),
		classes: p.classes,
	}
}

// CopyFrom overwrites p with o's state, reusing p's storage when
// capacity allows — Clone for pooled trial partitions (the conservative
// coalescing tests probe one trial merge per affinity per round; cloning
// fresh each probe was the dominant allocation of the brute-force test).
func (p *Partition) CopyFrom(o *Partition) {
	p.parent = append(p.parent[:0], o.parent...)
	p.rank = append(p.rank[:0], o.rank...)
	p.classes = o.classes
}

// Classes returns the classes of the partition, each sorted increasingly,
// ordered by their smallest member.
func (p *Partition) Classes() [][]V {
	byRoot := make(map[V][]V)
	for i := range p.parent {
		r := p.Find(V(i))
		byRoot[r] = append(byRoot[r], V(i))
	}
	classes := make([][]V, 0, len(byRoot))
	for _, c := range byRoot {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return classes
}

// Refines reports whether p refines q, i.e. every class of p is contained in
// a class of q. The discrete partition refines every partition; every
// partition refines the all-in-one partition. The paper's de-coalescing g of
// a coalescing f is exactly a partition g that refines f.
func (p *Partition) Refines(q *Partition) bool {
	if p.N() != q.N() {
		return false
	}
	for i := 0; i < p.N(); i++ {
		r := p.Find(V(i))
		if !q.Same(V(i), r) {
			return false
		}
	}
	return true
}

// CompatibleWith reports whether the partition is a valid coalescing of g:
// no class contains two interfering vertices, and no class contains two
// vertices precolored with different colors.
func (p *Partition) CompatibleWith(g *Graph) bool {
	if p.N() != g.N() {
		return false
	}
	for _, e := range g.Edges() {
		if p.Same(e[0], e[1]) {
			return false
		}
	}
	colorOf := make(map[V]int)
	for v := 0; v < g.N(); v++ {
		c, ok := g.Precolored(V(v))
		if !ok {
			continue
		}
		r := p.Find(V(v))
		if prev, seen := colorOf[r]; seen && prev != c {
			return false
		}
		colorOf[r] = c
	}
	return true
}

// CoalescedAffinities returns the affinities of g whose endpoints the
// partition has identified (the coalesced moves) and the rest (the remaining
// moves). Self-affinities count as coalesced.
func (p *Partition) CoalescedAffinities(g *Graph) (coalesced, remaining []Affinity) {
	for _, a := range g.Affinities() {
		if p.Same(a.X, a.Y) {
			coalesced = append(coalesced, a)
		} else {
			remaining = append(remaining, a)
		}
	}
	return coalesced, remaining
}

// UncoalescedCount reports the number of affinities of g not coalesced by p,
// and the total weight of those affinities. This is the objective "K" of the
// paper's problem statements.
func (p *Partition) UncoalescedCount(g *Graph) (count int, weight int64) {
	for _, a := range g.Affinities() {
		if !p.Same(a.X, a.Y) {
			count++
			weight += a.Weight
		}
	}
	return count, weight
}

// FromColoring builds the partition that identifies all vertices of g having
// the same color in col (the "merge all vertices with same color" partition
// used in §4 of the paper). Uncolored vertices (NoColor) each stay alone.
func FromColoring(col Coloring) *Partition {
	p := NewPartition(len(col))
	first := make(map[int]V)
	for v, c := range col {
		if c == NoColor {
			continue
		}
		if u, ok := first[c]; ok {
			p.Union(u, V(v))
		} else {
			first[c] = V(v)
		}
	}
	return p
}
