package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Textual graph format, modelled on the instance dumps of the Appel–George
// "coalescing challenge" that the paper's conclusion references: a graph is
// a list of named vertices, interference edges, and weighted move edges,
// plus the number of available registers. The format is line-oriented:
//
//	# comment (also after ';')
//	k 4                 number of registers (optional, default 0 = unset)
//	node a              declare vertex "a"
//	node r1 :2          declare vertex "r1" precolored with color 2
//	edge a b            interference between a and b
//	move a b 10         affinity between a and b with weight 10
//	move a b            affinity with default weight 1
//
// Vertices referenced by edge/move lines before being declared are created
// implicitly. Write and ReadFrom round-trip.

// File bundles a graph with the register count an instance was produced for.
type File struct {
	G *Graph
	K int
}

// ReadFrom parses the textual format.
func ReadFrom(r io.Reader) (*File, error) {
	g := New(0)
	k := 0
	byName := make(map[string]V)
	vertex := func(name string) V {
		if v, ok := byName[name]; ok {
			return v
		}
		v := g.AddNamedVertex(name)
		byName[name] = v
		return v
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "k":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'k <int>'", lineno)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad register count %q", lineno, fields[1])
			}
			k = v
		case "node":
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'node <name> [:color]'", lineno)
			}
			v := vertex(fields[1])
			if len(fields) == 3 {
				colorStr, ok := strings.CutPrefix(fields[2], ":")
				if !ok {
					return nil, fmt.Errorf("graph: line %d: precolor must be ':<int>', got %q", lineno, fields[2])
				}
				c, err := strconv.Atoi(colorStr)
				if err != nil || c < 0 {
					return nil, fmt.Errorf("graph: line %d: bad precolor %q", lineno, fields[2])
				}
				g.SetPrecolored(v, c)
			}
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'edge <a> <b>'", lineno)
			}
			u, v := vertex(fields[1]), vertex(fields[2])
			if u == v {
				return nil, fmt.Errorf("graph: line %d: self-interference on %q", lineno, fields[1])
			}
			g.AddEdge(u, v)
		case "move":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'move <a> <b> [weight]'", lineno)
			}
			u, v := vertex(fields[1]), vertex(fields[2])
			w := int64(1)
			if len(fields) == 4 {
				parsed, err := strconv.ParseInt(fields[3], 10, 64)
				if err != nil || parsed < 0 {
					return nil, fmt.Errorf("graph: line %d: bad move weight %q", lineno, fields[3])
				}
				w = parsed
			}
			g.AddAffinity(u, v, w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading: %w", err)
	}
	return &File{G: g, K: k}, nil
}

// Write renders the file in the textual format. Every vertex gets a node
// line (so isolated vertices survive the round trip), then edges, then
// moves, all in deterministic order.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	g := f.G
	if f.K > 0 {
		fmt.Fprintf(bw, "k %d\n", f.K)
	}
	for v := 0; v < g.N(); v++ {
		if c, ok := g.Precolored(V(v)); ok {
			fmt.Fprintf(bw, "node %s :%d\n", g.Name(V(v)), c)
		} else {
			fmt.Fprintf(bw, "node %s\n", g.Name(V(v)))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %s %s\n", g.Name(e[0]), g.Name(e[1]))
	}
	as := append([]Affinity(nil), g.Affinities()...)
	SortAffinities(as)
	for _, a := range as {
		fmt.Fprintf(bw, "move %s %s %d\n", g.Name(a.X), g.Name(a.Y), a.Weight)
	}
	return bw.Flush()
}

// ParseString parses the textual format from a string; it is a convenience
// for tests and examples.
func ParseString(s string) (*File, error) {
	return ReadFrom(strings.NewReader(s))
}

// FormatString renders the file to a string.
func (f *File) FormatString() string {
	var b strings.Builder
	if err := f.Write(&b); err != nil {
		// strings.Builder never errors; keep the invariant visible.
		panic(err)
	}
	return b.String()
}
