package graph_test

// Differential property test: the hybrid bitset + adjacency-slice Graph
// must agree, query for query, with the retained map-backed reference
// implementation (internal/graph/mapref) under arbitrary interleavings
// of AddVertex/AddEdge/RemoveEdge — and Clone must be a genuinely
// independent deep copy on both sides.

import (
	"math/rand"
	"reflect"
	"testing"

	"regcoal/internal/graph"
	"regcoal/internal/graph/mapref"
)

// checkAgree asserts full observable agreement between g and r.
func checkAgree(t *testing.T, g *graph.Graph, r *mapref.Graph) {
	t.Helper()
	if g.N() != r.N() {
		t.Fatalf("N: bitset %d, reference %d", g.N(), r.N())
	}
	if g.E() != r.E() {
		t.Fatalf("E: bitset %d, reference %d", g.E(), r.E())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	n := g.N()
	for u := 0; u < n; u++ {
		if got, want := g.Degree(graph.V(u)), r.Degree(graph.V(u)); got != want {
			t.Fatalf("Degree(%d): bitset %d, reference %d", u, got, want)
		}
		gn, rn := g.Neighbors(graph.V(u)), r.Neighbors(graph.V(u))
		if len(gn) != len(rn) || (len(gn) > 0 && !reflect.DeepEqual(gn, rn)) {
			t.Fatalf("Neighbors(%d): bitset %v, reference %v", u, gn, rn)
		}
		row := g.BitsetNeighbors(graph.V(u))
		if row.Count() != len(rn) {
			t.Fatalf("BitsetNeighbors(%d): %d bits, want %d", u, row.Count(), len(rn))
		}
		for v := 0; v < n; v++ {
			if got, want := g.HasEdge(graph.V(u), graph.V(v)), r.HasEdge(graph.V(u), graph.V(v)); got != want {
				t.Fatalf("HasEdge(%d,%d): bitset %v, reference %v", u, v, got, want)
			}
			if got := row.Get(graph.V(v)); got != r.HasEdge(graph.V(u), graph.V(v)) {
				t.Fatalf("BitsetNeighbors(%d).Get(%d) = %v disagrees with reference", u, v, got)
			}
		}
	}
	ge, re := g.Edges(), r.Edges()
	if len(ge) != len(re) || (len(ge) > 0 && !reflect.DeepEqual(ge, re)) {
		t.Fatalf("Edges: bitset %v, reference %v", ge, re)
	}
}

func TestDifferentialMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(40)
		g := graph.New(n)
		r := mapref.New(n)
		pick2 := func() (graph.V, graph.V) {
			u := graph.V(rng.Intn(g.N()))
			v := graph.V(rng.Intn(g.N()))
			return u, v
		}
		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 0: // grow (exercises restriding of the bitset matrix)
				gv, rv := g.AddVertex(), r.AddVertex()
				if gv != rv {
					t.Fatalf("AddVertex: bitset %d, reference %d", gv, rv)
				}
			case 1, 2:
				u, v := pick2()
				if u != v {
					g.RemoveEdge(u, v)
					r.RemoveEdge(u, v)
				}
			default:
				u, v := pick2()
				if u != v {
					g.AddEdge(u, v)
					r.AddEdge(u, v)
				}
			}
		}
		checkAgree(t, g, r)

		// Clone: agree with the reference clone, and stay unaffected by
		// further mutation of the original.
		gc, rc := g.Clone(), r.Clone()
		for op := 0; op < 100; op++ {
			u, v := pick2()
			if u == v {
				continue
			}
			if op%3 == 0 {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdge(u, v)
			}
		}
		checkAgree(t, gc, rc)
	}
}

// TestDifferentialMaskedPrimitives pins the word-parallel helpers to
// their scalar definitions on random graphs.
func TestDifferentialMaskedPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(90)
		g := graph.RandomER(rng, n, 0.3)
		mask := graph.NewBits(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				mask.Set(graph.V(v))
			}
		}
		for v := 0; v < n; v++ {
			want := 0
			g.ForEachNeighbor(graph.V(v), func(w graph.V) {
				if mask.Get(w) {
					want++
				}
			})
			if got := g.MaskedDegree(graph.V(v), mask); got != want {
				t.Fatalf("MaskedDegree(%d): got %d, want %d", v, got, want)
			}
		}
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		want := 0
		g.ForEachNeighbor(u, func(w graph.V) {
			if w != v && g.HasEdge(v, w) {
				want++
			}
		})
		if got := g.CommonNeighborCount(u, v); got != want {
			t.Fatalf("CommonNeighborCount(%d,%d): got %d, want %d", u, v, got, want)
		}
	}
}
