package graph

import (
	"math/rand"
	"testing"
)

// permuteFile relabels f's vertices by perm (perm[old] = new), preserving
// k, edges, precoloring and affinities. Names are dropped: they must not
// influence the hash.
func permuteFile(f *File, perm []V) *File {
	g := f.G
	h := New(g.N())
	for _, e := range g.Edges() {
		h.AddEdge(perm[e[0]], perm[e[1]])
	}
	for v := 0; v < g.N(); v++ {
		if c, ok := g.Precolored(V(v)); ok {
			h.SetPrecolored(perm[v], c)
		}
	}
	for _, a := range g.Affinities() {
		h.AddAffinity(perm[a.X], perm[a.Y], a.Weight)
	}
	return &File{G: h, K: f.K}
}

func randomPerm(rng *rand.Rand, n int) []V {
	perm := make([]V, n)
	for i, p := range rng.Perm(n) {
		perm[i] = V(p)
	}
	return perm
}

func randomInstance(rng *rand.Rand) *File {
	g := RandomER(rng, 24, 0.25)
	SprinkleAffinities(rng, g, 10, 50)
	g.SetPrecolored(0, 1)
	return &File{G: g, K: 5}
}

func TestCanonicalHashRelabelingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		f := randomInstance(rng)
		h0 := CanonicalHash(f)
		for i := 0; i < 3; i++ {
			pf := permuteFile(f, randomPerm(rng, f.G.N()))
			if h := CanonicalHash(pf); h != h0 {
				t.Fatalf("trial %d: relabeled instance hashed %s, original %s", trial, h, h0)
			}
		}
	}
}

func TestCanonicalHashSeparatesInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randomInstance(rng)
	h0 := CanonicalHash(f)

	mutants := map[string]*File{}

	fk := &File{G: f.G.Clone(), K: f.K + 1}
	mutants["k changed"] = fk

	fe := &File{G: f.G.Clone(), K: f.K}
	added := false
	for u := 0; u < fe.G.N() && !added; u++ {
		for v := u + 1; v < fe.G.N(); v++ {
			if !fe.G.HasEdge(V(u), V(v)) {
				fe.G.AddEdge(V(u), V(v))
				added = true
				break
			}
		}
	}
	mutants["edge added"] = fe

	fw := &File{G: f.G.Clone(), K: f.K}
	fw.G.AddAffinity(1, 2, 999)
	mutants["affinity added"] = fw

	fp := &File{G: f.G.Clone(), K: f.K}
	fp.G.SetPrecolored(3, 2)
	mutants["precolor added"] = fp

	for what, m := range mutants {
		if CanonicalHash(m) == h0 {
			t.Errorf("%s: hash did not change", what)
		}
	}
}

func TestCanonicalHashIgnoresNames(t *testing.T) {
	f, err := ParseString("k 3\nnode a\nnode b\nedge a b\nmove a b 4\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseString("k 3\nnode x\nnode y\nedge x y\nmove x y 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHash(f) != CanonicalHash(g) {
		t.Fatal("renaming vertices changed the hash")
	}
}

func TestCanonicalFormPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomInstance(rng)
	c := CanonicalForm(f)
	if len(c.Perm) != f.G.N() {
		t.Fatalf("perm length %d, want %d", len(c.Perm), f.G.N())
	}
	seen := make([]bool, len(c.Perm))
	for _, p := range c.Perm {
		if p < 0 || int(p) >= len(seen) || seen[p] {
			t.Fatalf("perm %v is not a permutation", c.Perm)
		}
		seen[p] = true
	}
	inv := c.Inverse()
	for v, p := range c.Perm {
		if inv[p] != V(v) {
			t.Fatalf("Inverse does not invert Perm at %d", v)
		}
	}
	// Deterministic across calls.
	c2 := CanonicalForm(f)
	if c2.Hash != c.Hash {
		t.Fatal("hash not deterministic")
	}
	for i := range c.Perm {
		if c.Perm[i] != c2.Perm[i] {
			t.Fatal("perm not deterministic")
		}
	}
}

// A solution computed in canonical space must map back to a valid solution
// of any instance with the same hash — the property the service cache
// relies on.
func TestCanonicalSolutionTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := randomInstance(rng)
	pf := permuteFile(f, randomPerm(rng, f.G.N()))
	cf, cpf := CanonicalForm(f), CanonicalForm(pf)
	if cf.Hash != cpf.Hash {
		t.Skip("refinement did not discretize this instance; no transfer to test")
	}
	// Color the original, express in canonical space, pull back onto the
	// permuted instance, and check it is proper there.
	col := GreedyColorAny(f.G)
	canonCol := make([]int, len(col))
	for v, c := range col {
		canonCol[cf.Perm[v]] = c
	}
	back := make(Coloring, len(col))
	for v := range back {
		back[v] = canonCol[cpf.Perm[v]]
	}
	for _, e := range pf.G.Edges() {
		if back[e[0]] == back[e[1]] {
			t.Fatalf("transferred coloring improper on edge %v", e)
		}
	}
}

// GreedyColorAny is a test helper: first-fit coloring with as many colors
// as needed (ignores precoloring; only properness matters here).
func GreedyColorAny(g *Graph) Coloring {
	col := make(Coloring, g.N())
	for v := range col {
		col[v] = NoColor
	}
	for v := 0; v < g.N(); v++ {
		used := map[int]bool{}
		g.ForEachNeighbor(V(v), func(w V) {
			if col[w] != NoColor {
				used[col[w]] = true
			}
		})
		c := 0
		for used[c] {
			c++
		}
		col[v] = c
	}
	return col
}
