package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Canonical graph hashing for result caching: two requests carrying the
// same instance — possibly with renamed or renumbered vertices — should be
// recognized as one problem, solved once, and answered from memory.
//
// CanonicalForm computes a label ordering by Weisfeiler–Leman color
// refinement: vertices start with a signature built from label-independent
// invariants (precolor, interference degree, incident affinity weights)
// and are repeatedly re-signed with the multiset of their neighbors'
// colors until the partition into color classes stabilizes. Vertices are
// then ordered by their final class (classes are numbered by sorted
// signature, which is label-independent) and the instance is serialized in
// that order; the hash is the SHA-256 of the serialization.
//
// Soundness does not depend on refinement quality: equal hashes imply
// equal canonical serializations, which fully determine the relabeled
// instance (register count, edges, precoloring, affinity multiset).
// Therefore two instances with the same hash are isomorphic via their
// permutations, and any solution expressed in canonical positions maps
// back to either instance exactly. Refinement quality only affects how
// often two relabelings of the same abstract graph reach the same hash:
// when refinement separates all vertices (typical for irregular
// interference graphs) the hash is fully relabeling-invariant; highly
// symmetric graphs may hash differently under relabeling, costing a cache
// miss but never a wrong answer. Vertex names never enter the hash.

// Canonical is a canonical relabeling of an instance.
type Canonical struct {
	// Hash is the hex SHA-256 of the canonical serialization.
	Hash string
	// Perm maps original vertex ids to canonical positions.
	Perm []V
}

// Inverse returns the canonical-position-to-original-vertex mapping.
func (c *Canonical) Inverse() []V {
	inv := make([]V, len(c.Perm))
	for v, p := range c.Perm {
		inv[p] = V(v)
	}
	return inv
}

// CanonicalForm computes the canonical relabeling and hash of f. It does
// not modify the graph. Cost is O(rounds · (V log V + E + A)) with at most
// V refinement rounds (irregular graphs stabilize in a handful).
func CanonicalForm(f *File) *Canonical {
	g := f.G
	n := g.N()

	// Affinity adjacency (weights matter: they are part of the instance).
	type affNb struct {
		w  int64
		nb V
	}
	affAdj := make([][]affNb, n)
	for _, a := range g.Affinities() {
		if a.X == a.Y {
			affAdj[a.X] = append(affAdj[a.X], affNb{a.Weight, a.Y})
			continue
		}
		affAdj[a.X] = append(affAdj[a.X], affNb{a.Weight, a.Y})
		affAdj[a.Y] = append(affAdj[a.Y], affNb{a.Weight, a.X})
	}

	// Initial signatures from label-independent invariants. Signature
	// strings are built with strconv appends into reused buffers — byte
	// for byte the same strings the fmt-based builder produced, so class
	// ranking (and therefore every canonical hash) is unchanged; only the
	// per-vertex-per-round allocations are gone.
	sigs := make([]string, n)
	var b strings.Builder
	var num []byte // strconv scratch: digits appended here, written to b
	writeInt := func(x int64) {
		num = strconv.AppendInt(num[:0], x, 10)
		b.Write(num)
	}
	for v := 0; v < n; v++ {
		b.Reset()
		pc := NoColor
		if c, ok := g.Precolored(V(v)); ok {
			pc = c
		}
		b.WriteByte('p')
		writeInt(int64(pc))
		b.WriteString(" d")
		writeInt(int64(g.Degree(V(v))))
		ws := make([]int64, 0, len(affAdj[v]))
		for _, an := range affAdj[v] {
			ws = append(ws, an.w)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for _, w := range ws {
			b.WriteString(" w")
			writeInt(w)
		}
		sigs[v] = b.String()
	}
	colors := rankSignatures(sigs)
	distinct := countDistinct(colors)

	var nbColors []int // reused neighbor-color buffer
	var affSigs []string
	for round := 0; round < n; round++ {
		next := make([]string, n)
		for v := 0; v < n; v++ {
			nbColors = nbColors[:0]
			g.ForEachNeighbor(V(v), func(w V) {
				nbColors = append(nbColors, colors[w])
			})
			sort.Ints(nbColors)
			affSigs = affSigs[:0]
			for _, an := range affAdj[v] {
				num = strconv.AppendInt(num[:0], an.w, 10)
				num = append(num, ':')
				num = strconv.AppendInt(num, int64(colors[an.nb]), 10)
				affSigs = append(affSigs, string(num))
			}
			sort.Strings(affSigs)
			b.Reset()
			b.WriteByte('c')
			writeInt(int64(colors[v]))
			b.WriteByte('|')
			for _, c := range nbColors {
				b.WriteByte(' ')
				writeInt(int64(c))
			}
			b.WriteString("|")
			for _, s := range affSigs {
				b.WriteString(" ")
				b.WriteString(s)
			}
			next[v] = b.String()
		}
		colors = rankSignatures(next)
		d := countDistinct(colors)
		if d == distinct {
			break // stable partition
		}
		distinct = d
	}

	// Order vertices by final class; ties (refinement could not separate)
	// break by original index — deterministic, and sound per the package
	// comment, at worst costing relabeling-invariance on symmetric graphs.
	order := make([]V, n)
	for i := range order {
		order[i] = V(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if colors[order[i]] != colors[order[j]] {
			return colors[order[i]] < colors[order[j]]
		}
		return order[i] < order[j]
	})
	perm := make([]V, n)
	for pos, v := range order {
		perm[v] = V(pos)
	}

	return &Canonical{Hash: hashCanonical(f, perm), Perm: perm}
}

// CanonicalHash is CanonicalForm reduced to the hash.
func CanonicalHash(f *File) string {
	return CanonicalForm(f).Hash
}

// hashCanonical serializes the instance under perm and hashes it. The
// serialization is injective on (k, n, edge set, precoloring, affinity
// multiset) — names are deliberately excluded.
func hashCanonical(f *File, perm []V) string {
	g := f.G
	n := g.N()
	h := sha256.New()
	fmt.Fprintf(h, "regcoal-canon-v1\nn %d\nk %d\n", n, f.K)
	for pos, v := range invertPerm(perm) {
		if c, ok := g.Precolored(v); ok {
			fmt.Fprintf(h, "p %d %d\n", pos, c)
		}
	}
	edges := make([][2]V, 0, g.E())
	for _, e := range g.Edges() {
		a, b := perm[e[0]], perm[e[1]]
		if a > b {
			a, b = b, a
		}
		edges = append(edges, [2]V{a, b})
	}
	sortPairs(edges)
	for _, e := range edges {
		fmt.Fprintf(h, "e %d %d\n", int(e[0]), int(e[1]))
	}
	affs := make([]Affinity, 0, g.NumAffinities())
	for _, a := range g.Affinities() {
		affs = append(affs, Affinity{X: perm[a.X], Y: perm[a.Y], Weight: a.Weight}.Canon())
	}
	SortAffinities(affs)
	for _, a := range affs {
		fmt.Fprintf(h, "a %d %d %d\n", int(a.X), int(a.Y), a.Weight)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func invertPerm(perm []V) []V {
	inv := make([]V, len(perm))
	for v, p := range perm {
		inv[p] = V(v)
	}
	return inv
}

func sortPairs(ps [][2]V) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// rankSignatures maps signatures to dense class ids numbered by sorted
// signature order, which is independent of vertex labeling.
func rankSignatures(sigs []string) []int {
	uniq := make([]string, 0, len(sigs))
	seen := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	rank := make(map[string]int, len(uniq))
	for i, s := range uniq {
		rank[s] = i
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = rank[s]
	}
	return out
}

func countDistinct(xs []int) int {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}
