package graph

import (
	"strings"
	"testing"
)

// Fuzz targets: the two parsers must never panic and, when they accept an
// input, must produce a graph that validates and survives a round trip.
// Run with `go test -fuzz FuzzReadFrom ./internal/graph` for active
// fuzzing; under plain `go test` the seed corpus runs as unit tests.

func FuzzReadFrom(f *testing.F) {
	f.Add("k 3\nnode a\nedge a b\nmove a b 2\n")
	f.Add("node x :1\nmove x y\n")
	f.Add("# comment only\n")
	f.Add("edge a a\n")
	f.Add("k -1\n")
	f.Add("move a b 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ParseString(input)
		if err != nil {
			return
		}
		if verr := file.G.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
		// Round trip must re-parse.
		text := file.FormatString()
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if back.G.N() != file.G.N() || back.G.E() != file.G.E() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzReadFile targets the File-level DIMACS parser: no panic on any
// input, and every accepted file must validate, survive a write→read
// round trip semantically (EqualFiles), and re-serialize byte-identically
// — the canonical-output guarantee the persisted corpus relies on.
func FuzzReadFile(f *testing.F) {
	f.Add("p edge 3 2\nc regcoal k 4\ne 1 2\ne 2 3\n")
	f.Add("p edge 4 1\nc regcoal k 2\nc regcoal name 1 x\nc regcoal color 2 0\nc regcoal move 1 3 7\ne 1 2\n")
	f.Add("p edge 2 0\nc regcoal move 1 2 5\nc regcoal move 1 2 5\n") // parallel moves
	f.Add("p edge 0 0\n")
	f.Add("p edge 1 0\nc regcoal name 1 a b c\n")
	f.Add("p edge 2 1\ne 1 1\n")                // self-loop
	f.Add("p edge 99999999 0\n")                // allocation bomb
	f.Add("p edge 2 x\n")                       // bad edge count
	f.Add("c regcoal k 4\np edge 1 0\n")        // comment before p
	f.Add("p edge 2 0\nc regcoal color 1 -3\n") // bad precolor
	f.Add("p edge 2 0\nc regcoal move 1 2 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ReadDIMACSFile(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := file.G.Validate(); verr != nil {
			t.Fatalf("accepted file fails validation: %v", verr)
		}
		var first strings.Builder
		if werr := WriteDIMACSFile(&first, file); werr != nil {
			// Only non-round-trippable vertex names may refuse to write,
			// and the DIMACS reader normalizes whitespace, so a parsed
			// file must always serialize.
			t.Fatalf("write of parsed file failed: %v", werr)
		}
		back, err := ReadDIMACSFile(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, first.String())
		}
		if !EqualFiles(file, back) {
			t.Fatalf("round trip changed the instance:\n%s", first.String())
		}
		var second strings.Builder
		if werr := WriteDIMACSFile(&second, back); werr != nil {
			t.Fatalf("second write failed: %v", werr)
		}
		if first.String() != second.String() {
			t.Fatalf("write→read→write not byte-identical:\n%q\n%q", first.String(), second.String())
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c regcoal move 1 2 5\n")
	f.Add("p edge 0 0\n")
	f.Add("p edge 2 1\ne 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted DIMACS graph fails validation: %v", verr)
		}
		var b strings.Builder
		if werr := WriteDIMACS(&b, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		back, err := ReadDIMACS(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.E() != g.E() {
			t.Fatal("round trip changed shape")
		}
	})
}
