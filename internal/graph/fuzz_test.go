package graph

import (
	"strings"
	"testing"
)

// Fuzz targets: the two parsers must never panic and, when they accept an
// input, must produce a graph that validates and survives a round trip.
// Run with `go test -fuzz FuzzReadFrom ./internal/graph` for active
// fuzzing; under plain `go test` the seed corpus runs as unit tests.

func FuzzReadFrom(f *testing.F) {
	f.Add("k 3\nnode a\nedge a b\nmove a b 2\n")
	f.Add("node x :1\nmove x y\n")
	f.Add("# comment only\n")
	f.Add("edge a a\n")
	f.Add("k -1\n")
	f.Add("move a b 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ParseString(input)
		if err != nil {
			return
		}
		if verr := file.G.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
		// Round trip must re-parse.
		text := file.FormatString()
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, text)
		}
		if back.G.N() != file.G.N() || back.G.E() != file.G.E() {
			t.Fatalf("round trip changed shape")
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c regcoal move 1 2 5\n")
	f.Add("p edge 0 0\n")
	f.Add("p edge 2 1\ne 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted DIMACS graph fails validation: %v", verr)
		}
		var b strings.Builder
		if werr := WriteDIMACS(&b, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		back, err := ReadDIMACS(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.E() != g.E() {
			t.Fatal("round trip changed shape")
		}
	})
}
