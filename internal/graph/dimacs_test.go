package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReadDIMACS(t *testing.T) {
	src := `c a comment
p edge 4 3
e 1 2
e 2 3
e 3 4
c regcoal move 1 3 7
`
	g, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.E() != 3 {
		t.Fatalf("n=%d e=%d", g.N(), g.E())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("edges wrong")
	}
	if g.NumAffinities() != 1 || g.Affinities()[0].Weight != 7 {
		t.Fatalf("moves wrong: %v", g.Affinities())
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomER(rng, 15, 0.3)
	SprinkleAffinities(rng, g, 8, 9)
	var b strings.Builder
	if err := WriteDIMACS(&b, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.E() != g.E() || back.NumAffinities() != g.NumAffinities() {
		t.Fatalf("round trip changed shape: %d/%d, %d/%d, %d/%d",
			back.N(), g.N(), back.E(), g.E(), back.NumAffinities(), g.NumAffinities())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
	if back.TotalAffinityWeight() != g.TotalAffinityWeight() {
		t.Fatal("weights lost")
	}
}

// TestDIMACSFileRoundTripBytes is the corpus round-trip regression test:
// write → read → write must be byte-identical, with the register count,
// names, precoloring and moves-as-comments all surviving. This held for
// bare graphs but not for Files before WriteDIMACSFile existed (K, names
// and precolors were silently dropped).
func TestDIMACSFileRoundTripBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		g := RandomER(rng, 2+rng.Intn(25), 0.25)
		SprinkleAffinities(rng, g, rng.Intn(12), 9)
		if trial%2 == 0 {
			g.SetName(0, "entry")
			g.SetName(V(g.N()-1), "exit")
		}
		if trial%3 == 0 && g.N() > 1 {
			g.SetPrecolored(0, 0)
			g.SetPrecolored(1, 2)
			// Parallel and zero-weight affinities must survive too.
			g.AddAffinity(0, 1, 4)
			g.AddAffinity(0, 1, 4)
			g.AddAffinity(0, 1, 0)
		}
		f := &File{G: g, K: trial % 7} // includes K == 0 (no k line)
		var first strings.Builder
		if err := WriteDIMACSFile(&first, f); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDIMACSFile(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("trial %d: read back: %v\n%s", trial, err, first.String())
		}
		var second strings.Builder
		if err := WriteDIMACSFile(&second, back); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatalf("trial %d: write→read→write not byte-identical:\n--- first ---\n%s--- second ---\n%s",
				trial, first.String(), second.String())
		}
		if !EqualFiles(f, back) {
			t.Fatalf("trial %d: round trip lost semantic content", trial)
		}
	}
}

// Names whose whitespace cannot survive the Fields-rejoin of the reader
// must be refused at write time instead of silently breaking the
// round-trip guarantee.
func TestDIMACSFileRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"a  b", " lead", "trail ", "two\nlines", "tab\tname"} {
		g := New(2)
		g.SetName(0, bad)
		var b strings.Builder
		if err := WriteDIMACSFile(&b, &File{G: g, K: 2}); err == nil {
			t.Errorf("WriteDIMACSFile accepted name %q", bad)
		}
	}
	// A single internal space is fine and round-trips.
	g := New(2)
	g.SetName(0, "a b")
	var b strings.Builder
	if err := WriteDIMACSFile(&b, &File{G: g, K: 2}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACSFile(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.G.Name(0) != "a b" {
		t.Fatalf("name = %q", back.G.Name(0))
	}
}

func TestDIMACSFileComments(t *testing.T) {
	src := `p edge 3 2
c regcoal k 4
c regcoal name 1 a b
c regcoal color 2 1
c regcoal move 1 3 7
e 1 2
e 2 3
`
	f, err := ReadDIMACSFile(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.K != 4 {
		t.Fatalf("K = %d, want 4", f.K)
	}
	if f.G.Name(0) != "a b" {
		t.Fatalf("name = %q, want %q", f.G.Name(0), "a b")
	}
	if c, ok := f.G.Precolored(1); !ok || c != 1 {
		t.Fatalf("precolor = %d,%v, want 1,true", c, ok)
	}
	if f.G.NumAffinities() != 1 || f.G.Affinities()[0].Weight != 7 {
		t.Fatalf("moves wrong: %v", f.G.Affinities())
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                            // edge before p
		"p edge 2 1\np edge 2 1\n",           // duplicate p
		"p edge x 1\n",                       // bad count
		"p edge 2 1\ne 1\n",                  // short edge
		"p edge 2 1\ne 1 3\n",                // out of range
		"p edge 2 1\ne 1 1\n",                // self loop
		"p edge 2 0\nc regcoal move 1 5 2\n", // bad move target
		"q foo\n",                            // unknown record
		"",                                   // no p line
		"c regcoal k 4\np edge 2 0\n",        // regcoal comment before p
		"p edge 2 0\nc regcoal k x\n",        // bad register count
		"p edge 2 0\nc regcoal name 3 a\n",   // name target out of range
		"p edge 2 0\nc regcoal color 1 -1\n", // negative precolor
		"p edge 2 0\nc regcoal frob 1\n",     // unknown regcoal comment
	}
	for _, c := range cases {
		if _, err := ReadDIMACS(strings.NewReader(c)); err == nil {
			t.Errorf("ReadDIMACS(%q) should fail", c)
		}
	}
}
