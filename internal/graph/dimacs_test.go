package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReadDIMACS(t *testing.T) {
	src := `c a comment
p edge 4 3
e 1 2
e 2 3
e 3 4
c regcoal move 1 3 7
`
	g, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.E() != 3 {
		t.Fatalf("n=%d e=%d", g.N(), g.E())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("edges wrong")
	}
	if g.NumAffinities() != 1 || g.Affinities()[0].Weight != 7 {
		t.Fatalf("moves wrong: %v", g.Affinities())
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomER(rng, 15, 0.3)
	SprinkleAffinities(rng, g, 8, 9)
	var b strings.Builder
	if err := WriteDIMACS(&b, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.E() != g.E() || back.NumAffinities() != g.NumAffinities() {
		t.Fatalf("round trip changed shape: %d/%d, %d/%d, %d/%d",
			back.N(), g.N(), back.E(), g.E(), back.NumAffinities(), g.NumAffinities())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
	if back.TotalAffinityWeight() != g.TotalAffinityWeight() {
		t.Fatal("weights lost")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                            // edge before p
		"p edge 2 1\np edge 2 1\n",           // duplicate p
		"p edge x 1\n",                       // bad count
		"p edge 2 1\ne 1\n",                  // short edge
		"p edge 2 1\ne 1 3\n",                // out of range
		"p edge 2 1\ne 1 1\n",                // self loop
		"p edge 2 0\nc regcoal move 1 5 2\n", // bad move target
		"q foo\n",                            // unknown record
		"",                                   // no p line
	}
	for _, c := range cases {
		if _, err := ReadDIMACS(strings.NewReader(c)); err == nil {
			t.Errorf("ReadDIMACS(%q) should fail", c)
		}
	}
}
