package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomERBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomER(rng, 20, 0)
	if g.E() != 0 {
		t.Fatal("p=0 should give no edges")
	}
	g = RandomER(rng, 20, 1)
	if g.E() != 20*19/2 {
		t.Fatalf("p=1 should give complete graph, got %d edges", g.E())
	}
}

func TestRandomERDeterministic(t *testing.T) {
	a := RandomER(rand.New(rand.NewSource(42)), 25, 0.3)
	b := RandomER(rand.New(rand.NewSource(42)), 25, 0.3)
	if a.E() != b.E() {
		t.Fatal("same seed should give same graph")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e[0], e[1]) {
			t.Fatal("same seed should give same edges")
		}
	}
}

func TestIntervalGraph(t *testing.T) {
	// [0,2] [1,3] [4,5]: first two overlap, third is disjoint.
	g := IntervalGraph([]Interval{{0, 2}, {1, 3}, {4, 5}})
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatalf("interval graph wrong: %v", g.Edges())
	}
}

func TestIntervalIntersects(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 2}, Interval{2, 4}, true},  // touching endpoints overlap
		{Interval{0, 2}, Interval{3, 4}, false}, // disjoint
		{Interval{1, 5}, Interval{2, 3}, true},  // containment
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("intersection not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestPermutationGadget(t *testing.T) {
	for _, p := range []int{2, 3, 4, 6} {
		g, sources, dests := Permutation(p)
		if g.N() != 2*p {
			t.Fatalf("p=%d: n=%d", p, g.N())
		}
		if g.NumAffinities() != p {
			t.Fatalf("p=%d: %d affinities", p, g.NumAffinities())
		}
		if !g.IsClique(sources) || !g.IsClique(dests) {
			t.Fatalf("p=%d: sources/dests must be cliques", p)
		}
		for i := range sources {
			if g.HasEdge(sources[i], dests[i]) {
				t.Fatalf("p=%d: move pair %d must not interfere", p, i)
			}
			for j := range dests {
				if i != j && !g.HasEdge(sources[i], dests[j]) {
					t.Fatalf("p=%d: u%d must interfere with v%d", p, i, j)
				}
			}
		}
		// Every vertex has degree 2(p-1): p-1 within its side's clique and
		// p-1 across.
		for v := 0; v < g.N(); v++ {
			if d := g.Degree(V(v)); d != 2*(p-1) {
				t.Fatalf("p=%d: degree(%d)=%d, want %d", p, v, d, 2*(p-1))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSprinkleAffinities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomER(rng, 15, 0.2)
	added := SprinkleAffinities(rng, g, 10, 4)
	if added != 10 {
		t.Fatalf("added=%d, want 10 on a sparse graph", added)
	}
	for _, a := range g.Affinities() {
		if g.HasEdge(a.X, a.Y) {
			t.Fatal("sprinkled affinity between interfering vertices")
		}
		if a.Weight < 1 || a.Weight > 4 {
			t.Fatalf("weight %d out of range", a.Weight)
		}
	}
	// On a complete graph no affinity can be placed.
	k := RandomER(rng, 6, 1)
	if SprinkleAffinities(rng, k, 5, 1) != 0 {
		t.Fatal("complete graph admits no affinities")
	}
}

func TestRandomKColorable(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%25) + 1
		k := int(kRaw%4) + 2
		rng := rand.New(rand.NewSource(seed))
		g, hidden := RandomKColorable(rng, n, k, 0.5)
		return Coloring(hidden).Proper(g) || !hidden.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	parent := RandomTree(rng, 10)
	if parent[0] != -1 {
		t.Fatal("root parent must be -1")
	}
	for i := 1; i < 10; i++ {
		if parent[i] < 0 || parent[i] >= i {
			t.Fatalf("parent[%d]=%d violates ordering", i, parent[i])
		}
	}
}

func TestRandomChordalValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := RandomChordal(rng, 20, 12, 4)
		if g.N() != 20 {
			t.Fatalf("n=%d", g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Chordality itself is asserted in package chordal's tests, which own
	// the recognition algorithm.
}
