package graph

import "fmt"

// Quotient builds the coalesced graph G_f of the paper: the quotient of g by
// the partition p. Each class of p becomes a single vertex; there is an
// interference edge between two classes iff some pair of their members
// interferes in g.
//
// Quotient returns an error if p is not a coalescing of g, i.e. if some
// class contains two interfering vertices (the quotient would have a
// self-loop) or two vertices precolored differently.
//
// The second result maps each vertex of g to its vertex in the quotient.
// Affinities are carried over: an affinity internal to a class disappears
// (it is coalesced); the others are re-attached to the class vertices, with
// parallel affinities merged by weight. Precoloring is carried to the class
// vertex. Class vertices are named after their smallest member's name.
func Quotient(g *Graph, p *Partition) (*Graph, []V, error) {
	if p.N() != g.N() {
		return nil, nil, fmt.Errorf("graph: partition over %d vertices does not match graph with %d vertices", p.N(), g.N())
	}
	classes := p.Classes()
	old2new := make([]V, g.N())
	q := New(len(classes))
	for i, class := range classes {
		for _, v := range class {
			old2new[v] = V(i)
		}
		q.names[i] = g.names[class[0]]
		for _, v := range class {
			c, ok := g.Precolored(v)
			if !ok {
				continue
			}
			if prev, seen := q.Precolored(V(i)); seen && prev != c {
				return nil, nil, fmt.Errorf("graph: class %v merges precolors %d and %d", class, prev, c)
			}
			q.SetPrecolored(V(i), c)
		}
	}
	for _, e := range g.Edges() {
		a, b := old2new[e[0]], old2new[e[1]]
		if a == b {
			return nil, nil, fmt.Errorf("graph: vertices %d and %d interfere but share a class", int(e[0]), int(e[1]))
		}
		q.AddEdge(a, b)
	}
	merged := make(map[[2]V]int64)
	for _, a := range g.affinities {
		x, y := old2new[a.X], old2new[a.Y]
		if x == y {
			continue // coalesced
		}
		if x > y {
			x, y = y, x
		}
		merged[[2]V{x, y}] += a.Weight
	}
	for pair, w := range merged {
		q.affinities = append(q.affinities, Affinity{X: pair[0], Y: pair[1], Weight: w})
	}
	SortAffinities(q.affinities)
	return q, old2new, nil
}

// CanMerge reports whether u and v can be put in the same class of a
// coalescing of g extending p: their classes must contain no interfering
// pair and no conflicting precoloring. It does not modify p.
func CanMerge(g *Graph, p *Partition, u, v V) bool {
	ru, rv := p.Find(u), p.Find(v)
	if ru == rv {
		return true
	}
	// Collect both classes. Classes() is O(n); instead walk all vertices
	// once — callers on hot paths should maintain class membership
	// themselves, but correctness here is what matters.
	var cu, cv []V
	for i := 0; i < g.N(); i++ {
		switch p.Find(V(i)) {
		case ru:
			cu = append(cu, V(i))
		case rv:
			cv = append(cv, V(i))
		}
	}
	var colorU, colorV = NoColor, NoColor
	for _, x := range cu {
		if c, ok := g.Precolored(x); ok {
			colorU = c
		}
	}
	for _, y := range cv {
		if c, ok := g.Precolored(y); ok {
			colorV = c
		}
	}
	if colorU != NoColor && colorV != NoColor && colorU != colorV {
		return false
	}
	for _, x := range cu {
		for _, y := range cv {
			if g.HasEdge(x, y) {
				return false
			}
		}
	}
	return true
}

// MergeAll unions, in order, every affinity pair of g that CanMerge accepts,
// and returns the resulting partition. This is the classic aggressive
// coalescing sweep (Chaitin); it is a heuristic for the paper's
// NP-complete aggressive coalescing problem — the order of the affinity list
// determines which moves survive when interferences conflict.
func MergeAll(g *Graph) *Partition {
	p := NewPartition(g.N())
	for _, a := range g.Affinities() {
		if CanMerge(g, p, a.X, a.Y) {
			p.Union(a.X, a.Y)
		}
	}
	return p
}
