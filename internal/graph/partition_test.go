package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionBasics(t *testing.T) {
	p := NewPartition(5)
	if p.NumClasses() != 5 {
		t.Fatalf("fresh partition has %d classes", p.NumClasses())
	}
	p.Union(0, 1)
	p.Union(1, 2)
	if !p.Same(0, 2) {
		t.Fatal("0 and 2 should be merged transitively")
	}
	if p.Same(0, 3) {
		t.Fatal("0 and 3 should be separate")
	}
	if p.NumClasses() != 3 {
		t.Fatalf("classes=%d, want 3", p.NumClasses())
	}
	p.Union(0, 2) // no-op
	if p.NumClasses() != 3 {
		t.Fatal("no-op union changed class count")
	}
	classes := p.Classes()
	if len(classes) != 3 {
		t.Fatalf("Classes()=%v", classes)
	}
	if len(classes[0]) != 3 || classes[0][0] != 0 {
		t.Fatalf("first class wrong: %v", classes[0])
	}
}

func TestPartitionClone(t *testing.T) {
	p := NewPartition(4)
	p.Union(0, 1)
	q := p.Clone()
	q.Union(2, 3)
	if p.Same(2, 3) {
		t.Fatal("clone mutated original")
	}
	if !q.Same(0, 1) {
		t.Fatal("clone lost state")
	}
}

func TestRefines(t *testing.T) {
	fine := NewPartition(4)
	coarse := NewPartition(4)
	coarse.Union(0, 1)
	coarse.Union(2, 3)
	if !fine.Refines(coarse) {
		t.Fatal("discrete partition refines everything")
	}
	fine.Union(0, 1)
	if !fine.Refines(coarse) {
		t.Fatal("{01}{2}{3} refines {01}{23}")
	}
	fine.Union(1, 2)
	if fine.Refines(coarse) {
		t.Fatal("{012}{3} does not refine {01}{23}")
	}
	if coarse.Refines(NewPartition(5)) {
		t.Fatal("different sizes cannot refine")
	}
}

func TestCompatibleWith(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	p := NewPartition(4)
	p.Union(2, 3)
	if !p.CompatibleWith(g) {
		t.Fatal("merging non-interfering vertices should be compatible")
	}
	p.Union(0, 1)
	if p.CompatibleWith(g) {
		t.Fatal("merging interfering vertices should be incompatible")
	}

	// Precoloring conflicts.
	h := New(3)
	h.SetPrecolored(0, 1)
	h.SetPrecolored(1, 2)
	q := NewPartition(3)
	q.Union(0, 2)
	if !q.CompatibleWith(h) {
		t.Fatal("merging precolored with plain vertex is fine")
	}
	q.Union(0, 1)
	if q.CompatibleWith(h) {
		t.Fatal("merging differently precolored vertices must fail")
	}
}

func TestCoalescedAffinities(t *testing.T) {
	g := New(4)
	g.AddAffinity(0, 1, 5)
	g.AddAffinity(2, 3, 7)
	p := NewPartition(4)
	p.Union(0, 1)
	co, rem := p.CoalescedAffinities(g)
	if len(co) != 1 || len(rem) != 1 {
		t.Fatalf("co=%v rem=%v", co, rem)
	}
	n, w := p.UncoalescedCount(g)
	if n != 1 || w != 7 {
		t.Fatalf("uncoalesced count=%d weight=%d, want 1, 7", n, w)
	}
}

func TestFromColoring(t *testing.T) {
	col := Coloring{0, 1, 0, NoColor, 1}
	p := FromColoring(col)
	if !p.Same(0, 2) || !p.Same(1, 4) {
		t.Fatal("same-colored vertices should be merged")
	}
	if p.Same(0, 1) {
		t.Fatal("differently colored vertices merged")
	}
	if p.Same(3, 0) || p.Same(3, 1) {
		t.Fatal("uncolored vertex must stay alone")
	}
}

// Property: Union is commutative/associative with respect to resulting class
// structure — merging a random pair list in any rotation yields the same
// classes.
func TestQuickUnionOrderIndependence(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw % 24)
		rng := rand.New(rand.NewSource(seed))
		pairs := make([][2]V, m)
		for i := range pairs {
			pairs[i] = [2]V{V(rng.Intn(n)), V(rng.Intn(n))}
		}
		p1 := NewPartition(n)
		for _, pr := range pairs {
			p1.Union(pr[0], pr[1])
		}
		p2 := NewPartition(n)
		for i := len(pairs) - 1; i >= 0; i-- {
			p2.Union(pairs[i][0], pairs[i][1])
		}
		if p1.NumClasses() != p2.NumClasses() {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if p1.Same(V(u), V(v)) != p2.Same(V(u), V(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
