package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS graph-coloring format support (.col): the standard benchmark
// format for coloring instances, so interference graphs can be exchanged
// with external coloring tools. DIMACS has no notion of move edges,
// register counts, vertex names or precoloring; the writers emit those as
// structured comment lines that the readers understand, keeping round
// trips lossless while staying readable by standard tools:
//
//	p edge <n> <m>
//	c regcoal k 6            register count of the instance (File.K)
//	c regcoal name 3 tmp7    vertex 3 is named "tmp7"
//	c regcoal color 1 0      vertex 1 is precolored with color 0
//	c regcoal move 1 3 10    affinity (1,3) with weight 10
//	e 1 2
//
// Vertices are 1-based in the format, 0-based in memory. Standard tools
// ignore the comments; regcoal readers reconstruct the full File. The
// comment lines always follow the p line, in the fixed order k, names,
// colors, moves, so that Write → Read → Write is byte-identical (the
// corpus round-trip guarantee; see TestDIMACSFileRoundTripBytes).

// MaxDIMACSVertices caps the vertex count a DIMACS p line may declare.
// The cap exists to harden the parser against hostile input: a one-line
// file claiming 10^9 vertices would otherwise commit gigabytes of
// adjacency before a single edge is read. Real coloring benchmarks are
// orders of magnitude below it.
const MaxDIMACSVertices = 1 << 22

// ReadDIMACS parses a DIMACS .col file, including regcoal move comments.
// Other regcoal comments (k, names, precoloring) are applied to the graph
// where they can be (names, colors); the register count is discarded — use
// ReadDIMACSFile to keep it.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	f, err := ReadDIMACSFile(r)
	if err != nil {
		return nil, err
	}
	return f.G, nil
}

// ReadDIMACSFile parses a DIMACS .col file with regcoal comments into a
// File, reconstructing the register count, vertex names, precoloring and
// affinities that WriteDIMACSFile emitted.
func ReadDIMACSFile(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	k := 0
	lineno := 0
	vertex := func(field string, what string) (V, error) {
		i, err := strconv.Atoi(field)
		if err != nil || i < 1 || i > g.N() {
			return -1, fmt.Errorf("graph: dimacs line %d: bad %s vertex %q", lineno, what, field)
		}
		return V(i - 1), nil
	}
	for sc.Scan() {
		lineno++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			if len(fields) < 3 || fields[1] != "regcoal" {
				continue // ordinary comment
			}
			if g == nil {
				return nil, fmt.Errorf("graph: dimacs line %d: regcoal comment before p line", lineno)
			}
			switch fields[2] {
			case "k":
				if len(fields) != 4 {
					return nil, fmt.Errorf("graph: dimacs line %d: want 'c regcoal k <int>'", lineno)
				}
				v, err := strconv.Atoi(fields[3])
				if err != nil || v < 0 {
					return nil, fmt.Errorf("graph: dimacs line %d: bad register count %q", lineno, fields[3])
				}
				k = v
			case "name":
				if len(fields) < 5 {
					return nil, fmt.Errorf("graph: dimacs line %d: want 'c regcoal name <v> <name>'", lineno)
				}
				v, err := vertex(fields[3], "name")
				if err != nil {
					return nil, err
				}
				g.SetName(v, strings.Join(fields[4:], " "))
			case "color":
				if len(fields) != 5 {
					return nil, fmt.Errorf("graph: dimacs line %d: want 'c regcoal color <v> <color>'", lineno)
				}
				v, err := vertex(fields[3], "color")
				if err != nil {
					return nil, err
				}
				c, err := strconv.Atoi(fields[4])
				if err != nil || c < 0 {
					return nil, fmt.Errorf("graph: dimacs line %d: bad precolor %q", lineno, fields[4])
				}
				g.SetPrecolored(v, c)
			case "move":
				if len(fields) != 6 {
					return nil, fmt.Errorf("graph: dimacs line %d: want 'c regcoal move <x> <y> <weight>'", lineno)
				}
				x, err := vertex(fields[3], "move")
				if err != nil {
					return nil, err
				}
				y, err := vertex(fields[4], "move")
				if err != nil {
					return nil, err
				}
				w, err := strconv.ParseInt(fields[5], 10, 64)
				if err != nil || w < 0 {
					return nil, fmt.Errorf("graph: dimacs line %d: bad move weight %q", lineno, fields[5])
				}
				g.AddAffinity(x, y, w)
			default:
				return nil, fmt.Errorf("graph: dimacs line %d: unknown regcoal comment %q", lineno, fields[2])
			}
		case "p":
			if len(fields) != 4 || fields[1] != "edge" {
				return nil, fmt.Errorf("graph: dimacs line %d: want 'p edge <n> <m>'", lineno)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad vertex count", lineno)
			}
			if n > MaxDIMACSVertices {
				return nil, fmt.Errorf("graph: dimacs line %d: vertex count %d exceeds limit %d", lineno, n, MaxDIMACSVertices)
			}
			// The edge count is not used (edges are counted as they are
			// read) but a malformed one still fails the parse.
			if m, err := strconv.Atoi(fields[3]); err != nil || m < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad edge count %q", lineno, fields[3])
			}
			if g != nil {
				return nil, fmt.Errorf("graph: dimacs line %d: duplicate p line", lineno)
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: dimacs line %d: edge before p line", lineno)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: dimacs line %d: want 'e <u> <v>'", lineno)
			}
			u, err := vertex(fields[1], "edge")
			if err != nil {
				return nil, err
			}
			v, err := vertex(fields[2], "edge")
			if err != nil {
				return nil, err
			}
			if u == v {
				return nil, fmt.Errorf("graph: dimacs line %d: self-loop edge", lineno)
			}
			g.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("graph: dimacs line %d: unknown record %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: dimacs input has no p line")
	}
	return &File{G: g, K: k}, nil
}

// WriteDIMACS renders the graph in DIMACS .col format with regcoal
// comments for names, precoloring and moves (no register count; see
// WriteDIMACSFile).
func WriteDIMACS(w io.Writer, g *Graph) error {
	return WriteDIMACSFile(w, &File{G: g})
}

// WriteDIMACSFile renders the file in DIMACS .col format with regcoal
// comments carrying everything DIMACS itself cannot: the register count,
// vertex names, precoloring, and move affinities. The output is
// canonical — fixed comment order, sorted affinities — so writing, reading
// back, and writing again produces identical bytes.
func WriteDIMACSFile(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	g := f.G
	fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.E())
	if f.K > 0 {
		fmt.Fprintf(bw, "c regcoal k %d\n", f.K)
	}
	for v := 0; v < g.N(); v++ {
		if g.HasName(V(v)) {
			name := g.Name(V(v))
			// The reader rejoins strings.Fields with single spaces, so a
			// name with irregular whitespace (or embedded newlines, which
			// would corrupt the record stream) cannot round-trip; refuse
			// it rather than silently break the byte-identity guarantee.
			if name != strings.Join(strings.Fields(name), " ") {
				return fmt.Errorf("graph: dimacs: vertex %d name %q contains non-round-trippable whitespace", v, name)
			}
			fmt.Fprintf(bw, "c regcoal name %d %s\n", v+1, name)
		}
	}
	for v := 0; v < g.N(); v++ {
		if c, ok := g.Precolored(V(v)); ok {
			fmt.Fprintf(bw, "c regcoal color %d %d\n", v+1, c)
		}
	}
	as := append([]Affinity(nil), g.Affinities()...)
	SortAffinities(as)
	for _, a := range as {
		fmt.Fprintf(bw, "c regcoal move %d %d %d\n", int(a.X)+1, int(a.Y)+1, a.Weight)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d\n", int(e[0])+1, int(e[1])+1)
	}
	return bw.Flush()
}

// EqualFiles reports whether two files describe the same instance: same
// register count, vertex count, names, precoloring, edge set, and
// normalized affinity multiset. It is the semantic companion to the
// byte-level round-trip guarantee, used by corpus integrity checks.
func EqualFiles(a, b *File) bool {
	if a.K != b.K || a.G.N() != b.G.N() || a.G.E() != b.G.E() {
		return false
	}
	for v := 0; v < a.G.N(); v++ {
		if a.G.Name(V(v)) != b.G.Name(V(v)) {
			return false
		}
		ca, oka := a.G.Precolored(V(v))
		cb, okb := b.G.Precolored(V(v))
		if oka != okb || ca != cb {
			return false
		}
	}
	ea, eb := a.G.Edges(), b.G.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	sortedAffinities := func(g *Graph) []Affinity {
		as := append([]Affinity(nil), g.Affinities()...)
		SortAffinities(as)
		return as
	}
	aa, ab := sortedAffinities(a.G), sortedAffinities(b.G)
	if len(aa) != len(ab) {
		return false
	}
	for i := range aa {
		if aa[i] != ab[i] {
			return false
		}
	}
	return true
}
