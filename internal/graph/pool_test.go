package graph

import (
	"sync"
	"testing"
)

func TestArenaHandoutsAreZeroed(t *testing.T) {
	a := GetArena()
	defer a.Release()
	for round := 0; round < 3; round++ {
		b := a.Bits(100)
		if !b.Empty() {
			t.Fatalf("round %d: arena bitset not empty", round)
		}
		b.Set(7)
		b.Set(99)
		is := a.Ints(50)
		for i, x := range is {
			if x != 0 {
				t.Fatalf("round %d: Ints[%d] = %d, want 0", round, i, x)
			}
		}
		is[3] = 42
		bs := a.Bools(80)
		for i, x := range bs {
			if x {
				t.Fatalf("round %d: Bools[%d] set", round, i)
			}
		}
		bs[0] = true
		vs := a.Vs(10)
		if len(vs) != 0 || cap(vs) < 10 {
			t.Fatalf("round %d: Vs len %d cap %d, want 0/>=10", round, len(vs), cap(vs))
		}
		a.Reset() // dirty buffers go back; next round must see them clean
	}
}

func TestArenaDistinctBuffers(t *testing.T) {
	a := GetArena()
	defer a.Release()
	x := a.Bits(64)
	y := a.Bits(64)
	x.Set(0)
	if y.Get(0) {
		t.Fatal("two same-class handouts share storage")
	}
}

func TestArenaSizeClassReuse(t *testing.T) {
	a := GetArena()
	defer a.Release()
	first := a.Ints(100)
	a.Reset()
	second := a.Ints(90) // same class (128): must reuse the same buffer
	if &first[0] != &second[0] {
		t.Fatal("same-class request after Reset did not reuse the buffer")
	}
	a.Reset()
	third := a.Ints(300) // different class: fresh buffer
	if cap(third) < 300 {
		t.Fatalf("class buffer cap %d < 300", cap(third))
	}
}

func TestArenaOversizedRequest(t *testing.T) {
	a := GetArena()
	defer a.Release()
	huge := a.Ints(1 << numArenaClasses) // beyond the retained classes
	if len(huge) != 1<<numArenaClasses {
		t.Fatalf("oversized request length %d", len(huge))
	}
}

func TestArenaConcurrentAcquire(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := GetArena()
				b := a.Bits(256)
				b.Set(V(i % 256))
				if b.Count() != 1 {
					panic("cross-arena interference")
				}
				a.Release()
			}
		}()
	}
	wg.Wait()
}

func TestReuseBits(t *testing.T) {
	b := NewBits(128)
	b.Set(5)
	b.Set(127)
	r := ReuseBits(b, 100)
	if !r.Empty() {
		t.Fatal("ReuseBits did not clear")
	}
	if &r[0] != &b[0] {
		t.Fatal("ReuseBits did not reuse wide-enough storage")
	}
	big := ReuseBits(r, 100000)
	if len(big) != wordsFor(100000) {
		t.Fatalf("ReuseBits grow: %d words", len(big))
	}
}

func TestReuseRows(t *testing.T) {
	rows := [][]V{{1, 2, 3}, {4}}
	r := ReuseRows(rows, 2)
	if len(r) != 2 || len(r[0]) != 0 || cap(r[0]) < 3 {
		t.Fatalf("ReuseRows mangled rows: %v", r)
	}
	r = ReuseRows(r, 5)
	if len(r) != 5 {
		t.Fatalf("ReuseRows grow: %d rows", len(r))
	}
}

func TestFreezePanicsOnMutation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if g.Frozen() {
		t.Fatal("fresh graph frozen")
	}
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	mutations := map[string]func(){
		"AddEdge":         func() { g.AddEdge(2, 3) },
		"RemoveEdge":      func() { g.RemoveEdge(0, 1) },
		"AddVertex":       func() { g.AddVertex() },
		"AddAffinity":     func() { g.AddAffinity(0, 2, 1) },
		"SetPrecolored":   func() { g.SetPrecolored(0, 0) },
		"ClearPrecolored": func() { g.ClearPrecolored(0) },
		"SetName":         func() { g.SetName(0, "x") },
		"Normalize":       func() { g.NormalizeAffinities() },
	}
	for name, fn := range mutations {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen graph did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Reads still work, and Clone hands back a mutable copy.
	if !g.HasEdge(0, 1) || g.Degree(0) != 1 {
		t.Fatal("frozen graph lost its edges")
	}
	h := g.Clone()
	if h.Frozen() {
		t.Fatal("clone of a frozen graph is frozen")
	}
	h.AddEdge(2, 3) // must not panic
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionResetAndCopyFrom(t *testing.T) {
	p := NewPartition(6)
	p.Union(0, 1)
	p.Union(2, 3)
	q := new(Partition)
	q.CopyFrom(p)
	if q.NumClasses() != p.NumClasses() || !q.Same(0, 1) || q.Same(0, 2) {
		t.Fatal("CopyFrom diverged")
	}
	q.Union(0, 2) // must not leak back into p
	if p.Same(0, 2) {
		t.Fatal("CopyFrom aliases the source")
	}
	p.Reset(4)
	if p.N() != 4 || p.NumClasses() != 4 || p.Same(0, 1) {
		t.Fatal("Reset did not rediscretize")
	}
}
