package graph

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the hybrid graph core: the four substrate
// operations that dominate the solver kernels of cmd/bench -perf (see
// docs/PERFORMANCE.md). Run via `go test -bench=. ./internal/graph`;
// CI's bench-smoke job compiles and executes them once per push.

func benchGraph(b *testing.B, n int, p float64) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	g := RandomER(rng, n, p)
	b.ReportAllocs()
	b.ResetTimer()
	return g
}

func BenchmarkHasEdgeDense(b *testing.B) {
	g := benchGraph(b, 512, 0.5)
	for i := 0; i < b.N; i++ {
		u := V(i & 511)
		v := V((i >> 9) & 511)
		if u != v {
			g.HasEdge(u, v)
		}
	}
}

func BenchmarkForEachNeighborDense(b *testing.B) {
	g := benchGraph(b, 512, 0.5)
	sum := 0
	for i := 0; i < b.N; i++ {
		g.ForEachNeighbor(V(i&511), func(w V) { sum += int(w) })
	}
	_ = sum
}

func BenchmarkMaskedDegreeDense(b *testing.B) {
	g := benchGraph(b, 512, 0.5)
	mask := NewBits(512)
	for v := 0; v < 512; v += 2 {
		mask.Set(V(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaskedDegree(V(i&511), mask)
	}
}

func BenchmarkCloneDense(b *testing.B) {
	g := benchGraph(b, 512, 0.5)
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

func BenchmarkAddEdgeBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	proto := RandomER(rng, 512, 0.5)
	edges := proto.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := New(512)
		for _, e := range edges {
			h.AddEdge(e[0], e[1])
		}
	}
}
