package graph

import (
	"math/rand"
	"strings"
	"testing"
)

const sampleFile = `
# A tiny instance with a precolored register.
k 3
node a
node b
node r0 :0
edge a b
edge a r0
move b r0 5
move a b        ; constrained move, default weight
`

func TestReadFrom(t *testing.T) {
	f, err := ParseString(sampleFile)
	if err != nil {
		t.Fatal(err)
	}
	if f.K != 3 {
		t.Fatalf("k=%d, want 3", f.K)
	}
	g := f.G
	if g.N() != 3 || g.E() != 2 || g.NumAffinities() != 2 {
		t.Fatalf("n=%d e=%d moves=%d", g.N(), g.E(), g.NumAffinities())
	}
	r0, ok := g.VertexByName("r0")
	if !ok {
		t.Fatal("r0 missing")
	}
	if c, ok := g.Precolored(r0); !ok || c != 0 {
		t.Fatalf("r0 precolor=%d,%v", c, ok)
	}
	a, _ := g.VertexByName("a")
	b, _ := g.VertexByName("b")
	if !g.HasEdge(a, b) || !g.HasEdge(a, r0) {
		t.Fatal("edges missing")
	}
	// The weightless move defaults to 1.
	var w1 int64 = -1
	for _, af := range g.Affinities() {
		if (af.X == a && af.Y == b) || (af.X == b && af.Y == a) {
			w1 = af.Weight
		}
	}
	if w1 != 1 {
		t.Fatalf("default move weight=%d, want 1", w1)
	}
}

func TestImplicitNodeCreation(t *testing.T) {
	f, err := ParseString("edge x y\nmove y z 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.G.N() != 3 {
		t.Fatalf("implicit nodes: n=%d, want 3", f.G.N())
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomER(rng, 20, 0.25)
	SprinkleAffinities(rng, g, 15, 8)
	g.SetPrecolored(3, 2)
	g.NormalizeAffinities()
	orig := &File{G: g, K: 4}

	text := orig.FormatString()
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if back.K != orig.K || back.G.N() != g.N() || back.G.E() != g.E() {
		t.Fatalf("round trip changed shape: k=%d n=%d e=%d", back.K, back.G.N(), back.G.E())
	}
	if back.G.NumAffinities() != g.NumAffinities() {
		t.Fatalf("round trip changed moves: %d vs %d", back.G.NumAffinities(), g.NumAffinities())
	}
	if back.FormatString() != text {
		t.Fatal("second round trip not identical")
	}
	if c, ok := back.G.Precolored(3); !ok || c != 2 {
		t.Fatal("precolor lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"k\n",            // missing value
		"k -1\n",         // negative k
		"k x\n",          // non-numeric k
		"node\n",         // missing name
		"node a b c\n",   // too many fields
		"node a 3\n",     // precolor without colon
		"node a :-1\n",   // negative precolor
		"edge a\n",       // missing endpoint
		"edge a a\n",     // self-loop
		"move a\n",       // missing endpoint
		"move a b -3\n",  // negative weight
		"move a b x\n",   // non-numeric weight
		"frobnicate a\n", // unknown directive
		"edge a b c d\n", // too many fields
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q) should fail", c)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	f, err := ParseString("\n\n# only comments\n; and semicolons\n\nnode a\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.G.N() != 1 {
		t.Fatalf("n=%d, want 1", f.G.N())
	}
}

func TestWriteIncludesIsolatedVertices(t *testing.T) {
	g := NewNamed("alone", "also")
	f := &File{G: g}
	text := f.FormatString()
	if !strings.Contains(text, "node alone") || !strings.Contains(text, "node also") {
		t.Fatalf("isolated vertices missing from %q", text)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.N() != 2 {
		t.Fatal("isolated vertices lost")
	}
}
