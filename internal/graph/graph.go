// Package graph implements the interference-graph substrate used throughout
// the reproduction of Bouchez, Darte and Rastello, "On the Complexity of
// Register Coalescing" (LIP RR-2006-15 / CGO 2007).
//
// A Graph is an undirected interference graph: vertices are program
// variables (live ranges), edges are interferences (the two endpoints cannot
// share a register). On top of the interference structure the graph carries
// affinities: weighted move edges (u, v) recording that assigning u and v
// the same color removes one register-to-register move of the given weight.
//
// The package also provides the quotient construction that formalizes
// coalescing in the paper: a coalescing is a partition of the vertices such
// that no two vertices of a class interfere, and the coalesced graph G_f is
// the quotient of G by that partition (see Partition and Quotient).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// V identifies a vertex. Vertices of a graph with n vertices are the dense
// range 0..n-1.
type V int

// NoColor is the color value of an uncolored or non-precolored vertex.
const NoColor = -1

// Affinity is a move edge between two vertices: coalescing X and Y (giving
// them the same color) saves a move instruction whose dynamic execution
// count is Weight. Affinities never constrain a coloring; they only reward
// identification of colors.
type Affinity struct {
	X, Y   V
	Weight int64
}

// Canon returns the affinity with endpoints ordered X <= Y, so that
// affinities can be compared and deduplicated independently of endpoint
// order.
func (a Affinity) Canon() Affinity {
	if a.X > a.Y {
		a.X, a.Y = a.Y, a.X
	}
	return a
}

// Graph is a mutable undirected interference graph with affinities and
// optional precolored vertices (machine registers). The zero value is an
// empty graph; use New or NewNamed for a graph with vertices.
type Graph struct {
	adj        []map[V]bool
	names      []string
	precolored []int
	affinities []Affinity
	edges      int
}

// New returns a graph with n vertices (0..n-1) and no edges, affinities, or
// precoloring.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{
		adj:        make([]map[V]bool, n),
		names:      make([]string, n),
		precolored: make([]int, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[V]bool)
		g.precolored[i] = NoColor
	}
	return g
}

// NewNamed returns a graph with one vertex per name, in order.
func NewNamed(names ...string) *Graph {
	g := New(len(names))
	copy(g.names, names)
	return g
}

// N reports the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// E reports the number of interference edges.
func (g *Graph) E() int { return g.edges }

// Vertices returns all vertex ids in increasing order.
func (g *Graph) Vertices() []V {
	vs := make([]V, g.N())
	for i := range vs {
		vs[i] = V(i)
	}
	return vs
}

// AddVertex appends a fresh isolated vertex and returns its id.
func (g *Graph) AddVertex() V {
	g.adj = append(g.adj, make(map[V]bool))
	g.names = append(g.names, "")
	g.precolored = append(g.precolored, NoColor)
	return V(len(g.adj) - 1)
}

// AddNamedVertex appends a fresh isolated vertex with the given name.
func (g *Graph) AddNamedVertex(name string) V {
	v := g.AddVertex()
	g.names[v] = name
	return v
}

// Name returns the vertex name, or "v<i>" when the vertex is unnamed.
func (g *Graph) Name(v V) string {
	g.check(v)
	if g.names[v] == "" {
		return fmt.Sprintf("v%d", int(v))
	}
	return g.names[v]
}

// HasName reports whether v carries an explicit name (set via NewNamed,
// AddNamedVertex or SetName), as opposed to the synthesized "v<i>"
// fallback that Name returns for unnamed vertices.
func (g *Graph) HasName(v V) bool {
	g.check(v)
	return g.names[v] != ""
}

// SetName sets the vertex name.
func (g *Graph) SetName(v V, name string) {
	g.check(v)
	g.names[v] = name
}

// VertexByName returns the first vertex with the given name.
func (g *Graph) VertexByName(name string) (V, bool) {
	for i, n := range g.names {
		if n == name {
			return V(i), true
		}
	}
	return -1, false
}

func (g *Graph) check(v V) {
	if v < 0 || int(v) >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", int(v), len(g.adj)))
	}
}

// AddEdge adds the interference edge (u, v). Adding an existing edge is a
// no-op. Self-loops are rejected: a variable trivially shares a register
// with itself.
func (g *Graph) AddEdge(u, v V) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", int(u)))
	}
	if g.adj[u][v] {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	g.edges++
}

// RemoveEdge removes the interference edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v V) {
	g.check(u)
	g.check(v)
	if !g.adj[u][v] {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
}

// HasEdge reports whether u and v interfere.
func (g *Graph) HasEdge(u, v V) bool {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Degree reports the number of interference neighbors of v.
func (g *Graph) Degree(v V) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the interference neighbors of v in increasing order.
// The slice is freshly allocated; callers may keep or modify it.
func (g *Graph) Neighbors(v V) []V {
	g.check(v)
	ns := make([]V, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		ns = append(ns, w)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// ForEachNeighbor calls fn for every interference neighbor of v, in
// unspecified order. It avoids the allocation and sort of Neighbors and is
// the right call on hot paths whose result does not depend on order.
func (g *Graph) ForEachNeighbor(v V, fn func(w V)) {
	g.check(v)
	for w := range g.adj[v] {
		fn(w)
	}
}

// Edges returns all interference edges with u < v, sorted lexicographically.
func (g *Graph) Edges() [][2]V {
	es := make([][2]V, 0, g.edges)
	for u := range g.adj {
		for v := range g.adj[u] {
			if V(u) < v {
				es = append(es, [2]V{V(u), v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// AddAffinity records a move edge between u and v with the given weight.
// Parallel affinities are allowed and count separately (they correspond to
// distinct move instructions); use NormalizeAffinities to merge them.
// An affinity between interfering vertices is permitted — it is a
// "constrained" move that no coalescing can remove — as is a self-affinity
// (already coalesced; always satisfied).
func (g *Graph) AddAffinity(u, v V, weight int64) {
	g.check(u)
	g.check(v)
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative affinity weight %d", weight))
	}
	g.affinities = append(g.affinities, Affinity{X: u, Y: v, Weight: weight}.Canon())
}

// Affinities returns the affinity list. The returned slice is shared with
// the graph; callers must not modify it.
func (g *Graph) Affinities() []Affinity { return g.affinities }

// NumAffinities reports the number of affinities.
func (g *Graph) NumAffinities() int { return len(g.affinities) }

// TotalAffinityWeight reports the sum of all affinity weights.
func (g *Graph) TotalAffinityWeight() int64 {
	var t int64
	for _, a := range g.affinities {
		t += a.Weight
	}
	return t
}

// NormalizeAffinities merges parallel affinities (same endpoint pair) by
// summing weights, drops self-affinities, and sorts the affinity list.
func (g *Graph) NormalizeAffinities() {
	merged := make(map[[2]V]int64)
	for _, a := range g.affinities {
		a = a.Canon()
		if a.X == a.Y {
			continue
		}
		merged[[2]V{a.X, a.Y}] += a.Weight
	}
	g.affinities = g.affinities[:0]
	for pair, w := range merged {
		g.affinities = append(g.affinities, Affinity{X: pair[0], Y: pair[1], Weight: w})
	}
	SortAffinities(g.affinities)
}

// SortAffinities sorts affinities by endpoints, then weight.
func SortAffinities(as []Affinity) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].X != as[j].X {
			return as[i].X < as[j].X
		}
		if as[i].Y != as[j].Y {
			return as[i].Y < as[j].Y
		}
		return as[i].Weight < as[j].Weight
	})
}

// SetPrecolored pins v to the given color (machine register). Precolored
// vertices model physical registers in Chaitin-style allocators.
func (g *Graph) SetPrecolored(v V, color int) {
	g.check(v)
	if color < 0 {
		panic(fmt.Sprintf("graph: invalid precolor %d", color))
	}
	g.precolored[v] = color
}

// ClearPrecolored removes the precoloring of v.
func (g *Graph) ClearPrecolored(v V) {
	g.check(v)
	g.precolored[v] = NoColor
}

// Precolored reports the pinned color of v, if any.
func (g *Graph) Precolored(v V) (int, bool) {
	g.check(v)
	c := g.precolored[v]
	return c, c != NoColor
}

// HasPrecolored reports whether any vertex is precolored.
func (g *Graph) HasPrecolored() bool {
	for _, c := range g.precolored {
		if c != NoColor {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		adj:        make([]map[V]bool, len(g.adj)),
		names:      append([]string(nil), g.names...),
		precolored: append([]int(nil), g.precolored...),
		affinities: append([]Affinity(nil), g.affinities...),
		edges:      g.edges,
	}
	for i, m := range g.adj {
		h.adj[i] = make(map[V]bool, len(m))
		for w := range m {
			h.adj[i][w] = true
		}
	}
	return h
}

// InducedSubgraph returns the subgraph induced by keep, together with the
// mapping from old vertex ids to new ids (length g.N(), -1 for dropped
// vertices). Affinities with a dropped endpoint are dropped.
func (g *Graph) InducedSubgraph(keep []V) (*Graph, []V) {
	old2new := make([]V, g.N())
	for i := range old2new {
		old2new[i] = -1
	}
	sub := New(len(keep))
	for i, v := range keep {
		g.check(v)
		if old2new[v] != -1 {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", int(v)))
		}
		old2new[v] = V(i)
		sub.names[i] = g.names[v]
		sub.precolored[i] = g.precolored[v]
	}
	for _, v := range keep {
		for w := range g.adj[v] {
			if v < w && old2new[w] != -1 {
				sub.AddEdge(old2new[v], old2new[w])
			}
		}
	}
	for _, a := range g.affinities {
		x, y := old2new[a.X], old2new[a.Y]
		if x != -1 && y != -1 {
			sub.affinities = append(sub.affinities, Affinity{X: x, Y: y, Weight: a.Weight}.Canon())
		}
	}
	return sub, old2new
}

// AddClique adds all pairwise interference edges among vs.
func (g *Graph) AddClique(vs ...V) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			g.AddEdge(vs[i], vs[j])
		}
	}
}

// IsClique reports whether vs are pairwise interfering.
func (g *Graph) IsClique(vs []V) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// MaxDegree reports the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > m {
			m = d
		}
	}
	return m
}

// MinDegree reports the minimum vertex degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	m := g.N()
	for v := range g.adj {
		if d := len(g.adj[v]); d < m {
			m = d
		}
	}
	return m
}

// CliqueLift implements Property 2 of the paper: it returns a new graph G'
// built from g by adding a clique of p new vertices, each connected to every
// original vertex. G is k-colorable iff G' is (k+p)-colorable, G is chordal
// iff G' is chordal, and G is greedy-k-colorable iff G' is
// greedy-(k+p)-colorable. The ids of the p new vertices are returned.
// Affinities and precoloring of g are preserved on the original vertices.
func (g *Graph) CliqueLift(p int) (*Graph, []V) {
	if p < 0 {
		panic(fmt.Sprintf("graph: negative clique-lift size %d", p))
	}
	h := g.Clone()
	added := make([]V, p)
	for i := 0; i < p; i++ {
		added[i] = h.AddNamedVertex(fmt.Sprintf("lift%d", i))
	}
	h.AddClique(added...)
	for _, c := range added {
		for v := 0; v < g.N(); v++ {
			h.AddEdge(c, V(v))
		}
	}
	return h, added
}

// ConnectedComponents returns the vertex sets of the connected components of
// the interference structure (affinities are ignored), each sorted, in order
// of smallest contained vertex.
func (g *Graph) ConnectedComponents() [][]V {
	seen := make([]bool, g.N())
	var comps [][]V
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []V
		stack := []V{V(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Validate checks internal consistency: adjacency symmetry, edge count,
// affinity endpoints in range and non-negative weights. It returns the
// first inconsistency found, or nil. A healthy graph built through the
// public API always validates; Validate exists to catch corruption in code
// that manipulates internals (tests, fuzzing).
func (g *Graph) Validate() error {
	count := 0
	for u := range g.adj {
		for v := range g.adj[u] {
			if int(v) < 0 || int(v) >= len(g.adj) {
				return fmt.Errorf("graph: edge (%d,%d) endpoint out of range", u, int(v))
			}
			if V(u) == v {
				return fmt.Errorf("graph: self-loop on %d", u)
			}
			if !g.adj[v][V(u)] {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, int(v))
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d does not match adjacency size %d", g.edges, count)
	}
	for _, a := range g.affinities {
		if int(a.X) < 0 || int(a.X) >= len(g.adj) || int(a.Y) < 0 || int(a.Y) >= len(g.adj) {
			return fmt.Errorf("graph: affinity %v endpoint out of range", a)
		}
		if a.Weight < 0 {
			return fmt.Errorf("graph: affinity %v has negative weight", a)
		}
	}
	return nil
}

// String renders a compact human-readable description: vertex count, edges,
// and affinities, using vertex names.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph n=%d e=%d moves=%d\n", g.N(), g.E(), len(g.affinities))
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -- %s\n", g.Name(e[0]), g.Name(e[1]))
	}
	for _, a := range g.affinities {
		fmt.Fprintf(&b, "  %s => %s (w=%d)\n", g.Name(a.X), g.Name(a.Y), a.Weight)
	}
	return b.String()
}
