// Package graph implements the interference-graph substrate used throughout
// the reproduction of Bouchez, Darte and Rastello, "On the Complexity of
// Register Coalescing" (LIP RR-2006-15 / CGO 2007).
//
// A Graph is an undirected interference graph: vertices are program
// variables (live ranges), edges are interferences (the two endpoints cannot
// share a register). On top of the interference structure the graph carries
// affinities: weighted move edges (u, v) recording that assigning u and v
// the same color removes one register-to-register move of the given weight.
//
// The package also provides the quotient construction that formalizes
// coalescing in the paper: a coalescing is a partition of the vertices such
// that no two vertices of a class interfere, and the coalesced graph G_f is
// the quotient of G by that partition (see Partition and Quotient).
//
// # Representation
//
// Interference is stored twice, in the hybrid layout production allocators
// use for dense, high-pressure graphs (see docs/PERFORMANCE.md):
//
//   - a dense bitset matrix (one []uint64 row per vertex, all rows packed
//     into a single flat slice) giving O(1) HasEdge and word-parallel set
//     operations over neighborhoods (BitsetNeighbors, MaskedDegree,
//     CommonNeighborCount);
//   - compact sorted adjacency slices giving O(deg) allocation-free
//     iteration in increasing vertex order (ForEachNeighbor,
//     NeighborsInto) and O(1) Degree.
//
// The two structures are maintained together by AddEdge/RemoveEdge; the
// memory cost is n²/8 bytes for the matrix plus ~8 bytes per half-edge for
// the slices, a fine trade at interference-graph scale (Validate checks
// their consistency). Iteration order is increasing vertex order — a
// strictly stronger guarantee than the unspecified map order of the old
// representation, which determinism-sensitive callers had to sort away.
package graph

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// V identifies a vertex. Vertices of a graph with n vertices are the dense
// range 0..n-1.
type V int

// NoColor is the color value of an uncolored or non-precolored vertex.
const NoColor = -1

// Affinity is a move edge between two vertices: coalescing X and Y (giving
// them the same color) saves a move instruction whose dynamic execution
// count is Weight. Affinities never constrain a coloring; they only reward
// identification of colors.
type Affinity struct {
	X, Y   V
	Weight int64
}

// Canon returns the affinity with endpoints ordered X <= Y, so that
// affinities can be compared and deduplicated independently of endpoint
// order.
func (a Affinity) Canon() Affinity {
	if a.X > a.Y {
		a.X, a.Y = a.Y, a.X
	}
	return a
}

// Graph is a mutable undirected interference graph with affinities and
// optional precolored vertices (machine registers). The zero value is an
// empty graph; use New or NewNamed for a graph with vertices.
type Graph struct {
	n      int
	stride int      // words per bitset row; >= wordsFor(n)
	bits   []uint64 // n rows of stride words; row v starts at v*stride
	nbr    [][]V    // sorted neighbor slices; len(nbr[v]) == Degree(v)

	names      []string
	precolored []int
	affinities []Affinity
	edges      int
	frozen     bool
}

// New returns a graph with n vertices (0..n-1) and no edges, affinities, or
// precoloring.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{
		n:          n,
		stride:     wordsFor(n),
		nbr:        make([][]V, n),
		names:      make([]string, n),
		precolored: make([]int, n),
	}
	g.bits = make([]uint64, n*g.stride)
	for i := range g.precolored {
		g.precolored[i] = NoColor
	}
	return g
}

// NewNamed returns a graph with one vertex per name, in order.
func NewNamed(names ...string) *Graph {
	g := New(len(names))
	copy(g.names, names)
	return g
}

// N reports the number of vertices.
func (g *Graph) N() int { return g.n }

// E reports the number of interference edges.
func (g *Graph) E() int { return g.edges }

// Vertices returns all vertex ids in increasing order.
func (g *Graph) Vertices() []V {
	vs := make([]V, g.n)
	for i := range vs {
		vs[i] = V(i)
	}
	return vs
}

// row returns vertex v's full bitset row (stride words).
func (g *Graph) row(v V) []uint64 {
	off := int(v) * g.stride
	return g.bits[off : off+g.stride]
}

// growTo widens the bitset matrix to hold at least n vertices, restriding
// (with doubling, to amortize vertex-at-a-time growth as in CliqueLift)
// when n no longer fits the current row width.
func (g *Graph) growTo(n int) {
	need := wordsFor(n)
	if need > g.stride {
		stride := 2 * g.stride
		if stride < need {
			stride = need
		}
		nb := make([]uint64, n*stride)
		for v := 0; v < g.n; v++ {
			copy(nb[v*stride:], g.bits[v*g.stride:v*g.stride+g.stride])
		}
		g.bits = nb
		g.stride = stride
		return
	}
	if want := n * g.stride; len(g.bits) < want {
		g.bits = append(g.bits, make([]uint64, want-len(g.bits))...)
	}
}

// AddVertex appends a fresh isolated vertex and returns its id.
func (g *Graph) AddVertex() V {
	g.mutable("AddVertex")
	g.growTo(g.n + 1)
	g.n++
	g.nbr = append(g.nbr, nil)
	g.names = append(g.names, "")
	g.precolored = append(g.precolored, NoColor)
	return V(g.n - 1)
}

// AddNamedVertex appends a fresh isolated vertex with the given name.
func (g *Graph) AddNamedVertex(name string) V {
	v := g.AddVertex()
	g.names[v] = name
	return v
}

// Name returns the vertex name, or "v<i>" when the vertex is unnamed.
func (g *Graph) Name(v V) string {
	g.check(v)
	if g.names[v] == "" {
		return fmt.Sprintf("v%d", int(v))
	}
	return g.names[v]
}

// HasName reports whether v carries an explicit name (set via NewNamed,
// AddNamedVertex or SetName), as opposed to the synthesized "v<i>"
// fallback that Name returns for unnamed vertices.
func (g *Graph) HasName(v V) bool {
	g.check(v)
	return g.names[v] != ""
}

// SetName sets the vertex name.
func (g *Graph) SetName(v V, name string) {
	g.mutable("SetName")
	g.check(v)
	g.names[v] = name
}

// VertexByName returns the first vertex with the given name.
func (g *Graph) VertexByName(name string) (V, bool) {
	for i, n := range g.names {
		if n == name {
			return V(i), true
		}
	}
	return -1, false
}

func (g *Graph) check(v V) {
	if v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", int(v), g.n))
	}
}

// Freeze marks the graph read-only and returns it: every subsequent
// structural mutation (AddEdge, AddVertex, AddAffinity, precoloring,
// renaming) panics. Freezing is how one parsed instance is shared —
// without cloning — by concurrent portfolio racers and strategy-matrix
// columns: the panic turns a silent cross-racer data race into a loud
// contract violation. Freezing is irreversible on this value; Clone
// returns a mutable copy.
func (g *Graph) Freeze() *Graph {
	g.frozen = true
	return g
}

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

// mutable panics when the graph is frozen; every mutator calls it first.
func (g *Graph) mutable(op string) {
	if g.frozen {
		panic("graph: " + op + " on frozen graph (shared read-only snapshot; Clone first)")
	}
}

// insertSorted inserts v into the sorted slice s. Appending at the tail
// (edges arriving in increasing order, the common build pattern) is O(1).
func insertSorted(s []V, v V) []V {
	if n := len(s); n == 0 || s[n-1] < v {
		return append(s, v)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted removes v from the sorted slice s (v must be present).
func removeSorted(s []V, v V) []V {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// AddEdge adds the interference edge (u, v). Adding an existing edge is a
// no-op. Self-loops are rejected: a variable trivially shares a register
// with itself.
func (g *Graph) AddEdge(u, v V) {
	g.mutable("AddEdge")
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", int(u)))
	}
	iu := int(u)*g.stride + int(v)>>6
	mu := uint64(1) << (uint(v) & 63)
	if g.bits[iu]&mu != 0 {
		return
	}
	g.bits[iu] |= mu
	g.bits[int(v)*g.stride+int(u)>>6] |= 1 << (uint(u) & 63)
	g.nbr[u] = insertSorted(g.nbr[u], v)
	g.nbr[v] = insertSorted(g.nbr[v], u)
	g.edges++
}

// RemoveEdge removes the interference edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v V) {
	g.mutable("RemoveEdge")
	g.check(u)
	g.check(v)
	iu := int(u)*g.stride + int(v)>>6
	mu := uint64(1) << (uint(v) & 63)
	if g.bits[iu]&mu == 0 {
		return
	}
	g.bits[iu] &^= mu
	g.bits[int(v)*g.stride+int(u)>>6] &^= 1 << (uint(u) & 63)
	g.nbr[u] = removeSorted(g.nbr[u], v)
	g.nbr[v] = removeSorted(g.nbr[v], u)
	g.edges--
}

// HasEdge reports whether u and v interfere. O(1): one word probe in the
// bitset matrix.
func (g *Graph) HasEdge(u, v V) bool {
	g.check(u)
	g.check(v)
	return g.bits[int(u)*g.stride+int(v)>>6]&(1<<(uint(v)&63)) != 0
}

// Degree reports the number of interference neighbors of v. O(1).
func (g *Graph) Degree(v V) int {
	g.check(v)
	return len(g.nbr[v])
}

// Neighbors returns the interference neighbors of v in increasing order.
// The slice is freshly allocated; callers may keep or modify it. Hot loops
// should prefer ForEachNeighbor or NeighborsInto, which do not allocate.
func (g *Graph) Neighbors(v V) []V {
	g.check(v)
	return append([]V(nil), g.nbr[v]...)
}

// NeighborsInto overwrites dst with the neighbors of v in increasing order
// and returns it, growing it only when v's degree exceeds cap(dst). It is
// the allocation-free variant of Neighbors for loops that reuse a buffer.
func (g *Graph) NeighborsInto(dst []V, v V) []V {
	g.check(v)
	return append(dst[:0], g.nbr[v]...)
}

// ForEachNeighbor calls fn for every interference neighbor of v, in
// increasing vertex order. It avoids the allocation of Neighbors and is
// the right call on hot paths.
func (g *Graph) ForEachNeighbor(v V, fn func(w V)) {
	g.check(v)
	for _, w := range g.nbr[v] {
		fn(w)
	}
}

// BitsetNeighbors returns the neighborhood of v as a read-only bitset,
// sized wordsFor(N()) — directly compatible with masks from NewBits(N())
// and the word-parallel helpers (AndCount, MaskedDegree). The returned
// slice aliases the graph: callers must not modify it, and it is
// invalidated by AddVertex.
func (g *Graph) BitsetNeighbors(v V) Bits {
	g.check(v)
	off := int(v) * g.stride
	return Bits(g.bits[off : off+wordsFor(g.n)])
}

// MaskedDegree counts the neighbors of v inside mask word-parallelly —
// the degree of v in the subgraph induced by mask, without touching the
// adjacency slices. mask is typically NewBits(N())-sized.
func (g *Graph) MaskedDegree(v V, mask Bits) int {
	g.check(v)
	return AndCount(g.BitsetNeighbors(v), mask)
}

// CommonNeighborCount counts the common interference neighbors of u and v
// word-parallelly — the |N(u) ∩ N(v)| term of the Briggs/George
// conservative tests.
func (g *Graph) CommonNeighborCount(u, v V) int {
	g.check(u)
	g.check(v)
	return AndCount(g.BitsetNeighbors(u), g.BitsetNeighbors(v))
}

// Edges returns all interference edges with u < v, sorted lexicographically.
func (g *Graph) Edges() [][2]V {
	es := make([][2]V, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.nbr[u] {
			if V(u) < v {
				es = append(es, [2]V{V(u), v})
			}
		}
	}
	return es
}

// AddAffinity records a move edge between u and v with the given weight.
// Parallel affinities are allowed and count separately (they correspond to
// distinct move instructions); use NormalizeAffinities to merge them.
// An affinity between interfering vertices is permitted — it is a
// "constrained" move that no coalescing can remove — as is a self-affinity
// (already coalesced; always satisfied).
func (g *Graph) AddAffinity(u, v V, weight int64) {
	g.mutable("AddAffinity")
	g.check(u)
	g.check(v)
	if weight < 0 {
		panic(fmt.Sprintf("graph: negative affinity weight %d", weight))
	}
	g.affinities = append(g.affinities, Affinity{X: u, Y: v, Weight: weight}.Canon())
}

// Affinities returns the affinity list. The returned slice is shared with
// the graph; callers must not modify it.
func (g *Graph) Affinities() []Affinity { return g.affinities }

// NumAffinities reports the number of affinities.
func (g *Graph) NumAffinities() int { return len(g.affinities) }

// TotalAffinityWeight reports the sum of all affinity weights.
func (g *Graph) TotalAffinityWeight() int64 {
	var t int64
	for _, a := range g.affinities {
		t += a.Weight
	}
	return t
}

// NormalizeAffinities merges parallel affinities (same endpoint pair) by
// summing weights, drops self-affinities, and sorts the affinity list.
func (g *Graph) NormalizeAffinities() {
	g.mutable("NormalizeAffinities")
	merged := make(map[[2]V]int64)
	for _, a := range g.affinities {
		a = a.Canon()
		if a.X == a.Y {
			continue
		}
		merged[[2]V{a.X, a.Y}] += a.Weight
	}
	g.affinities = g.affinities[:0]
	for pair, w := range merged {
		g.affinities = append(g.affinities, Affinity{X: pair[0], Y: pair[1], Weight: w})
	}
	SortAffinities(g.affinities)
}

// SortAffinities sorts affinities by endpoints, then weight. It performs
// no heap allocation (slices.SortFunc, unlike sort.Slice, does not box),
// so pooled solver state can sort its move list on the zero-alloc path.
func SortAffinities(as []Affinity) {
	slices.SortFunc(as, func(a, b Affinity) int {
		if a.X != b.X {
			return int(a.X - b.X)
		}
		if a.Y != b.Y {
			return int(a.Y - b.Y)
		}
		switch {
		case a.Weight < b.Weight:
			return -1
		case a.Weight > b.Weight:
			return 1
		}
		return 0
	})
}

// SetPrecolored pins v to the given color (machine register). Precolored
// vertices model physical registers in Chaitin-style allocators.
func (g *Graph) SetPrecolored(v V, color int) {
	g.mutable("SetPrecolored")
	g.check(v)
	if color < 0 {
		panic(fmt.Sprintf("graph: invalid precolor %d", color))
	}
	g.precolored[v] = color
}

// ClearPrecolored removes the precoloring of v.
func (g *Graph) ClearPrecolored(v V) {
	g.mutable("ClearPrecolored")
	g.check(v)
	g.precolored[v] = NoColor
}

// Precolored reports the pinned color of v, if any.
func (g *Graph) Precolored(v V) (int, bool) {
	g.check(v)
	c := g.precolored[v]
	return c, c != NoColor
}

// HasPrecolored reports whether any vertex is precolored.
func (g *Graph) HasPrecolored() bool {
	for _, c := range g.precolored {
		if c != NoColor {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph. The bitset matrix is one flat
// copy; adjacency slices are copied row by row. The copy is always
// mutable, even when g is frozen.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		n:          g.n,
		stride:     g.stride,
		bits:       append([]uint64(nil), g.bits...),
		nbr:        make([][]V, g.n),
		names:      append([]string(nil), g.names...),
		precolored: append([]int(nil), g.precolored...),
		affinities: append([]Affinity(nil), g.affinities...),
		edges:      g.edges,
	}
	for v, ns := range g.nbr {
		if len(ns) > 0 {
			h.nbr[v] = append([]V(nil), ns...)
		}
	}
	return h
}

// InducedSubgraph returns the subgraph induced by keep, together with the
// mapping from old vertex ids to new ids (length g.N(), -1 for dropped
// vertices). Affinities with a dropped endpoint are dropped.
func (g *Graph) InducedSubgraph(keep []V) (*Graph, []V) {
	old2new := make([]V, g.n)
	for i := range old2new {
		old2new[i] = -1
	}
	sub := New(len(keep))
	for i, v := range keep {
		g.check(v)
		if old2new[v] != -1 {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", int(v)))
		}
		old2new[v] = V(i)
		sub.names[i] = g.names[v]
		sub.precolored[i] = g.precolored[v]
	}
	for _, v := range keep {
		for _, w := range g.nbr[v] {
			if v < w && old2new[w] != -1 {
				sub.AddEdge(old2new[v], old2new[w])
			}
		}
	}
	for _, a := range g.affinities {
		x, y := old2new[a.X], old2new[a.Y]
		if x != -1 && y != -1 {
			sub.affinities = append(sub.affinities, Affinity{X: x, Y: y, Weight: a.Weight}.Canon())
		}
	}
	return sub, old2new
}

// AddClique adds all pairwise interference edges among vs.
func (g *Graph) AddClique(vs ...V) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			g.AddEdge(vs[i], vs[j])
		}
	}
}

// IsClique reports whether vs are pairwise interfering.
func (g *Graph) IsClique(vs []V) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// MaxDegree reports the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for v := range g.nbr {
		if d := len(g.nbr[v]); d > m {
			m = d
		}
	}
	return m
}

// MinDegree reports the minimum vertex degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	m := g.n
	for v := range g.nbr {
		if d := len(g.nbr[v]); d < m {
			m = d
		}
	}
	return m
}

// CliqueLift implements Property 2 of the paper: it returns a new graph G'
// built from g by adding a clique of p new vertices, each connected to every
// original vertex. G is k-colorable iff G' is (k+p)-colorable, G is chordal
// iff G' is chordal, and G is greedy-k-colorable iff G' is
// greedy-(k+p)-colorable. The ids of the p new vertices are returned.
// Affinities and precoloring of g are preserved on the original vertices.
func (g *Graph) CliqueLift(p int) (*Graph, []V) {
	if p < 0 {
		panic(fmt.Sprintf("graph: negative clique-lift size %d", p))
	}
	h := g.Clone()
	added := make([]V, p)
	for i := 0; i < p; i++ {
		added[i] = h.AddNamedVertex(fmt.Sprintf("lift%d", i))
	}
	h.AddClique(added...)
	for _, c := range added {
		for v := 0; v < g.n; v++ {
			h.AddEdge(c, V(v))
		}
	}
	return h, added
}

// ConnectedComponents returns the vertex sets of the connected components of
// the interference structure (affinities are ignored), each sorted, in order
// of smallest contained vertex.
func (g *Graph) ConnectedComponents() [][]V {
	seen := make([]bool, g.n)
	var comps [][]V
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []V
		stack := []V{V(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.nbr[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Validate checks internal consistency: bitset/adjacency-slice agreement,
// slice sortedness, adjacency symmetry, edge count, affinity endpoints in
// range and non-negative weights. It returns the first inconsistency
// found, or nil. A healthy graph built through the public API always
// validates; Validate exists to catch corruption in code that manipulates
// internals (tests, fuzzing).
func (g *Graph) Validate() error {
	if g.stride < wordsFor(g.n) {
		return fmt.Errorf("graph: stride %d too small for %d vertices", g.stride, g.n)
	}
	if len(g.bits) < g.n*g.stride {
		return fmt.Errorf("graph: bitset matrix has %d words, need %d", len(g.bits), g.n*g.stride)
	}
	count := 0
	for u := 0; u < g.n; u++ {
		row := g.row(V(u))
		if got := Bits(row[:wordsFor(g.n)]).Count(); got != len(g.nbr[u]) {
			return fmt.Errorf("graph: vertex %d bitset degree %d != slice degree %d", u, got, len(g.nbr[u]))
		}
		for i, v := range g.nbr[u] {
			if int(v) < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: edge (%d,%d) endpoint out of range", u, int(v))
			}
			if V(u) == v {
				return fmt.Errorf("graph: self-loop on %d", u)
			}
			if i > 0 && g.nbr[u][i-1] >= v {
				return fmt.Errorf("graph: vertex %d adjacency slice unsorted at %d", u, i)
			}
			if row[int(v)>>6]&(1<<(uint(v)&63)) == 0 {
				return fmt.Errorf("graph: edge (%d,%d) in slice but not bitset", u, int(v))
			}
			if !g.HasEdge(v, V(u)) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, int(v))
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d does not match adjacency size %d", g.edges, count)
	}
	for _, a := range g.affinities {
		if int(a.X) < 0 || int(a.X) >= g.n || int(a.Y) < 0 || int(a.Y) >= g.n {
			return fmt.Errorf("graph: affinity %v endpoint out of range", a)
		}
		if a.Weight < 0 {
			return fmt.Errorf("graph: affinity %v has negative weight", a)
		}
	}
	return nil
}

// String renders a compact human-readable description: vertex count, edges,
// and affinities, using vertex names.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph n=%d e=%d moves=%d\n", g.N(), g.E(), len(g.affinities))
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -- %s\n", g.Name(e[0]), g.Name(e[1]))
	}
	for _, a := range g.affinities {
		fmt.Fprintf(&b, "  %s => %s (w=%d)\n", g.Name(a.X), g.Name(a.Y), a.Weight)
	}
	return b.String()
}
