package graph

import (
	"math/bits"
	"sync"
)

// Pooled scratch arenas. The steady-state solve path (service portfolio
// racers, engine matrix columns, repeated IRC/spill/chordal runs) used to
// re-allocate the same worklists, degree arrays, and bitset masks on
// every run. An Arena hands those buffers out from size-classed free
// lists and is itself recycled through a sync.Pool, so a solver that
// acquires an arena, takes its scratch, and releases the arena performs
// zero heap allocations once the pool is warm for that graph size.
//
// Size classes are powers of two: a request for n elements is served from
// a buffer of capacity 2^ceil(log2 n), so graphs of similar sizes share
// classes and a warm arena serves any same-or-smaller instance without
// growing. Buffers are zeroed on every handout — callers always see an
// empty bitset / zeroed slice, exactly as if freshly made.
//
// Ownership rules:
//
//   - Buffers returned by an Arena are owned by that arena. They are
//     valid until the arena's Release (or Reset) and must not be retained
//     past it.
//   - An Arena is single-goroutine state, like the solver scratch it
//     backs; concurrent solvers each acquire their own.
//   - Release both reclaims every handed-out buffer and returns the
//     arena to the global pool.
//
// Solver state structs with a Reset(g)-style lifecycle (regalloc.IRC,
// spill.Scratch) own their buffers directly and use ReuseBits/ReuseSlice
// instead; the Arena serves call-shaped scratch (greedy elimination,
// chordal MCS, coalesce drivers) where threading a state struct through
// the API would be noise.

// numArenaClasses bounds the retained size classes: buffers above
// 2^(numArenaClasses-1) elements are allocated directly and not pooled —
// at that scale the allocation is not the cost that matters.
const numArenaClasses = 26

// arenaMem is one element type's size-classed free lists. bufs[c] holds
// every buffer of class c ever handed out by this arena; used[c] counts
// how many are currently out. Reset reclaims all of them at once by
// zeroing the counters — buffers are retained for the next run.
type arenaMem[T any] struct {
	bufs [numArenaClasses][][]T
	used [numArenaClasses]int
}

// arenaClass is the size class covering n elements.
func arenaClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a zeroed slice of length n backed by a class-sized buffer.
func (m *arenaMem[T]) get(n int) []T {
	c := arenaClass(n)
	if c >= numArenaClasses {
		return make([]T, n)
	}
	if m.used[c] < len(m.bufs[c]) {
		b := m.bufs[c][m.used[c]]
		m.used[c]++
		clear(b)
		return b[:n]
	}
	b := make([]T, 1<<c)
	m.bufs[c] = append(m.bufs[c], b)
	m.used[c]++
	return b[:n]
}

func (m *arenaMem[T]) reset() {
	for c := range m.used {
		m.used[c] = 0
	}
}

// Arena is a pooled scratch allocator for solver state: bitsets, vertex
// worklists, degree arrays, and flag arrays. See the package comment
// above for the ownership rules.
type Arena struct {
	u64   arenaMem[uint64]
	vs    arenaMem[V]
	ints  arenaMem[int]
	bools arenaMem[bool]
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena checks an arena out of the global pool. Pair with Release.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// Release reclaims every buffer handed out by the arena and returns it
// to the global pool. The arena and all its buffers must not be used
// afterwards.
func (a *Arena) Release() {
	a.Reset()
	arenaPool.Put(a)
}

// Reset reclaims every handed-out buffer without returning the arena to
// the pool — the between-rounds variant for loops that reuse one arena.
func (a *Arena) Reset() {
	a.u64.reset()
	a.vs.reset()
	a.ints.reset()
	a.bools.reset()
}

// Bits returns an empty bitset sized for vertex ids 0..n-1, like
// NewBits(n) but arena-backed.
func (a *Arena) Bits(n int) Bits { return Bits(a.u64.get(wordsFor(n))) }

// Vs returns an empty vertex slice with capacity at least n — worklist
// and stack scratch.
func (a *Arena) Vs(n int) []V { return a.vs.get(n)[:0] }

// Ints returns a zeroed []int of length n — degree and position arrays.
func (a *Arena) Ints(n int) []int { return a.ints.get(n) }

// Bools returns a zeroed []bool of length n — removed/pinned/visited
// flags.
func (a *Arena) Bools(n int) []bool { return a.bools.get(n) }

// ReuseBits returns an empty bitset sized for vertex ids 0..n-1, reusing
// b's storage when it is wide enough. This is the Reset(g)-style idiom
// for solver state that owns its buffers across runs (see Arena for the
// call-shaped variant).
func ReuseBits(b Bits, n int) Bits {
	w := wordsFor(n)
	if cap(b) < w {
		return NewBits(n)
	}
	b = b[:w]
	clear(b)
	return b
}

// ReuseSlice returns a zeroed slice of length n, reusing s's storage
// when its capacity allows. The companion of ReuseBits for []int, []bool
// and []V solver state.
func ReuseSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// ReuseRows truncates every row of a slice-of-slices to length zero and
// returns it resized to n rows, preserving per-row capacity — the reuse
// idiom for adjacency lists and per-vertex move lists.
func ReuseRows[T any](rows [][]T, n int) [][]T {
	if cap(rows) < n {
		rows = make([][]T, n)
		return rows
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}
