package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuotientBasic(t *testing.T) {
	// a--b, affinity (a,c): merging a and c produces a 2-vertex graph with
	// one edge and no remaining affinities.
	g := NewNamed("a", "b", "c")
	g.AddEdge(0, 1)
	g.AddAffinity(0, 2, 3)
	p := NewPartition(3)
	p.Union(0, 2)
	q, old2new, err := Quotient(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 2 || q.E() != 1 {
		t.Fatalf("quotient n=%d e=%d, want 2, 1", q.N(), q.E())
	}
	if q.NumAffinities() != 0 {
		t.Fatalf("coalesced affinity survived: %v", q.Affinities())
	}
	if old2new[0] != old2new[2] {
		t.Fatal("merged vertices map differently")
	}
	if old2new[0] == old2new[1] {
		t.Fatal("separate vertices map identically")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuotientRejectsInterferingMerge(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	p := NewPartition(2)
	p.Union(0, 1)
	if _, _, err := Quotient(g, p); err == nil {
		t.Fatal("quotient of interfering class should fail")
	}
}

func TestQuotientRejectsPrecolorConflict(t *testing.T) {
	g := New(2)
	g.SetPrecolored(0, 0)
	g.SetPrecolored(1, 1)
	p := NewPartition(2)
	p.Union(0, 1)
	if _, _, err := Quotient(g, p); err == nil {
		t.Fatal("quotient merging two precolors should fail")
	}
}

func TestQuotientMergesParallelAffinities(t *testing.T) {
	// Affinities (a,c) and (b,c) with a,b merged become one affinity of
	// combined weight.
	g := New(3)
	g.AddAffinity(0, 2, 3)
	g.AddAffinity(1, 2, 4)
	p := NewPartition(3)
	p.Union(0, 1)
	q, _, err := Quotient(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumAffinities() != 1 {
		t.Fatalf("affinities=%v, want one merged", q.Affinities())
	}
	if q.Affinities()[0].Weight != 7 {
		t.Fatalf("merged weight=%d, want 7", q.Affinities()[0].Weight)
	}
}

func TestQuotientCarriesPrecolorAndNames(t *testing.T) {
	g := NewNamed("x", "y", "z")
	g.SetPrecolored(1, 3)
	p := NewPartition(3)
	p.Union(1, 2)
	q, old2new, err := Quotient(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := q.Precolored(old2new[2]); !ok || c != 3 {
		t.Fatal("precolor not carried through quotient")
	}
	if q.Name(old2new[0]) != "x" {
		t.Fatal("name not carried through quotient")
	}
}

func TestCanMerge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	p := NewPartition(4)
	if CanMerge(g, p, 0, 1) {
		t.Fatal("cannot merge interfering vertices")
	}
	if !CanMerge(g, p, 0, 2) {
		t.Fatal("should merge non-interfering vertices")
	}
	p.Union(2, 1) // class {1,2} now contains a neighbor of 0
	if CanMerge(g, p, 0, 2) {
		t.Fatal("merge must consider whole classes")
	}
	if !CanMerge(g, p, 1, 2) {
		t.Fatal("same-class merge is trivially allowed")
	}
}

func TestCanMergePrecolor(t *testing.T) {
	g := New(3)
	g.SetPrecolored(0, 1)
	g.SetPrecolored(1, 2)
	p := NewPartition(3)
	if CanMerge(g, p, 0, 1) {
		t.Fatal("cannot merge distinct precolors")
	}
	if !CanMerge(g, p, 0, 2) {
		t.Fatal("precolored with plain vertex is allowed")
	}
}

func TestMergeAllCoalescesWhatItCan(t *testing.T) {
	// Triangle of interferences s1-s2-s3 plus chains of affinities: the
	// Figure 1 flavor. MergeAll must coalesce every affinity not blocked by
	// an interference path.
	g := NewNamed("s1", "s2", "s3", "u")
	g.AddClique(0, 1, 2)
	g.AddAffinity(3, 0, 1) // u can merge with s1
	p := MergeAll(g)
	if !p.Same(3, 0) {
		t.Fatal("MergeAll should coalesce (u, s1)")
	}
	if !p.CompatibleWith(g) {
		t.Fatal("MergeAll produced an invalid coalescing")
	}
}

// Property: Quotient of a random compatible coalescing is loop-free, valid,
// and preserves total affinity weight split between coalesced and remaining.
func TestQuickQuotientInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomER(rng, n, 0.3)
		SprinkleAffinities(rng, g, n, 5)
		p := MergeAll(g)
		if !p.CompatibleWith(g) {
			return false
		}
		q, _, err := Quotient(g, p)
		if err != nil {
			return false
		}
		if q.Validate() != nil {
			return false
		}
		_, remaining := p.CoalescedAffinities(g)
		var remWeight int64
		for _, a := range remaining {
			remWeight += a.Weight
		}
		return q.TotalAffinityWeight() == remWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: lifting a coloring of the quotient yields a proper coloring of
// the original graph.
func TestQuickQuotientColoringLift(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomER(rng, n, 0.3)
		SprinkleAffinities(rng, g, n, 3)
		p := MergeAll(g)
		q, old2new, err := Quotient(g, p)
		if err != nil {
			return false
		}
		// Color the quotient trivially: one color per vertex.
		col := NewColoring(q.N())
		for i := range col {
			col[i] = i
		}
		lifted := col.Lift(old2new)
		return lifted.Proper(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
