// Package mapref retains the pre-bitset map-backed adjacency
// representation of internal/graph as a differential-testing reference.
//
// When the graph core moved to the hybrid bitset + adjacency-slice layout
// (see docs/PERFORMANCE.md), this package kept the old []map[V]bool
// structure — not for production use, but so property tests can assert
// that the two representations agree query for query (HasEdge, Degree,
// Neighbors, Edges) under arbitrary mutation streams, and that solvers
// fed a graph rebuilt through map iteration order (deliberately
// randomized by the Go runtime) produce results identical to the
// original — pinning the representation-independence the service's
// byte-identical-response contract relies on.
package mapref

import (
	"sort"

	"regcoal/internal/graph"
)

// Graph is the map-backed reference: one map[V]bool per vertex, exactly
// the structure internal/graph.Graph used before the bitset core.
type Graph struct {
	adj   []map[graph.V]bool
	edges int
}

// New returns a reference graph with n vertices and no edges.
func New(n int) *Graph {
	g := &Graph{adj: make([]map[graph.V]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[graph.V]bool)
	}
	return g
}

// FromGraph copies the interference structure of g into a reference graph.
func FromGraph(g *graph.Graph) *Graph {
	r := New(g.N())
	for _, e := range g.Edges() {
		r.AddEdge(e[0], e[1])
	}
	return r
}

// N reports the vertex count.
func (g *Graph) N() int { return len(g.adj) }

// E reports the edge count.
func (g *Graph) E() int { return g.edges }

// AddVertex appends an isolated vertex.
func (g *Graph) AddVertex() graph.V {
	g.adj = append(g.adj, make(map[graph.V]bool))
	return graph.V(len(g.adj) - 1)
}

// AddEdge adds (u, v); adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v graph.V) {
	if g.adj[u][v] {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	g.edges++
}

// RemoveEdge removes (u, v) if present.
func (g *Graph) RemoveEdge(u, v graph.V) {
	if !g.adj[u][v] {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
}

// HasEdge reports whether u and v interfere.
func (g *Graph) HasEdge(u, v graph.V) bool { return g.adj[u][v] }

// Degree reports the neighbor count of v.
func (g *Graph) Degree(v graph.V) int { return len(g.adj[v]) }

// Neighbors returns the neighbors of v in increasing order.
func (g *Graph) Neighbors(v graph.V) []graph.V {
	ns := make([]graph.V, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		ns = append(ns, w)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Clone deep-copies the reference graph.
func (g *Graph) Clone() *Graph {
	h := &Graph{adj: make([]map[graph.V]bool, len(g.adj)), edges: g.edges}
	for i, m := range g.adj {
		h.adj[i] = make(map[graph.V]bool, len(m))
		for w := range m {
			h.adj[i][w] = true
		}
	}
	return h
}

// Edges returns all edges with u < v, sorted lexicographically.
func (g *Graph) Edges() [][2]graph.V {
	es := make([][2]graph.V, 0, g.edges)
	for u := range g.adj {
		for v := range g.adj[u] {
			if graph.V(u) < v {
				es = append(es, [2]graph.V{graph.V(u), v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Rebuild constructs a fresh bitset-backed graph.Graph carrying src's
// names, precoloring and affinities, but with interference edges inserted
// in map iteration order — randomized by the Go runtime on every call.
// Solvers run on Rebuild(src) must produce results identical to runs on
// src itself; any divergence means a representation- or insertion-order
// dependence has crept into the core.
func (g *Graph) Rebuild(src *graph.Graph) *graph.Graph {
	out := graph.New(src.N())
	for v := 0; v < src.N(); v++ {
		if src.HasName(graph.V(v)) {
			out.SetName(graph.V(v), src.Name(graph.V(v)))
		}
		if c, ok := src.Precolored(graph.V(v)); ok {
			out.SetPrecolored(graph.V(v), c)
		}
	}
	for u := range g.adj {
		for v := range g.adj[u] {
			if graph.V(u) < v {
				out.AddEdge(graph.V(u), v)
			}
		}
	}
	for _, a := range src.Affinities() {
		out.AddAffinity(a.X, a.Y, a.Weight)
	}
	return out
}
