//go:build !race

package graph

// RaceEnabled reports whether the race detector is compiled in. The
// zero-allocation gate tests still exercise the pooled solve path under
// -race (catching pool-reuse races) but skip the exact alloc count,
// which instrumentation inflates.
const RaceEnabled = false
