package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// RenderCSV writes the table as RFC-4180 CSV, with the title and note as
// `#`-prefixed comment lines. Spreadsheet-friendly companion to Render.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunAndRenderCSV runs one experiment and renders its tables as CSV.
func RunAndRenderCSV(w io.Writer, e Experiment, cfg Config) error {
	fmt.Fprintf(w, "# experiment %s: %s\n", e.ID, e.Title)
	tables, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, t := range tables {
		if err := t.RenderCSV(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
