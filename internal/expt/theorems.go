package expt

import (
	"fmt"
	"math/rand"

	"regcoal/internal/chordal"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/mwc"
	"regcoal/internal/reduction"
	"regcoal/internal/sat"
	"regcoal/internal/ssa"
	"regcoal/internal/vcover"
)

func init() {
	Register(Experiment{ID: "T1", Title: "Theorem 1: SSA interference graphs are chordal with ω = Maxlive", Run: runT1})
	Register(Experiment{ID: "P1", Title: "Property 1: k-colorable chordal graphs are greedy-k-colorable (col = ω)", Run: runP1})
	Register(Experiment{ID: "P2", Title: "Property 2: clique lift shifts colorability/chordality/greedy-colorability by p", Run: runP2})
	Register(Experiment{ID: "T2", Title: "Theorem 2 / Figure 1: multiway cut ≡ optimal aggressive coalescing", Run: runT2})
	Register(Experiment{ID: "T3", Title: "Theorem 3 / Figure 2: k-colorability ≡ zero-cost conservative coalescing", Run: runT3})
	Register(Experiment{ID: "T4", Title: "Theorem 4 / Figure 4: 3SAT ≡ coalescing one affinity on a 3-colorable graph", Run: runT4})
	Register(Experiment{ID: "T5", Title: "Theorem 5 / Figure 5: polynomial incremental coalescing on chordal graphs", Run: runT5})
	Register(Experiment{ID: "T6", Title: "Theorem 6 / Figures 6-7: vertex cover ≡ optimal de-coalescing (chordal, k=4)", Run: runT6})
}

func runT1(cfg Config) ([]*Table, error) {
	trials := 200
	if cfg.Quick {
		trials = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "Random strict programs through SSA construction",
		Note:   "Paper claim: every row chordal=yes and ω=Maxlive; pre-SSA graphs need not be chordal.",
		Header: []string{"shape", "programs", "chordal(SSA)", "ω=Maxlive", "non-chordal(pre-SSA)", "avg n", "avg e"},
	}
	shapes := []struct {
		name         string
		vars, blocks int
	}{
		{"small", 5, 4},
		{"medium", 8, 8},
		{"large", 12, 12},
	}
	for _, sh := range shapes {
		chordalOK, omegaOK, preNon := 0, 0, 0
		sumN, sumE := 0, 0
		for i := 0; i < trials; i++ {
			p := ir.DefaultRandomParams()
			p.Vars, p.Blocks = sh.vars, sh.blocks
			fn := ir.Random(rng, p)
			preG, _ := ssa.BuildIntersection(fn)
			if !chordal.IsChordal(preG) {
				preNon++
			}
			ssaF, err := ssa.Build(fn)
			if err != nil {
				return nil, err
			}
			rep, err := ssa.CheckTheorem1(ssaF)
			if err != nil {
				return nil, err
			}
			chordalOK++
			if rep.Omega == rep.Maxlive {
				omegaOK++
			}
			sumN += rep.Vertices
			sumE += rep.Edges
		}
		t.Add(sh.name, trials,
			fmt.Sprintf("%d/%d", chordalOK, trials),
			fmt.Sprintf("%d/%d", omegaOK, trials),
			fmt.Sprintf("%d/%d", preNon, trials),
			sumN/trials, sumE/trials)
	}
	return []*Table{t}, nil
}

func runP1(cfg Config) ([]*Table, error) {
	trials := 300
	if cfg.Quick {
		trials = 40
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "col(G) = ω(G) on random chordal graphs; strict inequality appears off-class",
		Header: []string{"class", "graphs", "col=ω", "max col-χ gap"},
	}
	for _, class := range []string{"chordal", "interval", "er(non-chordal)"} {
		equal, maxGap := 0, 0
		for i := 0; i < trials; i++ {
			var g *graph.Graph
			switch class {
			case "chordal":
				g = graph.RandomChordal(rng, 18, 10, 4)
			case "interval":
				g = graph.RandomInterval(rng, 18, 25, 5)
			default:
				g = graph.RandomER(rng, 10, 0.35)
			}
			col := greedy.ColoringNumber(g)
			var omega int
			if peo, ok := chordal.PEO(g); ok {
				omega = chordal.Omega(g, peo)
				if col == omega {
					equal++
				}
			} else {
				// χ for the off-class row (exponential: keep n small).
				omega = exact.ChromaticNumber(g)
				if col == omega {
					equal++
				}
			}
			if gap := col - omega; gap > maxGap {
				maxGap = gap
			}
		}
		t.Add(class, trials, fmt.Sprintf("%d/%d", equal, trials), maxGap)
	}
	return []*Table{t}, nil
}

func runP2(cfg Config) ([]*Table, error) {
	trials := 200
	if cfg.Quick {
		trials = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "Clique lift G -> G' with p new universal vertices",
		Note:   "Paper claim: G k-colorable ⟺ G' (k+p)-colorable; chordality preserved both ways; greedy likewise.",
		Header: []string{"p", "graphs", "colorable⟺", "chordal⟺", "greedy⟺"},
	}
	for _, p := range []int{1, 2, 3} {
		colOK, chOK, grOK := 0, 0, 0
		for i := 0; i < trials; i++ {
			g := graph.RandomER(rng, 9, 0.35)
			lifted, _ := g.CliqueLift(p)
			k := 3
			_, a := exact.KColorable(g, k)
			_, b := exact.KColorable(lifted, k+p)
			if a == b {
				colOK++
			}
			if chordal.IsChordal(g) == chordal.IsChordal(lifted) {
				chOK++
			}
			if greedy.IsGreedyKColorable(g, k) == greedy.IsGreedyKColorable(lifted, k+p) {
				grOK++
			}
		}
		t.Add(p, trials,
			fmt.Sprintf("%d/%d", colOK, trials),
			fmt.Sprintf("%d/%d", chOK, trials),
			fmt.Sprintf("%d/%d", grOK, trials))
	}
	return []*Table{t}, nil
}

func runT2(cfg Config) ([]*Table, error) {
	trials := 40
	if cfg.Quick {
		trials = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "Multiway cut optimum vs optimal aggressive coalescing (3 terminals)",
		Note:   "Paper claim (Thm 2): the optima coincide on every instance.",
		Header: []string{"n", "instances", "equivalent", "avg cut", "avg moves kept"},
	}
	for _, n := range []int{5, 6, 7} {
		eq, sumCut, sumKept := 0, 0, int64(0)
		for i := 0; i < trials; i++ {
			in := mwc.Random(rng, n, 0.4, 3)
			cut, _ := in.SolveExact()
			red := reduction.FromMultiwayCut(in)
			res := exact.OptimalAggressive(red.G, exact.MinimizeCount)
			if int64(cut) == res.Cost {
				eq++
			}
			sumCut += cut
			sumKept += int64(red.G.NumAffinities()) - res.Cost
		}
		t.Add(n, trials, fmt.Sprintf("%d/%d", eq, trials),
			fmt.Sprintf("%.2f", float64(sumCut)/float64(trials)),
			fmt.Sprintf("%.2f", float64(sumKept)/float64(trials)))
	}
	return []*Table{t}, nil
}

func runT3(cfg Config) ([]*Table, error) {
	trials := 30
	if cfg.Quick {
		trials = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "k-colorability of G vs zero-cost conservative coalescing of the Figure 2 instance",
		Note:   "Paper claim (Thm 3): equivalent on every instance; instance graphs are greedy-2-colorable.",
		Header: []string{"k", "instances", "equivalent", "sources k-colorable", "instance greedy-2-colorable"},
	}
	for _, k := range []int{2, 3} {
		eq, colorable, g2 := 0, 0, 0
		for i := 0; i < trials; i++ {
			src := graph.RandomER(rng, 7, 0.45)
			if err := reduction.VerifyColorability(src, k); err == nil {
				eq++
			}
			if _, ok := exact.KColorable(src, k); ok {
				colorable++
			}
			red := reduction.FromColorability(src, k)
			if greedy.IsGreedyKColorable(red.G, 2) {
				g2++
			}
		}
		t.Add(k, trials, fmt.Sprintf("%d/%d", eq, trials),
			fmt.Sprintf("%d/%d", colorable, trials),
			fmt.Sprintf("%d/%d", g2, trials))
	}
	return []*Table{t}, nil
}

func runT4(cfg Config) ([]*Table, error) {
	trials := 20
	if cfg.Quick {
		trials = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title: "3SAT satisfiability vs coalescibility of (x0, F) on the Figure 4 graph",
		Note: "Paper claim (Thm 4): equivalent; the instance graph is always 3-colorable.\n" +
			"(Formula sizes stay small: the verification side runs an exponential exact coloring.)",
		Header: []string{"clauses", "instances", "equivalent", "satisfiable", "avg |V| of instance"},
	}
	for _, nc := range []int{3, 5, 7} {
		eq, sats, sumV := 0, 0, 0
		for i := 0; i < trials; i++ {
			f := sat.Random3SAT(rng, 4, nc)
			if err := reduction.VerifySAT(f); err == nil {
				eq++
			}
			if _, ok := f.Solve(); ok {
				sats++
			}
			ii, err := reduction.FromSAT(f)
			if err != nil {
				return nil, err
			}
			sumV += ii.G.N()
		}
		t.Add(nc, trials, fmt.Sprintf("%d/%d", eq, trials),
			fmt.Sprintf("%d/%d", sats, trials), sumV/trials)
	}
	// Deterministic UNSAT fixture (all eight sign patterns over three
	// variables), so the table exercises the "affinity NOT coalescible"
	// direction explicitly.
	unsat := &sat.Formula{NumVars: 3}
	for mask := 0; mask < 8; mask++ {
		c := sat.Clause{}
		for v := 0; v < 3; v++ {
			l := sat.Lit(v + 1)
			if mask&(1<<v) != 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		unsat.Clauses = append(unsat.Clauses, c)
	}
	eq := 0
	if err := reduction.VerifySAT(unsat); err == nil {
		eq = 1
	}
	ii, err := reduction.FromSAT(unsat)
	if err != nil {
		return nil, err
	}
	t.Add("8 (UNSAT fixture)", 1, fmt.Sprintf("%d/1", eq), "0/1", ii.G.N())
	return []*Table{t}, nil
}

func runT5(cfg Config) ([]*Table, error) {
	trials := 150
	if cfg.Quick {
		trials = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "Chordal incremental coalescing: interval-covering decision vs exact coloring-with-identification",
		Note:   "Paper claim (Thm 5): the polynomial decision is exact on chordal graphs (padding generalized from ω to k).",
		Header: []string{"class", "k", "queries", "agree", "yes-rate", "constructive colorings proper"},
	}
	classes := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"chordal", func() *graph.Graph { return graph.RandomChordal(rng, 12, 8, 3) }},
		{"interval", func() *graph.Graph { return graph.RandomInterval(rng, 12, 15, 4) }},
	}
	for _, cl := range classes {
		for _, extra := range []int{0, 1} {
			agree, yes, proper, total := 0, 0, 0, 0
			for i := 0; i < trials; i++ {
				g := cl.gen()
				peo, ok := chordal.PEO(g)
				if !ok {
					continue
				}
				k := chordal.Omega(g, peo) + extra
				x := graph.V(rng.Intn(g.N()))
				y := graph.V(rng.Intn(g.N()))
				if x == y {
					continue
				}
				total++
				dec, err := coalesceChordal(g, x, y, k)
				if err != nil {
					return nil, err
				}
				_, want := exact.KColorableIdentified(g, x, y, k)
				if dec == want {
					agree++
				}
				if dec {
					yes++
					if col, ok2, err := coalesceChordalColoring(g, x, y, k); err == nil && ok2 && col.Proper(g) && col[x] == col[y] {
						proper++
					}
				}
			}
			kLabel := "ω"
			if extra == 1 {
				kLabel = "ω+1"
			}
			t.Add(cl.name, kLabel, total, fmt.Sprintf("%d/%d", agree, total),
				pct(int64(yes), int64(total)), fmt.Sprintf("%d/%d", proper, yes))
		}
	}
	return []*Table{t}, nil
}

func runT6(cfg Config) ([]*Table, error) {
	trials := 20
	if cfg.Quick {
		trials = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "Min vertex cover vs min heart de-coalescings on the Theorem 6 instance",
		Note:   "Paper claim (Thm 6): equal; instance chordal and greedy-4-colorable; all moves aggressively coalescible.",
		Header: []string{"src n", "instances", "equivalent", "avg cover", "avg |V(H')|"},
	}
	for _, n := range []int{3, 4, 5} {
		eq, sumCover, sumV := 0, 0, 0
		for i := 0; i < trials; i++ {
			src := vcover.RandomMaxDeg3(rng, n, n)
			if err := reduction.VerifyVertexCover(src, false); err == nil {
				eq++
			}
			sumCover += len(vcover.SolveExact(src))
			oi, err := reduction.FromVertexCover(src)
			if err != nil {
				return nil, err
			}
			sumV += oi.G.N()
		}
		t.Add(n, trials, fmt.Sprintf("%d/%d", eq, trials),
			fmt.Sprintf("%.2f", float64(sumCover)/float64(trials)), sumV/trials)
	}
	return []*Table{t}, nil
}
