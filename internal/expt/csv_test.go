package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderCSV(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "line1\nline2",
		Header: []string{"a", "b"},
	}
	tab.Add("x,with comma", 2)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# demo", "# line1", "# line2", "a,b", `"x,with comma",2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestRunAndRenderCSV(t *testing.T) {
	e, _ := Lookup("F3")
	var buf bytes.Buffer
	if err := RunAndRenderCSV(&buf, e, Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# experiment F3") {
		t.Fatal("CSV header missing")
	}
}
