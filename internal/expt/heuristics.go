package expt

import (
	"fmt"
	"math/rand"

	"regcoal/internal/challenge"
	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/regalloc"
	"regcoal/internal/ssa"
)

func init() {
	Register(Experiment{ID: "F3", Title: "Figure 3: local conservative rules are not enough", Run: runF3})
	Register(Experiment{ID: "CH", Title: "Coalescing challenge: strategy comparison on SSA-derived and synthetic instances", Run: runCH})
	Register(Experiment{ID: "IRC", Title: "End-to-end Chaitin-style allocation: spills and moves by coalescing mode", Run: runIRC})
	Register(Experiment{ID: "ABL", Title: "Ablations: George pairing, brute force test, extended George, de-coalescing order", Run: runABL})
}

// coalesceChordal adapts the Theorem 5 decision for the tables.
func coalesceChordal(g *graph.Graph, x, y graph.V, k int) (bool, error) {
	dec, err := coalesce.ChordalIncremental(g, x, y, k)
	if err != nil {
		return false, err
	}
	return dec.OK, nil
}

func coalesceChordalColoring(g *graph.Graph, x, y graph.V, k int) (graph.Coloring, bool, error) {
	return coalesce.ChordalIncrementalColoring(g, x, y, k)
}

func runF3(cfg Config) ([]*Table, error) {
	permTable := &Table{
		Title:  "Permutation gadget (boosted): per-move verdicts with k = 2(p-1)",
		Note:   "Paper claim: Briggs and George reject every move; coalescing all p moves at once is safe.",
		Header: []string{"p", "k", "briggs accepts", "george accepts", "brute(single) accepts", "brute(set) safe"},
	}
	sizes := []int{3, 4, 5}
	if cfg.Quick {
		sizes = []int{3, 4}
	}
	for _, p := range sizes {
		g, k, moves := coalesce.Fig3Permutation(p)
		briggs, george, brute := 0, 0, 0
		empty := graph.NewPartition(g.N())
		for _, a := range moves {
			if coalesce.BriggsOK(g, a.X, a.Y, k) {
				briggs++
			}
			if coalesce.GeorgeOK(g, a.X, a.Y, k) || coalesce.GeorgeOK(g, a.Y, a.X, k) {
				george++
			}
			if coalesce.BruteOK(g, empty, a.X, a.Y, k) {
				brute++
			}
		}
		setOK := coalesce.BruteSetOK(g, empty, moves, k)
		permTable.Add(p, k,
			fmt.Sprintf("%d/%d", briggs, len(moves)),
			fmt.Sprintf("%d/%d", george, len(moves)),
			fmt.Sprintf("%d/%d", brute, len(moves)),
			fmt.Sprintf("%v", setOK))
	}

	triTable := &Table{
		Title:  "Triangle gadget: incremental trap",
		Note:   "Paper claim: coalescing (a,b) and (a,c) together is safe; either alone breaks greedy-3-colorability.",
		Header: []string{"move", "single safe (exact per-move test)", "both together safe"},
	}
	g, k, moves := coalesce.Fig3Triangle()
	empty := graph.NewPartition(g.N())
	both := coalesce.BruteSetOK(g, empty, moves, k)
	for _, a := range moves {
		triTable.Add(
			fmt.Sprintf("(%s,%s)", g.Name(a.X), g.Name(a.Y)),
			fmt.Sprintf("%v", coalesce.BruteOK(g, empty, a.X, a.Y, k)),
			fmt.Sprintf("%v", both))
	}
	escape := &Table{
		Title:  "Escaping the trap with transitivity sets (§4 remark)",
		Header: []string{"driver", "moves coalesced on the triangle gadget"},
	}
	escape.Add("single-move brute", len(coalesce.Conservative(g, k, coalesce.TestBrute).Coalesced))
	escape.Add("set driver (pairs)", len(coalesce.ConservativeSets(g, k, 2).Coalesced))
	return []*Table{permTable, triTable, escape}, nil
}

// strategyRow runs every strategy on one instance and returns coalesced
// weights.
type strategyOutcome struct {
	name      string
	coalesced int64
	colorable bool
}

func runStrategies(g *graph.Graph, k int) []strategyOutcome {
	outs := []strategyOutcome{}
	add := func(name string, res *coalesce.Result) {
		outs = append(outs, strategyOutcome{name: name, coalesced: res.CoalescedWeight, colorable: res.Colorable})
	}
	add("aggressive", coalesce.Aggressive(g, k))
	add("briggs", coalesce.Conservative(g, k, coalesce.TestBriggs))
	add("george", coalesce.Conservative(g, k, coalesce.TestGeorge))
	add("briggs+george", coalesce.Conservative(g, k, coalesce.TestBriggsGeorge))
	add("ext-george", coalesce.Conservative(g, k, coalesce.TestExtendedGeorge))
	add("brute", coalesce.Conservative(g, k, coalesce.TestBrute))
	add("optimistic", coalesce.Optimistic(g, k))
	return outs
}

func runCH(cfg Config) ([]*Table, error) {
	count := 30
	if cfg.Quick {
		count = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := 6
	corpus, err := challenge.Corpus(rng, count, k)
	if err != nil {
		return nil, err
	}
	names := []string{"aggressive", "briggs", "george", "briggs+george", "ext-george", "brute", "optimistic", "irc", "b+g & biased select"}
	totalWeight := int64(0)
	sums := map[string]int64{}
	colorable := map[string]int{}
	for _, inst := range corpus {
		g := inst.File.G
		totalWeight += g.TotalAffinityWeight()
		for _, out := range runStrategies(g, k) {
			sums[out.name] += out.coalesced
			if out.colorable {
				colorable[out.name]++
			}
		}
		// The worklist IRC allocator, measured by its final coloring.
		if res, err := regalloc.AllocateIRC(g, k); err == nil {
			sums["irc"] += res.CoalescedWeight
			if len(res.Spilled) == 0 {
				colorable["irc"]++
			}
		}
		// Biased coloring on top of local-rule coalescing (§1 mentions
		// biased coloring as the cheap way to catch leftovers): moves
		// whose endpoints happen to get one color also disappear.
		cons := coalesce.Conservative(g, k, coalesce.TestBriggsGeorge)
		if q, old2new, err := graph.Quotient(g, cons.P); err == nil {
			if qcol, ok := greedy.ColorBiased(q, k); ok {
				lifted := qcol.Lift(old2new)
				_, w := lifted.CoalescedMoves(g)
				sums["b+g & biased select"] += w
				colorable["b+g & biased select"]++
			} else {
				sums["b+g & biased select"] += cons.CoalescedWeight
			}
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Move weight coalesced over a %d-instance corpus (k=%d, total movable weight %d)", len(corpus), k, totalWeight),
		Note: "Paper claims reproduced: aggressive coalesces the most weight but may break colorability;\n" +
			"brute-force conservative ≥ Briggs/George local rules; optimistic competes with brute while staying colorable.",
		Header: []string{"strategy", "weight coalesced", "share of movable", "colorable instances"},
	}
	for _, n := range names {
		t.Add(n, sums[n], pct(sums[n], totalWeight),
			fmt.Sprintf("%d/%d", colorable[n], len(corpus)))
	}
	return []*Table{t}, nil
}

func runIRC(cfg Config) ([]*Table, error) {
	trials := 25
	if cfg.Quick {
		trials = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "End-to-end allocation of random lowered programs",
		Note:   "Moves removed/kept and spilled registers by coalescing mode, k sweep.",
		Header: []string{"k", "mode", "programs", "moves removed", "moves kept", "spilled regs", "avg rounds"},
	}
	modes := []regalloc.Mode{regalloc.ModeNone, regalloc.ModeConservative, regalloc.ModeBrute, regalloc.ModeOptimistic, regalloc.ModeAggressive}
	for _, k := range []int{4, 6, 8} {
		// Pre-generate the same programs for every mode.
		var lows []*ir.Func
		for i := 0; i < trials; i++ {
			p := ir.DefaultRandomParams()
			p.Vars = 6
			p.Blocks = 6
			fn := ir.Random(rng, p)
			_, low, err := ssa.Pipeline(fn)
			if err != nil {
				return nil, err
			}
			lows = append(lows, low)
		}
		for _, mode := range modes {
			removed, kept, spilled, rounds, okCount := 0, 0, 0, 0, 0
			for _, low := range lows {
				res, err := regalloc.Function(low, k, mode)
				if err != nil {
					continue // k too small for this instance+mode
				}
				okCount++
				removed += res.MovesRemoved
				kept += res.MovesKept
				spilled += res.SpilledRegs
				rounds += res.Rounds
			}
			if okCount == 0 {
				t.Add(k, mode.String(), 0, "-", "-", "-", "-")
				continue
			}
			t.Add(k, mode.String(), okCount, removed, kept, spilled,
				fmt.Sprintf("%.2f", float64(rounds)/float64(okCount)))
		}
	}
	return []*Table{t}, nil
}

func runABL(cfg Config) ([]*Table, error) {
	count := 25
	if cfg.Quick {
		count = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := 6
	corpus, err := challenge.Corpus(rng, count, k)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablations over the challenge corpus (coalesced move weight)",
		Header: []string{"ablation", "variant", "weight coalesced"},
	}
	var briggsOnly, withGeorge, withExt, brute int64
	var optiWitness, optiGlobal int64
	for _, inst := range corpus {
		g := inst.File.G
		briggsOnly += coalesce.Conservative(g, k, coalesce.TestBriggs).CoalescedWeight
		withGeorge += coalesce.Conservative(g, k, coalesce.TestBriggsGeorge).CoalescedWeight
		withExt += coalesce.Conservative(g, k, coalesce.TestExtendedGeorge).CoalescedWeight
		brute += coalesce.Conservative(g, k, coalesce.TestBrute).CoalescedWeight
		optiWitness += coalesce.OptimisticOrdered(g, k, coalesce.DecoalesceWitnessMinWeight).CoalescedWeight
		optiGlobal += coalesce.OptimisticOrdered(g, k, coalesce.DecoalesceGlobalMinWeight).CoalescedWeight
	}
	t.Add("george pairing (§4: use George for any pair)", "briggs only", briggsOnly)
	t.Add("", "briggs+george", withGeorge)
	t.Add("ext-george (§4 extension)", "ext-george", withExt)
	t.Add("brute-force test (§4: merge and check)", "brute", brute)
	t.Add("de-coalescing order (§5)", "witness-min-weight", optiWitness)
	t.Add("", "global-min-weight", optiGlobal)

	// Vegdahl node merging (§1: merging non-move-related vertices can make
	// a graph colorable): rescue rate on stuck random instances.
	rngV := rand.New(rand.NewSource(cfg.Seed + 1))
	attempts, rescued := 0, 0
	trials := 300
	if cfg.Quick {
		trials = 60
	}
	for i := 0; i < trials; i++ {
		g := graph.RandomER(rngV, 10, 0.3)
		k2 := greedy.ColoringNumber(g) - 1
		if k2 < 2 {
			continue
		}
		attempts++
		if _, ok := coalesce.MergeToColor(g, k2); ok {
			rescued++
		}
	}
	t2 := &Table{
		Title:  "Vegdahl node merging (§1): graphs not greedy-k-colorable rescued by merging",
		Header: []string{"stuck instances", "rescued by merging", "rate"},
	}
	t2.Add(attempts, rescued, pct(int64(rescued), int64(attempts)))
	return []*Table{t, t2}, nil
}
