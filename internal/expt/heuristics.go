package expt

import (
	"context"
	"fmt"
	"math/rand"

	"regcoal/internal/coalesce"
	"regcoal/internal/corpus"
	"regcoal/internal/engine"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/regalloc"
	"regcoal/internal/ssa"
)

func init() {
	Register(Experiment{ID: "F3", Title: "Figure 3: local conservative rules are not enough", Run: runF3})
	Register(Experiment{ID: "CH", Title: "Coalescing challenge: strategy comparison on SSA-derived and synthetic instances", Run: runCH})
	Register(Experiment{ID: "IRC", Title: "End-to-end Chaitin-style allocation: spills and moves by coalescing mode", Run: runIRC})
	Register(Experiment{ID: "ABL", Title: "Ablations: George pairing, brute force test, extended George, de-coalescing order", Run: runABL})
}

// coalesceChordal adapts the Theorem 5 decision for the tables.
func coalesceChordal(g *graph.Graph, x, y graph.V, k int) (bool, error) {
	dec, err := coalesce.ChordalIncremental(g, x, y, k)
	if err != nil {
		return false, err
	}
	return dec.OK, nil
}

func coalesceChordalColoring(g *graph.Graph, x, y graph.V, k int) (graph.Coloring, bool, error) {
	return coalesce.ChordalIncrementalColoring(g, x, y, k)
}

func runF3(cfg Config) ([]*Table, error) {
	permTable := &Table{
		Title:  "Permutation gadget (boosted): per-move verdicts with k = 2(p-1)",
		Note:   "Paper claim: Briggs and George reject every move; coalescing all p moves at once is safe.",
		Header: []string{"p", "k", "briggs accepts", "george accepts", "brute(single) accepts", "brute(set) safe"},
	}
	sizes := []int{3, 4, 5}
	if cfg.Quick {
		sizes = []int{3, 4}
	}
	for _, p := range sizes {
		g, k, moves := coalesce.Fig3Permutation(p)
		briggs, george, brute := 0, 0, 0
		empty := graph.NewPartition(g.N())
		for _, a := range moves {
			if coalesce.BriggsOK(g, a.X, a.Y, k) {
				briggs++
			}
			if coalesce.GeorgeOK(g, a.X, a.Y, k) || coalesce.GeorgeOK(g, a.Y, a.X, k) {
				george++
			}
			if coalesce.BruteOK(g, empty, a.X, a.Y, k) {
				brute++
			}
		}
		setOK := coalesce.BruteSetOK(g, empty, moves, k)
		permTable.Add(p, k,
			fmt.Sprintf("%d/%d", briggs, len(moves)),
			fmt.Sprintf("%d/%d", george, len(moves)),
			fmt.Sprintf("%d/%d", brute, len(moves)),
			fmt.Sprintf("%v", setOK))
	}

	triTable := &Table{
		Title:  "Triangle gadget: incremental trap",
		Note:   "Paper claim: coalescing (a,b) and (a,c) together is safe; either alone breaks greedy-3-colorability.",
		Header: []string{"move", "single safe (exact per-move test)", "both together safe"},
	}
	g, k, moves := coalesce.Fig3Triangle()
	empty := graph.NewPartition(g.N())
	both := coalesce.BruteSetOK(g, empty, moves, k)
	for _, a := range moves {
		triTable.Add(
			fmt.Sprintf("(%s,%s)", g.Name(a.X), g.Name(a.Y)),
			fmt.Sprintf("%v", coalesce.BruteOK(g, empty, a.X, a.Y, k)),
			fmt.Sprintf("%v", both))
	}
	escape := &Table{
		Title:  "Escaping the trap with transitivity sets (§4 remark)",
		Header: []string{"driver", "moves coalesced on the triangle gadget"},
	}
	escape.Add("single-move brute", len(coalesce.Conservative(g, k, coalesce.TestBrute).Coalesced))
	escape.Add("set driver (pairs)", len(coalesce.ConservativeSets(g, k, 2).Coalesced))
	return []*Table{permTable, triTable, escape}, nil
}

// chCorpus builds the challenge corpus for the engine-backed experiments:
// the fixed-k (Appel–George style) families.
const chFamilies = "ssa,ssa-reduced,er-sparse,er-dense"

func chCorpus(cfg Config) ([]*corpus.Instance, error) {
	fams, err := corpus.Select(chFamilies)
	if err != nil {
		return nil, err
	}
	return corpus.BuildAll(fams, corpus.Params{Seed: cfg.Seed, Quick: cfg.Quick})
}

// engineConfig adapts an experiment Config for the execution engine.
// Timing stays off so experiment tables are identical at any parallelism.
func engineConfig(cfg Config) engine.Config {
	return engine.Config{Parallel: cfg.Parallel}
}

// biasedRunner is biased coloring on top of local-rule coalescing (§1
// mentions biased coloring as the cheap way to catch leftovers): moves
// whose endpoints happen to get one color also disappear.
func biasedRunner() engine.Runner {
	return engine.Runner{
		Name: "b+g & biased select",
		Run: func(_ context.Context, f *graph.File) (engine.RunStats, error) {
			g, k := f.G, f.K
			cons := coalesce.Conservative(g, k, coalesce.TestBriggsGeorge)
			stats := engine.RunStats{
				CoalescedWeight: cons.CoalescedWeight,
				CoalescedMoves:  len(cons.Coalesced),
				ResidualWeight:  cons.RemainingWeight,
				GreedyAfter:     cons.Colorable,
				Rounds:          cons.Rounds,
			}
			if q, old2new, err := graph.Quotient(g, cons.P); err == nil {
				if qcol, ok := greedy.ColorBiased(q, k); ok {
					lifted := qcol.Lift(old2new)
					count, w := lifted.CoalescedMoves(g)
					stats.CoalescedWeight = w
					stats.CoalescedMoves = count
					stats.ResidualWeight = g.TotalAffinityWeight() - w
					stats.GreedyAfter = true
				}
			}
			return stats, nil
		},
	}
}

// runCH fans the full strategy matrix over the challenge corpus on the
// execution engine (one record per instance × strategy, rolled up here),
// replacing the old one-instance-at-a-time loop.
func runCH(cfg Config) ([]*Table, error) {
	insts, err := chCorpus(cfg)
	if err != nil {
		return nil, err
	}
	runners := append(engine.StrategyRunners(), engine.IRCRunner(), biasedRunner())
	recs, err := engine.Run(context.Background(), engineConfig(cfg), insts, runners, nil)
	if err != nil {
		return nil, err
	}
	// Roll up across families, preserving matrix order.
	type sums struct {
		weight    int64
		colorable int
	}
	perStrategy := map[string]*sums{}
	var totalWeight int64
	for _, r := range recs {
		s, ok := perStrategy[r.Strategy]
		if !ok {
			s = &sums{}
			perStrategy[r.Strategy] = s
		}
		s.weight += r.CoalescedWeight
		if r.GreedyAfter {
			s.colorable++
		}
		if r.Strategy == runners[0].Name {
			totalWeight += r.MoveWeight
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Move weight coalesced over a %d-instance corpus (families %s, total movable weight %d)",
			len(insts), chFamilies, totalWeight),
		Note: "Paper claims reproduced: aggressive coalesces the most weight but may break colorability;\n" +
			"brute-force conservative ≥ Briggs/George local rules; optimistic competes with brute while staying colorable.",
		Header: []string{"strategy", "weight coalesced", "share of movable", "colorable instances"},
	}
	for _, r := range runners {
		s := perStrategy[r.Name]
		t.Add(r.Name, s.weight, pct(s.weight, totalWeight),
			fmt.Sprintf("%d/%d", s.colorable, len(insts)))
	}
	return []*Table{t}, nil
}

func runIRC(cfg Config) ([]*Table, error) {
	trials := 25
	if cfg.Quick {
		trials = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "End-to-end allocation of random lowered programs",
		Note:   "Moves removed/kept and spilled registers by coalescing mode, k sweep.",
		Header: []string{"k", "mode", "programs", "moves removed", "moves kept", "spilled regs", "avg rounds"},
	}
	modes := []regalloc.Mode{regalloc.ModeNone, regalloc.ModeConservative, regalloc.ModeBrute, regalloc.ModeOptimistic, regalloc.ModeAggressive}
	for _, k := range []int{4, 6, 8} {
		// Pre-generate the same programs for every mode.
		var lows []*ir.Func
		for i := 0; i < trials; i++ {
			p := ir.DefaultRandomParams()
			p.Vars = 6
			p.Blocks = 6
			fn := ir.Random(rng, p)
			_, low, err := ssa.Pipeline(fn)
			if err != nil {
				return nil, err
			}
			lows = append(lows, low)
		}
		for _, mode := range modes {
			removed, kept, spilled, rounds, okCount := 0, 0, 0, 0, 0
			for _, low := range lows {
				res, err := regalloc.Function(low, k, mode)
				if err != nil {
					continue // k too small for this instance+mode
				}
				okCount++
				removed += res.MovesRemoved
				kept += res.MovesKept
				spilled += res.SpilledRegs
				rounds += res.Rounds
			}
			if okCount == 0 {
				t.Add(k, mode.String(), 0, "-", "-", "-", "-")
				continue
			}
			t.Add(k, mode.String(), okCount, removed, kept, spilled,
				fmt.Sprintf("%.2f", float64(rounds)/float64(okCount)))
		}
	}
	return []*Table{t}, nil
}

func runABL(cfg Config) ([]*Table, error) {
	insts, err := chCorpus(cfg)
	if err != nil {
		return nil, err
	}
	// The ablation columns ride the engine as custom runners alongside the
	// standard conservative ones.
	ordered := func(name string, order coalesce.DecoalesceOrder) engine.Runner {
		return engine.Runner{
			Name: name,
			Run: func(_ context.Context, f *graph.File) (engine.RunStats, error) {
				res := coalesce.OptimisticOrdered(f.G, f.K, order)
				return engine.RunStats{
					CoalescedWeight: res.CoalescedWeight,
					CoalescedMoves:  len(res.Coalesced),
					ResidualWeight:  res.RemainingWeight,
					GreedyAfter:     res.Colorable,
					Rounds:          res.Rounds,
				}, nil
			},
		}
	}
	var runners []engine.Runner
	for _, r := range engine.StrategyRunners() {
		switch r.Name {
		case "briggs", "briggs+george", "ext-george", "brute":
			runners = append(runners, r)
		}
	}
	runners = append(runners,
		ordered("opti-witness", coalesce.DecoalesceWitnessMinWeight),
		ordered("opti-global", coalesce.DecoalesceGlobalMinWeight))
	recs, err := engine.Run(context.Background(), engineConfig(cfg), insts, runners, nil)
	if err != nil {
		return nil, err
	}
	weight := map[string]int64{}
	for _, r := range recs {
		weight[r.Strategy] += r.CoalescedWeight
	}
	t := &Table{
		Title:  "Ablations over the challenge corpus (coalesced move weight)",
		Header: []string{"ablation", "variant", "weight coalesced"},
	}
	t.Add("george pairing (§4: use George for any pair)", "briggs only", weight["briggs"])
	t.Add("", "briggs+george", weight["briggs+george"])
	t.Add("ext-george (§4 extension)", "ext-george", weight["ext-george"])
	t.Add("brute-force test (§4: merge and check)", "brute", weight["brute"])
	t.Add("de-coalescing order (§5)", "witness-min-weight", weight["opti-witness"])
	t.Add("", "global-min-weight", weight["opti-global"])

	// Vegdahl node merging (§1: merging non-move-related vertices can make
	// a graph colorable): rescue rate on stuck random instances.
	rngV := rand.New(rand.NewSource(cfg.Seed + 1))
	attempts, rescued := 0, 0
	trials := 300
	if cfg.Quick {
		trials = 60
	}
	for i := 0; i < trials; i++ {
		g := graph.RandomER(rngV, 10, 0.3)
		k2 := greedy.ColoringNumber(g) - 1
		if k2 < 2 {
			continue
		}
		attempts++
		if _, ok := coalesce.MergeToColor(g, k2); ok {
			rescued++
		}
	}
	t2 := &Table{
		Title:  "Vegdahl node merging (§1): graphs not greedy-k-colorable rescued by merging",
		Header: []string{"stuck instances", "rescued by merging", "rate"},
	}
	t2.Add(attempts, rescued, pct(int64(rescued), int64(attempts)))
	return []*Table{t, t2}, nil
}
