// Package expt implements the experiment harness: every theorem and figure
// of the paper maps to a registered experiment that regenerates its
// machine-checked table (see DESIGN.md §3 for the index). The same runners
// back cmd/experiments and the root-level benchmarks.
package expt

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// Quick shrinks sweeps to test/bench-friendly sizes.
	Quick bool
	// Parallel is the worker count for engine-backed experiments
	// (0 = GOMAXPROCS). Results are identical for every value.
	Parallel int
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered experiment.
type Experiment struct {
	// ID is the DESIGN.md experiment id, e.g. "T1" or "F3".
	ID string
	// Title is a one-line description.
	Title string
	// Run produces the result tables. It must be deterministic for a given
	// Config.
	Run func(cfg Config) ([]*Table, error)
}

var registry = map[string]Experiment{}

// Register adds an experiment; duplicate ids panic (registration happens in
// package init functions).
func Register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAndRender runs one experiment and renders its tables.
func RunAndRender(w io.Writer, e Experiment, cfg Config) error {
	fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Title)
	tables, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, t := range tables {
		t.Render(w)
	}
	return nil
}

// ratio formats a/b defensively.
func ratio(a, b int64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

// pct formats a percentage.
func pct(part, total int64) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}
