package expt

import (
	"fmt"
	"math/rand"

	"regcoal/internal/chordal"
	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
)

func init() {
	Register(Experiment{
		ID:    "T5G",
		Title: "§4 open problem: Theorem 5 decisions vs staying greedy-k-colorable",
		Run:   runT5G,
	})
}

// runT5G measures the gap the paper's §4 discussion leaves open. On a
// chordal graph, Theorem 5 decides whether an affinity CAN be coalesced in
// some k-coloring; but the merge that realizes it may leave the class of
// chordal graphs, and the paper asks (open problem) for a test that stays
// within greedy-k-colorable graphs. The brute-force merge-and-check test
// is exactly the "stay greedy-k-colorable" incremental step. The table
// counts, per affinity on random chordal instances:
//
//   - both yes: the merge alone keeps greedy-k-colorability (easy case);
//   - Thm5 yes / brute no: coalescing is possible in principle but the
//     single merge breaks greedy-k-colorability — the cases where the
//     paper suggests artificial extra merges (its Theorem 5 proof merges a
//     whole interval class) and where the open problem bites;
//   - both no: genuinely impossible.
//
// Theorem 5 yes with brute yes must never be contradicted the other way
// (brute yes ⇒ Thm5 yes: a greedy-k-colorable merge induces a k-coloring
// identifying the endpoints); the "consistent" column checks that.
func runT5G(cfg Config) ([]*Table, error) {
	trials := 250
	if cfg.Quick {
		trials = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		Title:  "Per-affinity verdicts on random chordal graphs (k = ω)",
		Header: []string{"class", "queries", "both yes", "thm5 yes / brute no", "both no", "consistent"},
	}
	classes := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"chordal", func() *graph.Graph { return graph.RandomChordal(rng, 16, 10, 4) }},
		{"interval", func() *graph.Graph { return graph.RandomInterval(rng, 16, 20, 5) }},
	}
	for _, cl := range classes {
		bothYes, gapCount, bothNo, consistent, total := 0, 0, 0, 0, 0
		for i := 0; i < trials; i++ {
			g := cl.gen()
			peo, ok := chordal.PEO(g)
			if !ok {
				continue
			}
			k := chordal.Omega(g, peo)
			x := graph.V(rng.Intn(g.N()))
			y := graph.V(rng.Intn(g.N()))
			if x == y || g.HasEdge(x, y) {
				continue
			}
			total++
			dec, err := coalesce.ChordalIncremental(g, x, y, k)
			if err != nil {
				return nil, err
			}
			brute := coalesce.IncrementalOne(g, x, y, k)
			switch {
			case dec.OK && brute:
				bothYes++
			case dec.OK && !brute:
				gapCount++
			case !dec.OK && !brute:
				bothNo++
			}
			// brute yes ⇒ thm5 yes.
			if !brute || dec.OK {
				consistent++
			}
		}
		t.Add(cl.name, total, bothYes, gapCount, bothNo,
			fmt.Sprintf("%d/%d", consistent, total))
	}
	// The frozen witness that the gap is nonempty.
	gapG, gapK, gx, gy := coalesce.Fig5Gap()
	gapDec, err := coalesce.ChordalIncremental(gapG, gx, gy, gapK)
	if err != nil {
		return nil, err
	}
	gapBrute := coalesce.IncrementalOne(gapG, gx, gy, gapK)
	wt := &Table{
		Title: "Frozen gap witness (coalesce.Fig5Gap): Thm5 yes, bare merge breaks greedy-colorability",
		Note: "The class merge of the Theorem 5 proof is necessary in general — the\n" +
			"paper's §4 caveat about artificial merges, exhibited on 8 vertices.",
		Header: []string{"thm5 decision", "bare {x,y} merge stays greedy", "gap"},
	}
	wt.Add(fmt.Sprintf("%v", gapDec.OK), fmt.Sprintf("%v", gapBrute),
		fmt.Sprintf("%v", gapDec.OK && !gapBrute))

	// The progressive chordal strategy the paper sketches vs the
	// brute-force driver over chordal corpora.
	trials2 := 40
	if cfg.Quick {
		trials2 = 10
	}
	var prog, brute int64
	instances := 0
	for i := 0; i < trials2; i++ {
		g := graph.RandomInterval(rng, 18, 24, 5)
		graph.SprinkleAffinities(rng, g, 10, 6)
		peo, ok := chordal.PEO(g)
		if !ok {
			continue
		}
		k := chordal.Omega(g, peo)
		if k < 2 {
			continue
		}
		res, err := coalesce.ChordalProgressive(g, k)
		if err != nil {
			return nil, err
		}
		instances++
		prog += res.CoalescedWeight
		brute += coalesce.Conservative(g, k, coalesce.TestBrute).CoalescedWeight
	}
	pt := &Table{
		Title:  "Progressive chordal strategy (Thm 5 + re-chordalizing merges) vs brute-force driver",
		Note:   "Interval-graph corpus at k = ω; the paper predicts artificial merges cost some weight.",
		Header: []string{"instances", "progressive weight", "brute weight"},
	}
	pt.Add(instances, prog, brute)
	return []*Table{t, wt, pt}, nil
}
