package expt

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"regcoal/internal/engine"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ABL", "CH", "F3", "IRC", "P1", "P2", "T1", "T2", "T3", "T4", "T5", "T5G", "T6"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d is %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("T1"); !ok {
		t.Fatal("Lookup(T1) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "bbbb"},
	}
	tab.Add("x", 12)
	tab.Add("yyyy", 3.14159)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "note", "bbbb", "yyyy", "3.14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Every experiment runs clean in quick mode and produces at least one
// non-empty table. This doubles as the integration test of the whole
// repository: each experiment exercises reductions, exact solvers,
// heuristics and the SSA pipeline together.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Seed: 20060408, Quick: true} // the paper's date
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q empty", tab.Title)
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				if buf.Len() == 0 {
					t.Fatal("render produced nothing")
				}
			}
		})
	}
}

// The verification experiments must report full agreement — their tables
// encode "x/y" cells that should all be "y/y".
func TestEquivalenceExperimentsFullyAgree(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	for _, id := range []string{"T2", "T3", "T4", "T6"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range tables {
			for _, row := range tab.Rows {
				for ci, cell := range row {
					if ci == 0 || !strings.Contains(cell, "/") {
						continue
					}
					if tab.Header[ci] != "equivalent" && tab.Header[ci] != "agree" {
						continue
					}
					parts := strings.SplitN(cell, "/", 2)
					if parts[0] != parts[1] {
						t.Fatalf("%s: row %v cell %q disagrees", id, row, cell)
					}
				}
			}
		}
	}
}

func TestRunAndRender(t *testing.T) {
	e, _ := Lookup("F3")
	var buf bytes.Buffer
	if err := RunAndRender(&buf, e, Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "F3") {
		t.Fatal("render missing experiment id")
	}
}

func TestHelpers(t *testing.T) {
	if ratio(1, 0) != "n/a" || pct(1, 0) != "n/a" {
		t.Fatal("zero denominators must render n/a")
	}
	if ratio(1, 2) != "0.50" {
		t.Fatalf("ratio=%s", ratio(1, 2))
	}
	if pct(1, 4) != "25.0%" {
		t.Fatalf("pct=%s", pct(1, 4))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(Experiment{ID: "T1"})
}

// The CH experiment's per-strategy roll-up must agree with the engine's
// own aggregation over the same corpus and runners: summed coalesced
// weight per strategy is the number the table's second column renders.
// This pins the experiment's aggregation path to engine.Aggregates.
func TestCHAggregationConsistentWithEngine(t *testing.T) {
	cfg := Config{Seed: 20060408, Quick: true}
	e, ok := Lookup("CH")
	if !ok {
		t.Fatal("missing CH")
	}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := chCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runners := append(engine.StrategyRunners(), engine.IRCRunner(), biasedRunner())
	recs, err := engine.Run(context.Background(), engineConfig(cfg), insts, runners, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantWeight := map[string]int64{}
	for _, a := range engine.Aggregates(recs) {
		wantWeight[a.Strategy] += a.CoalescedWeight
	}
	tab := tables[0]
	if len(tab.Rows) != len(runners) {
		t.Fatalf("CH table has %d rows, want one per runner (%d)", len(tab.Rows), len(runners))
	}
	for _, row := range tab.Rows {
		strategy, weight := row[0], row[1]
		if got := fmt.Sprint(wantWeight[strategy]); got != weight {
			t.Errorf("CH row %q reports weight %s, engine aggregates say %s", strategy, weight, got)
		}
	}
}

// T5G's "consistent" columns are soundness tallies (a brute-force yes
// must imply a Theorem 5 yes): every x/y cell must be full agreement,
// and the frozen gap witness must report the gap.
func TestT5GConsistencyAndGapWitness(t *testing.T) {
	e, ok := Lookup("T5G")
	if !ok {
		t.Fatal("missing T5G")
	}
	tables, err := e.Run(Config{Seed: 20060408, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := tables[0]
	ci := -1
	for i, h := range verdicts.Header {
		if h == "consistent" {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no consistent column in %v", verdicts.Header)
	}
	for _, row := range verdicts.Rows {
		parts := strings.SplitN(row[ci], "/", 2)
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("T5G row %v: consistency cell %q disagrees", row, row[ci])
		}
	}
	witness := tables[1]
	if len(witness.Rows) != 1 || witness.Rows[0][2] != "true" {
		t.Fatalf("gap witness table %v does not exhibit the gap", witness.Rows)
	}
}

// The CSV rendering path must carry exactly the text table's cells —
// same rows, same order — so downstream tooling can trust either form.
func TestRunAndRenderCSVMatchesTables(t *testing.T) {
	e, _ := Lookup("F3")
	cfg := Config{Seed: 1, Quick: true}
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunAndRenderCSV(&buf, e, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, tab := range tables {
		for _, row := range tab.Rows {
			if !strings.Contains(out, row[0]) {
				t.Errorf("CSV output missing row head %q", row[0])
			}
		}
	}
}
