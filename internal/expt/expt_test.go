package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ABL", "CH", "F3", "IRC", "P1", "P2", "T1", "T2", "T3", "T4", "T5", "T5G", "T6"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d is %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("T1"); !ok {
		t.Fatal("Lookup(T1) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "bbbb"},
	}
	tab.Add("x", 12)
	tab.Add("yyyy", 3.14159)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "note", "bbbb", "yyyy", "3.14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Every experiment runs clean in quick mode and produces at least one
// non-empty table. This doubles as the integration test of the whole
// repository: each experiment exercises reductions, exact solvers,
// heuristics and the SSA pipeline together.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Seed: 20060408, Quick: true} // the paper's date
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q empty", tab.Title)
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				if buf.Len() == 0 {
					t.Fatal("render produced nothing")
				}
			}
		})
	}
}

// The verification experiments must report full agreement — their tables
// encode "x/y" cells that should all be "y/y".
func TestEquivalenceExperimentsFullyAgree(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	for _, id := range []string{"T2", "T3", "T4", "T6"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range tables {
			for _, row := range tab.Rows {
				for ci, cell := range row {
					if ci == 0 || !strings.Contains(cell, "/") {
						continue
					}
					if tab.Header[ci] != "equivalent" && tab.Header[ci] != "agree" {
						continue
					}
					parts := strings.SplitN(cell, "/", 2)
					if parts[0] != parts[1] {
						t.Fatalf("%s: row %v cell %q disagrees", id, row, cell)
					}
				}
			}
		}
	}
}

func TestRunAndRender(t *testing.T) {
	e, _ := Lookup("F3")
	var buf bytes.Buffer
	if err := RunAndRender(&buf, e, Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "F3") {
		t.Fatal("render missing experiment id")
	}
}

func TestHelpers(t *testing.T) {
	if ratio(1, 0) != "n/a" || pct(1, 0) != "n/a" {
		t.Fatal("zero denominators must render n/a")
	}
	if ratio(1, 2) != "0.50" {
		t.Fatalf("ratio=%s", ratio(1, 2))
	}
	if pct(1, 4) != "25.0%" {
		t.Fatalf("pct=%s", pct(1, 4))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(Experiment{ID: "T1"})
}
