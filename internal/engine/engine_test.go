package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"regcoal"
	"regcoal/internal/corpus"
	"regcoal/internal/graph"
)

func quickCorpus(t *testing.T, spec string) []*corpus.Instance {
	t.Helper()
	fams, err := corpus.Select(spec)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20060408, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

// TestMatrixMatchesFacade pins the engine's strategy runners to the
// facade's strategy list: same names, same order, so cmd/bench output is
// navigable with the regcoal.Strategy constants.
func TestMatrixMatchesFacade(t *testing.T) {
	names := MatrixNames(StrategyRunners())
	want := regcoal.Strategies()
	if len(names) != len(want) {
		t.Fatalf("%d strategy runners, facade has %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != string(want[i]) {
			t.Fatalf("runner %d is %q, facade says %q", i, names[i], want[i])
		}
	}
	full := MatrixNames(StandardMatrix())
	wantTail := []string{"irc", "exact", "spill-greedy", "spill-inc", "spill-exact", "spill+briggs+george", "spill+optimistic", "session-inc", "session-fresh"}
	if len(full) != len(names)+len(wantTail) {
		t.Fatalf("standard matrix = %v, want strategies + %v", full, wantTail)
	}
	for i, w := range wantTail {
		if full[len(names)+i] != w {
			t.Fatalf("standard matrix tail = %v, want %v", full[len(names):], wantTail)
		}
	}
}

// TestDeterministicAcrossParallelism is the acceptance criterion: the
// full matrix over several families must produce byte-identical JSONL and
// aggregate CSV for 1 worker and 8 workers.
func TestDeterministicAcrossParallelism(t *testing.T) {
	insts := quickCorpus(t, "chordal,interval,permutation,er-sparse")
	runOnce := func(parallel int) (string, string) {
		var jsonl bytes.Buffer
		recs, err := Run(context.Background(), Config{Parallel: parallel},
			insts, StandardMatrix(), JSONLSink(&jsonl))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(insts)*len(StandardMatrix()) {
			t.Fatalf("got %d records, want %d", len(recs), len(insts)*len(StandardMatrix()))
		}
		var csvb bytes.Buffer
		if err := WriteAggregatesCSV(&csvb, Aggregates(recs)); err != nil {
			t.Fatal(err)
		}
		return jsonl.String(), csvb.String()
	}
	j1, c1 := runOnce(1)
	j8, c8 := runOnce(8)
	if j1 != j8 {
		t.Errorf("JSONL differs between -parallel 1 and -parallel 8")
	}
	if c1 != c8 {
		t.Errorf("aggregate CSV differs between -parallel 1 and -parallel 8:\n--- 1 ---\n%s--- 8 ---\n%s", c1, c8)
	}
	// Sanity: records are in Seq order and JSONL is valid.
	dec := json.NewDecoder(strings.NewReader(j1))
	for i := 0; dec.More(); i++ {
		var r Record
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.Seq != i {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.WallNS != 0 {
			t.Fatalf("record %d has wall time with timing disabled", i)
		}
	}
}

// slowInstance builds an instance the exact solver cannot finish quickly:
// a dense graph with enough affinities that 2^|A| branch and bound with an
// exact-colorability check per node takes far longer than the timeout.
func slowInstance(t *testing.T) *corpus.Instance {
	t.Helper()
	// exactMaxVertices-sized and half-dense: even with warm solver pools
	// (the pooled-path PR sped the per-node colorability checks up enough
	// that the old 40-vertex instance finished inside 50ms) this takes
	// tens of milliseconds, an order of magnitude over the 5ms timeout
	// below.
	const n = exactMaxVertices
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u+v)%2 == 0 {
				g.AddEdge(graph.V(u), graph.V(v))
			}
		}
	}
	for i := 0; i < exactMaxMoves; i++ {
		g.AddAffinity(graph.V(i), graph.V((i+1)%n), int64(i+1))
	}
	return &corpus.Instance{Family: "test", Index: 0, Name: "slow-0000", File: &graph.File{G: g, K: 3}}
}

// TestTimeoutCancelsExactSolver: a deliberately slow exact-solver run must
// be cut off by the per-run timeout, reported as a timeout record, without
// stalling the rest of the matrix.
func TestTimeoutCancelsExactSolver(t *testing.T) {
	insts := []*corpus.Instance{slowInstance(t)}
	start := time.Now()
	recs, err := Run(context.Background(),
		Config{Parallel: 2, Timeout: 5 * time.Millisecond},
		insts, StandardMatrix(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run took %v; timeout did not bite", elapsed)
	}
	byStrategy := map[string]Record{}
	for _, r := range recs {
		byStrategy[r.Strategy] = r
	}
	ex, ok := byStrategy["exact"]
	if !ok {
		t.Fatal("no exact record")
	}
	if ex.Status != StatusTimeout {
		t.Fatalf("exact status = %s (%s), want timeout", ex.Status, ex.Error)
	}
	// The polynomial strategies on the same instance still completed.
	for _, name := range []string{"briggs", "aggressive", "irc"} {
		if byStrategy[name].Status != StatusOK {
			t.Fatalf("%s status = %s, want ok", name, byStrategy[name].Status)
		}
	}
}

// TestPanicIsolation: a panicking runner yields a panic record; the pool
// keeps serving the remaining runs instead of crashing.
func TestPanicIsolation(t *testing.T) {
	insts := quickCorpus(t, "permutation")
	bomb := Runner{
		Name: "bomb",
		Run: func(_ context.Context, f *graph.File) (RunStats, error) {
			if f.G.N() > 0 {
				panic("kaboom on " + f.G.Name(0))
			}
			return RunStats{}, nil
		},
	}
	runners := append([]Runner{bomb}, StrategyRunners()[:2]...)
	recs, err := Run(context.Background(), Config{Parallel: 4}, insts, runners, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(insts)*len(runners) {
		t.Fatalf("got %d records, want %d", len(recs), len(insts)*len(runners))
	}
	panics, oks := 0, 0
	for _, r := range recs {
		switch {
		case r.Strategy == "bomb":
			if r.Status != StatusPanic || !strings.Contains(r.Error, "kaboom") {
				t.Fatalf("bomb record = %+v", r)
			}
			panics++
		case r.Status == StatusOK:
			oks++
		}
	}
	if panics != len(insts) || oks != 2*len(insts) {
		t.Fatalf("panics=%d oks=%d, want %d and %d", panics, oks, len(insts), 2*len(insts))
	}
	aggs := Aggregates(recs)
	if aggs[0].Strategy != "bomb" || aggs[0].Panics != len(insts) || aggs[0].OK != 0 {
		t.Fatalf("bomb aggregate = %+v", aggs[0])
	}
}

// TestSkippedExact: instances beyond the exact envelope produce skip
// records, not hours of search.
func TestSkippedExact(t *testing.T) {
	g := graph.New(exactMaxVertices + 1)
	g.AddAffinity(0, 1, 1)
	inst := &corpus.Instance{Family: "test", Name: "big-0000", File: &graph.File{G: g, K: 2}}
	recs, err := Run(context.Background(), Config{Parallel: 1},
		[]*corpus.Instance{inst}, []Runner{ExactRunner()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Status != StatusSkipped {
		t.Fatalf("recs = %+v", recs)
	}
}

// TestCSVSink exercises the CSV record stream shape.
func TestCSVSink(t *testing.T) {
	insts := quickCorpus(t, "permutation")
	var buf bytes.Buffer
	if _, err := Run(context.Background(), Config{Parallel: 2},
		insts, StrategyRunners()[:1], CSVSink(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(insts) {
		t.Fatalf("%d CSV lines, want %d", len(lines), 1+len(insts))
	}
	if !strings.HasPrefix(lines[0], "seq,family,instance") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != len(strings.Split(lines[0], ","))-1 {
			t.Fatalf("ragged CSV row %q", line)
		}
	}
}

// TestOuterCancellation: canceling the run's context stops feeding work.
func TestOuterCancellation(t *testing.T) {
	insts := quickCorpus(t, "chordal,interval,er-dense")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs, err := Run(ctx, Config{Parallel: 2}, insts, StandardMatrix(), nil)
	if err == nil {
		t.Fatal("want context error")
	}
	if len(recs) == len(insts)*len(StandardMatrix()) {
		t.Fatal("canceled run completed everything")
	}
}

// The spill columns over the high-pressure families: greedy and
// incremental must agree record for record (confluence), exact must
// never spill more than greedy inside its envelope, and the
// spill-then-coalesce pipeline must report zero unfeasibility (every
// record GreedyAfter) where the pure coalescing strategies cannot.
func TestSpillMatrixOnPressureFamilies(t *testing.T) {
	insts := quickCorpus(t, "ssa-pressure,interval-pressure")
	runners := append(SpillRunners(), SpillAllocRunners()...)
	recs, err := Run(context.Background(), Config{Parallel: 4}, insts, runners, nil)
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[string]map[string]Record{}
	for _, r := range recs {
		if byStrategy[r.Strategy] == nil {
			byStrategy[r.Strategy] = map[string]Record{}
		}
		byStrategy[r.Strategy][r.Instance] = r
	}
	for name, g := range byStrategy[string("spill-greedy")] {
		if g.Status != StatusOK || g.Spills == 0 {
			t.Fatalf("spill-greedy on %s: status %s spills %d (pressure families must spill)", name, g.Status, g.Spills)
		}
		inc := byStrategy["spill-inc"][name]
		if inc.Spills != g.Spills {
			t.Fatalf("%s: spill-inc spilled %d, spill-greedy %d", name, inc.Spills, g.Spills)
		}
		if ex := byStrategy["spill-exact"][name]; ex.Status == StatusOK && ex.Spills > g.Spills {
			t.Fatalf("%s: spill-exact spilled %d > greedy %d", name, ex.Spills, g.Spills)
		}
		for _, alloc := range []string{"spill+briggs+george", "spill+optimistic"} {
			a := byStrategy[alloc][name]
			if a.Status != StatusOK || !a.GreedyAfter {
				t.Fatalf("%s on %s: status %s, greedy_after %v", alloc, name, a.Status, a.GreedyAfter)
			}
		}
	}
}

// TestDeterministicAcrossPoolReuse is the pooled-state half of the
// byte-identity contract: two back-to-back matrix runs in one process
// share warm solver pools (IRC state, spill scratch, arenas), and the
// second run's record stream must be byte-identical to the first's. Any
// state leaking across pool reuse boundaries would move a metric here.
func TestDeterministicAcrossPoolReuse(t *testing.T) {
	insts := quickCorpus(t, "chordal,interval,ssa-pressure,er-dense")
	runOnce := func() string {
		var jsonl bytes.Buffer
		if _, err := Run(context.Background(), Config{Parallel: 4},
			insts, StandardMatrix(), JSONLSink(&jsonl)); err != nil {
			t.Fatal(err)
		}
		return jsonl.String()
	}
	first := runOnce()
	second := runOnce() // pools are warm now
	if first != second {
		t.Error("JSONL record stream differs between cold-pool and warm-pool runs")
	}
}
