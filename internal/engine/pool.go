package engine

import (
	"context"
	"errors"
	"sync"
)

// Pool is a reusable fixed-size worker pool with a bounded submission
// queue. It is the execution substrate shared by the batch engine (Run)
// and the online service (internal/service): batch work blocks on Submit,
// request-serving work uses TrySubmit so that overload surfaces as
// ErrSaturated (backpressure, HTTP 429) instead of unbounded queueing.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// ErrPoolClosed is returned by Submit/TrySubmit after Close.
var ErrPoolClosed = errors.New("engine: pool closed")

// ErrSaturated is returned by TrySubmit when the queue is full.
var ErrSaturated = errors.New("engine: pool saturated")

// NewPool starts workers goroutines consuming a queue of capacity queue
// (0 = unbuffered: Submit blocks until a worker is free).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		panic("engine: pool needs at least one worker")
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Submit enqueues fn, blocking until a queue slot frees or ctx is done.
func (p *Pool) Submit(ctx context.Context, fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit enqueues fn without blocking; a full queue is ErrSaturated.
func (p *Pool) TrySubmit(fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		return nil
	default:
		return ErrSaturated
	}
}

// QueueDepth reports how many submitted tasks are waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Close stops accepting work, drains the queue, and waits for in-flight
// tasks to finish. It is safe to call once; further submits fail with
// ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
