package engine

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Run statuses. A record's Status tells whether its metric fields are
// meaningful (StatusOK) or why they are not.
const (
	// StatusOK: the run completed and the metrics are valid.
	StatusOK = "ok"
	// StatusSkipped: the runner declined the instance (e.g. an exact
	// solver refusing an instance beyond its feasible envelope).
	StatusSkipped = "skipped"
	// StatusTimeout: the per-run timeout expired before completion.
	StatusTimeout = "timeout"
	// StatusPanic: the runner panicked; the pool isolated it.
	StatusPanic = "panic"
	// StatusError: the runner returned an error.
	StatusError = "error"
)

// Record is one (instance, strategy) evaluation — one JSONL line or CSV
// row. Seq orders records deterministically: instances in corpus order ×
// runners in matrix order, independent of worker scheduling.
type Record struct {
	Seq      int    `json:"seq"`
	Family   string `json:"family"`
	Instance string `json:"instance"`
	Index    int    `json:"index"`

	// Instance shape.
	Vertices   int   `json:"vertices"`
	Edges      int   `json:"edges"`
	Moves      int   `json:"moves"`
	MoveWeight int64 `json:"move_weight"`
	K          int   `json:"k"`
	// GreedyBefore reports greedy-k-colorability of the uncoalesced graph.
	GreedyBefore bool `json:"greedy_before"`

	Strategy string `json:"strategy"`
	Status   string `json:"status"`

	// Metrics (valid when Status == StatusOK).
	CoalescedWeight int64 `json:"coalesced_weight"`
	CoalescedMoves  int   `json:"coalesced_moves"`
	ResidualWeight  int64 `json:"residual_weight"`
	// GreedyAfter reports greedy-k-colorability of the coalesced graph
	// (for allocators: whether the run finished without spills).
	GreedyAfter bool `json:"greedy_after"`
	Spills      int  `json:"spills"`
	Rounds      int  `json:"rounds"`

	// WallNS is wall-clock duration; omitted when Config.Timing is false
	// so that result streams are byte-identical across parallelism levels.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Error carries the failure message for non-ok statuses.
	Error string `json:"error,omitempty"`
}

// Sink consumes records in Seq order as they become available.
type Sink func(Record) error

// MultiSink fans records out to several sinks, stopping at the first
// error.
func MultiSink(sinks ...Sink) Sink {
	return func(r Record) error {
		for _, s := range sinks {
			if s == nil {
				continue
			}
			if err := s(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// JSONLSink streams records to w as JSON Lines.
func JSONLSink(w io.Writer) Sink {
	enc := json.NewEncoder(w)
	return func(r Record) error {
		return enc.Encode(r)
	}
}

// csvHeader is the fixed CSV column order; it matches Record field order.
var csvHeader = []string{
	"seq", "family", "instance", "index",
	"vertices", "edges", "moves", "move_weight", "k", "greedy_before",
	"strategy", "status",
	"coalesced_weight", "coalesced_moves", "residual_weight",
	"greedy_after", "spills", "rounds", "wall_ns", "error",
}

// CSVSink streams records to w as CSV, writing the header before the
// first record. The wall_ns cell is empty when timing was disabled.
func CSVSink(w io.Writer) Sink {
	cw := csv.NewWriter(w)
	wroteHeader := false
	return func(r Record) error {
		if !wroteHeader {
			if err := cw.Write(csvHeader); err != nil {
				return err
			}
			wroteHeader = true
		}
		wall := ""
		if r.WallNS != 0 {
			wall = strconv.FormatInt(r.WallNS, 10)
		}
		row := []string{
			strconv.Itoa(r.Seq), r.Family, r.Instance, strconv.Itoa(r.Index),
			strconv.Itoa(r.Vertices), strconv.Itoa(r.Edges), strconv.Itoa(r.Moves),
			strconv.FormatInt(r.MoveWeight, 10), strconv.Itoa(r.K), strconv.FormatBool(r.GreedyBefore),
			r.Strategy, r.Status,
			strconv.FormatInt(r.CoalescedWeight, 10), strconv.Itoa(r.CoalescedMoves),
			strconv.FormatInt(r.ResidualWeight, 10),
			strconv.FormatBool(r.GreedyAfter), strconv.Itoa(r.Spills), strconv.Itoa(r.Rounds),
			wall, r.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
}

// CollectSink appends records to *dst.
func CollectSink(dst *[]Record) Sink {
	return func(r Record) error {
		*dst = append(*dst, r)
		return nil
	}
}

// String renders a compact one-line summary, for logs.
func (r Record) String() string {
	return fmt.Sprintf("%s %s %s: w=%d/%d status=%s",
		r.Instance, r.Strategy, r.Family, r.CoalescedWeight, r.MoveWeight, r.Status)
}
