package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func() {
			defer wg.Done()
			n.Add(1)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	p.Close()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolTrySubmitSaturation(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	// Occupy the single worker...
	if err := p.TrySubmit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	// ...then fill the single queue slot. The worker may or may not have
	// dequeued the first task yet, so allow one extra accepted submit
	// before demanding saturation.
	saturated := false
	for i := 0; i < 3; i++ {
		err := p.TrySubmit(func() { <-block })
		if errors.Is(err, ErrSaturated) {
			saturated = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !saturated {
		t.Fatal("pool with 1 worker + queue 1 accepted 3 waiting tasks without saturating")
	}
	close(block)
}

func TestPoolSubmitHonorsContext(t *testing.T) {
	p := NewPool(1, 0)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	if err := p.Submit(context.Background(), func() { <-block }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// Worker busy, queue unbuffered: this submit must give up with the
	// context error instead of blocking forever.
	for {
		err := p.Submit(ctx, func() { <-block })
		if err == nil {
			continue // the worker dequeued the first task; slot freed once
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("got %v, want DeadlineExceeded", err)
		}
		break
	}
}

func TestPoolClosedRejects(t *testing.T) {
	p := NewPool(2, 2)
	p.Close()
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("TrySubmit after Close: %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}
