package engine

import (
	"context"
	"errors"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/session"
)

// sessionScriptSteps is the edit-script length the session matrix
// columns drive: long enough that the incremental machinery (dirty-set
// BFS, component memo, reuse) is exercised across vertex churn, edge
// flips, affinity rewrites, and k changes, short enough for quick mode.
const sessionScriptSteps = 48

// sessionStats maps a session solve onto the matrix's stat columns.
func sessionStats(sol *session.Solve, rounds int) RunStats {
	return RunStats{
		CoalescedWeight: sol.CoalescedWeight,
		CoalescedMoves:  sol.CoalescedMoves,
		ResidualWeight:  sol.RemainingWeight,
		GreedyAfter:     sol.Colorable,
		Rounds:          rounds,
	}
}

// sessionSkip lowers the session layer's structured client errors
// (precolored instances, k-less files) to a matrix skip.
func sessionSkip(err error) (RunStats, error) {
	var ce *session.ClientError
	if errors.As(err, &ce) {
		return RunStats{Skipped: true, SkipReason: ce.Msg}, nil
	}
	return RunStats{}, err
}

// SessionRunners returns the incremental-vs-fresh differential columns:
// both attach the same content-derived edit script to the instance;
// "session-inc" feeds it to a delta session one batch per delta (so every
// solve runs the incremental path over the previous state), while
// "session-fresh" applies the whole script to the naive reference model
// and solves the edited graph from scratch. Equal stat columns across
// the corpus are the session layer's correctness evidence at matrix
// scale.
func SessionRunners() []Runner {
	return []Runner{
		{
			Name: "session-inc",
			Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
				script := corpus.GenEditScript(f, 0, corpus.ScriptSeed(f), sessionScriptSteps)
				s, err := session.New("engine", f, 0, session.SolverConfig{}, "", nil)
				if err != nil {
					return sessionSkip(err)
				}
				for i := range script {
					if err := ctx.Err(); err != nil {
						return RunStats{}, err
					}
					if _, err := s.Apply(script[i : i+1]); err != nil {
						return RunStats{}, err
					}
				}
				var stats RunStats
				s.View(func(sol *session.Solve) { stats = sessionStats(sol, len(script)) })
				return stats, nil
			},
		},
		{
			Name: "session-fresh",
			Run: func(_ context.Context, f *graph.File) (RunStats, error) {
				script := corpus.GenEditScript(f, 0, corpus.ScriptSeed(f), sessionScriptSteps)
				edited := corpus.ApplyEditScript(f, 0, script)
				s, err := session.New("engine", edited, 0, session.SolverConfig{}, "", nil)
				if err != nil {
					return sessionSkip(err)
				}
				var stats RunStats
				s.View(func(sol *session.Solve) { stats = sessionStats(sol, 1) })
				return stats, nil
			},
		},
	}
}
