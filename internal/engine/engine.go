// Package engine is the concurrent execution engine behind cmd/bench and
// the experiment harness: it fans a strategy matrix (internal coalescing
// strategies × exact solvers × the IRC allocator) out over a corpus of
// instances (internal/corpus) on a worker pool, with per-run timeouts,
// panic isolation, streaming machine-readable output (JSONL/CSV), and an
// aggregator producing per-family summaries.
//
// Determinism contract: records are emitted in Seq order (instance order ×
// runner order) regardless of worker count or scheduling, and every metric
// field is a pure function of the instance, so with timing capture
// disabled and no per-run timeout the result stream is byte-identical for
// any -parallel level — the property the benchmark trajectory
// (BENCH_*.json) relies on. (Whether a borderline run exceeds a timeout
// depends on machine load, so timeout records are not reproducible.)
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// Config parameterizes an engine run.
type Config struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Timeout bounds each (instance, runner) evaluation; 0 disables it.
	// Runners that honor ctx stop early; others are abandoned (the record
	// reports the timeout, the goroutine drains in the background).
	Timeout time.Duration
	// Timing captures wall-clock per run. Leave false when result streams
	// must be byte-identical across parallelism levels.
	Timing bool
}

// outcome is what a single evaluation produced.
type outcome struct {
	stats    RunStats
	err      error
	panicked string
}

// Run evaluates every runner on every instance. Records flow to sink (may
// be nil) in Seq order as they complete, and are also returned. The only
// errors are infrastructural: a sink failure or outer-context
// cancellation; per-run failures (errors, timeouts, panics) are data,
// reported in their records.
//
// Run freezes every instance graph (graph.Freeze) so the matrix columns
// can share each snapshot concurrently without cloning. The freeze is
// permanent: callers that want to mutate an instance afterwards must
// Clone its graph.
func Run(ctx context.Context, cfg Config, insts []*corpus.Instance, runners []Runner, sink Sink) ([]Record, error) {
	if len(insts) == 0 || len(runners) == 0 {
		return nil, nil
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(insts) * len(runners)
	if workers > total {
		workers = total
	}

	// Instance-shape fields are shared by every record of an instance;
	// compute them once up front (cheap: greedy elimination is near-linear).
	type shape struct {
		vertices, edges, moves int
		moveWeight             int64
		greedyBefore           bool
	}
	shapes := make([]shape, len(insts))
	for i, inst := range insts {
		// Freeze each instance graph: every runner of the matrix reads
		// the same snapshot concurrently (the Runner contract forbids
		// mutation; freezing turns a violation into a panic record
		// instead of silent cross-column corruption).
		g := inst.File.G.Freeze()
		shapes[i] = shape{
			vertices:     g.N(),
			edges:        g.E(),
			moves:        g.NumAffinities(),
			moveWeight:   g.TotalAffinityWeight(),
			greedyBefore: greedy.IsGreedyKColorable(g, inst.File.K),
		}
	}

	// feedCtx stops the feeder early on outer cancellation or a sink
	// failure — no point evaluating a matrix whose output is discarded.
	feedCtx, stopFeeding := context.WithCancel(ctx)
	defer stopFeeding()

	// The matrix runs on the shared pool abstraction (see pool.go); batch
	// work blocks on Submit, so an unbuffered queue gives the same
	// scheduling as dedicated workers.
	pool := NewPool(workers, 0)
	defer pool.Close()
	recCh := make(chan Record, workers)
	var inFlight sync.WaitGroup

	// Feed tasks; stop early if the outer context dies or the sink fails.
	go func() {
		for seq := 0; seq < total; seq++ {
			seq := seq
			inFlight.Add(1)
			err := pool.Submit(feedCtx, func() {
				defer inFlight.Done()
				inst := insts[seq/len(runners)]
				r := runners[seq%len(runners)]
				sh := shapes[seq/len(runners)]
				rec := Record{
					Seq:          seq,
					Family:       inst.Family,
					Instance:     inst.Name,
					Index:        inst.Index,
					Vertices:     sh.vertices,
					Edges:        sh.edges,
					Moves:        sh.moves,
					MoveWeight:   sh.moveWeight,
					K:            inst.File.K,
					GreedyBefore: sh.greedyBefore,
					Strategy:     r.Name,
				}
				evaluate(ctx, cfg, r, inst.File, &rec)
				recCh <- rec
			})
			if err != nil {
				inFlight.Done()
				break
			}
		}
		inFlight.Wait()
		close(recCh)
	}()

	// Reorder: emit records strictly by Seq as they arrive.
	out := make([]Record, 0, total)
	pending := make(map[int]Record)
	next := 0
	var sinkErr error
	for rec := range recCh {
		pending[rec.Seq] = rec
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			out = append(out, r)
			if sink != nil && sinkErr == nil {
				if sinkErr = sink(r); sinkErr != nil {
					stopFeeding()
				}
			}
		}
	}
	if sinkErr != nil {
		return out, fmt.Errorf("engine: sink: %w", sinkErr)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// evaluate runs one (instance, runner) pair into rec, isolating panics
// and enforcing the per-run timeout.
func evaluate(ctx context.Context, cfg Config, r Runner, f *graph.File, rec *Record) {
	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{panicked: fmt.Sprint(p)}
			}
		}()
		stats, err := r.Run(runCtx, f)
		done <- outcome{stats: stats, err: err}
	}()
	var o outcome
	select {
	case o = <-done:
	case <-runCtx.Done():
		// The runner ignored cancellation (or has not polled yet): abandon
		// it. Its goroutine drains into the buffered channel when it
		// finishes; the pool moves on.
		o = outcome{err: runCtx.Err()}
	}
	if cfg.Timing {
		rec.WallNS = time.Since(start).Nanoseconds()
	}
	switch {
	case o.panicked != "":
		rec.Status = StatusPanic
		rec.Error = o.panicked
	case o.err != nil:
		// Timeout only when the per-run deadline fired; outer-context
		// cancellation (user interrupt, sink failure) is infrastructural
		// and must not inflate the timeout counts.
		if cfg.Timeout > 0 && errors.Is(runCtx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			rec.Status = StatusTimeout
		} else {
			rec.Status = StatusError
		}
		rec.Error = o.err.Error()
	case o.stats.Skipped:
		rec.Status = StatusSkipped
		rec.Error = o.stats.SkipReason
	default:
		rec.Status = StatusOK
		rec.CoalescedWeight = o.stats.CoalescedWeight
		rec.CoalescedMoves = o.stats.CoalescedMoves
		rec.ResidualWeight = o.stats.ResidualWeight
		rec.GreedyAfter = o.stats.GreedyAfter
		rec.Spills = o.stats.Spills
		rec.Rounds = o.stats.Rounds
	}
}
