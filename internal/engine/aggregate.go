package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Aggregate is the per-(family, strategy) roll-up of a run — the summary
// row the per-family tables are built from. It contains no timing, so
// aggregates over the same corpus and matrix are identical for any worker
// count.
type Aggregate struct {
	Family   string
	Strategy string

	// Status counts; Instances is their sum.
	Instances int
	OK        int
	Skipped   int
	Timeouts  int
	Panics    int
	Errors    int

	// Sums over OK runs. MovableWeight is the total affinity weight of
	// those instances, so Share = CoalescedWeight / MovableWeight.
	MovableWeight   int64
	CoalescedWeight int64
	CoalescedMoves  int
	ResidualWeight  int64
	ColorableAfter  int
	Spills          int
}

// Share is the fraction of movable weight coalesced, in [0, 1].
func (a *Aggregate) Share() float64 {
	if a.MovableWeight == 0 {
		return 0
	}
	return float64(a.CoalescedWeight) / float64(a.MovableWeight)
}

// Aggregates rolls records up per (family, strategy), ordered by first
// appearance in the record stream — i.e. corpus family order × matrix
// order, deterministically.
func Aggregates(recs []Record) []*Aggregate {
	index := map[[2]string]*Aggregate{}
	var order []*Aggregate
	for _, r := range recs {
		key := [2]string{r.Family, r.Strategy}
		a, ok := index[key]
		if !ok {
			a = &Aggregate{Family: r.Family, Strategy: r.Strategy}
			index[key] = a
			order = append(order, a)
		}
		a.Instances++
		switch r.Status {
		case StatusOK:
			a.OK++
			a.MovableWeight += r.MoveWeight
			a.CoalescedWeight += r.CoalescedWeight
			a.CoalescedMoves += r.CoalescedMoves
			a.ResidualWeight += r.ResidualWeight
			a.Spills += r.Spills
			if r.GreedyAfter {
				a.ColorableAfter++
			}
		case StatusSkipped:
			a.Skipped++
		case StatusTimeout:
			a.Timeouts++
		case StatusPanic:
			a.Panics++
		default:
			a.Errors++
		}
	}
	return order
}

var aggregateHeader = []string{
	"family", "strategy", "instances", "ok", "skipped", "timeouts", "panics", "errors",
	"movable_weight", "coalesced_weight", "coalesced_moves", "residual_weight",
	"share", "colorable_after", "spills",
}

// aggregateRow renders one aggregate as strings, shared by the CSV and
// text renderers.
func aggregateRow(a *Aggregate) []string {
	return []string{
		a.Family, a.Strategy,
		strconv.Itoa(a.Instances), strconv.Itoa(a.OK), strconv.Itoa(a.Skipped),
		strconv.Itoa(a.Timeouts), strconv.Itoa(a.Panics), strconv.Itoa(a.Errors),
		strconv.FormatInt(a.MovableWeight, 10),
		strconv.FormatInt(a.CoalescedWeight, 10),
		strconv.Itoa(a.CoalescedMoves),
		strconv.FormatInt(a.ResidualWeight, 10),
		fmt.Sprintf("%.4f", a.Share()),
		strconv.Itoa(a.ColorableAfter),
		strconv.Itoa(a.Spills),
	}
}

// WriteAggregatesCSV renders aggregates as CSV.
func WriteAggregatesCSV(w io.Writer, aggs []*Aggregate) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(aggregateHeader); err != nil {
		return err
	}
	for _, a := range aggs {
		if err := cw.Write(aggregateRow(a)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAggregatesText renders aggregates as an aligned table for
// terminals.
func WriteAggregatesText(w io.Writer, aggs []*Aggregate) error {
	rows := make([][]string, 0, len(aggs)+1)
	rows = append(rows, aggregateHeader)
	for _, a := range aggs {
		rows = append(rows, aggregateRow(a))
	}
	widths := make([]int, len(aggregateHeader))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}
