package engine

import (
	"context"
	"errors"
	"fmt"

	"regcoal/internal/coalesce"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/regalloc"
	"regcoal/internal/spill"
)

// RunStats is what a runner reports for one instance.
type RunStats struct {
	// CoalescedWeight / CoalescedMoves: affinity weight and count the run
	// eliminated. ResidualWeight is what remains.
	CoalescedWeight int64
	CoalescedMoves  int
	ResidualWeight  int64
	// GreedyAfter: the coalesced graph is greedy-k-colorable (for
	// allocators: the run finished without spills).
	GreedyAfter bool
	// Spills counts spilled vertices (allocator runners only).
	Spills int
	// Rounds counts driver iterations, when the strategy iterates.
	Rounds int
	// Skipped marks an instance the runner declined (with the reason),
	// e.g. exact search beyond its feasible envelope.
	Skipped    bool
	SkipReason string
}

// Runner is one column of the strategy matrix: a named evaluation of a
// coalescing instance. Run must be deterministic for a given instance,
// must not mutate the graph, and should honor ctx cancellation when its
// worst case is not polynomial.
type Runner struct {
	Name string
	Run  func(ctx context.Context, f *graph.File) (RunStats, error)
}

// statsFromResult converts a coalesce.Result.
func statsFromResult(res *coalesce.Result) RunStats {
	return RunStats{
		CoalescedWeight: res.CoalescedWeight,
		CoalescedMoves:  len(res.Coalesced),
		ResidualWeight:  res.RemainingWeight,
		GreedyAfter:     res.Colorable,
		Rounds:          res.Rounds,
	}
}

// StrategyRunner adapts one registry strategy to a matrix column.
func StrategyRunner(s *coalesce.NamedStrategy) Runner {
	return Runner{
		Name: s.Name,
		Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
			res, err := s.Run(ctx, f.G, f.K)
			if errors.Is(err, coalesce.ErrInapplicable) {
				return RunStats{Skipped: true, SkipReason: err.Error()}, nil
			}
			if err != nil {
				return RunStats{}, err
			}
			return statsFromResult(res), nil
		},
	}
}

// StrategyRunners returns one runner per core strategy of the coalesce
// registry — the same names and semantics as regcoal.Run (the
// correspondence is pinned by TestMatrixMatchesFacade). Non-core registry
// entries (chordal-inc, vegdahl) are excluded so that persisted benchmark
// trajectories keep comparing like with like.
func StrategyRunners() []Runner {
	core := coalesce.CoreStrategies()
	out := make([]Runner, 0, len(core))
	for _, s := range core {
		out = append(out, StrategyRunner(s))
	}
	return out
}

// IRCRunner evaluates the worklist-driven iterated-register-coalescing
// allocator (George–Appel) on the instance.
func IRCRunner() Runner {
	return Runner{
		Name: "irc",
		Run: func(_ context.Context, f *graph.File) (RunStats, error) {
			res, err := regalloc.AllocateIRC(f.G, f.K)
			if err != nil {
				return RunStats{}, err
			}
			count, _ := res.Coloring.CoalescedMoves(f.G)
			return RunStats{
				CoalescedWeight: res.CoalescedWeight,
				CoalescedMoves:  count,
				ResidualWeight:  res.RemainingWeight,
				GreedyAfter:     len(res.Spilled) == 0,
				Spills:          len(res.Spilled),
				Rounds:          1,
			}, nil
		},
	}
}

// Exact-search feasibility envelope: branch and bound is 2^|A| over the
// affinities with an exact-colorability check per leaf, so the runner
// declines instances beyond these bounds instead of hanging the pool for
// hours (the per-run timeout still guards the admitted ones).
const (
	exactMaxMoves    = 14
	exactMaxVertices = 48
)

// ExactRunner evaluates optimal conservative coalescing (minimum
// uncoalesced weight subject to the quotient staying greedy-k-colorable —
// the paper's Theorem 3 objective over the class heuristics maintain) by
// branch and bound, honoring ctx cancellation.
func ExactRunner() Runner {
	return Runner{
		Name: "exact",
		Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
			g, k := f.G, f.K
			if g.NumAffinities() > exactMaxMoves || g.N() > exactMaxVertices {
				return RunStats{
					Skipped: true,
					SkipReason: fmt.Sprintf("instance outside exact envelope (moves %d > %d or vertices %d > %d)",
						g.NumAffinities(), exactMaxMoves, g.N(), exactMaxVertices),
				}, nil
			}
			res, err := exact.OptimalCoalescingCtx(ctx, g, k, exact.TargetGreedy, exact.MinimizeWeight)
			if err != nil {
				return RunStats{}, err
			}
			coalesced, _ := res.P.CoalescedAffinities(g)
			var w int64
			for _, a := range coalesced {
				w += a.Weight
			}
			stats := RunStats{
				CoalescedWeight: w,
				CoalescedMoves:  len(coalesced),
				ResidualWeight:  res.Cost,
				Rounds:          1,
			}
			if q, _, qerr := graph.Quotient(g, res.P); qerr == nil {
				stats.GreedyAfter = greedy.IsGreedyKColorable(q, k)
			}
			return stats, nil
		},
	}
}

// SpillRunners evaluates the spill-everywhere subsystem as matrix
// columns: the greedy and incremental graph spillers (which must agree),
// and the exact branch-and-bound spiller inside its envelope. Spills and
// Rounds carry the plan shape; CoalescedWeight stays zero (spilling
// removes no moves by itself).
func SpillRunners() []Runner {
	plan := func(name string, run func(ctx context.Context, f *graph.File) (*spill.Plan, error)) Runner {
		return Runner{
			Name: name,
			Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
				p, err := run(ctx, f)
				if err != nil {
					return RunStats{}, err
				}
				return RunStats{
					ResidualWeight: f.G.TotalAffinityWeight(),
					GreedyAfter:    true,
					Spills:         len(p.Spilled),
					Rounds:         p.Rounds,
				}, nil
			},
		}
	}
	return []Runner{
		plan("spill-greedy", func(_ context.Context, f *graph.File) (*spill.Plan, error) {
			return spill.Greedy(f, nil)
		}),
		plan("spill-inc", func(_ context.Context, f *graph.File) (*spill.Plan, error) {
			return spill.Incremental(f, nil)
		}),
		{
			Name: "spill-exact",
			Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
				p, err := spill.Exact(ctx, f, nil)
				if err == spill.ErrEnvelope {
					return RunStats{Skipped: true, SkipReason: err.Error()}, nil
				}
				if err != nil {
					return RunStats{}, err
				}
				return RunStats{
					ResidualWeight: f.G.TotalAffinityWeight(),
					GreedyAfter:    true,
					Spills:         len(p.Spilled),
					Rounds:         p.Rounds,
				}, nil
			},
		},
	}
}

// SpillAllocRunners evaluates the spill-then-coalesce pipeline
// (regalloc.AllocateSpillFirst): pressure is lowered to k up front, then
// the residual is coalesced with the named mode — the spill × coalesce
// half of the matrix. The allocation is k-feasible by construction, so
// GreedyAfter is always true and Spills counts the phase-one evictions.
func SpillAllocRunners() []Runner {
	modes := []struct {
		name string
		mode regalloc.Mode
	}{
		{"spill+briggs+george", regalloc.ModeConservative},
		{"spill+optimistic", regalloc.ModeOptimistic},
	}
	out := make([]Runner, 0, len(modes))
	for _, m := range modes {
		m := m
		out = append(out, Runner{
			Name: m.name,
			Run: func(_ context.Context, f *graph.File) (RunStats, error) {
				res, err := regalloc.AllocateSpillFirst(f.G, f.K, m.mode)
				if err != nil {
					return RunStats{}, err
				}
				count, _ := res.Coloring.CoalescedMoves(f.G)
				return RunStats{
					CoalescedWeight: res.CoalescedWeight,
					CoalescedMoves:  count,
					ResidualWeight:  res.RemainingWeight,
					GreedyAfter:     true,
					Spills:          len(res.Spilled),
					Rounds:          1,
				}, nil
			},
		})
	}
	return out
}

// StandardMatrix is the full strategy matrix the benchmark drives: every
// regcoal strategy, the IRC allocator, the exact solver, the spill ×
// coalesce columns (spillers plus the spill-then-coalesce pipeline), and
// the session layer's incremental-vs-fresh differential pair.
func StandardMatrix() []Runner {
	m := StrategyRunners()
	m = append(m, IRCRunner(), ExactRunner())
	m = append(m, SpillRunners()...)
	m = append(m, SpillAllocRunners()...)
	m = append(m, SessionRunners()...)
	return m
}

// MatrixNames lists runner names in order.
func MatrixNames(rs []Runner) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}
