package engine

import (
	"context"
	"errors"
	"fmt"

	"regcoal/internal/coalesce"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/regalloc"
)

// RunStats is what a runner reports for one instance.
type RunStats struct {
	// CoalescedWeight / CoalescedMoves: affinity weight and count the run
	// eliminated. ResidualWeight is what remains.
	CoalescedWeight int64
	CoalescedMoves  int
	ResidualWeight  int64
	// GreedyAfter: the coalesced graph is greedy-k-colorable (for
	// allocators: the run finished without spills).
	GreedyAfter bool
	// Spills counts spilled vertices (allocator runners only).
	Spills int
	// Rounds counts driver iterations, when the strategy iterates.
	Rounds int
	// Skipped marks an instance the runner declined (with the reason),
	// e.g. exact search beyond its feasible envelope.
	Skipped    bool
	SkipReason string
}

// Runner is one column of the strategy matrix: a named evaluation of a
// coalescing instance. Run must be deterministic for a given instance,
// must not mutate the graph, and should honor ctx cancellation when its
// worst case is not polynomial.
type Runner struct {
	Name string
	Run  func(ctx context.Context, f *graph.File) (RunStats, error)
}

// statsFromResult converts a coalesce.Result.
func statsFromResult(res *coalesce.Result) RunStats {
	return RunStats{
		CoalescedWeight: res.CoalescedWeight,
		CoalescedMoves:  len(res.Coalesced),
		ResidualWeight:  res.RemainingWeight,
		GreedyAfter:     res.Colorable,
		Rounds:          res.Rounds,
	}
}

// StrategyRunner adapts one registry strategy to a matrix column.
func StrategyRunner(s *coalesce.NamedStrategy) Runner {
	return Runner{
		Name: s.Name,
		Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
			res, err := s.Run(ctx, f.G, f.K)
			if errors.Is(err, coalesce.ErrInapplicable) {
				return RunStats{Skipped: true, SkipReason: err.Error()}, nil
			}
			if err != nil {
				return RunStats{}, err
			}
			return statsFromResult(res), nil
		},
	}
}

// StrategyRunners returns one runner per core strategy of the coalesce
// registry — the same names and semantics as regcoal.Run (the
// correspondence is pinned by TestMatrixMatchesFacade). Non-core registry
// entries (chordal-inc, vegdahl) are excluded so that persisted benchmark
// trajectories keep comparing like with like.
func StrategyRunners() []Runner {
	core := coalesce.CoreStrategies()
	out := make([]Runner, 0, len(core))
	for _, s := range core {
		out = append(out, StrategyRunner(s))
	}
	return out
}

// IRCRunner evaluates the worklist-driven iterated-register-coalescing
// allocator (George–Appel) on the instance.
func IRCRunner() Runner {
	return Runner{
		Name: "irc",
		Run: func(_ context.Context, f *graph.File) (RunStats, error) {
			res, err := regalloc.AllocateIRC(f.G, f.K)
			if err != nil {
				return RunStats{}, err
			}
			count, _ := res.Coloring.CoalescedMoves(f.G)
			return RunStats{
				CoalescedWeight: res.CoalescedWeight,
				CoalescedMoves:  count,
				ResidualWeight:  res.RemainingWeight,
				GreedyAfter:     len(res.Spilled) == 0,
				Spills:          len(res.Spilled),
				Rounds:          1,
			}, nil
		},
	}
}

// Exact-search feasibility envelope: branch and bound is 2^|A| over the
// affinities with an exact-colorability check per leaf, so the runner
// declines instances beyond these bounds instead of hanging the pool for
// hours (the per-run timeout still guards the admitted ones).
const (
	exactMaxMoves    = 14
	exactMaxVertices = 48
)

// ExactRunner evaluates optimal conservative coalescing (minimum
// uncoalesced weight subject to the quotient staying greedy-k-colorable —
// the paper's Theorem 3 objective over the class heuristics maintain) by
// branch and bound, honoring ctx cancellation.
func ExactRunner() Runner {
	return Runner{
		Name: "exact",
		Run: func(ctx context.Context, f *graph.File) (RunStats, error) {
			g, k := f.G, f.K
			if g.NumAffinities() > exactMaxMoves || g.N() > exactMaxVertices {
				return RunStats{
					Skipped: true,
					SkipReason: fmt.Sprintf("instance outside exact envelope (moves %d > %d or vertices %d > %d)",
						g.NumAffinities(), exactMaxMoves, g.N(), exactMaxVertices),
				}, nil
			}
			res, err := exact.OptimalCoalescingCtx(ctx, g, k, exact.TargetGreedy, exact.MinimizeWeight)
			if err != nil {
				return RunStats{}, err
			}
			coalesced, _ := res.P.CoalescedAffinities(g)
			var w int64
			for _, a := range coalesced {
				w += a.Weight
			}
			stats := RunStats{
				CoalescedWeight: w,
				CoalescedMoves:  len(coalesced),
				ResidualWeight:  res.Cost,
				Rounds:          1,
			}
			if q, _, qerr := graph.Quotient(g, res.P); qerr == nil {
				stats.GreedyAfter = greedy.IsGreedyKColorable(q, k)
			}
			return stats, nil
		},
	}
}

// StandardMatrix is the full strategy matrix the ISSUE's benchmark drives:
// every regcoal strategy, the IRC allocator, and the exact solver.
func StandardMatrix() []Runner {
	m := StrategyRunners()
	m = append(m, IRCRunner(), ExactRunner())
	return m
}

// MatrixNames lists runner names in order.
func MatrixNames(rs []Runner) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}
