// Package vcover implements the vertex cover problem, the NP-complete
// source of the paper's Theorem 6 reduction to optimistic coalescing.
// Vertex cover is NP-complete even when every vertex has degree at most 3
// (Garey, Johnson & Stockmeyer), which is exactly the restriction the
// Theorem 6 gadget relies on (each vertex structure has 3 connector arms).
package vcover

import (
	"math/rand"

	"regcoal/internal/graph"
)

// IsCover reports whether the vertex set covers every edge of g.
func IsCover(g *graph.Graph, cover []graph.V) bool {
	in := make(map[graph.V]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	for _, e := range g.Edges() {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// SolveExact computes a minimum vertex cover by branch and bound: pick an
// uncovered edge, branch on covering it with either endpoint. Runs in
// O(2^cover) time; fine for the small reduction-verification instances.
func SolveExact(g *graph.Graph) []graph.V {
	edges := g.Edges()
	best := g.Vertices() // the full vertex set always covers
	inCover := make([]bool, g.N())
	var rec func(count int)
	rec = func(count int) {
		if count >= len(best) {
			return // cannot improve
		}
		// Find an uncovered edge.
		var pick [2]graph.V
		found := false
		for _, e := range edges {
			if !inCover[e[0]] && !inCover[e[1]] {
				pick = e
				found = true
				break
			}
		}
		if !found {
			cur := make([]graph.V, 0, count)
			for v, in := range inCover {
				if in {
					cur = append(cur, graph.V(v))
				}
			}
			best = cur
			return
		}
		for _, v := range pick {
			inCover[v] = true
			rec(count + 1)
			inCover[v] = false
		}
	}
	rec(0)
	return best
}

// Approx2 returns a vertex cover at most twice the optimum via maximal
// matching: repeatedly pick an uncovered edge and take both endpoints.
func Approx2(g *graph.Graph) []graph.V {
	in := make([]bool, g.N())
	var cover []graph.V
	for _, e := range g.Edges() {
		if !in[e[0]] && !in[e[1]] {
			in[e[0]] = true
			in[e[1]] = true
			cover = append(cover, e[0], e[1])
		}
	}
	return cover
}

// RandomMaxDeg3 returns a random graph in which every vertex has degree at
// most 3, with up to m edges — the graph class of the Theorem 6 reduction.
func RandomMaxDeg3(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	for attempts := 0; g.E() < m && attempts < 40*m+100; attempts++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= 3 || g.Degree(v) >= 3 {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}
