package vcover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func TestIsCover(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !IsCover(g, []graph.V{1}) {
		t.Fatal("{1} covers the path")
	}
	if IsCover(g, []graph.V{0}) {
		t.Fatal("{0} misses edge (1,2)")
	}
	if !IsCover(graph.New(4), nil) {
		t.Fatal("empty cover covers the edgeless graph")
	}
}

func TestSolveExactSmall(t *testing.T) {
	// Path of 3 vertices: min cover {1}.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	cover := SolveExact(g)
	if len(cover) != 1 || cover[0] != 1 {
		t.Fatalf("cover=%v, want [1]", cover)
	}
	// Triangle: min cover size 2.
	tri := graph.New(3)
	tri.AddClique(0, 1, 2)
	if got := SolveExact(tri); len(got) != 2 {
		t.Fatalf("triangle cover=%v, want size 2", got)
	}
	// C5: min cover size 3.
	c5 := graph.New(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(graph.V(i), graph.V((i+1)%5))
	}
	if got := SolveExact(c5); len(got) != 3 {
		t.Fatalf("C5 cover=%v, want size 3", got)
	}
	// Edgeless graph: empty cover.
	if got := SolveExact(graph.New(4)); len(got) != 0 {
		t.Fatalf("edgeless cover=%v", got)
	}
}

func bruteMinCover(g *graph.Graph) int {
	n := g.N()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		var set []graph.V
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, graph.V(v))
			}
		}
		if len(set) < best && IsCover(g, set) {
			best = len(set)
		}
	}
	return best
}

func TestQuickExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%9) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomMaxDeg3(rng, n, n)
		cover := SolveExact(g)
		if !IsCover(g, cover) {
			return false
		}
		return len(cover) == bruteMinCover(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestApprox2(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		rng := rand.New(rand.NewSource(seed))
		g := RandomMaxDeg3(rng, n, n)
		apx := Approx2(g)
		if !IsCover(g, apx) {
			return false
		}
		opt := SolveExact(g)
		return len(apx) <= 2*len(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMaxDeg3RespectsDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		g := RandomMaxDeg3(rng, 15, 20)
		if g.MaxDegree() > 3 {
			t.Fatalf("degree %d exceeds 3", g.MaxDegree())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
