package ssa

import (
	"math/rand"
	"testing"

	"regcoal/internal/ir"
)

func TestLoopDepthsFixtures(t *testing.T) {
	// Straight-line diamond: depth 0 everywhere.
	for _, d := range LoopDepths(ir.Diamond()) {
		if d != 0 {
			t.Fatal("diamond has no loops")
		}
	}
	// Loop fixture: head and body at depth 1, entry and exit at 0.
	f := ir.Loop()
	depths := LoopDepths(f)
	if depths[0] != 0 || depths[3] != 0 {
		t.Fatalf("entry/exit depths: %v", depths)
	}
	if depths[1] != 1 || depths[2] != 1 {
		t.Fatalf("head/body depths: %v", depths)
	}
}

func TestLoopDepthsNested(t *testing.T) {
	// entry -> outerHead -> innerHead -> innerBody -> innerHead;
	// innerHead -> outerLatch -> outerHead; outerHead -> exit.
	f := ir.NewFunc("nest")
	outer := f.NewBlock("outer")
	inner := f.NewBlock("inner")
	body := f.NewBlock("body")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")
	f.AddEdge(f.Entry(), outer)
	f.AddEdge(outer, inner)
	f.AddEdge(inner, body)
	f.AddEdge(body, inner) // inner back edge
	f.AddEdge(inner, latch)
	f.AddEdge(latch, outer) // outer back edge
	f.AddEdge(outer, exit)
	depths := LoopDepths(f)
	if depths[body.ID] != 2 {
		t.Fatalf("inner body depth=%d, want 2 (depths %v)", depths[body.ID], depths)
	}
	if depths[outer.ID] != 1 {
		t.Fatalf("outer head depth=%d, want 1", depths[outer.ID])
	}
	if depths[exit.ID] != 0 {
		t.Fatalf("exit depth=%d, want 0", depths[exit.ID])
	}
}

func TestWeightedInterference(t *testing.T) {
	// The swap loop's φ/copy moves sit at depth 1: their affinities must
	// outweigh depth-0 moves tenfold.
	ssaF, err := Build(ir.Swap())
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(ssaF)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := BuildInterferenceWeighted(low)
	if g.NumAffinities() == 0 {
		t.Fatal("no affinities")
	}
	foundHeavy := false
	for _, a := range g.Affinities() {
		if a.Weight >= 10 {
			foundHeavy = true
		}
	}
	if !foundHeavy {
		t.Fatalf("no loop-weighted affinity found: %v", g.Affinities())
	}
	// The interference structure matches the unweighted builder.
	plain, _ := BuildInterference(low)
	if g.E() != plain.E() || g.N() != plain.N() {
		t.Fatal("weighted builder changed the interference structure")
	}
}

func TestWeightedInterferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := ir.DefaultRandomParams()
		p.Vars, p.Blocks = 6, 8
		fn := ir.Random(rng, p)
		_, low, err := Pipeline(fn)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := BuildInterferenceWeighted(low)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, a := range g.Affinities() {
			if a.Weight < 1 {
				t.Fatalf("bad weight %d", a.Weight)
			}
		}
	}
}
