package ssa

import (
	"fmt"

	"regcoal/internal/ir"
)

// Build converts a strict function to pruned SSA form (Cytron et al.): φs
// are placed at iterated dominance frontiers of definition sites, but only
// where the variable is live-in (pruning: dead φs would otherwise demand
// definitions on paths that never use the variable), and a dominator-tree
// walk renames every definition to a fresh register. The input must be
// strict: every use of a variable is dominated by a definition (functions
// from ir.Random are strict by construction). The result is a new
// function; the original is untouched.
func Build(f *ir.Func) (*ir.Func, error) {
	if err := f.Verify(); err != nil {
		return nil, err
	}
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				return nil, fmt.Errorf("ssa: input already contains φ")
			}
		}
	}
	out := f.Clone()
	dom := NewDominance(out)
	liveness := NewLiveness(out)
	n := len(out.Blocks)
	origRegs := out.NumRegs

	// Definition sites per variable.
	defSites := make([][]int, origRegs)
	for _, b := range out.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for _, ins := range b.Instrs {
			if ins.Dst != ir.NoReg {
				defSites[ins.Dst] = appendUnique(defSites[ins.Dst], b.ID)
			}
		}
	}
	// φ placement via iterated dominance frontier.
	hasPhi := make([][]bool, n) // hasPhi[block][var]
	for i := range hasPhi {
		hasPhi[i] = make([]bool, origRegs)
	}
	for v := 0; v < origRegs; v++ {
		work := append([]int(nil), defSites[v]...)
		inWork := make([]bool, n)
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range dom.Frontier[b] {
				if hasPhi[fb][v] || !liveness.LiveIn[fb].Has(ir.Reg(v)) {
					continue
				}
				hasPhi[fb][v] = true
				if !inWork[fb] {
					work = append(work, fb)
					inWork[fb] = true
				}
			}
		}
	}
	// Insert φ placeholders (args filled during renaming).
	for _, b := range out.Blocks {
		var phis []ir.Instr
		for v := 0; v < origRegs; v++ {
			if hasPhi[b.ID][v] {
				phis = append(phis, ir.Instr{
					Op:   ir.OpPhi,
					Dst:  ir.Reg(v),
					Args: make([]ir.Reg, len(b.Preds)),
				})
				for i := range phis[len(phis)-1].Args {
					phis[len(phis)-1].Args[i] = ir.Reg(v) // placeholder: old name
				}
			}
		}
		b.Instrs = append(phis, b.Instrs...)
	}
	// Renaming along the dominator tree.
	stacks := make([][]ir.Reg, origRegs)
	versionOf := func(v ir.Reg) (ir.Reg, error) {
		s := stacks[v]
		if len(s) == 0 {
			return ir.NoReg, fmt.Errorf("ssa: use of %s before any definition (non-strict input)", out.RegName(v))
		}
		return s[len(s)-1], nil
	}
	var renameErr error
	counter := make([]int, origRegs)
	var rename func(b int)
	rename = func(b int) {
		pushed := make([]ir.Reg, 0, 8)
		blk := out.Blocks[b]
		for i := range blk.Instrs {
			ins := &blk.Instrs[i]
			if ins.Op != ir.OpPhi {
				for j, a := range ins.Args {
					na, err := versionOf(a)
					if err != nil {
						renameErr = err
						return
					}
					ins.Args[j] = na
				}
			}
			if ins.Dst != ir.NoReg {
				old := ins.Dst
				fresh := out.NewNamedReg(fmt.Sprintf("%s.%d", f.RegName(old), counter[old]))
				counter[old]++
				stacks[old] = append(stacks[old], fresh)
				pushed = append(pushed, old)
				ins.Dst = fresh
			}
		}
		// Fill φ args in successors.
		for _, s := range blk.Succs {
			predIndex := -1
			for i, p := range out.Blocks[s].Preds {
				if p == b {
					predIndex = i
					break
				}
			}
			for i := range out.Blocks[s].Instrs {
				ins := &out.Blocks[s].Instrs[i]
				if ins.Op != ir.OpPhi {
					break
				}
				old := ins.Args[predIndex] // still the old variable name
				na, err := versionOf(old)
				if err != nil {
					renameErr = err
					return
				}
				ins.Args[predIndex] = na
			}
		}
		for _, c := range dom.Children[b] {
			rename(c)
			if renameErr != nil {
				return
			}
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			old := pushed[i]
			stacks[old] = stacks[old][:len(stacks[old])-1]
		}
	}
	rename(0)
	if renameErr != nil {
		return nil, renameErr
	}
	// Drop unreachable blocks' instructions to keep later passes honest
	// (they were never renamed).
	for _, b := range out.Blocks {
		if !dom.Reachable(b.ID) {
			b.Instrs = nil
		}
	}
	if err := VerifySSA(out); err != nil {
		return nil, err
	}
	return out, nil
}

// VerifySSA checks the strict-SSA invariants: every register has at most
// one definition, and every use is dominated by its definition (φ uses are
// checked at the end of the corresponding predecessor).
func VerifySSA(f *ir.Func) error {
	if err := f.Verify(); err != nil {
		return err
	}
	dom := NewDominance(f)
	defBlock := make([]int, f.NumRegs)
	defIndex := make([]int, f.NumRegs)
	for i := range defBlock {
		defBlock[i] = -1
	}
	for _, b := range f.Blocks {
		for i, ins := range b.Instrs {
			if ins.Dst == ir.NoReg {
				continue
			}
			if defBlock[ins.Dst] != -1 {
				return fmt.Errorf("ssa: %s defined twice", f.RegName(ins.Dst))
			}
			defBlock[ins.Dst] = b.ID
			defIndex[ins.Dst] = i
		}
	}
	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for i, ins := range b.Instrs {
			for j, a := range ins.Args {
				db := defBlock[a]
				if db == -1 {
					return fmt.Errorf("ssa: %s used but never defined", f.RegName(a))
				}
				useBlock := b.ID
				if ins.Op == ir.OpPhi {
					useBlock = b.Preds[j] // φ use happens at the end of the pred
					if !dom.Dominates(db, useBlock) {
						return fmt.Errorf("ssa: φ use of %s in %s not dominated by its def", f.RegName(a), b.Name)
					}
					continue
				}
				if db == useBlock {
					if defIndex[a] >= i {
						return fmt.Errorf("ssa: %s used at %s[%d] before its def", f.RegName(a), b.Name, i)
					}
					continue
				}
				if !dom.Dominates(db, useBlock) {
					return fmt.Errorf("ssa: use of %s in %s not dominated by def in %s",
						f.RegName(a), b.Name, f.Blocks[db].Name)
				}
			}
		}
	}
	return nil
}
