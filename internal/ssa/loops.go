package ssa

import (
	"regcoal/internal/graph"
	"regcoal/internal/ir"
)

// LoopDepths computes the natural-loop nesting depth of every block: a
// back edge is an edge b -> h where h dominates b; the natural loop of the
// back edge is h plus every block that reaches b without passing through
// h. Depth is the number of distinct loop headers whose loop contains the
// block. Move weights scale with depth (a move in a doubly nested loop
// runs ~100× more often), which is how real allocators weigh affinities.
func LoopDepths(f *ir.Func) []int {
	dom := NewDominance(f)
	depth := make([]int, len(f.Blocks))
	// Collect loop bodies per header.
	loops := make(map[int]map[int]bool)
	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for _, h := range b.Succs {
			if !dom.Dominates(h, b.ID) {
				continue // not a back edge
			}
			body := loops[h]
			if body == nil {
				body = map[int]bool{h: true}
				loops[h] = body
			}
			// Walk predecessors from b up to h.
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range f.Blocks[x].Preds {
					if dom.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, body := range loops {
		for blk := range body {
			depth[blk]++
		}
	}
	return depth
}

// moveWeight scales a move's weight by 10^depth, capped to keep weights
// sane on pathological nests.
func moveWeight(depth int) int64 {
	w := int64(1)
	for i := 0; i < depth && i < 6; i++ {
		w *= 10
	}
	return w
}

// BuildInterferenceWeighted is BuildInterference with loop-depth-scaled
// affinity weights: a move at loop depth d contributes weight 10^d. This
// is the realistic priority signal for coalescing heuristics ("moves in
// inner loops are coalesced first", §4).
func BuildInterferenceWeighted(f *ir.Func) (*graph.Graph, *Liveness) {
	g, lv := BuildInterference(f)
	// Rebuild the affinities with weights; BuildInterference gave weight 1
	// per move and normalized. Recompute from the code directly.
	depths := LoopDepths(f)
	weighted := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		weighted.SetName(graph.V(v), g.Name(graph.V(v)))
		if c, ok := g.Precolored(graph.V(v)); ok {
			weighted.SetPrecolored(graph.V(v), c)
		}
	}
	for _, e := range g.Edges() {
		weighted.AddEdge(e[0], e[1])
	}
	for _, b := range f.Blocks {
		w := moveWeight(depths[b.ID])
		for _, ins := range b.Instrs {
			switch ins.Op {
			case ir.OpMove:
				if ins.Dst != ins.Args[0] {
					weighted.AddAffinity(graph.V(ins.Dst), graph.V(ins.Args[0]), w)
				}
			case ir.OpPhi:
				for _, a := range ins.Args {
					if a != ins.Dst {
						weighted.AddAffinity(graph.V(ins.Dst), graph.V(a), w)
					}
				}
			}
		}
	}
	weighted.NormalizeAffinities()
	return weighted, lv
}
