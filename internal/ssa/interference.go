package ssa

import (
	"regcoal/internal/graph"
	"regcoal/internal/ir"
)

// BuildInterference constructs the interference graph of a function
// (SSA or lowered), Chaitin-style: walking each block backward with the
// live set, every definition interferes with everything live across it.
// Moves get the classic refinement — a move's destination does not
// interfere with its source just because of the move — and each move
// contributes an affinity of weight 1 between its endpoints (parallel
// moves accumulate weight via NormalizeAffinities).
//
// φ destinations of a block are mutually interfering (all live at block
// entry) and interfere with the block's live-ins; φ arguments are uses at
// predecessor ends and are handled by liveness. A φ is morally a parallel
// move, so it also contributes affinities between its destination and each
// of its arguments — coalescing those is exactly the out-of-SSA problem.
func BuildInterference(f *ir.Func) (*graph.Graph, *Liveness) {
	return buildInterference(f, true)
}

// BuildIntersection constructs the pure live-range intersection graph: two
// registers interfere iff their live ranges intersect, with no move
// refinement. For a strict SSA program this is the graph of Theorem 1 —
// chordal with ω = Maxlive. Affinities are attached as in
// BuildInterference.
func BuildIntersection(f *ir.Func) (*graph.Graph, *Liveness) {
	return buildInterference(f, false)
}

func buildInterference(f *ir.Func, moveRefinement bool) (*graph.Graph, *Liveness) {
	lv := NewLiveness(f)
	g := graph.New(f.NumRegs)
	for r := 0; r < f.NumRegs; r++ {
		g.SetName(graph.V(r), f.RegName(ir.Reg(r)))
	}
	addDefEdges := func(dst ir.Reg, live Bitset, skip ir.Reg) {
		for _, w := range live.Members() {
			if w == dst || w == skip {
				continue
			}
			g.AddEdge(graph.V(dst), graph.V(w))
		}
	}
	for bi, b := range f.Blocks {
		live := lv.LiveOut[bi].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ins := b.Instrs[i]
			if ins.Op == ir.OpPhi {
				// Process the whole φ zone at once: dsts pairwise interfere
				// and interfere with the live set at entry.
				var dsts []ir.Reg
				for j := 0; j <= i; j++ {
					if b.Instrs[j].Op == ir.OpPhi {
						dsts = append(dsts, b.Instrs[j].Dst)
						for _, a := range b.Instrs[j].Args {
							if a != b.Instrs[j].Dst {
								g.AddAffinity(graph.V(b.Instrs[j].Dst), graph.V(a), 1)
							}
						}
					}
				}
				for x := 0; x < len(dsts); x++ {
					for y := x + 1; y < len(dsts); y++ {
						if dsts[x] != dsts[y] {
							g.AddEdge(graph.V(dsts[x]), graph.V(dsts[y]))
						}
					}
					addDefEdges(dsts[x], live, ir.NoReg)
				}
				break
			}
			if ins.Dst != ir.NoReg {
				skip := ir.NoReg
				if ins.Op == ir.OpMove {
					if moveRefinement {
						skip = ins.Args[0]
					}
					if ins.Args[0] != ins.Dst {
						g.AddAffinity(graph.V(ins.Dst), graph.V(ins.Args[0]), 1)
					}
				}
				addDefEdges(ins.Dst, live, skip)
				live.Clear(ins.Dst)
			}
			for _, a := range ins.Args {
				live.Set(a)
			}
		}
	}
	g.NormalizeAffinities()
	return g, lv
}
