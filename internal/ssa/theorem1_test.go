package ssa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/chordal"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
)

func TestTheorem1Fixtures(t *testing.T) {
	for _, src := range []*ir.Func{ir.Diamond(), ir.Loop(), ir.Swap()} {
		ssaF, err := Build(src)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		rep, err := CheckTheorem1(ssaF)
		if err != nil {
			t.Fatalf("%s: %v (report %+v)", src.Name, err, rep)
		}
		if !rep.Chordal || rep.Omega != rep.Maxlive {
			t.Fatalf("%s: report %+v", src.Name, rep)
		}
	}
}

// Theorem 1 on random programs: the SSA interference graph is chordal with
// ω = Maxlive — and therefore (Property 1) greedy-Maxlive-colorable.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64, varsRaw, blocksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ir.DefaultRandomParams()
		p.Vars = int(varsRaw%8) + 1
		p.Blocks = int(blocksRaw%8) + 1
		fn := ir.Random(rng, p)
		ssaF, err := Build(fn)
		if err != nil {
			return false
		}
		rep, err := CheckTheorem1(ssaF)
		if err != nil {
			return false
		}
		g, _ := BuildIntersection(ssaF)
		return greedy.IsGreedyKColorable(g, rep.Maxlive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Contrast: the interference graph of a NON-SSA program can be non-chordal
// — that's why the paper's SSA-based results matter. Live ranges wrapping
// around a loop's back edge behave like circular arcs, and C4 is a
// circular-arc graph: the fixture staggers four ranges around one loop
// block so that exactly the cycle a-b, b-c, c-d, d-a appears.
func TestNonSSANotNecessarilyChordal(t *testing.T) {
	f := ir.NewFunc("c4loop")
	a := f.NewNamedReg("a")
	b := f.NewNamedReg("b")
	c := f.NewNamedReg("c")
	d := f.NewNamedReg("d")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.AddEdge(f.Entry(), body)
	f.AddEdge(body, body)
	f.AddEdge(body, exit)
	f.Entry().Def(a)
	f.Entry().Def(d)
	body.Use(d) // d: def(prev iter) -> here
	body.Def(b)
	body.Use(a) // a: def(prev iter) -> here, overlapping b
	body.Def(c) // c overlaps b
	body.Use(b)
	body.Def(d) // d overlaps c
	body.Use(c)
	body.Def(a) // a overlaps d via the back edge
	g, _ := BuildIntersection(f)
	if g.HasEdge(graph.V(a), graph.V(c)) || g.HasEdge(graph.V(b), graph.V(d)) {
		t.Fatalf("unexpected chord: edges %v", g.Edges())
	}
	for _, e := range [][2]graph.V{{graph.V(a), graph.V(b)}, {graph.V(b), graph.V(c)}, {graph.V(c), graph.V(d)}, {graph.V(a), graph.V(d)}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing cycle edge %v: edges %v", e, g.Edges())
		}
	}
	if chordal.IsChordal(g) {
		t.Fatalf("expected a chordless 4-cycle, got edges %v", g.Edges())
	}
	// After SSA construction the same program's graph IS chordal (Thm 1).
	ssaF, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckTheorem1(ssaF); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTheorem1RejectsNonSSA(t *testing.T) {
	f := ir.Diamond() // two defs of c: not SSA
	if _, err := CheckTheorem1(f); err == nil {
		t.Fatal("non-SSA input accepted")
	}
}

func TestSpillEverywhere(t *testing.T) {
	f := ir.NewFunc("t")
	a, b := f.NewReg(), f.NewReg()
	e := f.Entry()
	e.Def(a)
	e.Def(b)
	e.Def(b, a, b) // uses a and b
	e.Use(a)
	SpillEverywhere(f, a, 0)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// a must no longer appear as a direct operand or destination.
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			if ins.Dst == a {
				t.Fatal("spilled register still defined")
			}
			for _, arg := range ins.Args {
				if arg == a && ins.Op != ir.OpStore {
					t.Fatal("spilled register still used directly")
				}
			}
		}
	}
	loads, stores := 0, 0
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			switch ins.Op {
			case ir.OpLoad:
				loads++
			case ir.OpStore:
				stores++
			}
		}
	}
	if loads != 2 || stores != 1 {
		t.Fatalf("loads=%d stores=%d, want 2 and 1", loads, stores)
	}
}

func TestReduceMaxlive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := ir.DefaultRandomParams()
	p.Vars = 8
	p.Blocks = 6
	fn := ir.Random(rng, p)
	_, low, err := Pipeline(fn)
	if err != nil {
		t.Fatal(err)
	}
	before := NewLiveness(low).Maxlive()
	k := 4
	if before <= k {
		t.Skipf("instance already below pressure %d", k)
	}
	spilled, ok := ReduceMaxlive(low, k)
	if !ok {
		t.Fatalf("could not reduce pressure to %d", k)
	}
	after := NewLiveness(low).Maxlive()
	if after > k {
		t.Fatalf("Maxlive=%d after spilling, want <= %d", after, k)
	}
	if len(spilled) == 0 {
		t.Fatal("no spills reported despite pressure drop")
	}
	if err := low.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Pressure reduction works across random instances (or fails only by
// reporting ok=false, never by looping or corrupting the function).
func TestQuickReduceMaxlive(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ir.DefaultRandomParams()
		p.Vars = 7
		p.Blocks = 5
		fn := ir.Random(rng, p)
		_, low, err := Pipeline(fn)
		if err != nil {
			return false
		}
		k := int(kRaw%4) + 3
		_, ok := ReduceMaxlive(low, k)
		if !ok {
			return true // honest failure is acceptable
		}
		return NewLiveness(low).Maxlive() <= k && low.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
