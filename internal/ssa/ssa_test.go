package ssa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/ir"
)

func TestDominanceDiamond(t *testing.T) {
	f := ir.Diamond()
	d := NewDominance(f)
	// entry dominates everything; left/right dominate only themselves;
	// join's idom is entry.
	if d.Idom[1] != 0 || d.Idom[2] != 0 || d.Idom[3] != 0 {
		t.Fatalf("idoms: %v", d.Idom)
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) {
		t.Fatal("dominance wrong on diamond")
	}
	// join is in the frontier of both arms.
	foundL, foundR := false, false
	for _, x := range d.Frontier[1] {
		if x == 3 {
			foundL = true
		}
	}
	for _, x := range d.Frontier[2] {
		if x == 3 {
			foundR = true
		}
	}
	if !foundL || !foundR {
		t.Fatalf("frontiers: %v", d.Frontier)
	}
}

func TestDominanceLoop(t *testing.T) {
	f := ir.Loop()
	d := NewDominance(f)
	// head dominates body and exit.
	if !d.Dominates(1, 2) || !d.Dominates(1, 3) {
		t.Fatal("loop head must dominate body and exit")
	}
	// head is in its own frontier (back edge).
	self := false
	for _, x := range d.Frontier[2] {
		if x == 1 {
			self = true
		}
	}
	if !self {
		t.Fatalf("body's frontier should contain head: %v", d.Frontier)
	}
}

func TestDominanceUnreachable(t *testing.T) {
	f := ir.NewFunc("t")
	f.NewBlock("island")
	d := NewDominance(f)
	if d.Reachable(1) {
		t.Fatal("island reported reachable")
	}
	if d.Dominates(1, 0) {
		t.Fatal("unreachable block dominates entry?")
	}
}

func TestBuildDiamondPlacesPhi(t *testing.T) {
	f := ir.Diamond()
	ssaF, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	phis := 0
	for _, b := range ssaF.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				phis++
			}
		}
	}
	if phis == 0 {
		t.Fatal("diamond must need a φ for c at the join")
	}
	if err := VerifySSA(ssaF); err != nil {
		t.Fatal(err)
	}
}

func TestBuildLoopPlacesPhis(t *testing.T) {
	ssaF, err := Build(ir.Loop())
	if err != nil {
		t.Fatal(err)
	}
	// Loop head needs φs for i and s.
	head := ssaF.Blocks[1]
	phis := 0
	for _, ins := range head.Instrs {
		if ins.Op == ir.OpPhi {
			phis++
		}
	}
	if phis < 2 {
		t.Fatalf("loop head has %d φs, want >= 2", phis)
	}
}

func TestBuildRejectsPhiInput(t *testing.T) {
	f := ir.NewFunc("t")
	r := f.NewReg()
	f.Entry().Phi(r)
	if _, err := Build(f); err == nil {
		t.Fatal("input with φ accepted")
	}
}

func TestQuickBuildProducesValidSSA(t *testing.T) {
	f := func(seed int64, varsRaw, blocksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ir.DefaultRandomParams()
		p.Vars = int(varsRaw%8) + 1
		p.Blocks = int(blocksRaw%8) + 1
		fn := ir.Random(rng, p)
		ssaF, err := Build(fn)
		if err != nil {
			return false
		}
		return VerifySSA(ssaF) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	f := ir.NewFunc("t")
	a := f.NewReg()
	b := f.NewReg()
	f.Entry().Def(a)
	f.Entry().Def(b, a)
	next := f.NewBlock("next")
	f.AddEdge(f.Entry(), next)
	next.Use(b)
	lv := NewLiveness(f)
	if !lv.LiveOut[0].Has(b) {
		t.Fatal("b must be live out of entry")
	}
	if lv.LiveOut[0].Has(a) {
		t.Fatal("a dies inside entry")
	}
	if lv.LiveIn[1].Count() != 1 {
		t.Fatalf("live-in of next = %v", lv.LiveIn[1].Members())
	}
}

func TestMaxliveCounts(t *testing.T) {
	// a and b overlap; c replaces both.
	f := ir.NewFunc("t")
	a, b, c := f.NewReg(), f.NewReg(), f.NewReg()
	e := f.Entry()
	e.Def(a)
	e.Def(b)
	e.Def(c, a, b)
	e.Use(c)
	lv := NewLiveness(f)
	if got := lv.Maxlive(); got != 2 {
		t.Fatalf("Maxlive=%d, want 2", got)
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("set/has wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("count=%d", b.Count())
	}
	m := b.Members()
	if len(m) != 3 || m[0] != 0 || m[1] != 64 || m[2] != 129 {
		t.Fatalf("members=%v", m)
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("clear wrong")
	}
	c := NewBitset(130)
	if c.Or(b) != true || c.Count() != 2 {
		t.Fatal("or wrong")
	}
	if c.Or(b) != false {
		t.Fatal("or should report no change")
	}
}

func TestBuildInterferenceMoveRefinement(t *testing.T) {
	// move b = a with a still live afterwards: the refined graph has no
	// edge (a, b) but an affinity; the intersection graph has the edge.
	f := ir.NewFunc("t")
	a, b := f.NewReg(), f.NewReg()
	e := f.Entry()
	e.Def(a)
	e.Move(b, a)
	e.Use(a)
	e.Use(b)
	refined, _ := BuildInterference(f)
	if refined.HasEdge(graph.V(a), graph.V(b)) {
		t.Fatal("move refinement should drop the (a,b) edge")
	}
	if refined.NumAffinities() != 1 {
		t.Fatalf("affinities=%d", refined.NumAffinities())
	}
	pure, _ := BuildIntersection(f)
	if !pure.HasEdge(graph.V(a), graph.V(b)) {
		t.Fatal("intersection graph must keep the (a,b) edge")
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// entry branches to {b, join}; b falls to join: edge entry->join is
	// critical.
	f := ir.NewFunc("t")
	b := f.NewBlock("b")
	join := f.NewBlock("join")
	f.AddEdge(f.Entry(), b)
	f.AddEdge(f.Entry(), join)
	f.AddEdge(b, join)
	n := SplitCriticalEdges(f)
	if n != 1 {
		t.Fatalf("split %d edges, want 1", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// No critical edge remains.
	for _, blk := range f.Blocks {
		if len(blk.Succs) < 2 {
			continue
		}
		for _, s := range blk.Succs {
			if len(f.Blocks[s].Preds) >= 2 {
				t.Fatal("critical edge remains")
			}
		}
	}
}

func TestSequentializeParallelCopySwap(t *testing.T) {
	// Swap needs a temp: pairs (a<-b), (b<-a).
	var moves [][2]ir.Reg
	temps := 0
	sequentializeParallelCopy(
		[]copyPair{{dst: 0, src: 1}, {dst: 1, src: 0}},
		func() ir.Reg { temps++; return ir.Reg(100) },
		func(dst, src ir.Reg) { moves = append(moves, [2]ir.Reg{dst, src}) },
	)
	if temps != 1 {
		t.Fatalf("swap should use exactly one temp, used %d", temps)
	}
	if len(moves) != 3 {
		t.Fatalf("swap should emit 3 moves, got %v", moves)
	}
	// Simulate and check.
	vals := map[ir.Reg]int{0: 10, 1: 20}
	for _, m := range moves {
		vals[m[0]] = vals[m[1]]
	}
	if vals[0] != 20 || vals[1] != 10 {
		t.Fatalf("swap result %v", vals)
	}
}

// Property: sequentialization realizes the parallel semantics for random
// permutations plus random tree copies.
func TestQuickSequentializeParallelCopy(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		// Random assignment: distinct dsts 0..n-1, srcs random in 0..n+1.
		pairs := make([]copyPair, n)
		for i := range pairs {
			pairs[i] = copyPair{dst: ir.Reg(i), src: ir.Reg(rng.Intn(n + 2))}
		}
		next := ir.Reg(1000)
		var moves [][2]ir.Reg
		sequentializeParallelCopy(pairs,
			func() ir.Reg { next++; return next },
			func(dst, src ir.Reg) { moves = append(moves, [2]ir.Reg{dst, src}) })
		// Simulate sequentially and compare with parallel semantics.
		before := map[ir.Reg]int{}
		for i := 0; i < n+2; i++ {
			before[ir.Reg(i)] = i * 7
		}
		seq := map[ir.Reg]int{}
		for k, v := range before {
			seq[k] = v
		}
		for _, m := range moves {
			seq[m[0]] = seq[m[1]]
		}
		for _, p := range pairs {
			if seq[p.dst] != before[p.src] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerSwapUsesTemp(t *testing.T) {
	ssaF, err := Build(ir.Swap())
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(ssaF)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range low.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				t.Fatal("φ survived lowering")
			}
		}
	}
	if low.CountMoves() == 0 {
		t.Fatal("lowering must insert moves")
	}
}

// Semantics preservation through the whole pipeline: interpret the original
// and the lowered program on matching inputs and compare every use's
// observed values. The interpreter gives def(args...) a deterministic
// value, so any renaming/copy bug shows up.
func TestQuickPipelinePreservesSemantics(t *testing.T) {
	f := func(seed int64, varsRaw, blocksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ir.DefaultRandomParams()
		p.Vars = int(varsRaw%6) + 1
		p.Blocks = int(blocksRaw%6) + 1
		fn := ir.Random(rng, p)
		ssaF, low, err := Pipeline(fn)
		if err != nil {
			return false
		}
		_ = ssaF
		pathSeed := seed ^ 0x9e3779b9
		a := interpret(fn, pathSeed, 4096)
		b := interpret(low, pathSeed, 4096)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// interpret executes a φ-free function, choosing successor blocks with a
// deterministic PRNG so the original and lowered functions follow the same
// control-flow path (lowering only splits edges and inserts moves, so the
// branch decision sequence corresponds 1:1). It returns the sequence of
// values observed by OpUse instructions, up to maxSteps instructions.
func interpret(f *ir.Func, seed int64, maxSteps int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, f.NumRegs)
	var observed []int64
	bi := 0
	steps := 0
	for steps < maxSteps {
		b := f.Blocks[bi]
		for _, ins := range b.Instrs {
			steps++
			switch ins.Op {
			case ir.OpDef:
				// Deterministic function of the args and a counter-free
				// mix, so equal inputs give equal outputs across programs.
				var v int64 = 1469598103934665603
				for _, a := range ins.Args {
					v = (v ^ vals[a]) * 1099511628211
				}
				vals[ins.Dst] = v
			case ir.OpMove:
				vals[ins.Dst] = vals[ins.Args[0]]
			case ir.OpUse:
				for _, a := range ins.Args {
					observed = append(observed, vals[a])
				}
			case ir.OpPhi:
				panic("interpret: φ in executable code")
			}
		}
		if len(b.Succs) == 0 {
			break
		}
		// Choose the successor deterministically. Lowered functions may
		// have split critical edges: their choice happens at the same
		// original block because split blocks have a single successor and
		// consume no randomness.
		if len(b.Succs) == 1 {
			bi = b.Succs[0]
		} else {
			bi = b.Succs[rng.Intn(len(b.Succs))]
		}
	}
	return observed
}
