package ssa

import (
	"fmt"

	"regcoal/internal/chordal"
	"regcoal/internal/ir"
)

// Theorem1Report is the machine-checked content of the paper's Theorem 1
// for one SSA function: the interference graph (live-range intersection,
// ignoring φ functions) is chordal and its clique number equals Maxlive.
type Theorem1Report struct {
	Vertices, Edges int
	Maxlive         int
	Omega           int
	Chordal         bool
}

// CheckTheorem1 builds the intersection interference graph of an SSA
// function and verifies chordality and ω = Maxlive. A non-nil error means
// the theorem's claim failed on this function, which would indicate a bug
// in the SSA construction or liveness (the theorem is, after all, a
// theorem).
func CheckTheorem1(f *ir.Func) (*Theorem1Report, error) {
	if err := VerifySSA(f); err != nil {
		return nil, fmt.Errorf("ssa: not strict SSA: %w", err)
	}
	g, lv := BuildIntersection(f)
	rep := &Theorem1Report{
		Vertices: g.N(),
		Edges:    g.E(),
		Maxlive:  lv.Maxlive(),
	}
	peo, ok := chordal.PEO(g)
	rep.Chordal = ok
	if !ok {
		return rep, fmt.Errorf("ssa: interference graph of SSA form is not chordal")
	}
	rep.Omega = chordal.Omega(g, peo)
	if rep.Omega != rep.Maxlive {
		return rep, fmt.Errorf("ssa: ω=%d but Maxlive=%d", rep.Omega, rep.Maxlive)
	}
	return rep, nil
}
