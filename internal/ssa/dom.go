// Package ssa implements the SSA machinery the paper's Theorem 1 rests on:
// dominators and dominance frontiers (Cooper–Harvey–Kennedy), SSA
// construction (Cytron et al.), per-point liveness and Maxlive,
// interference graph construction with move affinities, critical edge
// splitting, out-of-SSA translation through sequentialized parallel copies,
// and a spill-everywhere pass for the two-phase allocation discussion.
package ssa

import (
	"regcoal/internal/ir"
)

// Dominance holds the dominator tree and dominance frontiers of a function.
type Dominance struct {
	// Idom maps each block to its immediate dominator (-1 for the entry
	// and for unreachable blocks).
	Idom []int
	// Children lists the dominator-tree children of each block.
	Children [][]int
	// Frontier is the dominance frontier DF(b) of each block.
	Frontier [][]int
	// RPO is a reverse postorder of the reachable blocks.
	RPO []int
	// rpoIndex[b] is b's position in RPO, -1 if unreachable.
	rpoIndex []int
}

// NewDominance computes dominators with the Cooper–Harvey–Kennedy
// iterative algorithm and dominance frontiers in the standard way.
func NewDominance(f *ir.Func) *Dominance {
	n := len(f.Blocks)
	d := &Dominance{
		Idom:     make([]int, n),
		Children: make([][]int, n),
		Frontier: make([][]int, n),
		rpoIndex: make([]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoIndex[i] = -1
	}
	// Postorder DFS from the entry.
	var post []int
	seen := make([]bool, n)
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range f.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i := len(post) - 1; i >= 0; i-- {
		d.rpoIndex[post[i]] = len(d.RPO)
		d.RPO = append(d.RPO, post[i])
	}
	// Iterate to fixpoint.
	intersect := func(a, b int) int {
		for a != b {
			for d.rpoIndex[a] > d.rpoIndex[b] {
				a = d.Idom[a]
			}
			for d.rpoIndex[b] > d.rpoIndex[a] {
				b = d.Idom[b]
			}
		}
		return a
	}
	d.Idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range d.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[b].Preds {
				if d.rpoIndex[p] == -1 || d.Idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.Idom[0] = -1
	for b := 0; b < n; b++ {
		if d.Idom[b] != -1 {
			d.Children[d.Idom[b]] = append(d.Children[d.Idom[b]], b)
		}
	}
	// Dominance frontiers.
	for _, b := range d.RPO {
		if len(f.Blocks[b].Preds) < 2 {
			continue
		}
		for _, p := range f.Blocks[b].Preds {
			if d.rpoIndex[p] == -1 {
				continue
			}
			runner := p
			for runner != d.Idom[b] && runner != -1 {
				d.Frontier[runner] = appendUnique(d.Frontier[runner], b)
				runner = d.Idom[runner]
			}
		}
	}
	return d
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *Dominance) Dominates(a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == 0 || d.Idom[b] == -1 {
			return false
		}
		b = d.Idom[b]
	}
}

// Reachable reports whether the block is reachable from the entry.
func (d *Dominance) Reachable(b int) bool { return d.rpoIndex[b] != -1 }
