package ssa

import (
	"fmt"

	"regcoal/internal/ir"
)

// SplitCriticalEdges inserts an empty block on every critical edge (an
// edge from a block with several successors to a block with several
// predecessors). Out-of-SSA copy insertion requires this: copies for a φ's
// predecessor edge must execute on that edge only.
func SplitCriticalEdges(f *ir.Func) int {
	split := 0
	// Collect first: we mutate the block list while iterating otherwise.
	type edge struct{ from, to int }
	var critical []edge
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(f.Blocks[s].Preds) >= 2 {
				critical = append(critical, edge{from: b.ID, to: s})
			}
		}
	}
	for _, e := range critical {
		mid := f.NewBlock(fmt.Sprintf("crit%d", split))
		split++
		from, to := f.Blocks[e.from], f.Blocks[e.to]
		// Rewire from -> mid -> to in place, preserving predecessor order
		// in `to` (φ argument order depends on it).
		for i, s := range from.Succs {
			if s == e.to {
				from.Succs[i] = mid.ID
				break
			}
		}
		for i, p := range to.Preds {
			if p == e.from {
				to.Preds[i] = mid.ID
				break
			}
		}
		mid.Preds = []int{e.from}
		mid.Succs = []int{e.to}
	}
	return split
}

// copyPair is one slot of a parallel copy.
type copyPair struct{ dst, src ir.Reg }

// sequentializeParallelCopy emits ordinary moves realizing the parallel
// assignment (all sources read before any destination is written), using a
// fresh temporary per value cycle. Destinations must be pairwise distinct.
// This is the standard "windmill" algorithm: emit leaf moves (destinations
// nobody still reads) until only permutation cycles remain, then break each
// cycle with one temporary.
func sequentializeParallelCopy(pairs []copyPair, freshTemp func() ir.Reg, emit func(dst, src ir.Reg)) {
	pending := make([]copyPair, 0, len(pairs))
	for _, p := range pairs {
		if p.dst != p.src {
			pending = append(pending, p)
		}
	}
	readers := make(map[ir.Reg]int) // how many pending pairs read this reg
	for _, p := range pending {
		readers[p.src]++
	}
	for len(pending) > 0 {
		emitted := false
		for i := 0; i < len(pending); i++ {
			p := pending[i]
			if readers[p.dst] > 0 {
				continue
			}
			emit(p.dst, p.src)
			readers[p.src]--
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			emitted = true
			i--
		}
		if emitted {
			continue
		}
		// Only cycles remain: every pending dst is read exactly once.
		// Break one cycle with a temp.
		start := pending[0]
		t := freshTemp()
		emit(t, start.dst)
		readers[start.dst]--
		// Now start.dst is free to overwrite; walk the cycle.
		cur := start
		for {
			src := cur.src
			if src == start.dst {
				emit(cur.dst, t)
			} else {
				emit(cur.dst, src)
				readers[src]--
			}
			// Remove cur from pending.
			for i := range pending {
				if pending[i] == cur {
					pending[i] = pending[len(pending)-1]
					pending = pending[:len(pending)-1]
					break
				}
			}
			if src == start.dst {
				break
			}
			// Find the pair writing src (it exists: src is a pending dst).
			found := false
			for _, q := range pending {
				if q.dst == src {
					cur = q
					found = true
					break
				}
			}
			if !found {
				panic("ssa: broken parallel copy cycle")
			}
		}
	}
}

// Lower translates an SSA function out of SSA: critical edges are split,
// every φ block's incoming values are materialized as sequentialized
// parallel copies at the end of each predecessor, and the φs are deleted.
// The returned function has no φs and typically many move instructions —
// the affinities of the register coalescing problem. The input is not
// modified.
func Lower(f *ir.Func) (*ir.Func, error) {
	if err := VerifySSA(f); err != nil {
		return nil, err
	}
	out := f.Clone()
	SplitCriticalEdges(out)
	// For each block with φs, gather the parallel copy per predecessor.
	for _, b := range out.Blocks {
		var phis []ir.Instr
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpPhi {
				phis = append(phis, ins)
			} else {
				break
			}
		}
		if len(phis) == 0 {
			continue
		}
		for pi, p := range b.Preds {
			pred := out.Blocks[p]
			pairs := make([]copyPair, 0, len(phis))
			for _, phi := range phis {
				pairs = append(pairs, copyPair{dst: phi.Dst, src: phi.Args[pi]})
			}
			sequentializeParallelCopy(pairs,
				func() ir.Reg { return out.NewNamedReg("pc") },
				func(dst, src ir.Reg) { pred.Move(dst, src) })
		}
		b.Instrs = b.Instrs[len(phis):]
	}
	if err := out.Verify(); err != nil {
		return nil, err
	}
	return out, nil
}

// Pipeline runs the full front half of the paper's setting: build SSA,
// then lower out of SSA. It returns both forms.
func Pipeline(src *ir.Func) (ssaForm, lowered *ir.Func, err error) {
	ssaForm, err = Build(src)
	if err != nil {
		return nil, nil, err
	}
	lowered, err = Lower(ssaForm)
	if err != nil {
		return nil, nil, err
	}
	return ssaForm, lowered, nil
}
