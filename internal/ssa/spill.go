package ssa

import (
	"regcoal/internal/ir"
)

// SpillEverywhere rewrites a φ-free function so that register r lives in a
// stack slot: every definition of r stores to the slot through a fresh
// temporary, and every use reloads into a fresh temporary just before the
// instruction. The temporaries have point live ranges, so the register
// pressure contributed by r drops to (at most) one at each touching
// instruction. Returns the slot id used.
func SpillEverywhere(f *ir.Func, r ir.Reg, slot int) {
	for _, b := range f.Blocks {
		var out []ir.Instr
		for _, ins := range b.Instrs {
			uses := false
			for _, a := range ins.Args {
				if a == r {
					uses = true
				}
			}
			if uses {
				t := f.NewNamedReg("rl") // reload temp
				out = append(out, ir.Instr{Op: ir.OpLoad, Dst: t, Slot: slot})
				args := append([]ir.Reg(nil), ins.Args...)
				for i, a := range args {
					if a == r {
						args[i] = t
					}
				}
				ins.Args = args
			}
			if ins.Dst == r {
				t := f.NewNamedReg("sp") // spill temp
				ins.Dst = t
				out = append(out, ins)
				out = append(out, ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, Args: []ir.Reg{t}, Slot: slot})
				continue
			}
			out = append(out, ins)
		}
		b.Instrs = out
	}
}

// ReduceMaxlive spills registers (spill-everywhere) until the function's
// Maxlive is at most k, choosing at each round the register that is live
// at the most program points of maximal pressure. This is the aggressive
// first phase of the two-phase (spill then color/coalesce) register
// allocation the paper's introduction describes: after it, the
// interference graph of the SSA form is k-colorable.
//
// It returns the spilled registers in order. It gives up (returns ok =
// false) if pressure cannot be reduced further — which happens only when
// more than k temporaries collide at a single instruction.
func ReduceMaxlive(f *ir.Func, k int) (spilled []ir.Reg, ok bool) {
	slot := 0
	// Only original registers are spill candidates: spilling a one-point
	// reload/spill temporary can never reduce pressure.
	limit := ir.Reg(f.NumRegs)
	done := make(map[ir.Reg]bool)
	for {
		lv := NewLiveness(f)
		maxlive := lv.Maxlive()
		if maxlive <= k {
			return spilled, true
		}
		// Count, for each register, at how many maximal-pressure points it
		// is live.
		score := make([]int, f.NumRegs)
		for bi, b := range f.Blocks {
			live := lv.LiveOut[bi].Copy()
			note := func() {
				if live.Count() == maxlive {
					for _, r := range live.Members() {
						score[r]++
					}
				}
			}
			note()
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				ins := b.Instrs[i]
				if ins.Op == ir.OpPhi {
					break
				}
				if ins.Dst != ir.NoReg {
					live.Clear(ins.Dst)
				}
				for _, a := range ins.Args {
					live.Set(a)
				}
				note()
			}
		}
		best := ir.NoReg
		for r := ir.Reg(0); r < limit; r++ {
			if score[r] == 0 || done[r] {
				continue
			}
			if best == ir.NoReg || score[r] > score[best] {
				best = r
			}
		}
		if best == ir.NoReg {
			// Pressure comes from temporaries alone: more than k values
			// collide at one instruction; spill-everywhere cannot help.
			return spilled, false
		}
		SpillEverywhere(f, best, slot)
		slot++
		done[best] = true
		spilled = append(spilled, best)
	}
}
