package ssa

import (
	"regcoal/internal/ir"
)

// Liveness holds per-block live-in/live-out sets as bitsets over registers.
// The φ convention is the standard one: a φ's arguments are uses at the end
// of the corresponding predecessors, and a φ's destination is defined at
// the entry of its block (φ destinations are therefore not in LiveIn).
type Liveness struct {
	LiveIn, LiveOut []Bitset
	f               *ir.Func
}

// Bitset is a fixed-size bitset over register ids.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Has reports whether bit i is set.
func (b Bitset) Has(i ir.Reg) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i ir.Reg) { b[i/64] |= 1 << uint(i%64) }

// Clear clears bit i.
func (b Bitset) Clear(i ir.Reg) { b[i/64] &^= 1 << uint(i%64) }

// Or merges other into b, reporting whether b changed.
func (b Bitset) Or(other Bitset) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] |= other[i]
		if b[i] != old {
			changed = true
		}
	}
	return changed
}

// Copy clones the bitset.
func (b Bitset) Copy() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Count reports the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Members lists the set bits in increasing order.
func (b Bitset) Members() []ir.Reg {
	var out []ir.Reg
	for i := range b {
		w := b[i]
		for w != 0 {
			bit := w & (-w)
			pos := 0
			for w2 := bit; w2 > 1; w2 >>= 1 {
				pos++
			}
			out = append(out, ir.Reg(i*64+pos))
			w &^= bit
		}
	}
	return out
}

// NewLiveness computes liveness by iterating backward dataflow to a
// fixpoint. It works both on SSA functions (φ arguments count as uses at
// predecessor ends) and on lowered functions without φs.
func NewLiveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{
		LiveIn:  make([]Bitset, n),
		LiveOut: make([]Bitset, n),
		f:       f,
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = NewBitset(f.NumRegs)
		lv.LiveOut[i] = NewBitset(f.NumRegs)
	}
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			b := f.Blocks[bi]
			out := NewBitset(f.NumRegs)
			for _, s := range b.Succs {
				out.Or(lv.LiveIn[s])
				// φ args flowing along this edge are uses at our end.
				predIndex := -1
				for i, p := range f.Blocks[s].Preds {
					if p == bi {
						predIndex = i
						break
					}
				}
				for _, ins := range f.Blocks[s].Instrs {
					if ins.Op != ir.OpPhi {
						break
					}
					out.Set(ins.Args[predIndex])
				}
			}
			in := out.Copy()
			// Walk instructions backward: kill defs, gen uses. φs define at
			// entry and their args are not local uses.
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				ins := b.Instrs[i]
				if ins.Dst != ir.NoReg {
					in.Clear(ins.Dst)
				}
				if ins.Op != ir.OpPhi {
					for _, a := range ins.Args {
						in.Set(a)
					}
				}
			}
			if lv.LiveOut[bi].Or(out) {
				changed = true
			}
			if lv.LiveIn[bi].Or(in) {
				changed = true
			}
		}
	}
	return lv
}

// Maxlive computes the maximum number of simultaneously live registers over
// all program points: between any two instructions, at block boundaries,
// and just after the φ block (where all φ destinations are live together
// with the live-ins). For a strict SSA program this equals ω of the
// interference graph (Theorem 1).
func (lv *Liveness) Maxlive() int {
	max := 0
	note := func(c int) {
		if c > max {
			max = c
		}
	}
	for bi, b := range lv.f.Blocks {
		live := lv.LiveOut[bi].Copy()
		note(live.Count())
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ins := b.Instrs[i]
			if ins.Op == ir.OpPhi {
				// The φ zone: all φ dsts are simultaneously live at block
				// entry (conceptually defined together). Count them with
				// the current live set, then stop: the remaining entries
				// are φs whose dsts we add below.
				for j := 0; j <= i; j++ {
					if b.Instrs[j].Op == ir.OpPhi && b.Instrs[j].Dst != ir.NoReg {
						live.Set(b.Instrs[j].Dst)
					}
				}
				note(live.Count())
				break
			}
			if ins.Dst != ir.NoReg {
				live.Clear(ins.Dst)
			}
			for _, a := range ins.Args {
				live.Set(a)
			}
			note(live.Count())
		}
	}
	return max
}
