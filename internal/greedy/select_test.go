package greedy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func TestSelectColorsReverseOrder(t *testing.T) {
	// Path 0-1-2 with elimination order [0, 1, 2]: select colors 2 first.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	order, remaining := Eliminate(g, 2)
	if len(remaining) != 0 {
		t.Fatal("path must fully eliminate at k=2")
	}
	col, ok := Select(g, 2, order, false)
	if !ok || !col.Proper(g) {
		t.Fatalf("select failed: %v %v", col, ok)
	}
}

func TestSelectRejectsBadPins(t *testing.T) {
	g := graph.New(2)
	g.SetPrecolored(0, 5)
	if _, ok := Select(g, 3, nil, false); ok {
		t.Fatal("pin >= k must fail")
	}
	h := graph.New(2)
	h.AddEdge(0, 1)
	h.SetPrecolored(0, 1)
	h.SetPrecolored(1, 1)
	if _, ok := Select(h, 3, nil, false); ok {
		t.Fatal("conflicting pinned skeleton must fail")
	}
}

func TestSelectPartialOrderGuard(t *testing.T) {
	// Select with an order that is NOT a complete elimination order: the
	// guard must return false rather than panic when a vertex runs out of
	// colors. K3 with k=2 and all three vertices in the order.
	g := graph.New(3)
	g.AddClique(0, 1, 2)
	_, ok := Select(g, 2, []graph.V{0, 1, 2}, false)
	if ok {
		t.Fatal("K3 cannot be 2-colored")
	}
}

// Biased select never produces an improper coloring and never coalesces
// less than... it CAN coalesce less in principle, but must stay proper and
// within k colors.
func TestQuickBiasedSelectProper(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		graph.SprinkleAffinities(rng, g, n, 5)
		k := ColoringNumber(g)
		col, ok := ColorBiased(g, k)
		if !ok {
			return false
		}
		return col.Proper(g) && col.MaxColor() < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Witness is consistent with Eliminate across random graphs: the witness
// is empty exactly when elimination completes.
func TestQuickWitnessIff(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%18) + 1
		k := int(kRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		_, remaining := Eliminate(g, k)
		w := Witness(g, k)
		return (len(remaining) == 0) == (w == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
