// Package greedy implements greedy-k-colorability, the graph class at the
// center of the paper's complexity map.
//
// A graph is greedy-k-colorable iff repeatedly removing some vertex of
// degree < k (Chaitin's simplification scheme) empties the graph. The order
// of removals does not matter. The smallest k for which a graph is
// greedy-k-colorable is the coloring number col(G) (also known as
// 1 + degeneracy); G is NOT greedy-k-colorable iff it has a subgraph whose
// minimum degree is at least k (Jensen & Toft, Thm 12 — quoted as the
// "classical result" in §2.2 of the paper). Witness extracts that subgraph.
//
// Precolored vertices (machine registers) are never simplified; they are
// assigned their pinned colors first during Select. This matches how
// Chaitin-style allocators treat physical registers.
package greedy

import (
	"regcoal/internal/graph"
)

// Eliminate runs Chaitin's simplification scheme: while some non-precolored
// vertex has degree < k in the current graph, remove it. It returns the
// removal order and the vertices that could not be removed (excluding
// precolored vertices, which are never candidates).
//
// The removable set is unique (greedy simplification is confluent), but
// the order is not; Eliminate always removes the smallest eligible vertex
// id first so that the order — and every coloring built from it by Select
// — is deterministic. Without this, the worklist would fill in map
// iteration order and biased-coloring weights would differ run to run.
//
// The graph is greedy-k-colorable iff remaining is empty and the graph has
// no precolored vertices blocking it (see IsGreedyKColorable). Eliminate
// runs in O(V + E log V).
func Eliminate(g *graph.Graph, k int) (order, remaining []graph.V) {
	ar := graph.GetArena()
	defer ar.Release()
	o, r := eliminate(ar, g, k)
	// The arena owns o and r; copy what escapes (preserving the nil-when-
	// empty convention of the original implementation).
	if len(o) > 0 {
		order = append([]graph.V(nil), o...)
	}
	if len(r) > 0 {
		remaining = append([]graph.V(nil), r...)
	}
	return order, remaining
}

// eliminate is Eliminate over pooled arena scratch. The returned slices
// are arena-owned: valid only until the arena's Release/Reset. Callers
// on the zero-alloc path (IsGreedyKColorable, color) consume them before
// releasing; Eliminate copies them out.
func eliminate(ar *graph.Arena, g *graph.Graph, k int) (order, remaining []graph.V) {
	return EliminateMasked(ar, g, k, nil)
}

// EliminateMasked runs the simplification scheme over the subgraph
// induced by alive (nil = every vertex), on arena scratch: vertices
// outside the mask are treated as already removed and degrees are
// counted within the mask. This single implementation carries the
// elimination discipline — smallest-eligible-id-first via a min-heap —
// for both the whole-graph callers here and the spill package's
// residual coloring, so the two can never drift apart. The returned
// order and remaining slices are arena-owned: valid only until the
// arena's Release/Reset.
func EliminateMasked(ar *graph.Arena, g *graph.Graph, k int, alive graph.Bits) (order, remaining []graph.V) {
	n := g.N()
	deg := ar.Ints(n)
	removed := ar.Bools(n)
	pinned := ar.Bools(n)
	for v := 0; v < n; v++ {
		if alive != nil && !alive.Get(graph.V(v)) {
			removed[v] = true
			continue
		}
		if alive == nil {
			deg[v] = g.Degree(graph.V(v))
		} else {
			deg[v] = g.MaskedDegree(graph.V(v), alive)
		}
		_, pinned[v] = g.Precolored(graph.V(v))
	}
	order = ar.Vs(n)
	// Min-heap of eligible vertex ids. The inWork guard keeps entries
	// distinct, so the heap never exceeds n and the arena buffer never
	// regrows.
	work := ar.Vs(n)
	push := func(v graph.V) {
		work = append(work, v)
		for i := len(work) - 1; i > 0; {
			parent := (i - 1) / 2
			if work[parent] <= work[i] {
				break
			}
			work[parent], work[i] = work[i], work[parent]
			i = parent
		}
	}
	pop := func() graph.V {
		v := work[0]
		last := len(work) - 1
		work[0] = work[last]
		work = work[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && work[l] < work[small] {
				small = l
			}
			if r < last && work[r] < work[small] {
				small = r
			}
			if small == i {
				break
			}
			work[i], work[small] = work[small], work[i]
			i = small
		}
		return v
	}
	inWork := ar.Bools(n)
	for v := 0; v < n; v++ {
		if !removed[v] && !pinned[v] && deg[v] < k {
			push(graph.V(v))
			inWork[v] = true
		}
	}
	for len(work) > 0 {
		v := pop()
		inWork[v] = false
		if removed[v] || pinned[v] || deg[v] >= k {
			continue
		}
		removed[v] = true
		order = append(order, v)
		g.ForEachNeighbor(v, func(w graph.V) {
			if removed[w] {
				return
			}
			deg[w]--
			if !pinned[w] && deg[w] < k && !inWork[w] {
				push(w)
				inWork[w] = true
			}
		})
	}
	remaining = ar.Vs(n)
	for v := 0; v < n; v++ {
		if !removed[v] && !pinned[v] {
			remaining = append(remaining, graph.V(v))
		}
	}
	return order, remaining
}

// IsGreedyKColorable reports whether g is greedy-k-colorable: the
// simplification scheme removes every non-precolored vertex, and the
// precolored vertices themselves are consistently colored with colors < k.
// For graphs without precoloring this is exactly the paper's definition.
func IsGreedyKColorable(g *graph.Graph, k int) bool {
	if k <= 0 {
		return g.N() == 0
	}
	for v := 0; v < g.N(); v++ {
		c, ok := g.Precolored(graph.V(v))
		if !ok {
			continue
		}
		if c >= k {
			return false
		}
		bad := false
		g.ForEachNeighbor(graph.V(v), func(w graph.V) {
			if cw, okw := g.Precolored(w); okw && cw == c {
				bad = true
			}
		})
		if bad {
			return false
		}
	}
	ar := graph.GetArena()
	_, remaining := eliminate(ar, g, k)
	ok := len(remaining) == 0
	ar.Release()
	return ok
}

// Witness returns a certificate that g is not greedy-k-colorable: a vertex
// set inducing a subgraph in which every vertex has degree >= k (within the
// set, counting precolored vertices as permanent). It returns nil when g is
// greedy-k-colorable. This is the subgraph G' with δ(G') >= k from the
// classical characterization.
func Witness(g *graph.Graph, k int) []graph.V {
	_, remaining := Eliminate(g, k)
	if len(remaining) == 0 {
		return nil
	}
	// remaining plus the precolored vertices they lean on: every vertex in
	// `remaining` has >= k live neighbors among remaining ∪ precolored.
	keep := graph.NewBits(g.N())
	for _, v := range remaining {
		keep.Set(v)
	}
	for v := 0; v < g.N(); v++ {
		if _, ok := g.Precolored(graph.V(v)); ok {
			keep.Set(graph.V(v))
		}
	}
	out := make([]graph.V, 0, keep.Count())
	keep.ForEach(func(v graph.V) {
		out = append(out, v)
	})
	return out
}

// SmallestLastOrder returns a smallest-last vertex order: x_i is a vertex of
// minimum degree in the subgraph induced by the not-yet-chosen vertices,
// and the returned slice lists removals first-to-last. Precoloring is
// ignored — this is a pure graph-theoretic order. Runs in O(V + E) using
// degree buckets.
func SmallestLastOrder(g *graph.Graph) []graph.V {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.V(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]graph.V, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], graph.V(v))
	}
	removed := make([]bool, n)
	order := make([]graph.V, 0, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale entry: the vertex moved to a lower bucket.
			continue
		}
		removed[v] = true
		order = append(order, v)
		g.ForEachNeighbor(v, func(w graph.V) {
			if removed[w] {
				return
			}
			deg[w]--
			buckets[deg[w]] = append(buckets[deg[w]], w)
			if deg[w] < cur {
				cur = deg[w]
			}
		})
	}
	return order
}

// ColoringNumber computes col(G) = 1 + max over the smallest-last order of
// the degree at removal time = the smallest k such that G is
// greedy-k-colorable. col of the empty graph is 0.
func ColoringNumber(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.V(v))
	}
	order := SmallestLastOrder(g)
	// Recompute degrees at removal time by replaying the order.
	removed := make([]bool, n)
	cur := make([]int, n)
	copy(cur, deg)
	maxMin := 0
	for _, v := range order {
		if cur[v] > maxMin {
			maxMin = cur[v]
		}
		removed[v] = true
		g.ForEachNeighbor(v, func(w graph.V) {
			if !removed[w] {
				cur[w]--
			}
		})
	}
	return maxMin + 1
}

// Select colors the vertices of order in reverse (Chaitin's select phase),
// assuming order came from Eliminate(g, k) with no remaining vertices.
// Precolored vertices are assigned their pinned colors first. When biased
// is true, each vertex prefers a color already given to one of its affinity
// partners (biased coloring, §1 of the paper) as long as that color is
// available; otherwise the lowest available color is used.
//
// It returns ok=false if some pinned color is >= k or two interfering
// precolored vertices share a color; given a complete elimination order,
// non-precolored vertices always find a color.
func Select(g *graph.Graph, k int, order []graph.V, biased bool) (graph.Coloring, bool) {
	col := graph.NewColoring(g.N())
	for v := 0; v < g.N(); v++ {
		if c, ok := g.Precolored(graph.V(v)); ok {
			if c >= k {
				return nil, false
			}
			col[v] = c
		}
	}
	// Verify the precolored skeleton is proper.
	for v := 0; v < g.N(); v++ {
		if col[v] == graph.NoColor {
			continue
		}
		conflict := false
		g.ForEachNeighbor(graph.V(v), func(w graph.V) {
			if col[w] != graph.NoColor && col[w] == col[v] && w != graph.V(v) {
				conflict = true
			}
		})
		if conflict {
			return nil, false
		}
	}
	used := make([]bool, k)
	affinityPartners := make(map[graph.V][]graph.V)
	if biased {
		for _, a := range g.Affinities() {
			affinityPartners[a.X] = append(affinityPartners[a.X], a.Y)
			affinityPartners[a.Y] = append(affinityPartners[a.Y], a.X)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for c := range used {
			used[c] = false
		}
		g.ForEachNeighbor(v, func(w graph.V) {
			if col[w] != graph.NoColor && col[w] < k {
				used[col[w]] = true
			}
		})
		chosen := -1
		if biased {
			for _, p := range affinityPartners[v] {
				if col[p] != graph.NoColor && col[p] < k && !used[col[p]] {
					chosen = col[p]
					break
				}
			}
		}
		if chosen == -1 {
			for c := 0; c < k; c++ {
				if !used[c] {
					chosen = c
					break
				}
			}
		}
		if chosen == -1 {
			// Impossible when order is a complete elimination order; guard
			// anyway for callers that pass optimistic orders.
			return nil, false
		}
		col[v] = chosen
	}
	return col, true
}

// Color runs the full greedy pipeline (Eliminate + Select) and returns a
// proper k-coloring, or ok=false when g is not greedy-k-colorable.
func Color(g *graph.Graph, k int) (graph.Coloring, bool) {
	return color(g, k, false)
}

// ColorBiased is Color with biased selection: affinity partners try to share
// colors, so the resulting coloring coalesces more moves at no cost in
// colorability.
func ColorBiased(g *graph.Graph, k int) (graph.Coloring, bool) {
	return color(g, k, true)
}

func color(g *graph.Graph, k int, biased bool) (graph.Coloring, bool) {
	if k <= 0 {
		if g.N() == 0 {
			return graph.Coloring{}, true
		}
		return nil, false
	}
	ar := graph.GetArena()
	defer ar.Release()
	order, remaining := eliminate(ar, g, k)
	if len(remaining) > 0 {
		return nil, false
	}
	return Select(g, k, order, biased)
}

// OptimisticColor implements the Briggs optimistic variant of the select
// phase: vertices of degree >= k are pushed anyway (as potential spills) and
// colored if, at select time, their neighbors happen to leave a color free.
// It returns the partial coloring and the vertices left uncolored (the
// actual spills). Precolored vertices keep their pins.
func OptimisticColor(g *graph.Graph, k int) (graph.Coloring, []graph.V) {
	n := g.N()
	if k <= 0 {
		return graph.NewColoring(n), g.Vertices()
	}
	deg := make([]int, n)
	removed := make([]bool, n)
	pinned := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.V(v))
		_, pinned[v] = g.Precolored(graph.V(v))
	}
	order := make([]graph.V, 0, n)
	for len(order) < n {
		// Prefer a low-degree non-pinned vertex; otherwise pick the
		// max-degree one as a potential spill (cheapest heuristic).
		best := graph.V(-1)
		bestDeg := -1
		for v := 0; v < n; v++ {
			if removed[v] || pinned[v] {
				continue
			}
			if deg[v] < k {
				best = graph.V(v)
				break
			}
			if deg[v] > bestDeg {
				best, bestDeg = graph.V(v), deg[v]
			}
		}
		if best == graph.V(-1) {
			break // only pinned vertices left
		}
		removed[best] = true
		order = append(order, best)
		g.ForEachNeighbor(best, func(w graph.V) {
			if !removed[w] {
				deg[w]--
			}
		})
	}
	col := graph.NewColoring(n)
	for v := 0; v < n; v++ {
		if c, ok := g.Precolored(graph.V(v)); ok && c < k {
			col[v] = c
		}
	}
	var spilled []graph.V
	used := make([]bool, k)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for c := range used {
			used[c] = false
		}
		g.ForEachNeighbor(v, func(w graph.V) {
			if col[w] != graph.NoColor && col[w] < k {
				used[col[w]] = true
			}
		})
		assigned := false
		for c := 0; c < k; c++ {
			if !used[c] {
				col[v] = c
				assigned = true
				break
			}
		}
		if !assigned {
			spilled = append(spilled, v)
		}
	}
	return col, spilled
}
