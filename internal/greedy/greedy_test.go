package greedy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	g.AddClique(g.Vertices()...)
	return g
}

func TestIsGreedyKColorableBasics(t *testing.T) {
	empty := graph.New(0)
	if !IsGreedyKColorable(empty, 0) || !IsGreedyKColorable(empty, 3) {
		t.Fatal("empty graph is greedy-k-colorable for all k")
	}
	single := graph.New(1)
	if IsGreedyKColorable(single, 0) {
		t.Fatal("nonempty graph is not greedy-0-colorable")
	}
	if !IsGreedyKColorable(single, 1) {
		t.Fatal("isolated vertex is greedy-1-colorable")
	}

	// K4: greedy-4-colorable, not greedy-3-colorable.
	k4 := complete(4)
	if IsGreedyKColorable(k4, 3) {
		t.Fatal("K4 greedy-3-colorable")
	}
	if !IsGreedyKColorable(k4, 4) {
		t.Fatal("K4 not greedy-4-colorable")
	}

	// C5: every vertex has degree 2, so greedy-3-colorable but not
	// greedy-2-colorable (even though it needs 3 colors anyway). C4 is
	// 2-colorable but NOT greedy-2-colorable — the classic gap between
	// χ and col.
	c5 := cycle(5)
	if IsGreedyKColorable(c5, 2) {
		t.Fatal("C5 greedy-2-colorable")
	}
	if !IsGreedyKColorable(c5, 3) {
		t.Fatal("C5 not greedy-3-colorable")
	}
	c4 := cycle(4)
	if IsGreedyKColorable(c4, 2) {
		t.Fatal("C4 is 2-colorable but must not be greedy-2-colorable")
	}
}

func TestEliminateOrderComplete(t *testing.T) {
	// A path a-b-c: eliminate with k=2 removes everything.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	order, remaining := Eliminate(g, 2)
	if len(remaining) != 0 {
		t.Fatalf("remaining=%v", remaining)
	}
	if len(order) != 3 {
		t.Fatalf("order=%v", order)
	}
	seen := map[graph.V]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatal("vertex removed twice")
		}
		seen[v] = true
	}
}

func TestWitness(t *testing.T) {
	// K4 plus a pendant: witness for k=3 must be exactly the K4.
	g := complete(4)
	p := g.AddVertex()
	g.AddEdge(p, 0)
	w := Witness(g, 3)
	if len(w) != 4 {
		t.Fatalf("witness=%v, want the K4", w)
	}
	for _, v := range w {
		if v == p {
			t.Fatal("pendant vertex in witness")
		}
	}
	// Witness property: every vertex has >= k neighbors inside the witness.
	inW := map[graph.V]bool{}
	for _, v := range w {
		inW[v] = true
	}
	for _, v := range w {
		count := 0
		for _, u := range g.Neighbors(v) {
			if inW[u] {
				count++
			}
		}
		if count < 3 {
			t.Fatalf("witness vertex %d has only %d internal neighbors", int(v), count)
		}
	}
	if Witness(g, 4) != nil {
		t.Fatal("witness should be nil when greedy-k-colorable")
	}
}

func TestColoringNumber(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.New(0), 0},
		{graph.New(3), 1},
		{complete(4), 4},
		{cycle(5), 3},
		{cycle(4), 3}, // col(C4)=3 although χ(C4)=2
	}
	for i, c := range cases {
		if got := ColoringNumber(c.g); got != c.want {
			t.Errorf("case %d: col=%d, want %d", i, got, c.want)
		}
	}
	// Path: col = 2.
	path := graph.New(5)
	for i := 0; i < 4; i++ {
		path.AddEdge(graph.V(i), graph.V(i+1))
	}
	if got := ColoringNumber(path); got != 2 {
		t.Errorf("col(P5)=%d, want 2", got)
	}
}

// col(G) is exactly the threshold of greedy-k-colorability.
func TestQuickColThreshold(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		col := ColoringNumber(g)
		if !IsGreedyKColorable(g, col) {
			return false
		}
		if col > 1 && IsGreedyKColorable(g, col-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// col is monotone under adding edges.
func TestQuickColMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.2)
		before := ColoringNumber(g)
		// Add one random absent edge, if any.
		for tries := 0; tries < 40; tries++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				break
			}
		}
		return ColoringNumber(g) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestColorProducesProperColoring(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		k := ColoringNumber(g)
		col, ok := Color(g, k)
		if !ok {
			return false
		}
		return col.Proper(g) && col.MaxColor() < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestColorFailsBelowCol(t *testing.T) {
	k4 := complete(4)
	if _, ok := Color(k4, 3); ok {
		t.Fatal("coloring K4 with 3 colors should fail")
	}
	if _, ok := Color(k4, 0); ok {
		t.Fatal("k=0 with vertices should fail")
	}
}

func TestColorRespectsPrecoloring(t *testing.T) {
	// Triangle with two precolored corners.
	g := complete(3)
	g.SetPrecolored(0, 0)
	g.SetPrecolored(1, 2)
	col, ok := Color(g, 3)
	if !ok {
		t.Fatal("3-coloring a triangle with consistent pins should work")
	}
	if col[0] != 0 || col[1] != 2 || col[2] != 1 {
		t.Fatalf("coloring %v violates pins", col)
	}
	// Pin out of range of k.
	g2 := graph.New(1)
	g2.SetPrecolored(0, 5)
	if _, ok := Color(g2, 3); ok {
		t.Fatal("pin >= k must fail")
	}
	// Conflicting pins on interfering vertices.
	g3 := complete(2)
	g3.SetPrecolored(0, 1)
	g3.SetPrecolored(1, 1)
	if _, ok := Color(g3, 3); ok {
		t.Fatal("conflicting pins must fail")
	}
	if IsGreedyKColorable(g3, 3) {
		t.Fatal("conflicting pins: not greedy-colorable")
	}
}

func TestBiasedColoringCoalescesMore(t *testing.T) {
	// Path u - x - v with affinity (u, v): unbiased lowest-color select
	// may separate u and v; biased select gives them the same color.
	g := graph.NewNamed("u", "x", "v")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddAffinity(0, 2, 10)

	biased, ok := ColorBiased(g, 2)
	if !ok {
		t.Fatal("path is greedy-2-colorable")
	}
	n, w := biased.CoalescedMoves(g)
	if n != 1 || w != 10 {
		t.Fatalf("biased coloring should coalesce the move, got n=%d w=%d (coloring %v)", n, w, biased)
	}
}

func TestSmallestLastOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomER(rng, 40, 0.15)
	order := SmallestLastOrder(g)
	if len(order) != g.N() {
		t.Fatalf("order has %d vertices, want %d", len(order), g.N())
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate in order")
		}
		seen[v] = true
	}
}

func TestOptimisticColor(t *testing.T) {
	// K4 with k=3: exactly one vertex must spill.
	k4 := complete(4)
	col, spilled := OptimisticColor(k4, 3)
	if len(spilled) != 1 {
		t.Fatalf("spilled=%v, want one vertex", spilled)
	}
	colored := 0
	for _, c := range col {
		if c != graph.NoColor {
			colored++
		}
	}
	if colored != 3 {
		t.Fatalf("colored %d vertices, want 3", colored)
	}
	// A greedy-k-colorable graph must spill nothing.
	c5 := cycle(5)
	if _, spilled := OptimisticColor(c5, 3); len(spilled) != 0 {
		t.Fatalf("C5 with k=3 spilled %v", spilled)
	}
	// Optimism can win where pessimism spills: C4 with k=2 is 2-colorable
	// though not greedy-2-colorable; optimistic select colors it fully.
	c4 := cycle(4)
	if col, spilled := OptimisticColor(c4, 2); len(spilled) != 0 || !col.Proper(c4) {
		t.Fatalf("optimistic coloring of C4 with k=2 failed: %v spilled %v", col, spilled)
	}
}

// Property 2 of the paper, greedy part: G greedy-k-colorable iff CliqueLift
// by p is greedy-(k+p)-colorable.
func TestQuickProperty2Greedy(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%15) + 1
		p := int(pRaw % 4)
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.35)
		lifted, _ := g.CliqueLift(p)
		for k := 1; k <= n+1; k++ {
			if IsGreedyKColorable(g, k) != IsGreedyKColorable(lifted, k+p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateDoesNotMutateGraph(t *testing.T) {
	g := cycle(6)
	edgesBefore := g.E()
	Eliminate(g, 3)
	if g.E() != edgesBefore {
		t.Fatal("Eliminate mutated the graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEliminateDeterministic pins the deterministic-order contract of
// Eliminate: the removal order (and hence any coloring Select builds from
// it, biased selection included) must not depend on adjacency-map
// iteration order. Cloning rebuilds the adjacency maps, so under the old
// worklist-stack implementation the orders below would diverge.
func TestEliminateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		g := graph.RandomER(rng, 30, 0.2)
		graph.SprinkleAffinities(rng, g, 20, 9)
		k := ColoringNumber(g)
		order1, rem1 := Eliminate(g, k)
		order2, rem2 := Eliminate(g.Clone(), k)
		if len(rem1) != 0 || len(rem2) != 0 {
			t.Fatalf("trial %d: not greedy-colorable at col(G)", trial)
		}
		for i := range order1 {
			if order1[i] != order2[i] {
				t.Fatalf("trial %d: elimination order differs at %d: %v vs %v", trial, i, order1, order2)
			}
		}
		col1, ok1 := ColorBiased(g, k)
		col2, ok2 := ColorBiased(g.Clone(), k)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d: biased coloring failed", trial)
		}
		for v := range col1 {
			if col1[v] != col2[v] {
				t.Fatalf("trial %d: biased coloring differs at vertex %d", trial, v)
			}
		}
	}
}
