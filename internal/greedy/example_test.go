package greedy_test

import (
	"fmt"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// ExampleColor runs the Chaitin pipeline (eliminate + select) on a
// 4-cycle, which is greedy-2-colorable... once any vertex of degree < k
// exists. A 4-cycle has minimum degree 2, so it needs k = 3 for the
// greedy scheme even though its chromatic number is 2 — the gap between
// colorable and greedy-colorable the paper's complexity map is about.
func ExampleColor() {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)

	_, ok2 := greedy.Color(g, 2)
	col, ok3 := greedy.Color(g, 3)
	fmt.Println("greedy-2-colorable:", ok2)
	fmt.Println("greedy-3-colorable:", ok3)
	fmt.Println("proper:", col[0] != col[1] && col[1] != col[2] && col[2] != col[3] && col[3] != col[0])
	// Output:
	// greedy-2-colorable: false
	// greedy-3-colorable: true
	// proper: true
}
