package session_test

// The session layer's central correctness property, tested at corpus
// scale: a delta session's incremental solve (memoized components,
// BFS-bounded dirty regions, reused untouched components) must equal —
// in every cost column — a fresh solve of the edited graph built from
// scratch. The fresh reference is produced by the naive edit model in
// internal/corpus, whose compacted rebuild iterates Go maps, so every
// comparison also certifies insensitivity to map-order-shuffled graph
// construction.

import (
	"testing"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/session"
)

// scriptsPerFamily × every corpus family is the differential load the
// issue pins: at least 64 independent random edit scripts per family.
const (
	scriptsPerFamily = 64
	scriptSteps      = 24
	checkpointEvery  = 8
)

type costs struct {
	colorable  bool
	numClasses int
	coalescedW int64
	remainingW int64
	coalescedM int
	remainingM int
}

func costsOf(sol *session.Solve) costs {
	return costs{
		colorable:  sol.Colorable,
		numClasses: sol.NumClasses,
		coalescedW: sol.CoalescedWeight,
		remainingW: sol.RemainingWeight,
		coalescedM: sol.CoalescedMoves,
		remainingM: sol.RemainingMoves,
	}
}

// freshCosts solves the edited graph from scratch: a brand-new session
// whose initial solve is a full fresh pass over a map-order rebuild.
func freshCosts(t *testing.T, edited *graph.File) costs {
	t.Helper()
	s, err := session.New("fresh", edited, 0, session.SolverConfig{}, "", nil)
	if err != nil {
		t.Fatalf("fresh session over edited graph: %v", err)
	}
	var c costs
	s.View(func(sol *session.Solve) { c = costsOf(sol) })
	return c
}

// shadow tracks session-id-space alive vertices and interference edges
// alongside the script — an independent third model used only to check
// that the incremental coloring is proper.
type shadow struct {
	n     int
	alive map[int]bool
	edges map[[2]int]bool
}

func newShadow(f *graph.File) *shadow {
	sh := &shadow{n: f.G.N(), alive: make(map[int]bool), edges: make(map[[2]int]bool)}
	for v := 0; v < sh.n; v++ {
		sh.alive[v] = true
	}
	for _, e := range f.G.Edges() {
		sh.edges[[2]int{int(e[0]), int(e[1])}] = true
	}
	return sh
}

func (sh *shadow) apply(d session.Delta) {
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	switch d.Op {
	case session.OpAddVertex:
		sh.alive[sh.n] = true
		sh.n++
	case session.OpRemoveVertex:
		delete(sh.alive, d.U)
		for e := range sh.edges {
			if e[0] == d.U || e[1] == d.U {
				delete(sh.edges, e)
			}
		}
	case session.OpAddEdge:
		sh.edges[key(d.U, d.V)] = true
	case session.OpRemoveEdge:
		delete(sh.edges, key(d.U, d.V))
	}
}

// checkProper verifies the incremental solve is internally consistent:
// when colorable, every vertex of a class shares one in-range color and
// interfering vertices get distinct colors.
func (sh *shadow) checkProper(t *testing.T, sol *session.Solve) {
	t.Helper()
	if !sol.Colorable {
		return
	}
	for v := range sh.alive {
		c := sol.Coloring[v]
		if c < 0 || c >= sol.K {
			t.Fatalf("alive vertex %d has color %d outside [0,%d)", v, c, sol.K)
		}
		if sol.ClassID[v] < 0 || sol.ClassID[v] >= sol.NumClasses {
			t.Fatalf("alive vertex %d has class %d outside [0,%d)", v, sol.ClassID[v], sol.NumClasses)
		}
	}
	classColor := make(map[int]int)
	for v := range sh.alive {
		id := sol.ClassID[v]
		if c, seen := classColor[id]; seen && c != sol.Coloring[v] {
			t.Fatalf("class %d colored both %d and %d", id, c, sol.Coloring[v])
		} else if !seen {
			classColor[id] = sol.Coloring[v]
		}
	}
	for e := range sh.edges {
		if sol.Coloring[e[0]] == sol.Coloring[e[1]] {
			t.Fatalf("interfering pair (%d, %d) share color %d", e[0], e[1], sol.Coloring[e[0]])
		}
	}
}

// TestDifferentialIncrementalEqualsFresh is the issue's acceptance
// property: every corpus family × 64 random edit scripts, with the
// session's delta path compared against a from-scratch solve of the
// edited graph at every checkpoint along each script.
func TestDifferentialIncrementalEqualsFresh(t *testing.T) {
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range fams {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := fam.Generate(corpus.Params{Seed: 0xd1f5eed, Quick: true}, 0)
			if err != nil {
				t.Fatal(err)
			}
			f := inst.File
			if f.G.HasPrecolored() {
				t.Skipf("%s instances are precolored; sessions decline them", fam.Name)
			}
			nScripts := scriptsPerFamily
			if testing.Short() {
				nScripts = 8
			}
			for si := 0; si < nScripts; si++ {
				seed := int64(0x5c819700) + int64(si)*7919
				script := corpus.GenEditScript(f, 0, seed, scriptSteps)

				s, err := session.New("diff", f, 0, session.SolverConfig{}, "", nil)
				if err != nil {
					t.Fatalf("script %d: session over %s: %v", si, inst.Name, err)
				}
				sh := newShadow(f)
				for at := 0; at < len(script); at += checkpointEvery {
					end := at + checkpointEvery
					if end > len(script) {
						end = len(script)
					}
					// Apply the chunk one delta per batch so the solver walks
					// the incremental path repeatedly, not one big fresh pass.
					for i := at; i < end; i++ {
						if _, err := s.Apply(script[i : i+1]); err != nil {
							t.Fatalf("script %d seed %d: delta %d (%+v): %v", si, seed, i, script[i], err)
						}
						sh.apply(script[i])
					}
					var inc costs
					var path session.Path
					s.View(func(sol *session.Solve) {
						inc = costsOf(sol)
						path = sol.Path
						sh.checkProper(t, sol)
					})
					fresh := freshCosts(t, corpus.ApplyEditScript(f, 0, script[:end]))
					if inc != fresh {
						t.Fatalf("script %d seed %d after %d deltas (path %q):\n incremental %+v\n fresh       %+v",
							si, seed, end, path, inc, fresh)
					}
				}
			}
		})
	}
}
