package session

import (
	"container/list"
	"net/http"
	"strconv"
	"sync"
	"time"

	"regcoal/internal/graph"
	"regcoal/internal/singleflight"
)

// StoreConfig parameterizes a Store. Zero values take defaults.
type StoreConfig struct {
	// MaxSessions caps live sessions; creating past the cap evicts the
	// least-recently-used session (default 256).
	MaxSessions int
	// TTL expires sessions idle longer than this (default 15 minutes).
	TTL time.Duration
	// Solver bounds each session's incremental machinery.
	Solver SolverConfig
	// now overrides the clock in tests.
	now func() time.Time
}

func (c *StoreConfig) fillDefaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	c.Solver.fillDefaults()
	if c.now == nil {
		c.now = time.Now
	}
}

// Store owns the live sessions: id minting, TTL expiry, LRU eviction,
// and the per-session singleflight that collapses concurrent duplicates
// of one versioned delta batch.
type Store struct {
	mu      sync.Mutex
	cfg     StoreConfig
	byID    map[string]*list.Element // of *Session
	ll      *list.List               // front = most recently used
	idCtr   uint64
	idSeed  uint64
	flights singleflight.Group
	metrics Metrics

	hookMu    sync.Mutex
	evictHook func(id string)
}

// SetEvictHook registers fn to run after each LRU eviction (capacity
// pressure, not TTL expiry or Close) with the evicted session's id. The
// cluster layer uses it to migrate an evicted session's op log to its
// replica set before the state becomes unreachable. fn runs outside the
// store lock and must not call back into the Store synchronously with
// work that needs the evicted session — it is already gone.
func (st *Store) SetEvictHook(fn func(id string)) {
	st.hookMu.Lock()
	st.evictHook = fn
	st.hookMu.Unlock()
}

func (st *Store) notifyEvict(ids []string) {
	if len(ids) == 0 {
		return
	}
	st.hookMu.Lock()
	fn := st.evictHook
	st.hookMu.Unlock()
	if fn == nil {
		return
	}
	for _, id := range ids {
		fn(id)
	}
}

// NewStore builds an empty Store.
func NewStore(cfg StoreConfig) *Store {
	cfg.fillDefaults()
	return &Store{
		cfg:    cfg,
		byID:   make(map[string]*list.Element),
		ll:     list.New(),
		idSeed: uint64(time.Now().UnixNano()),
	}
}

// Metrics exposes the session counter set.
func (st *Store) Metrics() *Metrics { return &st.metrics }

// Len reports the live session count.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ll.Len()
}

// mintID produces a unique session id (splitmix64 over a start-time seed
// and a counter; uniqueness within the store is what matters).
func (st *Store) mintID() string {
	st.idCtr++
	z := st.idSeed + st.idCtr*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return "s-" + strconv.FormatUint(z, 16)
}

// Create builds a session over base instance f (k overrides f.K when
// positive), registers it, and returns it with its initial solve done.
// baseHash is the WL canonical hash of f — the cluster routing key.
func (st *Store) Create(f *graph.File, k int, baseHash string) (*Session, error) {
	st.mu.Lock()
	id := st.mintID()
	st.mu.Unlock()
	return st.CreateWithID(id, f, k, baseHash)
}

// CreateWithID is Create under a caller-chosen id: the replication path
// — a cluster secondary rebuilding a session from its replicated op log
// — must preserve the id the primary minted, so the client's handle
// survives a primary death. An id that is already live is a 409
// ClientError (the session does not need rebuilding).
func (st *Store) CreateWithID(id string, f *graph.File, k int, baseHash string) (*Session, error) {
	// Build outside the store lock: creation solves the base instance.
	s, err := New(id, f, k, st.cfg.Solver, baseHash, &st.metrics)
	if err != nil {
		return nil, err
	}

	st.mu.Lock()
	if _, exists := st.byID[id]; exists {
		st.mu.Unlock()
		return nil, Errf(http.StatusConflict, "session %q already exists", id)
	}
	now := st.cfg.now()
	st.expireLocked(now)
	s.lastUse = now
	st.byID[id] = st.ll.PushFront(s)
	var evicted []string
	for st.ll.Len() > st.cfg.MaxSessions {
		oldest := st.ll.Back()
		evicted = append(evicted, oldest.Value.(*Session).id)
		st.removeLocked(oldest)
		st.metrics.Evicted.Add(1)
	}
	st.mu.Unlock()
	st.notifyEvict(evicted)

	st.metrics.Created.Add(1)
	st.metrics.Active.Store(int64(st.Len()))
	return s, nil
}

// Get returns the live session by id, touching its LRU/TTL position. A
// missing, evicted, or expired id is a 404 ClientError.
func (st *Store) Get(id string) (*Session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.cfg.now()
	st.expireLocked(now)
	el, ok := st.byID[id]
	if !ok {
		return nil, Errf(http.StatusNotFound, "unknown session %q (never created, expired, or evicted)", id)
	}
	s := el.Value.(*Session)
	s.lastUse = now
	st.ll.MoveToFront(el)
	return s, nil
}

// Close removes a session. Unknown ids are a 404 ClientError.
func (st *Store) Close(id string) error {
	st.mu.Lock()
	el, ok := st.byID[id]
	if ok {
		st.removeLocked(el)
	}
	st.mu.Unlock()
	if !ok {
		return Errf(http.StatusNotFound, "unknown session %q (never created, expired, or evicted)", id)
	}
	st.metrics.Closed.Add(1)
	st.metrics.Active.Store(int64(st.Len()))
	return nil
}

// Apply routes a delta batch to its session. When version is
// non-negative it is an optimistic-concurrency guard AND a singleflight
// key: concurrent duplicates of the same (session, version) batch
// collapse onto one application, and both callers receive the same
// rendered value from render (which runs once, under the session lock).
// A negative version applies unconditionally.
func (st *Store) Apply(id string, version int64, deltas []Delta, render func(*Solve) (any, error)) (any, error) {
	s, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	run := func() (any, error) { return s.ApplyRender(version, deltas, render) }
	if version < 0 {
		return run()
	}
	v, err, _ := st.flights.Do(id+"|v"+strconv.FormatInt(version, 10), run)
	return v, err
}

// expireLocked drops sessions idle past the TTL. Caller holds st.mu.
func (st *Store) expireLocked(now time.Time) {
	for {
		el := st.ll.Back()
		if el == nil {
			break
		}
		s := el.Value.(*Session)
		if now.Sub(s.lastUse) <= st.cfg.TTL {
			break
		}
		st.removeLocked(el)
		st.metrics.Expired.Add(1)
	}
	st.metrics.Active.Store(int64(st.ll.Len()))
}

func (st *Store) removeLocked(el *list.Element) {
	s := el.Value.(*Session)
	delete(st.byID, s.id)
	st.ll.Remove(el)
}
