package session

// Unit tests for the migration wire format: ExportRecord validation (the
// truncation/duplication guard), Store.Export's live-state pinning, and
// Store.Import's replay delegation. The cluster layer's fuzz and
// differential tests cover the HTTP surface; these pin the pure logic.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

func validRecord() *ExportRecord {
	return &ExportRecord{
		SessionID: "s-abc",
		BaseHash:  "deadbeef",
		Version:   2,
		Create:    json.RawMessage(`{"op":"create"}`),
		Deltas:    []json.RawMessage{json.RawMessage(`{"deltas":[1]}`), json.RawMessage(`{"deltas":[2]}`)},
	}
}

func TestExportRecordValidate(t *testing.T) {
	if err := validRecord().Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ExportRecord)
		want string
	}{
		{"missing session id", func(r *ExportRecord) { r.SessionID = "" }, "missing session_id"},
		{"missing create", func(r *ExportRecord) { r.Create = nil }, "missing create"},
		{"create not JSON", func(r *ExportRecord) { r.Create = json.RawMessage(`{"op":`) }, "not valid JSON"},
		{"negative version", func(r *ExportRecord) { r.Version = -1 }, "negative version"},
		{"truncated log", func(r *ExportRecord) { r.Deltas = r.Deltas[:1] }, "truncated or duplicated"},
		{"duplicated log", func(r *ExportRecord) { r.Deltas = append(r.Deltas, r.Deltas[1]) }, "truncated or duplicated"},
		{"delta not JSON", func(r *ExportRecord) { r.Deltas[1] = json.RawMessage(`{`) }, "not valid JSON"},
		{"empty delta", func(r *ExportRecord) { r.Deltas[0] = nil }, "not valid JSON"},
	}
	for _, tc := range cases {
		rec := validRecord()
		tc.mut(rec)
		err := rec.Validate()
		if err == nil {
			t.Fatalf("%s: validated", tc.name)
		}
		var ce *ClientError
		if !errors.As(err, &ce) || ce.Status != http.StatusBadRequest {
			t.Fatalf("%s: want 400 ClientError, got %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestStoreExportPinsLiveState(t *testing.T) {
	st := NewStore(StoreConfig{MaxSessions: 4, TTL: time.Minute})
	s, err := st.CreateWithID("s-exp", base4(t), 0, "hash-exp")
	if err != nil {
		t.Fatal(err)
	}
	create := []byte(`{"op":"create","graph":{}}`)
	delta := []byte(`{"deltas":[{"op":"add_vertex"}]}`)

	rec, err := st.Export("s-exp", create, nil)
	if err != nil {
		t.Fatalf("export at version 0: %v", err)
	}
	if rec.SessionID != "s-exp" || rec.BaseHash != "hash-exp" || rec.Version != 0 || len(rec.Deltas) != 0 {
		t.Fatalf("export record %+v", rec)
	}
	if string(rec.Create) != string(create) {
		t.Fatalf("create body %s", rec.Create)
	}
	// The record must be a deep copy: mutating the caller's byte slices
	// after export must not corrupt it.
	create[0] = 'X'
	if string(rec.Create) == string(create) {
		t.Fatal("export aliased the caller's create body")
	}

	// Advance the live session; a log that didn't keep up is a 409, not
	// a silently stale export.
	if _, err := s.Apply([]Delta{{Op: OpAddVertex}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Export("s-exp", rec.Create, nil); err == nil {
		t.Fatal("export with lagging log succeeded")
	} else {
		var ce *ClientError
		if !errors.As(err, &ce) || ce.Status != http.StatusConflict {
			t.Fatalf("want 409 ClientError, got %v", err)
		}
	}
	rec2, err := st.Export("s-exp", rec.Create, [][]byte{delta})
	if err != nil {
		t.Fatalf("export at version 1: %v", err)
	}
	if rec2.Version != 1 || len(rec2.Deltas) != 1 || string(rec2.Deltas[0]) != string(delta) {
		t.Fatalf("export record %+v", rec2)
	}
	if err := rec2.Validate(); err != nil {
		t.Fatalf("exported record fails its own validation: %v", err)
	}

	// No create body in the log: the session cannot be reconstructed, so
	// exporting it would ship an unreplayable record.
	if _, err := st.Export("s-exp", nil, nil); err == nil {
		t.Fatal("export without create body succeeded")
	}
	// Unknown session: the store's own 404.
	if _, err := st.Export("s-nope", rec.Create, nil); err == nil {
		t.Fatal("export of unknown session succeeded")
	}
}

func TestStoreImportDelegatesToReplay(t *testing.T) {
	st := NewStore(StoreConfig{MaxSessions: 4, TTL: time.Minute})
	rec := validRecord()

	var gotID, gotHash string
	var gotCreate []byte
	var gotDeltas [][]byte
	err := st.Import(rec, func(id, baseHash string, create []byte, deltas [][]byte) error {
		gotID, gotHash, gotCreate, gotDeltas = id, baseHash, create, deltas
		return nil
	})
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if gotID != rec.SessionID || gotHash != rec.BaseHash {
		t.Fatalf("replay got id=%q hash=%q", gotID, gotHash)
	}
	if string(gotCreate) != string(rec.Create) || len(gotDeltas) != 2 {
		t.Fatalf("replay got create=%s deltas=%d", gotCreate, len(gotDeltas))
	}

	// A record that fails validation never reaches replay.
	bad := validRecord()
	bad.Deltas = bad.Deltas[:1]
	called := false
	err = st.Import(bad, func(string, string, []byte, [][]byte) error { called = true; return nil })
	if err == nil || called {
		t.Fatalf("invalid record: err=%v replayCalled=%v", err, called)
	}

	// Replay errors surface unchanged (the service layer owns their
	// status mapping).
	want := Errf(http.StatusConflict, "already live")
	err = st.Import(rec, func(string, string, []byte, [][]byte) error { return want })
	if !errors.Is(err, want) && err != want {
		t.Fatalf("replay error not surfaced: %v", err)
	}
}

func TestExportRecordJSONRoundTrip(t *testing.T) {
	rec := validRecord()
	body, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back ExportRecord
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if back.SessionID != rec.SessionID || back.BaseHash != rec.BaseHash ||
		back.Version != rec.Version || len(back.Deltas) != len(rec.Deltas) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped record invalid: %v", err)
	}
}
