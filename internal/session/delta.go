// Package session is the delta-solve layer: a client pins a frozen base
// interference graph (identified by its WL canonical hash) and streams
// edit deltas — add/remove vertex, add/remove edge, add/remove/reweight
// affinity, change k — against it. Each batch of deltas is validated
// atomically, applied to the session's working graph, and re-solved
// against the cached previous solve: the affected region is found by a
// BFS-bounded dirty set, unaffected connected components are reused
// verbatim, and recomputed components are answered from a content-
// fingerprint memo before falling back to an actual solve. The
// per-component solver runs ChordalIncremental (via ChordalProgressive)
// wherever the component stays chordal and falls back to the
// conservative/optimistic members otherwise; a full fresh solve over all
// components is the always-correct fallback when the affected region
// exceeds the session's budget. The steady-state apply path runs in
// pooled scratch (graph.Arena + session-owned reusable buffers) and is
// held to zero heap allocations by the alloc-gate suite.
//
// The HTTP surface (POST /v1/coalesce/delta) lives in internal/service;
// the cluster router keeps a session shard-sticky by routing on its base
// graph hash.
package session

import (
	"fmt"
	"net/http"

	"regcoal/internal/graph"
)

// Op names one kind of edit delta (the "op" field of the wire format).
type Op string

const (
	// OpAddVertex appends a fresh isolated vertex; its id is the
	// session's next unused vertex id (ids are never reused).
	OpAddVertex Op = "add_vertex"
	// OpRemoveVertex deletes vertex U: every incident edge and affinity
	// is dropped and the id becomes permanently dead.
	OpRemoveVertex Op = "remove_vertex"
	// OpAddEdge adds the interference edge {U, V}.
	OpAddEdge Op = "add_edge"
	// OpRemoveEdge removes the interference edge {U, V}.
	OpRemoveEdge Op = "remove_edge"
	// OpAddAffinity adds an affinity (move) between U and V with Weight.
	OpAddAffinity Op = "add_affinity"
	// OpRemoveAffinity removes the affinity between U and V.
	OpRemoveAffinity Op = "remove_affinity"
	// OpReweightAffinity sets the existing affinity {U, V} to Weight.
	OpReweightAffinity Op = "reweight_affinity"
	// OpSetK changes the session's register count to K.
	OpSetK Op = "set_k"
)

// Delta is one edit against a session's working graph — an element of
// the "deltas" array in the POST /v1/coalesce/delta wire format.
// Vertex ids are session ids: the base graph's request numbering for the
// original vertices, then consecutive fresh ids for added ones.
type Delta struct {
	Op     Op    `json:"op"`
	U      int   `json:"u,omitempty"`
	V      int   `json:"v,omitempty"`
	Weight int64 `json:"weight,omitempty"`
	K      int   `json:"k,omitempty"`
}

// ClientError is a structured client-side failure: invalid deltas (400),
// unknown or expired sessions (404), and version or base-hash conflicts
// (409). Everything a malformed or stale request can provoke maps here —
// never a panic, never a 5xx.
type ClientError struct {
	Status int
	Msg    string
}

func (e *ClientError) Error() string { return e.Msg }

// Errf builds a ClientError.
func Errf(status int, format string, args ...any) *ClientError {
	return &ClientError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

func errDelta(i int, format string, args ...any) *ClientError {
	return &ClientError{Status: http.StatusBadRequest,
		Msg: fmt.Sprintf("delta %d: %s", i, fmt.Sprintf(format, args...))}
}

// pairKey canonicalizes an unordered vertex pair for the affinity map.
func pairKey(u, v graph.V) [2]graph.V {
	if u > v {
		u, v = v, u
	}
	return [2]graph.V{u, v}
}

// insertSortedV inserts v into sorted slice s if absent.
func insertSortedV(s []graph.V, v graph.V) []graph.V {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// removeSortedV removes v from sorted slice s if present.
func removeSortedV(s []graph.V, v graph.V) []graph.V {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) || s[lo] != v {
		return s
	}
	copy(s[lo:], s[lo+1:])
	return s[:len(s)-1]
}
