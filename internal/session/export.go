package session

// Session export/import: the migration wire format. A session's entire
// state is a deterministic function of its raw op log — the create
// request body plus the ordered delta request bodies — so migrating a
// session between cluster nodes means shipping exactly that, pinned to
// the base graph's canonical hash and the version the log must replay
// to. The Store validates records structurally (truncated or duplicated
// logs fail the version arithmetic, never a replay panic) and delegates
// the actual replay to the service layer, which owns the request decode.

import (
	"encoding/json"
	"net/http"
)

// ExportRecord is a session serialized for migration: the raw op log
// plus the pinned base-graph hash and the version replaying the log must
// arrive at. Bodies are verbatim request bytes; the session engine is
// deterministic, so an import answers byte-identical responses at the
// same session id.
type ExportRecord struct {
	SessionID string            `json:"session_id"`
	BaseHash  string            `json:"base_hash"`
	Version   int64             `json:"version"`
	Create    json.RawMessage   `json:"create"`
	Deltas    []json.RawMessage `json:"deltas,omitempty"`
}

// Validate checks an ExportRecord's structural integrity. Every failure
// is a 400 ClientError: a malformed record is the sender's fault, never
// a reason to panic or 500. The version check is the tamper/truncation
// guard — each delta body replays as exactly one applied batch, so a log
// whose length disagrees with the pinned version has been truncated
// (missing deltas) or duplicated (replayed appends), and importing it
// would silently resurrect the wrong state.
func (rec *ExportRecord) Validate() error {
	if rec.SessionID == "" {
		return Errf(http.StatusBadRequest, "import: missing session_id")
	}
	if len(rec.Create) == 0 {
		return Errf(http.StatusBadRequest, "import %s: missing create body", rec.SessionID)
	}
	if !json.Valid(rec.Create) {
		return Errf(http.StatusBadRequest, "import %s: create body is not valid JSON", rec.SessionID)
	}
	if rec.Version < 0 {
		return Errf(http.StatusBadRequest, "import %s: negative version %d", rec.SessionID, rec.Version)
	}
	if rec.Version != int64(len(rec.Deltas)) {
		return Errf(http.StatusBadRequest,
			"import %s: version %d disagrees with %d logged deltas (truncated or duplicated op log)",
			rec.SessionID, rec.Version, len(rec.Deltas))
	}
	for i, d := range rec.Deltas {
		if len(d) == 0 || !json.Valid(d) {
			return Errf(http.StatusBadRequest, "import %s: delta %d is not valid JSON", rec.SessionID, i)
		}
	}
	return nil
}

// Export serializes the live session id as an ExportRecord. The raw
// bodies come from the caller — the replication layer owns them — and
// the Store contributes what only it knows: the session's live base hash
// and version, which pin the log so the importer can verify it replays
// to exactly this state. A log out of step with the live session
// (replication lag, eviction race) is a 409: exporting it would migrate
// a stale session.
func (st *Store) Export(id string, create []byte, deltas [][]byte) (*ExportRecord, error) {
	s, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	if len(create) == 0 {
		return nil, Errf(http.StatusConflict, "export %s: no create body in the op log", id)
	}
	version := s.Version()
	if version != int64(len(deltas)) {
		return nil, Errf(http.StatusConflict,
			"export %s: live version %d disagrees with %d logged deltas", id, version, len(deltas))
	}
	rec := &ExportRecord{
		SessionID: id,
		BaseHash:  s.BaseHash(),
		Version:   version,
		Create:    append(json.RawMessage(nil), create...),
		Deltas:    make([]json.RawMessage, len(deltas)),
	}
	for i, d := range deltas {
		rec.Deltas[i] = append(json.RawMessage(nil), d...)
	}
	return rec, nil
}

// Import validates rec and rebuilds the session through replay — the
// caller supplies the replay function because decoding the raw bodies is
// the service layer's job (service.ReplaySession). A record that fails
// validation never reaches replay; a session already live under the id
// surfaces as replay's 409 (idempotent re-delivery, nothing to do).
func (st *Store) Import(rec *ExportRecord, replay func(id, baseHash string, create []byte, deltas [][]byte) error) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	deltas := make([][]byte, len(rec.Deltas))
	for i, d := range rec.Deltas {
		deltas[i] = d
	}
	return replay(rec.SessionID, rec.BaseHash, rec.Create, deltas)
}
