package session

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the session layer's counter set, rendered on /metrics as
// the regcoal_session_* families and on /stats as the "sessions"
// section. All fields are atomic; the hot path only adds.
type Metrics struct {
	Created atomic.Int64
	Closed  atomic.Int64
	Evicted atomic.Int64
	Expired atomic.Int64
	Active  atomic.Int64

	Applies   atomic.Int64 // delta batches applied
	Deltas    atomic.Int64 // individual delta ops applied
	Rejected  atomic.Int64 // batches rejected with 400
	Conflicts atomic.Int64 // version/base-hash conflicts (409)

	PathCached      atomic.Int64
	PathMemo        atomic.Int64
	PathIncremental atomic.Int64
	PathFresh       atomic.Int64

	ChordalWins atomic.Int64 // components won by the chordal-inc member
}

// WritePrometheus renders the session families in exposition format
// (appended to the service's /metrics body; passes the strict
// obs.LintPrometheus checker).
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("regcoal_session_created_total", "Delta sessions created.", m.Created.Load())
	counter("regcoal_session_closed_total", "Delta sessions closed by the client.", m.Closed.Load())
	counter("regcoal_session_evicted_total", "Delta sessions evicted by the LRU cap.", m.Evicted.Load())
	counter("regcoal_session_expired_total", "Delta sessions expired by the idle TTL.", m.Expired.Load())
	counter("regcoal_session_applies_total", "Delta batches applied.", m.Applies.Load())
	counter("regcoal_session_deltas_total", "Individual delta operations applied.", m.Deltas.Load())
	counter("regcoal_session_rejected_total", "Delta batches rejected as invalid (400).", m.Rejected.Load())
	counter("regcoal_session_conflicts_total", "Delta requests rejected on version or base-hash conflict (409).", m.Conflicts.Load())
	fmt.Fprintf(w, "# HELP regcoal_session_solves_total Session solves per path (cached, memo, incremental, fresh).\n# TYPE regcoal_session_solves_total counter\n")
	fmt.Fprintf(w, "regcoal_session_solves_total{path=\"cached\"} %d\n", m.PathCached.Load())
	fmt.Fprintf(w, "regcoal_session_solves_total{path=\"memo\"} %d\n", m.PathMemo.Load())
	fmt.Fprintf(w, "regcoal_session_solves_total{path=\"incremental\"} %d\n", m.PathIncremental.Load())
	fmt.Fprintf(w, "regcoal_session_solves_total{path=\"fresh\"} %d\n", m.PathFresh.Load())
	counter("regcoal_session_chordal_wins_total", "Components whose best answer came from the chordal-inc member.", m.ChordalWins.Load())
	fmt.Fprintf(w, "# HELP regcoal_session_active Delta sessions currently alive.\n# TYPE regcoal_session_active gauge\nregcoal_session_active %d\n", m.Active.Load())
}

// StatsSnapshot is the JSON form of the counters (the /stats "sessions"
// section).
type StatsSnapshot struct {
	Created int64 `json:"created"`
	Closed  int64 `json:"closed"`
	Evicted int64 `json:"evicted"`
	Expired int64 `json:"expired"`
	Active  int64 `json:"active"`

	Applies   int64 `json:"applies"`
	Deltas    int64 `json:"deltas"`
	Rejected  int64 `json:"rejected"`
	Conflicts int64 `json:"conflicts"`

	Solves      map[string]int64 `json:"solves"`
	ChordalWins int64            `json:"chordal_wins"`
}

// Snapshot captures the counters.
func (m *Metrics) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Created:   m.Created.Load(),
		Closed:    m.Closed.Load(),
		Evicted:   m.Evicted.Load(),
		Expired:   m.Expired.Load(),
		Active:    m.Active.Load(),
		Applies:   m.Applies.Load(),
		Deltas:    m.Deltas.Load(),
		Rejected:  m.Rejected.Load(),
		Conflicts: m.Conflicts.Load(),
		Solves: map[string]int64{
			"cached":      m.PathCached.Load(),
			"memo":        m.PathMemo.Load(),
			"incremental": m.PathIncremental.Load(),
			"fresh":       m.PathFresh.Load(),
		},
		ChordalWins: m.ChordalWins.Load(),
	}
}
