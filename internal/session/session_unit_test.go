package session

import (
	"net/http"
	"testing"
	"time"

	"regcoal/internal/graph"
)

// base4 builds a 4-cycle with one chord (chordal) and one affinity.
func base4(t *testing.T) *graph.File {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(0, 2)
	g.AddAffinity(1, 3, 5)
	return &graph.File{K: 3, G: g}
}

func TestSessionLifecycle(t *testing.T) {
	s, err := New("s-test", base4(t), 0, SolverConfig{}, "h", &Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sol Solve
	s.View(func(v *Solve) { sol = *v })
	if !sol.Colorable || sol.K != 3 {
		t.Fatalf("base solve: colorable=%v k=%d", sol.Colorable, sol.K)
	}
	// 1 and 3 are not adjacent: the affinity (weight 5) should coalesce.
	if sol.CoalescedWeight != 5 || sol.CoalescedMoves != 1 {
		t.Fatalf("base coalesce: weight=%d moves=%d", sol.CoalescedWeight, sol.CoalescedMoves)
	}
	if sol.Path != PathFresh || sol.Version != 0 {
		t.Fatalf("base path=%q version=%d", sol.Path, sol.Version)
	}

	// Adding the 1–3 edge kills the affinity.
	if _, err := s.Apply([]Delta{{Op: OpAddEdge, U: 1, V: 3}}); err != nil {
		t.Fatalf("add_edge: %v", err)
	}
	s.View(func(v *Solve) { sol = *v })
	if sol.CoalescedWeight != 0 || sol.RemainingWeight != 5 {
		t.Fatalf("after add_edge: coalesced=%d remaining=%d", sol.CoalescedWeight, sol.RemainingWeight)
	}
	// K4 needs 4 colors: k=3 now fails.
	if sol.Version != 1 || sol.Colorable {
		t.Fatalf("after add_edge: version=%d colorable=%v (K4 with k=3)", sol.Version, sol.Colorable)
	}

	// Raising k to 4 makes it colorable again.
	if _, err := s.Apply([]Delta{{Op: OpSetK, K: 4}}); err != nil {
		t.Fatalf("set_k: %v", err)
	}
	s.View(func(v *Solve) { sol = *v })
	if !sol.Colorable || sol.K != 4 || sol.Path != PathFresh {
		t.Fatalf("K4 with k=4: colorable=%v k=%d path=%q", sol.Colorable, sol.K, sol.Path)
	}

	// Remove the chord and the new edge: back to a 4-cycle, 2-colorable.
	if _, err := s.Apply([]Delta{
		{Op: OpRemoveEdge, U: 0, V: 2},
		{Op: OpRemoveEdge, U: 1, V: 3},
	}); err != nil {
		t.Fatalf("remove edges: %v", err)
	}
	s.View(func(v *Solve) { sol = *v })
	if !sol.Colorable {
		t.Fatalf("C4 with k=2 not colorable")
	}
	if sol.RemainingMoves != 0 && sol.CoalescedMoves != 1 {
		t.Fatalf("affinity 1-3 should coalesce again: %+v", sol)
	}
}

func TestSessionVertexChurn(t *testing.T) {
	s, err := New("s-test", base4(t), 0, SolverConfig{}, "h", &Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// New vertex gets id 4; dead ids are never reused.
	if _, err := s.Apply([]Delta{{Op: OpAddVertex}}); err != nil {
		t.Fatalf("add_vertex: %v", err)
	}
	var sol Solve
	s.View(func(v *Solve) { sol = *v })
	if sol.Alive != 5 || sol.NextVertex != 5 {
		t.Fatalf("alive=%d next=%d", sol.Alive, sol.NextVertex)
	}
	if _, err := s.Apply([]Delta{{Op: OpRemoveVertex, U: 2}}); err != nil {
		t.Fatalf("remove_vertex: %v", err)
	}
	s.View(func(v *Solve) { sol = *v })
	if sol.Alive != 4 || sol.NextVertex != 5 {
		t.Fatalf("after remove: alive=%d next=%d", sol.Alive, sol.NextVertex)
	}
	if sol.Coloring[2] != graph.NoColor || sol.ClassID[2] != -1 {
		t.Fatalf("dead vertex kept color/class: %+v", sol)
	}
	// Deltas touching the dead vertex are 400s.
	for _, d := range []Delta{
		{Op: OpAddEdge, U: 2, V: 4},
		{Op: OpRemoveVertex, U: 2},
		{Op: OpAddAffinity, U: 2, V: 4, Weight: 1},
	} {
		_, err := s.Apply([]Delta{d})
		var ce *ClientError
		if err == nil || !asClientError(err, &ce) || ce.Status != http.StatusBadRequest {
			t.Fatalf("delta %+v against dead vertex: err=%v", d, err)
		}
	}
}

func TestSessionRejectsAtomically(t *testing.T) {
	s, err := New("s-test", base4(t), 0, SolverConfig{}, "h", &Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v0 := s.Version()
	// Second delta is invalid (duplicate edge): the whole batch must be
	// rejected, leaving the first unapplied.
	_, err = s.Apply([]Delta{
		{Op: OpAddAffinity, U: 0, V: 3, Weight: 2},
		{Op: OpAddEdge, U: 0, V: 1},
	})
	var ce *ClientError
	if err == nil || !asClientError(err, &ce) || ce.Status != http.StatusBadRequest {
		t.Fatalf("want 400, got %v", err)
	}
	if s.Version() != v0 {
		t.Fatalf("version advanced on rejected batch")
	}
	var sol Solve
	s.View(func(v *Solve) { sol = *v })
	if sol.CoalescedWeight+sol.RemainingWeight != 5 {
		t.Fatalf("first delta of rejected batch leaked: %+v", sol)
	}
}

func TestApplyAtVersionConflict(t *testing.T) {
	s, err := New("s-test", base4(t), 0, SolverConfig{}, "h", &Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.ApplyAt(0, []Delta{{Op: OpAddVertex}}); err != nil {
		t.Fatalf("ApplyAt(0): %v", err)
	}
	_, err = s.ApplyAt(0, []Delta{{Op: OpAddVertex}})
	var ce *ClientError
	if err == nil || !asClientError(err, &ce) || ce.Status != http.StatusConflict {
		t.Fatalf("stale version: want 409, got %v", err)
	}
}

func TestStoreLRUAndTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	st := NewStore(StoreConfig{MaxSessions: 2, TTL: time.Minute,
		now: func() time.Time { return now }})
	a, err := st.Create(base4(t), 0, "ha")
	if err != nil {
		t.Fatalf("create a: %v", err)
	}
	b, err := st.Create(base4(t), 0, "hb")
	if err != nil {
		t.Fatalf("create b: %v", err)
	}
	// Touch a so b is LRU, then create c: b evicts.
	if _, err := st.Get(a.ID()); err != nil {
		t.Fatalf("get a: %v", err)
	}
	c, err := st.Create(base4(t), 0, "hc")
	if err != nil {
		t.Fatalf("create c: %v", err)
	}
	if _, err := st.Get(b.ID()); err == nil {
		t.Fatalf("b survived LRU eviction")
	}
	if st.Metrics().Evicted.Load() != 1 {
		t.Fatalf("evicted=%d", st.Metrics().Evicted.Load())
	}
	// TTL: advance past the deadline; both a and c expire.
	now = now.Add(2 * time.Minute)
	if _, err := st.Get(a.ID()); err == nil {
		t.Fatalf("a survived TTL")
	}
	if _, err := st.Get(c.ID()); err == nil {
		t.Fatalf("c survived TTL")
	}
	if st.Len() != 0 {
		t.Fatalf("len=%d after expiry", st.Len())
	}
}

// asClientError mirrors errors.As without importing errors twice in
// these assertions.
func asClientError(err error, target **ClientError) bool {
	ce, ok := err.(*ClientError)
	if ok {
		*target = ce
	}
	return ok
}

// Mid-session chordality break: the base graph is chordal (the
// chordal-inc strategy can win its component), then one delta removes a
// chord and leaves a chordless C4. The chordal strategy must decline
// that solve with its documented ErrNotChordal fallback — observable as
// the ChordalWins counter standing still — while the conservative and
// optimistic members keep the session's answers correct.
func TestChordalFallbackMidSession(t *testing.T) {
	m := &Metrics{}
	// Chordal base: C4 plus the 0-2 chord, with an affinity the solver
	// can coalesce, so the chordal member competes for the win.
	s, err := New("s-test", base4(t), 0, SolverConfig{}, "h", m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	winsBefore := m.ChordalWins.Load()
	if winsBefore == 0 {
		t.Fatalf("chordal strategy did not win the chordal base component")
	}

	// Drop the chord: chordless C4, chordal-inc must decline.
	if _, err := s.Apply([]Delta{{Op: OpRemoveEdge, U: 0, V: 2}}); err != nil {
		t.Fatalf("remove chord: %v", err)
	}
	if got := m.ChordalWins.Load(); got != winsBefore {
		t.Fatalf("chordal strategy won a non-chordal component: wins %d -> %d", winsBefore, got)
	}
	var sol Solve
	s.View(func(v *Solve) { sol = *v })
	// The fallback members still answer: C4 with k=3 is colorable and the
	// (1, 3) affinity is coalescible.
	if !sol.Colorable {
		t.Fatalf("fallback solve not colorable: %+v", sol)
	}
	if sol.CoalescedWeight != 5 || sol.CoalescedMoves != 1 {
		t.Fatalf("fallback solve lost the affinity: %+v", sol)
	}
	if sol.Coloring[1] != sol.Coloring[3] {
		t.Fatalf("coalesced pair colored apart: %v", sol.Coloring)
	}

	// Restore the chord: the state equals the already-solved base, so the
	// component memo answers without re-running any strategy.
	if _, err := s.Apply([]Delta{{Op: OpAddEdge, U: 0, V: 2}}); err != nil {
		t.Fatalf("re-add chord: %v", err)
	}
	s.View(func(v *Solve) { sol = *v })
	if sol.Path != PathMemo {
		t.Fatalf("restored base state not answered from memo: path %q", sol.Path)
	}
	if got := m.ChordalWins.Load(); got != winsBefore {
		t.Fatalf("memo hit re-ran strategies: wins %d -> %d", winsBefore, got)
	}

	// A genuinely new chordal state (different affinity weight) re-solves
	// and the chordal member wins again.
	if _, err := s.Apply([]Delta{{Op: OpReweightAffinity, U: 1, V: 3, Weight: 9}}); err != nil {
		t.Fatalf("reweight: %v", err)
	}
	if got := m.ChordalWins.Load(); got <= winsBefore {
		t.Fatalf("chordal strategy did not recover after chordality returned: wins %d -> %d", winsBefore, got)
	}
}
