package session

import (
	"net/http"
	"sync"
	"time"

	"regcoal/internal/graph"
)

// SolverConfig bounds a session's incremental machinery. Zero values take
// defaults.
type SolverConfig struct {
	// Budget caps the BFS-bounded affected region (in vertices): when the
	// dirty flood-fill visits more, the session falls back to a full
	// fresh solve over all components (the always-correct fallback).
	Budget int
	// MemoCap bounds the per-session component-result memo; exceeding it
	// clears the memo (correctness is unaffected, only reuse).
	MemoCap int
}

func (c *SolverConfig) fillDefaults() {
	if c.Budget <= 0 {
		c.Budget = 1 << 14
	}
	if c.MemoCap <= 0 {
		c.MemoCap = 4096
	}
}

// Path labels how a solve was obtained.
type Path string

const (
	// PathCached: nothing changed since the last solve; the previous
	// solution is returned as-is.
	PathCached Path = "cached"
	// PathMemo: only memoized component results were reassembled — no
	// component was actually re-solved.
	PathMemo Path = "memo"
	// PathIncremental: the BFS-bounded affected region was re-solved;
	// components outside it were reused from the previous solve.
	PathIncremental Path = "incremental"
	// PathFresh: every component was recomputed (first solve, k change,
	// or the affected region exceeded the budget).
	PathFresh Path = "fresh"
)

// Solve is one session solution over the alive vertices, in session
// vertex-id space. The slices are owned by the session and reused across
// solves: callers must copy what they retain past the next Apply.
type Solve struct {
	K          int
	Colorable  bool
	NumClasses int

	CoalescedWeight int64
	RemainingWeight int64
	CoalescedMoves  int
	RemainingMoves  int

	// Path labels how this solve was obtained (see the Path constants).
	Path Path

	// Version, NextVertex, and Alive snapshot the session at solve time:
	// delta batches applied, the id-space size (the id the next
	// add_vertex will take), and the alive vertex count.
	Version    int64
	NextVertex int
	Alive      int

	// Coloring[v] is vertex v's register, or -1 when v is dead or its
	// component is not k-colorable.
	Coloring []int
	// ClassID[v] is the dense coalescing-class index of vertex v, or -1
	// when v is dead. Classes are numbered in order of smallest member.
	ClassID []int
}

// Session is one client's delta-solve state: a working graph (session
// vertex ids, grow-only; removed vertices stay as dead ids), the session
// affinity map, and the incremental solve state (previous components,
// component-result memo, dirty set). All methods are safe for concurrent
// use; Apply serializes on the session mutex.
type Session struct {
	mu sync.Mutex

	id       string
	baseHash string
	cfg      SolverConfig
	metrics  *Metrics

	k      int
	g      *graph.Graph // interference only; affinities live in aff
	alive  []bool
	nAlive int
	aff    map[[2]graph.V]int64
	affNbr [][]graph.V // per-vertex sorted affinity neighbors

	version int64

	// Incremental solve state.
	solved   bool
	allDirty bool
	dirty    []graph.V
	dirtyIn  []bool
	cur      Solve
	comps    compSet
	next     compSet
	memo     map[fp]*compResult

	// Validation overlay scratch (cleared per Apply).
	ovEdge map[[2]graph.V]bool
	ovAff  map[[2]graph.V]int64
	ovDead map[graph.V]bool

	tmp  []graph.V // apply-time neighbor copy scratch
	nbuf []graph.V // resolve-time NeighborsInto scratch (caller holds mu)

	// lastUse is managed by the Store under its own lock.
	lastUse time.Time
}

// New builds a session over base instance f: the interference graph is
// copied into the working representation and the affinities are
// normalized (parallel moves merged by weight sum, self-moves dropped) so
// that the solve is insensitive to the base file's affinity order. k
// overrides f.K when positive. The initial solve runs immediately (path
// "fresh"), so the create response carries a result.
func New(id string, f *graph.File, k int, cfg SolverConfig, baseHash string, m *Metrics) (*Session, error) {
	cfg.fillDefaults()
	if k <= 0 {
		k = f.K
	}
	if k <= 0 {
		return nil, Errf(http.StatusBadRequest, "session requires k >= 1 (give k in the graph or the request)")
	}
	if f.G.HasPrecolored() {
		return nil, Errf(http.StatusBadRequest, "delta sessions do not support precolored graphs")
	}
	n := f.G.N()
	s := &Session{
		id:       id,
		baseHash: baseHash,
		cfg:      cfg,
		metrics:  m,
		k:        k,
		g:        graph.New(n),
		alive:    make([]bool, n),
		nAlive:   n,
		aff:      make(map[[2]graph.V]int64),
		affNbr:   make([][]graph.V, n),
		dirtyIn:  make([]bool, n),
		memo:     make(map[fp]*compResult),
		ovEdge:   make(map[[2]graph.V]bool),
		ovAff:    make(map[[2]graph.V]int64),
		ovDead:   make(map[graph.V]bool),
	}
	for v := graph.V(0); v < graph.V(n); v++ {
		s.alive[v] = true
		for _, w := range f.G.Neighbors(v) {
			if w > v {
				s.g.AddEdge(v, w)
			}
		}
	}
	for _, a := range f.G.Affinities() {
		a = a.Canon()
		if a.X == a.Y {
			continue
		}
		s.aff[pairKey(a.X, a.Y)] += a.Weight
	}
	for pair, w := range s.aff {
		if w == 0 {
			delete(s.aff, pair)
			continue
		}
		s.affNbr[pair[0]] = insertSortedV(s.affNbr[pair[0]], pair[1])
		s.affNbr[pair[1]] = insertSortedV(s.affNbr[pair[1]], pair[0])
	}
	s.mu.Lock()
	s.resolve()
	s.mu.Unlock()
	return s, nil
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// BaseHash returns the WL canonical hash of the base graph — the
// cluster routing key that keeps the session shard-sticky.
func (s *Session) BaseHash() string { return s.baseHash }

// Version returns the number of delta batches applied so far.
func (s *Session) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Shape reports the session id space size (next fresh vertex id), the
// alive vertex count, and the current k.
func (s *Session) Shape() (nextID, alive, k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.N(), s.nAlive, s.k
}

// Apply validates the delta batch atomically (an invalid delta rejects
// the whole batch with a 400 ClientError and leaves the session
// untouched), applies it, bumps the version, and re-solves. The returned
// Solve is the session's reusable buffer: render or copy it before the
// next Apply.
func (s *Session) Apply(deltas []Delta) (*Solve, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(deltas)
}

// ApplyAt is Apply guarded by optimistic concurrency: the batch applies
// only when the session is at the expected version, else a 409
// ClientError. Used with the store's per-session singleflight so that
// concurrent duplicates of one edit collapse to a single application.
func (s *Session) ApplyAt(version int64, deltas []Delta) (*Solve, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != version {
		if s.metrics != nil {
			s.metrics.Conflicts.Add(1)
		}
		return nil, Errf(http.StatusConflict, "version conflict: session at %d, request expects %d", s.version, version)
	}
	return s.applyLocked(deltas)
}

// ApplyRender applies (at the expected version when version >= 0) and
// renders the resulting solve in one critical section, so a concurrent
// Apply cannot recycle the solve buffers mid-render. render must only
// read the Solve (calling back into locking Session methods would
// deadlock).
func (s *Session) ApplyRender(version int64, deltas []Delta, render func(*Solve) (any, error)) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version >= 0 && s.version != version {
		if s.metrics != nil {
			s.metrics.Conflicts.Add(1)
		}
		return nil, Errf(http.StatusConflict, "version conflict: session at %d, request expects %d", s.version, version)
	}
	sol, err := s.applyLocked(deltas)
	if err != nil {
		return nil, err
	}
	return render(sol)
}

func (s *Session) applyLocked(deltas []Delta) (*Solve, error) {
	if len(deltas) == 0 {
		return nil, Errf(http.StatusBadRequest, "empty deltas")
	}
	if err := s.validate(deltas); err != nil {
		if s.metrics != nil {
			s.metrics.Rejected.Add(1)
		}
		return nil, err
	}
	for i := range deltas {
		s.applyOne(&deltas[i])
	}
	s.version++
	if s.metrics != nil {
		s.metrics.Applies.Add(1)
		s.metrics.Deltas.Add(int64(len(deltas)))
	}
	s.resolve()
	return &s.cur, nil
}

// Current re-solves if needed and returns the session's current solution
// (the reusable buffer; see Apply).
func (s *Session) Current() *Solve {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolve()
	return &s.cur
}

// View runs fn with the session locked and the current solve — for
// rendering a response without racing a concurrent Apply's buffer reuse.
func (s *Session) View(fn func(*Solve)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolve()
	fn(&s.cur)
}

// validate checks the whole batch against an overlay of pending effects
// without mutating session state, so that application cannot fail
// mid-batch.
func (s *Session) validate(deltas []Delta) error {
	clear(s.ovEdge)
	clear(s.ovAff)
	clear(s.ovDead)
	added := 0
	n := s.g.N()

	for i := range deltas {
		d := &deltas[i]
		u, v := graph.V(d.U), graph.V(d.V)
		switch d.Op {
		case OpAddVertex:
			added++
		case OpRemoveVertex:
			if !s.vertexOK(d.U, n, added) {
				return errDelta(i, "remove_vertex: no alive vertex %d", d.U)
			}
			s.ovDead[u] = true
		case OpAddEdge, OpRemoveEdge:
			if d.U == d.V {
				return errDelta(i, "%s: self-loop on vertex %d", d.Op, d.U)
			}
			if !s.vertexOK(d.U, n, added) || !s.vertexOK(d.V, n, added) {
				return errDelta(i, "%s: no alive vertex pair (%d, %d)", d.Op, d.U, d.V)
			}
			if d.Op == OpAddEdge {
				if s.edgeExists(u, v, n) {
					return errDelta(i, "add_edge: edge (%d, %d) already exists", d.U, d.V)
				}
				s.ovEdge[pairKey(u, v)] = true
			} else {
				if !s.edgeExists(u, v, n) {
					return errDelta(i, "remove_edge: no edge (%d, %d)", d.U, d.V)
				}
				s.ovEdge[pairKey(u, v)] = false
			}
		case OpAddAffinity, OpRemoveAffinity, OpReweightAffinity:
			if d.U == d.V {
				return errDelta(i, "%s: self-affinity on vertex %d", d.Op, d.U)
			}
			if !s.vertexOK(d.U, n, added) || !s.vertexOK(d.V, n, added) {
				return errDelta(i, "%s: no alive vertex pair (%d, %d)", d.Op, d.U, d.V)
			}
			switch d.Op {
			case OpAddAffinity:
				if d.Weight <= 0 {
					return errDelta(i, "add_affinity: weight must be positive, got %d", d.Weight)
				}
				if s.affWeight(u, v) != 0 {
					return errDelta(i, "add_affinity: affinity (%d, %d) already exists (use reweight_affinity)", d.U, d.V)
				}
				s.ovAff[pairKey(u, v)] = d.Weight
			case OpRemoveAffinity:
				if s.affWeight(u, v) == 0 {
					return errDelta(i, "remove_affinity: no affinity (%d, %d)", d.U, d.V)
				}
				s.ovAff[pairKey(u, v)] = 0
			default: // OpReweightAffinity
				if d.Weight <= 0 {
					return errDelta(i, "reweight_affinity: weight must be positive, got %d", d.Weight)
				}
				if s.affWeight(u, v) == 0 {
					return errDelta(i, "reweight_affinity: no affinity (%d, %d)", d.U, d.V)
				}
				s.ovAff[pairKey(u, v)] = d.Weight
			}
		case OpSetK:
			if d.K < 1 {
				return errDelta(i, "set_k: k must be >= 1, got %d", d.K)
			}
		default:
			return errDelta(i, "unknown op %q", d.Op)
		}
	}
	// Mark the overlay's dead vertices' former neighborhoods dirty at
	// apply time, not here; validation leaves no trace beyond scratch.
	return nil
}

// vertexOK reports whether id names an alive vertex under the pending
// overlay: ids added earlier in the batch count, pending-dead ones do
// not. n and added are the pre-batch id-space size and the number of
// add_vertex deltas seen so far (methods, not closures: validate runs
// on the zero-alloc apply path).
func (s *Session) vertexOK(id, n, added int) bool {
	if id < 0 || id >= n+added {
		return false
	}
	v := graph.V(id)
	if s.ovDead[v] {
		return false
	}
	if id < n {
		return s.alive[v]
	}
	return true // pending-added and not pending-dead
}

// edgeExists answers under the overlay: pending edge effects shadow the
// working graph.
func (s *Session) edgeExists(u, v graph.V, n int) bool {
	if e, ok := s.ovEdge[pairKey(u, v)]; ok {
		return e
	}
	if int(u) < n && int(v) < n {
		return s.g.HasEdge(u, v)
	}
	return false
}

// affWeight answers under the overlay; 0 means no affinity.
func (s *Session) affWeight(u, v graph.V) int64 {
	if w, ok := s.ovAff[pairKey(u, v)]; ok {
		return w
	}
	return s.aff[pairKey(u, v)]
}

// applyOne applies one pre-validated delta to the working state.
func (s *Session) applyOne(d *Delta) {
	u, v := graph.V(d.U), graph.V(d.V)
	switch d.Op {
	case OpAddVertex:
		id := s.g.AddVertex()
		s.alive = append(s.alive, true)
		s.affNbr = append(s.affNbr, nil)
		s.dirtyIn = append(s.dirtyIn, false)
		s.nAlive++
		s.markDirty(id)
	case OpRemoveVertex:
		s.tmp = s.g.NeighborsInto(s.tmp, u)
		for _, w := range s.tmp {
			s.g.RemoveEdge(u, w)
			s.markDirty(w)
		}
		for _, w := range s.affNbr[u] {
			delete(s.aff, pairKey(u, w))
			s.affNbr[w] = removeSortedV(s.affNbr[w], u)
			s.markDirty(w)
		}
		s.affNbr[u] = s.affNbr[u][:0]
		s.alive[u] = false
		s.nAlive--
		s.markDirty(u)
	case OpAddEdge:
		s.g.AddEdge(u, v)
		s.markDirty(u)
		s.markDirty(v)
	case OpRemoveEdge:
		s.g.RemoveEdge(u, v)
		s.markDirty(u)
		s.markDirty(v)
	case OpAddAffinity:
		s.aff[pairKey(u, v)] = d.Weight
		s.affNbr[u] = insertSortedV(s.affNbr[u], v)
		s.affNbr[v] = insertSortedV(s.affNbr[v], u)
		s.markDirty(u)
		s.markDirty(v)
	case OpRemoveAffinity:
		delete(s.aff, pairKey(u, v))
		s.affNbr[u] = removeSortedV(s.affNbr[u], v)
		s.affNbr[v] = removeSortedV(s.affNbr[v], u)
		s.markDirty(u)
		s.markDirty(v)
	case OpReweightAffinity:
		s.aff[pairKey(u, v)] = d.Weight
		s.markDirty(u)
		s.markDirty(v)
	case OpSetK:
		s.k = d.K
		s.allDirty = true
	}
}

func (s *Session) markDirty(v graph.V) {
	if !s.dirtyIn[v] {
		s.dirtyIn[v] = true
		s.dirty = append(s.dirty, v)
	}
}
