package session

// Zero-allocation gate for the steady-state delta-apply path: a warm
// session toggling between two already-memoized states must run
// validate → apply → resolve entirely out of pooled scratch (arena
// slices, cleared overlay maps, reused component sets and Solve
// buffers) — the property that keeps per-delta service latency flat.
// The name matches the CI alloc-gate pattern (ZeroAlloc), which re-runs
// this under the race detector with the count assertion skipped.

import (
	"testing"

	"regcoal/internal/graph"
)

func TestDeltaApplyZeroAlloc(t *testing.T) {
	// A few components with affinities, large enough that the resolve
	// path exercises BFS, decomposition, and reassembly for real.
	g := graph.New(96)
	for c := 0; c < 4; c++ {
		base := graph.V(c * 24)
		for v := graph.V(0); v < 23; v++ {
			g.AddEdge(base+v, base+v+1)
		}
		g.AddAffinity(base, base+12, int64(c+1))
	}
	s, err := New("s-gate", &graph.File{G: g, K: 3}, 0, SolverConfig{}, "h", &Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Two batches toggling one edge in one component; warm both states so
	// every subsequent resolve is a component-memo hit.
	add := []Delta{{Op: OpAddEdge, U: 0, V: 5}}
	del := []Delta{{Op: OpRemoveEdge, U: 0, V: 5}}
	for i := 0; i < 8; i++ {
		if _, err := s.Apply(add); err != nil {
			t.Fatalf("warm add: %v", err)
		}
		if _, err := s.Apply(del); err != nil {
			t.Fatalf("warm del: %v", err)
		}
	}

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Apply(add); err != nil {
			t.Fatalf("apply add: %v", err)
		}
		if _, err := s.Apply(del); err != nil {
			t.Fatalf("apply del: %v", err)
		}
	})
	var sol Solve
	s.View(func(v *Solve) { sol = *v })
	if !sol.Colorable || sol.Path != PathMemo {
		t.Fatalf("steady state not on the memo path: colorable=%v path=%q", sol.Colorable, sol.Path)
	}
	if graph.RaceEnabled {
		t.Skipf("race detector active, alloc count (%v) not asserted", allocs)
	}
	if allocs != 0 {
		t.Fatalf("warm delta apply allocates %v times per toggle pair, want 0", allocs)
	}
}
