package session

// The incremental solver. A session solution is defined per connected
// component of the alive working graph (connectivity over interference
// edges AND affinities: a move can merge across an interference gap, so
// components are independent only when neither crosses). Every component
// is solved by the same deterministic member set — ChordalIncremental
// (via ChordalProgressive) where the component is chordal, the
// conservative briggs+george rule, and optimistic de-coalescing — with
// the best answer picked by the portfolio ordering (colorable first,
// then coalesced weight, then fewer remaining moves; earlier member wins
// ties). Because "fresh" and "incremental" are the same per-component
// function over the same induced instances, reassembling reused or
// memoized component results is exactly equal to a fresh solve — the
// property the randomized edit-script differential suite pins.

import (
	"slices"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// fp is a 128-bit content fingerprint of one component's induced
// instance (vertex count, k, edges, affinities with weights, all in
// sorted local numbering) — the memo key. Two lanes: FNV-1a and a
// splitmix-style mixer.
type fp struct{ a, b uint64 }

func (h *fp) mix(x uint64) {
	h.a ^= x
	h.a *= 1099511628211
	h.b += x + 0x9e3779b97f4a7c15
	h.b ^= h.b >> 29
	h.b *= 0xbf58476d1ce4e5b9
	h.b ^= h.b >> 32
}

// compResult is one component's solution in local (sorted-by-session-id)
// numbering. Immutable once built; shared by the memo and by successive
// assembled solves.
type compResult struct {
	colorable  bool
	nclasses   int
	coalescedW int64
	remainingW int64

	coalescedMoves int
	remainingMoves int
	strategy       string

	classOf []int // dense class index per local vertex, by smallest member
	color   []int // register per local vertex, or -1
}

// compSet is a solve's component decomposition: concatenated sorted
// vertex lists with offsets, plus each component's result. Buffers are
// session-owned and reused across solves.
type compSet struct {
	verts []graph.V
	offs  []int32
	res   []*compResult
}

func (c *compSet) reset() {
	c.verts = c.verts[:0]
	c.offs = append(c.offs[:0], 0)
	c.res = c.res[:0]
}

func (c *compSet) push(vs []graph.V, r *compResult) {
	c.verts = append(c.verts, vs...)
	c.offs = append(c.offs, int32(len(c.verts)))
	c.res = append(c.res, r)
}

func (c *compSet) comp(i int) []graph.V { return c.verts[c.offs[i]:c.offs[i+1]] }

// resolve brings s.cur up to date with the working graph. Caller holds
// s.mu. The steady state (warm session, memo hits) allocates nothing:
// all scratch comes from a pooled graph.Arena or session-owned buffers.
func (s *Session) resolve() {
	if s.solved && len(s.dirty) == 0 && !s.allDirty {
		// Nothing changed: keep s.cur — including the Path label of the
		// last real solve, so a render right after an apply still reports
		// how that solve was obtained.
		s.cur.Version = s.version
		if s.metrics != nil {
			s.metrics.PathCached.Add(1)
		}
		return
	}
	n := s.g.N()
	ar := graph.GetArena()
	defer ar.Release()

	full := !s.solved || s.allDirty
	visited := ar.Bools(n)
	if !full && s.bfsAffected(ar, visited) > s.cfg.Budget {
		full = true
	}

	next := &s.next
	next.reset()
	if full {
		s.decompose(ar, next, nil)
	} else {
		// Reuse every previous component untouched by the affected
		// region. A component holding a visited or now-dead vertex is
		// recomputed; the dirty flood-fill visits whole components, so
		// the decomposition below covers exactly the affected ones.
		for ci := 0; ci < len(s.comps.res); ci++ {
			vs := s.comps.comp(ci)
			reusable := true
			for _, v := range vs {
				if visited[v] || !s.alive[v] {
					reusable = false
					break
				}
			}
			if reusable {
				next.push(vs, s.comps.res[ci])
			}
		}
		s.decompose(ar, next, visited)
	}

	local := ar.Ints(n)
	misses := 0
	for ci := 0; ci < len(next.res); ci++ {
		if next.res[ci] != nil {
			continue
		}
		vs := next.comp(ci)
		key := s.fingerprint(vs, local)
		if r, ok := s.memo[key]; ok {
			next.res[ci] = r
			continue
		}
		r := s.solveComponent(vs, local)
		if len(s.memo) >= s.cfg.MemoCap {
			clear(s.memo)
		}
		s.memo[key] = r
		next.res[ci] = r
		misses++
	}

	s.assemble(ar, next)
	s.comps, s.next = s.next, s.comps

	for _, v := range s.dirty {
		s.dirtyIn[v] = false
	}
	s.dirty = s.dirty[:0]
	s.allDirty = false
	s.solved = true

	switch {
	case full:
		s.cur.Path = PathFresh
	case misses > 0:
		s.cur.Path = PathIncremental
	default:
		s.cur.Path = PathMemo
	}
	if s.metrics != nil {
		switch s.cur.Path {
		case PathFresh:
			s.metrics.PathFresh.Add(1)
		case PathIncremental:
			s.metrics.PathIncremental.Add(1)
		default:
			s.metrics.PathMemo.Add(1)
		}
	}
}

// bfsAffected flood-fills from the alive dirty vertices over both
// adjacencies, marking visited; returns the region size. The region is
// closed under connectivity: it is a union of whole components.
func (s *Session) bfsAffected(ar *graph.Arena, visited []bool) int {
	queue := ar.Vs(s.g.N())
	for _, v := range s.dirty {
		if s.alive[v] && !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	count := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		count++
		s.nbuf = s.g.NeighborsInto(s.nbuf, v)
		for _, w := range s.nbuf {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
		for _, w := range s.affNbr[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return count
}

// decompose appends the connected components of the alive subgraph
// (restricted to the given mask when non-nil) to dst, each with a nil
// result and its vertex list sorted ascending. Components come out in
// order of smallest member because the outer scan ascends.
func (s *Session) decompose(ar *graph.Arena, dst *compSet, restrict []bool) {
	n := s.g.N()
	seen := ar.Bools(n)
	queue := ar.Vs(n)
	for v0 := graph.V(0); int(v0) < n; v0++ {
		if !s.alive[v0] || seen[v0] || (restrict != nil && !restrict[v0]) {
			continue
		}
		queue = queue[:0]
		queue = append(queue, v0)
		seen[v0] = true
		start := len(dst.verts)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			dst.verts = append(dst.verts, v)
			s.nbuf = s.g.NeighborsInto(s.nbuf, v)
			for _, w := range s.nbuf {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
			for _, w := range s.affNbr[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		slices.Sort(dst.verts[start:])
		dst.offs = append(dst.offs, int32(len(dst.verts)))
		dst.res = append(dst.res, nil)
	}
}

// fingerprint hashes one component's induced instance in local
// numbering. local is n-sized scratch; only entries for vs are written,
// so stale entries from other components are harmless.
func (s *Session) fingerprint(vs []graph.V, local []int) fp {
	h := fp{a: 14695981039346656037, b: 0x6a09e667f3bcc909}
	h.mix(uint64(len(vs)))
	h.mix(uint64(s.k))
	for i, v := range vs {
		local[v] = i
	}
	for _, v := range vs {
		h.mix(^uint64(0)) // vertex-record separator
		s.nbuf = s.g.NeighborsInto(s.nbuf, v)
		for _, w := range s.nbuf {
			if w > v {
				h.mix(uint64(local[w]))
			}
		}
		h.mix(^uint64(1)) // edge/affinity separator
		for _, w := range s.affNbr[v] {
			if w > v {
				h.mix(uint64(local[w]))
				h.mix(uint64(s.aff[pairKey(v, w)]))
			}
		}
	}
	return h
}

// cmpResults is the portfolio ordering: colorable beats not, then higher
// coalesced weight, then fewer remaining moves.
func cmpResults(a, b *coalesce.Result) int {
	if a.Colorable != b.Colorable {
		if a.Colorable {
			return 1
		}
		return -1
	}
	switch {
	case a.CoalescedWeight != b.CoalescedWeight:
		if a.CoalescedWeight > b.CoalescedWeight {
			return 1
		}
		return -1
	case len(a.Remaining) != len(b.Remaining):
		if len(a.Remaining) < len(b.Remaining) {
			return 1
		}
		return -1
	}
	return 0
}

// solveComponent builds the induced instance of vs in local numbering
// and solves it with the deterministic member set. Only runs on memo
// misses, so its allocations are off the steady-state path.
func (s *Session) solveComponent(vs []graph.V, local []int) *compResult {
	m := len(vs)
	for i, v := range vs {
		local[v] = i
	}
	cg := graph.New(m)
	for _, v := range vs {
		for _, w := range s.g.Neighbors(v) {
			if w > v {
				cg.AddEdge(graph.V(local[v]), graph.V(local[w]))
			}
		}
	}
	// Affinities enter in ascending (x, y) order — the canonical sorted
	// order — so the solve is independent of the session's edit history.
	for _, v := range vs {
		for _, w := range s.affNbr[v] {
			if w > v {
				cg.AddAffinity(graph.V(local[v]), graph.V(local[w]), s.aff[pairKey(v, w)])
			}
		}
	}
	cg.Freeze()

	// ChordalIncremental first (the paper's tractable case); the
	// conservative and optimistic members cover the non-chordal
	// fallback. Declining with ErrNotChordal is the documented contract:
	// a wrong answer never leaves ChordalProgressive.
	var best *coalesce.Result
	bestName := ""
	if res, err := coalesce.ChordalProgressive(cg, s.k); err == nil {
		best, bestName = res, "chordal-inc"
	}
	if res := coalesce.Conservative(cg, s.k, coalesce.TestBriggsGeorge); best == nil || cmpResults(res, best) > 0 {
		best, bestName = res, "briggs+george"
	}
	if res := coalesce.Optimistic(cg, s.k); cmpResults(res, best) > 0 {
		best, bestName = res, "optimistic"
	}
	if bestName == "chordal-inc" && s.metrics != nil {
		s.metrics.ChordalWins.Add(1)
	}

	r := &compResult{
		colorable:      best.Colorable,
		coalescedW:     best.CoalescedWeight,
		remainingW:     best.RemainingWeight,
		coalescedMoves: len(best.Coalesced),
		remainingMoves: len(best.Remaining),
		strategy:       bestName,
		classOf:        make([]int, m),
		color:          make([]int, m),
	}
	classIdx := make(map[graph.V]int, m)
	for i := 0; i < m; i++ {
		root := best.P.Find(graph.V(i))
		idx, ok := classIdx[root]
		if !ok {
			idx = len(classIdx)
			classIdx[root] = idx
		}
		r.classOf[i] = idx
	}
	r.nclasses = len(classIdx)
	for i := range r.color {
		r.color[i] = graph.NoColor
	}
	if best.Colorable {
		if q, old2new, err := graph.Quotient(cg, best.P); err == nil {
			if qcol, ok := greedy.Color(q, s.k); ok {
				copy(r.color, qcol.Lift(old2new))
			}
		}
	}
	return r
}

// assemble writes the combined solution into s.cur, components in order
// of smallest member (dense class ids follow that order).
func (s *Session) assemble(ar *graph.Arena, cs *compSet) {
	n := s.g.N()
	nc := len(cs.res)
	order := ar.Ints(nc)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by smallest member: the set is a merge of two
	// already-sorted runs (reused comps, then newly decomposed ones), so
	// this is near-linear — and closure-free for the zero-alloc path.
	for i := 1; i < nc; i++ {
		ci := order[i]
		key := cs.verts[cs.offs[ci]]
		j := i
		for j > 0 && cs.verts[cs.offs[order[j-1]]] > key {
			order[j] = order[j-1]
			j--
		}
		order[j] = ci
	}

	s.cur.Coloring = growInts(s.cur.Coloring, n)
	s.cur.ClassID = growInts(s.cur.ClassID, n)
	for i := 0; i < n; i++ {
		s.cur.Coloring[i] = graph.NoColor
		s.cur.ClassID[i] = -1
	}
	s.cur.K = s.k
	s.cur.Version = s.version
	s.cur.NextVertex = n
	s.cur.Alive = s.nAlive
	s.cur.Colorable = true
	s.cur.CoalescedWeight, s.cur.RemainingWeight = 0, 0
	s.cur.CoalescedMoves, s.cur.RemainingMoves = 0, 0
	base := 0
	for _, ci := range order {
		r := cs.res[ci]
		vs := cs.comp(ci)
		if !r.colorable {
			s.cur.Colorable = false
		}
		s.cur.CoalescedWeight += r.coalescedW
		s.cur.RemainingWeight += r.remainingW
		s.cur.CoalescedMoves += r.coalescedMoves
		s.cur.RemainingMoves += r.remainingMoves
		for j, v := range vs {
			s.cur.Coloring[v] = r.color[j]
			s.cur.ClassID[v] = base + r.classOf[j]
		}
		base += r.nclasses
	}
	s.cur.NumClasses = base
}

// growInts returns s with length n, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}
