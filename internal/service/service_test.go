package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// The canonical coalescable instance: path a-b-c, move (a,c), k=2.
const pathInstance = `{"graph":{"text":"k 2\nnode a\nnode b\nnode c\nedge a b\nedge b c\nmove a c 5\n"}}`

func TestCoalesceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/coalesce", pathInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out CoalesceResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.CoalescedWeight != 5 || !out.Colorable {
		t.Fatalf("got %+v, want the move coalesced", out)
	}
	if len(out.Classes) != 2 {
		t.Fatalf("classes %v, want a and c merged", out.Classes)
	}
	if out.Coloring == nil {
		t.Fatal("colorable result carries no coloring")
	}
	if out.Coloring[0] != out.Coloring[2] || out.Coloring[0] == out.Coloring[1] {
		t.Fatalf("coloring %v does not realize the coalescing", out.Coloring)
	}
}

func TestAllocateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/allocate", pathInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out AllocateResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Spills != 0 || len(out.Coloring) != 3 {
		t.Fatalf("got %+v", out)
	}
	if out.Coloring[0] == out.Coloring[1] || out.Coloring[1] == out.Coloring[2] {
		t.Fatalf("improper coloring %v", out.Coloring)
	}
}

func TestRepeatedRequestIsCachedByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp1, body1 := post(t, ts.URL+"/v1/coalesce", pathInstance)
	if got := resp1.Header.Get("X-Regcoal-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	hitsBefore := s.Metrics().CacheHits.Load()
	resp2, body2 := post(t, ts.URL+"/v1/coalesce", pathInstance)
	if got := resp2.Header.Get("X-Regcoal-Cache"); got != "hit" {
		t.Fatalf("repeat cache header %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("repeat body differs:\n%s\n%s", body1, body2)
	}
	if s.Metrics().CacheHits.Load() != hitsBefore+1 {
		t.Fatal("cache hit counter did not increment")
	}
}

func TestIsomorphicRelabelingHitsCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// The same path instance with vertices declared in a different order
	// and different names: an isomorphic relabeling the refinement can
	// identify (the middle vertex has degree 2, the ends degree 1... and
	// the ends are distinguished by the move endpoints' weights equally,
	// but tie-broken consistently because they are automorphic).
	relabeled := `{"graph":{"text":"k 2\nnode mid\nnode left\nnode right\nedge left mid\nedge mid right\nmove left right 5\n"}}`
	post(t, ts.URL+"/v1/coalesce", pathInstance)
	resp, body := post(t, ts.URL+"/v1/coalesce", relabeled)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Regcoal-Cache"); got != "hit" {
		t.Fatalf("relabeled instance cache header %q, want hit", got)
	}
	var out CoalesceResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// In the relabeled numbering, vertices 1 (left) and 2 (right) merge.
	if out.CoalescedWeight != 5 {
		t.Fatalf("relabeled answer %+v", out)
	}
	found := false
	for _, cls := range out.Classes {
		if len(cls) == 2 && cls[0] == 1 && cls[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("classes %v, want {1,2} merged in the relabeled numbering", out.Classes)
	}
	if s.Metrics().CacheHits.Load() == 0 {
		t.Fatal("no cache hit recorded")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]string{
		"missing graph":    `{}`,
		"no k":             `{"graph":{"text":"node a\nnode b\nedge a b\n"}}`,
		"unknown strategy": `{"graph":{"text":"k 2\nnode a\n"},"strategies":["nope"]}`,
		"bad payload":      `{"graph":{"text":"wat 1 2\n"}}`,
		"two encodings":    `{"graph":{"text":"k 2\nnode a\n","dimacs":"p edge 1 0\n"}}`,
		"graph and batch":  `{"graph":{"text":"k 2\nnode a\n"},"batch":[{}]}`,
		"nested batch":     `{"batch":[{"batch":[{}]}]}`,
		"unknown field":    `{"graf":{}}`,
	}
	for name, body := range cases {
		resp, out := post(t, ts.URL+"/v1/coalesce", body)
		want := http.StatusBadRequest
		if name == "nested batch" {
			want = http.StatusOK // reported per element
		}
		if resp.StatusCode != want {
			t.Errorf("%s: status %d (%s), want %d", name, resp.StatusCode, out, want)
		}
		if name == "nested batch" && !bytes.Contains(out, []byte("must not nest")) {
			t.Errorf("nested batch: %s", out)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/coalesce")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on solve endpoint: %d, want 405", resp.StatusCode)
	}
}

func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"batch":[%s,{"graph":{"text":"k 1\nnode a\n"}},{"graph":{"text":"edge a a\n"}}]}`,
		pathInstance)
	resp, out := post(t, ts.URL+"/v1/coalesce", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var batch BatchResponse
	if err := json.Unmarshal(out, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(batch.Results))
	}
	if batch.Results[0].Coalesce == nil || batch.Results[0].Coalesce.CoalescedWeight != 5 {
		t.Errorf("result 0: %+v", batch.Results[0])
	}
	if batch.Results[1].Coalesce == nil {
		t.Errorf("result 1: %+v", batch.Results[1])
	}
	if batch.Results[2].Error == "" {
		t.Errorf("result 2 should carry the self-loop error, got %+v", batch.Results[2])
	}
}

func TestBatchSizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	body := fmt.Sprintf(`{"batch":[%s,%s,%s]}`, pathInstance, pathInstance, pathInstance)
	resp, out := post(t, ts.URL+"/v1/coalesce", body)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(out, []byte("limit 2")) {
		t.Fatalf("oversized batch: %d %s", resp.StatusCode, out)
	}
}

func TestMixedEncodingsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph":{"dimacs":"p edge 2 1\nc regcoal k 2\ne 1 2\n","precolored":[{"v":0,"color":1}]}}`
	resp, out := post(t, ts.URL+"/v1/coalesce", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("native pins beside a dimacs payload accepted: %d %s", resp.StatusCode, out)
	}
}

func TestSaturationBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	// Occupy the single worker and the single queue slot with blocking
	// tasks, submitted straight to the pool.
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 2; i++ {
		if err := s.pool.Submit(context.Background(), func() { <-block }); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until one task is running and one is queued, so TrySubmit in
	// the handler reliably sees a full queue.
	deadline := time.Now().Add(time.Second)
	for s.pool.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := post(t, ts.URL+"/v1/coalesce", pathInstance)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if s.Metrics().Rejected.Load() != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/coalesce", pathInstance)
	post(t, ts.URL+"/v1/coalesce", pathInstance)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.CoalesceRequests != 2 || stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.CacheEntries != 1 {
		t.Fatalf("cache entries %d, want 1", stats.CacheEntries)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`regcoal_requests_total{endpoint="coalesce"} 2`,
		"regcoal_cache_hits_total 1",
		"regcoal_strategy_wins_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

func TestGracefulCloseRejectsNewWork(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, body := post(t, ts.URL+"/v1/coalesce", `{"graph":{"text":"k 2\nnode a\nnode b\nedge a b\nmove a b 1\n"},"no_cache":true}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503 after Close", resp.StatusCode, body)
	}
}

// A K4 with k=2: any spill set must evict two vertices; the residual
// coloring must be proper within k.
const k4Instance = `{"graph":{"vertices":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]],"k":2}}`

func TestSpillEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/spill", k4Instance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SpillResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Spills != 2 || len(out.Spilled) != 2 || out.SpillCost != 2 {
		t.Fatalf("got %+v, want exactly two evictions", out)
	}
	if !out.Optimal {
		t.Fatalf("exact member should prove optimality on K4: %+v", out)
	}
	spilled := map[int]bool{out.Spilled[0]: true, out.Spilled[1]: true}
	for v, c := range out.Coloring {
		if spilled[v] {
			if c != -1 {
				t.Fatalf("spilled vertex %d colored %d", v, c)
			}
		} else if c < 0 || c >= out.K {
			t.Fatalf("vertex %d color %d outside [0,%d)", v, c, out.K)
		}
	}
}

func TestSpillOnColorableGraphSpillsNothing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/spill", pathInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SpillResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Spills != 0 || len(out.Spilled) != 0 {
		t.Fatalf("spilled on a 2-colorable path: %+v", out)
	}
}

// Satellite acceptance: repeated /v1/spill requests are answered from the
// cache with byte-identical bodies.
func TestSpillRepeatedRequestIsCachedByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp1, body1 := post(t, ts.URL+"/v1/spill", k4Instance)
	if got := resp1.Header.Get("X-Regcoal-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	hitsBefore := s.Metrics().CacheHits.Load()
	resp2, body2 := post(t, ts.URL+"/v1/spill", k4Instance)
	if got := resp2.Header.Get("X-Regcoal-Cache"); got != "hit" {
		t.Fatalf("repeat cache header %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("repeat body differs:\n%s\n%s", body1, body2)
	}
	if s.Metrics().CacheHits.Load() != hitsBefore+1 {
		t.Fatal("cache hit counter did not increment")
	}
	if s.Metrics().SpillRequests.Load() != 2 {
		t.Fatalf("spill request counter = %d, want 2", s.Metrics().SpillRequests.Load())
	}
}

func TestSpillBadStrategyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/spill",
		`{"graph":{"vertices":2,"edges":[[0,1]],"k":2},"strategies":["nope"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}
