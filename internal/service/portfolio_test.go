package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"regcoal/internal/coalesce"
)

func intCmp(a, b int) int { return a - b }

func TestRaceReturnsBestDeterministically(t *testing.T) {
	members := []racer[int]{
		{name: "small", run: func(context.Context) (int, error) { return 1, nil }},
		{name: "big", run: func(context.Context) (int, error) { return 7, nil }},
		{name: "big-too", run: func(context.Context) (int, error) { return 7, nil }},
	}
	for i := 0; i < 50; i++ { // arrival order varies; winner must not
		best, winner, idx, hit, err := race(context.Background(), members, intCmp, nil)
		if err != nil || hit {
			t.Fatalf("err=%v deadlineHit=%v", err, hit)
		}
		if best != 7 || winner != "big" || idx != 1 {
			t.Fatalf("got (%d, %s, %d), want (7, big, 1): ties keep the earlier member", best, winner, idx)
		}
	}
}

func TestRaceSkipsInapplicable(t *testing.T) {
	members := []racer[int]{
		{name: "declines", run: func(context.Context) (int, error) {
			return 0, fmt.Errorf("%w: not my kind of graph", coalesce.ErrInapplicable)
		}},
		{name: "answers", run: func(context.Context) (int, error) { return 3, nil }},
	}
	best, winner, _, _, err := race(context.Background(), members, intCmp, nil)
	if err != nil || best != 3 || winner != "answers" {
		t.Fatalf("got (%d, %s, %v)", best, winner, err)
	}
}

func TestRaceAllFail(t *testing.T) {
	boom := errors.New("boom")
	members := []racer[int]{
		{name: "a", run: func(context.Context) (int, error) { return 0, boom }},
	}
	_, _, _, _, err := race(context.Background(), members, intCmp, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestRaceDeadlineReturnsBestSoFar(t *testing.T) {
	slowDone := make(chan struct{})
	defer close(slowDone)
	members := []racer[int]{
		{name: "fast", run: func(context.Context) (int, error) { return 2, nil }},
		{name: "slow", run: func(ctx context.Context) (int, error) {
			select {
			case <-slowDone:
			case <-ctx.Done():
			}
			return 99, nil
		}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	best, winner, _, hit, err := race(ctx, members, intCmp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("deadline race not marked deadlineHit")
	}
	if winner != "fast" && best != 99 {
		t.Fatalf("got (%d, %s)", best, winner)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("race did not return promptly after deadline")
	}
}

func TestRaceDeadlineWithNoAnswerWaitsForFirst(t *testing.T) {
	members := []racer[int]{
		{name: "late", run: func(ctx context.Context) (int, error) {
			<-ctx.Done() // honors cancellation, then reports its best
			return 5, nil
		}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	best, winner, _, hit, err := race(ctx, members, intCmp, nil)
	if err != nil || best != 5 || winner != "late" || !hit {
		t.Fatalf("got (%d, %s, hit=%v, err=%v), want the post-deadline answer", best, winner, hit, err)
	}
}

func TestNormalizeStrategies(t *testing.T) {
	got := normalizeStrategies([]string{"brute", "briggs", "brute"})
	if len(got) != 2 || got[0] != "briggs" || got[1] != "brute" {
		t.Fatalf("got %v", got)
	}
}
