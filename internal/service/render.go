package service

import (
	"sort"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/regalloc"
	"regcoal/internal/spill"
)

// Entries live in canonical vertex numbering (internal/graph CanonicalForm)
// so one cached solution answers every request whose instance has the same
// canonical hash. Building an entry translates a request-space solution
// into canonical space; rendering translates it back through the
// requesting instance's own permutation. Every response — computed or
// cached — is rendered through the same path, which is what makes repeated
// requests byte-identical.

// coalesceEntry converts a strategy result into a canonical-space entry.
func coalesceEntry(f *graph.File, perm []graph.V, res *coalesce.Result, winner string, deadlineHit bool) *entry {
	e := &entry{
		strategy:        winner,
		coalescedMoves:  len(res.Coalesced),
		coalescedWeight: res.CoalescedWeight,
		remainingWeight: res.RemainingWeight,
		colorable:       res.Colorable,
		deadlineHit:     deadlineHit,
		classes:         canonClasses(res.P, perm),
	}
	if res.Colorable {
		if q, old2new, err := graph.Quotient(f.G, res.P); err == nil {
			if qcol, ok := greedy.Color(q, f.K); ok {
				lifted := qcol.Lift(old2new)
				e.coloring = make([]int, len(lifted))
				for v, c := range lifted {
					e.coloring[perm[v]] = c
				}
			}
		}
	}
	return e
}

// allocateEntry converts an allocator result into a canonical-space entry.
func allocateEntry(perm []graph.V, res *regalloc.Result, winner string, deadlineHit bool) *entry {
	e := &entry{
		strategy:        winner,
		coalescedWeight: res.CoalescedWeight,
		remainingWeight: res.RemainingWeight,
		spills:          len(res.Spilled),
		deadlineHit:     deadlineHit,
		coloring:        make([]int, len(res.Coloring)),
	}
	for v, c := range res.Coloring {
		e.coloring[perm[v]] = c
	}
	for _, v := range res.Spilled {
		e.spilled = append(e.spilled, int(perm[v]))
	}
	sort.Ints(e.spilled)
	return e
}

// spillEntry converts a spill plan into a canonical-space entry.
func spillEntry(perm []graph.V, plan *spill.Plan, winner string, deadlineHit bool) *entry {
	e := &entry{
		strategy:    winner,
		spills:      len(plan.Spilled),
		spillCost:   plan.Cost,
		optimal:     plan.Optimal,
		deadlineHit: deadlineHit,
		coloring:    make([]int, len(plan.Coloring)),
	}
	for v, c := range plan.Coloring {
		e.coloring[perm[v]] = c
	}
	for _, v := range plan.Spilled {
		e.spilled = append(e.spilled, int(perm[v]))
	}
	sort.Ints(e.spilled)
	return e
}

// canonClasses maps partition classes into canonical ids, each class
// sorted, classes ordered by smallest member.
func canonClasses(p *graph.Partition, perm []graph.V) [][]int {
	classes := p.Classes()
	out := make([][]int, 0, len(classes))
	for _, cls := range classes {
		c := make([]int, len(cls))
		for i, v := range cls {
			c[i] = int(perm[v])
		}
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// renderCoalesce maps a canonical-space entry back into the requesting
// instance's numbering.
func renderCoalesce(f *graph.File, hash string, perm []graph.V, e *entry) *CoalesceResult {
	inv := make([]int, len(perm))
	for v, p := range perm {
		inv[p] = v
	}
	classes := make([][]int, 0, len(e.classes))
	for _, cls := range e.classes {
		c := make([]int, len(cls))
		for i, cid := range cls {
			c[i] = inv[cid]
		}
		sort.Ints(c)
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	res := &CoalesceResult{
		Hash:            hash,
		Vertices:        f.G.N(),
		Edges:           f.G.E(),
		Moves:           f.G.NumAffinities(),
		K:               f.K,
		Strategy:        e.strategy,
		CoalescedMoves:  e.coalescedMoves,
		CoalescedWeight: e.coalescedWeight,
		RemainingWeight: e.remainingWeight,
		Colorable:       e.colorable,
		DeadlineHit:     e.deadlineHit,
		Classes:         classes,
	}
	if e.coloring != nil {
		res.Coloring = make([]int, f.G.N())
		for v := range res.Coloring {
			res.Coloring[v] = e.coloring[perm[v]]
		}
	}
	return res
}

// renderSpill maps a canonical-space spill entry back into the requesting
// instance's numbering.
func renderSpill(f *graph.File, hash string, perm []graph.V, e *entry) *SpillResult {
	inv := make([]int, len(perm))
	for v, p := range perm {
		inv[p] = v
	}
	res := &SpillResult{
		Hash:        hash,
		Vertices:    f.G.N(),
		Edges:       f.G.E(),
		Moves:       f.G.NumAffinities(),
		K:           f.K,
		Strategy:    e.strategy,
		Spills:      e.spills,
		SpillCost:   e.spillCost,
		Optimal:     e.optimal,
		DeadlineHit: e.deadlineHit,
	}
	res.Coloring = make([]int, f.G.N())
	for v := range res.Coloring {
		res.Coloring[v] = e.coloring[perm[v]]
	}
	for _, cid := range e.spilled {
		res.Spilled = append(res.Spilled, inv[cid])
	}
	sort.Ints(res.Spilled)
	return res
}

// renderAllocate is renderCoalesce for the allocator endpoint.
func renderAllocate(f *graph.File, hash string, perm []graph.V, e *entry) *AllocateResult {
	inv := make([]int, len(perm))
	for v, p := range perm {
		inv[p] = v
	}
	res := &AllocateResult{
		Hash:            hash,
		Vertices:        f.G.N(),
		Edges:           f.G.E(),
		Moves:           f.G.NumAffinities(),
		K:               f.K,
		Strategy:        e.strategy,
		Spills:          e.spills,
		CoalescedWeight: e.coalescedWeight,
		RemainingWeight: e.remainingWeight,
		DeadlineHit:     e.deadlineHit,
	}
	res.Coloring = make([]int, f.G.N())
	for v := range res.Coloring {
		res.Coloring[v] = e.coloring[perm[v]]
	}
	for _, cid := range e.spilled {
		res.Spilled = append(res.Spilled, inv[cid])
	}
	sort.Ints(res.Spilled)
	return res
}
