package service

// POST /v1/coalesce/delta — the incremental delta-solve session API
// (internal/session). One endpoint, three operations selected by "op":
//
//	create  pin a base graph: {"op":"create","graph":{...},"k":4}
//	        → {"session_id","base_hash","version":0,"path":"fresh","result":{...}}
//	delta   apply an edit batch: {"op":"delta","session_id":...,
//	        "base_hash":...,"version":N,"deltas":[{"op":"add_edge","u":0,"v":3},...]}
//	        → {"session_id","version":N+1,"path":"memo|incremental|fresh","result":{...}}
//	close   {"op":"close","session_id":...} → {"closed":true}
//
// base_hash is the WL canonical hash of the base graph: the cluster
// router routes delta requests by it, so a session stays shard-sticky
// (the worker that created it keeps serving it). version is optional
// optimistic concurrency: when present it must match the session's
// current version (else 409), and concurrent duplicates of the same
// versioned batch collapse onto one application via the store's
// per-session singleflight. All client-side failures (malformed deltas,
// unknown vertex ids, duplicate edges, k underflow, unknown or evicted
// sessions) answer structured 4xx JSON — never a 5xx, never a panic.

import (
	"encoding/json"
	"errors"
	"net/http"

	"regcoal/internal/graph"
	"regcoal/internal/obs"
	"regcoal/internal/session"
)

// DeltaRequest is the body of POST /v1/coalesce/delta.
type DeltaRequest struct {
	// Op selects the operation: "create", "delta" (default), "close".
	Op string `json:"op,omitempty"`
	// Graph and K describe the base instance (create only; K overrides
	// the graph's own k when positive).
	Graph *GraphSpec `json:"graph,omitempty"`
	K     int        `json:"k,omitempty"`
	// SessionID addresses an existing session (delta and close).
	SessionID string `json:"session_id,omitempty"`
	// BaseHash, when present on a delta request, must match the
	// session's base hash (409 otherwise). The cluster router uses it as
	// the routing key.
	BaseHash string `json:"base_hash,omitempty"`
	// Version, when present, is the expected session version (409 on
	// mismatch); concurrent duplicates of one versioned batch collapse.
	Version *int64 `json:"version,omitempty"`
	// Deltas is the edit batch (delta only), validated atomically.
	Deltas []session.Delta `json:"deltas,omitempty"`
}

// DeltaResult is the solve carried by create and delta responses, in
// session vertex-id space.
type DeltaResult struct {
	K int `json:"k"`
	// Vertices counts alive vertices; NextVertex is the id the next
	// add_vertex delta will take (dead ids are never reused).
	Vertices   int  `json:"vertices"`
	NextVertex int  `json:"next_vertex"`
	Colorable  bool `json:"colorable"`

	CoalescedMoves  int   `json:"coalesced_moves"`
	CoalescedWeight int64 `json:"coalesced_weight"`
	RemainingMoves  int   `json:"remaining_moves"`
	RemainingWeight int64 `json:"remaining_weight"`

	// Classes is the coalescing: vertex classes over alive session ids,
	// ordered by smallest member.
	Classes [][]int `json:"classes"`
	// Coloring assigns a register per session id when Colorable (dead
	// vertices and uncolorable components get -1).
	Coloring []int `json:"coloring,omitempty"`
}

// DeltaResponse is the body of a successful /v1/coalesce/delta response.
type DeltaResponse struct {
	SessionID string `json:"session_id"`
	BaseHash  string `json:"base_hash,omitempty"`
	Version   int64  `json:"version"`
	// Path labels how the solve was obtained: "fresh", "incremental",
	// "memo", or "cached".
	Path   string       `json:"path,omitempty"`
	Closed bool         `json:"closed,omitempty"`
	Result *DeltaResult `json:"result,omitempty"`
}

// Sessions exposes the session store (for tests and embedders).
func (s *Server) Sessions() *session.Store { return s.sessions }

// sessionError lowers a session.ClientError to the solve path's
// status-carrying error type.
func sessionError(err error) error {
	var ce *session.ClientError
	if errors.As(err, &ce) {
		return &httpError{status: ce.Status, msg: ce.Msg}
	}
	return err
}

func renderDeltaResult(sol *session.Solve) *DeltaResult {
	res := &DeltaResult{
		K:               sol.K,
		Vertices:        sol.Alive,
		NextVertex:      sol.NextVertex,
		Colorable:       sol.Colorable,
		CoalescedMoves:  sol.CoalescedMoves,
		CoalescedWeight: sol.CoalescedWeight,
		RemainingMoves:  sol.RemainingMoves,
		RemainingWeight: sol.RemainingWeight,
		Classes:         make([][]int, sol.NumClasses),
	}
	for v, c := range sol.ClassID {
		if c >= 0 {
			res.Classes[c] = append(res.Classes[c], v)
		}
	}
	if sol.Colorable {
		res.Coloring = append([]int(nil), sol.Coloring...)
	}
	return res
}

func (s *Server) renderDeltaResponse(id, baseHash string, sol *session.Solve) *DeltaResponse {
	return &DeltaResponse{
		SessionID: id,
		BaseHash:  baseHash,
		Version:   sol.Version,
		Path:      string(sol.Path),
		Result:    renderDeltaResult(sol),
	}
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	s.metrics.DeltaRequests.Add(1)
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)

	tr := s.StartTrace(obs.EndpointDelta, r)
	defer s.FinishTrace(tr)
	w.Header().Set(TraceIDHeader, tr.ID.String())
	fail := func(err error) {
		err = sessionError(err)
		if ErrorStatus(err) == http.StatusBadRequest {
			s.metrics.BadRequests.Add(1)
		}
		tr.Status = ErrorStatus(err)
		s.writeError(w, err)
	}

	tr.BeginPhase(obs.PhaseDecode)
	var req DeltaRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		tr.EndPhase()
		fail(badRequest("decoding delta request: %v", err))
		return
	}
	tr.EndPhase()

	var resp *DeltaResponse
	switch req.Op {
	case "create":
		if req.Graph == nil {
			fail(badRequest("create requires a graph"))
			return
		}
		tr.BeginPhase(obs.PhaseDecode)
		f, err := req.Graph.ToFile()
		tr.EndPhase()
		if err != nil {
			fail(badRequest("parsing graph: %v", err))
			return
		}
		if f.G.N() > s.cfg.MaxVertices {
			fail(badRequest("graph carries %d vertices, limit %d", f.G.N(), s.cfg.MaxVertices))
			return
		}
		k := f.K
		if req.K > 0 {
			k = req.K
		}
		// The base hash is computed exactly like RoutingHash so that the
		// cluster router's key for the create body and for subsequent
		// delta bodies (which echo it) land on the same shard.
		tr.BeginPhase(obs.PhaseCanon)
		baseHash := graph.CanonicalForm(&graph.File{G: f.G, K: k}).Hash
		tr.EndPhase()
		tr.BeginPhase(obs.PhaseRace)
		sess, err := s.sessions.Create(f, k, baseHash)
		tr.EndPhase()
		if err != nil {
			fail(err)
			return
		}
		sess.View(func(sol *session.Solve) {
			resp = s.renderDeltaResponse(sess.ID(), sess.BaseHash(), sol)
		})

	case "", "delta":
		if req.SessionID == "" {
			fail(badRequest("delta requires a session_id"))
			return
		}
		if req.BaseHash != "" {
			sess, err := s.sessions.Get(req.SessionID)
			if err != nil {
				fail(err)
				return
			}
			if sess.BaseHash() != req.BaseHash {
				s.sessions.Metrics().Conflicts.Add(1)
				fail(&httpError{status: http.StatusConflict,
					msg: "base_hash does not match the session's base graph"})
				return
			}
		}
		version := int64(-1)
		if req.Version != nil {
			version = *req.Version
			if version < 0 {
				fail(badRequest("version must be non-negative"))
				return
			}
		}
		tr.BeginPhase(obs.PhaseRace)
		out, err := s.sessions.Apply(req.SessionID, version, req.Deltas, func(sol *session.Solve) (any, error) {
			return s.renderDeltaResponse(req.SessionID, req.BaseHash, sol), nil
		})
		tr.EndPhase()
		if err != nil {
			fail(err)
			return
		}
		resp = out.(*DeltaResponse)

	case "close":
		if req.SessionID == "" {
			fail(badRequest("close requires a session_id"))
			return
		}
		if err := s.sessions.Close(req.SessionID); err != nil {
			fail(err)
			return
		}
		resp = &DeltaResponse{SessionID: req.SessionID, Closed: true}

	default:
		fail(badRequest("unknown op %q (want create, delta, close)", req.Op))
		return
	}

	tr.Status = http.StatusOK
	tr.BeginPhase(obs.PhaseEncode)
	data, err := json.Marshal(resp)
	tr.EndPhase()
	if err != nil {
		s.metrics.Errors.Add(1)
		tr.Status = http.StatusInternalServerError
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	if h := obs.BuildPhasesHeader(tr); h != "" {
		w.Header().Set(PhasesHeader, h)
	}
	s.writeRaw(w, http.StatusOK, data)
}
