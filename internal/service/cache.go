package service

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Sharded LRU result cache. Keys are canonical-instance hashes prefixed
// with the endpoint and portfolio (see cacheKey in service.go), values are
// canonical-space solutions (entry) that render back into any vertex
// numbering with the same canonical form. Sharding keeps lock contention
// off the hot path under concurrent traffic; each shard is an independent
// mutex + map + intrusive LRU list.

// entry is a cached solution in canonical vertex numbering. Entries are
// immutable once stored: readers render them without locks.
type entry struct {
	classes  [][]int // coalescing classes, canonical ids, sorted
	coloring []int   // per canonical vertex, nil when absent
	spilled  []int   // canonical ids (allocate only), sorted

	strategy        string
	coalescedMoves  int
	coalescedWeight int64
	remainingWeight int64
	colorable       bool
	spills          int
	spillCost       int64 // spill endpoint only
	optimal         bool  // spill endpoint only
	deadlineHit     bool
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recent; values are *cacheItem
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	val *entry
}

// Cache is the sharded LRU.
type Cache struct {
	shards    []*cacheShard
	perShard  int
	evictions atomic.Int64
}

// NewCache builds a cache holding roughly capacity entries across shards
// (each shard holds capacity/shards, minimum 1). capacity <= 0 disables
// caching: Get always misses, Put is a no-op.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		return &Cache{}
	}
	if shards <= 0 {
		shards = 16
	}
	if shards > capacity {
		shards = capacity
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]*cacheShard, shards), perShard: per}
	for i := range c.shards {
		c.shards[i] = &cacheShard{ll: list.New(), items: make(map[string]*list.Element)}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	if len(c.shards) == 0 {
		return nil
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns a copy of the cached solution for key, marking it most
// recently used. Returning the entry by value (not the internal *entry)
// keeps the cache's own record unreachable from callers: a renderer
// cannot swap fields on what later hits observe. The copy shares the
// entry's slice payloads, which are immutable once stored (see the entry
// doc); callers must treat them as read-only.
func (c *Cache) Get(key string) (entry, bool) {
	s := c.shard(key)
	if s == nil {
		return entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return entry{}, false
	}
	s.ll.MoveToFront(el)
	return *el.Value.(*cacheItem).val, true
}

// Put stores val under key, evicting the shard's least recently used
// entry when full. An entry computed to completion (deadlineHit false)
// replaces a deadline-truncated one, never the other way around: when two
// identical requests miss concurrently, the tight-deadline loser must not
// permanently shadow the complete answer.
func (c *Cache) Put(key string, val *entry) {
	s := c.shard(key)
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		item := el.Value.(*cacheItem)
		if !(val.deadlineHit && !item.val.deadlineHit) {
			item.val = val
		}
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheItem{key: key, val: val})
	for s.ll.Len() > c.perShard {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
}

// Keys returns every resident key, shard by shard, without touching LRU
// order. It is the enumeration side of the cluster's handoff protocol:
// on a topology change, the old owner walks its keys to find the entries
// whose hash ranges moved. The snapshot is per-shard consistent, not
// globally atomic — concurrent inserts may or may not appear, which is
// fine for a best-effort stream (a missed entry costs one future peer
// fill).
func (c *Cache) Keys() []string {
	out := make([]string, 0, c.Len())
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*cacheItem).key)
		}
		s.mu.Unlock()
	}
	return out
}

// Evictions reports how many entries the cache has evicted since start.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Len reports the total number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
