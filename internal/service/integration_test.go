package service_test

// Integration test for the acceptance criterion: the service under >= 64
// concurrent loadgen requests answers every request with a valid
// coalescing/coloring, serves repeated graphs from the cache with
// byte-identical bodies and a cache-hit counter increment, and answers
// deadline-exceeded requests with the best heuristic result instead of an
// error.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/service"
	"regcoal/internal/service/loadgen"
)

func startService(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func quickInstances(t *testing.T) []*corpus.Instance {
	t.Helper()
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20060408, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestServiceUnderConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent load test")
	}
	s, ts := startService(t, service.Config{
		Workers:         8,
		QueueCap:        1024, // every request must be answered, not shed
		DefaultDeadline: 500 * time.Millisecond,
	})

	insts := quickInstances(t)
	jobs, err := loadgen.JobsFromInstances(insts, loadgen.JobOptions{Format: "native"})
	if err != nil {
		t.Fatal(err)
	}

	const concurrency, total = 64, 256
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:     ts.URL,
		Endpoint:    "coalesce",
		Concurrency: concurrency,
		Requests:    total,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coalesce load:\n%s", rep.String())
	if rep.Failed > 0 {
		t.Fatalf("%d invalid or failed responses; first: %s", rep.Failed, rep.FirstFailure)
	}
	if rep.Rejected > 0 {
		t.Fatalf("%d requests shed despite a queue sized for the test", rep.Rejected)
	}
	if rep.OK != total {
		t.Fatalf("%d ok responses, want %d", rep.OK, total)
	}
	// total > len(jobs), so instances repeated and must have hit the cache.
	if rep.CacheHits == 0 {
		t.Fatal("no cache hits over repeated instances")
	}
	if s.Metrics().CacheHits.Load() == 0 {
		t.Fatal("server cache-hit counter never incremented")
	}

	// The other endpoint under the same load, with mixed encodings.
	dimacsJobs, err := loadgen.JobsFromInstances(insts, loadgen.JobOptions{Format: "dimacs"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:     ts.URL,
		Endpoint:    "allocate",
		Concurrency: concurrency,
		Requests:    len(dimacsJobs),
	}, dimacsJobs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("allocate load:\n%s", rep.String())
	if rep.Failed > 0 {
		t.Fatalf("allocate: %d invalid responses; first: %s", rep.Failed, rep.FirstFailure)
	}
}

func TestRepeatedGraphByteIdenticalUnderLoad(t *testing.T) {
	s, ts := startService(t, service.Config{Workers: 4, QueueCap: 256})
	insts := quickInstances(t)
	inst := insts[len(insts)/2]
	jobs, err := loadgen.JobsFromInstances([]*corpus.Instance{inst}, loadgen.JobOptions{Format: "native"})
	if err != nil {
		t.Fatal(err)
	}
	body := func() []byte {
		resp, err := http.Post(ts.URL+"/v1/coalesce", "application/json", bytes.NewReader(jobs[0].Body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes()
	}
	first := body()
	hits := s.Metrics().CacheHits.Load()
	for i := 0; i < 8; i++ {
		if got := body(); !bytes.Equal(got, first) {
			t.Fatalf("repeat %d body differs:\n%s\n%s", i, first, got)
		}
	}
	if s.Metrics().CacheHits.Load() != hits+8 {
		t.Fatalf("cache hits went %d -> %d, want +8", hits, s.Metrics().CacheHits.Load())
	}
}

// A dense instance inside the exact envelope: branch and bound over 14
// moves with a per-leaf colorability check takes far longer than the 1ms
// deadline, so the race is cut off and must still answer with the best
// heuristic result.
func TestDeadlineExceededStillAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomER(rng, 48, 0.4)
	graph.SprinkleAffinities(rng, g, 14, 100)
	f := &graph.File{G: g, K: 6}
	var dimacs strings.Builder
	if err := graph.WriteDIMACSFile(&dimacs, f); err != nil {
		t.Fatal(err)
	}

	_, ts := startService(t, service.Config{Workers: 4})
	req, err := json.Marshal(&service.Request{
		Graph:      &service.GraphSpec{Dimacs: dimacs.String()},
		DeadlineMS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/coalesce", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.CoalesceResult
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-exceeded request answered %d, want 200 with best-effort result", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.DeadlineHit {
		t.Fatal("race was not marked deadline_hit at 1ms over a branch-and-bound instance")
	}
	if out.Strategy == "" {
		t.Fatal("no winning strategy reported")
	}
	if err := loadgen.ValidateCoalesce(f, &out); err != nil {
		t.Fatalf("best-effort answer invalid: %v", err)
	}
}

// Acceptance criterion: POST /v1/spill and the spill-aware /v1/allocate
// return k-feasible allocations on both high-pressure corpus families.
// Every response is validated by the loadgen checkers: spilled vertices
// uncolored, survivors properly colored within k.
func TestSpillAndAllocateOnPressureFamilies(t *testing.T) {
	_, ts := startService(t, service.Config{Workers: 4, QueueCap: 256})
	jobs, err := loadgen.BuildJobs("ssa-pressure,interval-pressure", 20060408, true, loadgen.JobOptions{Format: "native"})
	if err != nil {
		t.Fatal(err)
	}
	for _, endpoint := range []string{"spill", "allocate"} {
		rep, err := loadgen.Run(context.Background(), loadgen.Options{
			BaseURL:     ts.URL,
			Endpoint:    endpoint,
			Concurrency: 8,
			Requests:    len(jobs),
		}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s pressure load:\n%s", endpoint, rep.String())
		if rep.Failed > 0 {
			t.Fatalf("%s: %d invalid responses; first: %s", endpoint, rep.Failed, rep.FirstFailure)
		}
		if rep.OK != len(jobs) {
			t.Fatalf("%s: %d ok responses, want %d", endpoint, rep.OK, len(jobs))
		}
	}
	// On pressure instances every answer must actually spill: check one
	// directly for the spill endpoint.
	resp, err := http.Post(ts.URL+"/v1/spill", "application/json", bytes.NewReader(jobs[0].Body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.SpillResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Spills == 0 {
		t.Fatalf("pressure instance answered with zero spills: %+v", out)
	}
	if err := loadgen.ValidateSpill(jobs[0].File, &out); err != nil {
		t.Fatal(err)
	}
}
