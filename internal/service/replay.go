package service

// Session replay: rebuilding a delta-solve session from its raw op log.
// The cluster replicates each session's create body and ordered delta
// bodies to the secondary replicas of its base hash; when the primary
// dies, the replica that inherits the session re-runs the log through
// the same machinery that served it live. The session engine is
// deterministic, so the rebuilt session's state — version, id space,
// solve, even the path labels of subsequent deltas — is identical to
// the uninterrupted original's, and the client's next request answers
// byte-identically.

import (
	"encoding/json"
	"fmt"

	"regcoal/internal/graph"
	"regcoal/internal/session"
)

// ReplaySession rebuilds session id from its replicated op log: create
// is the original create request body, deltas the ordered delta request
// bodies that were applied since. The session registers under the same
// id (409 inside if it is already live). baseHash, when empty, is
// recomputed from the base graph exactly like handleDelta does.
func (s *Server) ReplaySession(id, baseHash string, create []byte, deltas [][]byte) error {
	var req DeltaRequest
	if err := json.Unmarshal(create, &req); err != nil {
		return fmt.Errorf("replay %s: decoding create: %w", id, err)
	}
	if req.Graph == nil {
		return fmt.Errorf("replay %s: create log entry carries no graph", id)
	}
	f, err := req.Graph.ToFile()
	if err != nil {
		return fmt.Errorf("replay %s: parsing graph: %w", id, err)
	}
	k := f.K
	if req.K > 0 {
		k = req.K
	}
	if baseHash == "" {
		baseHash = graph.CanonicalForm(&graph.File{G: f.G, K: k}).Hash
	}
	if _, err := s.sessions.CreateWithID(id, f, k, baseHash); err != nil {
		return fmt.Errorf("replay %s: %w", id, err)
	}
	discard := func(sol *session.Solve) (any, error) { return nil, nil }
	for i, body := range deltas {
		var dr DeltaRequest
		if err := json.Unmarshal(body, &dr); err != nil {
			return fmt.Errorf("replay %s: decoding delta %d: %w", id, i, err)
		}
		version := int64(-1)
		if dr.Version != nil {
			version = *dr.Version
		}
		if _, err := s.sessions.Apply(id, version, dr.Deltas, discard); err != nil {
			return fmt.Errorf("replay %s: applying delta %d: %w", id, i, err)
		}
	}
	return nil
}
