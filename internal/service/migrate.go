package service

// Service-side surface of the cluster's resharding protocol: cache key
// enumeration for the handoff stream and session export/import built on
// the deterministic replay machinery.

import (
	"strings"

	"regcoal/internal/session"
)

// CacheKeys returns every resident cache key. The cluster's handoff
// engine walks these on a topology change to find the entries whose hash
// ranges were reassigned.
func (s *Server) CacheKeys() []string { return s.cache.Keys() }

// KeyRoutingHash extracts the canonical routing hash from a cache key.
// Keys have the shape "kind|strategies|hash" (see Prepare); the hash is
// everything after the last separator — strategies are comma-joined and
// never contain one.
func KeyRoutingHash(key string) string {
	if i := strings.LastIndexByte(key, '|'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// ExportSession serializes live session id for migration: the raw op
// log (owned by the caller's replication layer) pinned to the live
// session's base hash and version. See session.Store.Export.
func (s *Server) ExportSession(id string, create []byte, deltas [][]byte) (*session.ExportRecord, error) {
	return s.sessions.Export(id, create, deltas)
}

// ImportSession validates an exported session record and rebuilds the
// session by deterministic replay, registering it under its original id.
// Validation failures and replay rejections are ClientErrors (4xx via
// ErrorStatus); a session already live under the id is the replay path's
// 409.
func (s *Server) ImportSession(rec *session.ExportRecord) error {
	return s.sessions.Import(rec, s.ReplaySession)
}
