// Package service is the online request-serving layer over the coalescing
// substrate: an HTTP/JSON API that accepts interference graphs (native
// JSON, the textual challenge format, or DIMACS), dispatches them onto a
// shared worker pool (internal/engine), races a strategy portfolio under a
// per-request deadline (portfolio.go), and memoizes answers in a sharded
// LRU keyed by canonical graph hash (internal/graph CanonicalForm) so that
// repeated instances — even renumbered ones the refinement can identify —
// are answered from memory with byte-identical bodies. Concurrent
// identical misses collapse to one portfolio race through a singleflight
// group keyed the same way (internal/singleflight).
//
// Endpoints:
//
//	POST /v1/coalesce  race the coalescing portfolio; best answer wins
//	POST /v1/allocate  race the allocators (IRC + Chaitin + spill-first)
//	POST /v1/spill     race the spillers (greedy, incremental, exact)
//	POST /v1/batch     many instances, one decode pass, pool fan-out
//	GET  /healthz      liveness (alias of /livez)
//	GET  /livez        liveness: process is up
//	GET  /readyz       readiness: 503 while draining, else 200
//	GET  /metrics      Prometheus exposition
//	GET  /stats        JSON counter snapshot
//
// Overload surfaces as backpressure: when the bounded submission queue is
// full, requests are rejected with 429 instead of queueing without bound.
//
// The solve path is exposed to embedders (the cluster worker in
// internal/cluster) in two steps: Prepare parses and canonicalizes a
// request into a Prepared carrying the cache key, and SolvePrepared
// answers it — cache, singleflight, pool and rendering included — as the
// exact bytes the HTTP handler would write. See prepared.go.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"regcoal/internal/engine"
	"regcoal/internal/graph"
	"regcoal/internal/obs"
	"regcoal/internal/session"
	"regcoal/internal/singleflight"
)

// Trace propagation headers. TraceIDHeader carries the request's trace
// ID end to end (router → worker → peer fill); TraceHeader set to "1"
// (or the trace=1 query parameter) opts the response body into a full
// solve timeline; PhasesHeader reports per-phase durations on every
// traced response; FamilyHeader lets load generators label requests
// with a corpus family for pprof attribution and /debug/requests.
const (
	TraceIDHeader = "X-Regcoal-Trace-Id"
	TraceHeader   = "X-Regcoal-Trace"
	PhasesHeader  = "X-Regcoal-Phases"
	FamilyHeader  = "X-Regcoal-Family"
)

// Config parameterizes a Server. Zero values take defaults.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds jobs waiting for a worker; a full queue rejects
	// with 429 (default 4 × Workers).
	QueueCap int
	// CacheCapacity is the result cache size in entries (default 4096;
	// negative disables caching).
	CacheCapacity int
	// CacheShards spreads cache locking (default 16).
	CacheShards int
	// DefaultDeadline applies when a request does not set deadline_ms;
	// MaxDeadline clamps what a request may ask for (defaults 2s / 30s).
	DefaultDeadline, MaxDeadline time.Duration
	// Portfolio is the default coalescing strategy portfolio (default
	// DefaultPortfolio()).
	Portfolio []string
	// ExactMaxMoves/ExactMaxVertices bound the instances the anytime
	// exact member admits (defaults 14 / 48, as in the batch engine).
	ExactMaxMoves, ExactMaxVertices int
	// SpillExactNodes is the branch-and-bound node budget of the spill
	// endpoint's exact member (default 16384, ~tens of milliseconds):
	// beyond it the member answers with its anytime incumbent instead of
	// holding a worker for the rest of the deadline.
	SpillExactNodes int
	// MaxVertices rejects oversized request graphs with 400 (default
	// 200000).
	MaxVertices int
	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the graphs one batch request may carry (default
	// 256).
	MaxBatch int
	// MaxSessions caps live delta-solve sessions (LRU eviction past it;
	// default 256) and SessionTTL expires idle ones (default 15m).
	// SessionBudget bounds the incremental affected-region re-solve in
	// vertices before falling back to a full fresh solve (default 16384).
	MaxSessions   int
	SessionTTL    time.Duration
	SessionBudget int
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.Workers
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if len(c.Portfolio) == 0 {
		c.Portfolio = DefaultPortfolio()
	}
	if c.ExactMaxMoves <= 0 {
		c.ExactMaxMoves = 14
	}
	if c.ExactMaxVertices <= 0 {
		c.ExactMaxVertices = 48
	}
	if c.SpillExactNodes <= 0 {
		c.SpillExactNodes = 1 << 14
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 200000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
}

// Server is the online coalescing service.
type Server struct {
	cfg      Config
	pool     *engine.Pool
	cache    *Cache
	metrics  *Metrics
	lat      *obs.Set
	tracer   *obs.Tracer
	mux      *http.ServeMux
	flights  singleflight.Group
	sessions *session.Store

	draining  atomic.Bool
	baseCtx   context.Context
	cancelAll context.CancelFunc
}

// New builds a Server and its worker pool. Call Close to drain.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if _, err := (&Server{cfg: cfg}).coalesceRacers(&graph.File{G: graph.New(1), K: 1}, cfg.Portfolio); err != nil {
		return nil, fmt.Errorf("service: bad portfolio: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		pool:      engine.NewPool(cfg.Workers, cfg.QueueCap),
		cache:     NewCache(cfg.CacheCapacity, cfg.CacheShards),
		metrics:   newMetrics(),
		lat:       obs.NewSet(),
		tracer:    obs.NewTracer(128, 32, time.Millisecond),
		mux:       http.NewServeMux(),
		baseCtx:   ctx,
		cancelAll: cancel,
		sessions: session.NewStore(session.StoreConfig{
			MaxSessions: cfg.MaxSessions,
			TTL:         cfg.SessionTTL,
			Solver:      session.SolverConfig{Budget: cfg.SessionBudget},
		}),
	}
	s.mux.HandleFunc("/v1/coalesce", s.handleSolve(KindCoalesce))
	s.mux.HandleFunc("/v1/coalesce/delta", s.handleDelta)
	s.mux.HandleFunc("/v1/allocate", s.handleSolve(KindAllocate))
	s.mux.HandleFunc("/v1/spill", s.handleSolve(KindSpill))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleLivez)
	s.mux.HandleFunc("/livez", s.handleLivez)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/debug/requests", s.tracer.ServeDebug)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Config returns the server's effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Close cancels in-flight computations and drains the worker pool. Call
// after the HTTP listener has stopped accepting requests (and, for a
// graceful exit, after Drain has let in-flight requests finish — Close
// alone cuts running races short).
func (s *Server) Close() {
	s.cancelAll()
	s.pool.Close()
}

// BeginDrain flips the server to draining: /readyz starts answering 503
// so routers and load balancers stop sending new work, while already
// accepted requests (including batch fan-outs) keep computing.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain marks the server draining and blocks until every in-flight
// request (single and batch) has been answered, or ctx expires. The
// graceful shutdown order is: stop advertising readiness and wait for
// quiesce (Drain), stop the listener, then Close.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.metrics.InFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Kind identifies a solve endpoint: which portfolio a request races.
type Kind int

const (
	KindCoalesce Kind = iota
	KindAllocate
	KindSpill
)

func (k Kind) String() string {
	switch k {
	case KindAllocate:
		return "allocate"
	case KindSpill:
		return "spill"
	}
	return "coalesce"
}

// ParseKind resolves an endpoint name ("coalesce", "allocate", "spill");
// the empty string defaults to coalesce.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "", "coalesce":
		return KindCoalesce, nil
	case "allocate":
		return KindAllocate, nil
	case "spill":
		return KindSpill, nil
	}
	return KindCoalesce, fmt.Errorf("unknown kind %q (want coalesce, allocate, spill)", name)
}

// httpError carries a status code through the solve path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// ErrorStatus maps a solve-path error to its HTTP status (500 when the
// error carries none). Embedders writing their own responses (the
// cluster worker) use it to answer with the same codes the service's own
// handlers would.
func ErrorStatus(err error) int {
	he := &httpError{}
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// EndpointOf maps a solve kind to its observability endpoint.
func EndpointOf(kind Kind) obs.Endpoint {
	switch kind {
	case KindAllocate:
		return obs.EndpointAllocate
	case KindSpill:
		return obs.EndpointSpill
	}
	return obs.EndpointCoalesce
}

// StartTrace begins a pooled trace for one request: the propagated
// X-Regcoal-Trace-Id is adopted when present (a fresh ID is minted
// otherwise) and the X-Regcoal-Family label is captured. Exported for
// the cluster worker, which runs the same solve path behind its own mux.
func (s *Server) StartTrace(e obs.Endpoint, r *http.Request) *obs.Trace {
	id, _ := obs.ParseTraceID(r.Header.Get(TraceIDHeader))
	tr := s.tracer.Start(e, id)
	tr.Family = r.Header.Get(FamilyHeader)
	return tr
}

// FinishTrace closes the trace, feeds its end-to-end and per-phase
// durations into the latency histograms, and files it into the
// recent/slow rings. Allocation-free in steady state.
func (s *Server) FinishTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.EndPhase()
	for i := 0; i < tr.NPhases; i++ {
		sp := &tr.Phases[i]
		s.lat.ObservePhase(tr.Endpoint, sp.Phase, time.Duration(sp.EndNS-sp.StartNS))
	}
	s.lat.ObserveRequest(tr.Endpoint, time.Duration(tr.Since()))
	s.tracer.Finish(tr)
}

// Tracer exposes the trace rings (for embedders mounting their own
// /debug/requests route).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Latency exposes the latency histogram set (for embedders and tests).
func (s *Server) Latency() *obs.Set { return s.lat }

// TraceWanted reports whether the request opted into a full solve
// timeline in the response body (?trace=1 or X-Regcoal-Trace: 1).
func TraceWanted(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1" || r.Header.Get(TraceHeader) == "1"
}

func (s *Server) handleSolve(kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
			return
		}
		switch kind {
		case KindCoalesce:
			s.metrics.CoalesceRequests.Add(1)
		case KindAllocate:
			s.metrics.AllocateRequests.Add(1)
		case KindSpill:
			s.metrics.SpillRequests.Add(1)
		}
		s.metrics.InFlight.Add(1)
		defer s.metrics.InFlight.Add(-1)

		tr := s.StartTrace(EndpointOf(kind), r)
		defer s.FinishTrace(tr)
		w.Header().Set(TraceIDHeader, tr.ID.String())
		fail := func(err error) {
			tr.Status = ErrorStatus(err)
			s.writeError(w, err)
		}

		tr.BeginPhase(obs.PhaseDecode)
		var req Request
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			fail(badRequest("decoding request: %v", err))
			return
		}

		if len(req.Batch) > 0 {
			if req.Graph != nil {
				fail(badRequest("use either graph or batch, not both"))
				return
			}
			if len(req.Batch) > s.cfg.MaxBatch {
				fail(badRequest("batch carries %d graphs, limit %d", len(req.Batch), s.cfg.MaxBatch))
				return
			}
			tr.EndPhase()
			resp := s.runBatch(kind, req.Batch)
			tr.BeginPhase(obs.PhaseEncode)
			data, err := json.Marshal(resp)
			tr.EndPhase()
			if err != nil {
				s.metrics.Errors.Add(1)
				tr.Status = http.StatusInternalServerError
				http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
				return
			}
			tr.Status = http.StatusOK
			s.writeRaw(w, http.StatusOK, data)
			return
		}
		p, err := s.PrepareTraced(kind, &req, tr)
		if err != nil {
			fail(err)
			return
		}
		body2, disposition, err := s.SolvePreparedTraced(p, tr)
		if err != nil {
			fail(err)
			return
		}
		tr.Cache = disposition
		tr.Status = http.StatusOK
		w.Header().Set("X-Regcoal-Cache", disposition)
		if h := obs.BuildPhasesHeader(tr); h != "" {
			w.Header().Set(PhasesHeader, h)
		}
		if TraceWanted(r) {
			// Opt-in only: the spliced body is the one deliberate departure
			// from byte-identity, and the splice leaves every preceding byte
			// untouched.
			tr.DurNS = tr.Since()
			body2 = obs.SpliceTraceJSON(body2, tr)
		}
		s.writeRaw(w, http.StatusOK, body2)
	}
}

// handleBatch serves POST /v1/batch: many instances of one kind decoded
// in a single pass and fanned out onto the pool. In a cluster, the
// router splits these per shard; single-node, the amortization is the
// one JSON decode and connection for the whole set.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	s.metrics.BatchRequests.Add(1)
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)

	var req BatchSolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest("decoding batch request: %v", err))
		return
	}
	kind, err := ParseKind(req.Kind)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, badRequest("empty batch"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		s.writeError(w, badRequest("batch carries %d graphs, limit %d", len(req.Items), s.cfg.MaxBatch))
		return
	}
	s.writeJSON(w, http.StatusOK, s.runBatch(kind, req.Items))
}

// runBatch fans the items out onto the pool with bounded concurrency and
// collects all results in request order. Per-element failures (including
// 429 saturation) are reported in place; the batch itself answers 200.
func (s *Server) runBatch(kind Kind, items []Request) *BatchResponse {
	s.metrics.BatchGraphs.Add(int64(len(items)))
	resp := &BatchResponse{Results: make([]BatchEntry, len(items))}
	// Fan out with bounded concurrency: canonicalization and parsing run
	// on these goroutines before the pool's own bound applies, so a batch
	// must not spawn one goroutine per element.
	fanout := s.cfg.Workers * 2
	if fanout > len(items) {
		fanout = len(items)
	}
	idxCh := make(chan int)
	done := make(chan struct{})
	for w := 0; w < fanout; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idxCh {
				resp.Results[i] = s.solveBatchItem(kind, &items[i])
			}
		}()
	}
	for i := range items {
		idxCh <- i
	}
	close(idxCh)
	for w := 0; w < fanout; w++ {
		<-done
	}
	return resp
}

// solveBatchItem answers one batch element as an in-place entry.
func (s *Server) solveBatchItem(kind Kind, sub *Request) BatchEntry {
	if len(sub.Batch) > 0 {
		return BatchEntry{Error: "batch elements must not nest batches"}
	}
	p, err := s.Prepare(kind, sub)
	if err != nil {
		return BatchEntry{Error: err.Error()}
	}
	e, _ := s.SolveBatchEntry(p)
	return e
}

// SolveBatchEntry answers a prepared request as a batch entry plus the
// cache disposition ("hit", "miss", "collapse", or "" on error). Exported
// for the cluster worker, which prepares items itself to consult the
// tiered cache before solving.
func (s *Server) SolveBatchEntry(p *Prepared) (BatchEntry, string) {
	out, disposition, err := s.solvePreparedAny(p, nil)
	if err != nil {
		return BatchEntry{Error: err.Error()}, ""
	}
	switch v := out.(type) {
	case *CoalesceResult:
		return BatchEntry{Coalesce: v}, disposition
	case *AllocateResult:
		return BatchEntry{Allocate: v}, disposition
	case *SpillResult:
		return BatchEntry{Spill: v}, disposition
	}
	return BatchEntry{Error: "internal: unknown result type"}, ""
}

// RunBatch answers a legacy in-request batch (Request.Batch) with bounded
// pool fan-out. Exported for the cluster worker's solve endpoints.
func (s *Server) RunBatch(kind Kind, items []Request) *BatchResponse { return s.runBatch(kind, items) }

func (s *Server) render(kind Kind, inst *graph.File, canon *graph.Canonical, e *entry) any {
	switch kind {
	case KindAllocate:
		return renderAllocate(inst, canon.Hash, canon.Perm, e)
	case KindSpill:
		return renderSpill(inst, canon.Hash, canon.Perm, e)
	}
	return renderCoalesce(inst, canon.Hash, canon.Perm, e)
}

func (s *Server) countBad(e *httpError) *httpError {
	s.metrics.BadRequests.Add(1)
	return e
}

func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WritePrometheus(w)
}

// WritePrometheus renders the counter set, the latency histogram
// families, pool gauges, and Go runtime gauges in Prometheus exposition
// format (the body of GET /metrics, exposed for embedders that append
// their own families).
func (s *Server) WritePrometheus(w io.Writer) {
	s.metrics.writePrometheus(w, s.cache.Len(), s.pool.QueueDepth(), s.cache.Evictions())
	s.sessions.Metrics().WritePrometheus(w)
	fmt.Fprintf(w, "# HELP regcoal_pool_workers Worker goroutines in the solve pool.\n# TYPE regcoal_pool_workers gauge\nregcoal_pool_workers %d\n", s.cfg.Workers)
	s.lat.WritePrometheus(w)
	obs.WriteRuntimePrometheus(w)
}

// StatsSnapshot returns the JSON counter snapshot served on GET /stats
// (exposed for embedders that wrap it with their own sections).
func (s *Server) StatsSnapshot() Stats {
	st := s.metrics.snapshot(s.cache.Len(), s.pool.QueueDepth(), s.cache.Evictions())
	st.Latency = s.lat.Snapshot()
	sess := s.sessions.Metrics().Snapshot()
	st.Sessions = &sess
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// writeJSON marshals once and writes the exact bytes: the body of a
// repeated request must be byte-identical, so nothing non-deterministic
// may enter here.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.metrics.Errors.Add(1)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	s.writeRaw(w, status, data)
}

func (s *Server) writeRaw(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	he := &httpError{}
	if !errors.As(err, &he) {
		he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	s.writeJSON(w, he.status, ErrorResponse{Error: he.msg})
}
