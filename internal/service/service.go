// Package service is the online request-serving layer over the coalescing
// substrate: an HTTP/JSON API that accepts interference graphs (native
// JSON, the textual challenge format, or DIMACS), dispatches them onto a
// shared worker pool (internal/engine), races a strategy portfolio under a
// per-request deadline (portfolio.go), and memoizes answers in a sharded
// LRU keyed by canonical graph hash (internal/graph CanonicalForm) so that
// repeated instances — even renumbered ones the refinement can identify —
// are answered from memory with byte-identical bodies.
//
// Endpoints:
//
//	POST /v1/coalesce  race the coalescing portfolio; best answer wins
//	POST /v1/allocate  race the allocators (IRC + Chaitin + spill-first)
//	POST /v1/spill     race the spillers (greedy, incremental, exact)
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus exposition
//	GET  /stats        JSON counter snapshot
//
// Overload surfaces as backpressure: when the bounded submission queue is
// full, requests are rejected with 429 instead of queueing without bound.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"regcoal/internal/engine"
	"regcoal/internal/graph"
)

// Config parameterizes a Server. Zero values take defaults.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds jobs waiting for a worker; a full queue rejects
	// with 429 (default 4 × Workers).
	QueueCap int
	// CacheCapacity is the result cache size in entries (default 4096;
	// negative disables caching).
	CacheCapacity int
	// CacheShards spreads cache locking (default 16).
	CacheShards int
	// DefaultDeadline applies when a request does not set deadline_ms;
	// MaxDeadline clamps what a request may ask for (defaults 2s / 30s).
	DefaultDeadline, MaxDeadline time.Duration
	// Portfolio is the default coalescing strategy portfolio (default
	// DefaultPortfolio()).
	Portfolio []string
	// ExactMaxMoves/ExactMaxVertices bound the instances the anytime
	// exact member admits (defaults 14 / 48, as in the batch engine).
	ExactMaxMoves, ExactMaxVertices int
	// SpillExactNodes is the branch-and-bound node budget of the spill
	// endpoint's exact member (default 16384, ~tens of milliseconds):
	// beyond it the member answers with its anytime incumbent instead of
	// holding a worker for the rest of the deadline.
	SpillExactNodes int
	// MaxVertices rejects oversized request graphs with 400 (default
	// 200000).
	MaxVertices int
	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the graphs one batch request may carry (default
	// 256).
	MaxBatch int
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.Workers
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if len(c.Portfolio) == 0 {
		c.Portfolio = DefaultPortfolio()
	}
	if c.ExactMaxMoves <= 0 {
		c.ExactMaxMoves = 14
	}
	if c.ExactMaxVertices <= 0 {
		c.ExactMaxVertices = 48
	}
	if c.SpillExactNodes <= 0 {
		c.SpillExactNodes = 1 << 14
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 200000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
}

// Server is the online coalescing service.
type Server struct {
	cfg     Config
	pool    *engine.Pool
	cache   *Cache
	metrics *Metrics
	mux     *http.ServeMux

	baseCtx   context.Context
	cancelAll context.CancelFunc
}

// New builds a Server and its worker pool. Call Close to drain.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if _, err := (&Server{cfg: cfg}).coalesceRacers(&graph.File{G: graph.New(1), K: 1}, cfg.Portfolio); err != nil {
		return nil, fmt.Errorf("service: bad portfolio: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		pool:      engine.NewPool(cfg.Workers, cfg.QueueCap),
		cache:     NewCache(cfg.CacheCapacity, cfg.CacheShards),
		metrics:   newMetrics(),
		mux:       http.NewServeMux(),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	s.mux.HandleFunc("/v1/coalesce", s.handleSolve(kindCoalesce))
	s.mux.HandleFunc("/v1/allocate", s.handleSolve(kindAllocate))
	s.mux.HandleFunc("/v1/spill", s.handleSolve(kindSpill))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close cancels in-flight computations and drains the worker pool. Call
// after the HTTP listener has stopped accepting requests.
func (s *Server) Close() {
	s.cancelAll()
	s.pool.Close()
}

type solveKind int

const (
	kindCoalesce solveKind = iota
	kindAllocate
	kindSpill
)

func (k solveKind) String() string {
	switch k {
	case kindAllocate:
		return "allocate"
	case kindSpill:
		return "spill"
	}
	return "coalesce"
}

// httpError carries a status code through the solve path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handleSolve(kind solveKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			s.writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
			return
		}
		switch kind {
		case kindCoalesce:
			s.metrics.CoalesceRequests.Add(1)
		case kindAllocate:
			s.metrics.AllocateRequests.Add(1)
		case kindSpill:
			s.metrics.SpillRequests.Add(1)
		}
		s.metrics.InFlight.Add(1)
		defer s.metrics.InFlight.Add(-1)

		var req Request
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, badRequest("decoding request: %v", err))
			return
		}

		if len(req.Batch) > 0 {
			s.solveBatch(w, kind, &req)
			return
		}
		out, cached, err := s.solveOne(kind, &req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		disposition := "miss"
		if cached {
			disposition = "hit"
		}
		w.Header().Set("X-Regcoal-Cache", disposition)
		s.writeJSON(w, http.StatusOK, out)
	}
}

// solveBatch fans the batch's graphs out onto the pool and collects all
// results in order. Per-element failures (including 429 saturation) are
// reported in place; the batch itself answers 200.
func (s *Server) solveBatch(w http.ResponseWriter, kind solveKind, req *Request) {
	if req.Graph != nil {
		s.writeError(w, badRequest("use either graph or batch, not both"))
		return
	}
	if len(req.Batch) > s.cfg.MaxBatch {
		s.writeError(w, badRequest("batch carries %d graphs, limit %d", len(req.Batch), s.cfg.MaxBatch))
		return
	}
	s.metrics.BatchGraphs.Add(int64(len(req.Batch)))
	resp := BatchResponse{Results: make([]BatchEntry, len(req.Batch))}
	// Fan out with bounded concurrency: canonicalization and parsing run
	// on these goroutines before the pool's own bound applies, so a batch
	// must not spawn one goroutine per element.
	fanout := s.cfg.Workers * 2
	if fanout > len(req.Batch) {
		fanout = len(req.Batch)
	}
	idxCh := make(chan int)
	done := make(chan struct{})
	for w := 0; w < fanout; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idxCh {
				sub := req.Batch[i]
				if len(sub.Batch) > 0 {
					resp.Results[i].Error = "batch elements must not nest batches"
					continue
				}
				out, _, err := s.solveOne(kind, &sub)
				if err != nil {
					resp.Results[i].Error = err.Error()
					continue
				}
				switch v := out.(type) {
				case *CoalesceResult:
					resp.Results[i].Coalesce = v
				case *AllocateResult:
					resp.Results[i].Allocate = v
				case *SpillResult:
					resp.Results[i].Spill = v
				}
			}
		}()
	}
	for i := range req.Batch {
		idxCh <- i
	}
	close(idxCh)
	for w := 0; w < fanout; w++ {
		<-done
	}
	s.writeJSON(w, http.StatusOK, &resp)
}

// solveOne answers a single-graph request: parse, canonicalize, consult
// the cache, or compute on the pool under the request deadline.
func (s *Server) solveOne(kind solveKind, req *Request) (out any, cached bool, err error) {
	if req.Graph == nil {
		return nil, false, s.countBad(badRequest("missing graph"))
	}
	f, ferr := req.Graph.ToFile()
	if ferr != nil {
		return nil, false, s.countBad(badRequest("%v", ferr))
	}
	k := f.K
	if req.K > 0 {
		k = req.K
	}
	if k <= 0 {
		return nil, false, s.countBad(badRequest("no register count: set k in the request or the graph payload"))
	}
	if f.G.N() > s.cfg.MaxVertices {
		return nil, false, s.countBad(badRequest("graph has %d vertices, limit %d", f.G.N(), s.cfg.MaxVertices))
	}
	// Freeze the parsed graph: every portfolio racer reads this one
	// instance concurrently — a shared read-only snapshot instead of a
	// per-racer clone. A racer that tried to mutate it would panic
	// loudly instead of corrupting its rivals.
	inst := &graph.File{G: f.G.Freeze(), K: k}

	strategies := req.Strategies
	if len(strategies) == 0 && kind == kindCoalesce {
		strategies = s.cfg.Portfolio
	}
	strategies = normalizeStrategies(strategies)
	// Validate up front so bad names are 400s, not queued work.
	switch kind {
	case kindCoalesce:
		if _, err := s.coalesceRacers(inst, strategies); err != nil {
			return nil, false, s.countBad(badRequest("%v", err))
		}
	case kindAllocate:
		if _, err := allocateRacers(inst, strategies); err != nil {
			return nil, false, s.countBad(badRequest("%v", err))
		}
	case kindSpill:
		if _, err := s.spillRacers(inst, strategies); err != nil {
			return nil, false, s.countBad(badRequest("%v", err))
		}
	}

	canon := graph.CanonicalForm(inst)
	key := kind.String() + "|" + strings.Join(strategies, ",") + "|" + canon.Hash
	if !req.NoCache {
		if e, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			return s.render(kind, inst, canon, &e), true, nil
		}
		// Misses count only consulted lookups: no_cache requests never
		// touch the cache and must not skew the hit rate.
		s.metrics.CacheMisses.Add(1)
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}

	type computed struct {
		e   *entry
		err error
	}
	ch := make(chan computed, 1)
	job := func() {
		e, jerr := s.compute(kind, inst, canon, strategies, deadline)
		ch <- computed{e: e, err: jerr}
	}
	if serr := s.pool.TrySubmit(job); serr != nil {
		if errors.Is(serr, engine.ErrSaturated) {
			s.metrics.Rejected.Add(1)
			return nil, false, &httpError{status: http.StatusTooManyRequests, msg: "server saturated, retry later"}
		}
		s.metrics.Errors.Add(1)
		return nil, false, &httpError{status: http.StatusServiceUnavailable, msg: "server shutting down"}
	}
	res := <-ch
	if res.err != nil {
		s.metrics.Errors.Add(1)
		return nil, false, &httpError{status: http.StatusInternalServerError, msg: res.err.Error()}
	}
	if res.e.deadlineHit {
		s.metrics.DeadlineHits.Add(1)
	}
	s.metrics.StrategyWon(res.e.strategy)
	if !req.NoCache {
		s.cache.Put(key, res.e)
	}
	return s.render(kind, inst, canon, res.e), false, nil
}

// compute runs the portfolio race for the instance under the deadline and
// packages the winner as a canonical-space cache entry. The race context
// descends from the server context, not the client connection, so a
// disconnecting client cannot poison the cache with a truncated answer.
func (s *Server) compute(kind solveKind, inst *graph.File, canon *graph.Canonical, strategies []string, deadline time.Duration) (*entry, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	defer cancel()
	if kind == kindAllocate {
		members, err := allocateRacers(inst, strategies)
		if err != nil {
			return nil, err
		}
		best, winner, _, hit, err := race(ctx, members, cmpAllocate)
		if err != nil {
			return nil, err
		}
		return allocateEntry(canon.Perm, best, winner, hit), nil
	}
	if kind == kindSpill {
		members, err := s.spillRacers(inst, strategies)
		if err != nil {
			return nil, err
		}
		best, winner, _, hit, err := race(ctx, members, cmpSpill)
		if err != nil {
			return nil, err
		}
		return spillEntry(canon.Perm, best, winner, hit), nil
	}
	members, err := s.coalesceRacers(inst, strategies)
	if err != nil {
		return nil, err
	}
	best, winner, _, hit, err := race(ctx, members, cmpCoalesce)
	if err != nil {
		return nil, err
	}
	return coalesceEntry(inst, canon.Perm, best, winner, hit), nil
}

func (s *Server) render(kind solveKind, inst *graph.File, canon *graph.Canonical, e *entry) any {
	switch kind {
	case kindAllocate:
		return renderAllocate(inst, canon.Hash, canon.Perm, e)
	case kindSpill:
		return renderSpill(inst, canon.Hash, canon.Perm, e)
	}
	return renderCoalesce(inst, canon.Hash, canon.Perm, e)
}

func (s *Server) countBad(e *httpError) *httpError {
	s.metrics.BadRequests.Add(1)
	return e
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, s.cache.Len(), s.pool.QueueDepth())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.Len(), s.pool.QueueDepth()))
}

// writeJSON marshals once and writes the exact bytes: the body of a
// repeated request must be byte-identical, so nothing non-deterministic
// may enter here.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.metrics.Errors.Add(1)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	he := &httpError{}
	if !errors.As(err, &he) {
		he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	s.writeJSON(w, he.status, ErrorResponse{Error: he.msg})
}
