// Package loadgen replays corpus instances as concurrent HTTP traffic
// against the coalescing service and reports throughput, latency
// percentiles, and response validity. It is both the engine of
// cmd/loadgen and the driver of the service integration test: every
// response is decoded and checked — classes must be non-interfering,
// colorings proper and pin-respecting — so a passing run is a correctness
// statement, not just a timing one.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/obs"
	"regcoal/internal/service"
)

// Job is one request payload plus the instance it carries, kept for
// validating the response.
type Job struct {
	Name string
	Body []byte
	File *graph.File
}

// JobOptions shape the requests built from corpus instances.
type JobOptions struct {
	// Format selects the graph encoding: native, text, or dimacs.
	Format string
	// DeadlineMS, Strategies and NoCache are copied into every request.
	DeadlineMS int64
	Strategies []string
	NoCache    bool
}

// BuildJobs resolves a corpus family spec ("all" or comma-separated
// names), generates the instances for (seed, quick), and converts them to
// request payloads — the one-call setup path shared by cmd/loadgen and
// tests.
func BuildJobs(familySpec string, seed int64, quick bool, opts JobOptions) ([]Job, error) {
	fams, err := corpus.Select(familySpec)
	if err != nil {
		return nil, err
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: seed, Quick: quick})
	if err != nil {
		return nil, err
	}
	return JobsFromInstances(insts, opts)
}

// JobsFromInstances converts corpus instances into request payloads.
func JobsFromInstances(insts []*corpus.Instance, opts JobOptions) ([]Job, error) {
	jobs := make([]Job, 0, len(insts))
	for _, inst := range insts {
		spec, err := specFor(inst.File, opts.Format)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", inst.Name, err)
		}
		req := service.Request{
			Graph:      spec,
			DeadlineMS: opts.DeadlineMS,
			Strategies: opts.Strategies,
			NoCache:    opts.NoCache,
		}
		body, err := json.Marshal(&req)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Name: inst.Family + "/" + inst.Name, Body: body, File: inst.File})
	}
	return jobs, nil
}

func specFor(f *graph.File, format string) (*service.GraphSpec, error) {
	switch format {
	case "", "native":
		spec := &service.GraphSpec{Vertices: f.G.N(), K: f.K}
		for _, e := range f.G.Edges() {
			spec.Edges = append(spec.Edges, [2]int{int(e[0]), int(e[1])})
		}
		for _, a := range f.G.Affinities() {
			spec.Moves = append(spec.Moves, service.Move{X: int(a.X), Y: int(a.Y), Weight: a.Weight})
		}
		for v := 0; v < f.G.N(); v++ {
			if c, ok := f.G.Precolored(graph.V(v)); ok {
				spec.Precolored = append(spec.Precolored, service.Pin{V: v, Color: c})
			}
		}
		return spec, nil
	case "text":
		return &service.GraphSpec{Text: f.FormatString()}, nil
	case "dimacs":
		var b strings.Builder
		if err := graph.WriteDIMACSFile(&b, f); err != nil {
			return nil, err
		}
		return &service.GraphSpec{Dimacs: b.String()}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want native, text, dimacs)", format)
	}
}

// Options parameterize a run.
type Options struct {
	// BaseURL is the service root, e.g. http://localhost:8080.
	BaseURL string
	// Targets optionally lists several service roots — cluster routers or
	// individual workers — replayed round-robin per request. When set it
	// takes precedence over BaseURL; the report then carries a per-target
	// and per-shard breakdown.
	Targets []string
	// Endpoint is "coalesce", "allocate", or "spill".
	Endpoint string
	// Concurrency is the number of in-flight requests (default 16).
	Concurrency int
	// Requests is the total request count; jobs are replayed round-robin,
	// so a count above len(jobs) revisits instances and exercises the
	// cache (default: one pass over the jobs).
	Requests int
	// Client overrides the HTTP client (default: http.DefaultClient with
	// a 60s timeout).
	Client *http.Client
	// SlowN keeps the N slowest successful requests in the report, each
	// with its trace ID and server-side phase breakdown — enough to pull
	// the full timeline from the server's /debug/requests afterwards.
	SlowN int
}

// Report aggregates a run.
type Report struct {
	Requests     int
	OK           int
	Rejected     int // 429: backpressure, not failure
	Failed       int // any other non-200, transport error, or invalid body
	CacheHits    int
	Collapsed    int // answered by collapsing onto a concurrent identical race
	DeadlineHits int
	Wall         time.Duration
	Latencies    Percentiles
	FirstFailure string
	// PerTarget counts requests sent to each base URL (multi-target runs).
	PerTarget map[string]int `json:",omitempty"`
	// PerShard counts responses by the X-Regcoal-Shard header a cluster
	// router attaches — the worker that actually answered.
	PerShard map[string]int `json:",omitempty"`
	// Phases holds per-phase server-side latency percentiles, aggregated
	// from the X-Regcoal-Phases header (nanosecond durations the server
	// measured, not client round-trip time). Keys are the server's phase
	// names: decode, canon, peer, cache, race, encode.
	Phases map[string]Percentiles `json:",omitempty"`
	// Slow lists the SlowN slowest successful requests, slowest first.
	Slow []SlowSample `json:",omitempty"`
}

// SlowSample identifies one slow request: the instance, the trace ID the
// server answered with (look it up on /debug/requests for the full race
// timeline), and the server-side phase durations in nanoseconds.
type SlowSample struct {
	Name    string
	TraceID string           `json:",omitempty"`
	Latency time.Duration    // client round-trip
	Phases  map[string]int64 `json:",omitempty"` // server-side, ns
}

// Percentiles summarize request latency. Mean is the arithmetic mean of
// the per-request latencies — distinct from wall-clock/requests, which
// is inverse throughput and shrinks with concurrency.
type Percentiles struct {
	P50, P90, P99, Max, Mean time.Duration
}

// Throughput reports successful requests per second.
func (r *Report) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK) / r.Wall.Seconds()
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d  ok %d  rejected(429) %d  failed %d\n", r.Requests, r.OK, r.Rejected, r.Failed)
	fmt.Fprintf(&b, "cache hits %d  collapsed %d  deadline hits %d\n", r.CacheHits, r.Collapsed, r.DeadlineHits)
	fmt.Fprintf(&b, "wall %v  throughput %.1f req/s\n", r.Wall.Round(time.Millisecond), r.Throughput())
	fmt.Fprintf(&b, "latency mean %v  p50 %v  p90 %v  p99 %v  max %v\n",
		r.Latencies.Mean.Round(time.Microsecond),
		r.Latencies.P50.Round(time.Microsecond), r.Latencies.P90.Round(time.Microsecond),
		r.Latencies.P99.Round(time.Microsecond), r.Latencies.Max.Round(time.Microsecond))
	if len(r.Phases) > 0 {
		names := make([]string, 0, len(r.Phases))
		for n := range r.Phases {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p := r.Phases[n]
			fmt.Fprintf(&b, "phase %-6s p50 %v  p90 %v  p99 %v  max %v\n", n,
				p.P50.Round(time.Microsecond), p.P90.Round(time.Microsecond),
				p.P99.Round(time.Microsecond), p.Max.Round(time.Microsecond))
		}
	}
	writeBreakdown(&b, "shard", r.PerShard)
	writeBreakdown(&b, "target", r.PerTarget)
	for i, s := range r.Slow {
		fmt.Fprintf(&b, "slow #%d %v  %s", i+1, s.Latency.Round(time.Microsecond), s.Name)
		if s.TraceID != "" {
			fmt.Fprintf(&b, "  trace=%s", s.TraceID)
		}
		if len(s.Phases) > 0 {
			names := make([]string, 0, len(s.Phases))
			for n := range s.Phases {
				names = append(names, n)
			}
			sort.Strings(names)
			b.WriteString("  [")
			for j, n := range names {
				if j > 0 {
					b.WriteByte(';')
				}
				fmt.Fprintf(&b, "%s=%v", n, time.Duration(s.Phases[n]).Round(time.Microsecond))
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	if r.FirstFailure != "" {
		fmt.Fprintf(&b, "first failure: %s\n", r.FirstFailure)
	}
	return b.String()
}

// writeBreakdown prints a per-key request count, keys sorted for stable
// output.
func writeBreakdown(b *strings.Builder, label string, counts map[string]int) {
	if len(counts) == 0 {
		return
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "per-%s:", label)
	for _, k := range keys {
		fmt.Fprintf(b, "  %s=%d", k, counts[k])
	}
	b.WriteString("\n")
}

// Run fires Requests requests over the jobs round-robin with Concurrency
// workers, validating every 200 body against its instance.
func Run(ctx context.Context, opts Options, jobs []Job) (*Report, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("loadgen: no jobs")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Requests <= 0 {
		opts.Requests = len(jobs)
	}
	endpoint := opts.Endpoint
	if endpoint == "" {
		endpoint = "coalesce"
	}
	if endpoint != "coalesce" && endpoint != "allocate" && endpoint != "spill" {
		return nil, fmt.Errorf("loadgen: unknown endpoint %q", endpoint)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	targets := opts.Targets
	if len(targets) == 0 {
		targets = []string{opts.BaseURL}
	}
	urls := make([]string, len(targets))
	for i, t := range targets {
		urls[i] = strings.TrimSuffix(t, "/") + "/v1/" + endpoint
	}

	samples := make([]sample, opts.Requests)
	idxCh := make(chan int)
	done := make(chan struct{})
	for w := 0; w < opts.Concurrency; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idxCh {
				job := jobs[i%len(jobs)]
				target := i % len(urls)
				start := time.Now()
				sm := fire(ctx, client, urls[target], endpoint, job)
				sm.latency = time.Since(start)
				sm.target = targets[target]
				sm.name = job.Name
				samples[i] = sm
			}
		}()
	}
	start := time.Now()
feed:
	for i := 0; i < opts.Requests; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	for w := 0; w < opts.Concurrency; w++ {
		<-done
	}

	rep := &Report{Requests: opts.Requests, Wall: time.Since(start)}
	if len(targets) > 1 {
		rep.PerTarget = make(map[string]int)
	}
	lats := make([]time.Duration, 0, opts.Requests)
	phaseLats := make(map[string][]time.Duration)
	var okSamples []*sample
	for i := range samples {
		sm := &samples[i]
		switch {
		case sm.status == http.StatusOK && sm.failure == "":
			rep.OK++
			lats = append(lats, sm.latency)
			okSamples = append(okSamples, sm)
			for name, ns := range obs.ParsePhases(sm.phases) {
				phaseLats[name] = append(phaseLats[name], time.Duration(ns))
			}
		case sm.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Failed++
			if rep.FirstFailure == "" && sm.failure != "" {
				rep.FirstFailure = sm.failure
			}
		}
		if sm.cacheHit {
			rep.CacheHits++
		}
		if sm.collapsed {
			rep.Collapsed++
		}
		if sm.deadlineHit {
			rep.DeadlineHits++
		}
		if rep.PerTarget != nil {
			rep.PerTarget[sm.target]++
		}
		if sm.shard != "" {
			if rep.PerShard == nil {
				rep.PerShard = make(map[string]int)
			}
			rep.PerShard[sm.shard]++
		}
	}
	rep.Latencies = percentiles(lats)
	if len(phaseLats) > 0 {
		rep.Phases = make(map[string]Percentiles, len(phaseLats))
		for name, pl := range phaseLats {
			rep.Phases[name] = percentiles(pl)
		}
	}
	if opts.SlowN > 0 && len(okSamples) > 0 {
		sort.Slice(okSamples, func(i, j int) bool { return okSamples[i].latency > okSamples[j].latency })
		n := opts.SlowN
		if n > len(okSamples) {
			n = len(okSamples)
		}
		rep.Slow = make([]SlowSample, 0, n)
		for _, sm := range okSamples[:n] {
			rep.Slow = append(rep.Slow, SlowSample{
				Name:    sm.name,
				TraceID: sm.traceID,
				Latency: sm.latency,
				Phases:  obs.ParsePhases(sm.phases),
			})
		}
	}
	return rep, nil
}

// sample is one request's outcome; target and latency are filled in by
// the worker loop, the rest by fire.
type sample struct {
	latency     time.Duration
	status      int
	cacheHit    bool
	collapsed   bool
	deadlineHit bool
	shard       string // X-Regcoal-Shard: the worker a cluster router chose
	target      string // base URL the request was sent to
	name        string // instance name (family/name)
	traceID     string // X-Regcoal-Trace-Id the server answered with
	phases      string // X-Regcoal-Phases raw header (server-side ns)
	failure     string
}

func fire(ctx context.Context, client *http.Client, url, endpoint string, job Job) sample {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(job.Body))
	if err != nil {
		return sample{failure: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	// The corpus family labels the request for the server's pprof
	// profiles and /debug/requests entries.
	if fam, _, ok := strings.Cut(job.Name, "/"); ok {
		req.Header.Set(service.FamilyHeader, fam)
	}
	resp, err := client.Do(req)
	if err != nil {
		return sample{failure: fmt.Sprintf("%s: %v", job.Name, err)}
	}
	defer resp.Body.Close()
	sm := sample{status: resp.StatusCode}
	sm.traceID = resp.Header.Get(service.TraceIDHeader)
	sm.phases = resp.Header.Get(service.PhasesHeader)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		sm.failure = fmt.Sprintf("%s: reading body: %v", job.Name, err)
		return sm
	}
	switch resp.Header.Get("X-Regcoal-Cache") {
	case "hit":
		sm.cacheHit = true
	case "collapse":
		sm.collapsed = true
	}
	sm.shard = resp.Header.Get("X-Regcoal-Shard")
	if resp.StatusCode != http.StatusOK {
		sm.failure = fmt.Sprintf("%s: status %d: %s", job.Name, resp.StatusCode, truncate(body))
		return sm
	}
	switch endpoint {
	case "coalesce":
		var out service.CoalesceResult
		if err := json.Unmarshal(body, &out); err != nil {
			sm.failure = fmt.Sprintf("%s: decoding: %v", job.Name, err)
			return sm
		}
		sm.deadlineHit = out.DeadlineHit
		if err := ValidateCoalesce(job.File, &out); err != nil {
			sm.failure = fmt.Sprintf("%s: %v", job.Name, err)
		}
	case "spill":
		var out service.SpillResult
		if err := json.Unmarshal(body, &out); err != nil {
			sm.failure = fmt.Sprintf("%s: decoding: %v", job.Name, err)
			return sm
		}
		sm.deadlineHit = out.DeadlineHit
		if err := ValidateSpill(job.File, &out); err != nil {
			sm.failure = fmt.Sprintf("%s: %v", job.Name, err)
		}
	default:
		var out service.AllocateResult
		if err := json.Unmarshal(body, &out); err != nil {
			sm.failure = fmt.Sprintf("%s: decoding: %v", job.Name, err)
			return sm
		}
		sm.deadlineHit = out.DeadlineHit
		if err := ValidateAllocate(job.File, &out); err != nil {
			sm.failure = fmt.Sprintf("%s: %v", job.Name, err)
		}
	}
	return sm
}

// FetchStats retrieves and decodes the service's /stats snapshot.
func FetchStats(ctx context.Context, client *http.Client, baseURL string) (*service.Stats, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(baseURL, "/")+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /stats status %d: %s", resp.StatusCode, truncate(body))
	}
	var stats service.Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /stats: %v", err)
	}
	return &stats, nil
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// ValidateCoalesce checks a coalesce response against its instance: the
// classes must partition the vertices without internal interference, and
// a coloring, when present, must be proper, complete, within k, respect
// precoloring, and be constant on every class.
func ValidateCoalesce(f *graph.File, out *service.CoalesceResult) error {
	g := f.G
	if out.Vertices != g.N() || out.Edges != g.E() || out.Moves != g.NumAffinities() {
		return fmt.Errorf("shape mismatch: response %d/%d/%d, instance %d/%d/%d",
			out.Vertices, out.Edges, out.Moves, g.N(), g.E(), g.NumAffinities())
	}
	seen := make([]bool, g.N())
	for _, cls := range out.Classes {
		for i, v := range cls {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("class vertex %d out of range", v)
			}
			if seen[v] {
				return fmt.Errorf("vertex %d appears in two classes", v)
			}
			seen[v] = true
			for _, w := range cls[i+1:] {
				if g.HasEdge(graph.V(v), graph.V(w)) {
					return fmt.Errorf("class contains interfering pair (%d,%d)", v, w)
				}
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("vertex %d missing from classes", v)
		}
	}
	if out.Coloring == nil {
		return nil
	}
	col := graph.Coloring(out.Coloring)
	if err := col.Check(g); err != nil {
		return err
	}
	if mc := col.MaxColor(); mc >= out.K {
		return fmt.Errorf("coloring uses color %d with k=%d", mc, out.K)
	}
	for _, cls := range out.Classes {
		for _, v := range cls[1:] {
			if out.Coloring[v] != out.Coloring[cls[0]] {
				return fmt.Errorf("class of %d not color-constant", cls[0])
			}
		}
	}
	return nil
}

// ValidateSpill checks a spill response against its instance: the
// residual coloring must be k-feasible — spilled vertices carry NoColor,
// every survivor a proper in-range color matching its pin — and the
// counters must agree with the spill set.
func ValidateSpill(f *graph.File, out *service.SpillResult) error {
	g := f.G
	if out.Vertices != g.N() || out.Edges != g.E() || out.Moves != g.NumAffinities() {
		return fmt.Errorf("shape mismatch: response %d/%d/%d, instance %d/%d/%d",
			out.Vertices, out.Edges, out.Moves, g.N(), g.E(), g.NumAffinities())
	}
	if len(out.Coloring) != g.N() {
		return fmt.Errorf("coloring length %d, want %d", len(out.Coloring), g.N())
	}
	spilled := make(map[int]bool, len(out.Spilled))
	for _, v := range out.Spilled {
		if v < 0 || v >= g.N() {
			return fmt.Errorf("spilled vertex %d out of range", v)
		}
		if _, pinned := g.Precolored(graph.V(v)); pinned {
			return fmt.Errorf("precolored vertex %d spilled", v)
		}
		spilled[v] = true
	}
	if len(spilled) != out.Spills {
		return fmt.Errorf("spills %d but %d spilled vertices", out.Spills, len(spilled))
	}
	if out.SpillCost < int64(out.Spills) {
		return fmt.Errorf("spill cost %d below spill count %d", out.SpillCost, out.Spills)
	}
	for v, c := range out.Coloring {
		if spilled[v] {
			if c != graph.NoColor {
				return fmt.Errorf("spilled vertex %d has color %d", v, c)
			}
			continue
		}
		if c < 0 || c >= out.K {
			return fmt.Errorf("vertex %d color %d outside [0,%d)", v, c, out.K)
		}
		if pin, ok := g.Precolored(graph.V(v)); ok && c != pin {
			return fmt.Errorf("precolored vertex %d colored %d, want %d", v, c, pin)
		}
	}
	for _, e := range g.Edges() {
		cu, cv := out.Coloring[e[0]], out.Coloring[e[1]]
		if cu != graph.NoColor && cu == cv {
			return fmt.Errorf("interfering vertices %d,%d share color %d", e[0], e[1], cu)
		}
	}
	return nil
}

// ValidateAllocate checks an allocate response: spilled vertices carry
// NoColor, every other vertex a proper in-range color matching its pin.
func ValidateAllocate(f *graph.File, out *service.AllocateResult) error {
	g := f.G
	if len(out.Coloring) != g.N() {
		return fmt.Errorf("coloring length %d, want %d", len(out.Coloring), g.N())
	}
	spilled := make(map[int]bool, len(out.Spilled))
	for _, v := range out.Spilled {
		if v < 0 || v >= g.N() {
			return fmt.Errorf("spilled vertex %d out of range", v)
		}
		spilled[v] = true
	}
	if len(spilled) != out.Spills {
		return fmt.Errorf("spills %d but %d spilled vertices", out.Spills, len(spilled))
	}
	for v, c := range out.Coloring {
		if spilled[v] {
			if c != graph.NoColor {
				return fmt.Errorf("spilled vertex %d has color %d", v, c)
			}
			continue
		}
		if c < 0 || c >= out.K {
			return fmt.Errorf("vertex %d color %d outside [0,%d)", v, c, out.K)
		}
		if pin, ok := g.Precolored(graph.V(v)); ok && c != pin {
			return fmt.Errorf("precolored vertex %d colored %d, want %d", v, c, pin)
		}
	}
	for _, e := range g.Edges() {
		cu, cv := out.Coloring[e[0]], out.Coloring[e[1]]
		if cu != graph.NoColor && cu == cv {
			return fmt.Errorf("interfering vertices %d,%d share color %d", e[0], e[1], cu)
		}
	}
	return nil
}

func percentiles(lats []time.Duration) Percentiles {
	if len(lats) == 0 {
		return Percentiles{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return Percentiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: lats[len(lats)-1],
		Mean: sum / time.Duration(len(lats))}
}
