package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"regcoal/internal/graph"
	"regcoal/internal/service"
)

// Every encoding must produce a payload whose decoded graph matches the
// instance it was built from — the property response validation relies on.
func TestBuildJobsEncodingsRoundTrip(t *testing.T) {
	for _, format := range []string{"native", "text", "dimacs"} {
		jobs, err := BuildJobs("tiny", 20060408, true, JobOptions{Format: format})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(jobs) == 0 {
			t.Fatalf("%s: no jobs", format)
		}
		for _, job := range jobs {
			spec, err := specFor(job.File, format)
			if err != nil {
				t.Fatalf("%s: %v", format, err)
			}
			decoded, err := spec.ToFile()
			if err != nil {
				t.Fatalf("%s/%s: %v", format, job.Name, err)
			}
			if decoded.G.N() != job.File.G.N() || decoded.G.E() != job.File.G.E() || decoded.K != job.File.K {
				t.Fatalf("%s/%s: decoded %d/%d/k=%d, want %d/%d/k=%d", format, job.Name,
					decoded.G.N(), decoded.G.E(), decoded.K, job.File.G.N(), job.File.G.E(), job.File.K)
			}
		}
	}
}

func TestBuildJobsUnknownFamily(t *testing.T) {
	if _, err := BuildJobs("nope", 1, true, JobOptions{}); err == nil {
		t.Fatal("unknown family must fail")
	}
}

func TestValidateSpillCatchesBadResponses(t *testing.T) {
	g := graph.New(3)
	g.AddClique(0, 1, 2)
	f := &graph.File{G: g, K: 2}
	good := &service.SpillResult{
		Vertices: 3, Edges: 3, K: 2,
		Spilled: []int{2}, Spills: 1, SpillCost: 1,
		Coloring: []int{0, 1, -1},
	}
	if err := ValidateSpill(f, good); err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}
	bad := *good
	bad.Coloring = []int{0, 0, -1} // interfering pair shares a color
	if err := ValidateSpill(f, &bad); err == nil {
		t.Fatal("improper residual coloring accepted")
	}
	bad = *good
	bad.Spills = 2 // counter disagrees with the spill set
	if err := ValidateSpill(f, &bad); err == nil {
		t.Fatal("spill-count mismatch accepted")
	}
	bad = *good
	bad.Coloring = []int{0, 1, 1} // spilled vertex carries a color
	if err := ValidateSpill(f, &bad); err == nil {
		t.Fatal("colored spill accepted")
	}
}

func TestFetchStats(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"coalesce_requests":7,"spill_requests":3}`))
	}))
	defer ts.Close()
	stats, err := FetchStats(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoalesceRequests != 7 || stats.SpillRequests != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}
