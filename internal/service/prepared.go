package service

// The two-step solve API the HTTP handlers are built on, exported so the
// cluster worker (internal/cluster) reuses the exact handler logic
// instead of re-implementing it behind a recorder:
//
//	p, err := s.Prepare(kind, req)      // parse, validate, canonicalize
//	body, disp, err := s.SolvePrepared(p)  // cache → singleflight → race
//
// Prepare is the expensive decode side (graph build + Weisfeiler-Leman
// canonicalization); SolvePrepared is the answer side. Splitting them
// lets a batch endpoint amortize preparation across a connection and
// lets cluster nodes consult the Prepared's canonical hash for routing
// and tiered caching before committing compute.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime/pprof"
	"strings"
	"time"

	"regcoal/internal/engine"
	"regcoal/internal/graph"
	"regcoal/internal/obs"
)

// Prepared is a parsed, validated, canonicalized solve request, ready to
// be answered by SolvePrepared. It is immutable after Prepare and safe
// to share across goroutines.
type Prepared struct {
	kind       Kind
	inst       *graph.File
	canon      *graph.Canonical
	strategies []string
	key        string
	deadlineMS int64
	noCache    bool
}

// Kind reports which portfolio the request races.
func (p *Prepared) Kind() Kind { return p.kind }

// Key is the canonical cache key: kind, normalized strategy list, and
// canonical graph hash. Identical keys get identical response bodies.
func (p *Prepared) Key() string { return p.key }

// Hash is the canonical graph hash — the cluster routing key: relabeled
// duplicates of one instance share it.
func (p *Prepared) Hash() string { return p.canon.Hash }

// Vertices reports the instance size.
func (p *Prepared) Vertices() int { return p.inst.G.N() }

// Edges reports the instance's interference edge count.
func (p *Prepared) Edges() int { return p.inst.G.E() }

// Density is the instance's edge density in [0,1]: E / (N choose 2).
func (p *Prepared) Density() float64 {
	n := p.inst.G.N()
	if n < 2 {
		return 0
	}
	return float64(p.inst.G.E()) / (float64(n) * float64(n-1) / 2)
}

// NoCache reports whether the request asked to bypass the result cache.
func (p *Prepared) NoCache() bool { return p.noCache }

// Prepare parses and validates a single-graph request into a Prepared:
// graph decode, register-count resolution, size cap, strategy validation,
// freeze, and canonicalization. Errors carry HTTP status (ErrorStatus)
// and count toward the bad-request metric exactly as the HTTP handlers
// do.
func (s *Server) Prepare(kind Kind, req *Request) (*Prepared, error) {
	return s.PrepareTraced(kind, req, nil)
}

// PrepareTraced is Prepare with span capture: the canonicalization phase
// is recorded onto tr (any phase open on entry — typically decode — is
// closed when canon begins). tr may be nil.
func (s *Server) PrepareTraced(kind Kind, req *Request, tr *obs.Trace) (*Prepared, error) {
	if req.Graph == nil {
		return nil, s.countBad(badRequest("missing graph"))
	}
	f, ferr := req.Graph.ToFile()
	if ferr != nil {
		return nil, s.countBad(badRequest("%v", ferr))
	}
	k := f.K
	if req.K > 0 {
		k = req.K
	}
	if k <= 0 {
		return nil, s.countBad(badRequest("no register count: set k in the request or the graph payload"))
	}
	if f.G.N() > s.cfg.MaxVertices {
		return nil, s.countBad(badRequest("graph has %d vertices, limit %d", f.G.N(), s.cfg.MaxVertices))
	}
	// Freeze the parsed graph: every portfolio racer reads this one
	// instance concurrently — a shared read-only snapshot instead of a
	// per-racer clone. A racer that tried to mutate it would panic
	// loudly instead of corrupting its rivals.
	inst := &graph.File{G: f.G.Freeze(), K: k}

	strategies := req.Strategies
	if len(strategies) == 0 && kind == KindCoalesce {
		strategies = s.cfg.Portfolio
	}
	strategies = normalizeStrategies(strategies)
	// Validate up front so bad names are 400s, not queued work.
	switch kind {
	case KindCoalesce:
		if _, err := s.coalesceRacers(inst, strategies); err != nil {
			return nil, s.countBad(badRequest("%v", err))
		}
	case KindAllocate:
		if _, err := allocateRacers(inst, strategies); err != nil {
			return nil, s.countBad(badRequest("%v", err))
		}
	case KindSpill:
		if _, err := s.spillRacers(inst, strategies); err != nil {
			return nil, s.countBad(badRequest("%v", err))
		}
	}

	tr.BeginPhase(obs.PhaseCanon)
	canon := graph.CanonicalForm(inst)
	tr.EndPhase()
	return &Prepared{
		kind:       kind,
		inst:       inst,
		canon:      canon,
		strategies: strategies,
		key:        kind.String() + "|" + strings.Join(strategies, ",") + "|" + canon.Hash,
		deadlineMS: req.DeadlineMS,
		noCache:    req.NoCache,
	}, nil
}

// SolvePrepared answers a prepared request with the exact JSON bytes the
// HTTP handler writes, plus the cache disposition ("hit", "miss", or
// "collapse" when the answer was shared from a concurrent identical
// request's race).
func (s *Server) SolvePrepared(p *Prepared) (body []byte, disposition string, err error) {
	return s.SolvePreparedTraced(p, nil)
}

// SolvePreparedTraced is SolvePrepared with span capture: cache lookup,
// portfolio race (with the full member timeline when this request leads
// the computation), and response encoding are recorded onto tr. tr may
// be nil; the rendered bytes are identical either way.
func (s *Server) SolvePreparedTraced(p *Prepared, tr *obs.Trace) (body []byte, disposition string, err error) {
	out, disposition, err := s.solvePreparedAny(p, tr)
	if err != nil {
		return nil, "", err
	}
	tr.BeginPhase(obs.PhaseEncode)
	data, merr := json.Marshal(out)
	tr.EndPhase()
	if merr != nil {
		s.metrics.Errors.Add(1)
		return nil, "", &httpError{status: http.StatusInternalServerError, msg: "encoding response"}
	}
	return data, disposition, nil
}

// solvePreparedAny answers a prepared request as a typed result: consult
// the cache, collapse concurrent identical misses into one computation
// via the singleflight group, or compute on the pool under the request
// deadline. Leader-only bookkeeping (deadline-hit and strategy-win
// counters, the cache insert) happens inside the flight so a collapse of
// n requests records one race, not n.
func (s *Server) solvePreparedAny(p *Prepared, tr *obs.Trace) (out any, disposition string, err error) {
	if p.noCache {
		// no_cache means "compute fresh": no cache lookup or insert, and
		// no collapsing onto someone else's race.
		e, cerr := s.computeOnPool(p, tr)
		if cerr != nil {
			return nil, "", cerr
		}
		s.recordComputed(e, tr)
		return s.render(p.kind, p.inst, p.canon, e), "miss", nil
	}
	tr.BeginPhase(obs.PhaseCache)
	e, hit := s.cache.Get(p.key)
	tr.EndPhase()
	if hit {
		s.metrics.CacheHits.Add(1)
		noteEntry(tr, &e)
		return s.render(p.kind, p.inst, p.canon, &e), "hit", nil
	}
	// Misses count only consulted lookups: no_cache requests never touch
	// the cache and must not skew the hit rate.
	s.metrics.CacheMisses.Add(1)
	v, ferr, shared := s.flights.Do(p.key, func() (any, error) {
		e, cerr := s.computeOnPool(p, tr)
		if cerr != nil {
			return nil, cerr
		}
		s.recordComputed(e, tr)
		s.cache.Put(p.key, e)
		return e, nil
	})
	if ferr != nil {
		return nil, "", ferr
	}
	ce := v.(*entry)
	if shared {
		s.metrics.SingleflightCollapses.Add(1)
		// The entry is shared, but the rendering is this request's own:
		// a collapsed isomorphic duplicate gets its answer in its own
		// vertex numbering, exactly like a cache hit would. The follower's
		// trace still learns the shared race's winner, just not its member
		// timeline (that belongs to the leader's trace).
		noteEntry(tr, ce)
		return s.render(p.kind, p.inst, p.canon, ce), "collapse", nil
	}
	return s.render(p.kind, p.inst, p.canon, ce), "miss", nil
}

// noteEntry stamps an answer's provenance — winning strategy and whether
// its race was cut off by the deadline — onto the trace.
func noteEntry(tr *obs.Trace, e *entry) {
	if tr == nil {
		return
	}
	tr.Winner = e.strategy
	tr.DeadlineHit = e.deadlineHit
}

func (s *Server) recordComputed(e *entry, tr *obs.Trace) {
	if e.deadlineHit {
		s.metrics.DeadlineHits.Add(1)
	}
	s.metrics.StrategyWon(e.strategy)
	noteEntry(tr, e)
}

// computeOnPool schedules the portfolio race on the worker pool under the
// request deadline and maps pool saturation to 429. The race phase span
// covers queue wait plus the race itself; the solve goroutine carries
// pprof labels (endpoint, family) so CPU profiles attribute time to
// traffic shape, and each portfolio member adds its own strategy label
// on top (see race).
func (s *Server) computeOnPool(p *Prepared, tr *obs.Trace) (*entry, error) {
	deadline := s.cfg.DefaultDeadline
	if p.deadlineMS > 0 {
		deadline = time.Duration(p.deadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}

	tr.BeginPhase(obs.PhaseRace)
	defer tr.EndPhase()

	labels := pprof.Labels("regcoal_endpoint", p.kind.String(), "regcoal_family", traceFamily(tr))
	type computed struct {
		e   *entry
		err error
	}
	ch := make(chan computed, 1)
	job := func() {
		pprof.Do(s.baseCtx, labels, func(context.Context) {
			e, jerr := s.compute(p, deadline, tr)
			ch <- computed{e: e, err: jerr}
		})
	}
	if serr := s.pool.TrySubmit(job); serr != nil {
		if errors.Is(serr, engine.ErrSaturated) {
			s.metrics.Rejected.Add(1)
			return nil, &httpError{status: http.StatusTooManyRequests, msg: "server saturated, retry later"}
		}
		s.metrics.Errors.Add(1)
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: "server shutting down"}
	}
	res := <-ch
	if res.err != nil {
		s.metrics.Errors.Add(1)
		return nil, &httpError{status: http.StatusInternalServerError, msg: res.err.Error()}
	}
	return res.e, nil
}

// traceFamily reads the family label off a trace, tolerating nil.
func traceFamily(tr *obs.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.Family
}

// compute runs the portfolio race for the instance under the deadline and
// packages the winner as a canonical-space cache entry. The race context
// descends from the server context, not the client connection, so a
// disconnecting client cannot poison the cache with a truncated answer.
func (s *Server) compute(p *Prepared, deadline time.Duration, tr *obs.Trace) (*entry, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	defer cancel()
	inst, canon, strategies := p.inst, p.canon, p.strategies
	if p.kind == KindAllocate {
		members, err := allocateRacers(inst, strategies)
		if err != nil {
			return nil, err
		}
		best, winner, _, hit, err := race(ctx, members, cmpAllocate, tr)
		if err != nil {
			return nil, err
		}
		return allocateEntry(canon.Perm, best, winner, hit), nil
	}
	if p.kind == KindSpill {
		members, err := s.spillRacers(inst, strategies)
		if err != nil {
			return nil, err
		}
		best, winner, _, hit, err := race(ctx, members, cmpSpill, tr)
		if err != nil {
			return nil, err
		}
		return spillEntry(canon.Perm, best, winner, hit), nil
	}
	members, err := s.coalesceRacers(inst, strategies)
	if err != nil {
		return nil, err
	}
	best, winner, _, hit, err := race(ctx, members, cmpCoalesce, tr)
	if err != nil {
		return nil, err
	}
	return coalesceEntry(inst, canon.Perm, best, winner, hit), nil
}

// FlightInProgress reports whether a solve for key is currently racing:
// a request issued now would collapse onto it instead of computing.
// Exported for the cluster worker's admission control, which exempts
// collapsing requests from lane slots — they cost no compute.
func (s *Server) FlightInProgress(key string) bool { return s.flights.InFlight(key) }

// RoutingHash computes the canonical graph hash of a single-graph
// request — the key a cluster router shards by. It returns "" when the
// request cannot be parsed, carries no register count, or exceeds
// maxVertices (maxVertices <= 0 means no cap): such requests cannot be
// canonicalized, and the router sends them to a deterministic fallback
// shard whose worker reproduces the exact single-node error response.
func RoutingHash(req *Request, maxVertices int) string {
	if req.Graph == nil {
		return ""
	}
	f, err := req.Graph.ToFile()
	if err != nil {
		return ""
	}
	k := f.K
	if req.K > 0 {
		k = req.K
	}
	if k <= 0 {
		return ""
	}
	if maxVertices > 0 && f.G.N() > maxVertices {
		return ""
	}
	return graph.CanonicalForm(&graph.File{G: f.G, K: k}).Hash
}
