package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"regcoal/internal/coalesce"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/obs"
	"regcoal/internal/regalloc"
	"regcoal/internal/spill"
)

// Deadline-raced strategy portfolio. Every interesting coalescing variant
// is NP-complete (the paper's Theorems 2–6), so the service never bets a
// request on one solver: it races a portfolio — cheap conservative
// heuristics, optimistic coalescing, the polynomial chordal algorithm
// where applicable, and the context-cancelable exact solver as an anytime
// upper bound — and returns the best answer on hand when the deadline
// fires. Pure polynomial heuristics run to completion regardless (they
// are the "best heuristic result" a deadline-exceeded request still
// gets); the exact search stops at the deadline and contributes the best
// coalescing found so far.

// racer is one portfolio member.
type racer[T any] struct {
	name string
	run  func(ctx context.Context) (T, error)
}

// race runs every member concurrently and returns the best answer by cmp
// (positive = first argument better; ties keep the earlier member, so a
// completed race is deterministic). It returns as soon as either every
// member finished, or the deadline fired and at least one answer exists.
// Members returning coalesce.ErrInapplicable are skipped.
//
// When tr is non-nil the full race timeline is recorded onto it: each
// member's start and finish (or the cut-off time for members still
// running when the race returned), its disposition, and the winner. All
// trace writes happen on this goroutine — member goroutines report their
// finish times through the outcome channel relative to a race-local
// base, so a straggler finishing after the race returned (and after the
// trace went back to its pool) never touches the trace.
func race[T any](ctx context.Context, members []racer[T], cmp func(a, b T) int, tr *obs.Trace) (best T, winner string, bestIdx int, deadlineHit bool, err error) {
	type outcome struct {
		idx   int
		val   T
		err   error
		endNS int64 // offset from base, reported by the member itself
	}
	base := time.Now()
	ch := make(chan outcome, len(members))
	for i, m := range members {
		i, m := i, m
		go func() {
			var v T
			var err error
			// The strategy label stacks on the solve goroutine's
			// endpoint/family labels (goroutines inherit their parent's
			// label set), so profiles slice by strategy within endpoint.
			pprof.Do(ctx, pprof.Labels("regcoal_strategy", m.name), func(ctx context.Context) {
				v, err = m.run(ctx)
			})
			ch <- outcome{idx: i, val: v, err: err, endNS: int64(time.Since(base))}
		}()
	}
	var ends []int64
	var errs []error
	if tr != nil {
		ends = make([]int64, len(members))
		errs = make([]error, len(members))
		for i := range ends {
			ends[i] = -1 // not yet finished
		}
	}
	bestIdx = -1
	got := 0
	deadline := false
	var firstErr error
	take := func(o outcome) {
		got++
		if tr != nil {
			ends[o.idx] = o.endNS
			errs[o.idx] = o.err
		}
		if o.err != nil {
			if !errors.Is(o.err, coalesce.ErrInapplicable) && firstErr == nil {
				firstErr = o.err
			}
			return
		}
		if bestIdx == -1 || cmp(o.val, best) > 0 || (cmp(o.val, best) == 0 && o.idx < bestIdx) {
			best, bestIdx = o.val, o.idx
		}
	}
	// drain consumes every already-buffered outcome without blocking, so
	// a member that finished just before the deadline is never discarded.
	drain := func() {
		for got < len(members) {
			select {
			case o := <-ch:
				take(o)
			default:
				return
			}
		}
	}
	for got < len(members) {
		if deadline {
			drain()
			if bestIdx != -1 || got == len(members) {
				break // deadline fired and we have an answer: stop waiting
			}
			// Deadline fired with no answer yet: block for the next
			// finisher — the contract is best-effort, never an error.
			take(<-ch)
			continue
		}
		select {
		case o := <-ch:
			take(o)
		case <-ctx.Done():
			deadline = true
		}
	}
	if tr != nil {
		// Translate race-local offsets into trace-relative spans. Members
		// without an outcome yet were cut off: their end is the moment the
		// race stopped waiting, not their own finish.
		startNS := tr.Since() - int64(time.Since(base))
		if startNS < 0 {
			startNS = 0
		}
		raceEndNS := tr.Since()
		for i := range members {
			state := obs.MemberCutoff
			endNS := raceEndNS
			if ends[i] >= 0 {
				endNS = startNS + ends[i]
				switch {
				case i == bestIdx:
					state = obs.MemberWon
				case errs[i] == nil:
					state = obs.MemberFinished
				case errors.Is(errs[i], coalesce.ErrInapplicable):
					state = obs.MemberDeclined
				default:
					state = obs.MemberError
				}
			}
			tr.AddMember(members[i].name, startNS, endNS, state)
		}
	}
	if bestIdx == -1 {
		if firstErr != nil {
			return best, "", -1, deadline, firstErr
		}
		return best, "", -1, deadline, fmt.Errorf("service: no portfolio member produced an answer")
	}
	return best, members[bestIdx].name, bestIdx, deadline, nil
}

// DefaultPortfolio is the coalescing portfolio raced when a request does
// not pick its own: the fast guaranteed-answer heuristics first, then the
// powerful ones, then the anytime exact solver.
func DefaultPortfolio() []string {
	return []string{
		"aggressive", "briggs+george", "ext-george", "brute",
		"optimistic", "chordal-inc", "exact",
	}
}

// coalesceRacers resolves strategy names into portfolio members. Names
// come from the coalesce registry; "exact" is the service's anytime
// branch-and-bound member.
func (s *Server) coalesceRacers(f *graph.File, names []string) ([]racer[*coalesce.Result], error) {
	members := make([]racer[*coalesce.Result], 0, len(names))
	for _, name := range names {
		if name == "exact" {
			members = append(members, s.exactRacer(f))
			continue
		}
		st, ok := coalesce.LookupStrategy(name)
		if !ok {
			return nil, fmt.Errorf("unknown strategy %q (have %v and \"exact\")", name, coalesce.StrategyNames())
		}
		members = append(members, racer[*coalesce.Result]{
			name: st.Name,
			run: func(ctx context.Context) (*coalesce.Result, error) {
				return st.Run(ctx, f.G, f.K)
			},
		})
	}
	return members, nil
}

// exactRacer wraps the exact solver as an anytime member: outside its
// feasibility envelope it declines; canceled mid-search it reports the
// best coalescing found so far instead of an error.
func (s *Server) exactRacer(f *graph.File) racer[*coalesce.Result] {
	return racer[*coalesce.Result]{
		name: "exact",
		run: func(ctx context.Context) (*coalesce.Result, error) {
			if f.G.NumAffinities() > s.cfg.ExactMaxMoves || f.G.N() > s.cfg.ExactMaxVertices {
				return nil, fmt.Errorf("%w: instance outside exact envelope (moves %d > %d or vertices %d > %d)",
					coalesce.ErrInapplicable, f.G.NumAffinities(), s.cfg.ExactMaxMoves, f.G.N(), s.cfg.ExactMaxVertices)
			}
			res, _ := exact.OptimalCoalescingCtx(ctx, f.G, f.K, exact.TargetGreedy, exact.MinimizeWeight)
			if res.P == nil {
				return nil, fmt.Errorf("%w: exact search produced no partition", coalesce.ErrInapplicable)
			}
			return coalesce.ResultFromPartition(f.G, res.P, f.K), nil
		},
	}
}

// cmpCoalesce prefers answers that keep the graph colorable, then the
// most coalesced weight, then the fewest residual moves.
func cmpCoalesce(a, b *coalesce.Result) int {
	if a.Colorable != b.Colorable {
		if a.Colorable {
			return 1
		}
		return -1
	}
	switch {
	case a.CoalescedWeight != b.CoalescedWeight:
		if a.CoalescedWeight > b.CoalescedWeight {
			return 1
		}
		return -1
	case len(a.Remaining) != len(b.Remaining):
		if len(a.Remaining) < len(b.Remaining) {
			return 1
		}
		return -1
	}
	return 0
}

// allocNames lists the allocator portfolio member names. The spill-first
// members run the two-phase pipeline (regalloc.AllocateSpillFirst): on
// instances whose pressure exceeds k they are the members that guarantee
// a k-feasible answer with a deliberate spill set, where the optimistic
// select of the others may strand many vertices.
func allocNames() []string {
	return []string{"irc", "briggs+george", "optimistic", "none",
		"spill+briggs+george", "spill+optimistic"}
}

// allocateRacers builds the allocator portfolio: the IRC allocator,
// Chaitin-style allocations over selected coalescing modes, and the
// spill-then-coalesce pipeline. All members are polynomial; the race
// exists so a slow member never delays a fast winning answer past the
// deadline.
func allocateRacers(f *graph.File, names []string) ([]racer[*regalloc.Result], error) {
	build := func(name string) (racer[*regalloc.Result], error) {
		var run func() (*regalloc.Result, error)
		switch name {
		case "irc":
			run = func() (*regalloc.Result, error) { return regalloc.AllocateIRC(f.G, f.K) }
		case "briggs+george":
			run = func() (*regalloc.Result, error) { return regalloc.Allocate(f.G, f.K, regalloc.ModeConservative) }
		case "optimistic":
			run = func() (*regalloc.Result, error) { return regalloc.Allocate(f.G, f.K, regalloc.ModeOptimistic) }
		case "none":
			run = func() (*regalloc.Result, error) { return regalloc.Allocate(f.G, f.K, regalloc.ModeNone) }
		case "spill+briggs+george":
			run = spillFirstRun(f, regalloc.ModeConservative)
		case "spill+optimistic":
			run = spillFirstRun(f, regalloc.ModeOptimistic)
		default:
			return racer[*regalloc.Result]{}, fmt.Errorf("unknown allocator %q (have %v)", name, allocNames())
		}
		return racer[*regalloc.Result]{
			name: name,
			run:  func(context.Context) (*regalloc.Result, error) { return run() },
		}, nil
	}
	if len(names) == 0 {
		names = allocNames()
	}
	members := make([]racer[*regalloc.Result], 0, len(names))
	for _, n := range names {
		m, err := build(n)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	return members, nil
}

// spillFirstRun wraps the two-phase allocator as a portfolio member that
// declines already-feasible graphs: with nothing to spill, phase two
// recomputes exactly what the plain member of the same mode computes and
// can never win the tie-break, so running it would only burn a worker.
// The feasibility check is one greedy elimination, a fraction of a full
// allocation.
func spillFirstRun(f *graph.File, mode regalloc.Mode) func() (*regalloc.Result, error) {
	return func() (*regalloc.Result, error) {
		if greedy.IsGreedyKColorable(f.G, f.K) {
			return nil, fmt.Errorf("%w: graph is greedy-%d-colorable, spill-first adds nothing over %v",
				coalesce.ErrInapplicable, f.K, mode)
		}
		return regalloc.AllocateSpillFirst(f.G, f.K, mode)
	}
}

// spillNames lists the spill portfolio member names.
func spillNames() []string { return []string{"greedy", "incremental", "exact"} }

// spillRacers builds the spill portfolio: the rebuild-per-round greedy
// spiller, the incremental variant (identical answers, less work — racing
// both is deliberate: whichever the scheduler favors wins with the same
// plan), and the anytime exact search, which declines instances beyond
// its envelope and contributes its incumbent when the deadline fires.
// The exact member runs under the server's node budget
// (Config.SpillExactNodes) so one request never monopolizes a worker
// for the full deadline when the heuristics answered in microseconds.
func (s *Server) spillRacers(f *graph.File, names []string) ([]racer[*spill.Plan], error) {
	if len(names) == 0 {
		names = spillNames()
	}
	members := make([]racer[*spill.Plan], 0, len(names))
	for _, name := range names {
		var run func(ctx context.Context) (*spill.Plan, error)
		switch name {
		case "greedy":
			run = func(context.Context) (*spill.Plan, error) { return spill.Greedy(f, nil) }
		case "incremental":
			run = func(context.Context) (*spill.Plan, error) { return spill.Incremental(f, nil) }
		case "exact":
			run = func(ctx context.Context) (*spill.Plan, error) {
				p, err := spill.ExactBudget(ctx, f, nil, s.cfg.SpillExactNodes)
				if err == spill.ErrEnvelope {
					return nil, fmt.Errorf("%w: %v", coalesce.ErrInapplicable, err)
				}
				return p, err
			}
		default:
			return nil, fmt.Errorf("unknown spiller %q (have %v)", name, spillNames())
		}
		members = append(members, racer[*spill.Plan]{name: name, run: run})
	}
	return members, nil
}

// cmpSpill prefers the cheapest spill set, then the fewest spills, then a
// proven-optimal answer.
func cmpSpill(a, b *spill.Plan) int {
	switch {
	case a.Cost != b.Cost:
		if a.Cost < b.Cost {
			return 1
		}
		return -1
	case len(a.Spilled) != len(b.Spilled):
		if len(a.Spilled) < len(b.Spilled) {
			return 1
		}
		return -1
	case a.Optimal != b.Optimal:
		if a.Optimal {
			return 1
		}
		return -1
	}
	return 0
}

// cmpAllocate prefers the fewest spills, then the most coalesced weight.
func cmpAllocate(a, b *regalloc.Result) int {
	switch {
	case len(a.Spilled) != len(b.Spilled):
		if len(a.Spilled) < len(b.Spilled) {
			return 1
		}
		return -1
	case a.CoalescedWeight != b.CoalescedWeight:
		if a.CoalescedWeight > b.CoalescedWeight {
			return 1
		}
		return -1
	}
	return 0
}

// normalizeStrategies validates and canonicalizes a request's strategy
// list for the cache key: sorted, deduplicated.
func normalizeStrategies(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := make([]string, 0, len(names))
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
