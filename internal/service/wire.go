package service

// Cache-entry wire format for the cluster's tiered cache. Entries are
// canonical-space solutions, so they transfer between nodes losslessly:
// the receiving worker renders them into each request's own vertex
// numbering exactly as it renders its local hits. Shipping entries (not
// response bodies) is what makes peer fill correct for relabeled
// duplicates — two isomorphic requests share an entry but need different
// response bytes.

import (
	"encoding/json"
	"fmt"
)

// wireEntry is the JSON shape of a cache entry in flight between nodes.
type wireEntry struct {
	Classes  [][]int `json:"classes,omitempty"`
	Coloring []int   `json:"coloring,omitempty"`
	Spilled  []int   `json:"spilled,omitempty"`

	Strategy        string `json:"strategy"`
	CoalescedMoves  int    `json:"coalesced_moves,omitempty"`
	CoalescedWeight int64  `json:"coalesced_weight,omitempty"`
	RemainingWeight int64  `json:"remaining_weight,omitempty"`
	Colorable       bool   `json:"colorable,omitempty"`
	Spills          int    `json:"spills,omitempty"`
	SpillCost       int64  `json:"spill_cost,omitempty"`
	Optimal         bool   `json:"optimal,omitempty"`
	DeadlineHit     bool   `json:"deadline_hit,omitempty"`
}

// CachePeek returns the serialized cache entry for key without changing
// hit/miss counters (it does refresh LRU recency). It is the read side of
// the cluster's peer-fill protocol: the shard that owns a hash answers
// peers from its local cache.
func (s *Server) CachePeek(key string) ([]byte, bool) {
	e, ok := s.cache.Get(key)
	if !ok {
		return nil, false
	}
	data, err := json.Marshal(wireEntry{
		Classes:         e.classes,
		Coloring:        e.coloring,
		Spilled:         e.spilled,
		Strategy:        e.strategy,
		CoalescedMoves:  e.coalescedMoves,
		CoalescedWeight: e.coalescedWeight,
		RemainingWeight: e.remainingWeight,
		Colorable:       e.colorable,
		Spills:          e.spills,
		SpillCost:       e.spillCost,
		Optimal:         e.optimal,
		DeadlineHit:     e.deadlineHit,
	})
	if err != nil {
		return nil, false
	}
	return data, true
}

// CacheSeed installs a serialized entry (from CachePeek on a peer) into
// this node's cache under key. The entry lands subject to the same LRU
// and deadline-truncation rules as locally computed ones.
func (s *Server) CacheSeed(key string, data []byte) error {
	var w wireEntry
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("cache seed: %w", err)
	}
	if w.Strategy == "" {
		return fmt.Errorf("cache seed: entry missing strategy")
	}
	s.cache.Put(key, &entry{
		classes:         w.Classes,
		coloring:        w.Coloring,
		spilled:         w.Spilled,
		strategy:        w.Strategy,
		coalescedMoves:  w.CoalescedMoves,
		coalescedWeight: w.CoalescedWeight,
		remainingWeight: w.RemainingWeight,
		colorable:       w.Colorable,
		spills:          w.Spills,
		spillCost:       w.SpillCost,
		optimal:         w.Optimal,
		deadlineHit:     w.DeadlineHit,
	})
	return nil
}

// CacheContains reports whether key is resident without touching LRU
// order or counters' semantics beyond Get's recency refresh.
func (s *Server) CacheContains(key string) bool {
	_, ok := s.cache.Get(key)
	return ok
}
