package service

import (
	"fmt"
	"strings"

	"regcoal/internal/graph"
)

// Wire schema of the online coalescing API. Responses are rendered through
// a single deterministic path (see render.go) so that a repeated instance
// is answered with a byte-identical body whether it was computed or served
// from the cache; anything non-deterministic (timing, cache disposition)
// travels in headers, never in the body.

// Move is a weighted move edge in a native-JSON graph.
type Move struct {
	X      int   `json:"x"`
	Y      int   `json:"y"`
	Weight int64 `json:"weight,omitempty"`
}

// Pin precolors a vertex.
type Pin struct {
	V     int `json:"v"`
	Color int `json:"color"`
}

// GraphSpec carries an interference graph in one of three encodings:
// native JSON (vertices/edges/moves/precolored), the textual challenge
// format (text), or DIMACS .col with regcoal comments (dimacs). Exactly
// one encoding must be used.
type GraphSpec struct {
	Vertices   int      `json:"vertices,omitempty"`
	Names      []string `json:"names,omitempty"`
	Edges      [][2]int `json:"edges,omitempty"`
	Moves      []Move   `json:"moves,omitempty"`
	Precolored []Pin    `json:"precolored,omitempty"`
	K          int      `json:"k,omitempty"`

	Text   string `json:"text,omitempty"`
	Dimacs string `json:"dimacs,omitempty"`
}

// ToFile decodes the spec into an instance.
func (s *GraphSpec) ToFile() (*graph.File, error) {
	encodings := 0
	if s.Text != "" {
		encodings++
	}
	if s.Dimacs != "" {
		encodings++
	}
	native := s.Vertices > 0 || len(s.Edges) > 0 || len(s.Names) > 0 ||
		len(s.Moves) > 0 || len(s.Precolored) > 0 || s.K > 0
	if native {
		encodings++
	}
	if encodings > 1 {
		// Mixing encodings would silently drop the loser's fields (e.g.
		// native pins alongside a dimacs payload); refuse instead.
		return nil, fmt.Errorf("graph: use exactly one of native fields, text, dimacs")
	}
	switch {
	case s.Text != "":
		return graph.ReadFrom(strings.NewReader(s.Text))
	case s.Dimacs != "":
		return graph.ReadDIMACSFile(strings.NewReader(s.Dimacs))
	default:
		return s.toNativeFile()
	}
}

func (s *GraphSpec) toNativeFile() (*graph.File, error) {
	n := s.Vertices
	if len(s.Names) > n {
		n = len(s.Names)
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: empty native graph (set vertices or names)")
	}
	g := graph.New(n)
	for i, name := range s.Names {
		g.SetName(graph.V(i), name)
	}
	inRange := func(v int) error {
		if v < 0 || v >= n {
			return fmt.Errorf("graph: vertex %d out of range [0,%d)", v, n)
		}
		return nil
	}
	for _, e := range s.Edges {
		if err := inRange(e[0]); err != nil {
			return nil, err
		}
		if err := inRange(e[1]); err != nil {
			return nil, err
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop on vertex %d", e[0])
		}
		g.AddEdge(graph.V(e[0]), graph.V(e[1]))
	}
	for _, m := range s.Moves {
		if err := inRange(m.X); err != nil {
			return nil, err
		}
		if err := inRange(m.Y); err != nil {
			return nil, err
		}
		w := m.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("graph: negative move weight %d", w)
		}
		g.AddAffinity(graph.V(m.X), graph.V(m.Y), w)
	}
	for _, p := range s.Precolored {
		if err := inRange(p.V); err != nil {
			return nil, err
		}
		if p.Color < 0 {
			return nil, fmt.Errorf("graph: negative precolor %d", p.Color)
		}
		g.SetPrecolored(graph.V(p.V), p.Color)
	}
	return &graph.File{G: g, K: s.K}, nil
}

// Request is the body of POST /v1/coalesce and POST /v1/allocate. Either
// Graph (single instance) or Batch (many) must be set.
type Request struct {
	Graph *GraphSpec `json:"graph,omitempty"`
	// K overrides the register count carried by the graph encoding.
	K int `json:"k,omitempty"`
	// DeadlineMS bounds the strategy race; 0 uses the server default,
	// values above the server maximum are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Strategies restricts the coalescing portfolio (names from the
	// coalesce registry plus "exact"); empty runs the server's portfolio.
	Strategies []string `json:"strategies,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// Batch dispatches each element as its own job on the worker pool and
	// collects all results. Elements must not themselves carry batches.
	Batch []Request `json:"batch,omitempty"`
}

// CoalesceResult is the body of a successful /v1/coalesce response.
type CoalesceResult struct {
	Hash     string `json:"hash"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Moves    int    `json:"moves"`
	K        int    `json:"k"`

	// Strategy is the portfolio member whose answer won the race.
	Strategy        string `json:"strategy"`
	CoalescedMoves  int    `json:"coalesced_moves"`
	CoalescedWeight int64  `json:"coalesced_weight"`
	RemainingWeight int64  `json:"remaining_weight"`
	Colorable       bool   `json:"colorable"`
	// DeadlineHit records that the race was cut off and the answer is the
	// best found, not necessarily the best the full portfolio could do.
	DeadlineHit bool `json:"deadline_hit"`

	// Classes is the coalescing: vertex classes in request numbering.
	Classes [][]int `json:"classes"`
	// Coloring assigns a register per vertex when Colorable.
	Coloring []int `json:"coloring,omitempty"`
}

// SpillResult is the body of a successful /v1/spill response: the spill
// set that lowers the instance to a greedy-k-colorable one, and a proper
// k-coloring of the residual (spilled vertices get -1).
type SpillResult struct {
	Hash     string `json:"hash"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Moves    int    `json:"moves"`
	K        int    `json:"k"`

	Strategy string `json:"strategy"`
	// Spilled lists the evicted vertices (request numbering, sorted).
	Spilled []int `json:"spilled,omitempty"`
	Spills  int   `json:"spills"`
	// SpillCost is the total eviction cost (== Spills under unit costs).
	SpillCost int64 `json:"spill_cost"`
	// Optimal marks a spill set proven cost-minimal (exact member won
	// with a completed search).
	Optimal     bool  `json:"optimal"`
	Coloring    []int `json:"coloring"`
	DeadlineHit bool  `json:"deadline_hit"`
}

// AllocateResult is the body of a successful /v1/allocate response.
type AllocateResult struct {
	Hash     string `json:"hash"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Moves    int    `json:"moves"`
	K        int    `json:"k"`

	Strategy        string `json:"strategy"`
	Coloring        []int  `json:"coloring"`
	Spilled         []int  `json:"spilled,omitempty"`
	Spills          int    `json:"spills"`
	CoalescedWeight int64  `json:"coalesced_weight"`
	RemainingWeight int64  `json:"remaining_weight"`
	DeadlineHit     bool   `json:"deadline_hit"`
}

// BatchSolveRequest is the body of POST /v1/batch: one kind applied to
// many single-graph requests, decoded once and fanned out on the worker
// pool (and, in cluster mode, across shards).
type BatchSolveRequest struct {
	// Kind selects the portfolio: "coalesce" (default), "allocate", "spill".
	Kind string `json:"kind,omitempty"`
	// Items are the instances to solve, answered in order.
	Items []Request `json:"items"`
}

// BatchEntry is one element of a batch response: exactly one of the result
// fields, or Error.
type BatchEntry struct {
	Coalesce *CoalesceResult `json:"coalesce,omitempty"`
	Allocate *AllocateResult `json:"allocate,omitempty"`
	Spill    *SpillResult    `json:"spill,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchResponse is the body of a batch request's response, results in
// request order.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
