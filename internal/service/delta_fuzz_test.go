package service_test

// Fuzz coverage for the delta wire format: whatever bytes arrive at
// POST /v1/coalesce/delta, the handler must answer 200 or a structured
// 4xx JSON body — never a panic, never a 5xx. The seeds walk the
// documented failure modes (malformed vertex ids, duplicate edges, k
// underflow, deltas against never-created or evicted sessions) plus a
// live session id injected per run, so mutations also exercise the
// validated apply path, not just decode rejections.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regcoal/internal/service"
	"regcoal/internal/session"
)

func FuzzApplyDelta(f *testing.F) {
	srv, err := service.New(service.Config{})
	if err != nil {
		f.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	// One live session the fuzzer can address via the LIVE placeholder,
	// and one created-then-closed id for the evicted-session path.
	mk := func(op string) service.DeltaResponse {
		body, _ := json.Marshal(service.DeltaRequest{Op: op, Graph: &service.GraphSpec{
			Vertices: 4, K: 2, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}},
			Moves: []service.Move{{X: 0, Y: 3, Weight: 2}}}})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/coalesce/delta", bytes.NewReader(body)))
		var resp service.DeltaResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || rec.Code != http.StatusOK {
			f.Fatalf("bootstrap %s: status %d body %s", op, rec.Code, rec.Body.Bytes())
		}
		return resp
	}
	live := mk("create")
	closed := mk("create")
	cbody, _ := json.Marshal(service.DeltaRequest{Op: "close", SessionID: closed.SessionID})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/coalesce/delta", bytes.NewReader(cbody)))
	if rec.Code != http.StatusOK {
		f.Fatalf("bootstrap close: status %d", rec.Code)
	}

	seed := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	ver := func(n int64) *int64 { return &n }
	// Valid shapes.
	seed(service.DeltaRequest{Op: "create", Graph: &service.GraphSpec{Vertices: 3, K: 2, Edges: [][2]int{{0, 1}}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Deltas: []session.Delta{{Op: session.OpAddVertex}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Version: ver(0), Deltas: []session.Delta{{Op: session.OpAddEdge, U: 0, V: 2}}})
	seed(service.DeltaRequest{Op: "close", SessionID: "LIVE"})
	// Documented 4xx: malformed vertex ids, duplicate edges, k underflow,
	// deltas against closed/unknown sessions, stale versions.
	seed(service.DeltaRequest{SessionID: "LIVE", Deltas: []session.Delta{{Op: session.OpAddEdge, U: -1, V: 99}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Deltas: []session.Delta{{Op: session.OpAddEdge, U: 0, V: 1}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Deltas: []session.Delta{{Op: session.OpSetK, K: 0}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Deltas: []session.Delta{{Op: session.OpSetK, K: -7}}})
	seed(service.DeltaRequest{SessionID: closed.SessionID, Deltas: []session.Delta{{Op: session.OpAddVertex}}})
	seed(service.DeltaRequest{SessionID: "s-never", Deltas: []session.Delta{{Op: session.OpAddVertex}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Version: ver(999), Deltas: []session.Delta{{Op: session.OpAddVertex}}})
	seed(service.DeltaRequest{SessionID: "LIVE", BaseHash: "wrong", Deltas: []session.Delta{{Op: session.OpAddVertex}}})
	seed(service.DeltaRequest{SessionID: "LIVE", Deltas: []session.Delta{{Op: "frobnicate", U: 1}}})
	// Structurally broken bodies.
	f.Add(`{"op":`)
	f.Add(`{"op":"create"}`)
	f.Add(`{"op":"create","graph":{"vertices":-3,"k":2}}`)
	f.Add(`{"deltas":[{"op":"add_edge","u":1e99,"v":0}],"session_id":"LIVE"}`)
	f.Add(`[]`)
	f.Add(`{"session_id":"LIVE","deltas":[]}`)

	f.Fuzz(func(t *testing.T, body string) {
		// LIVE lets mutated inputs keep addressing the real session.
		body = strings.ReplaceAll(body, "LIVE", live.SessionID)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/coalesce/delta", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("5xx (%d) for body %q: %s", rec.Code, body, rec.Body.Bytes())
		}
		if rec.Code != http.StatusOK {
			var e service.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("status %d without structured error body %q for input %q", rec.Code, rec.Body.Bytes(), body)
			}
		}
	})
}
