package service_test

// Satellite coverage for the serving-tier PR: liveness/readiness split,
// graceful drain of in-flight batch work, and the cache/singleflight
// counter surface on /metrics and /stats.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"regcoal/internal/graph"
	"regcoal/internal/service"
	"regcoal/internal/service/loadgen"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestReadinessSplitsFromLiveness(t *testing.T) {
	s, ts := startService(t, service.Config{Workers: 2})
	for _, ep := range []string{"/healthz", "/livez", "/readyz"} {
		if st, body := get(t, ts.URL+ep); st != http.StatusOK {
			t.Fatalf("%s before drain: %d: %s", ep, st, body)
		}
	}
	s.BeginDrain()
	if st, _ := get(t, ts.URL+"/livez"); st != http.StatusOK {
		t.Fatalf("/livez during drain: %d, want 200 (process is alive)", st)
	}
	if st, _ := get(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200 (liveness alias)", st)
	}
	st, body := get(t, ts.URL+"/readyz")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", st)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("/readyz drain body %s", body)
	}

	// Draining sheds new traffic via readiness, not by refusing work:
	// requests that still arrive are answered.
	jobs, err := loadgen.BuildJobs("tiny", 20060408, true, loadgen.JobOptions{Format: "native"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/coalesce", "application/json", bytes.NewReader(jobs[0].Body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve during drain: %d, want 200", resp.StatusCode)
	}
}

// Drain must wait for an in-flight /v1/batch request — the fan-out holds
// InFlight for the whole batch, so graceful shutdown cannot cut its
// elements short.
func TestDrainWaitsForInFlightBatch(t *testing.T) {
	s, ts := startService(t, service.Config{Workers: 2, QueueCap: 64})

	// A batch of two branch-and-bound instances, each racing a full
	// 300ms deadline: the request holds InFlight long enough for Drain
	// to provably start while it is running.
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomER(rng, 48, 0.4)
	graph.SprinkleAffinities(rng, g, 14, 100)
	var dimacs strings.Builder
	if err := graph.WriteDIMACSFile(&dimacs, &graph.File{G: g, K: 6}); err != nil {
		t.Fatal(err)
	}
	item := service.Request{Graph: &service.GraphSpec{Dimacs: dimacs.String()}, DeadlineMS: 300, NoCache: true}
	body, err := json.Marshal(&service.BatchSolveRequest{Kind: "coalesce", Items: []service.Request{item, item}})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: data}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := s.Metrics().InFlight.Load(); n != 0 {
		t.Fatalf("drain returned with %d requests in flight", n)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("batch request failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("batch answered %d after drain: %s", r.status, r.body)
		}
		var out service.BatchResponse
		if err := json.Unmarshal(r.body, &out); err != nil {
			t.Fatal(err)
		}
		for i, e := range out.Results {
			if e.Error != "" || e.Coalesce == nil {
				t.Fatalf("batch element %d cut short by drain: %q", i, e.Error)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch response never arrived after drain")
	}
}

// The cache and collapse counters the cluster relies on are visible on
// both observability surfaces.
func TestMetricsExposeCacheAndCollapseCounters(t *testing.T) {
	// Capacity 1 forces an eviction as soon as two distinct instances
	// are cached.
	s, ts := startService(t, service.Config{Workers: 2, CacheCapacity: 1, CacheShards: 1})
	jobs, err := loadgen.BuildJobs("tiny", 20060408, true, loadgen.JobOptions{Format: "native"})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 2 {
		t.Fatalf("need 2 tiny jobs, got %d", len(jobs))
	}
	fire := func(path string, body []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	fire("/v1/coalesce", jobs[0].Body)
	fire("/v1/coalesce", jobs[0].Body) // hit
	fire("/v1/coalesce", jobs[1].Body) // evicts jobs[0]
	var breq service.BatchSolveRequest
	breq.Kind = "coalesce"
	var item service.Request
	if err := json.Unmarshal(jobs[0].Body, &item); err != nil {
		t.Fatal(err)
	}
	breq.Items = []service.Request{item}
	bbody, err := json.Marshal(&breq)
	if err != nil {
		t.Fatal(err)
	}
	fire("/v1/batch", bbody)

	st, statsBody := get(t, ts.URL+"/stats")
	if st != http.StatusOK {
		t.Fatalf("/stats: %d", st)
	}
	var stats service.Stats
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits == 0 {
		t.Fatal("stats: no cache hits after a repeat")
	}
	if stats.CacheEvictions == 0 {
		t.Fatal("stats: no evictions with capacity 1 and two instances")
	}
	if stats.BatchRequests != 1 {
		t.Fatalf("stats: batch_requests %d, want 1", stats.BatchRequests)
	}
	// The raw JSON must carry the counter keys even at zero, so
	// dashboards can rely on them.
	for _, key := range []string{"cache_evictions", "singleflight_collapses", "batch_requests", "cache_hits", "cache_misses"} {
		if !strings.Contains(string(statsBody), `"`+key+`"`) {
			t.Fatalf("/stats missing %q: %s", key, statsBody)
		}
	}

	st, promBody := get(t, ts.URL+"/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	for _, family := range []string{
		"regcoal_cache_hits_total",
		"regcoal_cache_misses_total",
		"regcoal_cache_evictions_total",
		"regcoal_singleflight_collapses_total",
		"regcoal_batch_requests_total",
	} {
		if !strings.Contains(string(promBody), family) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
	if s.Metrics().BatchGraphs.Load() != 1 {
		t.Fatalf("batch_graphs %d, want 1", s.Metrics().BatchGraphs.Load())
	}
}
