package service

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4, 1) // one shard of 4 for deterministic eviction
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), &entry{strategy: fmt.Sprintf("s%d", i)})
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.Len())
	}
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := c.Get(gone); ok {
			t.Errorf("oldest key %s survived eviction", gone)
		}
	}
	for _, kept := range []string{"k2", "k3", "k4", "k5"} {
		if _, ok := c.Get(kept); !ok {
			t.Errorf("recent key %s evicted", kept)
		}
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("a", &entry{})
	c.Put("b", &entry{})
	c.Get("a")           // a is now most recent
	c.Put("c", &entry{}) // evicts b
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used key evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used key survived")
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := NewCache(8, 2)
	c.Put("k", &entry{strategy: "old"})
	c.Put("k", &entry{strategy: "new"})
	e, ok := c.Get("k")
	if !ok || e.strategy != "new" {
		t.Fatalf("got %+v, want replaced entry", e)
	}
	if c.Len() != 1 {
		t.Fatalf("replace grew the cache to %d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1, 4)
	c.Put("k", &entry{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}
