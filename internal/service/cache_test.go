package service

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4, 1) // one shard of 4 for deterministic eviction
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), &entry{strategy: fmt.Sprintf("s%d", i)})
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.Len())
	}
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := c.Get(gone); ok {
			t.Errorf("oldest key %s survived eviction", gone)
		}
	}
	for _, kept := range []string{"k2", "k3", "k4", "k5"} {
		if _, ok := c.Get(kept); !ok {
			t.Errorf("recent key %s evicted", kept)
		}
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("a", &entry{})
	c.Put("b", &entry{})
	c.Get("a")           // a is now most recent
	c.Put("c", &entry{}) // evicts b
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used key evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least recently used key survived")
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := NewCache(8, 2)
	c.Put("k", &entry{strategy: "old"})
	c.Put("k", &entry{strategy: "new"})
	e, ok := c.Get("k")
	if !ok || e.strategy != "new" {
		t.Fatalf("got %+v, want replaced entry", e)
	}
	if c.Len() != 1 {
		t.Fatalf("replace grew the cache to %d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1, 4)
	c.Put("k", &entry{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

// TestCacheGetReturnsCopy pins the immutability contract: Get hands back
// a copy of the entry record, so a caller mutating its fields cannot
// change what later hits observe.
func TestCacheGetReturnsCopy(t *testing.T) {
	c := NewCache(8, 1)
	c.Put("k", &entry{strategy: "winner", spills: 3})
	e1, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	e1.strategy = "tampered"
	e1.spills = 99
	e2, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after tamper")
	}
	if e2.strategy != "winner" || e2.spills != 3 {
		t.Fatalf("cache record mutated through a Get copy: %+v", e2)
	}
}

// TestCacheConcurrentStress hammers Get/Put/eviction from many
// goroutines over a keyspace larger than the capacity, so every
// operation type races every other (run under -race in CI). Every hit
// must return an internally consistent entry: strategy and spills are
// written as a matched pair and must be observed as one.
func TestCacheConcurrentStress(t *testing.T) {
	c := NewCache(32, 4) // small: constant eviction pressure
	const (
		workers = 8
		ops     = 2000
		keys    = 128
	)
	var wg sync.WaitGroup
	torn := make(chan string, workers) // first torn read per worker
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				k := rng.Intn(keys)
				key := fmt.Sprintf("k%d", k)
				switch rng.Intn(3) {
				case 0:
					c.Put(key, &entry{strategy: fmt.Sprintf("s%d", k), spills: k})
				case 1:
					if e, ok := c.Get(key); ok {
						if e.strategy != fmt.Sprintf("s%d", k) || e.spills != k {
							select {
							case torn <- fmt.Sprintf("key %s got %+v", key, e):
							default:
							}
							return
						}
					}
				default:
					c.Len()
				}
			}
		}()
	}
	wg.Wait()
	close(torn)
	for msg := range torn {
		t.Errorf("torn read: %s", msg)
	}
	if c.Len() > 32 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}
