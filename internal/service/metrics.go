package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regcoal/internal/coalesce"
	"regcoal/internal/obs"
	"regcoal/internal/session"
)

// Metrics are the service's counters, exported two ways: Prometheus text
// on GET /metrics and a JSON snapshot on GET /stats. Everything is atomic.
// Strategy wins use a two-tier map: every strategy the server can race is
// preregistered at construction into an immutable map, so the hot path
// (one StrategyWon per completed race) is a lock-free map read plus an
// atomic add; the mutex-guarded overflow map exists only for names outside
// the preregistered set (future registry additions reaching an old
// binary), which by definition are not hot.
type Metrics struct {
	start time.Time

	CoalesceRequests      atomic.Int64
	AllocateRequests      atomic.Int64
	SpillRequests         atomic.Int64
	DeltaRequests         atomic.Int64
	BatchRequests         atomic.Int64
	BatchGraphs           atomic.Int64
	CacheHits             atomic.Int64
	CacheMisses           atomic.Int64
	SingleflightCollapses atomic.Int64
	Rejected              atomic.Int64
	BadRequests           atomic.Int64
	Errors                atomic.Int64
	DeadlineHits          atomic.Int64
	InFlight              atomic.Int64

	knownWins map[string]*atomic.Int64 // immutable after newMetrics

	winsMu sync.Mutex
	wins   map[string]*atomic.Int64 // overflow: names outside knownWins
}

func newMetrics() *Metrics {
	m := &Metrics{
		start:     time.Now(),
		knownWins: make(map[string]*atomic.Int64),
		wins:      make(map[string]*atomic.Int64),
	}
	for _, name := range knownStrategyNames() {
		if _, ok := m.knownWins[name]; !ok {
			m.knownWins[name] = &atomic.Int64{}
		}
	}
	return m
}

// StrategyWon counts a portfolio race won by the named strategy.
func (m *Metrics) StrategyWon(name string) {
	if c, ok := m.knownWins[name]; ok {
		c.Add(1)
		return
	}
	m.winsMu.Lock()
	c, ok := m.wins[name]
	if !ok {
		c = &atomic.Int64{}
		m.wins[name] = c
	}
	m.winsMu.Unlock()
	c.Add(1)
}

// winSnapshot reports every strategy with at least one win. Preregistered
// strategies that never won are omitted, matching the lazy-map behavior
// this surface always had.
func (m *Metrics) winSnapshot() map[string]int64 {
	out := make(map[string]int64, len(m.knownWins))
	for name, c := range m.knownWins {
		if v := c.Load(); v > 0 {
			out[name] = v
		}
	}
	m.winsMu.Lock()
	defer m.winsMu.Unlock()
	for name, c := range m.wins {
		if v := c.Load(); v > 0 {
			out[name] = v
		}
	}
	return out
}

// Stats is the JSON snapshot served on /stats.
type Stats struct {
	UptimeSeconds         float64          `json:"uptime_seconds"`
	CoalesceRequests      int64            `json:"coalesce_requests"`
	AllocateRequests      int64            `json:"allocate_requests"`
	SpillRequests         int64            `json:"spill_requests"`
	DeltaRequests         int64            `json:"delta_requests"`
	BatchRequests         int64            `json:"batch_requests"`
	BatchGraphs           int64            `json:"batch_graphs"`
	CacheHits             int64            `json:"cache_hits"`
	CacheMisses           int64            `json:"cache_misses"`
	CacheEvictions        int64            `json:"cache_evictions"`
	CacheEntries          int              `json:"cache_entries"`
	SingleflightCollapses int64            `json:"singleflight_collapses"`
	Rejected              int64            `json:"rejected"`
	BadRequests           int64            `json:"bad_requests"`
	Errors                int64            `json:"errors"`
	DeadlineHits          int64            `json:"deadline_hits"`
	InFlight              int64            `json:"in_flight"`
	QueueDepth            int              `json:"queue_depth"`
	StrategyWins          map[string]int64 `json:"strategy_wins"`
	// Latency carries per-endpoint p50/p90/p99 summaries (total and per
	// phase), filled by Server.StatsSnapshot from the obs histograms.
	Latency map[string]obs.EndpointSummary `json:"latency,omitempty"`
	// Sessions carries the delta-session layer's counters, filled by
	// Server.StatsSnapshot.
	Sessions *session.StatsSnapshot `json:"sessions,omitempty"`
}

func (m *Metrics) snapshot(cacheEntries, queueDepth int, cacheEvictions int64) Stats {
	return Stats{
		UptimeSeconds:         time.Since(m.start).Seconds(),
		CoalesceRequests:      m.CoalesceRequests.Load(),
		AllocateRequests:      m.AllocateRequests.Load(),
		SpillRequests:         m.SpillRequests.Load(),
		DeltaRequests:         m.DeltaRequests.Load(),
		BatchRequests:         m.BatchRequests.Load(),
		BatchGraphs:           m.BatchGraphs.Load(),
		CacheHits:             m.CacheHits.Load(),
		CacheMisses:           m.CacheMisses.Load(),
		CacheEvictions:        cacheEvictions,
		CacheEntries:          cacheEntries,
		SingleflightCollapses: m.SingleflightCollapses.Load(),
		Rejected:              m.Rejected.Load(),
		BadRequests:           m.BadRequests.Load(),
		Errors:                m.Errors.Load(),
		DeadlineHits:          m.DeadlineHits.Load(),
		InFlight:              m.InFlight.Load(),
		QueueDepth:            queueDepth,
		StrategyWins:          m.winSnapshot(),
	}
}

// writePrometheus renders the counters in Prometheus exposition format.
func (m *Metrics) writePrometheus(w io.Writer, cacheEntries, queueDepth int, cacheEvictions int64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP regcoal_requests_total Requests per endpoint.\n# TYPE regcoal_requests_total counter\n")
	fmt.Fprintf(w, "regcoal_requests_total{endpoint=\"coalesce\"} %d\n", m.CoalesceRequests.Load())
	fmt.Fprintf(w, "regcoal_requests_total{endpoint=\"allocate\"} %d\n", m.AllocateRequests.Load())
	fmt.Fprintf(w, "regcoal_requests_total{endpoint=\"spill\"} %d\n", m.SpillRequests.Load())
	fmt.Fprintf(w, "regcoal_requests_total{endpoint=\"delta\"} %d\n", m.DeltaRequests.Load())
	counter("regcoal_batch_requests_total", "POST /v1/batch requests.", m.BatchRequests.Load())
	counter("regcoal_batch_graphs_total", "Graphs received inside batch requests.", m.BatchGraphs.Load())
	counter("regcoal_cache_hits_total", "Requests answered from the result cache.", m.CacheHits.Load())
	counter("regcoal_cache_misses_total", "Requests that had to compute.", m.CacheMisses.Load())
	counter("regcoal_cache_evictions_total", "Entries evicted from the result cache.", cacheEvictions)
	counter("regcoal_singleflight_collapses_total", "Requests answered by collapsing onto a concurrent identical request's race.", m.SingleflightCollapses.Load())
	counter("regcoal_rejected_total", "Requests rejected with 429 (pool saturated).", m.Rejected.Load())
	counter("regcoal_bad_requests_total", "Requests rejected with 400.", m.BadRequests.Load())
	counter("regcoal_errors_total", "Requests failed with 5xx.", m.Errors.Load())
	counter("regcoal_deadline_hits_total", "Races cut off by the request deadline.", m.DeadlineHits.Load())
	gauge("regcoal_in_flight", "Requests currently being served.", m.InFlight.Load())
	gauge("regcoal_cache_entries", "Entries in the result cache.", int64(cacheEntries))
	gauge("regcoal_queue_depth", "Jobs waiting for a pool worker.", int64(queueDepth))
	gauge("regcoal_uptime_seconds", "Seconds since server start.", int64(time.Since(m.start).Seconds()))

	wins := m.winSnapshot()
	if len(wins) > 0 {
		names := make([]string, 0, len(wins))
		for n := range wins {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP regcoal_strategy_wins_total Portfolio races won per strategy.\n# TYPE regcoal_strategy_wins_total counter\n")
		for _, n := range names {
			fmt.Fprintf(w, "regcoal_strategy_wins_total{strategy=%q} %d\n", n, wins[n])
		}
	}
}

// knownStrategyNames is the union of every portfolio member name the
// server can race — the preregistered strategy-win set.
func knownStrategyNames() []string {
	names := append([]string{}, coalesce.StrategyNames()...)
	names = append(names, "exact")
	names = append(names, allocNames()...)
	names = append(names, spillNames()...)
	return names
}
