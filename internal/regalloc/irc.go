package regalloc

import (
	"fmt"
	"sort"

	"regcoal/internal/graph"
)

// IRC implements iterated register coalescing (George & Appel, TOPLAS
// 1996) — the allocator framework the paper's introduction describes:
// simplification, conservative coalescing (Briggs' test between two
// temporaries, George's test against precolored nodes), freezing, and
// optimistic potential spills, driven by interleaved worklists over a
// mutable interference graph.
//
// This is the classical formulation with explicit worklists and move sets,
// operating on a graph.Graph input; it returns the coloring of the
// original vertices (spilled vertices get NoColor), the coalescing
// partition, and per-move outcomes.
type IRC struct {
	k int
	g *graph.Graph

	// adjacency of the evolving graph (indexed by original vertex; merged
	// vertices alias to their representative).
	adj    []map[graph.V]bool
	degree []int

	precolored map[graph.V]bool
	alias      map[graph.V]graph.V

	// node worklists; a vertex is in exactly one of these sets (or on the
	// select stack / coalesced).
	simplifyWorklist map[graph.V]bool
	freezeWorklist   map[graph.V]bool
	spillWorklist    map[graph.V]bool
	coalescedNodes   map[graph.V]bool
	selectStack      []graph.V
	onStack          map[graph.V]bool

	// move management. Moves are indices into moves[].
	moves            []graph.Affinity
	moveList         map[graph.V][]int
	worklistMoves    map[int]bool
	activeMoves      map[int]bool
	coalescedMoves   map[int]bool
	constrainedMoves map[int]bool
	frozenMoves      map[int]bool
}

// IRCResult is the outcome of an IRC run.
type IRCResult struct {
	// Coloring of the original vertices (NoColor = spilled).
	Coloring graph.Coloring
	// Spilled lists actual spills.
	Spilled []graph.V
	// P is the coalescing partition realized by the run.
	P *graph.Partition
	// CoalescedMoves, ConstrainedMoves, FrozenMoves count move outcomes.
	CoalescedMoves, ConstrainedMoves, FrozenMoves int
	// CoalescedWeight is the weight of moves whose endpoints merged.
	CoalescedWeight int64
}

// NewIRC prepares an IRC run over g with k colors. The graph is not
// modified.
func NewIRC(g *graph.Graph, k int) *IRC {
	n := g.N()
	a := &IRC{
		k:                k,
		g:                g,
		adj:              make([]map[graph.V]bool, n),
		degree:           make([]int, n),
		precolored:       make(map[graph.V]bool),
		alias:            make(map[graph.V]graph.V),
		simplifyWorklist: make(map[graph.V]bool),
		freezeWorklist:   make(map[graph.V]bool),
		spillWorklist:    make(map[graph.V]bool),
		coalescedNodes:   make(map[graph.V]bool),
		onStack:          make(map[graph.V]bool),
		moveList:         make(map[graph.V][]int),
		worklistMoves:    make(map[int]bool),
		activeMoves:      make(map[int]bool),
		coalescedMoves:   make(map[int]bool),
		constrainedMoves: make(map[int]bool),
		frozenMoves:      make(map[int]bool),
	}
	for v := 0; v < n; v++ {
		a.adj[v] = make(map[graph.V]bool)
		if _, ok := g.Precolored(graph.V(v)); ok {
			a.precolored[graph.V(v)] = true
		}
	}
	for _, e := range g.Edges() {
		a.adj[e[0]][e[1]] = true
		a.adj[e[1]][e[0]] = true
		a.degree[e[0]]++
		a.degree[e[1]]++
	}
	a.moves = append([]graph.Affinity(nil), g.Affinities()...)
	graph.SortAffinities(a.moves)
	for i, m := range a.moves {
		a.moveList[m.X] = append(a.moveList[m.X], i)
		a.moveList[m.Y] = append(a.moveList[m.Y], i)
		a.worklistMoves[i] = true
	}
	return a
}

func (a *IRC) find(v graph.V) graph.V {
	for {
		next, ok := a.alias[v]
		if !ok {
			return v
		}
		v = next
	}
}

func (a *IRC) moveRelated(v graph.V) bool {
	for _, m := range a.moveList[v] {
		if a.worklistMoves[m] || a.activeMoves[m] {
			return true
		}
	}
	return false
}

func (a *IRC) removed(v graph.V) bool {
	return a.onStack[v] || a.coalescedNodes[v]
}

// adjacent iterates over the live neighbors of v.
func (a *IRC) adjacent(v graph.V, fn func(w graph.V)) {
	for w := range a.adj[v] {
		if !a.removed(w) {
			fn(w)
		}
	}
}

// makeWorklists distributes the non-precolored vertices.
func (a *IRC) makeWorklists() {
	for v := 0; v < a.g.N(); v++ {
		u := graph.V(v)
		if a.precolored[u] {
			continue
		}
		switch {
		case a.degree[u] >= a.k:
			a.spillWorklist[u] = true
		case a.moveRelated(u):
			a.freezeWorklist[u] = true
		default:
			a.simplifyWorklist[u] = true
		}
	}
}

func (a *IRC) enableMoves(v graph.V) {
	consider := func(u graph.V) {
		for _, m := range a.moveList[u] {
			if a.activeMoves[m] {
				delete(a.activeMoves, m)
				a.worklistMoves[m] = true
			}
		}
	}
	consider(v)
	a.adjacent(v, consider)
}

func (a *IRC) decrementDegree(v graph.V) {
	a.degree[v]--
	if a.degree[v] == a.k-1 && !a.precolored[v] {
		a.enableMoves(v)
		delete(a.spillWorklist, v)
		if a.moveRelated(v) {
			a.freezeWorklist[v] = true
		} else {
			a.simplifyWorklist[v] = true
		}
	}
}

func (a *IRC) simplify() {
	v := anyVertex(a.simplifyWorklist)
	delete(a.simplifyWorklist, v)
	a.selectStack = append(a.selectStack, v)
	a.onStack[v] = true
	a.adjacent(v, a.decrementDegree)
}

func (a *IRC) addEdge(u, v graph.V) {
	if u == v || a.adj[u][v] {
		return
	}
	a.adj[u][v] = true
	a.adj[v][u] = true
	a.degree[u]++
	a.degree[v]++
}

// conservative is Briggs' test on representatives u, v.
func (a *IRC) briggsOK(u, v graph.V) bool {
	significant := 0
	seen := map[graph.V]bool{}
	count := func(w graph.V) {
		if seen[w] {
			return
		}
		seen[w] = true
		deg := a.degree[w]
		if a.adj[w][u] && a.adj[w][v] {
			deg--
		}
		if a.precolored[w] || deg >= a.k {
			significant++
		}
	}
	a.adjacent(u, count)
	a.adjacent(v, count)
	return significant < a.k
}

// georgeOK is George's test for merging u into the (typically precolored)
// node v.
func (a *IRC) georgeOK(u, v graph.V) bool {
	ok := true
	a.adjacent(u, func(t graph.V) {
		if !ok {
			return
		}
		if a.degree[t] >= a.k && !a.precolored[t] && !a.adj[t][v] {
			ok = false
		}
		if a.precolored[t] && !a.adj[t][v] && t != v {
			ok = false
		}
	})
	return ok
}

func (a *IRC) addWorklist(v graph.V) {
	if !a.precolored[v] && !a.moveRelated(v) && a.degree[v] < a.k {
		delete(a.freezeWorklist, v)
		a.simplifyWorklist[v] = true
	}
}

func (a *IRC) combine(u, v graph.V) {
	delete(a.freezeWorklist, v)
	delete(a.spillWorklist, v)
	a.coalescedNodes[v] = true
	a.alias[v] = u
	a.moveList[u] = append(a.moveList[u], a.moveList[v]...)
	a.adjacent(v, func(t graph.V) {
		a.addEdge(t, u)
		a.decrementDegree(t)
	})
	if a.degree[u] >= a.k && a.freezeWorklist[u] {
		delete(a.freezeWorklist, u)
		a.spillWorklist[u] = true
	}
}

func (a *IRC) coalesce() {
	m := anyMove(a.worklistMoves)
	delete(a.worklistMoves, m)
	x := a.find(a.moves[m].X)
	y := a.find(a.moves[m].Y)
	u, v := x, y
	if a.precolored[y] {
		u, v = y, x
	}
	switch {
	case u == v:
		a.coalescedMoves[m] = true
		a.addWorklist(u)
	case a.precolored[v] || a.adj[u][v]:
		a.constrainedMoves[m] = true
		a.addWorklist(u)
		a.addWorklist(v)
	case (a.precolored[u] && a.georgeOK(v, u)) ||
		(!a.precolored[u] && a.briggsOK(u, v)):
		a.coalescedMoves[m] = true
		a.combine(u, v)
		a.addWorklist(u)
	default:
		a.activeMoves[m] = true
	}
}

func (a *IRC) freezeMoves(u graph.V) {
	for _, m := range a.moveList[u] {
		if !a.activeMoves[m] && !a.worklistMoves[m] {
			continue
		}
		delete(a.activeMoves, m)
		delete(a.worklistMoves, m)
		a.frozenMoves[m] = true
		x := a.find(a.moves[m].X)
		y := a.find(a.moves[m].Y)
		other := y
		if y == u {
			other = x
		}
		if !a.moveRelated(other) && a.degree[other] < a.k && !a.precolored[other] {
			delete(a.freezeWorklist, other)
			a.simplifyWorklist[other] = true
		}
	}
}

func (a *IRC) freeze() {
	v := anyVertex(a.freezeWorklist)
	delete(a.freezeWorklist, v)
	a.simplifyWorklist[v] = true
	a.freezeMoves(v)
}

func (a *IRC) selectSpill() {
	// Cheapest heuristic: highest current degree (most constraining).
	var best graph.V = -1
	for v := range a.spillWorklist {
		if best == -1 || a.degree[v] > a.degree[best] ||
			(a.degree[v] == a.degree[best] && v < best) {
			best = v
		}
	}
	delete(a.spillWorklist, best)
	a.simplifyWorklist[best] = true
	a.freezeMoves(best)
}

// Run executes the IRC main loop and the final color assignment.
func (a *IRC) Run() *IRCResult {
	a.makeWorklists()
	for len(a.simplifyWorklist)+len(a.worklistMoves)+
		len(a.freezeWorklist)+len(a.spillWorklist) > 0 {
		switch {
		case len(a.simplifyWorklist) > 0:
			a.simplify()
		case len(a.worklistMoves) > 0:
			a.coalesce()
		case len(a.freezeWorklist) > 0:
			a.freeze()
		default:
			a.selectSpill()
		}
	}
	// Assign colors: precolored first, then pop the select stack.
	col := graph.NewColoring(a.g.N())
	for v := range a.precolored {
		c, _ := a.g.Precolored(v)
		col[v] = c
	}
	var spilled []graph.V
	for i := len(a.selectStack) - 1; i >= 0; i-- {
		v := a.selectStack[i]
		used := make([]bool, a.k)
		for w := range a.adj[v] {
			rw := a.find(w)
			if col[rw] != graph.NoColor && col[rw] < a.k {
				used[col[rw]] = true
			}
		}
		assigned := false
		for c := 0; c < a.k; c++ {
			if !used[c] {
				col[v] = c
				assigned = true
				break
			}
		}
		if !assigned {
			spilled = append(spilled, v)
		}
	}
	// Coalesced nodes take their representative's color.
	p := graph.NewPartition(a.g.N())
	for v := range a.coalescedNodes {
		p.Union(a.find(v), v)
		col[v] = col[a.find(v)]
	}
	sort.Slice(spilled, func(i, j int) bool { return spilled[i] < spilled[j] })
	res := &IRCResult{Coloring: col, Spilled: spilled, P: p,
		CoalescedMoves: len(a.coalescedMoves), ConstrainedMoves: len(a.constrainedMoves),
		FrozenMoves: len(a.frozenMoves)}
	for m := range a.coalescedMoves {
		res.CoalescedWeight += a.moves[m].Weight
	}
	// A spilled representative invalidates its class's colors.
	for _, s := range spilled {
		for v := 0; v < a.g.N(); v++ {
			if p.Same(graph.V(v), s) {
				col[v] = graph.NoColor
			}
		}
	}
	return res
}

// Check validates the result against the original graph: interfering
// vertices that both got colors must differ, coalesced classes agree, and
// precolored vertices keep their pins.
func (r *IRCResult) Check(g *graph.Graph, k int) error {
	for _, e := range g.Edges() {
		a, b := r.Coloring[e[0]], r.Coloring[e[1]]
		if a != graph.NoColor && a == b {
			return fmt.Errorf("irc: interfering %d and %d share color %d", int(e[0]), int(e[1]), a)
		}
	}
	for v := 0; v < g.N(); v++ {
		if c, ok := g.Precolored(graph.V(v)); ok && r.Coloring[v] != c {
			return fmt.Errorf("irc: precolored %d lost its pin", v)
		}
		if r.Coloring[v] >= k {
			return fmt.Errorf("irc: color %d out of range", r.Coloring[v])
		}
	}
	if !r.P.CompatibleWith(g) {
		return fmt.Errorf("irc: coalescing partition incompatible")
	}
	return nil
}

// anyVertex pops a deterministic element (smallest id) from a set.
func anyVertex(set map[graph.V]bool) graph.V {
	best := graph.V(-1)
	for v := range set {
		if best == -1 || v < best {
			best = v
		}
	}
	return best
}

func anyMove(set map[int]bool) int {
	best := -1
	for m := range set {
		if best == -1 || m < best {
			best = m
		}
	}
	return best
}
