package regalloc

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"

	"regcoal/internal/graph"
)

// IRC implements iterated register coalescing (George & Appel, TOPLAS
// 1996) — the allocator framework the paper's introduction describes:
// simplification, conservative coalescing (Briggs' test between two
// temporaries, George's test against precolored nodes), freezing, and
// optimistic potential spills, driven by interleaved worklists over a
// mutable interference graph.
//
// This is the classical formulation with explicit worklists and move sets,
// operating on a graph.Graph input; it returns the coloring of the
// original vertices (spilled vertices get NoColor), the coalescing
// partition, and per-move outcomes.
//
// The evolving graph is held as a private bitset matrix plus append-only
// adjacency lists (mirroring graph.Graph's hybrid layout): adjacency tests
// are one word probe, node worklists and move sets are bitsets popped
// smallest-first word-parallelly, and the Briggs/George conservative tests
// scan neighborhoods a machine word at a time under a liveness mask
// instead of walking per-vertex map copies.
type IRC struct {
	k int
	g *graph.Graph

	// adjacency of the evolving graph (indexed by original vertex; merged
	// vertices alias to their representative).
	n       int
	stride  int      // words per bitset row
	adj     []uint64 // n rows of stride words
	adjList [][]graph.V
	degree  []int

	precolored []bool
	alias      []graph.V // -1 = representative

	// node worklists; a vertex is in exactly one of these sets (or on the
	// select stack / coalesced). removed = onStack ∪ coalescedNodes is the
	// complement of the liveness mask the word-parallel tests filter with.
	simplifyWorklist graph.Bits
	freezeWorklist   graph.Bits
	spillWorklist    graph.Bits
	coalescedNodes   graph.Bits
	onStack          graph.Bits
	removed          graph.Bits
	selectStack      []graph.V

	// move management. Moves are indices into moves[]; the five
	// disposition sets are bitsets over those indices.
	moves            []graph.Affinity
	moveList         [][]int
	worklistMoves    graph.Bits
	activeMoves      graph.Bits
	coalescedMoves   graph.Bits
	constrainedMoves graph.Bits
	frozenMoves      graph.Bits

	// colorUsed is the select-phase scratch (one flag per color).
	colorUsed []bool
}

// IRCResult is the outcome of an IRC run.
type IRCResult struct {
	// Coloring of the original vertices (NoColor = spilled).
	Coloring graph.Coloring
	// Spilled lists actual spills.
	Spilled []graph.V
	// P is the coalescing partition realized by the run.
	P *graph.Partition
	// CoalescedMoves, ConstrainedMoves, FrozenMoves count move outcomes.
	CoalescedMoves, ConstrainedMoves, FrozenMoves int
	// CoalescedWeight is the weight of moves whose endpoints merged.
	CoalescedWeight int64
}

// NewIRC prepares a fresh (unpooled) IRC run over g with k colors. The
// graph is not modified. Hot paths that run IRC repeatedly should prefer
// AcquireIRC/Release, which recycle the solver state through a pool.
func NewIRC(g *graph.Graph, k int) *IRC {
	a := new(IRC)
	a.Reset(g, k)
	return a
}

// ircPool recycles IRC solver state. Only the struct pointer crosses the
// pool boundary, so acquire/release itself never allocates; the struct
// carries its worklists, bitset matrix, and adjacency rows across runs.
var ircPool = sync.Pool{New: func() any { return new(IRC) }}

// AcquireIRC returns a pooled IRC ready to Run on g with k colors; pair
// it with Release. After the pool is warm for a graph size, repeated
// acquire/run/release cycles do no steady-state heap allocation (see
// TestIRCZeroAllocSteadyState).
func AcquireIRC(g *graph.Graph, k int) *IRC {
	a := ircPool.Get().(*IRC)
	a.Reset(g, k)
	return a
}

// Release returns the solver state to the pool. The IRC must not be used
// afterwards. Results from Run/RunInto stay valid: they own their
// memory and do not alias pooled state.
func (a *IRC) Release() {
	a.g = nil // do not pin the instance graph in the pool
	ircPool.Put(a)
}

// Reset reinitializes the solver for a run over g with k colors, reusing
// every buffer whose capacity allows — the Reset(g)-style lifecycle of
// the pooled solve path. The evolving graph is seeded by copying g's
// bitset rows and adjacency slices directly (no per-edge insertion).
func (a *IRC) Reset(g *graph.Graph, k int) {
	n := g.N()
	a.k, a.g, a.n = k, g, n
	a.stride = (n + 63) >> 6
	// adj, degree, and alias are fully overwritten below (the row copies
	// cover all n*stride words), so they reuse capacity without the
	// zeroing memset ReuseSlice would do — on a dense instance adj is the
	// largest buffer of the pooled hot path.
	a.adj = resize(a.adj, n*a.stride)
	a.adjList = graph.ReuseRows(a.adjList, n)
	a.degree = resize(a.degree, n)
	a.precolored = graph.ReuseSlice(a.precolored, n)
	a.alias = resize(a.alias, n)
	a.simplifyWorklist = graph.ReuseBits(a.simplifyWorklist, n)
	a.freezeWorklist = graph.ReuseBits(a.freezeWorklist, n)
	a.spillWorklist = graph.ReuseBits(a.spillWorklist, n)
	a.coalescedNodes = graph.ReuseBits(a.coalescedNodes, n)
	a.onStack = graph.ReuseBits(a.onStack, n)
	a.removed = graph.ReuseBits(a.removed, n)
	a.selectStack = a.selectStack[:0]
	for v := 0; v < n; v++ {
		a.alias[v] = -1
		if _, ok := g.Precolored(graph.V(v)); ok {
			a.precolored[v] = true
		}
		copy(a.adjRow(graph.V(v)), g.BitsetNeighbors(graph.V(v)))
		a.adjList[v] = g.NeighborsInto(a.adjList[v], graph.V(v))
		a.degree[v] = g.Degree(graph.V(v))
	}
	a.moves = append(a.moves[:0], g.Affinities()...)
	graph.SortAffinities(a.moves)
	m := len(a.moves)
	a.moveList = graph.ReuseRows(a.moveList, n)
	a.worklistMoves = graph.ReuseBits(a.worklistMoves, m)
	a.activeMoves = graph.ReuseBits(a.activeMoves, m)
	a.coalescedMoves = graph.ReuseBits(a.coalescedMoves, m)
	a.constrainedMoves = graph.ReuseBits(a.constrainedMoves, m)
	a.frozenMoves = graph.ReuseBits(a.frozenMoves, m)
	for i, mv := range a.moves {
		a.moveList[mv.X] = append(a.moveList[mv.X], i)
		a.moveList[mv.Y] = append(a.moveList[mv.Y], i)
		a.worklistMoves.Set(graph.V(i))
	}
}


// resize returns s with length n, reusing capacity without zeroing —
// for buffers the caller fully overwrites before reading.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// adjRow returns v's bitset row of the evolving graph.
func (a *IRC) adjRow(v graph.V) graph.Bits {
	off := int(v) * a.stride
	return graph.Bits(a.adj[off : off+a.stride])
}

// hasAdj is the O(1) adjacency probe.
func (a *IRC) hasAdj(u, v graph.V) bool {
	return a.adjRow(u).Get(v)
}

func (a *IRC) find(v graph.V) graph.V {
	for a.alias[v] != -1 {
		v = a.alias[v]
	}
	return v
}

func (a *IRC) moveRelated(v graph.V) bool {
	for _, m := range a.moveList[v] {
		if a.worklistMoves.Get(graph.V(m)) || a.activeMoves.Get(graph.V(m)) {
			return true
		}
	}
	return false
}

// adjacent iterates over the live neighbors of v, in insertion order
// (original edges sorted, combine-added edges after).
func (a *IRC) adjacent(v graph.V, fn func(w graph.V)) {
	for _, w := range a.adjList[v] {
		if !a.removed.Get(w) {
			fn(w)
		}
	}
}

// makeWorklists distributes the non-precolored vertices.
func (a *IRC) makeWorklists() {
	for v := 0; v < a.n; v++ {
		u := graph.V(v)
		if a.precolored[u] {
			continue
		}
		switch {
		case a.degree[u] >= a.k:
			a.spillWorklist.Set(u)
		case a.moveRelated(u):
			a.freezeWorklist.Set(u)
		default:
			a.simplifyWorklist.Set(u)
		}
	}
}

func (a *IRC) enableMoves(v graph.V) {
	consider := func(u graph.V) {
		for _, m := range a.moveList[u] {
			if a.activeMoves.Get(graph.V(m)) {
				a.activeMoves.Clear(graph.V(m))
				a.worklistMoves.Set(graph.V(m))
			}
		}
	}
	consider(v)
	a.adjacent(v, consider)
}

func (a *IRC) decrementDegree(v graph.V) {
	a.degree[v]--
	if a.degree[v] == a.k-1 && !a.precolored[v] {
		a.enableMoves(v)
		a.spillWorklist.Clear(v)
		if a.moveRelated(v) {
			a.freezeWorklist.Set(v)
		} else {
			a.simplifyWorklist.Set(v)
		}
	}
}

func (a *IRC) simplify() {
	v := a.simplifyWorklist.First()
	a.simplifyWorklist.Clear(v)
	a.selectStack = append(a.selectStack, v)
	a.onStack.Set(v)
	a.removed.Set(v)
	a.adjacent(v, a.decrementDegree)
}

func (a *IRC) addEdge(u, v graph.V) {
	if u == v || a.hasAdj(u, v) {
		return
	}
	a.adjRow(u).Set(v)
	a.adjRow(v).Set(u)
	a.adjList[u] = append(a.adjList[u], v)
	a.adjList[v] = append(a.adjList[v], u)
	a.degree[u]++
	a.degree[v]++
}

// briggsOK is Briggs' test on representatives u, v: fewer than k
// significant neighbors of the would-be merged node. The neighborhood
// union is scanned a word at a time — (row(u) | row(v)) &^ removed — and
// the "common neighbor loses a degree" adjustment is two bit probes.
func (a *IRC) briggsOK(u, v graph.V) bool {
	rowU, rowV := a.adjRow(u), a.adjRow(v)
	significant := 0
	for i := 0; i < a.stride; i++ {
		m := (rowU[i] | rowV[i]) &^ a.removed[i]
		for m != 0 {
			bit := m & -m
			m &^= bit
			w := graph.V(i<<6 + bits.TrailingZeros64(bit))
			deg := a.degree[w]
			if rowU[i]&bit != 0 && rowV[i]&bit != 0 {
				deg--
			}
			if a.precolored[w] || deg >= a.k {
				significant++
				if significant >= a.k {
					return false
				}
			}
		}
	}
	return significant < a.k
}

// georgeOK is George's test for merging u into the (typically precolored)
// node v: every live neighbor of u must be insignificant, or already a
// neighbor of v.
func (a *IRC) georgeOK(u, v graph.V) bool {
	rowU := a.adjRow(u)
	for i := 0; i < a.stride; i++ {
		m := rowU[i] &^ a.removed[i]
		for m != 0 {
			bit := m & -m
			m &^= bit
			t := graph.V(i<<6 + bits.TrailingZeros64(bit))
			if a.degree[t] >= a.k && !a.precolored[t] && !a.hasAdj(t, v) {
				return false
			}
			if a.precolored[t] && !a.hasAdj(t, v) && t != v {
				return false
			}
		}
	}
	return true
}

func (a *IRC) addWorklist(v graph.V) {
	if !a.precolored[v] && !a.moveRelated(v) && a.degree[v] < a.k {
		a.freezeWorklist.Clear(v)
		a.simplifyWorklist.Set(v)
	}
}

func (a *IRC) combine(u, v graph.V) {
	a.freezeWorklist.Clear(v)
	a.spillWorklist.Clear(v)
	a.coalescedNodes.Set(v)
	a.removed.Set(v)
	a.alias[v] = u
	a.moveList[u] = append(a.moveList[u], a.moveList[v]...)
	a.adjacent(v, func(t graph.V) {
		a.addEdge(t, u)
		a.decrementDegree(t)
	})
	if a.degree[u] >= a.k && a.freezeWorklist.Get(u) {
		a.freezeWorklist.Clear(u)
		a.spillWorklist.Set(u)
	}
}

func (a *IRC) coalesce() {
	m := a.worklistMoves.First()
	a.worklistMoves.Clear(m)
	x := a.find(a.moves[m].X)
	y := a.find(a.moves[m].Y)
	u, v := x, y
	if a.precolored[y] {
		u, v = y, x
	}
	switch {
	case u == v:
		a.coalescedMoves.Set(m)
		a.addWorklist(u)
	case a.precolored[v] || a.hasAdj(u, v):
		a.constrainedMoves.Set(m)
		a.addWorklist(u)
		a.addWorklist(v)
	case (a.precolored[u] && a.georgeOK(v, u)) ||
		(!a.precolored[u] && a.briggsOK(u, v)):
		a.coalescedMoves.Set(m)
		a.combine(u, v)
		a.addWorklist(u)
	default:
		a.activeMoves.Set(m)
	}
}

func (a *IRC) freezeMoves(u graph.V) {
	for _, m := range a.moveList[u] {
		mi := graph.V(m)
		if !a.activeMoves.Get(mi) && !a.worklistMoves.Get(mi) {
			continue
		}
		a.activeMoves.Clear(mi)
		a.worklistMoves.Clear(mi)
		a.frozenMoves.Set(mi)
		x := a.find(a.moves[m].X)
		y := a.find(a.moves[m].Y)
		other := y
		if y == u {
			other = x
		}
		if !a.moveRelated(other) && a.degree[other] < a.k && !a.precolored[other] {
			a.freezeWorklist.Clear(other)
			a.simplifyWorklist.Set(other)
		}
	}
}

func (a *IRC) freeze() {
	v := a.freezeWorklist.First()
	a.freezeWorklist.Clear(v)
	a.simplifyWorklist.Set(v)
	a.freezeMoves(v)
}

func (a *IRC) selectSpill() {
	// Cheapest heuristic: highest current degree (most constraining),
	// ties toward the smallest id — which is the order ForEach visits.
	var best graph.V = -1
	a.spillWorklist.ForEach(func(v graph.V) {
		if best == -1 || a.degree[v] > a.degree[best] {
			best = v
		}
	})
	a.spillWorklist.Clear(best)
	a.simplifyWorklist.Set(best)
	a.freezeMoves(best)
}

// Run executes the IRC main loop and the final color assignment into a
// fresh result.
func (a *IRC) Run() *IRCResult { return a.RunInto(new(IRCResult)) }

// RunInto executes the IRC main loop and writes the outcome into res,
// reusing res's coloring, spill list, and partition storage — the
// zero-allocation variant of Run for callers that recycle results along
// with the pooled solver state. It returns res.
func (a *IRC) RunInto(res *IRCResult) *IRCResult {
	a.makeWorklists()
loop:
	for {
		switch {
		case !a.simplifyWorklist.Empty():
			a.simplify()
		case !a.worklistMoves.Empty():
			a.coalesce()
		case !a.freezeWorklist.Empty():
			a.freeze()
		case !a.spillWorklist.Empty():
			a.selectSpill()
		default:
			break loop
		}
	}
	// Assign colors: precolored first, then pop the select stack.
	res.Coloring = graph.Coloring(graph.ReuseSlice([]int(res.Coloring), a.n))
	col := res.Coloring
	for v := 0; v < a.n; v++ {
		col[v] = graph.NoColor
		if a.precolored[v] {
			c, _ := a.g.Precolored(graph.V(v))
			col[v] = c
		}
	}
	res.Spilled = res.Spilled[:0]
	a.colorUsed = graph.ReuseSlice(a.colorUsed, a.k)
	used := a.colorUsed
	for i := len(a.selectStack) - 1; i >= 0; i-- {
		v := a.selectStack[i]
		for c := range used {
			used[c] = false
		}
		for _, w := range a.adjList[v] {
			rw := a.find(w)
			if col[rw] != graph.NoColor && col[rw] < a.k {
				used[col[rw]] = true
			}
		}
		assigned := false
		for c := 0; c < a.k; c++ {
			if !used[c] {
				col[v] = c
				assigned = true
				break
			}
		}
		if !assigned {
			res.Spilled = append(res.Spilled, v)
		}
	}
	// Coalesced nodes take their representative's color.
	if res.P == nil {
		res.P = graph.NewPartition(a.n)
	} else {
		res.P.Reset(a.n)
	}
	p := res.P
	a.coalescedNodes.ForEach(func(v graph.V) {
		p.Union(a.find(v), v)
		col[v] = col[a.find(v)]
	})
	// slices.Sort, unlike sort.Slice, does not box — the zero-alloc path
	// stays clean.
	slices.Sort(res.Spilled)
	spilled := res.Spilled
	res.CoalescedMoves = a.coalescedMoves.Count()
	res.ConstrainedMoves = a.constrainedMoves.Count()
	res.FrozenMoves = a.frozenMoves.Count()
	res.CoalescedWeight = 0
	a.coalescedMoves.ForEach(func(m graph.V) {
		res.CoalescedWeight += a.moves[m].Weight
	})
	// A spilled representative invalidates its class's colors.
	for _, s := range spilled {
		for v := 0; v < a.n; v++ {
			if p.Same(graph.V(v), s) {
				col[v] = graph.NoColor
			}
		}
	}
	return res
}


// Check validates the result against the original graph: interfering
// vertices that both got colors must differ, coalesced classes agree, and
// precolored vertices keep their pins.
func (r *IRCResult) Check(g *graph.Graph, k int) error {
	for _, e := range g.Edges() {
		a, b := r.Coloring[e[0]], r.Coloring[e[1]]
		if a != graph.NoColor && a == b {
			return fmt.Errorf("irc: interfering %d and %d share color %d", int(e[0]), int(e[1]), a)
		}
	}
	for v := 0; v < g.N(); v++ {
		if c, ok := g.Precolored(graph.V(v)); ok && r.Coloring[v] != c {
			return fmt.Errorf("irc: precolored %d lost its pin", v)
		}
		if r.Coloring[v] >= k {
			return fmt.Errorf("irc: color %d out of range", r.Coloring[v])
		}
	}
	if !r.P.CompatibleWith(g) {
		return fmt.Errorf("irc: coalescing partition incompatible")
	}
	return nil
}
