package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

func TestIRCSimpleCoalesce(t *testing.T) {
	// a--b, move (b,c): IRC should coalesce b and c and color with 2.
	g := graph.NewNamed("a", "b", "c")
	g.AddEdge(0, 1)
	g.AddAffinity(1, 2, 5)
	res := NewIRC(g, 2).Run()
	if err := res.Check(g, 2); err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v", res.Spilled)
	}
	if res.CoalescedMoves != 1 || res.CoalescedWeight != 5 {
		t.Fatalf("coalesced=%d weight=%d", res.CoalescedMoves, res.CoalescedWeight)
	}
	if res.Coloring[1] != res.Coloring[2] {
		t.Fatal("coalesced endpoints must share a color")
	}
}

func TestIRCConstrainedMove(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddAffinity(0, 1, 3)
	res := NewIRC(g, 2).Run()
	if err := res.Check(g, 2); err != nil {
		t.Fatal(err)
	}
	if res.ConstrainedMoves != 1 || res.CoalescedMoves != 0 {
		t.Fatalf("constrained=%d coalesced=%d", res.ConstrainedMoves, res.CoalescedMoves)
	}
}

func TestIRCPrecoloredGeorge(t *testing.T) {
	// A temporary move-related to a machine register: George's test
	// against the precolored node should coalesce it when safe.
	g := graph.NewNamed("r0", "t", "u")
	g.SetPrecolored(0, 0)
	g.AddEdge(1, 2) // t interferes with u
	g.AddEdge(0, 2) // r0 interferes with u too (so George's condition holds)
	g.AddAffinity(0, 1, 7)
	res := NewIRC(g, 2).Run()
	if err := res.Check(g, 2); err != nil {
		t.Fatal(err)
	}
	if res.CoalescedWeight != 7 {
		t.Fatalf("move to precolored not coalesced: %+v", res)
	}
	if res.Coloring[1] != 0 {
		t.Fatalf("t should land in r0, got %d", res.Coloring[1])
	}
}

func TestIRCSpillsWhenForced(t *testing.T) {
	k5 := graph.New(5)
	k5.AddClique(k5.Vertices()...)
	res := NewIRC(k5, 3).Run()
	if len(res.Spilled) == 0 {
		t.Fatal("K5 with 3 colors must spill")
	}
	if err := res.Check(k5, 3); err != nil {
		t.Fatal(err)
	}
}

func TestIRCFreeze(t *testing.T) {
	// A move that can never be coalesced conservatively (merging would
	// create a high-degree node) must eventually freeze, not deadlock.
	g, k, _ := ircFig3()
	res := NewIRC(g, k).Run()
	if err := res.Check(g, k); err != nil {
		t.Fatal(err)
	}
	// IRC with local rules coalesces nothing on the Figure 3 gadget; the
	// moves end frozen or constrained, never lost.
	total := res.CoalescedMoves + res.ConstrainedMoves + res.FrozenMoves
	if total != g.NumAffinities() {
		t.Fatalf("moves unaccounted: %d of %d", total, g.NumAffinities())
	}
}

func ircFig3() (*graph.Graph, int, []graph.Affinity) {
	g, sources, dests := graph.Permutation(4)
	k := 6
	// Degree boosters as in coalesce.Fig3Permutation, inlined to avoid an
	// import cycle in tests.
	boost := func(w graph.V) {
		e := g.AddVertex()
		g.AddEdge(e, w)
		for i := 0; i < k-1; i++ {
			g.AddEdge(e, g.AddVertex())
		}
	}
	for i := range sources {
		boost(sources[i])
		boost(dests[i])
	}
	return g, k, g.Affinities()
}

// IRC is sound: on random graphs its outcome always validates, and when
// the graph is greedy-k-colorable nothing spills.
func TestQuickIRCSound(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		graph.SprinkleAffinities(rng, g, n, 5)
		k := greedy.ColoringNumber(g)
		res := NewIRC(g, k).Run()
		if res.Check(g, k) != nil {
			return false
		}
		return len(res.Spilled) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// IRC with precolored vertices stays sound.
func TestQuickIRCPrecolored(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n/2, 5)
		k := greedy.ColoringNumber(g) + 1
		// Pin up to two non-adjacent vertices.
		g.SetPrecolored(0, 0)
		if !g.HasEdge(0, 1) {
			g.SetPrecolored(1, 0)
		} else {
			g.SetPrecolored(1, 1)
		}
		res := NewIRC(g, k).Run()
		return res.Check(g, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: IRC on SSA-lowered programs coalesces most φ-induced moves.
func TestIRCOnLoweredPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	totalMoves, coalesced := 0, 0
	for trial := 0; trial < 15; trial++ {
		p := ir.DefaultRandomParams()
		p.Vars, p.Blocks = 6, 6
		fn := ir.Random(rng, p)
		_, low, err := ssa.Pipeline(fn)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := ssa.BuildInterference(low)
		k := 8
		res := NewIRC(g, k).Run()
		if err := res.Check(g, k); err != nil {
			t.Fatal(err)
		}
		totalMoves += g.NumAffinities()
		coalesced += res.CoalescedMoves
	}
	if totalMoves == 0 {
		t.Fatal("no moves generated")
	}
	if coalesced*2 < totalMoves {
		t.Fatalf("IRC coalesced only %d of %d moves", coalesced, totalMoves)
	}
}

// IRC and the state-based Conservative driver implement the same local
// rules; their coalesced weights should be in the same ballpark (IRC
// interleaves simplification, so small differences both ways are fine —
// here we only require IRC to find at least half of the driver's weight).
func TestIRCComparableToDriver(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var ircW, driverW int64
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomChordal(rng, 30, 16, 4)
		graph.SprinkleAffinities(rng, g, 20, 6)
		k := greedy.ColoringNumber(g)
		res := NewIRC(g, k).Run()
		if err := res.Check(g, k); err != nil {
			t.Fatal(err)
		}
		ircW += res.CoalescedWeight
		alloc, err := Allocate(g, k, ModeConservative)
		if err != nil {
			t.Fatal(err)
		}
		driverW += alloc.CoalescedWeight
	}
	if ircW*2 < driverW {
		t.Fatalf("IRC weight %d too far below driver weight %d", ircW, driverW)
	}
}
