package regalloc

import (
	"math/rand"
	"testing"

	"regcoal/internal/graph"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

// checkAllocation asserts a Result is a k-feasible allocation of g.
func checkAllocation(t *testing.T, g *graph.Graph, k int, res *Result) {
	t.Helper()
	spilled := make(map[graph.V]bool)
	for _, v := range res.Spilled {
		spilled[v] = true
	}
	for v := 0; v < g.N(); v++ {
		c := res.Coloring[v]
		if spilled[graph.V(v)] {
			if c != graph.NoColor {
				t.Fatalf("spilled vertex %d colored %d", v, c)
			}
			continue
		}
		if c != graph.NoColor && c >= k {
			t.Fatalf("vertex %d color %d >= k=%d", v, c, k)
		}
	}
	for _, e := range g.Edges() {
		cu, cv := res.Coloring[e[0]], res.Coloring[e[1]]
		if cu != graph.NoColor && cu == cv {
			t.Fatalf("interfering %d,%d share color %d", e[0], e[1], cu)
		}
	}
}

// High-pressure graphs must come out k-feasible from the spill-first
// pipeline, with every mode.
func TestAllocateSpillFirstHighPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomER(rng, 20+rng.Intn(15), 0.35)
		graph.SprinkleAffinities(rng, g, 12, 6)
		k := 3
		for _, mode := range []Mode{ModeNone, ModeConservative, ModeOptimistic, ModeAggressive} {
			res, err := AllocateSpillFirst(g, k, mode)
			if err != nil {
				t.Fatalf("trial %d mode %v: %v", trial, mode, err)
			}
			checkAllocation(t, g, k, res)
			if got, want := res.CoalescedWeight+res.RemainingWeight, g.TotalAffinityWeight(); got != want {
				t.Fatalf("trial %d mode %v: weights %d, want %d", trial, mode, got, want)
			}
		}
	}
}

func TestAllocateSpillFirstNoPressureSpillsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomChordal(rng, 24, 12, 4)
	k := g.N() // absurdly many registers
	res, err := AllocateSpillFirst(g, k, ModeConservative)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v with k=n", res.Spilled)
	}
	checkAllocation(t, g, k, res)
}

// The two-phase pipeline must produce verified allocations on lowered
// random programs at low k, and should usually need exactly one
// build–color round after pressure reduction.
func TestFunctionSpillFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	oneRound := 0
	trials := 12
	for trial := 0; trial < trials; trial++ {
		params := ir.DefaultRandomParams()
		params.Vars = 9 + rng.Intn(5)
		params.Blocks = 4 + rng.Intn(4)
		fn := ir.Random(rng, params)
		_, low, err := ssa.Pipeline(fn)
		if err != nil {
			t.Fatal(err)
		}
		k := 3
		res, err := FunctionSpillFirst(low, k, ModeConservative)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Function verified the assignment internally; check the shape.
		if res.F == nil || len(res.Coloring) == 0 {
			t.Fatalf("trial %d: empty result", trial)
		}
		if ml := ssa.NewLiveness(res.F).Maxlive(); ml > k {
			t.Fatalf("trial %d: final Maxlive %d > k=%d", trial, ml, k)
		}
		if res.SpilledRegs > 0 && res.Rounds == res.SpilledRegs+1 {
			oneRound++
		}
	}
	if oneRound == 0 {
		t.Log("note: no trial finished in a single post-spill round")
	}
}
