package regalloc

import (
	"fmt"

	"regcoal/internal/graph"
	"regcoal/internal/ir"
	"regcoal/internal/spill"
)

// Spill-then-coalesce: the two-phase pipeline the paper's introduction
// describes and the spill-everywhere report analyzes. Phase one lowers
// register pressure to k (internal/spill), phase two coalesces and colors
// the now k-feasible residual. Unlike the Chaitin rebuild loop (Function,
// Allocate + optimistic select), the spill set is decided up front, so
// the allocation is k-feasible by construction even on instances whose
// pressure far exceeds k.

// AllocateSpillFirst evicts vertices until g is greedy-k-colorable
// (greedy furthest-first spilling), then coalesces the residual with the
// chosen mode and colors it. Spilled vertices report NoColor; move
// weights are accounted against the original graph, with moves touching
// a spilled endpoint counted as remaining.
func AllocateSpillFirst(g *graph.Graph, k int, mode Mode) (*Result, error) {
	plan, err := spill.Incremental(&graph.File{G: g, K: k}, nil)
	if err != nil {
		return nil, fmt.Errorf("regalloc: spill phase: %w", err)
	}
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = true
	}
	for _, v := range plan.Spilled {
		alive[v] = false
	}
	survivors := make([]graph.V, 0, g.N()-len(plan.Spilled))
	for v := 0; v < g.N(); v++ {
		if alive[v] {
			survivors = append(survivors, graph.V(v))
		}
	}
	sub, old2new := g.InducedSubgraph(survivors)
	subRes, err := Allocate(sub, k, mode)
	if err != nil {
		return nil, err
	}
	res := &Result{Coloring: graph.NewColoring(g.N())}
	res.Spilled = append(res.Spilled, plan.SortedSpills()...)
	for _, v := range survivors {
		res.Coloring[v] = subRes.Coloring[old2new[v]]
	}
	// An aggressive mode can over-coalesce the (colorable) residual and
	// leave optimistic select with actual spills; surface them as spills
	// of the original graph.
	for _, v := range subRes.Spilled {
		res.Spilled = append(res.Spilled, survivors[v])
	}
	for _, a := range g.Affinities() {
		if res.Coloring[a.X] != graph.NoColor && res.Coloring[a.X] == res.Coloring[a.Y] {
			res.CoalescedWeight += a.Weight
		} else {
			res.RemainingWeight += a.Weight
		}
	}
	return res, nil
}

// FunctionSpillFirst allocates a φ-free function with k registers in two
// phases: spill-everywhere until Maxlive <= k (spill.ReduceFunc, with
// incrementally maintained liveness), then the build–coalesce–color loop.
// After phase one the interference graph usually colors in one round;
// the Chaitin rebuild loop remains as a safety net for the rare residual
// whose lowered (non-chordal) graph still misses k.
func FunctionSpillFirst(f *ir.Func, k int, mode Mode) (*FunctionResult, error) {
	work := f.Clone()
	pre, ok := spill.ReduceFunc(work, k)
	if !ok {
		return nil, fmt.Errorf("regalloc: cannot reduce Maxlive to %d: more than %d values collide at one instruction", k, k)
	}
	res, err := Function(work, k, mode)
	if err != nil {
		return nil, err
	}
	// Function counted distinct store slots on the final code, which
	// already includes phase one's slots; only the round count needs the
	// phase-one prefix made visible.
	res.Rounds += len(pre)
	return res, nil
}
