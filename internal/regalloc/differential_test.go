package regalloc

// Representation-independence differential test: IRC results must be a
// pure function of the abstract instance, not of the adjacency layout or
// edge-insertion order. Every corpus instance is rebuilt through the
// retained map-backed reference (edges re-inserted in randomized map
// iteration order) and IRC must produce an identical result — the
// property the service's byte-identical-response contract rests on.

import (
	"reflect"
	"testing"

	"regcoal/internal/corpus"
	"regcoal/internal/graph/mapref"
)

func TestIRCMatchesMapReferenceRebuild(t *testing.T) {
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20260729, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		f := inst.File
		ref := mapref.FromGraph(f.G)
		rebuilt := ref.Rebuild(f.G)

		want := NewIRC(f.G, f.K).Run()
		got := NewIRC(rebuilt, f.K).Run()

		if !reflect.DeepEqual(got.Coloring, want.Coloring) {
			t.Fatalf("%s: coloring diverged under map-order rebuild\n got %v\nwant %v",
				inst.Name, got.Coloring, want.Coloring)
		}
		if !reflect.DeepEqual(got.Spilled, want.Spilled) {
			t.Fatalf("%s: spills diverged: got %v, want %v", inst.Name, got.Spilled, want.Spilled)
		}
		if got.CoalescedMoves != want.CoalescedMoves ||
			got.ConstrainedMoves != want.ConstrainedMoves ||
			got.FrozenMoves != want.FrozenMoves ||
			got.CoalescedWeight != want.CoalescedWeight {
			t.Fatalf("%s: move outcomes diverged: got %d/%d/%d w=%d, want %d/%d/%d w=%d",
				inst.Name,
				got.CoalescedMoves, got.ConstrainedMoves, got.FrozenMoves, got.CoalescedWeight,
				want.CoalescedMoves, want.ConstrainedMoves, want.FrozenMoves, want.CoalescedWeight)
		}
		if !reflect.DeepEqual(got.P.Classes(), want.P.Classes()) {
			t.Fatalf("%s: coalescing partition diverged", inst.Name)
		}
		if err := got.Check(f.G, f.K); err != nil {
			t.Fatalf("%s: rebuilt result fails Check: %v", inst.Name, err)
		}
	}
}
