package regalloc

// Representation-independence differential test: IRC results must be a
// pure function of the abstract instance, not of the adjacency layout or
// edge-insertion order. Every corpus instance is rebuilt through the
// retained map-backed reference (edges re-inserted in randomized map
// iteration order) and IRC must produce an identical result — the
// property the service's byte-identical-response contract rests on.

import (
	"reflect"
	"testing"

	"regcoal/internal/corpus"
	"regcoal/internal/graph/mapref"
)

func assertIRCResultsEqual(t *testing.T, name string, got, want *IRCResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Coloring, want.Coloring) {
		t.Fatalf("%s: coloring diverged\n got %v\nwant %v", name, got.Coloring, want.Coloring)
	}
	if len(got.Spilled) != len(want.Spilled) || (len(want.Spilled) > 0 && !reflect.DeepEqual(got.Spilled, want.Spilled)) {
		t.Fatalf("%s: spills diverged: got %v, want %v", name, got.Spilled, want.Spilled)
	}
	if got.CoalescedMoves != want.CoalescedMoves ||
		got.ConstrainedMoves != want.ConstrainedMoves ||
		got.FrozenMoves != want.FrozenMoves ||
		got.CoalescedWeight != want.CoalescedWeight {
		t.Fatalf("%s: move outcomes diverged: got %d/%d/%d w=%d, want %d/%d/%d w=%d",
			name,
			got.CoalescedMoves, got.ConstrainedMoves, got.FrozenMoves, got.CoalescedWeight,
			want.CoalescedMoves, want.ConstrainedMoves, want.FrozenMoves, want.CoalescedWeight)
	}
	if !reflect.DeepEqual(got.P.Classes(), want.P.Classes()) {
		t.Fatalf("%s: coalescing partition diverged", name)
	}
}

func TestIRCMatchesMapReferenceRebuild(t *testing.T) {
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20260729, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		f := inst.File
		ref := mapref.FromGraph(f.G)
		rebuilt := ref.Rebuild(f.G)

		want := NewIRC(f.G, f.K).Run()
		got := NewIRC(rebuilt, f.K).Run()

		assertIRCResultsEqual(t, inst.Name, got, want)
		if err := got.Check(f.G, f.K); err != nil {
			t.Fatalf("%s: rebuilt result fails Check: %v", inst.Name, err)
		}
	}
}

// TestIRCPooledMatchesFreshRebuild is the pooled-state half of the
// representation-independence contract: ONE pooled solver and ONE result
// recycled across every corpus instance — each rebuilt through the
// map-backed reference so edge-insertion order is randomized — must
// reproduce exactly what a fresh solver computes on the pristine graph.
// Any stale state leaking across Reset boundaries shows up as a diff.
func TestIRCPooledMatchesFreshRebuild(t *testing.T) {
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20260729, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	a := AcquireIRC(insts[0].File.G, insts[0].File.K)
	defer a.Release()
	res := new(IRCResult)
	for _, inst := range insts {
		f := inst.File
		rebuilt := mapref.FromGraph(f.G).Rebuild(f.G)

		want := NewIRC(f.G, f.K).Run()
		a.Reset(rebuilt, f.K)
		a.RunInto(res)

		assertIRCResultsEqual(t, inst.Name+" (pooled)", res, want)
		if err := res.Check(f.G, f.K); err != nil {
			t.Fatalf("%s: pooled result fails Check: %v", inst.Name, err)
		}
	}
}
