package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

func TestAllocateSimpleGraph(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddAffinity(1, 2, 5)
	res, err := Allocate(g, 2, ModeConservative)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v on a trivial graph", res.Spilled)
	}
	if res.CoalescedWeight != 5 {
		t.Fatalf("move not coalesced: %+v", res)
	}
}

func TestAllocateSpillsWhenForced(t *testing.T) {
	k5 := graph.New(5)
	k5.AddClique(k5.Vertices()...)
	res, err := Allocate(k5, 3, ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 2 {
		t.Fatalf("K5 with k=3 must spill 2, got %v", res.Spilled)
	}
}

func TestAllocateAggressiveCanSpillMore(t *testing.T) {
	// The permutation gadget with k = p: aggressive coalescing builds a
	// p-clique (fine), but with extra interference the merged classes can
	// become uncolorable while conservative stays safe. At minimum verify
	// both modes produce valid results.
	g, _, _ := graph.Permutation(3)
	for _, mode := range []Mode{ModeNone, ModeConservative, ModeBrute, ModeOptimistic, ModeAggressive} {
		res, err := Allocate(g, 3, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// k=3 fits the fully coalesced K3 and the original gadget.
		if len(res.Spilled) != 0 {
			t.Fatalf("%v spilled %v", mode, res.Spilled)
		}
	}
}

func TestModeString(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []Mode{ModeNone, ModeConservative, ModeBrute, ModeOptimistic, ModeAggressive} {
		s := m.String()
		if s == "" || seen[s] {
			t.Fatalf("bad mode name %q", s)
		}
		seen[s] = true
	}
}

func TestFunctionEndToEnd(t *testing.T) {
	for _, src := range []*ir.Func{ir.Diamond(), ir.Loop(), ir.Swap()} {
		_, low, err := ssa.Pipeline(src)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		res, err := Function(low, 4, ModeConservative)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		if res.Rounds < 1 {
			t.Fatalf("%s: rounds=%d", src.Name, res.Rounds)
		}
	}
}

func TestFunctionCoalescingRemovesMoves(t *testing.T) {
	// The swap loop lowers to several moves; with enough registers the
	// allocator should remove most of them.
	_, low, err := ssa.Pipeline(ir.Swap())
	if err != nil {
		t.Fatal(err)
	}
	none, err := Function(low, 6, ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Function(low, 6, ModeConservative)
	if err != nil {
		t.Fatal(err)
	}
	if cons.MovesRemoved < none.MovesRemoved {
		t.Fatalf("conservative removed %d moves, baseline %d", cons.MovesRemoved, none.MovesRemoved)
	}
	if cons.MovesKept+cons.MovesRemoved == 0 {
		t.Fatal("swap lowering should contain moves")
	}
}

// End-to-end on random programs across modes: allocation always terminates
// with a proper assignment (checkAssignment runs inside Function), for a
// k comfortably above the arity-induced floor.
func TestQuickFunctionAllModes(t *testing.T) {
	f := func(seed int64, varsRaw uint8, modeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ir.DefaultRandomParams()
		p.Vars = int(varsRaw%5) + 2
		p.Blocks = 5
		fn := ir.Random(rng, p)
		_, low, err := ssa.Pipeline(fn)
		if err != nil {
			return false
		}
		mode := Mode(int(modeRaw) % 5)
		res, err := Function(low, 8, mode)
		if err != nil {
			return false
		}
		return res.F.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Two-phase pipeline: reduce pressure to k first (paper's §1 two-phase
// allocation), then allocation with k registers must not spill at all when
// the graph is chordal... the lowered graph is not chordal in general, but
// pressure <= k keeps optimistic select from spilling in practice on these
// sizes; we assert only validity plus no-crash, and that pressure-reduced
// instances spill no more than raw ones.
func TestTwoPhaseReducesSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := ir.DefaultRandomParams()
	p.Vars = 8
	p.Blocks = 6
	k := 4
	better, worse := 0, 0
	for trial := 0; trial < 10; trial++ {
		fn := ir.Random(rng, p)
		_, low, err := ssa.Pipeline(fn)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := Function(low, k, ModeConservative)
		if err != nil {
			t.Fatal(err)
		}
		reduced := low.Clone()
		if _, ok := ssa.ReduceMaxlive(reduced, k); !ok {
			continue
		}
		pre, err := Function(reduced, k, ModeConservative)
		if err != nil {
			t.Fatal(err)
		}
		// The pre-spilled function should converge in fewer rebuild rounds.
		if pre.Rounds <= raw.Rounds {
			better++
		} else {
			worse++
		}
	}
	if better < worse {
		t.Fatalf("pressure-first pipeline converged slower: better=%d worse=%d", better, worse)
	}
}

func TestCheckAssignmentCatchesConflicts(t *testing.T) {
	f := ir.NewFunc("t")
	a, b := f.NewReg(), f.NewReg()
	e := f.Entry()
	e.Def(a)
	e.Def(b)
	e.Use(a)
	e.Use(b)
	col := graph.Coloring{0, 0}
	if err := checkAssignment(f, col, 2); err == nil {
		t.Fatal("conflicting assignment accepted")
	}
	col = graph.Coloring{0, 1}
	if err := checkAssignment(f, col, 2); err != nil {
		t.Fatal(err)
	}
	if err := checkAssignment(f, graph.Coloring{0, 5}, 2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
}

// Colorability sanity: when the interference graph is greedy-k-colorable
// up front, allocation with any conservative mode never spills.
func TestQuickNoSpillWhenColorable(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n/2, 4)
		k := greedy.ColoringNumber(g)
		for _, mode := range []Mode{ModeNone, ModeConservative, ModeBrute, ModeOptimistic} {
			res, err := Allocate(g, k, mode)
			if err != nil || len(res.Spilled) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
