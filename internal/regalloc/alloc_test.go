package regalloc

// Zero-allocation gate for the pooled IRC solve path (the tentpole
// property of the pooling refactor): once AcquireIRC's pool is warm for
// a graph size, Reset+RunInto cycles must not touch the heap. Run under
// -race the test still drives the pooled path (catching pool-reuse
// races) but skips the exact count, which instrumentation inflates.

import (
	"math/rand"
	"testing"

	"regcoal/internal/graph"
)

// ircAllocInstance builds a deterministic mid-size instance with moves
// and precoloring, so the gate covers coalescing and pin handling too.
func ircAllocInstance() (*graph.Graph, int) {
	rng := rand.New(rand.NewSource(0xa110c))
	g := graph.RandomER(rng, 160, 0.25)
	graph.SprinkleAffinities(rng, g, 60, 6)
	g.SetPrecolored(0, 0)
	g.SetPrecolored(1, 1)
	return g, 12
}

func TestIRCZeroAllocSteadyState(t *testing.T) {
	g, k := ircAllocInstance()
	a := AcquireIRC(g, k)
	defer a.Release()
	res := new(IRCResult)
	a.RunInto(res) // warm the solver and result buffers
	want := res.CoalescedWeight

	allocs := testing.AllocsPerRun(25, func() {
		a.Reset(g, k)
		a.RunInto(res)
	})
	if res.CoalescedWeight != want {
		t.Fatalf("steady-state rerun changed the answer: weight %d != %d", res.CoalescedWeight, want)
	}
	if graph.RaceEnabled {
		t.Skipf("race detector inflates alloc counts (measured %v); pooled path exercised, count skipped", allocs)
	}
	if allocs != 0 {
		t.Fatalf("warmed IRC Reset+RunInto allocates %v times per run, want 0", allocs)
	}
}

// TestIRCPooledMatchesFresh pins that a recycled solver is
// indistinguishable from a fresh one on the instance the gate uses.
func TestIRCPooledMatchesFresh(t *testing.T) {
	g, k := ircAllocInstance()
	fresh := NewIRC(g, k).Run()

	a := AcquireIRC(g, k)
	defer a.Release()
	res := new(IRCResult)
	for i := 0; i < 3; i++ { // reuse across runs, not just once
		a.Reset(g, k)
		a.RunInto(res)
	}
	assertIRCResultsEqual(t, "pooled-vs-fresh", res, fresh)
}
