// Package regalloc glues the substrates into Chaitin-style register
// allocators — the "natural habitat" of the paper's coalescing problems.
//
// Two entry points:
//
//   - Allocate colors an interference graph with k colors after a chosen
//     coalescing strategy, Briggs-style optimistic select (potential spills
//     are pushed and may still color), reporting actual spills;
//   - Function drives the full loop on a lowered ir.Func: build the
//     interference graph, coalesce, color; on actual spills, rewrite the
//     code (spill everywhere) and retry — Chaitin's rebuild loop.
package regalloc

import (
	"fmt"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

// Mode selects the coalescing strategy of an allocation.
type Mode int

const (
	// ModeNone performs no coalescing (baseline).
	ModeNone Mode = iota
	// ModeConservative uses Briggs + George conservative coalescing.
	ModeConservative
	// ModeBrute uses the brute-force conservative test.
	ModeBrute
	// ModeOptimistic uses aggressive coalescing with de-coalescing.
	ModeOptimistic
	// ModeAggressive coalesces regardless of colorability (may spill more).
	ModeAggressive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeConservative:
		return "briggs+george"
	case ModeBrute:
		return "brute"
	case ModeOptimistic:
		return "optimistic"
	case ModeAggressive:
		return "aggressive"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Result reports one graph-level allocation.
type Result struct {
	// Coloring of the original graph's vertices (NoColor for spilled).
	Coloring graph.Coloring
	// Spilled lists original vertices whose class failed to color.
	Spilled []graph.V
	// CoalescedWeight is the total weight of moves whose endpoints ended
	// with equal colors; RemainingWeight the rest (spilled endpoints count
	// as remaining).
	CoalescedWeight, RemainingWeight int64
}

// runCoalescing returns the partition for the chosen mode.
func runCoalescing(g *graph.Graph, k int, mode Mode) *graph.Partition {
	switch mode {
	case ModeConservative:
		return coalesce.Conservative(g, k, coalesce.TestBriggsGeorge).P
	case ModeBrute:
		return coalesce.Conservative(g, k, coalesce.TestBrute).P
	case ModeOptimistic:
		return coalesce.Optimistic(g, k).P
	case ModeAggressive:
		return coalesce.Aggressive(g, k).P
	default:
		return graph.NewPartition(g.N())
	}
}

// Allocate coalesces and colors g with k colors. Potential spills are
// optimistic (Briggs): they are pushed anyway and often still color.
func Allocate(g *graph.Graph, k int, mode Mode) (*Result, error) {
	p := runCoalescing(g, k, mode)
	q, old2new, err := graph.Quotient(g, p)
	if err != nil {
		return nil, fmt.Errorf("regalloc: coalescing produced invalid partition: %w", err)
	}
	qcol, spilledQ := greedy.OptimisticColor(q, k)
	res := &Result{Coloring: qcol.Lift(old2new)}
	spilled := make(map[graph.V]bool, len(spilledQ))
	for _, v := range spilledQ {
		spilled[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if spilled[old2new[v]] {
			res.Spilled = append(res.Spilled, graph.V(v))
		}
	}
	for _, a := range g.Affinities() {
		if res.Coloring[a.X] != graph.NoColor && res.Coloring[a.X] == res.Coloring[a.Y] {
			res.CoalescedWeight += a.Weight
		} else {
			res.RemainingWeight += a.Weight
		}
	}
	return res, nil
}

// AllocateIRC runs the full iterated-register-coalescing allocator on g —
// the worklist-driven George–Appel formulation (see irc.go) — and adapts
// its result to the Allocate shape.
func AllocateIRC(g *graph.Graph, k int) (*Result, error) {
	a := AcquireIRC(g, k)
	irc := a.Run()
	a.Release()
	if err := irc.Check(g, k); err != nil {
		return nil, err
	}
	res := &Result{Coloring: irc.Coloring, Spilled: irc.Spilled}
	for _, a := range g.Affinities() {
		if res.Coloring[a.X] != graph.NoColor && res.Coloring[a.X] == res.Coloring[a.Y] {
			res.CoalescedWeight += a.Weight
		} else {
			res.RemainingWeight += a.Weight
		}
	}
	return res, nil
}

// FunctionResult reports an end-to-end allocation of a lowered function.
type FunctionResult struct {
	// F is the final rewritten function (with spill code).
	F *ir.Func
	// Coloring maps the final function's registers to colors.
	Coloring graph.Coloring
	// Rounds counts build–color–spill iterations.
	Rounds int
	// SpilledRegs counts registers sent to memory across all rounds.
	SpilledRegs int
	// MovesKept counts move instructions whose endpoints got different
	// colors (the moves coalescing failed to remove); MovesRemoved counts
	// the coalesced ones.
	MovesKept, MovesRemoved int
}

// Function allocates a φ-free function with k registers, rebuilding after
// spills, Chaitin-style.
func Function(f *ir.Func, k int, mode Mode) (*FunctionResult, error) {
	work := f.Clone()
	const maxRounds = 40
	for round := 1; round <= maxRounds; round++ {
		g, _ := ssa.BuildInterference(work)
		res, err := Allocate(g, k, mode)
		if err != nil {
			return nil, err
		}
		if len(res.Spilled) > 0 {
			slot := round * 1000 // distinct slot space per round
			for i, v := range res.Spilled {
				ssa.SpillEverywhere(work, ir.Reg(v), slot+i)
			}
			continue
		}
		out := &FunctionResult{F: work, Coloring: res.Coloring, Rounds: round}
		for _, b := range work.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op != ir.OpMove {
					continue
				}
				if res.Coloring[ins.Dst] == res.Coloring[ins.Args[0]] {
					out.MovesRemoved++
				} else {
					out.MovesKept++
				}
			}
		}
		// Count spills by counting distinct store slots.
		slots := map[int]bool{}
		for _, b := range work.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpStore {
					slots[ins.Slot] = true
				}
			}
		}
		out.SpilledRegs = len(slots)
		if err := checkAssignment(work, res.Coloring, k); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, fmt.Errorf("regalloc: no fixpoint after %d rounds (k=%d too small?)", maxRounds, k)
}

// checkAssignment verifies a coloring against the function's interference
// graph: every register colored within range and no interfering pair
// sharing a color.
func checkAssignment(f *ir.Func, col graph.Coloring, k int) error {
	g, _ := ssa.BuildInterference(f)
	for v := 0; v < g.N(); v++ {
		if col[v] == graph.NoColor {
			// Unused registers may stay uncolored; only fail if v appears
			// in the code.
			if g.Degree(graph.V(v)) > 0 {
				return fmt.Errorf("regalloc: live register %s uncolored", f.RegName(ir.Reg(v)))
			}
			continue
		}
		if col[v] >= k {
			return fmt.Errorf("regalloc: register %s got color %d >= k=%d", f.RegName(ir.Reg(v)), col[v], k)
		}
	}
	for _, e := range g.Edges() {
		if col[e[0]] != graph.NoColor && col[e[0]] == col[e[1]] {
			return fmt.Errorf("regalloc: interfering %s and %s share color %d",
				f.RegName(ir.Reg(e[0])), f.RegName(ir.Reg(e[1])), col[e[0]])
		}
	}
	return nil
}
