package regalloc_test

import (
	"fmt"

	"regcoal/internal/graph"
	"regcoal/internal/regalloc"
)

// ExampleIRC runs iterated register coalescing on a path a—b—c—d with a
// move between the non-interfering endpoints a and c: IRC coalesces the
// move and 2 registers suffice.
func ExampleIRC() {
	g := graph.NewNamed("a", "b", "c", "d")
	a, b, c, d := graph.V(0), graph.V(1), graph.V(2), graph.V(3)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddAffinity(a, c, 5)

	res := regalloc.NewIRC(g, 2).Run()
	fmt.Println("coalesced moves:", res.CoalescedMoves)
	fmt.Println("coalesced weight:", res.CoalescedWeight)
	fmt.Println("a and c share a register:", res.Coloring[a] == res.Coloring[c])
	fmt.Println("spills:", len(res.Spilled))
	// Output:
	// coalesced moves: 1
	// coalesced weight: 5
	// a and c share a register: true
	// spills: 0
}

// ExampleAllocateSpillFirst allocates a 5-cycle with only 2 registers:
// pressure exceeds k, so the two-phase pipeline first evicts a vertex
// (spill everywhere), then colors the residual path.
func ExampleAllocateSpillFirst() {
	g := graph.New(5)
	for v := 0; v < 5; v++ {
		g.AddEdge(graph.V(v), graph.V((v+1)%5))
	}
	res, err := regalloc.AllocateSpillFirst(g, 2, regalloc.ModeConservative)
	if err != nil {
		panic(err)
	}
	fmt.Println("spilled:", len(res.Spilled))
	colored := 0
	for _, c := range res.Coloring {
		if c != graph.NoColor {
			colored++
		}
	}
	fmt.Println("colored with 2 registers:", colored)
	// Output:
	// spilled: 1
	// colored with 2 registers: 4
}
