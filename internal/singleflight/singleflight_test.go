package singleflight

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoSequentialRunsEachTime(t *testing.T) {
	var g Group
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (any, error) {
			return calls.Add(1), nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
		if v.(int64) != int64(i+1) {
			t.Fatalf("call %d: got %v", i, v)
		}
	}
}

func TestDoCollapsesConcurrentCalls(t *testing.T) {
	var g Group
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const waiters = 63
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	results := make([]any, waiters)

	// Leader blocks inside fn until every follower is launched.
	go func() {
		g.Do("k", func() (any, error) {
			close(started)
			<-gate
			return calls.Add(1), nil
		})
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				return calls.Add(1), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Release the leader only after every follower is provably blocked on
	// the in-flight call, so the collapse is deterministic, not a race
	// the test happens to win.
	for g.Waiters("k") < waiters {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != waiters {
		t.Fatalf("%d shared results, want %d", n, waiters)
	}
	for i, v := range results {
		if v.(int64) != 1 {
			t.Fatalf("waiter %d got %v, want 1", i, v)
		}
	}
}

func TestDoPropagatesError(t *testing.T) {
	var g Group
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, want })
	if err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
	// The key must be forgotten after the failed call.
	v, err, shared := g.Do("k", func() (any, error) { return 42, nil })
	if err != nil || shared || v.(int) != 42 {
		t.Fatalf("after error: v=%v err=%v shared=%v", v, err, shared)
	}
}

func TestDoDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(fmt.Sprintf("k%d", i), func() (any, error) {
				return calls.Add(1), nil
			})
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 8 {
		t.Fatalf("fn ran %d times, want 8", n)
	}
}

func TestLeaderPanicReleasesFollowers(t *testing.T) {
	var g Group
	started := make(chan struct{})
	gate := make(chan struct{})
	followerDone := make(chan error, 1)

	go func() {
		defer func() { recover() }()
		g.Do("k", func() (any, error) {
			close(started)
			<-gate
			panic("leader dies")
		})
	}()
	<-started
	go func() {
		_, err, _ := g.Do("k", func() (any, error) { return nil, nil })
		followerDone <- err
	}()
	close(gate)
	if err := <-followerDone; err != nil && !errors.Is(err, ErrLeaderPanic) {
		t.Fatalf("follower err = %v", err)
	}
}
