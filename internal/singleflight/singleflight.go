// Package singleflight collapses concurrent duplicate work: when several
// goroutines ask for the same key at once, one of them (the leader) runs
// the function and every other caller (the followers) blocks until the
// leader finishes and then shares its result. The online service wraps
// its solve path in a Group keyed by the canonical cache key, so a burst
// of identical requests — byte-identical or merely isomorphic, since the
// key is the canonical graph hash — costs one portfolio race instead of
// one per request.
//
// This is a from-scratch implementation (the container deliberately has
// no module dependencies beyond the standard library) of the same
// contract as golang.org/x/sync/singleflight's Do, without the Forget
// and DoChan surface the service does not need.
package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrLeaderPanic is the error followers receive when the leader's fn
// panicked instead of returning.
var ErrLeaderPanic = errors.New("singleflight: leader panicked")

// call is one in-flight execution of fn for a key.
type call struct {
	wg      sync.WaitGroup
	waiters atomic.Int64 // followers blocked on wg (observability/tests)
	val     any
	err     error
}

// Group collapses concurrent calls with the same key. The zero value is
// ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn, making sure only one execution per key is in flight at
// a time. Concurrent callers with the same key wait for the leader and
// receive its value and error with shared=true; the leader itself gets
// shared=false. Once the leader returns, the key is forgotten: a later
// Do runs fn again (the caller's cache, not the Group, is the memory).
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The leader must deregister the key and release its followers even
	// if fn panics, or every future caller of the key would block forever
	// on a call that will never complete. A panicking fn surfaces to the
	// followers as ErrLeaderPanic (the panic itself propagates on the
	// leader's goroutine).
	defer func() {
		if r := recover(); r != nil {
			c.err = ErrLeaderPanic
			g.release(key, c)
			panic(r)
		}
		g.release(key, c)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

func (g *Group) release(key string, c *call) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
}

// InFlight reports whether a call for key is currently executing. A true
// result means a Do(key, ...) issued now would (very likely) collapse
// onto the in-flight leader rather than compute.
func (g *Group) InFlight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.m[key]
	return ok
}

// Waiters reports how many followers are currently blocked on key's
// in-flight call (0 when no call is in flight). Used by tests to
// deterministically observe a collapse in progress.
func (g *Group) Waiters(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters.Load()
	}
	return 0
}
