package spill

import (
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

// ReduceFunc spills registers everywhere in a φ-free function until its
// Maxlive is at most k, making the same victim choices as
// ssa.ReduceMaxlive (the register live at the most maximal-pressure
// points) but maintaining liveness incrementally: spill-everywhere
// replaces every def and use of the victim with point-range temporaries,
// so the victim simply disappears from every block-boundary live set and
// no other register's cross-block liveness changes — one backward
// dataflow fixpoint at the start is enough for the whole reduction,
// where ReduceMaxlive recomputes it from scratch every round.
//
// It returns the spilled registers in eviction order, and ok = false when
// pressure cannot be reduced further (more than k point temporaries
// collide at one instruction).
func ReduceFunc(f *ir.Func, k int) (spilled []ir.Reg, ok bool) {
	lv := ssa.NewLiveness(f)
	slot := 0
	// Only original registers are candidates: spilling a one-point
	// reload/spill temporary can never reduce pressure.
	limit := ir.Reg(f.NumRegs)
	done := make(map[ir.Reg]bool)
	for {
		maxlive, score := pressureScores(f, lv)
		if maxlive <= k {
			return spilled, true
		}
		best := ir.NoReg
		for r := ir.Reg(0); r < limit; r++ {
			if score[r] == 0 || done[r] {
				continue
			}
			if best == ir.NoReg || score[r] > score[best] {
				best = r
			}
		}
		if best == ir.NoReg {
			return spilled, false
		}
		ssa.SpillEverywhere(f, best, slot)
		slot++
		done[best] = true
		spilled = append(spilled, best)
		// Incremental liveness update: the victim's live range is now a
		// union of point ranges inside single instructions, so it leaves
		// every block-boundary set; the fresh temporaries never cross a
		// boundary, and no other register's defs or uses moved.
		for bi := range f.Blocks {
			lv.LiveIn[bi].Clear(best)
			lv.LiveOut[bi].Clear(best)
		}
	}
}

// pressureScores walks every block backward from its live-out set and
// reports the function's Maxlive together with, per register, the number
// of maximal-pressure points at which it is live — the ReduceMaxlive
// victim score. The walk sizes its live set to the function's current
// register count, which may exceed the width of the (original-sized)
// boundary bitsets once spill temporaries exist.
func pressureScores(f *ir.Func, lv *ssa.Liveness) (maxlive int, score []int) {
	score = make([]int, f.NumRegs)
	// Two passes with the same walk: first find Maxlive, then credit the
	// registers live at points that attain it.
	walk := func(visit func(live ssa.Bitset, count int)) {
		for bi, b := range f.Blocks {
			live := ssa.NewBitset(f.NumRegs)
			copy(live, lv.LiveOut[bi])
			visit(live, live.Count())
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				ins := b.Instrs[i]
				if ins.Op == ir.OpPhi {
					break
				}
				if ins.Dst != ir.NoReg {
					live.Clear(ins.Dst)
				}
				for _, a := range ins.Args {
					live.Set(a)
				}
				visit(live, live.Count())
			}
		}
	}
	walk(func(_ ssa.Bitset, count int) {
		if count > maxlive {
			maxlive = count
		}
	})
	walk(func(live ssa.Bitset, count int) {
		if count == maxlive {
			for _, r := range live.Members() {
				score[r]++
			}
		}
	})
	return maxlive, score
}
