// Package spill implements the spill-everywhere problem of the companion
// report "On the Complexity of Spill Everywhere under SSA Form" (Bouchez,
// Darte, Rastello, RR2007-42): given an instance whose register pressure
// exceeds the k available registers, choose variables to evict entirely to
// memory so that the residual instance is k-colorable, at minimum spill
// cost. It is the missing first half of the two-phase (spill then
// color/coalesce) allocation pipeline the source paper's introduction
// assumes has already run.
//
// Three instance shapes are supported, mirroring the report's complexity
// map:
//
//   - Interference graphs (this file + exact.go): evict vertices until the
//     graph is greedy-k-colorable — Greedy (furthest-first style eviction
//     of the highest-occupancy witness vertex), Incremental (identical
//     decisions, but the Chaitin elimination state is updated in place
//     after each eviction instead of re-derived from scratch), and Exact
//     (branch and bound over witness vertices, anytime and
//     context-cancelable).
//   - Interval programs (interval.go): straight-line live ranges, the
//     basic-block case the report proves polynomial; GreedyIntervals is
//     Belady's furthest-end eviction, optimal for unit costs.
//   - IR functions (func.go): spill-everywhere on the mini compiler IR
//     via ssa.SpillEverywhere, with liveness maintained incrementally
//     across spill rounds rather than recomputed to a fixpoint.
package spill

import (
	"fmt"
	"sort"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// Plan is the outcome of a graph-level spiller: the evicted vertices, in
// eviction order, and a proper k-coloring of what survives.
type Plan struct {
	// Spilled lists the evicted vertices in eviction order.
	Spilled []graph.V
	// Cost is the total spill cost (one per vertex under unit costs).
	Cost int64
	// Coloring is a proper k-coloring of the residual graph; spilled
	// vertices hold NoColor.
	Coloring graph.Coloring
	// Rounds counts eviction rounds (== len(Spilled) for the greedy
	// spillers).
	Rounds int
	// Optimal marks a plan proven cost-minimal (Exact, search completed).
	Optimal bool
}

// Spills reports the number of evicted vertices.
func (p *Plan) Spills() int { return len(p.Spilled) }

// costOf reads the spill cost of v: costs[v], or 1 when costs is nil
// (unit costs).
func costOf(costs []int64, v graph.V) int64 {
	if costs == nil {
		return 1
	}
	return costs[v]
}

// checkInstance rejects instances no spill set can fix: a precoloring
// outside [0,k) or two interfering vertices pinned to the same color
// (precolored vertices are never spill candidates).
func checkInstance(f *graph.File, costs []int64) error {
	g, k := f.G, f.K
	if k <= 0 {
		return fmt.Errorf("spill: k=%d, need at least one register", k)
	}
	if costs != nil {
		if len(costs) != g.N() {
			return fmt.Errorf("spill: %d costs for %d vertices", len(costs), g.N())
		}
		// Non-positive costs would invalidate Exact's lower bound (and its
		// Optimal claim): a free or negative eviction makes "at least one
		// more core vertex" no longer a lower bound on the completion cost.
		for v, c := range costs {
			if c <= 0 {
				return fmt.Errorf("spill: vertex %d has non-positive cost %d", v, c)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		c, ok := g.Precolored(graph.V(v))
		if !ok {
			continue
		}
		if c >= k {
			return fmt.Errorf("spill: vertex %s precolored %d >= k=%d", g.Name(graph.V(v)), c, k)
		}
		var conflict error
		g.ForEachNeighbor(graph.V(v), func(w graph.V) {
			if cw, okw := g.Precolored(w); okw && cw == c && conflict == nil {
				conflict = fmt.Errorf("spill: interfering vertices %s and %s both precolored %d",
					g.Name(graph.V(v)), g.Name(w), c)
			}
		})
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// eliminateAlive runs Chaitin's simplification over the subgraph induced
// by alive and returns the non-precolored vertices it could not remove,
// in increasing order — the spill candidates of the witness core. An
// empty result means the induced subgraph is greedy-k-colorable.
// Induced degrees are derived word-parallelly (one MaskedDegree popcount
// sweep per vertex) instead of walking per-vertex adjacency.
func eliminateAlive(g *graph.Graph, alive graph.Bits, k int) []graph.V {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	pinned := make([]bool, n)
	var stack []graph.V
	for v := 0; v < n; v++ {
		if !alive.Get(graph.V(v)) {
			removed[v] = true
			continue
		}
		_, pinned[v] = g.Precolored(graph.V(v))
		deg[v] = g.MaskedDegree(graph.V(v), alive)
	}
	for v := 0; v < n; v++ {
		if !removed[v] && !pinned[v] && deg[v] < k {
			stack = append(stack, graph.V(v))
		}
	}
	drainEliminate(g, k, deg, removed, pinned, stack)
	var remaining []graph.V
	for v := 0; v < n; v++ {
		if !removed[v] && !pinned[v] {
			remaining = append(remaining, graph.V(v))
		}
	}
	return remaining
}

// drainEliminate consumes the simplification worklist: pops a vertex,
// removes it if still eligible, and pushes neighbors whose degree drops
// below k. Degrees only decrease, so a popped vertex with deg < k is
// always safe to remove.
func drainEliminate(g *graph.Graph, k int, deg []int, removed, pinned []bool, stack []graph.V) {
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if removed[v] || deg[v] >= k {
			continue
		}
		removed[v] = true
		g.ForEachNeighbor(v, func(w graph.V) {
			if removed[w] {
				return
			}
			deg[w]--
			if !pinned[w] && deg[w] == k-1 {
				stack = append(stack, w)
			}
		})
	}
}

// pickVictim chooses the eviction victim among the witness core: the
// remaining vertex with the highest witness-degree-to-cost ratio (the
// variable whose eviction relieves the most pressure per unit of spill
// cost), ties broken toward the smallest vertex id. The witness is the
// remaining set plus the alive precolored vertices it leans on.
func pickVictim(g *graph.Graph, alive graph.Bits, remaining []graph.V, costs []int64) graph.V {
	witness := graph.NewBits(g.N())
	for _, v := range remaining {
		witness.Set(v)
	}
	for v := 0; v < g.N(); v++ {
		if alive.Get(graph.V(v)) {
			if _, ok := g.Precolored(graph.V(v)); ok {
				witness.Set(graph.V(v))
			}
		}
	}
	best := graph.V(-1)
	bestDeg := 0
	for _, v := range remaining {
		// Witness occupancy is a word-parallel popcount: the witness set
		// only holds alive vertices, so N(v) ∩ witness is exactly the old
		// alive-and-in-witness neighbor count.
		wdeg := g.MaskedDegree(v, witness)
		// Maximize wdeg/cost by cross-multiplication; remaining is sorted,
		// so strict improvement keeps the smallest id on ties.
		if best == -1 || int64(wdeg)*costOf(costs, best) > int64(bestDeg)*costOf(costs, v) {
			best, bestDeg = v, wdeg
		}
	}
	return best
}

// finishPlan colors the residual graph and assembles the Plan.
func finishPlan(f *graph.File, alive graph.Bits, spilled []graph.V, costs []int64, rounds int) (*Plan, error) {
	g := f.G
	survivors := make([]graph.V, 0, g.N()-len(spilled))
	for v := 0; v < g.N(); v++ {
		if alive.Get(graph.V(v)) {
			survivors = append(survivors, graph.V(v))
		}
	}
	sub, old2new := g.InducedSubgraph(survivors)
	col, ok := greedy.Color(sub, f.K)
	if !ok {
		return nil, fmt.Errorf("spill: residual graph not greedy-%d-colorable after %d evictions", f.K, len(spilled))
	}
	plan := &Plan{
		Spilled:  spilled,
		Coloring: graph.NewColoring(g.N()),
		Rounds:   rounds,
	}
	for _, v := range survivors {
		plan.Coloring[v] = col[old2new[v]]
	}
	for _, v := range spilled {
		plan.Cost += costOf(costs, v)
	}
	return plan, nil
}

// Greedy lowers the instance to a greedy-k-colorable one by furthest-first
// eviction: while the graph has a witness core (an induced subgraph of
// minimum degree >= k), evict the core vertex with the highest
// occupancy-to-cost ratio, then re-derive the core from scratch. costs is
// the per-vertex spill cost (nil = unit). Precolored vertices are never
// evicted.
func Greedy(f *graph.File, costs []int64) (*Plan, error) {
	if err := checkInstance(f, costs); err != nil {
		return nil, err
	}
	g := f.G
	alive := graph.NewBits(g.N())
	alive.Fill(g.N())
	var spilled []graph.V
	rounds := 0
	for {
		remaining := eliminateAlive(g, alive, f.K)
		if len(remaining) == 0 {
			break
		}
		rounds++
		v := pickVictim(g, alive, remaining, costs)
		alive.Clear(v)
		spilled = append(spilled, v)
	}
	return finishPlan(f, alive, spilled, costs, rounds)
}

// Incremental makes the same eviction decisions as Greedy but maintains
// the Chaitin elimination state across rounds: after evicting a victim it
// decrements its neighbors' degrees and resumes simplification from the
// previous fixpoint instead of re-deriving interference of the residual
// instance from scratch. Greedy elimination is confluent, so the
// resulting core — and therefore the spill set — is identical to
// Greedy's; only the work per round shrinks from O(V+E) to the size of
// the newly unlocked region.
func Incremental(f *graph.File, costs []int64) (*Plan, error) {
	if err := checkInstance(f, costs); err != nil {
		return nil, err
	}
	g, k := f.G, f.K
	n := g.N()
	alive := graph.NewBits(n)
	alive.Fill(n)
	deg := make([]int, n)
	removed := make([]bool, n)
	pinned := make([]bool, n)
	var stack []graph.V
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.V(v))
		_, pinned[v] = g.Precolored(graph.V(v))
		if !pinned[v] && deg[v] < k {
			stack = append(stack, graph.V(v))
		}
	}
	drainEliminate(g, k, deg, removed, pinned, stack)

	var spilled []graph.V
	rounds := 0
	for {
		var remaining []graph.V
		for v := 0; v < n; v++ {
			if alive.Get(graph.V(v)) && !removed[v] && !pinned[v] {
				remaining = append(remaining, graph.V(v))
			}
		}
		if len(remaining) == 0 {
			break
		}
		rounds++
		v := pickVictim(g, alive, remaining, costs)
		alive.Clear(v)
		// Mark the victim removed so the resumed elimination can neither
		// re-remove it nor decrement its neighbors a second time.
		removed[v] = true
		spilled = append(spilled, v)
		// The eviction lowers neighbor degrees exactly like a removal;
		// resume simplification from the vertices it unlocked.
		stack = stack[:0]
		g.ForEachNeighbor(v, func(w graph.V) {
			if removed[w] {
				return
			}
			deg[w]--
			if !pinned[w] && deg[w] == k-1 {
				stack = append(stack, w)
			}
		})
		drainEliminate(g, k, deg, removed, pinned, stack)
	}
	return finishPlan(f, alive, spilled, costs, rounds)
}

// SortedSpills returns the plan's spill set sorted by vertex id (the
// eviction order is preserved in Spilled itself).
func (p *Plan) SortedSpills() []graph.V {
	out := append([]graph.V(nil), p.Spilled...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
