// Package spill implements the spill-everywhere problem of the companion
// report "On the Complexity of Spill Everywhere under SSA Form" (Bouchez,
// Darte, Rastello, RR2007-42): given an instance whose register pressure
// exceeds the k available registers, choose variables to evict entirely to
// memory so that the residual instance is k-colorable, at minimum spill
// cost. It is the missing first half of the two-phase (spill then
// color/coalesce) allocation pipeline the source paper's introduction
// assumes has already run.
//
// Three instance shapes are supported, mirroring the report's complexity
// map:
//
//   - Interference graphs (this file + exact.go): evict vertices until the
//     graph is greedy-k-colorable — Greedy (furthest-first style eviction
//     of the highest-occupancy witness vertex), Incremental (identical
//     decisions, but the Chaitin elimination state is updated in place
//     after each eviction instead of re-derived from scratch), and Exact
//     (branch and bound over witness vertices, anytime and
//     context-cancelable).
//   - Interval programs (interval.go): straight-line live ranges, the
//     basic-block case the report proves polynomial; GreedyIntervals is
//     Belady's furthest-end eviction, optimal for unit costs.
//   - IR functions (func.go): spill-everywhere on the mini compiler IR
//     via ssa.SpillEverywhere, with liveness maintained incrementally
//     across spill rounds rather than recomputed to a fixpoint.
package spill

import (
	"fmt"
	"sort"
	"sync"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// Plan is the outcome of a graph-level spiller: the evicted vertices, in
// eviction order, and a proper k-coloring of what survives.
type Plan struct {
	// Spilled lists the evicted vertices in eviction order.
	Spilled []graph.V
	// Cost is the total spill cost (one per vertex under unit costs).
	Cost int64
	// Coloring is a proper k-coloring of the residual graph; spilled
	// vertices hold NoColor.
	Coloring graph.Coloring
	// Rounds counts eviction rounds (== len(Spilled) for the greedy
	// spillers).
	Rounds int
	// Optimal marks a plan proven cost-minimal (Exact, search completed).
	Optimal bool
}

// Spills reports the number of evicted vertices.
func (p *Plan) Spills() int { return len(p.Spilled) }

// costOf reads the spill cost of v: costs[v], or 1 when costs is nil
// (unit costs).
func costOf(costs []int64, v graph.V) int64 {
	if costs == nil {
		return 1
	}
	return costs[v]
}

// checkInstance rejects instances no spill set can fix: a precoloring
// outside [0,k) or two interfering vertices pinned to the same color
// (precolored vertices are never spill candidates).
func checkInstance(f *graph.File, costs []int64) error {
	g, k := f.G, f.K
	if k <= 0 {
		return fmt.Errorf("spill: k=%d, need at least one register", k)
	}
	if costs != nil {
		if len(costs) != g.N() {
			return fmt.Errorf("spill: %d costs for %d vertices", len(costs), g.N())
		}
		// Non-positive costs would invalidate Exact's lower bound (and its
		// Optimal claim): a free or negative eviction makes "at least one
		// more core vertex" no longer a lower bound on the completion cost.
		for v, c := range costs {
			if c <= 0 {
				return fmt.Errorf("spill: vertex %d has non-positive cost %d", v, c)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		c, ok := g.Precolored(graph.V(v))
		if !ok {
			continue
		}
		if c >= k {
			return fmt.Errorf("spill: vertex %s precolored %d >= k=%d", g.Name(graph.V(v)), c, k)
		}
		var conflict error
		g.ForEachNeighbor(graph.V(v), func(w graph.V) {
			if cw, okw := g.Precolored(w); okw && cw == c && conflict == nil {
				conflict = fmt.Errorf("spill: interfering vertices %s and %s both precolored %d",
					g.Name(graph.V(v)), g.Name(w), c)
			}
		})
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// eliminateAlive runs Chaitin's simplification over the subgraph induced
// by alive and returns the non-precolored vertices it could not remove,
// in increasing order — the spill candidates of the witness core. An
// empty result means the induced subgraph is greedy-k-colorable. The
// elimination itself is greedy.EliminateMasked (the one shared
// implementation); the core set is unique by confluence, so any removal
// discipline yields the same candidates.
func eliminateAlive(g *graph.Graph, alive graph.Bits, k int) []graph.V {
	ar := graph.GetArena()
	defer ar.Release()
	_, remaining := greedy.EliminateMasked(ar, g, k, alive)
	if len(remaining) == 0 {
		return nil
	}
	return append([]graph.V(nil), remaining...)
}

// drainEliminate consumes the simplification worklist: pops a vertex,
// removes it if still eligible, and pushes neighbors whose degree drops
// below k. Degrees only decrease, so a popped vertex with deg < k is
// always safe to remove. It returns the emptied stack so pooled callers
// keep its grown capacity.
func drainEliminate(g *graph.Graph, k int, deg []int, removed, pinned []bool, stack []graph.V) []graph.V {
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if removed[v] || deg[v] >= k {
			continue
		}
		removed[v] = true
		g.ForEachNeighbor(v, func(w graph.V) {
			if removed[w] {
				return
			}
			deg[w]--
			if !pinned[w] && deg[w] == k-1 {
				stack = append(stack, w)
			}
		})
	}
	return stack
}

// finishPlan colors the residual graph and assembles the Plan (the
// allocating path used by the exact search; the greedy spillers use
// Scratch.finishPlan, which colors through the alive mask instead of
// materializing the induced subgraph).
func finishPlan(f *graph.File, alive graph.Bits, spilled []graph.V, costs []int64, rounds int) (*Plan, error) {
	g := f.G
	survivors := make([]graph.V, 0, g.N()-len(spilled))
	for v := 0; v < g.N(); v++ {
		if alive.Get(graph.V(v)) {
			survivors = append(survivors, graph.V(v))
		}
	}
	sub, old2new := g.InducedSubgraph(survivors)
	col, ok := greedy.Color(sub, f.K)
	if !ok {
		return nil, fmt.Errorf("spill: residual graph not greedy-%d-colorable after %d evictions", f.K, len(spilled))
	}
	plan := &Plan{
		Spilled:  spilled,
		Coloring: graph.NewColoring(g.N()),
		Rounds:   rounds,
	}
	for _, v := range survivors {
		plan.Coloring[v] = col[old2new[v]]
	}
	for _, v := range spilled {
		plan.Cost += costOf(costs, v)
	}
	return plan, nil
}

// Scratch is pooled solver state for the graph-level spillers: the alive
// and witness masks, the elimination degree/flag arrays, and the residual
// coloring worklists. Acquire one with AcquireScratch, run any number of
// Greedy/Incremental calls through it, and Release it; once the pool is
// warm for a graph size, steady-state runs do no heap allocation (see
// TestSpillZeroAllocSteadyState). A Scratch is single-goroutine state;
// concurrent spillers each acquire their own. The package-level Greedy
// and Incremental wrap this with a pooled scratch per call.
type Scratch struct {
	alive     graph.Bits
	witness   graph.Bits
	deg       []int
	removed   []bool
	pinned    []bool
	stack     []graph.V
	remaining []graph.V
	used      []bool // per-color flags of the select phase
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// AcquireScratch checks spiller scratch out of the pool; pair with
// Release.
func AcquireScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the scratch to the pool. Plans filled by this scratch
// stay valid: they own their memory and do not alias pooled state.
func (s *Scratch) Release() { scratchPool.Put(s) }

// Greedy lowers the instance to a greedy-k-colorable one by furthest-first
// eviction: while the graph has a witness core (an induced subgraph of
// minimum degree >= k), evict the core vertex with the highest
// occupancy-to-cost ratio, then re-derive the core from scratch. costs is
// the per-vertex spill cost (nil = unit). Precolored vertices are never
// evicted.
func Greedy(f *graph.File, costs []int64) (*Plan, error) {
	s := AcquireScratch()
	defer s.Release()
	plan := new(Plan)
	if err := s.Greedy(f, costs, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// Greedy is the pooled form of the package-level Greedy: it runs the same
// algorithm into plan, reusing both the scratch's and the plan's storage.
func (s *Scratch) Greedy(f *graph.File, costs []int64, plan *Plan) error {
	if err := checkInstance(f, costs); err != nil {
		return err
	}
	g := f.G
	n := g.N()
	s.alive = graph.ReuseBits(s.alive, n)
	s.alive.Fill(n)
	plan.Spilled = plan.Spilled[:0]
	rounds := 0
	for {
		s.deriveCore(g, f.K)
		if len(s.remaining) == 0 {
			break
		}
		rounds++
		v := s.pickVictim(g, costs)
		s.alive.Clear(v)
		plan.Spilled = append(plan.Spilled, v)
	}
	return s.finishPlan(f, costs, rounds, plan)
}

// Incremental makes the same eviction decisions as Greedy but maintains
// the Chaitin elimination state across rounds: after evicting a victim it
// decrements its neighbors' degrees and resumes simplification from the
// previous fixpoint instead of re-deriving interference of the residual
// instance from scratch. Greedy elimination is confluent, so the
// resulting core — and therefore the spill set — is identical to
// Greedy's; only the work per round shrinks from O(V+E) to the size of
// the newly unlocked region.
func Incremental(f *graph.File, costs []int64) (*Plan, error) {
	s := AcquireScratch()
	defer s.Release()
	plan := new(Plan)
	if err := s.Incremental(f, costs, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// Incremental is the pooled form of the package-level Incremental.
func (s *Scratch) Incremental(f *graph.File, costs []int64, plan *Plan) error {
	if err := checkInstance(f, costs); err != nil {
		return err
	}
	g, k := f.G, f.K
	n := g.N()
	s.alive = graph.ReuseBits(s.alive, n)
	s.alive.Fill(n)
	s.deg = graph.ReuseSlice(s.deg, n)
	s.removed = graph.ReuseSlice(s.removed, n)
	s.pinned = graph.ReuseSlice(s.pinned, n)
	s.stack = s.stack[:0]
	for v := 0; v < n; v++ {
		s.deg[v] = g.Degree(graph.V(v))
		_, s.pinned[v] = g.Precolored(graph.V(v))
		if !s.pinned[v] && s.deg[v] < k {
			s.stack = append(s.stack, graph.V(v))
		}
	}
	s.stack = drainEliminate(g, k, s.deg, s.removed, s.pinned, s.stack)

	plan.Spilled = plan.Spilled[:0]
	rounds := 0
	for {
		s.remaining = s.remaining[:0]
		for v := 0; v < n; v++ {
			if s.alive.Get(graph.V(v)) && !s.removed[v] && !s.pinned[v] {
				s.remaining = append(s.remaining, graph.V(v))
			}
		}
		if len(s.remaining) == 0 {
			break
		}
		rounds++
		v := s.pickVictim(g, costs)
		s.alive.Clear(v)
		// Mark the victim removed so the resumed elimination can neither
		// re-remove it nor decrement its neighbors a second time.
		s.removed[v] = true
		plan.Spilled = append(plan.Spilled, v)
		// The eviction lowers neighbor degrees exactly like a removal;
		// resume simplification from the vertices it unlocked.
		s.stack = s.stack[:0]
		g.ForEachNeighbor(v, func(w graph.V) {
			if s.removed[w] {
				return
			}
			s.deg[w]--
			if !s.pinned[w] && s.deg[w] == k-1 {
				s.stack = append(s.stack, w)
			}
		})
		s.stack = drainEliminate(g, k, s.deg, s.removed, s.pinned, s.stack)
	}
	return s.finishPlan(f, costs, rounds, plan)
}

// deriveCore re-derives the witness core of the alive subgraph from
// scratch (the Greedy discipline), leaving it in s.remaining. The
// elimination is greedy.EliminateMasked on pooled arena scratch; only
// the Incremental spiller keeps its own persistent elimination state
// (drainEliminate), because resuming from the previous fixpoint is its
// entire point.
func (s *Scratch) deriveCore(g *graph.Graph, k int) {
	ar := graph.GetArena()
	_, remaining := greedy.EliminateMasked(ar, g, k, s.alive)
	s.remaining = append(s.remaining[:0], remaining...)
	ar.Release()
}

// pickVictim chooses the eviction victim among the witness core
// (s.remaining): the vertex with the highest witness-degree-to-cost
// ratio (the variable whose eviction relieves the most pressure per unit
// of spill cost), ties broken toward the smallest vertex id. The witness
// is the core plus the alive precolored vertices it leans on; occupancy
// is a word-parallel popcount of N(v) ∩ witness.
func (s *Scratch) pickVictim(g *graph.Graph, costs []int64) graph.V {
	s.witness = graph.ReuseBits(s.witness, g.N())
	for _, v := range s.remaining {
		s.witness.Set(v)
	}
	for v := 0; v < g.N(); v++ {
		if s.alive.Get(graph.V(v)) {
			if _, ok := g.Precolored(graph.V(v)); ok {
				s.witness.Set(graph.V(v))
			}
		}
	}
	best := graph.V(-1)
	bestDeg := 0
	for _, v := range s.remaining {
		wdeg := g.MaskedDegree(v, s.witness)
		// Maximize wdeg/cost by cross-multiplication; remaining is sorted,
		// so strict improvement keeps the smallest id on ties.
		if best == -1 || int64(wdeg)*costOf(costs, best) > int64(bestDeg)*costOf(costs, v) {
			best, bestDeg = v, wdeg
		}
	}
	return best
}

// finishPlan colors the residual (alive) subgraph through the mask and
// assembles the Plan, reusing the plan's storage. The elimination is
// greedy.EliminateMasked — the one shared implementation of the
// smallest-id-first discipline — and the select phase mirrors
// greedy.Select (unbiased), so pooled and unpooled spillers produce
// identical plans (pinned by the differential tests) without
// materializing the induced subgraph.
func (s *Scratch) finishPlan(f *graph.File, costs []int64, rounds int, plan *Plan) error {
	g, k := f.G, f.K
	n := g.N()
	plan.Rounds = rounds
	plan.Optimal = false
	plan.Cost = 0
	for _, v := range plan.Spilled {
		plan.Cost += costOf(costs, v)
	}
	plan.Coloring = graph.Coloring(graph.ReuseSlice([]int(plan.Coloring), n))
	col := plan.Coloring
	for i := range col {
		col[i] = graph.NoColor
	}

	ar := graph.GetArena()
	defer ar.Release()
	order, remaining := greedy.EliminateMasked(ar, g, k, s.alive)
	if len(remaining) > 0 {
		return fmt.Errorf("spill: residual graph not greedy-%d-colorable after %d evictions", k, len(plan.Spilled))
	}

	// Masked Select: pinned skeleton first, then reverse elimination
	// order, lowest free color (greedy.Select, unbiased).
	for v := 0; v < n; v++ {
		if !s.alive.Get(graph.V(v)) {
			continue
		}
		if c, ok := g.Precolored(graph.V(v)); ok {
			col[v] = c
		}
	}
	s.used = graph.ReuseSlice(s.used, k)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for c := range s.used {
			s.used[c] = false
		}
		g.ForEachNeighbor(v, func(w graph.V) {
			if s.alive.Get(w) && col[w] != graph.NoColor && col[w] < k {
				s.used[col[w]] = true
			}
		})
		chosen := -1
		for c := 0; c < k; c++ {
			if !s.used[c] {
				chosen = c
				break
			}
		}
		if chosen == -1 {
			return fmt.Errorf("spill: residual graph not greedy-%d-colorable after %d evictions", k, len(plan.Spilled))
		}
		col[v] = chosen
	}
	return nil
}

// SortedSpills returns the plan's spill set sorted by vertex id (the
// eviction order is preserved in Spilled itself).
func (p *Plan) SortedSpills() []graph.V {
	out := append([]graph.V(nil), p.Spilled...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
