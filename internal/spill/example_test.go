package spill_test

import (
	"fmt"

	"regcoal/internal/graph"
	"regcoal/internal/spill"
)

// ExampleGreedy spills a 4-clique down to 3 registers: the clique is the
// witness core, one eviction makes the residual triangle colorable.
func ExampleGreedy() {
	g := graph.New(4)
	g.AddClique(0, 1, 2, 3)
	plan, err := spill.Greedy(&graph.File{G: g, K: 3}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("spills:", plan.Spills())
	fmt.Println("cost:", plan.Cost)
	fmt.Println("rounds:", plan.Rounds)
	// Output:
	// spills: 1
	// cost: 1
	// rounds: 1
}
