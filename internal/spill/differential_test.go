package spill_test

// Representation-independence differential test for the spillers: the
// Greedy and Incremental plans must be a pure function of the abstract
// instance. Instances are rebuilt through the retained map-backed
// reference (edges re-inserted in randomized map iteration order); the
// plans — eviction order included — must not move.

import (
	"reflect"
	"testing"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/graph/mapref"
	"regcoal/internal/spill"
)

func TestSpillersMatchMapReferenceRebuild(t *testing.T) {
	fams, err := corpus.Select("ssa-pressure,interval-pressure,er-dense")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20260729, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	spillers := []struct {
		name string
		run  func(f *graph.File) (*spill.Plan, error)
	}{
		{"greedy", func(f *graph.File) (*spill.Plan, error) { return spill.Greedy(f, nil) }},
		{"incremental", func(f *graph.File) (*spill.Plan, error) { return spill.Incremental(f, nil) }},
	}
	for _, inst := range insts {
		f := inst.File
		rebuilt := &graph.File{G: mapref.FromGraph(f.G).Rebuild(f.G), K: f.K}
		for _, sp := range spillers {
			want, err := sp.run(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", inst.Name, sp.name, err)
			}
			got, err := sp.run(rebuilt)
			if err != nil {
				t.Fatalf("%s/%s (rebuilt): %v", inst.Name, sp.name, err)
			}
			if !reflect.DeepEqual(got.Spilled, want.Spilled) {
				t.Fatalf("%s/%s: eviction order diverged under map-order rebuild\n got %v\nwant %v",
					inst.Name, sp.name, got.Spilled, want.Spilled)
			}
			if got.Cost != want.Cost || got.Rounds != want.Rounds {
				t.Fatalf("%s/%s: cost/rounds diverged: got %d/%d, want %d/%d",
					inst.Name, sp.name, got.Cost, got.Rounds, want.Cost, want.Rounds)
			}
			if !reflect.DeepEqual(got.Coloring, want.Coloring) {
				t.Fatalf("%s/%s: residual coloring diverged", inst.Name, sp.name)
			}
		}
	}
}
