package spill_test

// Representation-independence differential test for the spillers: the
// Greedy and Incremental plans must be a pure function of the abstract
// instance. Instances are rebuilt through the retained map-backed
// reference (edges re-inserted in randomized map iteration order); the
// plans — eviction order included — must not move.

import (
	"reflect"
	"testing"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/graph/mapref"
	"regcoal/internal/spill"
)

func TestSpillersMatchMapReferenceRebuild(t *testing.T) {
	fams, err := corpus.Select("ssa-pressure,interval-pressure,er-dense")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20260729, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	spillers := []struct {
		name string
		run  func(f *graph.File) (*spill.Plan, error)
	}{
		{"greedy", func(f *graph.File) (*spill.Plan, error) { return spill.Greedy(f, nil) }},
		{"incremental", func(f *graph.File) (*spill.Plan, error) { return spill.Incremental(f, nil) }},
	}
	for _, inst := range insts {
		f := inst.File
		rebuilt := &graph.File{G: mapref.FromGraph(f.G).Rebuild(f.G), K: f.K}
		for _, sp := range spillers {
			want, err := sp.run(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", inst.Name, sp.name, err)
			}
			got, err := sp.run(rebuilt)
			if err != nil {
				t.Fatalf("%s/%s (rebuilt): %v", inst.Name, sp.name, err)
			}
			assertPlansEqual(t, inst.Name+"/"+sp.name, got, want)
		}
	}
}

func assertPlansEqual(t *testing.T, name string, got, want *spill.Plan) {
	t.Helper()
	if len(got.Spilled) != len(want.Spilled) || (len(want.Spilled) > 0 && !reflect.DeepEqual(got.Spilled, want.Spilled)) {
		t.Fatalf("%s: eviction order diverged\n got %v\nwant %v", name, got.Spilled, want.Spilled)
	}
	if got.Cost != want.Cost || got.Rounds != want.Rounds {
		t.Fatalf("%s: cost/rounds diverged: got %d/%d, want %d/%d",
			name, got.Cost, got.Rounds, want.Cost, want.Rounds)
	}
	if !reflect.DeepEqual(got.Coloring, want.Coloring) {
		t.Fatalf("%s: residual coloring diverged\n got %v\nwant %v", name, got.Coloring, want.Coloring)
	}
}

// TestSpillPooledMatchesFreshRebuild recycles ONE Scratch and ONE Plan
// across every pressure-family instance — each rebuilt through the
// map-backed reference — and demands exactly the plans fresh per-call
// state computes on the pristine graphs. Stale masks or degree arrays
// surviving a reuse boundary would move an eviction and fail here.
func TestSpillPooledMatchesFreshRebuild(t *testing.T) {
	fams, err := corpus.Select("ssa-pressure,interval-pressure,er-dense")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20260729, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	s := spill.AcquireScratch()
	defer s.Release()
	plan := new(spill.Plan)
	for _, inst := range insts {
		f := inst.File
		rebuilt := &graph.File{G: mapref.FromGraph(f.G).Rebuild(f.G), K: f.K}

		want, err := spill.Greedy(f, nil)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := s.Greedy(rebuilt, nil, plan); err != nil {
			t.Fatalf("%s (pooled): %v", inst.Name, err)
		}
		assertPlansEqual(t, inst.Name+"/greedy-pooled", plan, want)

		if err := s.Incremental(rebuilt, nil, plan); err != nil {
			t.Fatalf("%s (pooled inc): %v", inst.Name, err)
		}
		assertPlansEqual(t, inst.Name+"/inc-pooled", plan, want)
	}
}
