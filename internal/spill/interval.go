package spill

import (
	"context"
	"fmt"
	"sort"

	"regcoal/internal/graph"
)

// Interval programs: the basic-block case of the spill-everywhere report.
// A straight-line program's live ranges are intervals over instruction
// points; its interference graph is an interval graph whose clique number
// equals the maximum register pressure, so "spill until pressure <= k" is
// exactly "delete intervals until no point is covered more than k times".
// The report proves this case polynomial; GreedyIntervals is Belady's
// furthest-end eviction, optimal in spill count for unit costs.

// Range is one straight-line live range: the half-open interval
// [Start, End) of program points, with a spill cost.
type Range struct {
	ID         int
	Start, End int
	Cost       int64
}

// MaxPressure reports the maximum number of ranges simultaneously live at
// any point.
func MaxPressure(rs []Range) int {
	type event struct {
		at    int
		delta int
	}
	evs := make([]event, 0, 2*len(rs))
	for _, r := range rs {
		if r.End <= r.Start {
			continue
		}
		evs = append(evs, event{r.Start, +1}, event{r.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // ends before starts at the same point
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// GreedyIntervals spills ranges until pressure is at most k everywhere:
// sweeping start points left to right, whenever more than k ranges are
// live it evicts the one reaching furthest (Belady / furthest-first).
// For unit costs the result is optimal in spill count (the classical
// exchange argument); the returned IDs are in eviction order.
func GreedyIntervals(rs []Range, k int) []int {
	if k < 0 {
		k = 0
	}
	order := make([]int, 0, len(rs))
	for i, r := range rs {
		if r.End > r.Start {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rs[order[a]], rs[order[b]]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		if ra.End != rb.End {
			return ra.End < rb.End
		}
		return ra.ID < rb.ID
	})
	var active []int // indices into rs
	var spilled []int
	for _, i := range order {
		r := rs[i]
		// Retire ranges that ended before this start.
		kept := active[:0]
		for _, j := range active {
			if rs[j].End > r.Start {
				kept = append(kept, j)
			}
		}
		active = append(kept, i)
		if len(active) > k {
			// Evict the furthest-ending active range; ties toward the
			// smallest ID keep the sweep deterministic.
			worst := 0
			for j := 1; j < len(active); j++ {
				rj, rw := rs[active[j]], rs[active[worst]]
				if rj.End > rw.End || (rj.End == rw.End && rj.ID < rw.ID) {
					worst = j
				}
			}
			spilled = append(spilled, rs[active[worst]].ID)
			active = append(active[:worst], active[worst+1:]...)
		}
	}
	return spilled
}

// IntervalGraph builds the interference graph of an interval program:
// one vertex per range (vertex i is rs[i]), an edge wherever two ranges
// overlap. Clique number equals MaxPressure, so the graph-level spillers
// apply directly; k-feasibility of the graph is pressure <= k.
func IntervalGraph(rs []Range) *graph.Graph {
	g := graph.New(len(rs))
	for i := range rs {
		g.SetName(graph.V(i), fmt.Sprintf("r%d", rs[i].ID))
		for j := 0; j < i; j++ {
			if rs[i].Start < rs[j].End && rs[j].Start < rs[i].End {
				g.AddEdge(graph.V(i), graph.V(j))
			}
		}
	}
	return g
}

// ExactIntervals finds a minimum-cost spill set for an interval program
// by running the graph-level exact search on its interval graph. It
// returns the spilled range IDs sorted ascending. For unit costs the
// count always matches GreedyIntervals (both are optimal); the sets may
// differ when several optima exist.
func ExactIntervals(rs []Range, k int) ([]int, error) {
	g := IntervalGraph(rs)
	costs := make([]int64, len(rs))
	for i, r := range rs {
		c := r.Cost
		if c <= 0 {
			c = 1
		}
		costs[i] = c
	}
	plan, err := Exact(context.Background(), &graph.File{G: g, K: k}, costs)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(plan.Spilled))
	for _, v := range plan.SortedSpills() {
		out = append(out, rs[v].ID)
	}
	sort.Ints(out)
	return out, nil
}
