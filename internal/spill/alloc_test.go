package spill

// Zero-allocation gate for the pooled graph spillers: once a Scratch is
// warm for a graph size, Greedy and Incremental runs must not touch the
// heap. Under -race the pooled path still runs but the exact count is
// skipped (instrumentation inflates it).

import (
	"math/rand"
	"testing"

	"regcoal/internal/graph"
)

func spillAllocInstance() *graph.File {
	rng := rand.New(rand.NewSource(0x5b111))
	g := graph.RandomER(rng, 150, 0.3)
	g.SetPrecolored(0, 0)
	g.SetPrecolored(2, 1)
	return &graph.File{G: g, K: 9}
}

func TestSpillZeroAllocSteadyState(t *testing.T) {
	f := spillAllocInstance()
	s := AcquireScratch()
	defer s.Release()
	plan := new(Plan)
	if err := s.Greedy(f, nil, plan); err != nil { // warm scratch + plan
		t.Fatal(err)
	}
	if plan.Spills() == 0 {
		t.Fatal("gate instance spills nothing; the kernel would be a no-op")
	}
	wantSpills := plan.Spills()

	for name, run := range map[string]func() error{
		"greedy":      func() error { return s.Greedy(f, nil, plan) },
		"incremental": func() error { return s.Incremental(f, nil, plan) },
	} {
		allocs := testing.AllocsPerRun(25, func() {
			if err := run(); err != nil {
				panic(err)
			}
		})
		if plan.Spills() != wantSpills {
			t.Fatalf("%s: steady-state rerun changed the plan: %d spills != %d", name, plan.Spills(), wantSpills)
		}
		if graph.RaceEnabled {
			t.Logf("%s: race detector active, alloc count (%v) not asserted", name, allocs)
			continue
		}
		if allocs != 0 {
			t.Fatalf("warmed %s spiller allocates %v times per run, want 0", name, allocs)
		}
	}
}
