package spill

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

// checkPlan asserts the plan's invariants against its instance: spilled
// vertices uncolored, survivors properly colored within k, cost summed.
func checkPlan(t *testing.T, f *graph.File, p *Plan) {
	t.Helper()
	g, k := f.G, f.K
	spilled := make(map[graph.V]bool)
	for _, v := range p.Spilled {
		if _, pinned := g.Precolored(v); pinned {
			t.Fatalf("precolored vertex %d spilled", v)
		}
		if spilled[v] {
			t.Fatalf("vertex %d spilled twice", v)
		}
		spilled[v] = true
	}
	if len(p.Coloring) != g.N() {
		t.Fatalf("coloring length %d, want %d", len(p.Coloring), g.N())
	}
	for v := 0; v < g.N(); v++ {
		c := p.Coloring[v]
		if spilled[graph.V(v)] {
			if c != graph.NoColor {
				t.Fatalf("spilled vertex %d colored %d", v, c)
			}
			continue
		}
		if c < 0 || c >= k {
			t.Fatalf("vertex %d color %d outside [0,%d)", v, c, k)
		}
		if pin, ok := g.Precolored(graph.V(v)); ok && c != pin {
			t.Fatalf("vertex %d pinned %d but colored %d", v, pin, c)
		}
	}
	for _, e := range g.Edges() {
		cu, cv := p.Coloring[e[0]], p.Coloring[e[1]]
		if cu != graph.NoColor && cu == cv {
			t.Fatalf("interfering %d,%d share color %d", e[0], e[1], cu)
		}
	}
	var cost int64
	for range p.Spilled {
		cost++
	}
	if p.Cost != cost {
		t.Fatalf("unit cost %d, want %d", p.Cost, cost)
	}
}

func TestGreedyOnColorableGraphSpillsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomChordal(rng, 20, 10, 4)
	k := greedy.ColoringNumber(g)
	plan, err := Greedy(&graph.File{G: g, K: k}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Spilled) != 0 || plan.Rounds != 0 {
		t.Fatalf("spilled %v on a greedy-%d-colorable graph", plan.Spilled, k)
	}
	checkPlan(t, &graph.File{G: g, K: k}, plan)
}

func TestGreedyLowersPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomER(rng, 18+rng.Intn(14), 0.35)
		k := 3
		f := &graph.File{G: g, K: k}
		plan, err := Greedy(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, f, plan)
		if greedy.IsGreedyKColorable(g, k) != (len(plan.Spilled) == 0) {
			t.Fatalf("trial %d: spill count %d inconsistent with colorability", trial, len(plan.Spilled))
		}
	}
}

// The incremental spiller must make exactly the decisions of the rebuild
// spiller — the confluence of greedy elimination is what makes resuming
// from the previous fixpoint sound.
func TestIncrementalMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.RandomER(rng, 15+rng.Intn(25), 0.3)
		case 1:
			g = graph.RandomInterval(rng, 15+rng.Intn(25), 40, 8)
		default:
			g = graph.RandomChordal(rng, 15+rng.Intn(25), 12, 5)
		}
		k := 2 + rng.Intn(4)
		f := &graph.File{G: g, K: k}
		a, err := Greedy(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Incremental(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Spilled, b.Spilled) {
			t.Fatalf("trial %d (k=%d): greedy spilled %v, incremental %v", trial, k, a.Spilled, b.Spilled)
		}
		if !reflect.DeepEqual(a.Coloring, b.Coloring) {
			t.Fatalf("trial %d: colorings differ", trial)
		}
		checkPlan(t, f, b)
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomER(rng, 10+rng.Intn(12), 0.4)
		k := 2 + rng.Intn(3)
		f := &graph.File{G: g, K: k}
		gp, err := Greedy(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := Exact(context.Background(), f, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Dense trials may exhaust the deterministic node budget, in which
		// case the plan is the anytime incumbent and Optimal stays false;
		// the never-worse-than-greedy guarantee holds either way.
		if ep.Cost > gp.Cost {
			t.Fatalf("trial %d: exact cost %d > greedy cost %d", trial, ep.Cost, gp.Cost)
		}
		checkPlan(t, f, ep)
	}
}

func TestExactRespectsCosts(t *testing.T) {
	// A triangle with k=2 must spill exactly one vertex; with skewed
	// costs the optimum is the cheapest one.
	g := graph.New(3)
	g.AddClique(0, 1, 2)
	f := &graph.File{G: g, K: 2}
	plan, err := Exact(context.Background(), f, []int64{10, 10, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Spilled) != 1 || plan.Spilled[0] != 2 || plan.Cost != 1 {
		t.Fatalf("plan = %+v, want vertex 2 at cost 1", plan)
	}
	if !plan.Optimal {
		t.Fatal("completed search must report Optimal")
	}
}

func TestExactEnvelope(t *testing.T) {
	g := graph.New(ExactMaxVertices + 1)
	if _, err := Exact(context.Background(), &graph.File{G: g, K: 2}, nil); err == nil {
		t.Fatal("oversized instance must be rejected")
	}
}

func TestExactCancelledStillReturnsPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomER(rng, 40, 0.5)
	f := &graph.File{G: g, K: 3}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan, err := Exact(ctx, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, f, plan)
	gp, _ := Greedy(f, nil)
	if plan.Cost > gp.Cost {
		t.Fatalf("cancelled exact cost %d worse than greedy %d", plan.Cost, gp.Cost)
	}
}

func TestPrecoloredNeverSpilled(t *testing.T) {
	// K4 with two pinned vertices, k=2: the two free vertices must go.
	g := graph.New(4)
	g.AddClique(0, 1, 2, 3)
	g.SetPrecolored(0, 0)
	g.SetPrecolored(1, 1)
	f := &graph.File{G: g, K: 2}
	for name, run := range map[string]func() (*Plan, error){
		"greedy":      func() (*Plan, error) { return Greedy(f, nil) },
		"incremental": func() (*Plan, error) { return Incremental(f, nil) },
		"exact":       func() (*Plan, error) { return Exact(context.Background(), f, nil) },
	} {
		plan, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(plan.Spilled) != 2 {
			t.Fatalf("%s: spilled %v, want the two unpinned vertices", name, plan.Spilled)
		}
		checkPlan(t, f, plan)
	}
}

func TestNonPositiveCostsRejected(t *testing.T) {
	g := graph.New(3)
	g.AddClique(0, 1, 2)
	f := &graph.File{G: g, K: 2}
	for _, costs := range [][]int64{{1, 1, 0}, {1, -1, 1}} {
		if _, err := Greedy(f, costs); err == nil {
			t.Fatalf("costs %v accepted; non-positive costs break the exact bound", costs)
		}
	}
}

func TestConflictingPrecoloringRejected(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.SetPrecolored(0, 0)
	g.SetPrecolored(1, 0)
	if _, err := Greedy(&graph.File{G: g, K: 2}, nil); err == nil {
		t.Fatal("conflicting precoloring must be rejected")
	}
}

// randomRanges draws n intervals over [0, span).
func randomRanges(rng *rand.Rand, n, span int) []Range {
	rs := make([]Range, n)
	for i := range rs {
		s := rng.Intn(span - 1)
		e := s + 1 + rng.Intn(span-s-1)
		rs[i] = Range{ID: i, Start: s, End: e, Cost: 1}
	}
	return rs
}

// Belady's furthest-end eviction is optimal in spill count for interval
// programs with unit costs — the polynomial basic-block case of the
// spill-everywhere report. The exact search must agree on every instance.
func TestGreedyIntervalsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		rs := randomRanges(rng, 8+rng.Intn(10), 20)
		k := 1 + rng.Intn(4)
		greedySpills := GreedyIntervals(rs, k)
		exactSpills, err := ExactIntervals(rs, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(greedySpills) != len(exactSpills) {
			t.Fatalf("trial %d (k=%d): greedy spills %d (%v), exact %d (%v)",
				trial, k, len(greedySpills), greedySpills, len(exactSpills), exactSpills)
		}
		// Removing the greedy spill set must actually lower pressure to k.
		kept := rs[:0:0]
		dropped := make(map[int]bool)
		for _, id := range greedySpills {
			dropped[id] = true
		}
		for _, r := range rs {
			if !dropped[r.ID] {
				kept = append(kept, r)
			}
		}
		if MaxPressure(kept) > k {
			t.Fatalf("trial %d: residual pressure %d > k=%d", trial, MaxPressure(kept), k)
		}
	}
}

func TestMaxPressure(t *testing.T) {
	rs := []Range{{ID: 0, Start: 0, End: 4}, {ID: 1, Start: 1, End: 3}, {ID: 2, Start: 2, End: 5}, {ID: 3, Start: 4, End: 6}}
	if p := MaxPressure(rs); p != 3 {
		t.Fatalf("pressure = %d, want 3", p)
	}
	if p := MaxPressure(nil); p != 0 {
		t.Fatalf("empty pressure = %d, want 0", p)
	}
	// Back-to-back ranges do not overlap: [0,4) and [4,6).
	g := IntervalGraph(rs)
	if g.HasEdge(0, 3) {
		t.Fatal("touching endpoints must not interfere")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("overlap edges missing")
	}
}

// The IR-level incremental reducer must reproduce ssa.ReduceMaxlive's
// decisions exactly — the incremental liveness update (clear the victim's
// bit everywhere) is a closed form of the recomputed fixpoint.
func TestReduceFuncMatchesReduceMaxlive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		params := ir.DefaultRandomParams()
		params.Vars = 8 + rng.Intn(6)
		params.Blocks = 4 + rng.Intn(5)
		fn := ir.Random(rng, params)
		_, low, err := ssa.Pipeline(fn)
		if err != nil {
			t.Fatal(err)
		}
		k := 3
		a := low.Clone()
		b := low.Clone()
		wantSpills, wantOK := ssa.ReduceMaxlive(a, k)
		gotSpills, gotOK := ReduceFunc(b, k)
		if wantOK != gotOK || !reflect.DeepEqual(wantSpills, gotSpills) {
			t.Fatalf("trial %d: ReduceMaxlive = (%v, %v), ReduceFunc = (%v, %v)",
				trial, wantSpills, wantOK, gotSpills, gotOK)
		}
		if gotOK {
			if ml := ssa.NewLiveness(b).Maxlive(); ml > k {
				t.Fatalf("trial %d: Maxlive %d > k=%d after reduction", trial, ml, k)
			}
		}
	}
}
