package spill

import (
	"context"
	"fmt"
	"sort"

	"regcoal/internal/graph"
)

// ExactMaxVertices bounds the instances Exact admits: the search memoizes
// visited residual sets as 64-bit masks, so larger graphs are rejected
// (callers fall back to Greedy/Incremental, which scale to service-size
// graphs).
const ExactMaxVertices = 64

// ExactDefaultNodes bounds the branch-and-bound tree in Exact. The cap
// is a node count, not a wall clock, so hitting it is deterministic:
// the same instance explores the same prefix of the same tree
// everywhere. Beyond it the search stops and keeps its incumbent
// (Optimal false), exactly as if the context had been cancelled.
// Latency-sensitive callers (the service's portfolio race) pass a
// smaller budget through ExactBudget.
const ExactDefaultNodes = 1 << 18

// ErrEnvelope marks an instance outside Exact's feasibility envelope.
var ErrEnvelope = fmt.Errorf("spill: instance outside exact envelope (> %d vertices)", ExactMaxVertices)

// Exact finds a minimum-cost spill set by branch and bound. Soundness of
// the branching rule: a residual graph that is not greedy-k-colorable
// contains a witness core of minimum degree >= k, and any feasible spill
// set must evict at least one of its non-precolored vertices — so
// branching over exactly the core's members explores every optimum.
//
// The search is anytime: the incumbent is seeded with the Greedy plan, so
// Exact never returns a worse plan than Greedy, and cancelling ctx
// mid-search returns the best plan found so far with Optimal left false.
// A completed search returns Optimal true. Ties between equal-cost spill
// sets are resolved toward the first one found in the deterministic DFS
// order, so results are reproducible.
func Exact(ctx context.Context, f *graph.File, costs []int64) (*Plan, error) {
	return ExactBudget(ctx, f, costs, ExactDefaultNodes)
}

// ExactBudget is Exact with an explicit node budget, trading proof
// strength for bounded latency.
func ExactBudget(ctx context.Context, f *graph.File, costs []int64, maxNodes int) (*Plan, error) {
	if f.G.N() > ExactMaxVertices {
		return nil, ErrEnvelope
	}
	if maxNodes <= 0 {
		maxNodes = ExactDefaultNodes
	}
	incumbent, err := Greedy(f, costs)
	if err != nil {
		return nil, err
	}
	if len(incumbent.Spilled) == 0 {
		incumbent.Optimal = true
		return incumbent, nil // already k-colorable: the empty spill set is optimal
	}
	g, k := f.G, f.K
	n := g.N()
	alive := graph.NewBits(n)
	alive.Fill(n)
	mask := uint64(0)
	for v := 0; v < n; v++ {
		mask |= 1 << uint(v)
	}
	s := &exactSearch{
		ctx:      ctx,
		g:        g,
		k:        k,
		costs:    costs,
		maxNodes: maxNodes,
		bestCost: incumbent.Cost,
		bestSet:  append([]graph.V(nil), incumbent.SortedSpills()...),
		seen:     make(map[uint64]bool),
	}
	s.dfs(alive, mask, nil, 0)
	plan, err := s.plan(f)
	if err != nil {
		return nil, err
	}
	plan.Optimal = !s.cancelled
	return plan, nil
}

type exactSearch struct {
	ctx       context.Context
	g         *graph.Graph
	k         int
	costs     []int64
	maxNodes  int
	bestCost  int64
	bestSet   []graph.V // sorted
	seen      map[uint64]bool
	cancelled bool
	polls     int
}

// dfs explores the residual set alive (= mask). cur is the eviction path,
// curCost its cost.
func (s *exactSearch) dfs(alive graph.Bits, mask uint64, cur []graph.V, curCost int64) {
	if s.cancelled {
		return
	}
	// Poll for cancellation every few nodes and stop at the node budget;
	// the search stays anytime either way.
	s.polls++
	if s.polls >= s.maxNodes {
		s.cancelled = true
		return
	}
	if s.polls%64 == 0 {
		select {
		case <-s.ctx.Done():
			s.cancelled = true
			return
		default:
		}
	}
	if s.seen[mask] {
		return
	}
	s.seen[mask] = true
	remaining := eliminateAlive(s.g, alive, s.k)
	if len(remaining) == 0 {
		if curCost < s.bestCost {
			s.bestCost = curCost
			s.bestSet = sortedCopy(cur)
		}
		return
	}
	// Lower bound: any completion must evict at least one core member.
	minCost := costOf(s.costs, remaining[0])
	for _, v := range remaining[1:] {
		if c := costOf(s.costs, v); c < minCost {
			minCost = c
		}
	}
	if curCost+minCost >= s.bestCost {
		return
	}
	for _, v := range remaining {
		alive.Clear(v)
		s.dfs(alive, mask&^(1<<uint(v)), append(cur, v), curCost+costOf(s.costs, v))
		alive.Set(v)
		if s.cancelled {
			return
		}
	}
}

func sortedCopy(vs []graph.V) []graph.V {
	out := append([]graph.V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// plan materializes the best spill set found.
func (s *exactSearch) plan(f *graph.File) (*Plan, error) {
	alive := graph.NewBits(f.G.N())
	alive.Fill(f.G.N())
	for _, v := range s.bestSet {
		alive.Clear(v)
	}
	return finishPlan(f, alive, s.bestSet, s.costs, len(s.bestSet))
}
