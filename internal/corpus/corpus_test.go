package corpus

import (
	"math/rand"
	"testing"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/spill"
)

func TestFamiliesRegistered(t *testing.T) {
	want := []string{"chordal", "er-dense", "er-sparse", "interval", "interval-pressure", "permutation", "ssa", "ssa-pressure", "ssa-reduced", "tiny"}
	got := FamilyNames()
	if len(got) != len(want) {
		t.Fatalf("families = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("families = %v, want %v", got, want)
		}
	}
	for _, f := range Families() {
		if f.Description == "" || f.Version < 1 || f.Count < f.QuickCount || f.QuickCount < 1 {
			t.Errorf("family %s misconfigured: %+v", f.Name, f)
		}
	}
}

// Shard determinism is the property the engine's parallel reproducibility
// rests on: the same (family, seed, index) must yield the same instance no
// matter what else was generated before it.
func TestShardDeterminism(t *testing.T) {
	p := Params{Seed: 42, Quick: true}
	for _, f := range Families() {
		// Generate shard 2 twice: cold, and after generating shards 0..3.
		lone, err := f.Generate(p, 2)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		all, err := f.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !graph.EqualFiles(lone.File, all[2].File) {
			t.Errorf("%s: shard 2 depends on generation order", f.Name)
		}
		// A different base seed must change the instance (indistinguishable
		// generators would make seed sweeps meaningless).
		other, err := f.Generate(Params{Seed: 43, Quick: true}, 2)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if f.Name != "permutation" && graph.EqualFiles(lone.File, other.File) {
			t.Errorf("%s: seed does not influence shard 2", f.Name)
		}
	}
}

func TestInstancesSane(t *testing.T) {
	p := Params{Seed: 7, Quick: true}
	for _, f := range Families() {
		insts, err := f.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(insts) != f.QuickCount {
			t.Fatalf("%s: %d instances, want %d", f.Name, len(insts), f.QuickCount)
		}
		seen := map[string]bool{}
		for _, inst := range insts {
			if seen[inst.Name] {
				t.Fatalf("%s: duplicate instance name %s", f.Name, inst.Name)
			}
			seen[inst.Name] = true
			if err := inst.File.G.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", f.Name, inst.Name, err)
			}
			if inst.File.K < 2 {
				t.Fatalf("%s/%s: k = %d", f.Name, inst.Name, inst.File.K)
			}
			if inst.File.G.N() == 0 {
				t.Fatalf("%s/%s: empty graph", f.Name, inst.Name)
			}
		}
	}
	// The Figure 3 property of the boosted permutation gadgets: Briggs'
	// local rule rejects every move, yet coalescing all moves at once is
	// safe (the quotient stays greedy-k-colorable).
	perm, _ := Lookup("permutation")
	insts, err := perm.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		g, k := inst.File.G, inst.File.K
		if got := coalesce.Conservative(g, k, coalesce.TestBriggs); len(got.Coalesced) != 0 {
			t.Fatalf("%s: Briggs coalesced %d moves on the Figure 3 trap", inst.Name, len(got.Coalesced))
		}
		pt := graph.NewPartition(g.N())
		for _, a := range g.Affinities() {
			pt.Union(a.X, a.Y)
		}
		q, _, err := graph.Quotient(g, pt)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if !greedy.IsGreedyKColorable(q, k) {
			t.Fatalf("%s: fully coalesced gadget not greedy-%d-colorable", inst.Name, k)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Families()) {
		t.Fatalf("Select(all) = %d families, err %v", len(all), err)
	}
	two, err := Select("chordal, interval")
	if err != nil || len(two) != 2 || two[0].Name != "chordal" || two[1].Name != "interval" {
		t.Fatalf("Select(chordal, interval) = %v, err %v", two, err)
	}
	if _, err := Select("nope"); err == nil {
		t.Fatal("Select(nope) should fail")
	}
	if _, err := Select(" , "); err == nil {
		t.Fatal("Select of empty spec should fail")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	root := t.TempDir()
	p := Params{Seed: 99, Quick: true}
	f, _ := Lookup("interval")
	written, m, err := WriteFamilyDir(root, f, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != len(written) || m.Version != f.Version || m.Seed != 99 {
		t.Fatalf("manifest wrong: %+v", m)
	}
	loaded, m2, err := LoadFamilyDir(root, "interval")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(written) {
		t.Fatalf("loaded %d, want %d", len(loaded), len(written))
	}
	for i := range loaded {
		if !graph.EqualFiles(loaded[i].File, written[i].File) {
			t.Fatalf("instance %s changed across persistence", written[i].Name)
		}
		if loaded[i].Name != written[i].Name || loaded[i].Index != written[i].Index {
			t.Fatalf("metadata changed: %+v vs %+v", loaded[i], written[i])
		}
	}
	if m2.Family != "interval" {
		t.Fatalf("manifest family %q", m2.Family)
	}
}

// The high-pressure families must actually be infeasible before spilling:
// pressure above k is their reason to exist.
func TestPressureFamiliesExceedK(t *testing.T) {
	p := Params{Seed: 20060408, Quick: true}
	for _, name := range []string{"ssa-pressure", "interval-pressure"} {
		f, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing family %s", name)
		}
		insts, err := f.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range insts {
			if greedy.IsGreedyKColorable(inst.File.G, inst.File.K) {
				t.Fatalf("%s is greedy-%d-colorable; pressure families must exceed k",
					inst.Name, inst.File.K)
			}
		}
	}
}

// Acceptance criterion: on the interval-pressure family — the polynomial
// basic-block case of the spill-everywhere report — the greedy
// (furthest-first) and exact spillers agree on the optimal spill count.
// The family's ranges are regenerated from the same shard rng that built
// each instance.
func TestIntervalPressureGreedyMatchesExact(t *testing.T) {
	f, _ := Lookup("interval-pressure")
	p := Params{Seed: 20060408, Quick: true}
	for i := 0; i < f.Size(true); i++ {
		rng := rand.New(rand.NewSource(shardSeed(f.Name, f.Version, p.Seed, i)))
		ranges, k := intervalPressureProgram(rng)
		beladySpills := spill.GreedyIntervals(ranges, k)
		exactSpills, err := spill.ExactIntervals(ranges, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(beladySpills) != len(exactSpills) {
			t.Fatalf("instance %d (k=%d): belady spills %d, exact %d", i, k, len(beladySpills), len(exactSpills))
		}
		// And the instance really was built from these ranges.
		inst, err := f.Generate(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if inst.File.K != k || inst.File.G.N() != len(ranges) {
			t.Fatalf("instance %d does not match its regenerated ranges", i)
		}
	}
}
