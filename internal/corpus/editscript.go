package corpus

// Edit scripts: deterministic per-seed streams of session deltas over a
// base instance, plus a naive reference model that applies them. The
// generator and the model share one evolving-graph state, so every
// generated delta is valid by construction against internal/session's
// batch validation (no duplicate edges, no self-loops, no dead-vertex
// touches, positive weights), and the model's compacted output is the
// ground truth the differential harness compares the session layer's
// incremental solves against.

import (
	"hash/fnv"
	"math/rand"

	"regcoal/internal/graph"
	"regcoal/internal/session"
)

// editModel is the naive evolving-graph reference: session id-space
// (grow-only, dead ids never reused), interference edges and merged
// affinities as maps, k. It is deliberately simple — maps and slices,
// full rebuild on demand — so it cannot share bugs with the session
// layer's pooled incremental machinery.
type editModel struct {
	n     int // id-space size (next fresh id)
	alive []bool
	k     int

	edges map[[2]graph.V]bool
	aff   map[[2]graph.V]int64

	// Dense candidate lists for O(1) sampling; kept in sync with the maps
	// by swap-remove (order is irrelevant — sampling is by index).
	edgeList [][2]graph.V
	edgeIdx  map[[2]graph.V]int
	affList  [][2]graph.V
	affIdx   map[[2]graph.V]int
}

func pair(u, v graph.V) [2]graph.V {
	if u > v {
		u, v = v, u
	}
	return [2]graph.V{u, v}
}

func newEditModel(f *graph.File, k int) *editModel {
	if k <= 0 {
		k = f.K
	}
	n := f.G.N()
	m := &editModel{
		n:       n,
		alive:   make([]bool, n),
		k:       k,
		edges:   make(map[[2]graph.V]bool),
		aff:     make(map[[2]graph.V]int64),
		edgeIdx: make(map[[2]graph.V]int),
		affIdx:  make(map[[2]graph.V]int),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	for _, e := range f.G.Edges() {
		m.putEdge(pair(e[0], e[1]))
	}
	for _, a := range f.G.Affinities() {
		if a.X == a.Y {
			continue
		}
		p := pair(a.X, a.Y)
		if m.aff[p]+a.Weight == 0 {
			m.dropAff(p)
			continue
		}
		if _, ok := m.affIdx[p]; !ok {
			m.affIdx[p] = len(m.affList)
			m.affList = append(m.affList, p)
		}
		m.aff[p] += a.Weight
	}
	return m
}

func (m *editModel) putEdge(p [2]graph.V) {
	if m.edges[p] {
		return
	}
	m.edges[p] = true
	m.edgeIdx[p] = len(m.edgeList)
	m.edgeList = append(m.edgeList, p)
}

func (m *editModel) dropEdge(p [2]graph.V) {
	if !m.edges[p] {
		return
	}
	delete(m.edges, p)
	i := m.edgeIdx[p]
	last := len(m.edgeList) - 1
	m.edgeList[i] = m.edgeList[last]
	m.edgeIdx[m.edgeList[i]] = i
	m.edgeList = m.edgeList[:last]
	delete(m.edgeIdx, p)
}

func (m *editModel) putAff(p [2]graph.V, w int64) {
	if _, ok := m.aff[p]; !ok {
		m.affIdx[p] = len(m.affList)
		m.affList = append(m.affList, p)
	}
	m.aff[p] = w
}

func (m *editModel) dropAff(p [2]graph.V) {
	if _, ok := m.aff[p]; !ok {
		return
	}
	delete(m.aff, p)
	i := m.affIdx[p]
	last := len(m.affList) - 1
	m.affList[i] = m.affList[last]
	m.affIdx[m.affList[i]] = i
	m.affList = m.affList[:last]
	delete(m.affIdx, p)
}

// aliveCount is O(n); the generator calls it rarely (remove_vertex guard).
func (m *editModel) aliveCount() int {
	c := 0
	for _, a := range m.alive {
		if a {
			c++
		}
	}
	return c
}

// randAlive samples one alive vertex, or -1 when none.
func (m *editModel) randAlive(rng *rand.Rand) int {
	for tries := 0; tries < 64; tries++ {
		v := rng.Intn(m.n)
		if m.alive[v] {
			return v
		}
	}
	for v := 0; v < m.n; v++ {
		if m.alive[v] {
			return v
		}
	}
	return -1
}

// apply advances the model by one delta (assumed valid).
func (m *editModel) apply(d *session.Delta) {
	u, v := graph.V(d.U), graph.V(d.V)
	switch d.Op {
	case session.OpAddVertex:
		m.n++
		m.alive = append(m.alive, true)
	case session.OpRemoveVertex:
		m.alive[u] = false
		// Sweep incident edges and affinities off the candidate lists.
		for i := 0; i < len(m.edgeList); {
			p := m.edgeList[i]
			if p[0] == u || p[1] == u {
				m.dropEdge(p)
				continue // swap-remove put a new pair at i
			}
			i++
		}
		for i := 0; i < len(m.affList); {
			p := m.affList[i]
			if p[0] == u || p[1] == u {
				m.dropAff(p)
				continue
			}
			i++
		}
	case session.OpAddEdge:
		m.putEdge(pair(u, v))
	case session.OpRemoveEdge:
		m.dropEdge(pair(u, v))
	case session.OpAddAffinity, session.OpReweightAffinity:
		m.putAff(pair(u, v), d.Weight)
	case session.OpRemoveAffinity:
		m.dropAff(pair(u, v))
	case session.OpSetK:
		m.k = d.K
	}
}

// File compacts the model into a fresh instance: alive vertices
// renumbered densely in id order (order-preserving, so per-component
// solves see the same local instances as the session's id space), K set
// to the model's current k. Edges and affinities are emitted in Go map
// iteration order — deliberately nondeterministic, so a reference solve
// over this file also certifies insensitivity to build order.
func (m *editModel) File() *graph.File {
	old2new := make([]graph.V, m.n)
	next := graph.V(0)
	for v := 0; v < m.n; v++ {
		if m.alive[v] {
			old2new[v] = next
			next++
		} else {
			old2new[v] = -1
		}
	}
	g := graph.New(int(next))
	for p := range m.edges {
		g.AddEdge(old2new[p[0]], old2new[p[1]])
	}
	for p, w := range m.aff {
		g.AddAffinity(old2new[p[0]], old2new[p[1]], w)
	}
	return &graph.File{G: g, K: m.k}
}

// GenEditScript derives a deterministic per-seed edit script of steps
// deltas over base instance f (k overrides f.K when positive): a mix of
// vertex churn, edge flips, affinity add/remove/reweight, and occasional
// k changes, every delta valid against the session layer's batch
// validation at its point in the stream.
func GenEditScript(f *graph.File, k int, seed int64, steps int) []session.Delta {
	rng := rand.New(rand.NewSource(seed))
	m := newEditModel(f, k)
	out := make([]session.Delta, 0, steps)
	emit := func(d session.Delta) {
		m.apply(&d)
		out = append(out, d)
	}
	for len(out) < steps {
		switch op := rng.Intn(20); {
		case op < 3: // add_vertex
			emit(session.Delta{Op: session.OpAddVertex})
		case op < 5: // remove_vertex (keep at least 3 alive)
			if m.aliveCount() <= 3 {
				emit(session.Delta{Op: session.OpAddVertex})
				continue
			}
			if u := m.randAlive(rng); u >= 0 {
				emit(session.Delta{Op: session.OpRemoveVertex, U: u})
			}
		case op < 10: // add_edge between a random non-adjacent alive pair
			var d session.Delta
			ok := false
			for tries := 0; tries < 32; tries++ {
				u, v := m.randAlive(rng), m.randAlive(rng)
				if u < 0 || v < 0 || u == v || m.edges[pair(graph.V(u), graph.V(v))] {
					continue
				}
				d = session.Delta{Op: session.OpAddEdge, U: u, V: v}
				ok = true
				break
			}
			if !ok { // near-clique: flip direction instead
				if len(m.edgeList) == 0 {
					emit(session.Delta{Op: session.OpAddVertex})
					continue
				}
				p := m.edgeList[rng.Intn(len(m.edgeList))]
				d = session.Delta{Op: session.OpRemoveEdge, U: int(p[0]), V: int(p[1])}
			}
			emit(d)
		case op < 13: // remove_edge
			if len(m.edgeList) == 0 {
				emit(session.Delta{Op: session.OpAddVertex})
				continue
			}
			p := m.edgeList[rng.Intn(len(m.edgeList))]
			emit(session.Delta{Op: session.OpRemoveEdge, U: int(p[0]), V: int(p[1])})
		case op < 16: // add_affinity on a fresh alive pair
			added := false
			for tries := 0; tries < 32; tries++ {
				u, v := m.randAlive(rng), m.randAlive(rng)
				if u < 0 || v < 0 || u == v {
					continue
				}
				if _, exists := m.aff[pair(graph.V(u), graph.V(v))]; exists {
					continue
				}
				emit(session.Delta{Op: session.OpAddAffinity, U: u, V: v,
					Weight: 1 + int64(rng.Intn(9))})
				added = true
				break
			}
			if !added {
				emit(session.Delta{Op: session.OpAddVertex})
			}
		case op < 17: // remove_affinity
			if len(m.affList) == 0 {
				emit(session.Delta{Op: session.OpAddVertex})
				continue
			}
			p := m.affList[rng.Intn(len(m.affList))]
			emit(session.Delta{Op: session.OpRemoveAffinity, U: int(p[0]), V: int(p[1])})
		case op < 19: // reweight_affinity
			if len(m.affList) == 0 {
				emit(session.Delta{Op: session.OpAddVertex})
				continue
			}
			p := m.affList[rng.Intn(len(m.affList))]
			emit(session.Delta{Op: session.OpReweightAffinity, U: int(p[0]), V: int(p[1]),
				Weight: 1 + int64(rng.Intn(9))})
		default: // set_k within [2, 6]
			emit(session.Delta{Op: session.OpSetK, K: 2 + rng.Intn(5)})
		}
	}
	return out
}

// ApplyEditScript runs the naive reference model over the script and
// returns the edited instance, compacted to dense alive-vertex ids with K
// set to the final register count. This is the ground truth a fresh solve
// of the edited graph is computed from.
func ApplyEditScript(f *graph.File, k int, deltas []session.Delta) *graph.File {
	m := newEditModel(f, k)
	for i := range deltas {
		m.apply(&deltas[i])
	}
	return m.File()
}

// ScriptSeed derives a deterministic edit-script seed from instance
// content (vertex count, k, edges, affinities), so matrix runners can
// attach a reproducible script to an instance they only see as a
// graph.File.
func ScriptSeed(f *graph.File) int64 {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	wr(uint64(f.G.N()))
	wr(uint64(f.K))
	for _, e := range f.G.Edges() {
		wr(uint64(e[0])<<32 | uint64(e[1]))
	}
	for _, a := range f.G.Affinities() {
		wr(uint64(a.X)<<32 | uint64(a.Y))
		wr(uint64(a.Weight))
	}
	return int64(h.Sum64())
}
