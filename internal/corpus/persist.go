package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"regcoal/internal/graph"
)

// Disk layout: one directory per family holding a manifest plus every
// instance in both serialization formats —
//
//	<root>/<family>/manifest.json
//	<root>/<family>/<name>.graph   native textual format (graph.File)
//	<root>/<family>/<name>.col     DIMACS with regcoal comments
//
// The manifest records the generator version and seed plus a checksum per
// instance, so a loaded corpus can prove it matches what the generator
// would produce today.

// InstanceMeta is one manifest entry.
type InstanceMeta struct {
	Name       string `json:"name"`
	Index      int    `json:"index"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Moves      int    `json:"moves"`
	MoveWeight int64  `json:"move_weight"`
	K          int    `json:"k"`
	// SHA256 is the hex digest of the native serialization.
	SHA256 string `json:"sha256"`
}

// Manifest describes one persisted family.
type Manifest struct {
	Family    string         `json:"family"`
	Version   int            `json:"version"`
	Seed      int64          `json:"seed"`
	Quick     bool           `json:"quick"`
	Instances []InstanceMeta `json:"instances"`
}

// NewManifest summarizes generated instances into a manifest.
func NewManifest(f *Family, p Params, insts []*Instance) (*Manifest, error) {
	m := &Manifest{Family: f.Name, Version: f.Version, Seed: p.Seed, Quick: p.Quick}
	for _, inst := range insts {
		native, err := nativeBytes(inst.File)
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(native)
		m.Instances = append(m.Instances, InstanceMeta{
			Name:       inst.Name,
			Index:      inst.Index,
			Vertices:   inst.File.G.N(),
			Edges:      inst.File.G.E(),
			Moves:      inst.File.G.NumAffinities(),
			MoveWeight: inst.File.G.TotalAffinityWeight(),
			K:          inst.File.K,
			SHA256:     hex.EncodeToString(sum[:]),
		})
	}
	return m, nil
}

func nativeBytes(f *graph.File) ([]byte, error) {
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func dimacsBytes(f *graph.File) ([]byte, error) {
	var buf bytes.Buffer
	if err := graph.WriteDIMACSFile(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFamilyDir generates the family for p and persists it under root,
// returning the instances and manifest.
func WriteFamilyDir(root string, f *Family, p Params) ([]*Instance, *Manifest, error) {
	insts, err := f.Build(p)
	if err != nil {
		return nil, nil, err
	}
	m, err := NewManifest(f, p, insts)
	if err != nil {
		return nil, nil, err
	}
	dir := filepath.Join(root, f.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	for _, inst := range insts {
		native, err := nativeBytes(inst.File)
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, inst.Name+".graph"), native, 0o644); err != nil {
			return nil, nil, err
		}
		col, err := dimacsBytes(inst.File)
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, inst.Name+".col"), col, 0o644); err != nil {
			return nil, nil, err
		}
	}
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, nil, err
	}
	mj = append(mj, '\n')
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mj, 0o644); err != nil {
		return nil, nil, err
	}
	return insts, m, nil
}

// LoadFamilyDir loads a persisted family from root, verifying each
// instance's checksum against the manifest and the agreement of the two
// serialization formats.
func LoadFamilyDir(root, family string) ([]*Instance, *Manifest, error) {
	dir := filepath.Join(root, family)
	mj, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, err
	}
	var m Manifest
	if err := json.Unmarshal(mj, &m); err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: bad manifest: %w", family, err)
	}
	if m.Family != family {
		return nil, nil, fmt.Errorf("corpus: manifest family %q does not match directory %q", m.Family, family)
	}
	var insts []*Instance
	for _, meta := range m.Instances {
		native, err := os.ReadFile(filepath.Join(dir, meta.Name+".graph"))
		if err != nil {
			return nil, nil, err
		}
		sum := sha256.Sum256(native)
		if got := hex.EncodeToString(sum[:]); got != meta.SHA256 {
			return nil, nil, fmt.Errorf("corpus: %s/%s: checksum mismatch (corpus regenerated with a different generator version?)", family, meta.Name)
		}
		f, err := graph.ReadFrom(bytes.NewReader(native))
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s/%s: %w", family, meta.Name, err)
		}
		col, err := os.ReadFile(filepath.Join(dir, meta.Name+".col"))
		if err != nil {
			return nil, nil, err
		}
		df, err := graph.ReadDIMACSFile(bytes.NewReader(col))
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s/%s.col: %w", family, meta.Name, err)
		}
		if !graph.EqualFiles(f, df) {
			return nil, nil, fmt.Errorf("corpus: %s/%s: native and DIMACS serializations disagree", family, meta.Name)
		}
		insts = append(insts, &Instance{Family: family, Index: meta.Index, Name: meta.Name, File: f})
	}
	return insts, &m, nil
}
