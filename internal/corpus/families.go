package corpus

import (
	"fmt"
	"math/rand"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/spill"
	"regcoal/internal/ssa"
)

// The standard families. Counts are sized so the full strategy matrix over
// "all" finishes in seconds; Quick counts keep CI smoke runs under a
// second. Version bumps whenever a generator change alters output for a
// fixed seed.

func init() {
	register(&Family{
		Name:        "ssa",
		Description: "random mini-IR programs through SSA construction and out-of-SSA lowering",
		Version:     1,
		Count:       24,
		QuickCount:  4,
		gen:         genSSA(false),
	})
	register(&Family{
		Name:        "ssa-reduced",
		Description: "SSA-derived programs with register pressure pre-reduced to k (two-phase spilling)",
		Version:     1,
		Count:       24,
		QuickCount:  4,
		gen:         genSSA(true),
	})
	register(&Family{
		Name:        "chordal",
		Description: "random chordal graphs (subtree intersection) with sprinkled affinities",
		Version:     1,
		Count:       24,
		QuickCount:  4,
		gen: func(rng *rand.Rand, index int) (*graph.File, error) {
			// Tight pressure: k = col(G), the regime where conservative
			// coalescing has room to act but no slack (cf. the T5G sweep).
			n := 20 + rng.Intn(30)
			g := graph.RandomChordal(rng, n, n/2+1, 4)
			graph.SprinkleAffinities(rng, g, n, 8)
			return &graph.File{G: g, K: tightK(g)}, nil
		},
	})
	register(&Family{
		Name:        "interval",
		Description: "random interval graphs (straight-line live ranges) with sprinkled affinities",
		Version:     1,
		Count:       24,
		QuickCount:  4,
		gen: func(rng *rand.Rand, index int) (*graph.File, error) {
			n := 20 + rng.Intn(30)
			g := graph.RandomInterval(rng, n, 2*n, 6)
			graph.SprinkleAffinities(rng, g, n, 8)
			return &graph.File{G: g, K: tightK(g)}, nil
		},
	})
	register(&Family{
		Name:        "permutation",
		Description: "boosted Figure 3 permutation gadgets: parallel copies whose moves local conservative rules reject",
		Version:     1,
		Count:       8,
		QuickCount:  3,
		gen: func(rng *rand.Rand, index int) (*graph.File, error) {
			g, k, _ := coalesce.Fig3Permutation(3 + index%3)
			return &graph.File{G: g, K: k}, nil
		},
	})
	register(&Family{
		Name:        "ssa-pressure",
		Description: "MAXLIVE-boosted SSA programs whose pressure exceeds k: infeasible until spilled",
		Version:     1,
		Count:       16,
		QuickCount:  3,
		gen:         genSSAPressure,
	})
	register(&Family{
		Name:        "interval-pressure",
		Description: "interval programs with pressure above k: the polynomial spill-everywhere case",
		Version:     1,
		Count:       16,
		QuickCount:  3,
		gen: func(rng *rand.Rand, index int) (*graph.File, error) {
			ranges, k := intervalPressureProgram(rng)
			g := spill.IntervalGraph(ranges)
			graph.SprinkleAffinities(rng, g, len(ranges)/2, 6)
			return &graph.File{G: g, K: k}, nil
		},
	})
	register(&Family{
		Name:        "tiny",
		Description: "small random instances inside the exact solver's envelope, for ground-truth comparisons",
		Version:     1,
		Count:       16,
		QuickCount:  3,
		gen: func(rng *rand.Rand, index int) (*graph.File, error) {
			n := 10 + rng.Intn(8)
			g := graph.RandomER(rng, n, 0.25)
			graph.SprinkleAffinities(rng, g, 10, 8)
			return &graph.File{G: g, K: tightK(g)}, nil
		},
	})
	register(&Family{
		Name:        "er-sparse",
		Description: "sparse Erdős–Rényi graphs (p=0.08) with sprinkled affinities",
		Version:     1,
		Count:       16,
		QuickCount:  3,
		gen:         genER(0.08),
	})
	register(&Family{
		Name:        "er-dense",
		Description: "dense Erdős–Rényi graphs (p=0.30) with sprinkled affinities",
		Version:     1,
		Count:       16,
		QuickCount:  3,
		gen:         genER(0.30),
	})
}

// genSSA derives an instance from a random program pushed through the SSA
// pipeline. With reduce set, register pressure is first lowered to k by
// spill-everywhere — the aggressive-spilling two-phase setting in which
// the paper observes that conservative coalescing struggles. Pressure
// reduction can fail for an unlucky program, so the generator retries with
// fresh draws from the shard's own rng; the retry loop consumes only that
// rng, keeping the shard deterministic.
func genSSA(reduce bool) func(rng *rand.Rand, index int) (*graph.File, error) {
	return func(rng *rand.Rand, index int) (*graph.File, error) {
		const k = 6
		for attempt := 0; attempt < 100; attempt++ {
			params := ir.DefaultRandomParams()
			params.Vars = 5 + rng.Intn(6)
			params.Blocks = 4 + rng.Intn(6)
			fn := ir.Random(rng, params)
			_, low, err := ssa.Pipeline(fn)
			if err != nil {
				return nil, err
			}
			if reduce {
				if _, ok := ssa.ReduceMaxlive(low, k); !ok {
					continue
				}
			}
			g, _ := ssa.BuildInterference(low)
			return &graph.File{G: g, K: k}, nil
		}
		return nil, fmt.Errorf("pressure reduction to %d failed after 100 attempts", k)
	}
}

// genSSAPressure derives a high-pressure instance: a variable-rich random
// program pushed through the SSA pipeline whose interference graph is NOT
// greedy-k-colorable at the family's k — the MAXLIVE > k regime that is
// infeasible for every pure coalescing strategy and exists to exercise
// the spill subsystem (internal/spill). The generator retries from the
// shard's own rng until pressure genuinely exceeds k, so the instance
// stays deterministic per shard.
func genSSAPressure(rng *rand.Rand, index int) (*graph.File, error) {
	const k = 4
	for attempt := 0; attempt < 100; attempt++ {
		params := ir.DefaultRandomParams()
		params.Vars = 12 + rng.Intn(7)
		params.Blocks = 5 + rng.Intn(5)
		fn := ir.Random(rng, params)
		_, low, err := ssa.Pipeline(fn)
		if err != nil {
			return nil, err
		}
		g, _ := ssa.BuildInterference(low)
		if greedy.IsGreedyKColorable(g, k) {
			continue // not enough pressure; redraw
		}
		return &graph.File{G: g, K: k}, nil
	}
	return nil, fmt.Errorf("no instance with pressure above %d after 100 attempts", k)
}

// intervalPressureProgram draws an interval program whose maximum
// pressure strictly exceeds the returned k. Exported to the package's
// tests through this helper so the exact-vs-greedy spill-count agreement
// can be checked against the very ranges each corpus instance was built
// from.
func intervalPressureProgram(rng *rand.Rand) ([]spill.Range, int) {
	for {
		n := 14 + rng.Intn(10)
		span := 2 * n
		ranges := make([]spill.Range, n)
		for i := range ranges {
			s := rng.Intn(span - 1)
			e := s + 1 + rng.Intn(span-s-1)
			ranges[i] = spill.Range{ID: i, Start: s, End: e, Cost: 1}
		}
		pressure := spill.MaxPressure(ranges)
		if pressure < 4 {
			continue // too flat to be interesting; redraw
		}
		k := 2 + rng.Intn(pressure-3) // 2 <= k <= pressure-2
		return ranges, k
	}
}

// tightK is col(G) clamped to at least 2 — the tight-pressure register
// count used by the synthetic families.
func tightK(g *graph.Graph) int {
	if k := greedy.ColoringNumber(g); k > 2 {
		return k
	}
	return 2
}

func genER(p float64) func(rng *rand.Rand, index int) (*graph.File, error) {
	return func(rng *rand.Rand, index int) (*graph.File, error) {
		n := 20 + rng.Intn(25)
		g := graph.RandomER(rng, n, p)
		graph.SprinkleAffinities(rng, g, n, 8)
		return &graph.File{G: g, K: 6}, nil
	}
}
