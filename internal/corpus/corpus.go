// Package corpus defines named, versioned families of register-coalescing
// instances — the benchmark substrate the paper's conclusion calls for
// (the Appel–George "coalescing challenge" at corpus scale). A Family is a
// deterministic instance generator: given a base seed, instance i of a
// family is always the same graph, independently of generation order or
// parallelism, because every instance draws from its own rng seeded by
// hashing (family, version, base seed, index). That per-shard seeding is
// what lets the execution engine (internal/engine) generate and evaluate
// shards concurrently while keeping results bit-reproducible.
//
// Families cover the instance classes the paper's complexity map is
// parameterized by: SSA-derived programs (via internal/ir + internal/ssa),
// chordal and interval synthetics, the Figure 3 permutation gadgets, and
// dense/sparse random graphs. Instances persist to disk in both the native
// graph.File format and DIMACS .col (see persist.go).
package corpus

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"regcoal/internal/graph"
)

// Instance is one corpus instance: a coalescing problem (graph + register
// count) with its provenance.
type Instance struct {
	// Family is the generating family's name; Index its shard index.
	Family string
	Index  int
	// Name is unique within the family and filesystem-safe.
	Name string
	// File is the instance itself.
	File *graph.File
}

// Params parameterizes corpus generation.
type Params struct {
	// Seed is the base seed; every (family, index) derives its own rng
	// from it.
	Seed int64
	// Quick shrinks family sizes to test/CI-friendly counts.
	Quick bool
}

// Family is a named, versioned deterministic instance generator.
type Family struct {
	// Name identifies the family (flag values, directory names).
	Name string
	// Description is a one-line summary for listings and docs.
	Description string
	// Version changes whenever the generator's output changes for a given
	// seed, invalidating persisted corpora built from older versions.
	Version int
	// Count and QuickCount are the default instance counts.
	Count, QuickCount int
	// gen builds instance i from its private rng.
	gen func(rng *rand.Rand, index int) (*graph.File, error)
}

// Size reports the instance count for the given mode.
func (f *Family) Size(quick bool) int {
	if quick {
		return f.QuickCount
	}
	return f.Count
}

// shardSeed derives the rng seed of one shard by FNV-1a hashing the family
// identity, base seed and index. Instances are therefore independent of
// generation order — shard 7 is the same graph whether generated alone, in
// sequence, or on 8 goroutines.
func shardSeed(family string, version int, base int64, index int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", family, version, base, index)
	return int64(h.Sum64())
}

// Generate builds instance index of the family.
func (f *Family) Generate(p Params, index int) (*Instance, error) {
	rng := rand.New(rand.NewSource(shardSeed(f.Name, f.Version, p.Seed, index)))
	file, err := f.gen(rng, index)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s[%d]: %w", f.Name, index, err)
	}
	file.G.NormalizeAffinities()
	return &Instance{
		Family: f.Name,
		Index:  index,
		Name:   fmt.Sprintf("%s-%04d", f.Name, index),
		File:   file,
	}, nil
}

// Build generates the family's full instance set for the given params.
func (f *Family) Build(p Params) ([]*Instance, error) {
	out := make([]*Instance, f.Size(p.Quick))
	for i := range out {
		inst, err := f.Generate(p, i)
		if err != nil {
			return nil, err
		}
		out[i] = inst
	}
	return out, nil
}

var registry = map[string]*Family{}

// register adds a family; duplicates panic (registration happens in this
// package's init).
func register(f *Family) {
	if _, dup := registry[f.Name]; dup {
		panic("corpus: duplicate family " + f.Name)
	}
	registry[f.Name] = f
}

// Families returns all registered families sorted by name.
func Families() []*Family {
	out := make([]*Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a family by name.
func Lookup(name string) (*Family, bool) {
	f, ok := registry[name]
	return f, ok
}

// Select resolves a comma-separated family list ("all" for every family)
// into families, in listed order (sorted for "all").
func Select(spec string) ([]*Family, error) {
	if spec == "" || spec == "all" {
		return Families(), nil
	}
	var out []*Family
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("corpus: unknown family %q (have: %s)", name, strings.Join(FamilyNames(), ", "))
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("corpus: empty family selection %q", spec)
	}
	return out, nil
}

// FamilyNames lists registered family names in sorted order.
func FamilyNames() []string {
	fams := Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// BuildAll generates every selected family, returning instances grouped in
// family order.
func BuildAll(fams []*Family, p Params) ([]*Instance, error) {
	var out []*Instance
	for _, f := range fams {
		insts, err := f.Build(p)
		if err != nil {
			return nil, err
		}
		out = append(out, insts...)
	}
	return out, nil
}
