package ir

import (
	"fmt"
	"math/rand"
)

// RandomParams controls random program generation.
type RandomParams struct {
	// Vars is the number of source-level variables; all are defined in the
	// entry block, so every program is strict.
	Vars int
	// Blocks is the approximate number of basic blocks.
	Blocks int
	// InstrsPerBlock is the expected straight-line length per block.
	InstrsPerBlock int
	// BranchProb is the probability that a block ends in a two-way branch
	// (otherwise it falls through); back edges appear with probability
	// BackProb per branch target.
	BranchProb, BackProb float64
}

// DefaultRandomParams returns a reasonable mid-size program shape.
func DefaultRandomParams() RandomParams {
	return RandomParams{
		Vars:           8,
		Blocks:         8,
		InstrsPerBlock: 5,
		BranchProb:     0.5,
		BackProb:       0.25,
	}
}

// Random generates a random strict (non-SSA) function: every variable is
// defined in the entry block, then blocks mutate and use variables at
// random. The CFG is a chain with random forward branch targets and
// occasional back edges, so it contains joins and loops — the shapes that
// make SSA φs and out-of-SSA moves appear. A final block uses every
// variable so that live ranges extend across the CFG.
func Random(rng *rand.Rand, p RandomParams) *Func {
	if p.Vars < 1 || p.Blocks < 1 {
		panic("ir: RandomParams need at least one variable and block")
	}
	f := NewFunc("random")
	vars := make([]Reg, p.Vars)
	for i := range vars {
		vars[i] = f.NewNamedReg(fmt.Sprintf("x%d", i))
		f.Entry().Def(vars[i])
	}
	// Body blocks in a chain; each may also jump forward to a random later
	// block or back to a random earlier one.
	blocks := []*Block{f.Entry()}
	for i := 1; i < p.Blocks; i++ {
		blocks = append(blocks, f.NewBlock(fmt.Sprintf("b%d", i)))
	}
	exit := f.NewBlock("exit")
	for i, b := range blocks {
		// Straight-line body: random defs/moves/uses over the variables.
		n := 1 + rng.Intn(2*p.InstrsPerBlock)
		for j := 0; j < n; j++ {
			switch rng.Intn(4) {
			case 0: // redefinition from two operands
				dst := vars[rng.Intn(len(vars))]
				a := vars[rng.Intn(len(vars))]
				c := vars[rng.Intn(len(vars))]
				b.Def(dst, a, c)
			case 1: // move
				dst := vars[rng.Intn(len(vars))]
				src := vars[rng.Intn(len(vars))]
				if dst != src {
					b.Move(dst, src)
				}
			case 2: // pure def
				b.Def(vars[rng.Intn(len(vars))])
			default: // use
				b.Use(vars[rng.Intn(len(vars))])
			}
		}
		// Wire control flow.
		next := exit
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		f.AddEdge(b, next)
		if rng.Float64() < p.BranchProb {
			if rng.Float64() < p.BackProb && i > 0 {
				// Back edge to a random earlier block: a loop.
				f.AddEdge(b, blocks[rng.Intn(i+1)])
			} else if i+2 < len(blocks) {
				// Forward skip: a join at the target.
				target := blocks[i+2+rng.Intn(len(blocks)-i-2)]
				f.AddEdge(b, target)
			} else {
				f.AddEdge(b, exit)
			}
		}
	}
	for _, v := range vars {
		exit.Use(v)
	}
	return f
}

// Diamond builds the canonical if-then-else join: entry defines a and b,
// the two arms redefine c differently, and the join uses everything. Its
// SSA form needs a φ for c, and going out of SSA inserts the moves the
// paper's coalescing problems start from.
func Diamond() *Func {
	f := NewFunc("diamond")
	a := f.NewNamedReg("a")
	b := f.NewNamedReg("b")
	c := f.NewNamedReg("c")
	f.Entry().Def(a)
	f.Entry().Def(b)
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	join := f.NewBlock("join")
	f.AddEdge(f.Entry(), left)
	f.AddEdge(f.Entry(), right)
	f.AddEdge(left, join)
	f.AddEdge(right, join)
	left.Def(c, a)
	right.Def(c, b)
	join.Use(c)
	join.Use(a)
	return f
}

// Loop builds a counted-loop shape: entry defines i and s, the body
// redefines both (s = s + i, i = i + 1), and the exit uses s. Its SSA form
// needs φs at the loop header.
func Loop() *Func {
	f := NewFunc("loop")
	i := f.NewNamedReg("i")
	s := f.NewNamedReg("s")
	f.Entry().Def(i)
	f.Entry().Def(s)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.AddEdge(f.Entry(), head)
	f.AddEdge(head, body)
	f.AddEdge(head, exit)
	f.AddEdge(body, head)
	head.Use(i)
	body.Def(s, s, i)
	body.Def(i, i)
	exit.Use(s)
	return f
}

// Swap builds the classic swap loop that exhibits the φ-cyclic "swap
// problem" of out-of-SSA translation: a loop whose body exchanges two
// variables. Its lowering requires a cycle-breaking temporary in the
// parallel copy.
func Swap() *Func {
	f := NewFunc("swap")
	a := f.NewNamedReg("a")
	b := f.NewNamedReg("b")
	f.Entry().Def(a)
	f.Entry().Def(b)
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.AddEdge(f.Entry(), head)
	f.AddEdge(head, body)
	f.AddEdge(head, exit)
	f.AddEdge(body, head)
	head.Use(a)
	head.Use(b)
	// Exchange a and b through a temp at source level.
	t := f.NewNamedReg("t")
	body.Move(t, a)
	body.Move(a, b)
	body.Move(b, t)
	exit.Use(a)
	exit.Use(b)
	return f
}
