// Package ir defines a miniature compiler intermediate representation:
// functions of basic blocks holding three-address instructions over virtual
// registers, with φ instructions for SSA form. It is the substrate on which
// the paper's SSA results (Theorem 1) and the out-of-SSA coalescing
// problems are reproduced.
package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register id. NoReg marks "no destination".
type Reg int

// NoReg is the absent register.
const NoReg Reg = -1

// Op is an instruction opcode.
type Op int

const (
	// OpDef is a generic computation: Dst = op(Args...). It stands in for
	// any arithmetic the paper's programs would contain.
	OpDef Op = iota
	// OpMove is a register-to-register copy: Dst = Args[0]. Moves are what
	// coalescing removes.
	OpMove
	// OpPhi is an SSA φ: Dst = φ(Args...), Args aligned with the block's
	// predecessors.
	OpPhi
	// OpUse consumes Args without producing a value (a store or a use by a
	// side effect); it keeps live ranges honest.
	OpUse
	// OpLoad reloads a spilled value from a stack slot: Dst = load Slot.
	OpLoad
	// OpStore spills Args[0] to a stack slot.
	OpStore
)

// String names the opcode.
func (o Op) String() string {
	switch o {
	case OpDef:
		return "def"
	case OpMove:
		return "move"
	case OpPhi:
		return "phi"
	case OpUse:
		return "use"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	Op   Op
	Dst  Reg
	Args []Reg
	// Slot is the stack slot of OpLoad/OpStore.
	Slot int
}

// Block is a basic block: φs first, then straight-line code. Control flow
// lives on the function (Succs/Preds by block index).
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Succs  []int
	Preds  []int
}

// Func is a function: Blocks[0] is the entry.
type Func struct {
	Name    string
	Blocks  []*Block
	NumRegs int
	// regNames holds optional debug names per register.
	regNames []string
}

// NewFunc returns an empty function with an entry block.
func NewFunc(name string) *Func {
	f := &Func{Name: name}
	f.NewBlock("entry")
	return f
}

// NewBlock appends a block and returns it.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	f.regNames = append(f.regNames, "")
	return r
}

// NewNamedReg allocates a fresh register with a debug name.
func (f *Func) NewNamedReg(name string) Reg {
	r := f.NewReg()
	f.regNames[r] = name
	return r
}

// RegName renders a register for listings.
func (f *Func) RegName(r Reg) string {
	if r == NoReg {
		return "_"
	}
	if int(r) < len(f.regNames) && f.regNames[r] != "" {
		return f.regNames[r]
	}
	return fmt.Sprintf("v%d", int(r))
}

// SetRegName assigns a debug name.
func (f *Func) SetRegName(r Reg, name string) {
	for int(r) >= len(f.regNames) {
		f.regNames = append(f.regNames, "")
	}
	f.regNames[r] = name
}

// AddEdge wires a CFG edge from a to b.
func (f *Func) AddEdge(a, b *Block) {
	for _, s := range a.Succs {
		if s == b.ID {
			return
		}
	}
	a.Succs = append(a.Succs, b.ID)
	b.Preds = append(b.Preds, a.ID)
}

// Def appends Dst = op(Args...).
func (b *Block) Def(dst Reg, args ...Reg) {
	b.Instrs = append(b.Instrs, Instr{Op: OpDef, Dst: dst, Args: args})
}

// Move appends Dst = Src.
func (b *Block) Move(dst, src Reg) {
	b.Instrs = append(b.Instrs, Instr{Op: OpMove, Dst: dst, Args: []Reg{src}})
}

// Use appends a value-consuming instruction.
func (b *Block) Use(args ...Reg) {
	b.Instrs = append(b.Instrs, Instr{Op: OpUse, Args: args, Dst: NoReg})
}

// Phi prepends/appends Dst = φ(Args...); callers must keep φs first.
func (b *Block) Phi(dst Reg, args ...Reg) {
	b.Instrs = append(b.Instrs, Instr{Op: OpPhi, Dst: dst, Args: args})
}

// Clone deep-copies the function.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:     f.Name,
		NumRegs:  f.NumRegs,
		regNames: append([]string(nil), f.regNames...),
	}
	for _, b := range f.Blocks {
		nb := &Block{
			ID:    b.ID,
			Name:  b.Name,
			Succs: append([]int(nil), b.Succs...),
			Preds: append([]int(nil), b.Preds...),
		}
		for _, ins := range b.Instrs {
			nb.Instrs = append(nb.Instrs, Instr{
				Op: ins.Op, Dst: ins.Dst, Slot: ins.Slot,
				Args: append([]Reg(nil), ins.Args...),
			})
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// Verify checks structural invariants: edge symmetry, φs first and with one
// argument per predecessor, register ids in range.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: no blocks")
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("ir: block %d has ID %d", i, b.ID)
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("ir: block %s has bad successor %d", b.Name, s)
			}
			found := false
			for _, p := range f.Blocks[s].Preds {
				if p == b.ID {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("ir: edge %s->%s not symmetric", b.Name, f.Blocks[s].Name)
			}
		}
		phiZone := true
		for j, ins := range b.Instrs {
			if ins.Op == OpPhi {
				if !phiZone {
					return fmt.Errorf("ir: φ after non-φ in block %s", b.Name)
				}
				if len(ins.Args) != len(b.Preds) {
					return fmt.Errorf("ir: φ in %s has %d args for %d preds", b.Name, len(ins.Args), len(b.Preds))
				}
			} else {
				phiZone = false
			}
			if ins.Dst != NoReg && (ins.Dst < 0 || int(ins.Dst) >= f.NumRegs) {
				return fmt.Errorf("ir: block %s instr %d dst out of range", b.Name, j)
			}
			for _, a := range ins.Args {
				if a < 0 || int(a) >= f.NumRegs {
					return fmt.Errorf("ir: block %s instr %d arg out of range", b.Name, j)
				}
			}
			switch ins.Op {
			case OpMove:
				if len(ins.Args) != 1 || ins.Dst == NoReg {
					return fmt.Errorf("ir: malformed move in %s", b.Name)
				}
			case OpUse, OpStore:
				if ins.Dst != NoReg {
					return fmt.Errorf("ir: %s with destination in %s", ins.Op, b.Name)
				}
			case OpLoad:
				if ins.Dst == NoReg {
					return fmt.Errorf("ir: load without destination in %s", b.Name)
				}
			}
		}
	}
	return nil
}

// CountMoves reports the number of move instructions.
func (f *Func) CountMoves() int {
	n := 0
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == OpMove {
				n++
			}
		}
	}
	return n
}

// String renders a listing.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d regs)\n", f.Name, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b.Name)
		if len(b.Preds) > 0 {
			fmt.Fprintf(&sb, " ; preds:")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " %s", f.Blocks[p].Name)
			}
		}
		sb.WriteString("\n")
		for _, ins := range b.Instrs {
			sb.WriteString("  ")
			switch ins.Op {
			case OpPhi:
				fmt.Fprintf(&sb, "%s = φ(", f.RegName(ins.Dst))
				for i, a := range ins.Args {
					if i > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(f.RegName(a))
				}
				sb.WriteString(")")
			case OpMove:
				fmt.Fprintf(&sb, "%s = %s", f.RegName(ins.Dst), f.RegName(ins.Args[0]))
			case OpDef:
				fmt.Fprintf(&sb, "%s = def(", f.RegName(ins.Dst))
				for i, a := range ins.Args {
					if i > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(f.RegName(a))
				}
				sb.WriteString(")")
			case OpUse:
				sb.WriteString("use(")
				for i, a := range ins.Args {
					if i > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(f.RegName(a))
				}
				sb.WriteString(")")
			case OpLoad:
				fmt.Fprintf(&sb, "%s = load [%d]", f.RegName(ins.Dst), ins.Slot)
			case OpStore:
				fmt.Fprintf(&sb, "store [%d], %s", ins.Slot, f.RegName(ins.Args[0]))
			}
			sb.WriteString("\n")
		}
		if len(b.Succs) > 0 {
			sb.WriteString("  -> ")
			for i, s := range b.Succs {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(f.Blocks[s].Name)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
