package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	f := NewFunc("t")
	a := f.NewNamedReg("a")
	b := f.NewReg()
	f.Entry().Def(a)
	f.Entry().Move(b, a)
	blk := f.NewBlock("next")
	f.AddEdge(f.Entry(), blk)
	blk.Use(b)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if f.CountMoves() != 1 {
		t.Fatalf("moves=%d", f.CountMoves())
	}
	if f.RegName(a) != "a" || f.RegName(b) != "v1" || f.RegName(NoReg) != "_" {
		t.Fatalf("names: %q %q %q", f.RegName(a), f.RegName(b), f.RegName(NoReg))
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	f := NewFunc("t")
	b := f.NewBlock("b")
	f.AddEdge(f.Entry(), b)
	f.AddEdge(f.Entry(), b)
	if len(f.Entry().Succs) != 1 || len(b.Preds) != 1 {
		t.Fatal("duplicate edge added")
	}
}

func TestVerifyCatchesMalformed(t *testing.T) {
	// φ after non-φ.
	f := NewFunc("t")
	r := f.NewReg()
	f.Entry().Def(r)
	f.Entry().Phi(r, r)
	if f.Verify() == nil {
		t.Fatal("φ after non-φ accepted")
	}
	// φ arg count mismatch.
	f2 := NewFunc("t")
	r2 := f2.NewReg()
	f2.Entry().Phi(r2, r2, r2) // entry has no preds
	if f2.Verify() == nil {
		t.Fatal("φ arity mismatch accepted")
	}
	// Out-of-range register.
	f3 := NewFunc("t")
	f3.Entry().Def(Reg(7))
	if f3.Verify() == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFunc("t")
	r := f.NewReg()
	f.Entry().Def(r)
	g := f.Clone()
	g.Entry().Use(r)
	g.NewReg()
	if len(f.Entry().Instrs) != 1 || f.NumRegs != 1 {
		t.Fatal("clone mutated original")
	}
}

func TestStringListing(t *testing.T) {
	f := Diamond()
	s := f.String()
	for _, want := range []string{"func diamond", "entry:", "join:", "use(c)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("listing missing %q:\n%s", want, s)
		}
	}
}

func TestFixtureShapes(t *testing.T) {
	for _, f := range []*Func{Diamond(), Loop(), Swap()} {
		if err := f.Verify(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	if Swap().CountMoves() != 3 {
		t.Fatal("swap fixture should contain 3 moves")
	}
}

func TestQuickRandomProgramsVerify(t *testing.T) {
	f := func(seed int64, varsRaw, blocksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := DefaultRandomParams()
		p.Vars = int(varsRaw%10) + 1
		p.Blocks = int(blocksRaw%10) + 1
		fn := Random(rng, p)
		return fn.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	p := DefaultRandomParams()
	a := Random(rand.New(rand.NewSource(5)), p)
	b := Random(rand.New(rand.NewSource(5)), p)
	if a.String() != b.String() {
		t.Fatal("same seed should give same program")
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{OpDef, OpMove, OpPhi, OpUse, OpLoad, OpStore}
	seen := map[string]bool{}
	for _, o := range ops {
		s := o.String()
		if s == "" || seen[s] {
			t.Fatalf("bad op name %q", s)
		}
		seen[s] = true
	}
}
