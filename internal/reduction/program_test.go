package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/ir"
	"regcoal/internal/mwc"
	"regcoal/internal/ssa"
)

// The generated program's interference graph matches the abstract
// Figure 1 instance: interferences are exactly the terminal clique, and
// the affinities are exactly the two halves of each subdivided edge.
func TestBuildProgramMatchesAbstractInstance(t *testing.T) {
	src := graph.NewNamed("s1", "s2", "s3", "u", "v")
	src.AddEdge(0, 3)
	src.AddEdge(3, 4)
	src.AddEdge(4, 1)
	src.AddEdge(0, 2) // terminal-terminal edge
	in := &mwc.Instance{G: src, Terminals: []graph.V{0, 1, 2}}

	f, regOf := BuildProgram(in)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	g, _ := ssa.BuildInterference(f)

	// Interferences: exactly the terminal triangle (register ids of the
	// terminals).
	wantEdges := map[[2]graph.V]bool{}
	for i := 0; i < len(in.Terminals); i++ {
		for j := i + 1; j < len(in.Terminals); j++ {
			a := graph.V(regOf[in.Terminals[i]])
			b := graph.V(regOf[in.Terminals[j]])
			if a > b {
				a, b = b, a
			}
			wantEdges[[2]graph.V{a, b}] = true
		}
	}
	gotEdges := g.Edges()
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("interferences: got %v, want terminal clique %v", gotEdges, wantEdges)
	}
	for _, e := range gotEdges {
		if !wantEdges[e] {
			t.Fatalf("unexpected interference %v (%s -- %s)", e, g.Name(e[0]), g.Name(e[1]))
		}
	}
	// Affinities: two per source edge.
	if g.NumAffinities() != 2*src.E() {
		t.Fatalf("affinities: %d, want %d", g.NumAffinities(), 2*src.E())
	}
}

// The full Theorem 2 statement, end to end through CODE: minimum multiway
// cut equals the optimal aggressive coalescing of the interference graph
// extracted from the generated program.
func TestQuickBuildProgramEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := mwc.Random(rng, 6, 0.4, 3)
		cut, _ := in.SolveExact()
		fn, _ := BuildProgram(in)
		if fn.Verify() != nil {
			return false
		}
		g, _ := ssa.BuildInterference(fn)
		res := exact.OptimalAggressive(g, exact.MinimizeCount)
		return res.Cost == int64(cut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The generated program is strict and survives the SSA pipeline (it is a
// legitimate compiler input, not just a graph).
func TestBuildProgramIsStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := mwc.Random(rng, 6, 0.4, 3)
		fn, _ := BuildProgram(in)
		ssaF, err := ssa.Build(fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := ssa.VerifySSA(ssaF); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildProgramMoveCount(t *testing.T) {
	src := graph.New(4)
	src.AddEdge(0, 1)
	src.AddEdge(1, 2)
	in := &mwc.Instance{G: src, Terminals: []graph.V{0, 3}}
	fn, _ := BuildProgram(in)
	if got := fn.CountMoves(); got != 2*src.E() {
		t.Fatalf("moves=%d, want %d", got, 2*src.E())
	}
	var _ ir.Reg // keep the ir import honest if counts change
}
