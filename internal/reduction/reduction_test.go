package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/mwc"
	"regcoal/internal/sat"
	"regcoal/internal/vcover"
)

// --- Theorem 2: multiway cut → aggressive coalescing -----------------------

// Figure 1's concrete instance: vertices u, v, w and terminals s1, s2, s3;
// edges e1=(s1,u), e2=(v,s3)... The figure's exact topology is not fully
// recoverable, so we use a triangle of terminals with a small web, which is
// the shape the figure depicts, and rely on the random sweep for the
// general equivalence.
func TestFigure1Instance(t *testing.T) {
	src := graph.NewNamed("s1", "s2", "s3", "u", "v", "w")
	src.AddEdge(0, 3) // s1 - u
	src.AddEdge(3, 4) // u - v
	src.AddEdge(4, 1) // v - s2
	src.AddEdge(4, 2) // v - s3
	src.AddEdge(3, 5) // u - w
	in := &mwc.Instance{G: src, Terminals: []graph.V{0, 1, 2}}
	if err := VerifyMultiwayCut(in); err != nil {
		t.Fatal(err)
	}
	red := FromMultiwayCut(in)
	// Interference structure: exactly the terminal triangle.
	if red.G.E() != 3 {
		t.Fatalf("reduced instance has %d interferences, want 3 (the terminal clique)", red.G.E())
	}
	// Two affinities per source edge.
	if red.G.NumAffinities() != 2*src.E() {
		t.Fatalf("affinities=%d, want %d", red.G.NumAffinities(), 2*src.E())
	}
}

func TestQuickMultiwayCutEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 4
		rng := rand.New(rand.NewSource(seed))
		in := mwc.Random(rng, n, 0.4, 3)
		return VerifyMultiwayCut(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCutFromCoalescing(t *testing.T) {
	src := graph.NewNamed("s1", "s2", "a")
	src.AddEdge(0, 2)
	src.AddEdge(2, 1)
	in := &mwc.Instance{G: src, Terminals: []graph.V{0, 1}}
	red := FromMultiwayCut(in)
	res := exact.OptimalAggressive(red.G, exact.MinimizeCount)
	group := red.CutFromCoalescing(in, res.P)
	if in.CutSize(group) > int(res.Cost) {
		t.Fatalf("cut %d exceeds uncoalesced count %d", in.CutSize(group), res.Cost)
	}
	// Terminals keep their own groups.
	if group[0] != 0 || group[1] != 1 {
		t.Fatalf("terminal groups %v", group)
	}
}

// --- Theorem 3: k-colorability → conservative coalescing --------------------

// Figure 2's instance: the 5-vertex source graph with edges e1..e5 drawn in
// the paper (a 5-cycle-like web on s,t,u,v,w).
func TestFigure2Instance(t *testing.T) {
	src := graph.NewNamed("u", "v", "w", "s", "t")
	src.AddEdge(0, 1) // e1-ish; exact figure edges unrecoverable, shape preserved
	src.AddEdge(1, 2)
	src.AddEdge(2, 3)
	src.AddEdge(3, 4)
	src.AddEdge(4, 0)
	red := FromColorability(src, 3)
	// Interferences are disjoint edges: greedy-2-colorable.
	if red.G.E() != src.E() {
		t.Fatalf("one interference pair per source edge, got %d", red.G.E())
	}
	if err := VerifyColorability(src, 3); err != nil {
		t.Fatal(err)
	}
	// C5 is not 2-colorable: with k=2 the zero-cost question flips.
	if err := VerifyColorability(src, 2); err != nil {
		t.Fatal(err)
	}
}

func TestQuickColorabilityEquivalence(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%6) + 3
		k := int(kRaw%2) + 2 // k in {2, 3}
		rng := rand.New(rand.NewSource(seed))
		src := graph.RandomER(rng, n, 0.45)
		return VerifyColorability(src, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueForcedInstance(t *testing.T) {
	// 3-colorable source: the intended coalescing exists and stays greedy.
	src := graph.New(4)
	src.AddEdge(0, 1)
	src.AddEdge(1, 2)
	src.AddEdge(2, 3)
	if err := VerifyCliqueForced(src, 3); err != nil {
		t.Fatal(err)
	}
	// Non-3-colorable source (K4): zero-cost coalescing impossible.
	k4 := graph.New(4)
	k4.AddClique(0, 1, 2, 3)
	if err := VerifyCliqueForced(k4, 3); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCliqueForced(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 3
		rng := rand.New(rand.NewSource(seed))
		src := graph.RandomER(rng, n, 0.4)
		return VerifyCliqueForced(src, 3) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- Theorem 4: 3SAT → incremental conservative coalescing ------------------

func TestFigure4SmallFormulas(t *testing.T) {
	// Satisfiable: (x1 | x2 | x3).
	f1 := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}}}
	if err := VerifySAT(f1); err != nil {
		t.Fatal(err)
	}
	// Unsatisfiable: all eight sign patterns over three variables.
	f2 := &sat.Formula{NumVars: 3}
	for mask := 0; mask < 8; mask++ {
		c := sat.Clause{}
		for v := 0; v < 3; v++ {
			l := sat.Lit(v + 1)
			if mask&(1<<v) != 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		f2.Clauses = append(f2.Clauses, c)
	}
	if _, ok := f2.Solve(); ok {
		t.Fatal("premise: formula must be UNSAT")
	}
	if err := VerifySAT(f2); err != nil {
		t.Fatal(err)
	}
}

func TestSATConstructiveColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		f := sat.Random3SAT(rng, 4, 6)
		ii, err := FromSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		// The padded formula is always satisfiable (x0 = true).
		padded, _ := sat.To4SAT(f)
		assign, ok := padded.Solve()
		if !ok {
			t.Fatal("padded formula must be satisfiable")
		}
		col, err := ii.ColoringFromAssignment(assign)
		if err != nil {
			t.Fatal(err)
		}
		if !col.Proper(ii.G) {
			t.Fatalf("constructive coloring improper: %v", col.Check(ii.G))
		}
		// If the assignment sets x0 false, the coloring realizes the
		// coalescing.
		if !assign[len(assign)-1] && col[ii.X0] != col[ii.F] {
			t.Fatal("x0=false assignment must color x0 like F")
		}
	}
}

func TestQuickSATEquivalence(t *testing.T) {
	f := func(seed int64, ncRaw uint8) bool {
		nc := int(ncRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		form := sat.Random3SAT(rng, 4, nc)
		return VerifySAT(form) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSATRejectsNon3SAT(t *testing.T) {
	bad := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{1, 2}}}
	if _, err := FromSAT(bad); err == nil {
		t.Fatal("2-literal clause must be rejected")
	}
}

// --- Theorem 6: vertex cover → optimistic coalescing ------------------------

func TestVertexCoverSingleEdge(t *testing.T) {
	src := graph.New(2)
	src.AddEdge(0, 1)
	if err := VerifyVertexCover(src, true); err != nil {
		t.Fatal(err)
	}
}

func TestVertexCoverPathAndTriangle(t *testing.T) {
	path := graph.New(3)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	if err := VerifyVertexCover(path, true); err != nil {
		t.Fatal(err)
	}
	tri := graph.New(3)
	tri.AddClique(0, 1, 2)
	if err := VerifyVertexCover(tri, true); err != nil {
		t.Fatal(err)
	}
}

func TestVertexCoverEdgeless(t *testing.T) {
	// No edges: zero de-coalescings needed.
	src := graph.New(3)
	oi, err := FromVertexCover(src)
	if err != nil {
		t.Fatal(err)
	}
	min, _, err := oi.MinHeartDecoalescings()
	if err != nil {
		t.Fatal(err)
	}
	if min != 0 {
		t.Fatalf("edgeless source needs %d de-coalescings, want 0", min)
	}
}

func TestVertexCoverRejectsHighDegree(t *testing.T) {
	star := graph.New(5)
	for i := 1; i < 5; i++ {
		star.AddEdge(0, graph.V(i))
	}
	if _, err := FromVertexCover(star); err == nil {
		t.Fatal("degree-4 source must be rejected")
	}
}

func TestQuickVertexCoverEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%4) + 3 // 3..6 source vertices
		rng := rand.New(rand.NewSource(seed))
		src := vcover.RandomMaxDeg3(rng, n, n)
		return VerifyVertexCover(src, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The full-affinity exact search agrees with the heart-only optimum on a
// tiny instance, confirming arm de-coalescings never beat hearts.
func TestVertexCoverFullSearchTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		src := vcover.RandomMaxDeg3(rng, 3, 3)
		if err := VerifyVertexCover(src, true); err != nil {
			t.Fatal(err)
		}
	}
}

// Uncovered edges leave a stuck subgraph: dropping one vertex from a
// minimum cover must break colorability (checked inside VerifyVertexCover),
// and with NO de-coalescing a source with edges is stuck.
func TestVertexCoverNoDecoalescingStuck(t *testing.T) {
	src := graph.New(2)
	src.AddEdge(0, 1)
	oi, err := FromVertexCover(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := oi.CoalesceAll()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := oi.GreedyColorableAfter(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fully coalesced H must be stuck when the source has an edge")
	}
}
