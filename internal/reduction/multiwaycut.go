// Package reduction implements, as executable instance transformers, the
// four NP-completeness reductions of the paper:
//
//   - Theorem 2: multiway cut → aggressive coalescing (Figure 1),
//   - Theorem 3: graph k-colorability → conservative coalescing (Figure 2),
//   - Theorem 4: 3SAT → (4SAT →) incremental conservative coalescing on
//     3-colorable graphs (Figure 4),
//   - Theorem 6: vertex cover → optimistic coalescing / de-coalescing on
//     chordal greedy-4-colorable graphs (Figures 6 and 7).
//
// Each reduction ships with a Verify function that checks the defining
// equivalence on a concrete instance using the exact solvers — reproducing
// a complexity theorem here means mechanically confirming that the optimum
// of the source instance equals the optimum of the produced coalescing
// instance.
package reduction

import (
	"fmt"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/mwc"
)

// AggressiveInstance is the output of the Theorem 2 reduction: an
// interference graph whose affinities encode a multiway cut instance. The
// minimum number of affinities left uncoalesced by an optimal aggressive
// coalescing equals the minimum multiway cut.
type AggressiveInstance struct {
	G *graph.Graph
	// Terminals are the clique vertices s_1..s_k of the construction.
	Terminals []graph.V
	// VertexOf maps each source-instance vertex to its vertex in G.
	VertexOf []graph.V
	// SubdivisionOf maps each source edge (by index in the source graph's
	// Edges() order) to its subdivision vertex x_e.
	SubdivisionOf []graph.V
}

// FromMultiwayCut builds the Theorem 2 instance from a multiway cut
// instance, following Figure 1:
//
//   - every source vertex becomes a vertex of the interference graph;
//   - the terminals form an interference clique (a triangle for k = 3);
//   - every source edge e = (u, v) is subdivided by a fresh vertex x_e, and
//     the two halves become affinities (u, x_e) and (x_e, v) of weight 1;
//   - there are no other interferences.
//
// Removing at most K edges of the (subdivided) source graph so that the
// terminals fall apart is exactly leaving at most K affinities uncoalesced:
// each connected component of kept affinities collapses onto one vertex,
// and the terminal clique forces components of distinct terminals apart.
func FromMultiwayCut(in *mwc.Instance) *AggressiveInstance {
	src := in.G
	out := &AggressiveInstance{
		G:        graph.New(0),
		VertexOf: make([]graph.V, src.N()),
	}
	for v := 0; v < src.N(); v++ {
		out.VertexOf[v] = out.G.AddNamedVertex(src.Name(graph.V(v)))
	}
	out.Terminals = make([]graph.V, len(in.Terminals))
	for i, t := range in.Terminals {
		out.Terminals[i] = out.VertexOf[t]
	}
	out.G.AddClique(out.Terminals...)
	edges := src.Edges()
	out.SubdivisionOf = make([]graph.V, len(edges))
	for i, e := range edges {
		xe := out.G.AddNamedVertex(fmt.Sprintf("x_%s_%s", src.Name(e[0]), src.Name(e[1])))
		out.SubdivisionOf[i] = xe
		out.G.AddAffinity(out.VertexOf[e[0]], xe, 1)
		out.G.AddAffinity(xe, out.VertexOf[e[1]], 1)
	}
	return out
}

// VerifyMultiwayCut checks the Theorem 2 equivalence on a concrete
// instance with both exact solvers: the minimum multiway cut equals the
// minimum number of uncoalesced affinities over all aggressive coalescings.
// Exponential; use small instances.
func VerifyMultiwayCut(in *mwc.Instance) error {
	cut, _ := in.SolveExact()
	red := FromMultiwayCut(in)
	res := exact.OptimalAggressive(red.G, exact.MinimizeCount)
	if int64(cut) != res.Cost {
		return fmt.Errorf("reduction: multiway cut optimum %d != aggressive coalescing optimum %d", cut, res.Cost)
	}
	return nil
}

// CutFromCoalescing translates an aggressive coalescing of the reduced
// instance back to a vertex-to-terminal assignment of the source instance:
// a source vertex joins terminal i when it is coalesced into terminal i's
// class, and defaults to terminal 0 otherwise. The induced cut size is at
// most the number of uncoalesced affinities.
func (ai *AggressiveInstance) CutFromCoalescing(in *mwc.Instance, p *graph.Partition) []int {
	group := make([]int, in.G.N())
	for v := range group {
		group[v] = 0
		for ti, t := range ai.Terminals {
			if p.Same(ai.VertexOf[v], t) {
				group[v] = ti
				break
			}
		}
	}
	for ti, t := range in.Terminals {
		group[t] = ti
	}
	return group
}
