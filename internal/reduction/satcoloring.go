package reduction

import (
	"fmt"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/sat"
)

// IncrementalInstance is the output of the Theorem 4 reduction: a
// 3-colorable graph and one affinity (X0, F) such that the affinity can be
// conservatively coalesced (a 3-coloring giving both endpoints one color
// exists) iff the source 3SAT formula is satisfiable.
type IncrementalInstance struct {
	G *graph.Graph
	// T, F, R are the palette triangle vertices.
	T, F, R graph.V
	// X0 is the positive-literal vertex of the padding variable x0; the
	// affinity of the question is (X0, F).
	X0 graph.V
	// PosOf and NegOf map each variable of the padded 4SAT formula to its
	// literal vertices.
	PosOf, NegOf []graph.V
	// gadgets records the OR gadgets in creation order (inputs of later
	// gadgets are outputs of earlier ones), for the constructive coloring.
	gadgets []orRec
}

// orRec is one two-input OR gadget: internals n1, n2, output o, inputs
// in1, in2.
type orRec struct {
	n1, n2, o, in1, in2 graph.V
}

// FromSAT builds the Theorem 4 / Figure 4 instance from a 3SAT formula:
//
//  1. Pad the formula to 4SAT with a fresh variable x0 appended positively
//     to every clause (sat.To4SAT); the padded formula is satisfiable (set
//     x0 true), and the source is satisfiable iff the padded formula is
//     satisfiable with x0 false.
//  2. Build the classic coloring graph: a palette triangle T, F, R; per
//     variable a triangle (x_i, !x_i, R) forcing literal vertices to the T
//     and F colors; per 4-clause an OR-gadget tree with output pinned to
//     color T (two two-input OR gadgets feeding a third — our gadget tree
//     spells the paper's a/b/c clause widget with one explicit output
//     vertex, 9 auxiliaries per clause instead of the figure's 8; the
//     behavior is identical).
//  3. The instance graph is always 3-colorable; the affinity (x0, F) is
//     coalescible iff the source formula is satisfiable.
func FromSAT(f *sat.Formula) (*IncrementalInstance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	for i, c := range f.Clauses {
		if len(c) != 3 {
			return nil, fmt.Errorf("reduction: clause %d has %d literals, want 3SAT", i, len(c))
		}
	}
	padded, x0 := sat.To4SAT(f)
	out := &IncrementalInstance{G: graph.New(0)}
	g := out.G
	out.T = g.AddNamedVertex("T")
	out.F = g.AddNamedVertex("F")
	out.R = g.AddNamedVertex("R")
	g.AddClique(out.T, out.F, out.R)
	out.PosOf = make([]graph.V, padded.NumVars)
	out.NegOf = make([]graph.V, padded.NumVars)
	for v := 0; v < padded.NumVars; v++ {
		out.PosOf[v] = g.AddNamedVertex(fmt.Sprintf("x%d", v+1))
		out.NegOf[v] = g.AddNamedVertex(fmt.Sprintf("!x%d", v+1))
		g.AddEdge(out.PosOf[v], out.NegOf[v])
		g.AddEdge(out.PosOf[v], out.R)
		g.AddEdge(out.NegOf[v], out.R)
	}
	out.X0 = out.PosOf[x0]
	litVertex := func(l sat.Lit) graph.V {
		if l.Positive() {
			return out.PosOf[l.Var()]
		}
		return out.NegOf[l.Var()]
	}
	// orGadget wires the classic two-input OR: output is colorable T iff
	// some input has color T, given inputs colored T or F.
	orGadget := func(in1, in2 graph.V) graph.V {
		id := len(out.gadgets) + 1
		n1 := g.AddNamedVertex(fmt.Sprintf("or%d_a", id))
		n2 := g.AddNamedVertex(fmt.Sprintf("or%d_b", id))
		o := g.AddNamedVertex(fmt.Sprintf("or%d_out", id))
		g.AddClique(n1, n2, o)
		g.AddEdge(n1, in1)
		g.AddEdge(n2, in2)
		out.gadgets = append(out.gadgets, orRec{n1: n1, n2: n2, o: o, in1: in1, in2: in2})
		return o
	}
	for _, c := range padded.Clauses {
		b1 := orGadget(litVertex(c[0]), litVertex(c[1]))
		b2 := orGadget(litVertex(c[2]), litVertex(c[3]))
		d := orGadget(b1, b2)
		// Force the clause output to color T.
		g.AddEdge(d, out.F)
		g.AddEdge(d, out.R)
	}
	g.AddAffinity(out.X0, out.F, 1)
	return out, nil
}

// ColoringFromAssignment builds a proper 3-coloring of the instance from a
// satisfying assignment of the padded formula, using colors 0 = T's color,
// 1 = F's, 2 = R's. It exists for every assignment satisfying the padded
// 4SAT formula and is the constructive half of Theorem 4's proof.
func (ii *IncrementalInstance) ColoringFromAssignment(assign []bool) (graph.Coloring, error) {
	col := graph.NewColoring(ii.G.N())
	col[ii.T], col[ii.F], col[ii.R] = 0, 1, 2
	for v := range ii.PosOf {
		if assign[v] {
			col[ii.PosOf[v]], col[ii.NegOf[v]] = 0, 1
		} else {
			col[ii.PosOf[v]], col[ii.NegOf[v]] = 1, 0
		}
	}
	// Color the OR gadgets in creation order with the standard rule, which
	// keeps every gadget output in {T's color, F's color} and makes the
	// output T whenever an input is T:
	//
	//	in1 = T          → n1, n2, o = F, R, T
	//	in1 = F, in2 = T → n1, n2, o = R, F, T
	//	in1 = in2 = F    → n1, n2, o = T, R, F
	//
	// Since the assignment satisfies the padded formula, every clause's
	// final output comes out T, compatible with its pinning edges to F
	// and R.
	for _, gd := range ii.gadgets {
		switch {
		case col[gd.in1] == 0:
			col[gd.n1], col[gd.n2], col[gd.o] = 1, 2, 0
		case col[gd.in2] == 0:
			col[gd.n1], col[gd.n2], col[gd.o] = 2, 1, 0
		default:
			col[gd.n1], col[gd.n2], col[gd.o] = 0, 2, 1
		}
	}
	if err := col.Check(ii.G); err != nil {
		return nil, err
	}
	return col, nil
}

// VerifySAT checks the Theorem 4 equivalence on a concrete 3SAT formula:
// (the reduced graph has a 3-coloring identifying X0 and F) iff (the
// formula is satisfiable). Both sides decided exactly. It also checks that
// the reduced graph is 3-colorable unconditionally.
func VerifySAT(f *sat.Formula) error {
	ii, err := FromSAT(f)
	if err != nil {
		return err
	}
	if _, ok := exact.KColorable(ii.G, 3); !ok {
		return fmt.Errorf("reduction: instance graph must always be 3-colorable")
	}
	_, satisfiable := f.Solve()
	_, coalescible := exact.KColorableIdentified(ii.G, ii.X0, ii.F, 3)
	if satisfiable != coalescible {
		return fmt.Errorf("reduction: satisfiable=%v but (x0,F) coalescible=%v", satisfiable, coalescible)
	}
	return nil
}
