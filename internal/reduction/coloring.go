package reduction

import (
	"fmt"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// ConservativeInstance is the output of the Theorem 3 reduction: a
// greedy-2-colorable interference graph (disjoint edges) with affinities
// whose full coalescing reconstructs the source graph. Conservative
// coalescing with K = 0 (coalesce everything, keep the graph k-colorable)
// succeeds iff the source graph is k-colorable.
type ConservativeInstance struct {
	G *graph.Graph
	// K is the number of colors of the question.
	K int
	// VertexOf maps source vertices into G.
	VertexOf []graph.V
	// EdgePairs maps each source edge (in Edges() order) to its fresh pair
	// (x_e, y_e), the only interference edges of G.
	EdgePairs [][2]graph.V
}

// FromColorability builds the Theorem 3 / Figure 2 instance from a source
// graph and color count k: every source vertex u becomes an isolated
// vertex; every source edge e = (u, v) becomes a fresh interference edge
// (x_e, y_e) plus affinities (u, x_e) and (y_e, v) of weight 1. All moves
// can be aggressively coalesced, and the fully coalesced graph is the
// source graph — so a conservative coalescing with zero remaining
// affinities and a k-colorable result exists iff the source is k-colorable.
// The instance graph is greedy-2-colorable (its edges are disjoint).
func FromColorability(src *graph.Graph, k int) *ConservativeInstance {
	out := &ConservativeInstance{
		G:        graph.New(0),
		K:        k,
		VertexOf: make([]graph.V, src.N()),
	}
	for v := 0; v < src.N(); v++ {
		out.VertexOf[v] = out.G.AddNamedVertex(src.Name(graph.V(v)))
	}
	for _, e := range src.Edges() {
		x := out.G.AddNamedVertex(fmt.Sprintf("x_%s_%s", src.Name(e[0]), src.Name(e[1])))
		y := out.G.AddNamedVertex(fmt.Sprintf("y_%s_%s", src.Name(e[0]), src.Name(e[1])))
		out.G.AddEdge(x, y)
		out.G.AddAffinity(out.VertexOf[e[0]], x, 1)
		out.G.AddAffinity(y, out.VertexOf[e[1]], 1)
		out.EdgePairs = append(out.EdgePairs, [2]graph.V{x, y})
	}
	return out
}

// VerifyColorability checks the Theorem 3 equivalence on a concrete source
// graph: (the reduced instance admits a conservative coalescing with zero
// uncoalesced affinities and a k-colorable coalesced graph) iff (the source
// graph is k-colorable).
//
// A zero-cost coalescing must identify every affinity pair, so it is
// unique: the full merge, whose quotient is the source graph. The check is
// therefore direct — no search over affinity subsets is needed (the
// general branch-and-bound degenerates exactly on the non-colorable
// instances this verification must include).
func VerifyColorability(src *graph.Graph, k int) error {
	_, colorable := exact.KColorable(src, k)
	red := FromColorability(src, k)
	// The fully-coalesced quotient must exist (every affinity coalescible)
	// and be isomorphic to the source: same vertex and edge counts suffice
	// for the sanity check here (names map back by construction).
	p := graph.MergeAll(red.G)
	if n, _ := p.UncoalescedCount(red.G); n != 0 {
		return fmt.Errorf("reduction: %d affinities not coalescible; all must merge", n)
	}
	q, _, err := graph.Quotient(red.G, p)
	if err != nil {
		return fmt.Errorf("reduction: full coalescing failed: %w", err)
	}
	if q.N() != src.N() || q.E() != src.E() {
		return fmt.Errorf("reduction: coalesced graph has n=%d e=%d, source n=%d e=%d",
			q.N(), q.E(), src.N(), src.E())
	}
	_, zeroCost := exact.KColorable(q, k)
	if colorable != zeroCost {
		return fmt.Errorf("reduction: source %d-colorable=%v but zero-cost coalescing feasible=%v",
			k, colorable, zeroCost)
	}
	return nil
}

// CliqueForced builds the second construction in the proof of Theorem 3:
// on top of FromColorability, for every pair (u, v) of source vertices a
// fresh vertex x_{u,v} is added with affinities (u, x_{u,v}) and
// (v, x_{u,v}). An optimal conservative coalescing must then merge the
// source vertices into a k-clique — which is chordal and
// greedy-k-colorable — showing the problem stays NP-complete when the
// coalesced graph is required to be chordal or greedy-k-colorable.
func CliqueForced(src *graph.Graph, k int) *ConservativeInstance {
	out := FromColorability(src, k)
	for u := 0; u < src.N(); u++ {
		for v := u + 1; v < src.N(); v++ {
			x := out.G.AddNamedVertex(fmt.Sprintf("pair_%s_%s", src.Name(graph.V(u)), src.Name(graph.V(v))))
			out.G.AddAffinity(out.VertexOf[u], x, 1)
			out.G.AddAffinity(out.VertexOf[v], x, 1)
		}
	}
	return out
}

// VerifyCliqueForced checks that the clique-forced instance realizes the
// stronger Theorem 3 statement on a k-colorable source: there is a
// coalescing whose quotient is simultaneously k-colorable, chordal-shaped
// (a clique plus isolated leftovers) and greedy-k-colorable, obtained by
// merging color classes; and when the source is not k-colorable, no
// zero-cost coalescing of the base affinities exists under TargetGreedy
// either.
func VerifyCliqueForced(src *graph.Graph, k int) error {
	col, colorable := exact.KColorable(src, k)
	red := CliqueForced(src, k)
	if !colorable {
		res := exact.OptimalCoalescing(FromColorability(src, k).G, k, exact.TargetGreedy, exact.MinimizeCount)
		if res.Cost == 0 {
			return fmt.Errorf("reduction: source not %d-colorable yet zero-cost greedy coalescing found", k)
		}
		return nil
	}
	// Build the intended coalescing: merge each source vertex with its
	// edge-gadget copies, merge same-colored source vertices through the
	// pair vertices, then check the quotient.
	p := graph.NewPartition(red.G.N())
	// Coalesce the base affinities (vertex copies onto source vertices).
	for i, a := range red.G.Affinities() {
		_ = i
		if !graph.CanMerge(red.G, p, a.X, a.Y) {
			continue
		}
		// Pair affinities (u, x_{u,v}) merge only when u and v share a
		// color; base affinities always merge. Distinguish by name prefix.
		name := red.G.Name(a.X)
		if len(name) >= 5 && name[:5] == "pair_" {
			continue
		}
		name = red.G.Name(a.Y)
		if len(name) >= 5 && name[:5] == "pair_" {
			continue
		}
		p.Union(a.X, a.Y)
	}
	// Merge same-colored source vertices via their pair vertex.
	idx := 0
	for u := 0; u < src.N(); u++ {
		for v := u + 1; v < src.N(); v++ {
			pairName := fmt.Sprintf("pair_%s_%s", src.Name(graph.V(u)), src.Name(graph.V(v)))
			x, ok := red.G.VertexByName(pairName)
			if !ok {
				return fmt.Errorf("reduction: missing pair vertex %q", pairName)
			}
			if col[u] == col[v] {
				p.Union(red.VertexOf[u], x)
				p.Union(x, red.VertexOf[v])
			} else {
				// Attach the pair vertex to one side so its affinity is
				// half-coalesced; either choice is safe.
				p.Union(red.VertexOf[u], x)
			}
			idx++
		}
	}
	if !p.CompatibleWith(red.G) {
		return fmt.Errorf("reduction: intended clique coalescing incompatible")
	}
	q, _, err := graph.Quotient(red.G, p)
	if err != nil {
		return fmt.Errorf("reduction: quotient failed: %w", err)
	}
	if !greedy.IsGreedyKColorable(q, k) {
		return fmt.Errorf("reduction: clique-forced quotient not greedy-%d-colorable", k)
	}
	return nil
}
