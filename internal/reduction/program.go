package reduction

import (
	"fmt"

	"regcoal/internal/graph"
	"regcoal/internal/ir"
	"regcoal/internal/mwc"
)

// BuildProgram emits the actual code of the Theorem 2 proof (Figure 1,
// right): a mini-IR function whose Chaitin interference graph is exactly
// the terminal clique and whose moves are exactly the subdivided-edge
// affinities.
//
// Following the paper: one block B defines all terminals together (a use
// block on a private branch keeps them simultaneously live, hence an
// interference clique); one block B_v per other vertex defines v; and for
// each source edge e = (u, v), a join block C_e uses a variable x_e that
// both predecessors define by a move — "x_e = u" on a path below u's
// definition and "x_e = v" below v's. Paths for different vertices never
// overlap, so no other interference appears.
//
// It returns the function and the register of each source vertex.
func BuildProgram(in *mwc.Instance) (*ir.Func, []ir.Reg) {
	src := in.G
	f := ir.NewFunc("mwc")
	regOf := make([]ir.Reg, src.N())
	for v := 0; v < src.N(); v++ {
		regOf[v] = f.NewNamedReg(src.Name(graph.V(v)))
	}
	isTerminal := make([]bool, src.N())
	for _, t := range in.Terminals {
		isTerminal[t] = true
	}
	exit := f.NewBlock("exit")

	// Block B: all terminals defined together; a private branch uses them
	// all so they stay live together.
	blockB := f.NewBlock("B")
	f.AddEdge(f.Entry(), blockB)
	useS := f.NewBlock("useS")
	f.AddEdge(blockB, useS)
	f.AddEdge(useS, exit)
	for _, t := range in.Terminals {
		blockB.Def(regOf[t])
	}
	termRegs := make([]ir.Reg, len(in.Terminals))
	for i, t := range in.Terminals {
		termRegs[i] = regOf[t]
	}
	useS.Use(termRegs...)

	// Definition blocks for the other vertices.
	defBlock := make([]*ir.Block, src.N())
	for v := 0; v < src.N(); v++ {
		if isTerminal[v] {
			defBlock[v] = blockB
			continue
		}
		b := f.NewBlock("B_" + src.Name(graph.V(v)))
		f.AddEdge(f.Entry(), b)
		b.Def(regOf[v])
		defBlock[v] = b
	}

	// Edge gadgets.
	for _, e := range src.Edges() {
		u, v := e[0], e[1]
		xe := f.NewNamedReg(fmt.Sprintf("x_%s_%s", src.Name(u), src.Name(v)))
		ce := f.NewBlock(fmt.Sprintf("C_%s_%s", src.Name(u), src.Name(v)))
		for _, end := range []graph.V{u, v} {
			p := f.NewBlock(fmt.Sprintf("P_%s_%s_%s", src.Name(u), src.Name(v), src.Name(end)))
			f.AddEdge(defBlock[end], p)
			p.Move(xe, regOf[end])
			f.AddEdge(p, ce)
		}
		ce.Use(xe)
		f.AddEdge(ce, exit)
	}
	return f, regOf
}
