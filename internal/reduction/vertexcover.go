package reduction

import (
	"fmt"

	"regcoal/internal/chordal"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/vcover"
)

// OptimisticInstance is the output of the Theorem 6 reduction: a chordal,
// greedy-4-colorable graph H' whose affinities can all be aggressively
// coalesced, such that the minimum number of de-coalescings restoring
// greedy-4-colorability equals the minimum vertex cover of the source
// graph.
type OptimisticInstance struct {
	G *graph.Graph
	// K is the register count of the instance (4; Property 2 lifts it).
	K int
	// Heart maps each source vertex to its heart affinity pair (A, A'):
	// de-coalescing it "covers" the source vertex.
	Heart [][2]graph.V
	// ArmAffinities lists the chordalization affinities (the Figure 7
	// analog); de-coalescing one of these covers a single source edge,
	// which the optimum never prefers over a heart.
	ArmAffinities []graph.Affinity
	// src retains the source graph for verification.
	src *graph.Graph
}

// FromVertexCover builds the Theorem 6 instance for k = 4 from a source
// graph with maximum degree 3.
//
// The paper's construction (Figures 6 and 7) uses, per source vertex, a
// central pair (A, A') linked by an affinity, an inner 4-clique, hexagonal
// widgets, and three connector branches, with extra affinities breaking
// chordless cycles. The exact widget wiring is not recoverable from the
// paper's text, so this implementation re-derives a structure with the same
// verified properties (see VerifyVertexCover):
//
// Per source vertex v, the structure has an inner 4-clique m1..m4, heart
// halves A (edges to m1, m2) and A' (edge to m3) with the heart affinity
// (A, A'), and one three-piece arm per incident source edge: tip t (edge to
// the partner structure's tip only), mid a (edge to A or A'), base b (edges
// to m3, m4), chained by affinities (t, a) and (a, b). Coalescing an arm's
// chain forms a connector of degree 4 = {partner, heart, m3, m4};
// coalescing the heart forms a center AA of degree 3 + #arms.
//
// The key behaviors, each machine-checked by the tests:
//
//   - H' (nothing coalesced) is chordal and greedy-4-colorable: tips and
//     mids are pendant, hearts have degree ≤ 3, and each structure is a
//     K4 with simplicial attachments;
//   - all affinities can be coalesced simultaneously (classes are
//     independent sets), producing H;
//   - in H, an uncovered source edge (u, v) yields the stuck subgraph
//     {AA_u, m1..m4_u, arm_u} ∪ {AA_v, m1..m4_v, arm_v} with all internal
//     degrees ≥ 4 — the greedy elimination can never remove it;
//   - de-coalescing a heart kills its whole structure (A and A' fall to
//     degree ≤ 3, then arms, then the K4), freeing the partner arms, which
//     is exactly "covering" the source vertex;
//   - with every source edge covered, the cascade eats everything, so the
//     de-coalesced graph is greedy-4-colorable.
func FromVertexCover(src *graph.Graph) (*OptimisticInstance, error) {
	if src.MaxDegree() > 3 {
		return nil, fmt.Errorf("reduction: source max degree %d > 3", src.MaxDegree())
	}
	out := &OptimisticInstance{G: graph.New(0), K: 4, src: src.Clone()}
	g := out.G
	out.Heart = make([][2]graph.V, src.N())
	// tips[v][i] is the tip vertex of v's i-th arm; armOf[v] counts arms
	// assigned so far.
	type armRef struct{ tip graph.V }
	arms := make(map[[2]graph.V]armRef) // (source vertex, arm index is implicit) -> tip
	newStructure := func(v graph.V) {
		name := src.Name(v)
		m := make([]graph.V, 4)
		for i := range m {
			m[i] = g.AddNamedVertex(fmt.Sprintf("%s_m%d", name, i+1))
		}
		g.AddClique(m...)
		a := g.AddNamedVertex(name + "_A")
		a2 := g.AddNamedVertex(name + "_A'")
		g.AddEdge(a, m[0])
		g.AddEdge(a, m[1])
		g.AddEdge(a2, m[2])
		g.AddAffinity(a, a2, 1)
		out.Heart[v] = [2]graph.V{a, a2}
		// Arms, one per incident edge, mids attached A, A', A' in order.
		armIdx := 0
		for _, w := range src.Neighbors(v) {
			tip := g.AddNamedVertex(fmt.Sprintf("%s_t%d", name, armIdx+1))
			mid := g.AddNamedVertex(fmt.Sprintf("%s_a%d", name, armIdx+1))
			base := g.AddNamedVertex(fmt.Sprintf("%s_b%d", name, armIdx+1))
			half := a
			if armIdx > 0 {
				half = a2
			}
			g.AddEdge(mid, half)
			g.AddEdge(base, m[2])
			g.AddEdge(base, m[3])
			g.AddAffinity(tip, mid, 1)
			g.AddAffinity(mid, base, 1)
			out.ArmAffinities = append(out.ArmAffinities,
				graph.Affinity{X: tip, Y: mid, Weight: 1}.Canon(),
				graph.Affinity{X: mid, Y: base, Weight: 1}.Canon())
			arms[[2]graph.V{v, w}] = armRef{tip: tip}
			armIdx++
		}
	}
	for v := 0; v < src.N(); v++ {
		newStructure(graph.V(v))
	}
	// Cross edges between partner tips.
	for _, e := range src.Edges() {
		tu := arms[[2]graph.V{e[0], e[1]}]
		tv := arms[[2]graph.V{e[1], e[0]}]
		g.AddEdge(tu.tip, tv.tip)
	}
	return out, nil
}

// CoalesceAll aggressively coalesces every affinity of the instance and
// returns the partition (the paper's f). It fails only on construction
// bugs.
func (oi *OptimisticInstance) CoalesceAll() (*graph.Partition, error) {
	p := graph.NewPartition(oi.G.N())
	for _, a := range oi.G.Affinities() {
		if !graph.CanMerge(oi.G, p, a.X, a.Y) {
			return nil, fmt.Errorf("reduction: affinity %v not coalescible", a)
		}
		p.Union(a.X, a.Y)
	}
	return p, nil
}

// DecoalesceHearts returns the partition that coalesces every affinity
// except the hearts of the given source vertices — the de-coalescing
// corresponding to a candidate vertex cover.
func (oi *OptimisticInstance) DecoalesceHearts(cover []graph.V) *graph.Partition {
	split := make(map[[2]graph.V]bool, len(cover))
	for _, v := range cover {
		split[oi.Heart[v]] = true
	}
	p := graph.NewPartition(oi.G.N())
	for _, a := range oi.G.Affinities() {
		if split[[2]graph.V{a.X, a.Y}] || split[[2]graph.V{a.Y, a.X}] {
			continue
		}
		p.Union(a.X, a.Y)
	}
	return p
}

// GreedyColorableAfter reports whether the instance graph quotiented by p
// is greedy-4-colorable.
func (oi *OptimisticInstance) GreedyColorableAfter(p *graph.Partition) (bool, error) {
	q, _, err := graph.Quotient(oi.G, p)
	if err != nil {
		return false, err
	}
	return greedy.IsGreedyKColorable(q, oi.K), nil
}

// MinHeartDecoalescings computes, by exhaustive search over heart subsets,
// the minimum number of heart de-coalescings whose quotient is
// greedy-4-colorable. Exponential in the number of source vertices; used
// for verification on small instances.
func (oi *OptimisticInstance) MinHeartDecoalescings() (int, []graph.V, error) {
	n := oi.src.N()
	best := n + 1
	var bestSet []graph.V
	for mask := 0; mask < 1<<n; mask++ {
		size := 0
		var set []graph.V
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				size++
				set = append(set, graph.V(v))
			}
		}
		if size >= best {
			continue
		}
		ok, err := oi.GreedyColorableAfter(oi.DecoalesceHearts(set))
		if err != nil {
			return 0, nil, err
		}
		if ok {
			best = size
			bestSet = set
		}
	}
	if best == n+1 {
		return 0, nil, fmt.Errorf("reduction: even de-coalescing all hearts fails")
	}
	return best, bestSet, nil
}

// VerifyVertexCover machine-checks every claim of the Theorem 6
// construction on a concrete source graph (max degree 3):
//
//  1. H' is chordal and greedy-4-colorable;
//  2. all affinities are simultaneously coalescible;
//  3. de-coalescing exactly the hearts of a minimum vertex cover restores
//     greedy-4-colorability;
//  4. de-coalescing the hearts of any NON-cover fails;
//  5. the minimum number of heart de-coalescings equals the minimum vertex
//     cover size;
//  6. when allowed to de-coalesce arbitrary affinities (exact search, only
//     run on tiny instances — see fullSearch), the optimum is the same:
//     arm de-coalescings never beat hearts.
func VerifyVertexCover(src *graph.Graph, fullSearch bool) error {
	oi, err := FromVertexCover(src)
	if err != nil {
		return err
	}
	if !chordal.IsChordal(oi.G) {
		return fmt.Errorf("reduction: H' not chordal")
	}
	if !greedy.IsGreedyKColorable(oi.G, oi.K) {
		return fmt.Errorf("reduction: H' not greedy-4-colorable")
	}
	if _, err := oi.CoalesceAll(); err != nil {
		return err
	}
	minCover := vcover.SolveExact(src)
	ok, err := oi.GreedyColorableAfter(oi.DecoalesceHearts(minCover))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("reduction: min cover de-coalescing does not restore colorability")
	}
	// Non-covers must fail: drop each cover vertex in turn. (A strict
	// subset of a MINIMUM cover is never a cover.)
	for i := range minCover {
		reduced := append(append([]graph.V(nil), minCover[:i]...), minCover[i+1:]...)
		if vcover.IsCover(src, reduced) {
			continue // can happen only if minCover was not minimal
		}
		ok, err := oi.GreedyColorableAfter(oi.DecoalesceHearts(reduced))
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("reduction: non-cover %v restored colorability", reduced)
		}
	}
	minHearts, _, err := oi.MinHeartDecoalescings()
	if err != nil {
		return err
	}
	if minHearts != len(minCover) {
		return fmt.Errorf("reduction: min heart de-coalescings %d != min cover %d", minHearts, len(minCover))
	}
	if fullSearch {
		res := exact.OptimalDecoalesce(oi.G, oi.K, exact.MinimizeCount)
		if res.Cost != int64(len(minCover)) {
			return fmt.Errorf("reduction: full de-coalescing optimum %d != min cover %d", res.Cost, len(minCover))
		}
	}
	return nil
}
