// Package coalesce implements the four register-coalescing optimizations
// whose complexity the paper classifies, as runnable algorithms:
//
//   - Aggressive coalescing (§3): merge move-related vertices regardless of
//     colorability. NP-complete (Thm 2); here a weight-greedy heuristic plus
//     an exact solver in package exact.
//   - Conservative coalescing (§4): merge only while the graph provably
//     stays greedy-k-colorable, using Briggs' rule, George's rule, the
//     extended George rule, or the brute-force merge-and-check test the
//     paper recommends. NP-complete to optimize (Thm 3).
//   - Incremental conservative coalescing (§4): decide one affinity.
//     NP-complete on arbitrary k-colorable graphs (Thm 4), polynomial on
//     chordal graphs (Thm 5) — see ChordalIncremental.
//   - Optimistic coalescing (§5): coalesce aggressively, then de-coalesce
//     as few moves as possible until the graph is greedy-k-colorable again
//     (Park–Moon). NP-complete to optimize (Thm 6); here the witness-guided
//     heuristic with a conservative re-coalescing pass.
package coalesce

import (
	"sort"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// Result reports the outcome of a coalescing strategy on a graph.
type Result struct {
	// P is the final coalescing (partition of the vertices).
	P *graph.Partition
	// Coalesced and Remaining split the graph's affinities.
	Coalesced, Remaining []graph.Affinity
	// CoalescedWeight and RemainingWeight are the corresponding weight sums.
	CoalescedWeight, RemainingWeight int64
	// Colorable reports whether the coalesced graph is greedy-k-colorable
	// for the k the strategy ran with (always true for sound conservative
	// strategies on greedy-k-colorable inputs; possibly false for
	// aggressive).
	Colorable bool
	// Rounds counts driver iterations until fixpoint, for strategies that
	// iterate.
	Rounds int
}

// summarize builds a Result for partition p on g with colorability checked
// against k (k <= 0 skips the check and reports false).
func summarize(g *graph.Graph, p *graph.Partition, k, rounds int) *Result {
	co, rem := p.CoalescedAffinities(g)
	res := &Result{P: p, Coalesced: co, Remaining: rem, Rounds: rounds}
	for _, a := range co {
		res.CoalescedWeight += a.Weight
	}
	for _, a := range rem {
		res.RemainingWeight += a.Weight
	}
	if k > 0 {
		if q, _, err := graph.Quotient(g, p); err == nil {
			res.Colorable = greedy.IsGreedyKColorable(q, k)
		}
	}
	return res
}

// affinityOrder returns the indices of g's affinities sorted by decreasing
// weight (ties by affinity endpoints, so the order is deterministic). This
// is the classic priority: coalesce hot moves first.
func affinityOrder(g *graph.Graph) []int {
	affs := g.Affinities()
	idx := make([]int, len(affs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := affs[idx[a]], affs[idx[b]]
		if x.Weight != y.Weight {
			return x.Weight > y.Weight
		}
		if x.X != y.X {
			return x.X < y.X
		}
		return x.Y < y.Y
	})
	return idx
}

// state tracks an in-progress coalescing: the partition and the current
// coalesced graph (quotient), refreshed after each merge. Refreshing is
// O(V + E + A); the drivers trade that for simplicity and correctness.
type state struct {
	g       *graph.Graph
	p       *graph.Partition
	cur     *graph.Graph
	old2new []graph.V
}

func newState(g *graph.Graph) *state {
	s := &state{g: g, p: graph.NewPartition(g.N())}
	s.refresh()
	return s
}

func (s *state) refresh() {
	q, old2new, err := graph.Quotient(s.g, s.p)
	if err != nil {
		// The drivers only union compatible classes, so this is a bug.
		panic("coalesce: partition became incompatible: " + err.Error())
	}
	s.cur = q
	s.old2new = old2new
}

// merge unions u and v (original-vertex ids) and refreshes the quotient.
func (s *state) merge(u, v graph.V) {
	s.p.Union(u, v)
	s.refresh()
}

// mapped returns the current quotient vertices of an affinity's endpoints.
func (s *state) mapped(a graph.Affinity) (graph.V, graph.V) {
	return s.old2new[a.X], s.old2new[a.Y]
}

// Aggressive coalesces affinities in decreasing weight order whenever the
// merge is structurally possible (no interference between the classes, no
// precolor conflict), ignoring colorability — Chaitin's aggressive
// coalescing, the heuristic counterpart of the paper's Theorem 2 problem.
// With k > 0 the result records whether the coalesced graph happens to stay
// greedy-k-colorable (aggressive gives no such guarantee).
func Aggressive(g *graph.Graph, k int) *Result {
	p := graph.NewPartition(g.N())
	affs := g.Affinities()
	for _, i := range affinityOrder(g) {
		a := affs[i]
		if graph.CanMerge(g, p, a.X, a.Y) {
			p.Union(a.X, a.Y)
		}
	}
	return summarize(g, p, k, 1)
}
