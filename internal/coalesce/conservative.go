package coalesce

import (
	"fmt"
	mbits "math/bits"
	"sync"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// trialPool recycles the scratch partitions the brute-force tests merge
// on: one trial per probed affinity per round added up to the dominant
// allocation of TestBrute-driven strategies. CopyFrom reuses the pooled
// partition's storage, so a warmed pool probes without heap traffic
// beyond the quotient build.
var trialPool = sync.Pool{New: func() any { return new(graph.Partition) }}

// Test selects the conservative test used to accept or reject a merge.
type Test int

const (
	// TestBriggs accepts a merge when the merged vertex would have fewer
	// than k neighbors of significant degree (Briggs, Cooper & Torczon).
	TestBriggs Test = iota
	// TestGeorge accepts a merge of u into v when every significant
	// neighbor of u is already a neighbor of v (George & Appel). Both
	// directions are tried, as the paper's §4 recommends for the
	// spill-free setting.
	TestGeorge
	// TestBriggsGeorge accepts when either rule does — the combination the
	// paper suggests for the last phase of Chaitin-like allocators.
	TestBriggsGeorge
	// TestExtendedGeorge relaxes George's rule as mentioned in §4: a
	// neighbor t of u needs to be a neighbor of v only when t itself has at
	// least k neighbors of significant degree (otherwise t is removable
	// before the merged vertex matters).
	TestExtendedGeorge
	// TestBrute merges tentatively and checks greedy-k-colorability of the
	// whole coalesced graph in linear time — the "simply use brute force"
	// test of §4. Strictly more powerful than the local rules, at a higher
	// per-move cost.
	TestBrute
)

// String names the test for reports.
func (t Test) String() string {
	switch t {
	case TestBriggs:
		return "briggs"
	case TestGeorge:
		return "george"
	case TestBriggsGeorge:
		return "briggs+george"
	case TestExtendedGeorge:
		return "ext-george"
	case TestBrute:
		return "brute"
	}
	return fmt.Sprintf("Test(%d)", int(t))
}

// significant reports whether quotient vertex w blocks simplification:
// degree >= k or precolored (machine registers are never simplified).
func significant(cur *graph.Graph, w graph.V, k int) bool {
	if _, pinned := cur.Precolored(w); pinned {
		return true
	}
	return cur.Degree(w) >= k
}

// BriggsOK applies Briggs' conservative test to merging quotient vertices
// cx and cy in cur: the merge is safe when the merged vertex has fewer than
// k significant neighbors. Degrees are evaluated after the merge: a common
// neighbor of cx and cy loses one edge. The neighborhood union
// N(cx) ∪ N(cy) is scanned word-parallelly over the bitset rows — the
// union deduplicates for free, where the map-backed version kept a
// per-call seen set.
func BriggsOK(cur *graph.Graph, cx, cy graph.V, k int) bool {
	if cur.HasEdge(cx, cy) {
		return false
	}
	rx, ry := cur.BitsetNeighbors(cx), cur.BitsetNeighbors(cy)
	count := 0
	for i := range rx {
		m := rx[i] | ry[i]
		for m != 0 {
			bit := m & -m
			m &^= bit
			w := graph.V(i<<6) + graph.V(mbits.TrailingZeros64(bit))
			deg := cur.Degree(w)
			if rx[i]&bit != 0 && ry[i]&bit != 0 {
				deg-- // cx and cy collapse into one neighbor of w
			}
			if _, pinned := cur.Precolored(w); pinned || deg >= k {
				count++
				if count >= k {
					return false
				}
			}
		}
	}
	return count < k
}

// GeorgeOK applies George's conservative test for merging a into b (the
// asymmetric direction "a's significant neighbors are already b's
// neighbors").
func GeorgeOK(cur *graph.Graph, a, b graph.V, k int) bool {
	if cur.HasEdge(a, b) {
		return false
	}
	ok := true
	cur.ForEachNeighbor(a, func(t graph.V) {
		if !ok || t == b {
			return
		}
		if significant(cur, t, k) && !cur.HasEdge(t, b) {
			ok = false
		}
	})
	return ok
}

// ExtendedGeorgeOK is the §4 extension of George's test: a neighbor t of a
// that is not covered by b may also be ignored when t itself will simplify
// before the merged vertex matters — that is, when t has fewer than k
// significant neighbors, so that removing t's insignificant neighbors drops
// t below degree k. Significance is evaluated in the post-merge graph: the
// merged vertex ab is conservatively counted as significant, and a common
// neighbor of a and b loses one degree.
//
// Soundness argument (mirrors the paper's George argument): in the merged
// graph, first eliminate every vertex of degree < k to a fixpoint; every
// ignored t falls in that cascade (its remaining neighbors are its
// post-merge-significant ones, fewer than k of them). The residual graph
// maps into the original graph with ab playing b, hence stays
// greedy-k-colorable.
func ExtendedGeorgeOK(cur *graph.Graph, a, b graph.V, k int) bool {
	if cur.HasEdge(a, b) {
		return false
	}
	postDeg := func(w graph.V) int {
		d := cur.Degree(w)
		if cur.HasEdge(w, a) && cur.HasEdge(w, b) {
			d-- // a and b collapse into one neighbor of w
		}
		return d
	}
	postSignificant := func(w graph.V) bool {
		if w == a || w == b {
			return true // the merged vertex: conservatively significant
		}
		if _, pinned := cur.Precolored(w); pinned {
			return true
		}
		return postDeg(w) >= k
	}
	ok := true
	cur.ForEachNeighbor(a, func(t graph.V) {
		if !ok || t == b || cur.HasEdge(t, b) {
			return
		}
		if _, pinned := cur.Precolored(t); pinned {
			ok = false
			return
		}
		if postDeg(t) < k {
			return // plain insignificant neighbor: ignorable as in George
		}
		// Briggs-style condition on t: fewer than k significant neighbors
		// post-merge, counting ab once.
		sig := 0
		countedAB := false
		cur.ForEachNeighbor(t, func(s graph.V) {
			if s == a || s == b {
				if !countedAB {
					countedAB = true
					sig++
				}
				return
			}
			if postSignificant(s) {
				sig++
			}
		})
		if sig >= k {
			ok = false
		}
	})
	return ok
}

// BruteOK tests a merge by performing it on a pooled scratch copy and
// checking greedy-k-colorability of the whole coalesced graph.
func BruteOK(g *graph.Graph, p *graph.Partition, x, y graph.V, k int) bool {
	if !graph.CanMerge(g, p, x, y) {
		return false
	}
	trial := trialPool.Get().(*graph.Partition)
	trial.CopyFrom(p)
	trial.Union(x, y)
	q, _, err := graph.Quotient(g, trial)
	trialPool.Put(trial)
	if err != nil {
		return false
	}
	return greedy.IsGreedyKColorable(q, k)
}

// BruteSetOK tests coalescing a whole set of affinities simultaneously —
// the set variant of the brute-force test that rescues the Figure 3
// situations where every individual merge is rejected but the simultaneous
// merge is safe.
func BruteSetOK(g *graph.Graph, p *graph.Partition, set []graph.Affinity, k int) bool {
	trial := trialPool.Get().(*graph.Partition)
	defer trialPool.Put(trial)
	trial.CopyFrom(p)
	for _, a := range set {
		if !graph.CanMerge(g, trial, a.X, a.Y) {
			return false
		}
		trial.Union(a.X, a.Y)
	}
	q, _, err := graph.Quotient(g, trial)
	if err != nil {
		return false
	}
	return greedy.IsGreedyKColorable(q, k)
}

// Conservative coalesces affinities one at a time, highest weight first,
// accepting a merge only when the chosen test passes on the current
// coalesced graph. It iterates to a fixpoint: a merge can unblock another
// affinity (including affinities "obtained by transitivity"), so rounds
// repeat until nothing changes. The incremental, priority-driven shape is
// exactly the paper's "incremental conservative coalescing" heuristic
// family.
func Conservative(g *graph.Graph, k int, test Test) *Result {
	s := newState(g)
	affs := g.Affinities()
	order := affinityOrder(g)
	ar := graph.GetArena()
	defer ar.Release()
	done := ar.Bools(len(affs))
	rounds := 0
	for {
		rounds++
		changed := false
		for _, i := range order {
			if done[i] {
				continue
			}
			a := affs[i]
			cx, cy := s.mapped(a)
			if cx == cy {
				done[i] = true // coalesced transitively
				continue
			}
			if s.cur.HasEdge(cx, cy) {
				// Constrained move: classes only grow, so the interference
				// never goes away.
				done[i] = true
				continue
			}
			pass := false
			switch test {
			case TestBriggs:
				pass = BriggsOK(s.cur, cx, cy, k)
			case TestGeorge:
				pass = GeorgeOK(s.cur, cx, cy, k) || GeorgeOK(s.cur, cy, cx, k)
			case TestBriggsGeorge:
				pass = BriggsOK(s.cur, cx, cy, k) ||
					GeorgeOK(s.cur, cx, cy, k) || GeorgeOK(s.cur, cy, cx, k)
			case TestExtendedGeorge:
				pass = ExtendedGeorgeOK(s.cur, cx, cy, k) || ExtendedGeorgeOK(s.cur, cy, cx, k)
			case TestBrute:
				pass = BruteOK(g, s.p, a.X, a.Y, k)
			}
			if pass {
				s.merge(a.X, a.Y)
				done[i] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return summarize(g, s.p, k, rounds)
}

// IncrementalOne answers the incremental conservative coalescing question
// for a single affinity with the brute-force test: can (x, y) be coalesced
// so that the graph stays greedy-k-colorable? It does not mutate g.
func IncrementalOne(g *graph.Graph, x, y graph.V, k int) bool {
	return BruteOK(g, graph.NewPartition(g.N()), x, y, k)
}
