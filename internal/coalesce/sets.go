package coalesce

import (
	"regcoal/internal/graph"
)

// ConservativeSets extends the brute-force conservative driver with the
// §4 suggestion that escapes the Figure 3 incremental trap: when no single
// affinity can be coalesced conservatively, try small SETS of remaining
// affinities simultaneously (pairs, then triples up to maxSet), accepting
// a set when the simultaneous merge keeps the graph greedy-k-colorable.
// Coalescing a set is exactly coalescing "affinities obtained by
// transitivity": merging (a,b) and (a,c) together implies the derived pair
// (b,c).
//
// Cost: O(A^maxSet) set probes per round in the worst case, each a linear
// greedy check — still polynomial for fixed maxSet, and maxSet = 2 already
// solves the paper's triangle example.
func ConservativeSets(g *graph.Graph, k, maxSet int) *Result {
	if maxSet < 1 {
		maxSet = 1
	}
	s := newState(g)
	affs := g.Affinities()
	order := affinityOrder(g)
	ar := graph.GetArena()
	defer ar.Release()
	done := ar.Bools(len(affs))
	rounds := 0
	for {
		rounds++
		changed := false
		// Pass 1: singles, highest weight first.
		for _, i := range order {
			if done[i] {
				continue
			}
			a := affs[i]
			cx, cy := s.mapped(a)
			if cx == cy {
				done[i] = true
				continue
			}
			if s.cur.HasEdge(cx, cy) {
				done[i] = true
				continue
			}
			if BruteOK(g, s.p, a.X, a.Y, k) {
				s.merge(a.X, a.Y)
				done[i] = true
				changed = true
			}
		}
		if changed {
			continue
		}
		// Pass 2: grow sets of remaining affinities. Greedy: seed with
		// each remaining affinity in weight order, extend with others
		// while the combined merge stays safe AND the set alone is safe.
		var remaining []int
		for _, i := range order {
			if !done[i] {
				cx, cy := s.mapped(affs[i])
				if cx != cy && !s.cur.HasEdge(cx, cy) {
					remaining = append(remaining, i)
				}
			}
		}
		for si := 0; si < len(remaining) && !changed; si++ {
			set := []graph.Affinity{affs[remaining[si]]}
			members := []int{remaining[si]}
			for sj := 0; sj < len(remaining) && len(set) < maxSet; sj++ {
				if sj == si {
					continue
				}
				trial := append(append([]graph.Affinity(nil), set...), affs[remaining[sj]])
				if BruteSetOK(g, s.p, trial, k) {
					set = trial
					members = append(members, remaining[sj])
				}
			}
			if len(set) < 2 {
				continue // a singleton here was already rejected in pass 1
			}
			if !BruteSetOK(g, s.p, set, k) {
				continue
			}
			for _, a := range set {
				s.p.Union(a.X, a.Y)
			}
			s.refresh()
			for _, m := range members {
				done[m] = true
			}
			changed = true
		}
		if !changed {
			break
		}
	}
	return summarize(g, s.p, k, rounds)
}
