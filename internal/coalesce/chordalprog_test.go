package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/chordal"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
)

func TestChordalProgressiveSimple(t *testing.T) {
	// x - long - y with disjoint short ranges: both moves coalescible.
	ivs := []graph.Interval{
		{Lo: 0, Hi: 1}, // x
		{Lo: 3, Hi: 4}, // m
		{Lo: 6, Hi: 7}, // y
		{Lo: 0, Hi: 7}, // long
	}
	g := graph.IntervalGraph(ivs)
	g.AddAffinity(0, 2, 5) // x => y
	g.AddAffinity(0, 1, 1) // x => m
	res, err := ChordalProgressive(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainingWeight != 0 {
		t.Fatalf("both moves should coalesce: %+v", res)
	}
	if !res.Colorable {
		t.Fatal("result must stay k-colorable")
	}
}

func TestChordalProgressiveRejectsNonChordal(t *testing.T) {
	c4 := graph.New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if _, err := ChordalProgressive(c4, 3); err != ErrNotChordal {
		t.Fatalf("want ErrNotChordal, got %v", err)
	}
}

// Soundness on random chordal instances: the final coalescing is
// compatible, the quotient of the ORIGINAL graph is k-colorable, and every
// coalesced affinity is genuinely identified.
func TestQuickChordalProgressiveSound(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, n, 8, 3)
		graph.SprinkleAffinities(rng, g, n/2+1, 5)
		peo, ok := chordal.PEO(g)
		if !ok {
			return false
		}
		k := chordal.Omega(g, peo)
		if k == 0 {
			k = 1
		}
		res, err := ChordalProgressive(g, k)
		if err != nil {
			return false
		}
		if !res.P.CompatibleWith(g) {
			return false
		}
		q, _, err := graph.Quotient(g, res.P)
		if err != nil {
			return false
		}
		if _, colorable := exact.KColorable(q, k); !colorable {
			return false
		}
		return res.Colorable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The paper's caveat measured: progressive chordal coalescing does not
// dominate the brute-force driver (artificial merges can block later
// moves), but it must be competitive and it never breaks k-colorability.
func TestChordalProgressiveVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var prog, brute int64
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomInterval(rng, 15, 18, 5)
		graph.SprinkleAffinities(rng, g, 8, 6)
		peo, ok := chordal.PEO(g)
		if !ok {
			t.Fatal("interval graph must be chordal")
		}
		k := chordal.Omega(g, peo)
		if k < 2 {
			continue
		}
		res, err := ChordalProgressive(g, k)
		if err != nil {
			t.Fatal(err)
		}
		prog += res.CoalescedWeight
		brute += Conservative(g, k, TestBrute).CoalescedWeight
	}
	if prog == 0 && brute > 0 {
		t.Fatalf("progressive coalesced nothing (brute got %d)", brute)
	}
	t.Logf("progressive=%d brute=%d", prog, brute)
}

// The progressive driver's mid-drive hazard: accepting the P5 endpoint
// affinity must go through the class merge (plus padding edges), because
// the bare endpoint merge creates a chordless C4 and the next iteration's
// chordality precondition would fail. The driver is documented to keep
// the working graph chordal after every accepted merge; this drives it
// through exactly the merge that would break a naive implementation, with
// a second affinity queued behind it so the restored graph is used.
func TestChordalProgressiveMergeWouldBreakChordality(t *testing.T) {
	g := graph.New(5)
	for v := 0; v < 4; v++ {
		g.AddEdge(graph.V(v), graph.V(v+1))
	}
	g.AddAffinity(0, 4, 10) // processed first (heaviest): the hazardous merge
	g.AddAffinity(1, 3, 1)  // processed second, against the restored graph
	res, err := ChordalProgressive(g, 2)
	if err != nil {
		t.Fatalf("ChordalProgressive: %v", err)
	}
	if !res.Colorable {
		t.Fatalf("result not colorable: %+v", res)
	}
	if res.P.Find(0) != res.P.Find(4) {
		t.Fatalf("heaviest affinity (0,4) not coalesced; partition %v", res.P)
	}
	if res.CoalescedWeight < 10 {
		t.Fatalf("coalesced weight %d, want at least the (0,4) affinity", res.CoalescedWeight)
	}
}
