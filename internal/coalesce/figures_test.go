package coalesce

import (
	"testing"

	"regcoal/internal/chordal"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

func TestFig5GapProperties(t *testing.T) {
	g, k, x, y := Fig5Gap()
	if !chordal.IsChordal(g) {
		t.Fatal("gap fixture must be chordal")
	}
	peo, _ := chordal.PEO(g)
	if omega := chordal.Omega(g, peo); omega != k {
		t.Fatalf("ω=%d, fixture expects k=%d=ω", omega, k)
	}
	// Theorem 5 (and the exact oracle) say yes.
	dec, err := ChordalIncremental(g, x, y, k)
	if err != nil || !dec.OK {
		t.Fatalf("Thm5 decision: %v %v", dec, err)
	}
	if _, ok := exact.KColorableIdentified(g, x, y, k); !ok {
		t.Fatal("exact oracle must agree: identifiable")
	}
	// But the bare {x, y} merge is NOT greedy-k-colorable.
	if IncrementalOne(g, x, y, k) {
		t.Fatal("bare merge should break greedy-k-colorability (that is the gap)")
	}
	p := graph.NewPartition(g.N())
	p.Union(x, y)
	q, _, err := graph.Quotient(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.IsGreedyKColorable(q, k) {
		t.Fatal("quotient unexpectedly greedy-colorable")
	}
	// The class merge from the decision IS k-colorable (and realizes the
	// identification).
	col, ok, err := ChordalIncrementalColoring(g, x, y, k)
	if err != nil || !ok || !col.Proper(g) || col[x] != col[y] {
		t.Fatalf("class-merge coloring failed: %v %v %v", col, ok, err)
	}
}

func TestFig3PermutationShape(t *testing.T) {
	g, k, moves := Fig3Permutation(4)
	if k != 6 || len(moves) != 4 {
		t.Fatalf("k=%d moves=%d", k, len(moves))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Boosters: each gadget vertex has exactly one booster neighbor of
	// degree k.
	for _, m := range moves {
		for _, end := range []graph.V{m.X, m.Y} {
			boosters := 0
			g.ForEachNeighbor(end, func(w graph.V) {
				if g.Degree(w) == k {
					boosters++
				}
			})
			if boosters != 1 {
				t.Fatalf("vertex %d has %d boosters", int(end), boosters)
			}
		}
	}
}

func TestFig3PermutationPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 should panic")
		}
	}()
	Fig3Permutation(1)
}
