package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// Soundness: a merge accepted by any conservative test preserves
// greedy-k-colorability. This is the defining property of "conservative".
func TestQuickConservativeTestsAreSound(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		n := int(nRaw%14) + 4
		k := int(kRaw%4) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		if !greedy.IsGreedyKColorable(g, k) {
			return true // premise not met; nothing to check
		}
		// Try every non-interfering pair as a candidate merge.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				x, y := graph.V(u), graph.V(v)
				if g.HasEdge(x, y) {
					continue
				}
				passBriggs := BriggsOK(g, x, y, k)
				passGeorge := GeorgeOK(g, x, y, k) || GeorgeOK(g, y, x, k)
				passExt := ExtendedGeorgeOK(g, x, y, k) || ExtendedGeorgeOK(g, y, x, k)
				if !passBriggs && !passGeorge && !passExt {
					continue
				}
				p := graph.NewPartition(n)
				p.Union(x, y)
				q, _, err := graph.Quotient(g, p)
				if err != nil {
					return false
				}
				if !greedy.IsGreedyKColorable(q, k) {
					return false // an accepted merge broke colorability
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBriggsBasic(t *testing.T) {
	// Disjoint edge pairs: merging two degree-1 vertices is always safe for
	// k >= 2.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if !BriggsOK(g, 0, 2, 2) {
		t.Fatal("Briggs should accept a low-degree merge")
	}
	// Interfering endpoints always rejected.
	if BriggsOK(g, 0, 1, 4) {
		t.Fatal("Briggs must reject interfering endpoints")
	}
}

func TestBriggsCountsMergedDegrees(t *testing.T) {
	// k=2. Candidates x=0, y=1, common neighbor c=2 with one extra edge
	// (2,3): after merging, c's degree drops from 2 to 1 < k, so c is not
	// significant and Briggs accepts.
	g := graph.New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !BriggsOK(g, 0, 1, 2) {
		t.Fatal("common neighbor degree must be evaluated post-merge")
	}
}

func TestGeorgeAsymmetry(t *testing.T) {
	// u's only significant neighbor is also v's neighbor, but not
	// conversely: George passes u->v and fails v->u.
	// Build: k=2. u-a, v-a, v-b, b-c (so b significant: deg 2), a-c.
	g := graph.NewNamed("u", "v", "a", "b", "c")
	u, v, a, b, c := graph.V(0), graph.V(1), graph.V(2), graph.V(3), graph.V(4)
	g.AddEdge(u, a)
	g.AddEdge(v, a)
	g.AddEdge(v, b)
	g.AddEdge(b, c)
	g.AddEdge(a, c)
	k := 2
	// N(u)={a}, a has degree 3 >= 2: significant, and a in N(v): u->v OK.
	if !GeorgeOK(g, u, v, k) {
		t.Fatal("George u->v should pass")
	}
	// N(v)={a,b}: b significant (deg 2), b not in N(u): v->u fails.
	if GeorgeOK(g, v, u, k) {
		t.Fatal("George v->u should fail")
	}
}

func TestGeorgePrecoloredSignificant(t *testing.T) {
	// A precolored neighbor is significant regardless of degree.
	g := graph.New(3)
	g.AddEdge(0, 2) // candidate u=0 has neighbor r=2
	g.SetPrecolored(2, 0)
	// r has degree 1 < k, but being precolored it is significant, and it is
	// not a neighbor of v=1.
	if GeorgeOK(g, 0, 1, 3) {
		t.Fatal("precolored neighbor must block George")
	}
}

func TestExtendedGeorgeMoreAggressive(t *testing.T) {
	// A neighbor t of u with degree >= k but fewer than k significant
	// neighbors blocks plain George yet passes the extended rule.
	// k=2: u-t, t-l1, t-l2 (t degree 3 >= 2 significant; its neighbors are
	// u and two leaves, all degree < 2 except... make them leaves).
	g := graph.NewNamed("u", "v", "t", "l1", "l2")
	u, v, tt, l1, l2 := graph.V(0), graph.V(1), graph.V(2), graph.V(3), graph.V(4)
	g.AddEdge(u, tt)
	g.AddEdge(tt, l1)
	g.AddEdge(tt, l2)
	k := 2
	if GeorgeOK(g, u, v, k) {
		t.Fatal("plain George must fail: t significant and not neighbor of v")
	}
	// t's neighbors: u (deg 1), l1, l2 (deg 1): zero significant neighbors
	// < k, so extended George ignores t.
	if !ExtendedGeorgeOK(g, u, v, k) {
		t.Fatal("extended George should pass")
	}
	_, _ = l1, l2
}

func TestConservativeTransitivityRounds(t *testing.T) {
	// Chain of affinities a=b, b=c where coalescing (a,b) first is needed
	// before (b,c) becomes attractive is hard to stage; instead check the
	// driver reaches a fixpoint and reports rounds >= 1.
	g := graph.New(6)
	g.AddAffinity(0, 1, 2)
	g.AddAffinity(1, 2, 1)
	res := Conservative(g, 2, TestBriggsGeorge)
	if res.Rounds < 1 {
		t.Fatal("driver must run at least one round")
	}
	if res.RemainingWeight != 0 {
		t.Fatalf("chain should fully coalesce, remaining=%d", res.RemainingWeight)
	}
	// All three vertices in one class.
	if !res.P.Same(0, 2) {
		t.Fatal("transitive coalescing failed")
	}
}

func TestConservativeConstrainedMove(t *testing.T) {
	// Affinity between interfering vertices can never be coalesced.
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddAffinity(0, 1, 9)
	for _, test := range []Test{TestBriggs, TestGeorge, TestBriggsGeorge, TestExtendedGeorge, TestBrute} {
		res := Conservative(g, 4, test)
		if len(res.Coalesced) != 0 {
			t.Fatalf("%v coalesced a constrained move", test)
		}
	}
}

// Figure 3, left/middle: local rules reject every move of the boosted
// permutation gadget, while the simultaneous set coalescing is safe, and
// even the per-move brute-force test accepts.
func TestFig3PermutationLocalRulesFail(t *testing.T) {
	g, k, moves := Fig3Permutation(4)
	for _, a := range moves {
		if BriggsOK(g, a.X, a.Y, k) {
			t.Fatalf("Briggs accepted move %v; Figure 3 expects rejection", a)
		}
		if GeorgeOK(g, a.X, a.Y, k) || GeorgeOK(g, a.Y, a.X, k) {
			t.Fatalf("George accepted move %v; Figure 3 expects rejection", a)
		}
	}
	p := graph.NewPartition(g.N())
	if !BruteSetOK(g, p, moves, k) {
		t.Fatal("coalescing all moves simultaneously must be safe")
	}
	// The conservative driver with local rules coalesces nothing...
	res := Conservative(g, k, TestBriggsGeorge)
	if len(res.Coalesced) != 0 {
		t.Fatalf("local-rule driver coalesced %d moves", len(res.Coalesced))
	}
	// ...while the brute-force driver gets all of them (one at a time each
	// merge stays greedy-k-colorable here).
	resBrute := Conservative(g, k, TestBrute)
	if len(resBrute.Remaining) != 0 {
		t.Fatalf("brute driver left %d moves", len(resBrute.Remaining))
	}
}

// Figure 3, right: the frozen triangle gadget. Both moves together are
// safe; each alone is not — even the exact per-move test must reject each
// single move, so incremental conservative coalescing is stuck.
func TestFig3TriangleIncrementalTrap(t *testing.T) {
	g, k, moves := Fig3Triangle()
	if !greedy.IsGreedyKColorable(g, k) {
		t.Fatal("gadget must be greedy-3-colorable")
	}
	p := graph.NewPartition(g.N())
	for _, a := range moves {
		if BruteOK(g, p, a.X, a.Y, k) {
			t.Fatalf("single move %v must break greedy-%d-colorability", a, k)
		}
	}
	if !BruteSetOK(g, p, moves, k) {
		t.Fatal("coalescing both moves together must be safe")
	}
	// Consequently the incremental brute-force driver coalesces nothing.
	res := Conservative(g, k, TestBrute)
	if len(res.Coalesced) != 0 {
		t.Fatalf("incremental driver coalesced %v; the trap should hold", res.Coalesced)
	}
}

// Brute subsumes the local rules per state: any merge Briggs or George
// accepts on a greedy-k-colorable graph, the brute-force merge-and-check
// test also accepts. (The whole-run totals can still differ in either
// direction — greedy drivers are myopic — which is exactly why optimal
// conservative coalescing is NP-complete, Theorem 3.)
func TestQuickBruteSubsumesLocalRulesPerState(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n, 4)
		k := greedy.ColoringNumber(g)
		p := graph.NewPartition(g.N())
		for _, a := range g.Affinities() {
			if g.HasEdge(a.X, a.Y) {
				continue
			}
			local := BriggsOK(g, a.X, a.Y, k) ||
				GeorgeOK(g, a.X, a.Y, k) || GeorgeOK(g, a.Y, a.X, k)
			if local && !BruteOK(g, p, a.X, a.Y, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Conservative drivers keep greedy-k-colorable graphs greedy-k-colorable.
func TestQuickConservativeDriversSound(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%14) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n, 4)
		k := greedy.ColoringNumber(g) + int(kRaw%2)
		for _, test := range []Test{TestBriggs, TestGeorge, TestBriggsGeorge, TestExtendedGeorge, TestBrute} {
			res := Conservative(g, k, test)
			if !res.Colorable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalOne(t *testing.T) {
	g, k, moves := Fig3Triangle()
	if IncrementalOne(g, moves[0].X, moves[0].Y, k) {
		t.Fatal("trap gadget: single move must be rejected")
	}
	free := graph.New(2)
	if !IncrementalOne(free, 0, 1, 1) {
		t.Fatal("merging isolated vertices is always safe")
	}
}

func TestTestString(t *testing.T) {
	names := map[Test]string{
		TestBriggs: "briggs", TestGeorge: "george", TestBriggsGeorge: "briggs+george",
		TestExtendedGeorge: "ext-george", TestBrute: "brute",
	}
	for test, want := range names {
		if test.String() != want {
			t.Fatalf("%d renders %q, want %q", int(test), test.String(), want)
		}
	}
}
