package coalesce

import (
	"errors"
	"fmt"

	"regcoal/internal/chordal"
	"regcoal/internal/graph"
)

// ErrNotChordal is returned by ChordalIncremental when the input graph is
// not chordal (the Theorem 5 algorithm is only valid on chordal graphs).
var ErrNotChordal = errors.New("coalesce: graph is not chordal")

// ChordalDecision is the constructive answer of the Theorem 5 algorithm.
type ChordalDecision struct {
	// OK reports whether x and y can receive the same color in some proper
	// k-coloring of the chordal graph.
	OK bool
	// Class, when OK, lists the vertices to merge with x and y (including
	// x and y themselves) so that coloring the quotient realizes the
	// identification. The class is pairwise non-interfering.
	Class []graph.V
	// PaddingCliques, when OK, holds the vertex sets of the path cliques
	// the tiling crossed via padding (dummy) intervals. Coloring the
	// quotient stays within k colors because each such clique has fewer
	// than k vertices.
	PaddingCliques [][]graph.V
}

// ChordalIncremental solves incremental conservative coalescing on chordal
// graphs in polynomial time (paper, Theorem 5): given a chordal graph g, an
// affinity (x, y), and k colors, decide whether some proper k-coloring of g
// gives x and y the same color — and produce the witnessing merge.
//
// The algorithm follows the paper's proof (Figure 5):
//
//  1. Represent g as subtrees of its clique tree (Golumbic Thm 4.8).
//  2. Answer "no" immediately if x and y interfere or k < ω(g); "yes"
//     immediately if their subtrees live in different tree components.
//  3. Take the tree path P from a clique of x to a clique of y, trimmed so
//     that only its first node contains x and only its last contains y.
//     Each vertex's subtree meets P in a contiguous interval.
//  4. Pad every path node whose clique has fewer than k vertices with
//     dummy unit intervals, so each node is covered by exactly k intervals.
//     (The paper pads to ω(G) under its running assumption k = ω; padding
//     to k is the straightforward generalization that keeps the claim true
//     for k > ω — see EXPERIMENTS.md.)
//  5. x and y can share a color iff disjoint intervals, including Ix and
//     Iy, cover all nodes of P — decided left-to-right in O(V·ω(G)) by
//     tiling: an interval may start exactly where the previous one ended.
//
// Merging the chosen intervals' vertices (plus x and y) yields a graph that
// is k-colorable; ChordalIncrementalColoring builds such a coloring.
func ChordalIncremental(g *graph.Graph, x, y graph.V, k int) (*ChordalDecision, error) {
	if x == y {
		return &ChordalDecision{OK: true, Class: []graph.V{x}}, nil
	}
	if g.HasEdge(x, y) {
		return &ChordalDecision{OK: false}, nil
	}
	ct, ok := chordal.NewCliqueTree(g)
	if !ok {
		return nil, ErrNotChordal
	}
	omega := 0
	for _, c := range ct.Cliques {
		if len(c) > omega {
			omega = len(c)
		}
	}
	if k < omega {
		return &ChordalDecision{OK: false}, nil
	}
	if len(ct.Member[x]) == 0 || len(ct.Member[y]) == 0 {
		return nil, fmt.Errorf("coalesce: vertex missing from clique tree")
	}
	rawPath, connected := ct.Path(ct.Member[x][0], ct.Member[y][0])
	if !connected {
		// Different components: color them independently, x and y share a
		// color trivially.
		return &ChordalDecision{OK: true, Class: []graph.V{x, y}}, nil
	}
	// Trim: keep from the last node containing x to the first node (after
	// that) containing y. Subtree∩path contiguity makes both well defined.
	lastX := 0
	for i, n := range rawPath {
		if ct.Contains(n, x) {
			lastX = i
		}
	}
	firstY := len(rawPath) - 1
	for i := lastX; i < len(rawPath); i++ {
		if ct.Contains(rawPath[i], y) {
			firstY = i
			break
		}
	}
	path := rawPath[lastX : firstY+1]
	m := len(path)
	if m < 2 {
		// x and y share a clique — but then they interfere, already
		// handled. Defensive.
		return &ChordalDecision{OK: false}, nil
	}
	// Intervals of all vertices over the trimmed path, indexed by start.
	type interval struct {
		v      graph.V
		lo, hi int
	}
	startsAt := make([][]interval, m)
	for v := 0; v < g.N(); v++ {
		if graph.V(v) == x || graph.V(v) == y {
			continue
		}
		lo, hi, ok := ct.VertexPathInterval(path, graph.V(v))
		if !ok {
			continue
		}
		startsAt[lo] = append(startsAt[lo], interval{v: graph.V(v), lo: lo, hi: hi})
	}
	// Padding availability: node p admits a dummy unit interval iff its
	// clique has fewer than k members.
	padOK := make([]bool, m)
	for i, n := range path {
		padOK[i] = len(ct.Cliques[n]) < k
	}
	// Tiling DP left to right. reach[b] = positions 0..b-1 are tiled by
	// disjoint intervals starting with Ix = [0,0]. pred reconstructs the
	// tiling: predVertex[b] is the real vertex whose interval ends at b-1,
	// or -1 for a padding step, or -2 for unreached.
	reach := make([]bool, m+1)
	predVertex := make([]graph.V, m+1)
	predFrom := make([]int, m+1)
	for i := range predVertex {
		predVertex[i] = -2
	}
	reach[1] = true // Ix covers node 0
	predVertex[1] = x
	predFrom[1] = 0
	for b := 1; b < m; b++ {
		if !reach[b] {
			continue
		}
		if padOK[b] && !reach[b+1] {
			reach[b+1] = true
			predVertex[b+1] = -1
			predFrom[b+1] = b
		}
		for _, iv := range startsAt[b] {
			end := iv.hi + 1
			// Iy must be the final interval: real intervals may not cover
			// the last node (only y's own interval does; y's interval is
			// exactly [m-1, m-1] by the trimming).
			if iv.hi >= m-1 {
				continue
			}
			if !reach[end] {
				reach[end] = true
				predVertex[end] = iv.v
				predFrom[end] = b
			}
		}
	}
	if !reach[m-1] {
		return &ChordalDecision{OK: false}, nil
	}
	// Reconstruct the tiling from boundary m-1 back to 0; then Iy finishes.
	dec := &ChordalDecision{OK: true, Class: []graph.V{x, y}}
	for b := m - 1; b > 1; b = predFrom[b] {
		switch predVertex[b] {
		case -1:
			// Padding step at node predFrom[b]: record the crossed clique.
			node := path[predFrom[b]]
			dec.PaddingCliques = append(dec.PaddingCliques, ct.Cliques[node])
		case -2:
			panic("coalesce: broken tiling reconstruction")
		default:
			dec.Class = append(dec.Class, predVertex[b])
		}
	}
	return dec, nil
}

// ChordalIncrementalColoring runs ChordalIncremental and, when the answer
// is yes, produces an actual proper k-coloring of g with col[x] == col[y].
// Following the paper's proof, it merges the decision's class, adds the
// padding-clique edges (so the quotient regains a chordal supergraph
// representation), and colors that supergraph optimally.
func ChordalIncrementalColoring(g *graph.Graph, x, y graph.V, k int) (graph.Coloring, bool, error) {
	dec, err := ChordalIncremental(g, x, y, k)
	if err != nil {
		return nil, false, err
	}
	if !dec.OK {
		return nil, false, nil
	}
	p := graph.NewPartition(g.N())
	for _, v := range dec.Class {
		p.Union(x, v)
	}
	q, old2new, err := graph.Quotient(g, p)
	if err != nil {
		return nil, false, fmt.Errorf("coalesce: merge class interferes internally: %w", err)
	}
	// Add the padding edges: the merged class crosses these cliques with a
	// dummy interval, which in the supergraph representation makes it
	// adjacent to every clique member.
	classVertex := old2new[x]
	for _, clique := range dec.PaddingCliques {
		for _, w := range clique {
			if old2new[w] != classVertex {
				q.AddEdge(classVertex, old2new[w])
			}
		}
	}
	col, omega, ok := chordal.Color(q)
	if !ok {
		return nil, false, fmt.Errorf("coalesce: supergraph not chordal (bug)")
	}
	if omega > k {
		return nil, false, fmt.Errorf("coalesce: supergraph needs %d > k=%d colors (bug)", omega, k)
	}
	return col.Lift(old2new), true, nil
}
