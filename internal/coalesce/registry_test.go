package coalesce

import (
	"context"
	"errors"
	"testing"

	"regcoal/internal/graph"
)

func TestRegistryCoreMatchesPinnedMatrix(t *testing.T) {
	want := []string{
		"aggressive", "briggs", "george", "briggs+george",
		"ext-george", "brute", "brute-sets", "optimistic",
	}
	core := CoreStrategies()
	if len(core) != len(want) {
		t.Fatalf("core strategies: got %d, want %d", len(core), len(want))
	}
	for i, s := range core {
		if s.Name != want[i] {
			t.Errorf("core[%d] = %q, want %q (order is pinned by benchmark trajectories)", i, s.Name, want[i])
		}
	}
}

func TestRegistryLookupAndRun(t *testing.T) {
	f, err := graph.ParseString("k 2\nnode a\nnode b\nnode c\nedge a b\nedge b c\nmove a c 5\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range StrategyNames() {
		s, ok := LookupStrategy(name)
		if !ok {
			t.Fatalf("StrategyNames listed %q but LookupStrategy misses it", name)
		}
		res, err := s.Run(context.Background(), f.G, f.K)
		if errors.Is(err, ErrInapplicable) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res == nil || res.P == nil {
			t.Fatalf("%s: nil result", name)
		}
		if res.P.N() != f.G.N() {
			t.Fatalf("%s: partition over %d vertices, want %d", name, res.P.N(), f.G.N())
		}
	}
	if _, ok := LookupStrategy("no-such-strategy"); ok {
		t.Fatal("lookup of unknown strategy succeeded")
	}
}

// The path a–b–c with move (a,c) is the canonical coalescable instance:
// every conservative strategy must coalesce it with k=2.
func TestRegistryConservativeCoalescesPath(t *testing.T) {
	f, err := graph.ParseString("k 2\nnode a\nnode b\nnode c\nedge a b\nedge b c\nmove a c 5\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"briggs", "george", "brute", "optimistic"} {
		s, _ := LookupStrategy(name)
		res, err := s.Run(context.Background(), f.G, f.K)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CoalescedWeight != 5 || !res.Colorable {
			t.Errorf("%s: coalesced weight %d colorable=%v, want 5/true", name, res.CoalescedWeight, res.Colorable)
		}
	}
}

func TestRegisterStrategyRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterStrategy(&NamedStrategy{Name: "briggs", Run: pure(Aggressive)})
}
