package coalesce

import (
	"sort"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// DecoalesceOrder selects which coalesced move the optimistic phase gives
// up first when the coalesced graph is not greedy-k-colorable.
type DecoalesceOrder int

const (
	// DecoalesceWitnessMinWeight gives up the cheapest move whose merged
	// class sits inside the non-simplifiable witness subgraph — the move
	// most likely to unblock simplification at the least cost. This is the
	// structure-aware order in the spirit of Park–Moon's primary/secondary
	// de-coalescing.
	DecoalesceWitnessMinWeight DecoalesceOrder = iota
	// DecoalesceGlobalMinWeight ignores the witness and always gives up the
	// globally cheapest coalesced move; the ablation baseline.
	DecoalesceGlobalMinWeight
)

// String names the order for reports.
func (d DecoalesceOrder) String() string {
	if d == DecoalesceWitnessMinWeight {
		return "witness-min-weight"
	}
	return "global-min-weight"
}

// Optimistic implements Park–Moon optimistic coalescing as discussed in §5:
//
//  1. Aggressive phase: coalesce every move the interferences allow,
//     highest weight first.
//  2. De-coalescing phase: while the coalesced graph is not
//     greedy-k-colorable, give up one coalesced move (per order) and
//     rebuild; the witness-guided order picks the cheapest move whose class
//     vertex lies in the stuck subgraph.
//  3. Re-coalescing pass: try every given-up move again with the
//     brute-force conservative test — de-coalescing one class can make
//     another given-up move safe after all.
//
// On a greedy-k-colorable input the result is always colorable (in the
// worst case everything is given up and the graph returns to g).
func Optimistic(g *graph.Graph, k int) *Result {
	return OptimisticOrdered(g, k, DecoalesceWitnessMinWeight)
}

// OptimisticOrdered is Optimistic with an explicit de-coalescing order,
// used by the ablation benchmarks.
func OptimisticOrdered(g *graph.Graph, k int, ord DecoalesceOrder) *Result {
	affs := g.Affinities()
	// Phase 1: aggressive, tracking which affinities got coalesced.
	p := graph.NewPartition(g.N())
	inSet := make([]bool, len(affs))
	for _, i := range affinityOrder(g) {
		a := affs[i]
		if graph.CanMerge(g, p, a.X, a.Y) {
			p.Union(a.X, a.Y)
			inSet[i] = true
		}
	}
	rebuild := func() (*graph.Partition, *graph.Graph, []graph.V) {
		np := graph.NewPartition(g.N())
		for i, in := range inSet {
			if in {
				np.Union(affs[i].X, affs[i].Y)
			}
		}
		q, old2new, err := graph.Quotient(g, np)
		if err != nil {
			panic("coalesce: optimistic rebuild incompatible: " + err.Error())
		}
		return np, q, old2new
	}
	// Phase 2: de-coalesce until greedy-k-colorable.
	rounds := 0
	var cur *graph.Graph
	var old2new []graph.V
	for {
		rounds++
		p, cur, old2new = rebuild()
		if greedy.IsGreedyKColorable(cur, k) {
			break
		}
		drop := -1
		switch ord {
		case DecoalesceWitnessMinWeight:
			witness := greedy.Witness(cur, k)
			inWitness := graph.NewBits(cur.N())
			for _, w := range witness {
				inWitness.Set(w)
			}
			for i, in := range inSet {
				if !in || !inWitness.Get(old2new[affs[i].X]) {
					continue
				}
				if drop == -1 || affs[i].Weight < affs[drop].Weight {
					drop = i
				}
			}
			if drop != -1 {
				break
			}
			fallthrough // no coalesced class in the witness: fall back
		case DecoalesceGlobalMinWeight:
			for i, in := range inSet {
				if !in {
					continue
				}
				if drop == -1 || affs[i].Weight < affs[drop].Weight {
					drop = i
				}
			}
		}
		if drop == -1 {
			// Nothing left to give up: g itself is not greedy-k-colorable.
			break
		}
		inSet[drop] = false
	}
	// Phase 3: conservative re-coalescing of given-up moves, heaviest
	// first, with the brute-force test.
	var retry []int
	for i, in := range inSet {
		if !in {
			retry = append(retry, i)
		}
	}
	sort.SliceStable(retry, func(a, b int) bool {
		return affs[retry[a]].Weight > affs[retry[b]].Weight
	})
	for _, i := range retry {
		a := affs[i]
		if BruteOK(g, p, a.X, a.Y, k) {
			p.Union(a.X, a.Y)
			inSet[i] = true
		}
	}
	return summarize(g, p, k, rounds)
}
