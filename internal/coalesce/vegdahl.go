package coalesce

import (
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// MergeToColor implements the node-merging idea the paper's introduction
// attributes to Vegdahl and Yang et al.: merging two vertices — even ones
// NOT related by a move — can turn a non-greedy-k-colorable graph into a
// greedy-k-colorable one, because shared neighbors lose a degree. The
// canonical example is C4 with k = 2: not greedy-2-colorable, but merging
// the two opposite corners yields a star, which is.
//
// The heuristic: while the graph is stuck, look at the witness subgraph
// (every vertex of degree >= k), try merging a non-adjacent pair with the
// most common neighbors (the merge that removes the most degrees), and
// keep the merge if it shrinks the witness. It returns the merge partition
// and whether the final graph is greedy-k-colorable. Conservative in
// spirit but NOT move-driven; the ablation benchmarks measure what it buys
// on top of coalescing.
func MergeToColor(g *graph.Graph, k int) (*graph.Partition, bool) {
	p := graph.NewPartition(g.N())
	for rounds := 0; rounds < g.N(); rounds++ {
		q, old2new, err := graph.Quotient(g, p)
		if err != nil {
			return p, false
		}
		witness := greedy.Witness(q, k)
		if len(witness) == 0 {
			return p, true
		}
		// Best non-adjacent witness pair by common-neighbor count.
		bestU, bestV, bestCommon := graph.V(-1), graph.V(-1), -1
		for i := 0; i < len(witness); i++ {
			for j := i + 1; j < len(witness); j++ {
				u, v := witness[i], witness[j]
				if q.HasEdge(u, v) {
					continue
				}
				if cu, okU := q.Precolored(u); okU {
					if cv, okV := q.Precolored(v); okV && cu != cv {
						continue
					}
				}
				common := 0
				q.ForEachNeighbor(u, func(w graph.V) {
					if q.HasEdge(v, w) {
						common++
					}
				})
				if common > bestCommon {
					bestU, bestV, bestCommon = u, v, common
				}
			}
		}
		if bestU == -1 || bestCommon <= 0 {
			return p, false // no merge can reduce any degree
		}
		// Merge the original-vertex classes mapping to bestU and bestV.
		var ou, ov graph.V = -1, -1
		for v := 0; v < g.N(); v++ {
			switch old2new[v] {
			case bestU:
				ou = graph.V(v)
			case bestV:
				ov = graph.V(v)
			}
		}
		beforeSize := len(witness)
		trial := p.Clone()
		trial.Union(ou, ov)
		q2, _, err := graph.Quotient(g, trial)
		if err != nil {
			return p, false
		}
		after := greedy.Witness(q2, k)
		if len(after) == 0 || len(after) < beforeSize {
			p = trial
			if len(after) == 0 {
				return p, true
			}
			continue
		}
		return p, false // merge did not help; give up rather than thrash
	}
	return p, false
}
