package coalesce

import (
	"sort"

	"regcoal/internal/chordal"
	"regcoal/internal/graph"
)

// ChordalProgressive implements the strategy the paper sketches right
// after Theorem 5: on a chordal graph, coalesce affinities one at a time,
// deciding each with the polynomial Theorem 5 test, and after each
// accepted merge make the graph chordal again "by an appropriate merge of
// vertices" — here by merging the whole interval class the decision
// returns and adding the padding-clique edges, which restores a
// subtree-of-a-tree representation while keeping ω ≤ k.
//
// The paper warns that "these artificial merges may prevent to coalesce
// more important affinities afterwards"; processing affinities by
// decreasing weight puts the important ones first, and the ablation
// experiment measures the remaining loss against the brute-force driver.
//
// The input must be chordal with ω(g) ≤ k. The result's partition maps the
// original vertices; Colorable is always true on a valid input (the final
// graph is k-colorable by construction).
func ChordalProgressive(g *graph.Graph, k int) (*Result, error) {
	if !chordal.IsChordal(g) {
		return nil, ErrNotChordal
	}
	p := graph.NewPartition(g.N())
	// cur is the working chordal graph: the quotient of g by p, PLUS the
	// artificial padding edges accumulated by previous merges. We carry
	// those edges across quotients by an explicit extra-edge list on
	// original-vertex representatives.
	type extraEdge struct{ a, b graph.V } // original-vertex ids
	var extras []extraEdge
	build := func() (*graph.Graph, []graph.V, error) {
		q, old2new, err := graph.Quotient(g, p)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range extras {
			x, y := old2new[e.a], old2new[e.b]
			if x != y {
				q.AddEdge(x, y)
			}
		}
		return q, old2new, nil
	}
	affs := append([]graph.Affinity(nil), g.Affinities()...)
	sort.SliceStable(affs, func(i, j int) bool {
		if affs[i].Weight != affs[j].Weight {
			return affs[i].Weight > affs[j].Weight
		}
		if affs[i].X != affs[j].X {
			return affs[i].X < affs[j].X
		}
		return affs[i].Y < affs[j].Y
	})
	rounds := 0
	for _, a := range affs {
		rounds++
		cur, old2new, err := build()
		if err != nil {
			return nil, err
		}
		cx, cy := old2new[a.X], old2new[a.Y]
		if cx == cy {
			continue // already coalesced transitively
		}
		if cur.HasEdge(cx, cy) {
			continue // constrained (possibly by an artificial edge)
		}
		dec, err := ChordalIncremental(cur, cx, cy, k)
		if err != nil {
			// The working graph must stay chordal by construction; a
			// failure here is a bug worth surfacing.
			return nil, err
		}
		if !dec.OK {
			continue
		}
		// Merge the whole decision class (x, y and the bridging interval
		// vertices) and record the padding edges so the next round's graph
		// keeps a chordal representation.
		classReps := dec.Class
		// Map quotient vertices back to an original representative.
		repOf := make(map[graph.V]graph.V, cur.N())
		for ov := 0; ov < g.N(); ov++ {
			if _, seen := repOf[old2new[ov]]; !seen {
				repOf[old2new[ov]] = graph.V(ov)
			}
		}
		base := repOf[cx]
		for _, cv := range classReps {
			p.Union(base, repOf[cv])
		}
		for _, clique := range dec.PaddingCliques {
			for _, w := range clique {
				if w != cx && w != cy {
					extras = append(extras, extraEdge{a: base, b: repOf[w]})
				}
			}
		}
	}
	// Summarize against the ORIGINAL graph (artificial edges are
	// bookkeeping, not interference).
	res := summarize(g, p, 0, rounds)
	cur, _, err := build()
	if err != nil {
		return nil, err
	}
	peo, ok := chordal.PEO(cur)
	res.Colorable = ok && chordal.Omega(cur, peo) <= k
	return res, nil
}
