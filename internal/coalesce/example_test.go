package coalesce_test

import (
	"fmt"

	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
)

// ExampleConservative coalesces the path-with-a-move instance with
// Briggs' test: merging the endpoints of the move keeps the graph
// greedy-2-colorable, so the move is coalesced.
func ExampleConservative() {
	g := graph.NewNamed("a", "b", "c", "d")
	a, b, c, d := graph.V(0), graph.V(1), graph.V(2), graph.V(3)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddAffinity(a, c, 5)

	res := coalesce.Conservative(g, 2, coalesce.TestBriggs)
	fmt.Println("coalesced moves:", len(res.Coalesced))
	fmt.Println("coalesced weight:", res.CoalescedWeight)
	fmt.Println("still greedy-2-colorable:", res.Colorable)
	// Output:
	// coalesced moves: 1
	// coalesced weight: 5
	// still greedy-2-colorable: true
}
