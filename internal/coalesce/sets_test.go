package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// The whole point: the set-extended driver escapes the Figure 3 triangle
// trap that stops every single-move driver, including exact per-move
// testing.
func TestConservativeSetsEscapesTriangleTrap(t *testing.T) {
	g, k, _ := Fig3Triangle()
	single := Conservative(g, k, TestBrute)
	if len(single.Coalesced) != 0 {
		t.Fatal("premise: single-move driver must be stuck")
	}
	sets := ConservativeSets(g, k, 2)
	if len(sets.Remaining) != 0 {
		t.Fatalf("set driver left %v", sets.Remaining)
	}
	if !sets.Colorable {
		t.Fatal("set driver must stay colorable")
	}
}

func TestConservativeSetsPermutation(t *testing.T) {
	// The boosted permutation gadget: singles work for brute there, but
	// the set driver must also handle it (and not regress).
	g, k, _ := Fig3Permutation(4)
	res := ConservativeSets(g, k, 4)
	if len(res.Remaining) != 0 {
		t.Fatalf("set driver left %d moves", len(res.Remaining))
	}
}

func TestConservativeSetsMaxSetOne(t *testing.T) {
	// maxSet=1 degenerates to the single-move brute driver.
	g, k, _ := Fig3Triangle()
	res := ConservativeSets(g, k, 1)
	if len(res.Coalesced) != 0 {
		t.Fatal("maxSet=1 must behave like the single-move driver here")
	}
}

// Soundness and monotonicity: the set driver is conservative (result stays
// greedy-k-colorable) and never coalesces less weight than the single-move
// brute driver on the same instance.
func TestQuickConservativeSetsSoundAndAtLeastBrute(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n/2+1, 4)
		k := greedy.ColoringNumber(g)
		single := Conservative(g, k, TestBrute)
		sets := ConservativeSets(g, k, 2)
		if !sets.Colorable {
			return false
		}
		if !sets.P.CompatibleWith(g) {
			return false
		}
		// The set driver runs the same single pass first, so it cannot do
		// worse than... strictly speaking greedy orders could diverge
		// after a set merge; require no regression in total weight on
		// these small instances where pass 1 dominates.
		return sets.CoalescedWeight >= single.CoalescedWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
