package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

func TestOptimisticStaysColorable(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%14) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n, 4)
		k := greedy.ColoringNumber(g)
		for _, ord := range []DecoalesceOrder{DecoalesceWitnessMinWeight, DecoalesceGlobalMinWeight} {
			res := OptimisticOrdered(g, k, ord)
			if !res.Colorable {
				return false
			}
			if !res.P.CompatibleWith(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimisticBeatsLocalRulesOnFig3(t *testing.T) {
	// The permutation trap: local conservative rules coalesce nothing;
	// optimistic coalesces everything (aggressive phase succeeds, nothing
	// needs de-coalescing).
	g, k, _ := Fig3Permutation(4)
	local := Conservative(g, k, TestBriggsGeorge)
	opti := Optimistic(g, k)
	if local.CoalescedWeight != 0 {
		t.Fatalf("premise: local rules should coalesce nothing, got %d", local.CoalescedWeight)
	}
	if len(opti.Remaining) != 0 {
		t.Fatalf("optimistic left %d moves on the table", len(opti.Remaining))
	}
	if !opti.Colorable {
		t.Fatal("optimistic result must stay colorable")
	}
	// Same on the triangle trap.
	g2, k2, _ := Fig3Triangle()
	opti2 := Optimistic(g2, k2)
	if len(opti2.Remaining) != 0 || !opti2.Colorable {
		t.Fatalf("optimistic on triangle trap: remaining=%d colorable=%v",
			len(opti2.Remaining), opti2.Colorable)
	}
}

func TestOptimisticDecoalescesWhenForced(t *testing.T) {
	// Permutation gadget with k = p-1: the coalesced K_p needs p colors,
	// so at least one move must be given up; the original sources clique
	// already needs p colors, hence k = p means feasible. With k = p-1 the
	// input graph itself is not colorable: the phase-2 loop must terminate
	// with everything given up and Colorable=false.
	g, _, _ := graph.Permutation(3)
	res := Optimistic(g, 2)
	if res.Colorable {
		t.Fatal("K3 sources cannot be 2-colorable; result must admit failure")
	}
	// k = 3: feasible, everything coalesces into K3.
	res3 := Optimistic(g, 3)
	if !res3.Colorable || len(res3.Remaining) != 0 {
		t.Fatalf("perm(3) with k=3: colorable=%v remaining=%d", res3.Colorable, len(res3.Remaining))
	}
}

func TestOptimisticNeverWorseThanGivingUpAll(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		graph.SprinkleAffinities(rng, g, n, 3)
		k := greedy.ColoringNumber(g)
		res := Optimistic(g, k)
		// Trivially, remaining weight cannot exceed the total.
		return res.RemainingWeight <= g.TotalAffinityWeight() && res.Colorable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Optimistic heuristic vs the exact de-coalescing optimum on tiny
// instances: it must be feasible (colorable) and within the trivial bound;
// measure how often it is exactly optimal (it need not always be, but on
// these sizes it should never be unsound).
func TestQuickOptimisticVsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, 8, 0.3)
		graph.SprinkleAffinities(rng, g, 5, 3)
		k := greedy.ColoringNumber(g)
		res := Optimistic(g, k)
		opt := exact.OptimalDecoalesce(g, k, exact.MinimizeWeight)
		// Heuristic can only do worse or equal.
		return res.RemainingWeight >= opt.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoalesceOrderString(t *testing.T) {
	if DecoalesceWitnessMinWeight.String() == DecoalesceGlobalMinWeight.String() {
		t.Fatal("orders must render distinctly")
	}
}

// The re-coalescing pass matters: construct a case where de-coalescing in
// weight order gives up a move that can be re-coalesced after another class
// breaks. At minimum, verify phase 3 never makes the result uncolorable.
func TestOptimisticRecoalescePreservesSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomER(rng, 12, 0.3)
		graph.SprinkleAffinities(rng, g, 10, 5)
		k := greedy.ColoringNumber(g)
		res := Optimistic(g, k)
		q, _, err := graph.Quotient(g, res.P)
		if err != nil {
			t.Fatal(err)
		}
		if !greedy.IsGreedyKColorable(q, k) {
			t.Fatal("re-coalescing broke colorability")
		}
	}
}
