package coalesce

import (
	"fmt"

	"regcoal/internal/graph"
)

// This file constructs the two "local rules are not enough" examples of the
// paper's Figure 3 as concrete, machine-checkable instances.

// Fig3Permutation builds the left/middle example of Figure 3: a permutation
// of p values (see graph.Permutation) augmented with the "other vertices
// not shown" the caption appeals to — one degree booster per gadget vertex
// so that the move endpoints' neighbors remain significant after a merge.
// Each booster is a vertex adjacent to its gadget vertex and to k-1 fresh
// leaves, where k = 2(p-1) is the register count of the scenario.
//
// With this instance and k = 2(p-1):
//   - Briggs' and George's tests reject every single move (u_i, v_i): the
//     merged vertex has 2(p-1)+2 significant neighbors, and each side owns
//     a significant booster the other side does not know;
//   - yet coalescing all p moves simultaneously collapses the gadget to a
//     p-clique and the graph is greedy-k-colorable (BruteSetOK accepts).
//
// It returns the graph, k, and the p moves.
func Fig3Permutation(p int) (*graph.Graph, int, []graph.Affinity) {
	if p < 2 {
		panic("coalesce: Fig3Permutation needs p >= 2")
	}
	g, sources, dests := graph.Permutation(p)
	k := 2 * (p - 1)
	boost := func(w graph.V, tag string) {
		e := g.AddNamedVertex("boost_" + tag)
		g.AddEdge(e, w)
		for i := 0; i < k-1; i++ {
			leaf := g.AddNamedVertex(fmt.Sprintf("leaf_%s_%d", tag, i))
			g.AddEdge(e, leaf)
		}
	}
	for i := 0; i < p; i++ {
		boost(sources[i], fmt.Sprintf("u%d", i+1))
		boost(dests[i], fmt.Sprintf("v%d", i+1))
	}
	moves := make([]graph.Affinity, p)
	for i := range moves {
		moves[i] = graph.Affinity{X: sources[i], Y: dests[i], Weight: 1}.Canon()
	}
	return g, k, moves
}

// Fig5Gap returns a frozen chordal instance (found by randomized search)
// exhibiting the subtlety the paper discusses after Theorem 5: with k = 3,
// the vertices x and y CAN share a color (the Theorem 5 decision is yes),
// but merging only {x, y} leaves a graph that is not greedy-3-colorable —
// the merge of the whole interval class (and the artificial padding
// merges) is what keeps the strategy going, at the price the paper warns
// about. It returns the graph, k, and the affinity endpoints.
func Fig5Gap() (*graph.Graph, int, graph.V, graph.V) {
	g := graph.New(8)
	for _, e := range [][2]graph.V{
		{0, 1}, {0, 3}, {1, 3}, {1, 4}, {3, 4}, {3, 6}, {4, 6}, {5, 6}, {6, 7},
	} {
		g.AddEdge(e[0], e[1])
	}
	g.AddAffinity(7, 0, 1)
	return g, 3, 7, 0
}

// Fig3Triangle builds the right example of Figure 3: a greedy-3-colorable
// graph with affinities (a, b) and (a, c) such that coalescing both
// simultaneously keeps the graph greedy-3-colorable, while coalescing
// either one alone does not. It demonstrates that incremental conservative
// coalescing, even with the exact per-move test, can be trapped by move
// ordering — one must consider affinities "obtained by transitivity".
//
// The instance (found by exhaustive search over 7-vertex graphs, then
// frozen) uses vertices a, b, c and four auxiliaries d, e, f, g:
//
//	a-f, a-g, b-d, b-e, b-g, c-d, c-e, c-f, d-e, d-f, d-g
//
// It returns the graph, k = 3, and the two affinities, with a, b, c as
// vertices 0, 1, 2.
func Fig3Triangle() (*graph.Graph, int, []graph.Affinity) {
	g := graph.NewNamed("a", "b", "c", "d", "e", "f", "g")
	edges := [][2]graph.V{
		{0, 5}, {0, 6},
		{1, 3}, {1, 4}, {1, 6},
		{2, 3}, {2, 4}, {2, 5},
		{3, 4}, {3, 5}, {3, 6},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	g.AddAffinity(0, 1, 1)
	g.AddAffinity(0, 2, 1)
	moves := []graph.Affinity{
		{X: 0, Y: 1, Weight: 1},
		{X: 0, Y: 2, Weight: 1},
	}
	return g, 3, moves
}
