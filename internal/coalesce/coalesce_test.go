package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

func TestAggressiveCoalescesEverythingPossible(t *testing.T) {
	// Independent affinities all coalesce.
	g := graph.New(6)
	g.AddAffinity(0, 1, 3)
	g.AddAffinity(2, 3, 1)
	g.AddAffinity(4, 5, 2)
	res := Aggressive(g, 0)
	if len(res.Remaining) != 0 || res.CoalescedWeight != 6 {
		t.Fatalf("remaining=%v, weight=%d", res.Remaining, res.CoalescedWeight)
	}
}

func TestAggressivePrefersHeavyMoves(t *testing.T) {
	// x conflicts with coalescing both (a, x) and (b, x) because a-b
	// interfere: the heavier affinity must win.
	g := graph.NewNamed("a", "b", "x")
	g.AddEdge(0, 1)
	g.AddAffinity(0, 2, 1)  // light
	g.AddAffinity(1, 2, 10) // heavy
	res := Aggressive(g, 0)
	if !res.P.Same(1, 2) {
		t.Fatal("heavy move (b,x) should be coalesced")
	}
	if res.P.Same(0, 2) {
		t.Fatal("light move cannot also be coalesced")
	}
	if res.RemainingWeight != 1 {
		t.Fatalf("remaining weight=%d, want 1", res.RemainingWeight)
	}
}

func TestAggressiveRespectsInterference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.3)
		graph.SprinkleAffinities(rng, g, n, 5)
		res := Aggressive(g, 0)
		return res.P.CompatibleWith(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAggressiveReportsColorability(t *testing.T) {
	// Coalescing the permutation gadget's moves yields a p-clique: with
	// k = p it stays colorable, with k = p-1 it does not.
	g, _, _ := graph.Permutation(3)
	if res := Aggressive(g, 3); !res.Colorable {
		t.Fatal("perm(3) coalesced is a K3: greedy-3-colorable")
	}
	// The original gadget needs 3 colors already (sources form K3), and
	// the coalesced K3 is not 2-colorable.
	if res := Aggressive(g, 2); res.Colorable {
		t.Fatal("coalesced K3 reported greedy-2-colorable")
	}
}

// Aggressive heuristic never beats the exact optimum, and matches it on
// conflict-free instances.
func TestQuickAggressiveVsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, 8, 0.3)
		graph.SprinkleAffinities(rng, g, 6, 4)
		res := Aggressive(g, 0)
		opt := exact.OptimalAggressive(g, exact.MinimizeWeight)
		return res.RemainingWeight >= opt.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeSplitsWeights(t *testing.T) {
	g := graph.New(4)
	g.AddAffinity(0, 1, 5)
	g.AddAffinity(2, 3, 7)
	p := graph.NewPartition(4)
	p.Union(0, 1)
	res := summarize(g, p, 0, 1)
	if res.CoalescedWeight != 5 || res.RemainingWeight != 7 {
		t.Fatalf("weights %d/%d, want 5/7", res.CoalescedWeight, res.RemainingWeight)
	}
	if len(res.Coalesced) != 1 || len(res.Remaining) != 1 {
		t.Fatalf("split %d/%d", len(res.Coalesced), len(res.Remaining))
	}
}

func TestStateMergeRefreshesQuotient(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddAffinity(1, 2, 1)
	s := newState(g)
	if s.cur.N() != 4 {
		t.Fatalf("initial quotient n=%d", s.cur.N())
	}
	s.merge(1, 2)
	if s.cur.N() != 3 {
		t.Fatalf("after merge quotient n=%d", s.cur.N())
	}
	cx, cy := s.mapped(graph.Affinity{X: 1, Y: 2})
	if cx != cy {
		t.Fatal("mapped endpoints should coincide after merge")
	}
}

// All strategies on all-coalescible instances agree: zero remaining weight.
func TestStrategiesOnIndependentMoves(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 8; i += 2 {
		g.AddAffinity(graph.V(i), graph.V(i+1), int64(i+1))
	}
	k := 2
	for _, res := range []*Result{
		Aggressive(g, k),
		Conservative(g, k, TestBriggs),
		Conservative(g, k, TestGeorge),
		Conservative(g, k, TestBriggsGeorge),
		Conservative(g, k, TestExtendedGeorge),
		Conservative(g, k, TestBrute),
		Optimistic(g, k),
	} {
		if res.RemainingWeight != 0 {
			t.Fatalf("remaining weight %d on trivially coalescible instance", res.RemainingWeight)
		}
		if !res.Colorable {
			t.Fatal("result should stay colorable")
		}
	}
}

// greedy-colorable quotient invariant: conservative results always quotient
// to a valid graph.
func TestQuickResultsQuotientValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.25)
		graph.SprinkleAffinities(rng, g, n, 4)
		k := greedy.ColoringNumber(g)
		for _, res := range []*Result{
			Aggressive(g, k),
			Conservative(g, k, TestBriggsGeorge),
			Conservative(g, k, TestBrute),
			Optimistic(g, k),
		} {
			if !res.P.CompatibleWith(g) {
				return false
			}
			if _, _, err := graph.Quotient(g, res.P); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
