package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"regcoal/internal/graph"
)

// Strategy registry: the single catalogue of named coalescing strategies,
// shared by the regcoal facade, the benchmark engine's strategy matrix,
// and the online service's deadline-raced portfolio. Every entry takes a
// context so that expensive strategies can be raced under a deadline;
// polynomial strategies are free to ignore it.

// ErrInapplicable is returned by a strategy that declines an instance
// (e.g. the chordal-incremental driver on a non-chordal graph, or
// merge-to-color when no merge helps). Callers racing a portfolio treat
// it as "no answer from this member", not as a failure.
var ErrInapplicable = errors.New("coalesce: strategy inapplicable to this instance")

// NamedStrategy is one registry entry.
type NamedStrategy struct {
	// Name identifies the strategy in flags, API requests and records.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Core marks the strategies of the pinned benchmark matrix
	// (engine.StrategyRunners): their names and order are stable across
	// releases because persisted benchmark trajectories key on them.
	Core bool
	// Run evaluates the strategy. It must not mutate g, must be
	// deterministic given (g, k), and should poll ctx when its worst case
	// is super-polynomial.
	Run func(ctx context.Context, g *graph.Graph, k int) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]*NamedStrategy)
	order      []string
)

// RegisterStrategy adds a strategy; duplicate names panic (registration
// happens at init time, where a collision is a programming error).
func RegisterStrategy(s *NamedStrategy) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if s.Name == "" || s.Run == nil {
		panic("coalesce: RegisterStrategy needs a name and a Run func")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("coalesce: duplicate strategy %q", s.Name))
	}
	registry[s.Name] = s
	order = append(order, s.Name)
}

// LookupStrategy finds a registered strategy by name.
func LookupStrategy(name string) (*NamedStrategy, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Strategies returns all registered strategies in registration order.
func Strategies() []*NamedStrategy {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]*NamedStrategy, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// CoreStrategies returns the pinned benchmark strategies, in registration
// order.
func CoreStrategies() []*NamedStrategy {
	var out []*NamedStrategy
	for _, s := range Strategies() {
		if s.Core {
			out = append(out, s)
		}
	}
	return out
}

// StrategyNames returns all registered names, sorted, for error messages
// and flag docs.
func StrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := append([]string(nil), order...)
	sort.Strings(names)
	return names
}

// ResultFromPartition summarizes an externally computed coalescing (e.g.
// the partial best of a canceled exact search) into the strategy Result
// shape, checking colorability against k.
func ResultFromPartition(g *graph.Graph, p *graph.Partition, k int) *Result {
	return summarize(g, p, k, 1)
}

// pure adapts a context-free strategy function.
func pure(run func(g *graph.Graph, k int) *Result) func(context.Context, *graph.Graph, int) (*Result, error) {
	return func(_ context.Context, g *graph.Graph, k int) (*Result, error) {
		return run(g, k), nil
	}
}

func init() {
	for _, s := range []*NamedStrategy{
		{Name: "aggressive", Core: true,
			Description: "merge every move the interferences allow (§3)",
			Run:         pure(Aggressive)},
		{Name: "briggs", Core: true,
			Description: "conservative coalescing, Briggs' rule (§4)",
			Run: pure(func(g *graph.Graph, k int) *Result {
				return Conservative(g, k, TestBriggs)
			})},
		{Name: "george", Core: true,
			Description: "conservative coalescing, George's rule (§4)",
			Run: pure(func(g *graph.Graph, k int) *Result {
				return Conservative(g, k, TestGeorge)
			})},
		{Name: "briggs+george", Core: true,
			Description: "conservative coalescing, either local rule (§4)",
			Run: pure(func(g *graph.Graph, k int) *Result {
				return Conservative(g, k, TestBriggsGeorge)
			})},
		{Name: "ext-george", Core: true,
			Description: "conservative coalescing, extended George rule (§4)",
			Run: pure(func(g *graph.Graph, k int) *Result {
				return Conservative(g, k, TestExtendedGeorge)
			})},
		{Name: "brute", Core: true,
			Description: "conservative coalescing, merge-and-check test (§4)",
			Run: pure(func(g *graph.Graph, k int) *Result {
				return Conservative(g, k, TestBrute)
			})},
		{Name: "brute-sets", Core: true,
			Description: "brute test with set coalescing of up to 2 moves (§4)",
			Run: pure(func(g *graph.Graph, k int) *Result {
				return ConservativeSets(g, k, 2)
			})},
		{Name: "optimistic", Core: true,
			Description: "aggressive + de-coalescing (§5, Park–Moon)",
			Run:         pure(Optimistic)},
		{Name: "chordal-inc",
			Description: "progressive chordal incremental coalescing (Thm 5); chordal inputs only",
			Run: func(_ context.Context, g *graph.Graph, k int) (*Result, error) {
				res, err := ChordalProgressive(g, k)
				if errors.Is(err, ErrNotChordal) {
					return nil, fmt.Errorf("%w: %v", ErrInapplicable, err)
				}
				return res, err
			}},
		{Name: "vegdahl",
			Description: "merge-to-color node merging (Vegdahl/Yang), not move-driven",
			Run: func(_ context.Context, g *graph.Graph, k int) (*Result, error) {
				p, ok := MergeToColor(g, k)
				if !ok {
					return nil, fmt.Errorf("%w: merge-to-color found no helpful merge", ErrInapplicable)
				}
				return summarize(g, p, k, 1), nil
			}},
	} {
		RegisterStrategy(s)
	}
}
