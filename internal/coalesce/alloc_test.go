package coalesce

// Zero-allocation gate for the word-parallel conservative tests: BriggsOK
// is probed once per (affinity, round) by every conservative driver and
// by IRC-style allocators, so it must not allocate at all — its
// neighborhood-union scan runs over the graph's own bitset rows. GeorgeOK
// rides along under the same gate.

import (
	"math/rand"
	"testing"

	"regcoal/internal/graph"
)

func TestBriggsOKZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb1995))
	g := graph.RandomER(rng, 200, 0.2)
	k := 8
	// Probe a fixed spread of non-adjacent pairs, covering pass and fail.
	type pair struct{ x, y graph.V }
	var pairs []pair
	for x := graph.V(0); x < 40 && len(pairs) < 16; x++ {
		for y := x + 1; y < 200; y += 13 {
			if !g.HasEdge(x, y) {
				pairs = append(pairs, pair{x, y})
				break
			}
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no non-adjacent probe pairs in the gate instance")
	}
	sink := false
	allocs := testing.AllocsPerRun(50, func() {
		for _, p := range pairs {
			sink = BriggsOK(g, p.x, p.y, k) || sink
			sink = GeorgeOK(g, p.x, p.y, k) || sink
		}
	})
	_ = sink
	if graph.RaceEnabled {
		t.Skipf("race detector active, alloc count (%v) not asserted", allocs)
	}
	if allocs != 0 {
		t.Fatalf("BriggsOK/GeorgeOK allocate %v times per probe batch, want 0", allocs)
	}
}
