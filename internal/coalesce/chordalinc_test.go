package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/chordal"
	"regcoal/internal/exact"
	"regcoal/internal/graph"
)

func TestChordalIncrementalPath(t *testing.T) {
	// x - a - y: x and y can share a color with k=2.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	dec, err := ChordalIncremental(g, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.OK {
		t.Fatal("path endpoints must be identifiable with k=2")
	}
	// P4: x - a - b - y. With k=2 the tiling is blocked (Ia=[0,1],
	// Ib=[1,2] on the 3-clique path, no interval [1,1], no padding since
	// every clique has 2 = k vertices). With k=3, padding rescues it.
	h := graph.New(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	dec2, err := ChordalIncremental(h, 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.OK {
		t.Fatal("P4 endpoints cannot share a color with k=2")
	}
	dec3, err := ChordalIncremental(h, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !dec3.OK {
		t.Fatal("P4 endpoints share a color with k=3 (this is the k>ω padding generalization)")
	}
	if len(dec3.PaddingCliques) == 0 {
		t.Fatal("the k=3 tiling must cross a padding clique")
	}
}

func TestChordalIncrementalEdgeCases(t *testing.T) {
	g := graph.New(2)
	// Same vertex: trivially yes.
	dec, err := ChordalIncremental(g, 0, 0, 1)
	if err != nil || !dec.OK {
		t.Fatalf("x==y: %v %v", dec, err)
	}
	// Interfering endpoints: no.
	g.AddEdge(0, 1)
	dec, err = ChordalIncremental(g, 0, 1, 5)
	if err != nil || dec.OK {
		t.Fatalf("interfering: %v %v", dec, err)
	}
	// Disconnected components: yes.
	h := graph.New(4)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	dec, err = ChordalIncremental(h, 0, 2, 2)
	if err != nil || !dec.OK {
		t.Fatalf("disconnected: %v %v", dec, err)
	}
	// k below omega: no.
	tri := graph.New(4)
	tri.AddClique(0, 1, 2)
	dec, err = ChordalIncremental(tri, 0, 3, 2)
	if err != nil || dec.OK {
		t.Fatalf("k<omega: %v %v", dec, err)
	}
	// Non-chordal input: error.
	c4 := graph.New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if _, err := ChordalIncremental(c4, 0, 2, 3); err == nil {
		t.Fatal("C4 must be rejected")
	}
}

// Figure 5 cases: interval graphs where Ix and Iy can / cannot be linked by
// contiguous intervals.
func TestChordalIncrementalFigure5(t *testing.T) {
	// Feasible case: intervals tile the line from Ix to Iy.
	// x=[0,1], a=[2,3], y=[4,5], plus clutter making every point covered:
	// b=[0,3], c=[2,5], d=[4,5]... keep it minimal: x=[0,0], a=[1,1],
	// y=[2,2] with k=2 and a second row r=[0,2] forcing ω=2:
	ivs := []graph.Interval{
		{Lo: 0, Hi: 0}, // x
		{Lo: 1, Hi: 1}, // a
		{Lo: 2, Hi: 2}, // y
		{Lo: 0, Hi: 2}, // r spans everything
	}
	g := graph.IntervalGraph(ivs)
	dec, err := ChordalIncremental(g, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.OK {
		t.Fatal("x-a-y interval chain should allow identification")
	}
	// The constructive coloring must realize the identification. (Which
	// vertices end up in the merge class depends on the clique tree shape:
	// a star-shaped tree links the x and y cliques directly, bypassing a.)
	col, ok, err := ChordalIncrementalColoring(g, 0, 2, 2)
	if err != nil || !ok || !col.Proper(g) || col[0] != col[2] {
		t.Fatalf("coloring does not realize identification: %v %v %v", col, ok, err)
	}
	// Infeasible case (Fig 5 top): overlapping intervals with no contiguous
	// handoff at full coverage. x=[0,0], y=[3,3], a=[0,2], b=[1,3]:
	// between x and y every interval overlaps rather than abuts, k=2=ω.
	ivs2 := []graph.Interval{
		{Lo: 0, Hi: 0}, // x
		{Lo: 3, Hi: 3}, // y
		{Lo: 0, Hi: 2}, // a
		{Lo: 1, Hi: 3}, // b
	}
	g2 := graph.IntervalGraph(ivs2)
	dec2, err := ChordalIncremental(g2, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.OK {
		t.Fatal("overlapping handoff must block identification at k=ω=2")
	}
	// Same graph with k=3: padding rescues it.
	dec3, err := ChordalIncremental(g2, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !dec3.OK {
		t.Fatal("k=3 must rescue the blocked handoff")
	}
}

// Ground truth: the polynomial decision matches exact coloring with
// identification on random chordal graphs.
func TestQuickChordalIncrementalMatchesExact(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, n, 8, 3)
		peo, ok := chordal.PEO(g)
		if !ok {
			return false
		}
		omega := chordal.Omega(g, peo)
		k := omega + int(kRaw%2) // test both k = ω and k = ω+1
		x := graph.V(rng.Intn(n))
		y := graph.V(rng.Intn(n))
		dec, err := ChordalIncremental(g, x, y, k)
		if err != nil {
			return false
		}
		_, want := exact.KColorableIdentified(g, x, y, k)
		if x == y {
			want = true // exact KColorable(g, k) with k >= ω is always true
		}
		return dec.OK == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The same, on interval graphs (the paper's Figure 5 is drawn on
// intervals).
func TestQuickChordalIncrementalIntervals(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomInterval(rng, n, 12, 4)
		peo, ok := chordal.PEO(g)
		if !ok {
			return false
		}
		k := chordal.Omega(g, peo)
		x := graph.V(rng.Intn(n))
		y := graph.V(rng.Intn(n))
		dec, err := ChordalIncremental(g, x, y, k)
		if err != nil {
			return false
		}
		_, want := exact.KColorableIdentified(g, x, y, k)
		if x == y {
			want = k >= 1 || n == 0
		}
		return dec.OK == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Constructive check: when the decision is yes, the produced coloring is a
// proper k-coloring identifying x and y.
func TestQuickChordalIncrementalColoring(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, n, 8, 3)
		peo, ok := chordal.PEO(g)
		if !ok {
			return false
		}
		k := chordal.Omega(g, peo) + int(kRaw%2)
		x := graph.V(rng.Intn(n))
		y := graph.V(rng.Intn(n))
		col, ok, err := ChordalIncrementalColoring(g, x, y, k)
		if err != nil {
			return false
		}
		if !ok {
			return true // nothing to verify; decision correctness is tested above
		}
		if !col.Proper(g) {
			return false
		}
		if col[x] != col[y] {
			return false
		}
		return col.MaxColor() < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The decision class is pairwise non-interfering (it is a mergeable class).
func TestQuickChordalIncrementalClassIndependent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, n, 8, 3)
		peo, ok := chordal.PEO(g)
		if !ok {
			return false
		}
		k := chordal.Omega(g, peo)
		x := graph.V(rng.Intn(n))
		y := graph.V(rng.Intn(n))
		dec, err := ChordalIncremental(g, x, y, k)
		if err != nil || !dec.OK {
			return err == nil
		}
		for i := 0; i < len(dec.Class); i++ {
			for j := i + 1; j < len(dec.Class); j++ {
				if dec.Class[i] != dec.Class[j] && g.HasEdge(dec.Class[i], dec.Class[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The coverage gap behind the session layer's fallback contract: a merge
// that is individually fine can break chordality. Pairwise-merging the
// endpoints of P5 creates a chordless C4, and only the decision's full
// interval class (which the Theorem 5 tiling returns) keeps the quotient
// chordal. This pins that the class is the chordality-restoring merge,
// not just a colorability witness.
func TestChordalIncrementalMergeClassRestoresChordality(t *testing.T) {
	// P5: 0-1-2-3-4, affinity (0, 4), k=2 (= omega).
	g := graph.New(5)
	for v := 0; v < 4; v++ {
		g.AddEdge(graph.V(v), graph.V(v+1))
	}
	dec, err := ChordalIncremental(g, 0, 4, 2)
	if err != nil || !dec.OK {
		t.Fatalf("P5 endpoints with k=2: dec=%+v err=%v", dec, err)
	}

	quotient := func(p *graph.Partition) *graph.Graph {
		q, _, qerr := graph.Quotient(g, p)
		if qerr != nil {
			t.Fatalf("quotient: %v", qerr)
		}
		return q
	}
	// Naive pairwise merge of just {0, 4}: the quotient is C4 — NOT
	// chordal. A driver that merged only the endpoints would hand its next
	// ChordalIncremental call a graph the algorithm must reject.
	naive := graph.NewPartition(5)
	naive.Union(0, 4)
	if chordal.IsChordal(quotient(naive)) {
		t.Fatalf("naive endpoint merge of P5 stayed chordal; the scenario no longer pins the gap")
	}
	// Any non-adjacent pair of the C4 quotient triggers the documented
	// ErrNotChordal rejection (adjacent pairs short-circuit to "no"
	// before the chordality check).
	q := quotient(naive)
	checked := false
	for u := graph.V(0); u < graph.V(q.N()); u++ {
		for v := u + 1; v < graph.V(q.N()); v++ {
			if q.HasEdge(u, v) {
				continue
			}
			checked = true
			if _, err := ChordalIncremental(q, u, v, 2); err != ErrNotChordal {
				t.Fatalf("post-naive-merge decision (%d, %d): want ErrNotChordal, got %v", u, v, err)
			}
		}
	}
	if !checked {
		t.Fatalf("C4 quotient has no non-adjacent pair?")
	}

	// The decision's class merge: chordal again, and 2-colorable with the
	// endpoints identified.
	full := graph.NewPartition(5)
	for _, v := range dec.Class {
		full.Union(0, v)
	}
	if !chordal.IsChordal(quotient(full)) {
		t.Fatalf("class merge %v left a non-chordal quotient", dec.Class)
	}
	col, ok, err := ChordalIncrementalColoring(g, 0, 4, 2)
	if err != nil || !ok {
		t.Fatalf("coloring: ok=%v err=%v", ok, err)
	}
	if col[0] != col[4] {
		t.Fatalf("coloring does not identify the endpoints: %v", col)
	}
	for v := 0; v < 4; v++ {
		if col[v] == col[v+1] {
			t.Fatalf("improper coloring %v", col)
		}
	}
}
