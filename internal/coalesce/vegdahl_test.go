package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

func TestMergeToColorC4(t *testing.T) {
	// The canonical Vegdahl example: C4 with k=2 is 2-colorable but not
	// greedy-2-colorable; merging opposite corners fixes it.
	c4 := graph.New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if greedy.IsGreedyKColorable(c4, 2) {
		t.Fatal("premise: C4 must not be greedy-2-colorable")
	}
	p, ok := MergeToColor(c4, 2)
	if !ok {
		t.Fatal("node merging should rescue C4 at k=2")
	}
	if !(p.Same(0, 2) || p.Same(1, 3)) {
		t.Fatalf("expected opposite corners merged: %v", p.Classes())
	}
	q, _, err := graph.Quotient(c4, p)
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.IsGreedyKColorable(q, 2) {
		t.Fatal("merged graph must be greedy-2-colorable")
	}
}

func TestMergeToColorAlreadyColorable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	p, ok := MergeToColor(g, 2)
	if !ok {
		t.Fatal("already colorable")
	}
	if p.NumClasses() != 4 {
		t.Fatal("no merges should happen on a colorable graph")
	}
}

func TestMergeToColorHopeless(t *testing.T) {
	// K5 with k=3: no merge is possible at all (complete graph), so the
	// heuristic must honestly fail.
	k5 := graph.New(5)
	k5.AddClique(k5.Vertices()...)
	if _, ok := MergeToColor(k5, 3); ok {
		t.Fatal("K5 cannot be rescued")
	}
}

// Soundness: whatever MergeToColor returns is a valid coalescing, and when
// it claims success the quotient really is greedy-k-colorable.
func TestQuickMergeToColorSound(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%14) + 3
		k := int(kRaw%3) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.35)
		p, ok := MergeToColor(g, k)
		if !p.CompatibleWith(g) {
			return false
		}
		q, _, err := graph.Quotient(g, p)
		if err != nil {
			return false
		}
		if ok && !greedy.IsGreedyKColorable(q, k) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The heuristic sometimes rescues graphs that plain simplification
// rejects — count successes on random near-threshold instances to make
// sure the capability is real (not just the C4 fixture).
func TestMergeToColorRescuesSome(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rescued, stuck := 0, 0
	for trial := 0; trial < 300; trial++ {
		g := graph.RandomER(rng, 10, 0.3)
		k := greedy.ColoringNumber(g) - 1
		if k < 2 || greedy.IsGreedyKColorable(g, k) {
			continue
		}
		if _, ok := MergeToColor(g, k); ok {
			rescued++
		} else {
			stuck++
		}
	}
	if rescued == 0 {
		t.Fatalf("node merging never rescued anything (stuck=%d)", stuck)
	}
}
