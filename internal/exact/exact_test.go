package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	g.AddClique(g.Vertices()...)
	return g
}

func TestKColorableBasics(t *testing.T) {
	if _, ok := KColorable(complete(4), 3); ok {
		t.Fatal("K4 is not 3-colorable")
	}
	col, ok := KColorable(complete(4), 4)
	if !ok || !col.Proper(complete(4)) {
		t.Fatal("K4 is 4-colorable")
	}
	// Odd cycle needs 3, even cycle needs 2.
	if _, ok := KColorable(cycle(5), 2); ok {
		t.Fatal("C5 is not 2-colorable")
	}
	if col, ok := KColorable(cycle(5), 3); !ok || !col.Proper(cycle(5)) {
		t.Fatal("C5 is 3-colorable")
	}
	if col, ok := KColorable(cycle(6), 2); !ok || !col.Proper(cycle(6)) {
		t.Fatal("C6 is 2-colorable")
	}
	// Degenerate cases.
	if _, ok := KColorable(graph.New(0), 0); !ok {
		t.Fatal("empty graph is 0-colorable")
	}
	if _, ok := KColorable(graph.New(1), 0); ok {
		t.Fatal("nonempty graph is not 0-colorable")
	}
}

func TestKColorablePrecolored(t *testing.T) {
	// Edge with both endpoints pinned to the same color: infeasible.
	g := complete(2)
	g.SetPrecolored(0, 1)
	g.SetPrecolored(1, 1)
	if _, ok := KColorable(g, 3); ok {
		t.Fatal("conflicting pins accepted")
	}
	// Pins force the third triangle corner.
	tri := complete(3)
	tri.SetPrecolored(0, 0)
	tri.SetPrecolored(1, 1)
	col, ok := KColorable(tri, 3)
	if !ok || col[2] != 2 {
		t.Fatalf("triangle pin propagation: col=%v ok=%v", col, ok)
	}
	// Pin out of color range.
	solo := graph.New(1)
	solo.SetPrecolored(0, 7)
	if _, ok := KColorable(solo, 3); ok {
		t.Fatal("pin beyond k accepted")
	}
}

func TestChromaticNumber(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.New(0), 0},
		{graph.New(3), 1},
		{complete(5), 5},
		{cycle(5), 3},
		{cycle(6), 2},
	}
	for i, c := range cases {
		if got := ChromaticNumber(c.g); got != c.want {
			t.Errorf("case %d: χ=%d, want %d", i, got, c.want)
		}
	}
	// Petersen graph: χ = 3.
	pet := graph.New(10)
	outer := []graph.V{0, 1, 2, 3, 4}
	for i := 0; i < 5; i++ {
		pet.AddEdge(outer[i], outer[(i+1)%5])         // outer cycle
		pet.AddEdge(graph.V(i), graph.V(i+5))         // spokes
		pet.AddEdge(graph.V(i+5), graph.V((i+2)%5+5)) // inner pentagram
	}
	if got := ChromaticNumber(pet); got != 3 {
		t.Errorf("χ(Petersen)=%d, want 3", got)
	}
}

// Cross-check against the greedy upper bound: χ <= col(G) always.
func TestQuickChiAtMostCol(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.4)
		return ChromaticNumber(g) <= greedy.ColoringNumber(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKColorableIdentified(t *testing.T) {
	// Path x - a - y with k=2: x and y CAN share a color.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	col, ok := KColorableIdentified(g, 0, 2, 2)
	if !ok {
		t.Fatal("x and y should share a color on a path")
	}
	if col[0] != col[2] || !col.Proper(g) {
		t.Fatalf("identification not realized: %v", col)
	}
	// Chain x - a - b - y with k=2: parity forces f(x) != f(y)... check:
	// x=0,a=1,b=0,y=1: f(x)=0, f(y)=1. Identification impossible with k=2.
	h := graph.New(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	if _, ok := KColorableIdentified(h, 0, 3, 2); ok {
		t.Fatal("2-coloring a P4 cannot identify its endpoints")
	}
	// With k=3 it can.
	if col, ok := KColorableIdentified(h, 0, 3, 3); !ok || col[0] != col[3] {
		t.Fatal("3-coloring P4 identifying endpoints should work")
	}
	// Interfering endpoints never identify.
	e := complete(2)
	if _, ok := KColorableIdentified(e, 0, 1, 5); ok {
		t.Fatal("interfering vertices cannot be identified")
	}
	// x == y degenerates to plain colorability.
	if _, ok := KColorableIdentified(h, 1, 1, 2); !ok {
		t.Fatal("identity identification should reduce to colorability")
	}
}

func TestOptimalAggressiveTriangleGadget(t *testing.T) {
	// Figure 1 flavor: terminals s1,s2,s3 forming a triangle, a vertex u
	// with affinity chains to s1 and s2 through subdivision vertices. The
	// best aggressive coalescing keeps u with one terminal and pays one
	// affinity.
	g := graph.NewNamed("s1", "s2", "s3", "u", "x1", "x2")
	g.AddClique(0, 1, 2)
	// u - x1 - s1 and u - x2 - s2 affinity chains.
	g.AddAffinity(3, 4, 1)
	g.AddAffinity(4, 0, 1)
	g.AddAffinity(3, 5, 1)
	g.AddAffinity(5, 1, 1)
	res := OptimalAggressive(g, MinimizeCount)
	if res.Cost != 1 {
		t.Fatalf("cost=%d, want 1 (u cannot join both s1 and s2)", res.Cost)
	}
	if !res.P.CompatibleWith(g) {
		t.Fatal("optimal partition incompatible")
	}
}

func TestOptimalAggressiveNoConflict(t *testing.T) {
	g := graph.New(4)
	g.AddAffinity(0, 1, 2)
	g.AddAffinity(2, 3, 5)
	res := OptimalAggressive(g, MinimizeWeight)
	if res.Cost != 0 {
		t.Fatalf("independent affinities should all coalesce, cost=%d", res.Cost)
	}
}

func TestOptimalConservativeVsAggressive(t *testing.T) {
	// A 5-cycle of affinities collapsing to an odd structure: conservative
	// with small k must give up moves that aggressive keeps.
	// Permutation gadget with p=3, k=3: all 3 moves coalesce into K3,
	// which is 3-colorable, so conservative cost 0.
	g, _, _ := graph.Permutation(3)
	res := OptimalCoalescing(g, 3, TargetGreedy, MinimizeCount)
	if res.Cost != 0 {
		t.Fatalf("perm(3) with k=3: cost=%d, want 0", res.Cost)
	}
	// k=2 < omega of the coalesced K3 and of the original gadget: the
	// original graph is not even 2-colorable, feasibility never holds, and
	// the solver falls back to the discrete partition with full cost.
	res2 := OptimalCoalescing(g, 2, TargetGreedy, MinimizeCount)
	if res2.Cost != 3 {
		t.Fatalf("perm(3) with k=2: cost=%d, want 3 (infeasible fallback)", res2.Cost)
	}
}

func TestOptimalConservativeTargetDifference(t *testing.T) {
	// C4 built by coalescing: conservative with k=2 under TargetKColorable
	// accepts a quotient equal to C4 (2-colorable), under TargetGreedy
	// rejects it (C4 is not greedy-2-colorable).
	// Graph: disjoint edges (a,b), (c,d) + affinities closing a 4-cycle
	// a-b, b=c (affinity), c-d, d=a (affinity).
	g := graph.NewNamed("a", "b", "c", "d", "b2", "d2")
	// Interference edges a-b2? Build the C4-after-coalescing directly:
	// edges (a,b), (c,d); affinities (b,c) and (d,a) merge into C4? After
	// coalescing both affinities: classes {b,c} and {d,a}: edges
	// {a,b}->({d,a},{b,c}), {c,d}->({b,c},{d,a}): a 2-cycle (multigraph
	// collapses) — not C4. Use the standard construction instead: replace
	// each C4 edge by an interference edge between fresh endpoints linked
	// by affinities to the C4 vertices.
	g = graph.New(0)
	// C4 vertices.
	var vs [4]graph.V
	for i := range vs {
		vs[i] = g.AddVertex()
	}
	// For each C4 edge (i, i+1): fresh pair (x, y) with x-y interference
	// and affinities (v_i, x), (y, v_{i+1}).
	for i := 0; i < 4; i++ {
		x := g.AddVertex()
		y := g.AddVertex()
		g.AddEdge(x, y)
		g.AddAffinity(vs[i], x, 1)
		g.AddAffinity(y, vs[(i+1)%4], 1)
	}
	colorable := OptimalCoalescing(g, 2, TargetKColorable, MinimizeCount)
	greedyRes := OptimalCoalescing(g, 2, TargetGreedy, MinimizeCount)
	if colorable.Cost != 0 {
		t.Fatalf("C4 construction is 2-colorable after full coalescing; cost=%d", colorable.Cost)
	}
	if greedyRes.Cost == 0 {
		t.Fatal("full coalescing yields C4, which is not greedy-2-colorable")
	}
}

// Exhaustive subsets cross-check on tiny instances: the B&B optimum equals
// a brute-force scan over all affinity subsets.
func TestQuickOptimalCoalescingMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, 7, 0.3)
		graph.SprinkleAffinities(rng, g, 6, 3)
		k := 3
		res := OptimalCoalescing(g, k, TargetGreedy, MinimizeWeight)
		// Brute force over subsets.
		affs := g.Affinities()
		best := int64(1 << 40)
		for mask := 0; mask < 1<<len(affs); mask++ {
			p := graph.NewPartition(g.N())
			okAll := true
			var dropped int64
			for i, a := range affs {
				if mask&(1<<i) != 0 {
					if !graph.CanMerge(g, p, a.X, a.Y) {
						okAll = false
						break
					}
					p.Union(a.X, a.Y)
				} else {
					dropped += a.Weight
				}
			}
			if !okAll {
				continue
			}
			q, _, err := graph.Quotient(g, p)
			if err != nil {
				continue
			}
			if greedy.IsGreedyKColorable(q, k) && dropped < best {
				best = dropped
			}
		}
		if best == int64(1<<40) {
			// No feasible subset: solver must have fallen back to full cost
			// only if even the empty subset fails, i.e. g itself is not
			// greedy-k-colorable.
			return !greedy.IsGreedyKColorable(g, k)
		}
		return res.Cost == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
