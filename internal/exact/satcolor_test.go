package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func TestKColorableSATBasics(t *testing.T) {
	if _, ok := KColorableSAT(complete(4), 3); ok {
		t.Fatal("K4 is not 3-colorable")
	}
	col, ok := KColorableSAT(complete(4), 4)
	if !ok || !col.Proper(complete(4)) {
		t.Fatal("K4 is 4-colorable")
	}
	if _, ok := KColorableSAT(cycle(5), 2); ok {
		t.Fatal("C5 is not 2-colorable")
	}
	if _, ok := KColorableSAT(graph.New(0), 0); !ok {
		t.Fatal("empty graph is 0-colorable")
	}
	if _, ok := KColorableSAT(graph.New(1), 0); ok {
		t.Fatal("nonempty graph is not 0-colorable")
	}
}

func TestKColorableSATPrecolored(t *testing.T) {
	tri := complete(3)
	tri.SetPrecolored(0, 0)
	tri.SetPrecolored(1, 1)
	col, ok := KColorableSAT(tri, 3)
	if !ok || col[2] != 2 {
		t.Fatalf("pin propagation failed: %v %v", col, ok)
	}
	solo := graph.New(1)
	solo.SetPrecolored(0, 9)
	if _, ok := KColorableSAT(solo, 3); ok {
		t.Fatal("pin beyond k accepted")
	}
}

// The two independent oracles (backtracking and SAT encoding) agree, and
// both witnesses are proper.
func TestQuickSATOracleAgreesWithBacktracking(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%10) + 1
		k := int(kRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.4)
		colA, okA := KColorable(g, k)
		colB, okB := KColorableSAT(g, k)
		if okA != okB {
			return false
		}
		if okA && (!colA.Proper(g) || !colB.Proper(g)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSATIdentifiedAgrees(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomER(rng, n, 0.35)
		x := graph.V(rng.Intn(n))
		y := graph.V(rng.Intn(n))
		k := 3
		colA, okA := KColorableIdentified(g, x, y, k)
		colB, okB := KColorableIdentifiedSAT(g, x, y, k)
		if okA != okB {
			return false
		}
		if okA {
			if !colA.Proper(g) || !colB.Proper(g) {
				return false
			}
			if colB[x] != colB[y] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
