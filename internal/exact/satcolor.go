package exact

import (
	"regcoal/internal/graph"
	"regcoal/internal/sat"
)

// KColorableSAT decides k-colorability by encoding to CNF and running the
// DPLL solver — an independent second verifier for the backtracking
// KColorable (diversity of oracles keeps the reduction verifications
// honest). The encoding uses one variable per (vertex, color):
//
//   - at least one color per vertex: (x_{v,0} ∨ … ∨ x_{v,k-1});
//   - no interfering pair shares a color: (¬x_{u,c} ∨ ¬x_{v,c});
//   - precolored vertices contribute unit clauses.
//
// At-most-one-color clauses are unnecessary: any model picks the lowest
// set color per vertex, which already satisfies the edge clauses.
func KColorableSAT(g *graph.Graph, k int) (graph.Coloring, bool) {
	n := g.N()
	if k <= 0 {
		return nil, n == 0
	}
	varOf := func(v graph.V, c int) sat.Lit { return sat.Lit(int(v)*k + c + 1) }
	f := &sat.Formula{NumVars: n * k}
	for v := 0; v < n; v++ {
		clause := make(sat.Clause, k)
		for c := 0; c < k; c++ {
			clause[c] = varOf(graph.V(v), c)
		}
		f.Clauses = append(f.Clauses, clause)
		if pin, ok := g.Precolored(graph.V(v)); ok {
			if pin >= k {
				return nil, false
			}
			f.Clauses = append(f.Clauses, sat.Clause{varOf(graph.V(v), pin)})
			for c := 0; c < k; c++ {
				if c != pin {
					f.Clauses = append(f.Clauses, sat.Clause{varOf(graph.V(v), c).Neg()})
				}
			}
		}
	}
	for _, e := range g.Edges() {
		for c := 0; c < k; c++ {
			f.Clauses = append(f.Clauses, sat.Clause{
				varOf(e[0], c).Neg(), varOf(e[1], c).Neg(),
			})
		}
	}
	model, ok := f.Solve()
	if !ok {
		return nil, false
	}
	col := graph.NewColoring(n)
	for v := 0; v < n; v++ {
		for c := 0; c < k; c++ {
			if model[varOf(graph.V(v), c).Var()] {
				col[v] = c
				break
			}
		}
	}
	return col, true
}

// KColorableIdentifiedSAT is KColorableIdentified with the SAT oracle.
func KColorableIdentifiedSAT(g *graph.Graph, x, y graph.V, k int) (graph.Coloring, bool) {
	if x == y {
		return KColorableSAT(g, k)
	}
	if g.HasEdge(x, y) {
		return nil, false
	}
	p := graph.NewPartition(g.N())
	p.Union(x, y)
	q, old2new, err := graph.Quotient(g, p)
	if err != nil {
		return nil, false
	}
	col, ok := KColorableSAT(q, k)
	if !ok {
		return nil, false
	}
	return col.Lift(old2new), true
}
