// Package exact provides exponential-time exact solvers used as ground
// truth when verifying the heuristics and the NP-completeness reductions:
// exact k-colorability, exact coloring with identification of two vertices
// (the incremental conservative coalescing question of Theorems 4 and 5),
// optimal aggressive coalescing (Theorem 2's objective), optimal
// conservative coalescing (Theorem 3's objective), and optimal
// de-coalescing (Theorem 6's objective).
//
// All solvers are intended for the small instances used in reduction
// verification sweeps; the benchmark harness uses them to exhibit the
// exponential wall that motivates the paper's search for polynomial special
// cases.
package exact

import (
	"context"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

// canceler polls a context every checkEvery backtracking nodes, so that
// the exponential searches below can be cut off by the engine's per-run
// timeouts without busy-checking the context on every node.
type canceler struct {
	ctx   context.Context
	count int
	err   error
}

const checkEvery = 1024

// stop reports whether the search should abort, latching the context
// error on the first observation.
func (c *canceler) stop() bool {
	if c == nil || c.ctx == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	c.count++
	if c.count%checkEvery == 0 {
		c.err = c.ctx.Err()
	}
	return c.err != nil
}

// KColorable decides exact k-colorability by backtracking with a
// max-degree-first static order and symmetry breaking (a vertex may only
// use a color at most one beyond the largest color used so far, unless
// precolored vertices fix colors). Precolored vertices keep their pins.
// It returns a proper coloring when one exists.
func KColorable(g *graph.Graph, k int) (graph.Coloring, bool) {
	col, ok, _ := KColorableCtx(context.Background(), g, k)
	return col, ok
}

// KColorableCtx is KColorable with cooperative cancellation: when ctx is
// canceled or times out mid-search, it returns ctx's error and an
// undefined verdict.
func KColorableCtx(ctx context.Context, g *graph.Graph, k int) (graph.Coloring, bool, error) {
	n := g.N()
	if k < 0 {
		return nil, false, nil
	}
	cancel := &canceler{ctx: ctx}
	col := graph.NewColoring(n)
	hasPins := false
	for v := 0; v < n; v++ {
		if c, ok := g.Precolored(graph.V(v)); ok {
			if c >= k {
				return nil, false, nil
			}
			col[v] = c
			hasPins = true
		}
	}
	// Check pinned skeleton.
	for _, e := range g.Edges() {
		if col[e[0]] != graph.NoColor && col[e[0]] == col[e[1]] {
			return nil, false, nil
		}
	}
	// Order free vertices by degree, densest first.
	var order []graph.V
	for v := 0; v < n; v++ {
		if col[v] == graph.NoColor {
			order = append(order, graph.V(v))
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var rec func(i, maxUsed int) bool
	rec = func(i, maxUsed int) bool {
		if cancel.stop() {
			return false
		}
		if i == len(order) {
			return true
		}
		v := order[i]
		forbidden := 0 // bitmask of neighbor colors (k <= 62 in practice)
		g.ForEachNeighbor(v, func(w graph.V) {
			if col[w] != graph.NoColor {
				forbidden |= 1 << uint(col[w])
			}
		})
		limit := k
		if !hasPins && maxUsed+1 < limit {
			// Symmetry breaking: without pins, color classes are
			// interchangeable, so trying one fresh color suffices.
			limit = maxUsed + 1
		}
		for c := 0; c < limit; c++ {
			if forbidden&(1<<uint(c)) != 0 {
				continue
			}
			col[v] = c
			next := maxUsed
			if c == maxUsed {
				next = maxUsed + 1
			}
			if rec(i+1, next) {
				return true
			}
			col[v] = graph.NoColor
		}
		return false
	}
	maxUsed := 0
	if hasPins {
		for _, c := range col {
			if c != graph.NoColor && c+1 > maxUsed {
				maxUsed = c + 1
			}
		}
	}
	if !rec(0, maxUsed) {
		return nil, false, cancel.err
	}
	return col, true, nil
}

// ChromaticNumber computes χ(g) by probing KColorable for increasing k.
func ChromaticNumber(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if _, ok := KColorable(g, k); ok {
			return k
		}
	}
}

// KColorableIdentified decides whether g has a proper k-coloring assigning
// the same color to x and y — the incremental conservative coalescing
// question. It merges x and y (when not interfering) and answers exact
// k-colorability of the quotient, returning the witnessing coloring of the
// original graph.
func KColorableIdentified(g *graph.Graph, x, y graph.V, k int) (graph.Coloring, bool) {
	if x == y {
		return KColorable(g, k)
	}
	if g.HasEdge(x, y) {
		return nil, false
	}
	p := graph.NewPartition(g.N())
	p.Union(x, y)
	q, old2new, err := graph.Quotient(g, p)
	if err != nil {
		return nil, false
	}
	col, ok := KColorable(q, k)
	if !ok {
		return nil, false
	}
	return col.Lift(old2new), true
}

// Objective selects what an optimal coalescing minimizes over the
// affinities left uncoalesced.
type Objective int

const (
	// MinimizeCount minimizes the number of uncoalesced affinities (the
	// paper's K).
	MinimizeCount Objective = iota
	// MinimizeWeight minimizes their total weight.
	MinimizeWeight
)

func cost(a graph.Affinity, obj Objective) int64 {
	if obj == MinimizeCount {
		return 1
	}
	return a.Weight
}

// Target constrains the coalesced graph G_f in optimal conservative
// coalescing.
type Target int

const (
	// TargetNone places no constraint: optimal aggressive coalescing.
	TargetNone Target = iota
	// TargetKColorable requires G_f to be k-colorable (conservative
	// coalescing as in Theorem 3).
	TargetKColorable
	// TargetGreedy requires G_f to be greedy-k-colorable (the variant
	// heuristics actually maintain, and the optimistic setting).
	TargetGreedy
)

// Result is an optimal coalescing: the partition, the affinities it leaves
// uncoalesced, and their objective value.
type Result struct {
	P           *graph.Partition
	Uncoalesced []graph.Affinity
	Cost        int64
}

// OptimalCoalescing computes, by branch and bound over the affinity list, a
// coalescing of g minimizing the objective over uncoalesced affinities,
// subject to the target constraint on the coalesced graph with k colors.
// Exponential in the number of affinities (2^|A| worst case); meant for
// reduction verification on small instances.
func OptimalCoalescing(g *graph.Graph, k int, target Target, obj Objective) Result {
	res, _ := OptimalCoalescingCtx(context.Background(), g, k, target, obj)
	return res
}

// OptimalCoalescingCtx is OptimalCoalescing with cooperative cancellation:
// when ctx is canceled or times out mid-search, it returns ctx's error and
// the best (not necessarily optimal) coalescing found so far.
func OptimalCoalescingCtx(ctx context.Context, g *graph.Graph, k int, target Target, obj Objective) (Result, error) {
	cancel := &canceler{ctx: ctx}
	affs := append([]graph.Affinity(nil), g.Affinities()...)
	graph.SortAffinities(affs)
	// Suffix cost sums for pruning.
	suffix := make([]int64, len(affs)+1)
	for i := len(affs) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + cost(affs[i], obj)
	}
	feasible := func(p *graph.Partition) bool {
		q, _, err := graph.Quotient(g, p)
		if err != nil {
			return false
		}
		switch target {
		case TargetNone:
			return true
		case TargetKColorable:
			_, ok, err := KColorableCtx(ctx, q, k)
			if err != nil && cancel.err == nil {
				// The per-leaf search was cut off: latch the cancellation
				// so the caller cannot mistake an aborted run (which may
				// have rejected feasible partitions) for a proven optimum.
				cancel.err = err
			}
			return ok
		case TargetGreedy:
			return greedy.IsGreedyKColorable(q, k)
		}
		return false
	}
	var (
		bestCost int64 = suffix[0] + 1
		bestP    *graph.Partition
	)
	// The empty coalescing is always feasible when the instance is sane
	// (for TargetNone trivially; otherwise the caller passes a colorable g).
	empty := graph.NewPartition(g.N())
	if feasible(empty) {
		bestCost = suffix[0]
		bestP = empty.Clone()
	}
	var rec func(i int, p *graph.Partition, costSoFar int64)
	rec = func(i int, p *graph.Partition, costSoFar int64) {
		if cancel.stop() {
			return
		}
		if costSoFar >= bestCost {
			return
		}
		if i == len(affs) {
			if costSoFar < bestCost && feasible(p) {
				bestCost = costSoFar
				bestP = p.Clone()
			}
			return
		}
		a := affs[i]
		// Branch 1: coalesce a (if structurally possible).
		if graph.CanMerge(g, p, a.X, a.Y) {
			p2 := p.Clone()
			p2.Union(a.X, a.Y)
			rec(i+1, p2, costSoFar)
		}
		// Branch 2: give a up.
		rec(i+1, p, costSoFar+cost(a, obj))
	}
	rec(0, graph.NewPartition(g.N()), 0)
	if bestP == nil {
		// No feasible coalescing at all (e.g. g itself infeasible for the
		// target). Return the discrete partition with full cost.
		bestP = graph.NewPartition(g.N())
		bestCost = suffix[0]
	}
	_, unc := bestP.CoalescedAffinities(g)
	return Result{P: bestP, Uncoalesced: unc, Cost: bestCost}, cancel.err
}

// OptimalAggressive is OptimalCoalescing with no colorability constraint —
// the objective of the paper's Theorem 2 problem statement.
func OptimalAggressive(g *graph.Graph, obj Objective) Result {
	return OptimalCoalescing(g, 0, TargetNone, obj)
}

// OptimalDecoalesce solves the optimistic coalescing problem of Theorem 6
// exactly over affinity-generated refinements: given that all affinities of
// g can be aggressively coalesced, find a subset S of affinities to keep
// coalesced, maximal in objective value, such that the quotient by the
// partition generated by S is greedy-k-colorable. It returns the partition,
// the given-up affinities, and their total objective cost.
//
// When every aggressively-coalesced class has at most two vertices (as in
// the Theorem 6 gadget), affinity subsets enumerate all refinements of the
// aggressive partition, so the result is the true optimum of the paper's
// problem statement.
func OptimalDecoalesce(g *graph.Graph, k int, obj Objective) Result {
	return OptimalCoalescing(g, k, TargetGreedy, obj)
}
