// Package mwc implements the multiway cut problem, the NP-complete source
// of the paper's Theorem 2 reduction to aggressive coalescing: given a
// graph and k terminals, remove as few edges as possible so that every
// terminal ends in a different connected component. Multiway cut is
// NP-complete even unweighted and even for k = 3 (Dahlhaus et al.).
package mwc

import (
	"fmt"
	"math/rand"

	"regcoal/internal/graph"
)

// Instance is a multiway cut instance: the graph's interference edges are
// the edges to cut (affinities are ignored) and Terminals are the vertices
// to separate.
type Instance struct {
	G         *graph.Graph
	Terminals []graph.V
}

// Validate reports structural problems: out-of-range or duplicate terminals.
func (in *Instance) Validate() error {
	seen := make(map[graph.V]bool)
	for _, t := range in.Terminals {
		if t < 0 || int(t) >= in.G.N() {
			return fmt.Errorf("mwc: terminal %d out of range", int(t))
		}
		if seen[t] {
			return fmt.Errorf("mwc: duplicate terminal %d", int(t))
		}
		seen[t] = true
	}
	return nil
}

// CutSize evaluates an assignment of every vertex to a terminal group
// (values 0..len(Terminals)-1): the cut is the number of edges whose
// endpoints land in different groups. Assignments must give terminal i the
// group i; CutSize does not check that.
func (in *Instance) CutSize(group []int) int {
	cut := 0
	for _, e := range in.G.Edges() {
		if group[e[0]] != group[e[1]] {
			cut++
		}
	}
	return cut
}

// Separates reports whether removing the given edge set disconnects every
// pair of terminals.
func (in *Instance) Separates(removed map[[2]graph.V]bool) bool {
	// BFS from each terminal avoiding removed edges.
	id := make([]int, in.G.N())
	for i := range id {
		id[i] = -1
	}
	for ti, t := range in.Terminals {
		if id[t] != -1 {
			return false // two terminals already connected
		}
		queue := []graph.V{t}
		id[t] = ti
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			bad := false
			in.G.ForEachNeighbor(v, func(w graph.V) {
				e := [2]graph.V{v, w}
				if v > w {
					e = [2]graph.V{w, v}
				}
				if removed[e] {
					return
				}
				if id[w] == -1 {
					id[w] = ti
					queue = append(queue, w)
				} else if id[w] != ti {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
	}
	return true
}

// SolveExact computes the minimum multiway cut by branch and bound over
// vertex-to-group assignments: each non-terminal vertex is assigned to one
// of the k terminal groups, terminals are fixed, and the cut is the number
// of cross-group edges. Exponential (k^(n-k)); intended for the small
// instances used to verify the Theorem 2 reduction.
//
// It returns the minimum cut size and one optimal group assignment.
func (in *Instance) SolveExact() (int, []int) {
	n := in.G.N()
	k := len(in.Terminals)
	if k == 0 {
		return 0, make([]int, n)
	}
	group := make([]int, n)
	for i := range group {
		group[i] = -1
	}
	for ti, t := range in.Terminals {
		group[t] = ti
	}
	// Order the free vertices so that neighbors of assigned vertices come
	// early — improves the bound. Simple heuristic: descending degree.
	var free []graph.V
	for v := 0; v < n; v++ {
		if group[v] == -1 {
			free = append(free, graph.V(v))
		}
	}
	best := in.G.E() + 1
	bestGroup := make([]int, n)
	var rec func(i, cut int)
	rec = func(i, cut int) {
		if cut >= best {
			return
		}
		if i == len(free) {
			best = cut
			copy(bestGroup, group)
			return
		}
		v := free[i]
		for gi := 0; gi < k; gi++ {
			extra := 0
			in.G.ForEachNeighbor(v, func(w graph.V) {
				if group[w] != -1 && group[w] != gi {
					extra++
				}
			})
			group[v] = gi
			rec(i+1, cut+extra)
			group[v] = -1
		}
	}
	// Initial cut among terminals themselves.
	baseCut := 0
	for _, e := range in.G.Edges() {
		if group[e[0]] != -1 && group[e[1]] != -1 && group[e[0]] != group[e[1]] {
			baseCut++
		}
	}
	rec(0, baseCut)
	copy(group, bestGroup)
	return best, bestGroup
}

// Random returns a random instance: an Erdős–Rényi graph with k random
// distinct terminals.
func Random(rng *rand.Rand, n int, p float64, k int) *Instance {
	if k > n {
		panic("mwc: more terminals than vertices")
	}
	g := graph.RandomER(rng, n, p)
	perm := rng.Perm(n)
	terms := make([]graph.V, k)
	for i := 0; i < k; i++ {
		terms[i] = graph.V(perm[i])
	}
	return &Instance{G: g, Terminals: terms}
}
